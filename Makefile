# DeepRest reproduction — common tasks. Everything is stdlib-only Go.

GO ?= go

.PHONY: all build vet test test-race check cover fuzz bench bench-all experiments experiments-quick examples clean

all: build vet test

# The gate CI runs: static analysis, the full test suite under the race
# detector (the pipeline swaps models while queries are in flight, so every
# test run should also be a race hunt), and the coverage summary.
check: vet test-race cover

# Coverage profile plus a per-package summary; the profile lands in
# cover.out for go tool cover -html=cover.out drill-downs.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -n 1

# Short-budget native fuzzing smoke over the decoders that accept external
# bytes and the fault-spec parser. `go test -fuzz` takes one target per
# invocation, so this runs the high-value targets back to back. Raise
# FUZZTIME for a longer hunt.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParseSpec -fuzztime=$(FUZZTIME) ./internal/faults
	$(GO) test -run='^$$' -fuzz=FuzzIngestSpans -fuzztime=$(FUZZTIME) ./internal/telemetry
	$(GO) test -run='^$$' -fuzz=FuzzImportJSON -fuzztime=$(FUZZTIME) ./internal/telemetry
	$(GO) test -run='^$$' -fuzz=FuzzParseTopology -fuzztime=$(FUZZTIME) ./internal/topo
	$(GO) test -run='^$$' -fuzz=FuzzFleetManifest -fuzztime=$(FUZZTIME) ./internal/fleet

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Hot-path benchmarks for the estimator (training epoch, expert forward,
# end-to-end predict on both the eval-tape and the compiled tape-free engine,
# plus the 64-client concurrent serving path with p99 and the 16-tenant
# fleet serving path), recorded as BENCH_estimator.json, plus the ingestion path (bounded Record, cached vs
# uncached feature reads, zero-alloc extraction, warm vs cold /v1/estimate),
# recorded as BENCH_ingest.json, plus the topology path (generate, DSL
# parse/encode, simulate at 30/100/300 components), recorded as
# BENCH_topo.json, plus the shadow-scoring path (chunk scoring catch-up,
# scoreboard rendering), recorded as BENCH_quality.json, plus the autoscale
# control loop (O(log n) allocation lookup, offline planner, one closed-loop
# day), recorded as BENCH_autoscale.json — all for regression tracking
# across PRs.
bench:
	{ $(GO) test -run='^$$' -bench=. -benchmem ./internal/estimator/... ; \
	  $(GO) test -run='^$$' -bench='EstimateConcurrent' -benchmem ./internal/service ; \
	  $(GO) test -run='^$$' -bench='FleetEstimate' -benchmem ./internal/fleet ; } | \
		$(GO) run ./cmd/benchjson -out BENCH_estimator.json
	$(GO) test -run='^$$' -bench='Record|Features|Extract|EstimateWarm|EstimateCold' -benchmem \
		./internal/telemetry ./internal/features ./internal/service | \
		$(GO) run ./cmd/benchjson -out BENCH_ingest.json
	$(GO) test -run='^$$' -bench='Topo' -benchmem ./internal/topo | \
		$(GO) run ./cmd/benchjson -out BENCH_topo.json
	$(GO) test -run='^$$' -bench='Scorer' -benchmem ./internal/quality | \
		$(GO) run ./cmd/benchjson -out BENCH_quality.json
	$(GO) test -run='^$$' -bench='AllocationAt|PlanSeries|CtrlLoop' -benchmem \
		./internal/autoscale ./internal/ctrl | \
		$(GO) run ./cmd/benchjson -out BENCH_autoscale.json

bench-all:
	$(GO) test -bench=. -benchmem ./...

# Full-scale reproduction of every table and figure (a few minutes).
experiments:
	$(GO) run ./cmd/experiments

# Reduced-scale reproduction (well under a minute).
experiments-quick:
	$(GO) run ./cmd/experiments -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/capacityplan
	$(GO) run ./examples/sanitycheck
	$(GO) run ./examples/interpret

clean:
	$(GO) clean ./...
	rm -f deeprest.model telemetry.json test_output.txt bench_output.txt cover.out
