package fleet

import (
	"math"
	"sync"
	"time"
)

// tokenBucket is the per-tenant ingest admission meter: a classic leaky
// bucket refilled continuously at rate tokens/sec up to burst. It exists so
// one tenant flooding POST /v1/telemetry cannot monopolise the shared
// training pool's input or the HTTP server's goroutine budget — the flood
// is shed at the door with 429 while other tenants' admission state is
// untouched (each tenant owns its own bucket).
//
// Implemented locally rather than importing a limiter because the repo is
// stdlib-only; the math is the standard refill-on-read formulation.
type tokenBucket struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

func newTokenBucket(rate, burst float64) *tokenBucket {
	return &tokenBucket{rate: rate, burst: burst, tokens: burst}
}

// take spends one token. On refusal it returns the wait until one token
// accrues — the Retry-After the shed response carries.
func (b *tokenBucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(math.Ceil(deficit / b.rate * float64(time.Second)))
}
