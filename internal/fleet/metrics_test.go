package fleet

import (
	"bytes"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestMetricsScrapeFleet is the multi-tenant counterpart of the service
// package's TestMetricsScrape: boot a fleet, drive every tenant through
// ingest + learn + estimate, then validate the single shared /metrics
// exposition against the Prometheus text-format grammar (obs.Lint) and
// check the app label partitions every per-tenant family while
// process-level families stay unlabelled. The app label is exactly the
// kind of change that corrupts an exposition — mixed label sets within a
// family, duplicate series, reordered label values — which is what the
// lint pass catches.
func TestMetricsScrapeFleet(t *testing.T) {
	opts := quickOpts()
	opts.Metrics = obs.NewRegistry()
	opts.Tracer = obs.NewSpanTracer(128, 7)
	_, h := newToyFleet(t, Config{Opts: opts, IngestRate: 1000}, "north", "south")

	for _, id := range []string{"north", "south"} {
		if rec := do(t, h, "POST", "/v1/t/"+id+"/v1/estimate", toyEstimate(t)); rec.Code != http.StatusOK {
			t.Fatalf("estimate %s = %d", id, rec.Code)
		}
		if rec := do(t, h, "GET", "/v1/t/"+id+"/v1/quality", nil); rec.Code != http.StatusOK {
			t.Fatalf("quality %s = %d", id, rec.Code)
		}
	}
	// An unroutable tenant request and a fleet status read exercise the
	// fleet-level families too.
	do(t, h, "GET", "/v1/t/nosuch/v1/status", nil)
	do(t, h, "GET", "/v1/fleet", nil)

	rec := do(t, h, "GET", "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	body := rec.Body.String()
	if err := obs.Lint(strings.NewReader(body)); err != nil {
		t.Fatalf("multi-tenant exposition fails Prometheus grammar: %v\n%s", err, body)
	}

	for _, want := range []string{
		// Per-tenant families carry app as the leading label, one series
		// per tenant in the same family.
		`deeprest_http_requests_total{app="north",endpoint="/v1/learn",code="200"}`,
		`deeprest_http_requests_total{app="south",endpoint="/v1/learn",code="200"}`,
		`deeprest_http_request_duration_seconds_bucket{app="north",endpoint="/v1/estimate",le="+Inf"}`,
		`deeprest_train_epochs_total{app="south",phase="train"}`,
		`deeprest_active_generation{app="north"} 1`,
		`deeprest_quality_smape{app="south",component="Service",resource="cpu"}`,
		// Fleet-level families.
		"deeprest_fleet_tenants 2",
		`deeprest_fleet_tenant_ops_total{op="create",result="ok"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("fleet scrape is missing %q", want)
		}
	}
	// Build identity is per-process: exactly one series, no app label.
	if !strings.Contains(body, `deeprest_build_info{version=`) {
		t.Error("fleet scrape is missing deeprest_build_info")
	}
	if strings.Contains(body, `deeprest_build_info{app=`) {
		t.Error("deeprest_build_info leaked a tenant label")
	}

	// Spans are stamped per tenant and filterable at /debug/spans?app=.
	snap := opts.Tracer.Snapshot()
	apps := map[string]bool{}
	for _, s := range snap {
		apps[s.App] = true
	}
	if !apps["north"] || !apps["south"] {
		t.Errorf("span ring lacks per-tenant stamps: %v", apps)
	}
	srec := do(t, opts.Tracer.Handler(), "GET", "/debug/spans?app=north", nil)
	if srec.Code != http.StatusOK || bytes.Contains(srec.Body.Bytes(), []byte(`"app":"south"`)) {
		t.Errorf("span filter leaked another tenant's spans (code %d)", srec.Code)
	}
}
