package fleet

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
)

// BenchmarkFleetEstimate measures the serving path at fleet scale: 16
// resident tenants, 4 concurrent clients spraying estimate requests across
// them round-robin. Against the single-tenant EstimateConcurrent benchmark
// this exposes the cost of the tenant dimension itself — path routing, the
// tenant table read lock, per-tenant admission, and 16 independent estimate
// caches and batchers sharing one process. Recorded in BENCH_estimator.json
// by `make bench`.
func BenchmarkFleetEstimate(b *testing.B) {
	const tenants = 16
	const clients = 4
	ids := make([]string, tenants)
	for i := range ids {
		ids[i] = string(rune('a'+i/4)) + string(rune('a'+i%4))
	}
	fl := New(Config{Opts: quickOpts()})
	defer fl.Close()
	h := fl.Handler()
	for i, id := range ids {
		if _, err := fl.Create(TenantSpec{App: id}); err != nil {
			b.Fatal(err)
		}
		if rec := do(b, h, "POST", "/v1/t/"+id+"/v1/telemetry", toyBody(b, 1, 30, int64(51+i))); rec.Code != http.StatusOK {
			b.Fatalf("ingest %s = %d", id, rec.Code)
		}
		if rec := do(b, h, "POST", "/v1/t/"+id+"/v1/learn", bytes.NewBufferString(`{"pairs":["Service/cpu"]}`)); rec.Code != http.StatusOK {
			b.Fatalf("learn %s = %d: %s", id, rec.Code, rec.Body)
		}
	}
	payload := toyEstimate(b).Bytes()

	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	per := b.N / clients
	for c := 0; c < clients; c++ {
		n := per
		if c == 0 {
			n += b.N % clients
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				id := ids[int(next.Add(1))%tenants]
				req := httptest.NewRequest("POST", "/v1/t/"+id+"/v1/estimate", bytes.NewReader(payload))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Errorf("estimate %s = %d", id, rec.Code)
					return
				}
			}
		}(n)
	}
	wg.Wait()
}
