// Package fleet shards many DeepRest applications behind one daemon — the
// deployment the ROADMAP calls fleet serving and Sinan exemplifies for
// data-driven resource management run as shared cloud infrastructure: a
// production estimator serves hundreds of tenants, each with its own
// telemetry stream, model generations, and quality scoreboard, while the
// expensive machinery (training workers, inference pool, metrics registry)
// is shared and bounded.
//
// Ownership model — everything a tenant touches is owned by that tenant:
//
//   - each Tenant wraps one service.Server, which owns its telemetry ring,
//     per-generation feature cache, model registry, shadow scorer, estimate
//     cache, and batcher; no per-tenant state is reachable from another
//     tenant, so retiring a tenant can never free a neighbour's rings or
//     inference engine;
//   - shared process-wide resources are explicitly label-partitioned: the
//     metrics registry hands each tenant a constant-`app`-labelled view
//     (obs.Registry.WithConstLabels), the span tracer stamps each tenant's
//     spans (obs.SpanTracer.WithApp), and checkpoints live under
//     <dir>/<tenant>/ with tenant ids validated against path traversal;
//   - training is funnelled through one bounded worker pool driven by a
//     fair round-robin scheduler (see scheduler.go) instead of N background
//     retrain goroutines, and per-tenant admission tokens shed a flooding
//     tenant with 429/503 while quiet tenants keep their cadence.
//
// Locking model: Fleet.mu guards only the tenant table (create, lookup,
// retire); it is never held across training, bootstrap simulation, or
// request handling. Tenant liveness is an atomic flag so the scheduler and
// router skip retired tenants without locks, and the at-most-one-queued
// training claim per tenant is an atomic compare-and-swap, mirroring the
// inference pool's claim discipline.
package fleet

import (
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/workload"
)

// Config assembles a fleet. Opts and Pipeline are templates: every tenant
// gets a copy with its observability handles re-scoped (metrics view, span
// tag, logger attribute) and its checkpoint directory nested under the
// fleet's.
type Config struct {
	// Opts are the base learning options. Metrics, Tracer, and Logger are
	// per-tenant re-scoped; everything else applies to every tenant.
	Opts core.Options
	// Pipeline is the per-tenant continuous-learning template. A non-empty
	// CheckpointDir is the fleet base directory: tenant checkpoints land in
	// CheckpointDir/<tenant>/gen-*.ckpt.
	Pipeline pipeline.Config
	// MaxTenants bounds resident tenants (0 = 64). Creation beyond the
	// bound is refused with 503.
	MaxTenants int
	// TrainWorkers sizes the shared training worker pool the scheduler
	// dispatches retrain/drift ticks onto (0 = 2).
	TrainWorkers int
	// MaxInflight bounds each tenant's concurrently admitted requests
	// (excess shed with 503 + Retry-After); 0 disables. A TenantSpec may
	// override it per tenant.
	MaxInflight int
	// IngestRate and IngestBurst arm the per-tenant ingest token bucket:
	// at most IngestRate POST /v1/telemetry requests per second sustained,
	// IngestBurst in a burst, beyond which ingest is shed with 429 +
	// Retry-After. Rate 0 disables. Burst 0 defaults to max(2*rate, 4).
	IngestRate  float64
	IngestBurst int
	// RequestTimeout, Retention, EstimateCache, PredictBatchWindow,
	// QualityHorizon, QualityThreshold mirror the service.Server fields and
	// apply to every tenant (Retention overridable per TenantSpec).
	RequestTimeout     time.Duration
	Retention          int
	EstimateCache      int
	PredictBatchWindow time.Duration
	QualityHorizon     time.Duration
	QualityThreshold   float64
}

// TenantSpec declares one tenant — the POST /v1/tenants body and the fleet
// manifest entry.
type TenantSpec struct {
	// App is the tenant id: 1–64 characters of [a-zA-Z0-9_-], starting
	// alphanumeric. It names the tenant in URLs (/v1/t/<app>/...), metric
	// labels (app="..."), and the checkpoint directory, so the grammar
	// deliberately excludes every path separator and dot.
	App string `json:"app"`
	// Spec optionally bootstraps the tenant's telemetry from a simulated
	// deployment: social|hotel|media, @file.json, or gen:seed=N,components=N
	// (topo.Resolve grammar). Empty creates the tenant with an empty store
	// awaiting pushed telemetry.
	Spec string `json:"spec,omitempty"`
	// BootstrapDays sizes the simulated bootstrap (Spec only; 0 = 1 day).
	BootstrapDays int `json:"bootstrap_days,omitempty"`
	// Retention overrides the fleet's telemetry retention horizon.
	Retention int `json:"retention,omitempty"`
	// MaxInflight overrides the fleet's per-tenant admission bound.
	MaxInflight int `json:"max_inflight,omitempty"`
}

// Tenant is one resident application: its service instance plus the fleet's
// admission and scheduling state for it.
type Tenant struct {
	// ID is the validated tenant id.
	ID string
	// Spec records the topology argument that bootstrapped the tenant ("" =
	// push-only).
	Spec string
	// CreatedAt stamps tenant creation.
	CreatedAt time.Time

	srv     *service.Server
	handler http.Handler
	bucket  *tokenBucket

	retired atomic.Bool
	// trainPending is the atomic claim guaranteeing at most one queued or
	// running training tick per tenant on the shared pool.
	trainPending atomic.Bool
	// nextRetrain/nextDrift are the scheduler's deadlines; only the
	// scheduler goroutine reads or writes them.
	nextRetrain, nextDrift time.Time
}

// Server exposes the tenant's service instance (tests and the fleet status
// endpoint read through it).
func (t *Tenant) Server() *service.Server { return t.srv }

// Fleet is the tenant registry plus shared scheduler.
type Fleet struct {
	cfg Config

	mu       sync.RWMutex
	tenants  map[string]*Tenant
	order    []*Tenant // creation order, drives round-robin fairness
	pending  map[string]bool
	deflt    string // tenant aliased by legacy un-prefixed routes
	closed   bool
	sched    *scheduler

	tenantsGauge *obs.Gauge
	tenantOps    *obs.CounterVec
}

// DefaultMaxTenants bounds the tenant table when Config.MaxTenants is 0.
const DefaultMaxTenants = 64

// New assembles an empty fleet. Call StartScheduler to begin continuous
// learning across tenants, Handler to serve it.
func New(cfg Config) *Fleet {
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = DefaultMaxTenants
	}
	if cfg.TrainWorkers <= 0 {
		cfg.TrainWorkers = 2
	}
	f := &Fleet{
		cfg:     cfg,
		tenants: make(map[string]*Tenant),
		pending: make(map[string]bool),
	}
	if m := cfg.Opts.Metrics; m != nil {
		f.tenantsGauge = m.Gauge("deeprest_fleet_tenants",
			"Tenants currently resident in the fleet.")
		f.tenantOps = m.CounterVec("deeprest_fleet_tenant_ops_total",
			"Fleet tenant lifecycle operations by kind (create, retire) and result (ok, error).",
			"op", "result")
	}
	return f
}

// Create registers one tenant, optionally bootstrapping its telemetry from
// a simulated deployment and recovering its checkpoints. The fleet lock is
// never held across the (slow) bootstrap simulation: the id is reserved
// first, so concurrent creates of the same id fail fast with ErrDuplicate.
func (f *Fleet) Create(ts TenantSpec) (*Tenant, error) {
	if err := ValidateID(ts.App); err != nil {
		f.tenantOps.With("create", "error").Inc()
		return nil, err
	}
	if err := f.reserve(ts.App); err != nil {
		f.tenantOps.With("create", "error").Inc()
		return nil, err
	}
	t, err := f.build(ts)
	f.mu.Lock()
	delete(f.pending, ts.App)
	if err == nil {
		f.tenants[ts.App] = t
		f.order = append(f.order, t)
		if f.deflt == "" {
			f.deflt = ts.App
		}
		f.tenantsGauge.Set(float64(len(f.tenants)))
	}
	f.mu.Unlock()
	if err != nil {
		f.tenantOps.With("create", "error").Inc()
		return nil, err
	}
	f.tenantOps.With("create", "ok").Inc()
	return t, nil
}

// ErrDuplicate reports a create against an id that is already resident (or
// mid-creation).
var ErrDuplicate = fmt.Errorf("fleet: tenant id already exists")

// ErrAtCapacity reports a create beyond the MaxTenants bound.
var ErrAtCapacity = fmt.Errorf("fleet: tenant capacity reached")

// reserve claims an id slot under the lock so the slow build runs unlocked.
func (f *Fleet) reserve(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fmt.Errorf("fleet: closed")
	}
	if _, ok := f.tenants[id]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicate, id)
	}
	if f.pending[id] {
		return fmt.Errorf("%w: %q (creation in flight)", ErrDuplicate, id)
	}
	if len(f.tenants)+len(f.pending) >= f.cfg.MaxTenants {
		return fmt.Errorf("%w (%d resident)", ErrAtCapacity, len(f.tenants))
	}
	f.pending[id] = true
	return nil
}

// build constructs the tenant's service instance: re-scoped observability,
// nested checkpoint dir, checkpoint recovery, optional simulated bootstrap.
func (f *Fleet) build(ts TenantSpec) (*Tenant, error) {
	opts := f.cfg.Opts
	if opts.Metrics != nil {
		opts.Metrics = opts.Metrics.WithConstLabels("app", ts.App)
	}
	opts.Tracer = opts.Tracer.WithApp(ts.App)
	if opts.Logger != nil {
		opts.Logger = opts.Logger.With("app", ts.App)
	}
	pcfg := f.cfg.Pipeline
	if pcfg.CheckpointDir != "" {
		// ValidateID excluded separators and dots, so this join can never
		// escape the fleet's checkpoint root.
		pcfg.CheckpointDir = filepath.Join(pcfg.CheckpointDir, ts.App)
	}
	srv, err := service.NewWithConfig(opts, pcfg)
	if err != nil {
		return nil, fmt.Errorf("fleet: tenant %q: %w", ts.App, err)
	}
	srv.ExternalScheduler = true
	srv.MaxInflight = f.cfg.MaxInflight
	if ts.MaxInflight > 0 {
		srv.MaxInflight = ts.MaxInflight
	}
	srv.RequestTimeout = f.cfg.RequestTimeout
	srv.Retention = f.cfg.Retention
	if ts.Retention > 0 {
		srv.Retention = ts.Retention
	}
	srv.EstimateCache = f.cfg.EstimateCache
	srv.PredictBatchWindow = f.cfg.PredictBatchWindow
	srv.QualityHorizon = f.cfg.QualityHorizon
	srv.QualityThreshold = f.cfg.QualityThreshold

	if pcfg.CheckpointDir != "" {
		if _, err := srv.Pipeline().Recover(); err != nil {
			return nil, fmt.Errorf("fleet: tenant %q: recover: %w", ts.App, err)
		}
	}
	if ts.Spec != "" {
		run, err := BootstrapRun(ts.Spec, ts.BootstrapDays)
		if err != nil {
			return nil, fmt.Errorf("fleet: tenant %q: bootstrap: %w", ts.App, err)
		}
		if err := srv.Bootstrap(run); err != nil {
			return nil, fmt.Errorf("fleet: tenant %q: bootstrap: %w", ts.App, err)
		}
	}
	t := &Tenant{
		ID: ts.App, Spec: ts.Spec, CreatedAt: time.Now(),
		srv: srv, handler: srv.Handler(),
	}
	if f.cfg.IngestRate > 0 {
		burst := f.cfg.IngestBurst
		if burst <= 0 {
			burst = int(2 * f.cfg.IngestRate)
			if burst < 4 {
				burst = 4
			}
		}
		t.bucket = newTokenBucket(f.cfg.IngestRate, float64(burst))
	}
	return t, nil
}

// Get returns a resident tenant.
func (f *Fleet) Get(id string) (*Tenant, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	t, ok := f.tenants[id]
	return t, ok
}

// Default returns the tenant aliased by legacy un-prefixed routes (the
// first created, unless SetDefault changed it); nil when none.
func (f *Fleet) Default() *Tenant {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.tenants[f.deflt]
}

// SetDefault re-points the legacy alias at a resident tenant.
func (f *Fleet) SetDefault(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.tenants[id]; !ok {
		return fmt.Errorf("fleet: no tenant %q", id)
	}
	f.deflt = id
	return nil
}

// TrainWorkers reports the resolved size of the shared training pool.
func (f *Fleet) TrainWorkers() int { return f.cfg.TrainWorkers }

// Tenants snapshots the resident tenants in creation order.
func (f *Fleet) Tenants() []*Tenant {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]*Tenant, len(f.order))
	copy(out, f.order)
	return out
}

// Retire removes a tenant. Its inference engines are released immediately
// (in-flight requests finish on the tape path, bit-identically); everything
// else the tenant owned becomes unreachable and is reclaimed by GC. Other
// tenants are untouched — they own their state outright.
func (f *Fleet) Retire(id string) error {
	f.mu.Lock()
	t, ok := f.tenants[id]
	if !ok {
		f.mu.Unlock()
		f.tenantOps.With("retire", "error").Inc()
		return fmt.Errorf("fleet: no tenant %q", id)
	}
	delete(f.tenants, id)
	for i, o := range f.order {
		if o == t {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
	if f.deflt == id {
		f.deflt = ""
	}
	f.tenantsGauge.Set(float64(len(f.tenants)))
	f.mu.Unlock()
	t.retired.Store(true)
	for _, g := range t.srv.Pipeline().Registry().Generations() {
		g.System.ReleaseEngine()
	}
	f.tenantOps.With("retire", "ok").Inc()
	return nil
}

// Close stops the scheduler. Tenants stay resident (a closing daemon only
// needs training to stop; queries drain through the HTTP server's own
// shutdown).
func (f *Fleet) Close() {
	f.mu.Lock()
	f.closed = true
	sched := f.sched
	f.sched = nil
	f.mu.Unlock()
	if sched != nil {
		sched.stop()
	}
}

// BootstrapRun simulates a learning period for a tenant bootstrap: diurnal
// two-peak traffic over the requested days against the resolved topology,
// with the same window geometry and seeds for every tenant, so a fleet
// tenant bootstrapped from spec S holds bit-identical telemetry to a
// single-tenant daemon bootstrapped from S.
func BootstrapRun(spec string, days int) (*sim.Run, error) {
	if days < 1 {
		days = 1
	}
	appSpec, mix, err := topo.Resolve(spec)
	if err != nil {
		return nil, err
	}
	cluster, err := sim.NewCluster(appSpec, 101)
	if err != nil {
		return nil, err
	}
	prog := workload.Uniform(days, workload.DaySpec{Shape: workload.TwoPeak{}, Mix: mix, PeakRPS: 30})
	prog.WindowsPerDay = 48
	prog.WindowSeconds = 60
	prog.Seed = 301
	return cluster.Run(prog.Generate())
}
