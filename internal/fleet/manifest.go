package fleet

import (
	"errors"
	"fmt"
	"io"
	"os"

	"encoding/json"
)

// Fleet manifest: the -fleet flag's file format, declaring the tenants a
// daemon boots with.
//
//	{
//	  "tenants": [
//	    {"app": "social", "spec": "social", "bootstrap_days": 2},
//	    {"app": "hotel",  "spec": "hotel"},
//	    {"app": "synth",  "spec": "gen:seed=9,components=60", "retention": 2880}
//	  ]
//	}
//
// Parsing is strict — unknown fields, trailing data, duplicate ids, and
// out-of-range knobs are errors — because a manifest typo that silently
// drops a tenant is a production outage, and because tenant ids become
// filesystem paths and metric label values the moment the daemon boots.

// Manifest is the parsed fleet declaration.
type Manifest struct {
	Tenants []TenantSpec `json:"tenants"`
}

// LoadManifest reads and parses a manifest file.
func LoadManifest(path string) (*Manifest, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: manifest: %w", err)
	}
	defer fh.Close()
	return ParseManifest(fh)
}

// ParseManifest parses and validates a manifest document.
func ParseManifest(r io.Reader) (*Manifest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("fleet: manifest: %w", err)
	}
	if dec.More() {
		return nil, errors.New("fleet: manifest: trailing data after document")
	}
	if len(m.Tenants) == 0 {
		return nil, errors.New("fleet: manifest: no tenants")
	}
	seen := make(map[string]bool, len(m.Tenants))
	for i := range m.Tenants {
		ts := &m.Tenants[i]
		if err := ValidateID(ts.App); err != nil {
			return nil, fmt.Errorf("fleet: manifest tenant %d: %w", i, err)
		}
		if seen[ts.App] {
			return nil, fmt.Errorf("fleet: manifest: duplicate tenant id %q", ts.App)
		}
		seen[ts.App] = true
		if err := validateSpecBounds(ts); err != nil {
			return nil, fmt.Errorf("fleet: manifest tenant %d: %w", i, err)
		}
	}
	return &m, nil
}

// ValidateID enforces the tenant-id grammar: 1–64 characters of
// [a-zA-Z0-9_-], first character alphanumeric. The grammar is deliberately
// narrower than "valid file name": ids are joined onto the checkpoint root
// (<dir>/<id>/gen-*.ckpt), interpolated into metric label values, and
// matched in URL paths, so every path separator, dot (no "." / ".."
// traversal), and escape-prone byte is excluded outright.
func ValidateID(id string) error {
	if id == "" {
		return errors.New("empty tenant id")
	}
	if len(id) > 64 {
		return fmt.Errorf("tenant id %q: longer than 64 bytes", id)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_':
			if i == 0 {
				return fmt.Errorf("tenant id %q: must start with a letter or digit", id)
			}
		default:
			return fmt.Errorf("tenant id %q: invalid byte %q (want [a-zA-Z0-9_-])", id, c)
		}
	}
	return nil
}
