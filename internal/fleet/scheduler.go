package fleet

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"time"
)

// Fleet training scheduler: N tenants, one bounded worker pool.
//
// The single-app daemon runs pipeline.Start, a per-instance goroutine with
// retrain and drift tickers. Naively replicating that per tenant gives N
// background loops that can all decide to train at once — N concurrent
// gradient descents is exactly the unbounded-concurrency failure the
// inference pool (internal/estimator/infer) was built to avoid. The fleet
// instead disables per-tenant loops (service.Server.ExternalScheduler) and
// drives every tenant's pipeline through ticks dispatched onto TrainWorkers
// persistent workers.
//
// Fairness is structural, not best-effort:
//
//   - each sweep visits every tenant, but the starting offset rotates, so
//     when more tenants are due than workers can absorb no fixed tenant
//     always wins the queue slots;
//   - at most one tick per tenant is queued or running at a time
//     (Tenant.trainPending, an atomic compare-and-swap claim exactly like
//     the inference pool's index claim), so a tenant whose training is slow
//     cannot pile up queue entries and crowd out neighbours;
//   - a full queue drops the claim and the tenant retries next sweep —
//     deadline state (nextRetrain/nextDrift) is only advanced when the tick
//     is actually enqueued, so no cadence is silently skipped.
//
// A flooding tenant therefore costs its neighbours at most one queued job's
// latency, and its telemetry flood is already shed upstream by the ingest
// bucket (admission.go).
type scheduler struct {
	f          *Fleet
	interval   time.Duration // per-tenant scheduled-retrain cadence
	driftEvery time.Duration // per-tenant drift-check cadence
	sweep      time.Duration // scheduler sweep period
	rr         int           // rotating round-robin offset

	jobs   chan schedJob
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

type schedJob struct {
	t    *Tenant
	kind string // "scheduled" | "drift"
}

// StartScheduler launches the shared training scheduler. Idempotent; call
// Close (or the returned fleet's Close) to stop it.
func (f *Fleet) StartScheduler() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.sched != nil || f.closed {
		return
	}
	interval := f.cfg.Pipeline.Interval
	if interval <= 0 {
		interval = 15 * time.Minute
	}
	driftEvery := f.cfg.Pipeline.DriftEvery
	if driftEvery <= 0 {
		driftEvery = interval / 4
	}
	finest := interval
	if driftEvery < finest {
		finest = driftEvery
	}
	sweep := finest / 2
	if sweep < time.Millisecond {
		sweep = time.Millisecond
	}
	if sweep > 30*time.Second {
		sweep = 30 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &scheduler{
		f:          f,
		interval:   interval,
		driftEvery: driftEvery,
		sweep:      sweep,
		jobs:       make(chan schedJob, f.cfg.TrainWorkers*2),
		cancel:     cancel,
	}
	for i := 0; i < f.cfg.TrainWorkers; i++ {
		s.wg.Add(1)
		go s.worker(ctx)
	}
	s.wg.Add(1)
	go s.loop(ctx)
	f.sched = s
}

// SchedulerRunning reports whether the shared scheduler is live.
func (f *Fleet) SchedulerRunning() bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.sched != nil
}

func (s *scheduler) stop() {
	s.cancel()
	s.wg.Wait()
}

// loop sweeps the tenant table on a cadence finer than the drift check and
// enqueues due ticks in rotating round-robin order.
func (s *scheduler) loop(ctx context.Context) {
	defer s.wg.Done()
	ticker := time.NewTicker(s.sweep)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			s.sweepOnce(time.Now())
		}
	}
}

func (s *scheduler) sweepOnce(now time.Time) {
	tenants := s.f.Tenants()
	n := len(tenants)
	if n == 0 {
		return
	}
	s.rr = (s.rr + 1) % n
	for i := 0; i < n; i++ {
		t := tenants[(s.rr+i)%n]
		if t.retired.Load() {
			continue
		}
		kind, commit := s.due(t, now)
		if kind == "" {
			continue
		}
		// Atomic claim: at most one queued-or-running tick per tenant.
		if !t.trainPending.CompareAndSwap(false, true) {
			continue
		}
		select {
		case s.jobs <- schedJob{t: t, kind: kind}:
			commit()
		default:
			// Queue full: release the claim, leave deadlines untouched,
			// retry next sweep. The rotating offset guarantees this tenant
			// is not perpetually last in line.
			t.trainPending.Store(false)
		}
	}
}

// due decides whether a tenant owes a tick at now. Deadlines advance only
// via the returned commit (called once the tick is actually enqueued). Only
// the scheduler goroutine touches the deadline fields.
func (s *scheduler) due(t *Tenant, now time.Time) (kind string, commit func()) {
	if t.nextRetrain.IsZero() {
		// First sighting: phase the tenant in like the per-instance loop's
		// tickers did — first retrain one interval from now.
		t.nextRetrain = now.Add(s.interval)
		t.nextDrift = now.Add(s.driftEvery)
		return "", nil
	}
	if !now.Before(t.nextRetrain) {
		return "scheduled", func() {
			t.nextRetrain = now.Add(s.interval)
			t.nextDrift = now.Add(s.driftEvery)
		}
	}
	if !now.Before(t.nextDrift) {
		return "drift", func() { t.nextDrift = now.Add(s.driftEvery) }
	}
	return "", nil
}

// runTick executes one tick, containing panics: a tenant whose state
// poisons its own training job must not take the shared workers (and with
// them every other tenant's training) down.
func (s *scheduler) runTick(ctx context.Context, j schedJob) {
	defer func() {
		if r := recover(); r != nil {
			if lg := s.f.cfg.Opts.Logger; lg != nil {
				lg.Error("training tick panicked", "app", j.t.ID,
					"kind", j.kind, "panic", fmt.Sprint(r),
					"stack", string(debug.Stack()))
			}
		}
	}()
	switch j.kind {
	case "scheduled":
		j.t.srv.Pipeline().TickScheduled(ctx)
	case "drift":
		j.t.srv.Pipeline().TickDrift(ctx)
	}
}

// worker executes ticks from the shared queue. The tick runs the tenant's
// own pipeline machinery (drift check, quality check, retrain with retries,
// checkpoint, atomic swap) exactly as its in-process loop would have.
func (s *scheduler) worker(ctx context.Context) {
	defer s.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case j := <-s.jobs:
			if !j.t.retired.Load() {
				s.runTick(ctx, j)
			}
			j.t.trainPending.Store(false)
		}
	}
}
