package fleet

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
)

// Concurrency wall: these tests exist to run under -race (make check runs
// the whole suite with -race). They drive every cross-tenant interaction
// the fleet serializes — shared metrics registry, shared span ring, shared
// training pool, tenant table churn — from many goroutines at once.

// TestFleetConcurrentStress hammers three tenants with concurrent ingest,
// estimates, retrain-and-swap, and fleet status reads, while a fourth
// tenant is repeatedly created and retired. Nothing here asserts outputs
// beyond status codes; the assertion is the race detector staying quiet
// across every shared structure.
func TestFleetConcurrentStress(t *testing.T) {
	opts := quickOpts()
	opts.Metrics = obs.NewRegistry()
	opts.Tracer = obs.NewSpanTracer(256, 1)
	fl, h := newToyFleet(t, Config{Opts: opts}, "a", "b", "c")

	const perWorker = 6
	var wg sync.WaitGroup
	fail := make(chan string, 64)
	report := func(format string, args ...interface{}) {
		select {
		case fail <- fmt.Sprintf(format, args...):
		default:
		}
	}
	for i, id := range []string{"a", "b", "c"} {
		id, seed := id, int64(100+i)
		// Ingest: grows the tenant's ring while everything else reads it.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < perWorker; n++ {
				if rec := do(t, h, "POST", "/v1/t/"+id+"/v1/telemetry", toyBody(t, 1, 30, seed)); rec.Code != http.StatusOK {
					report("ingest %s = %d", id, rec.Code)
				}
			}
		}()
		// Estimate: serves from whatever generation is active mid-swap.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < perWorker; n++ {
				if rec := do(t, h, "POST", "/v1/t/"+id+"/v1/estimate", toyEstimate(t)); rec.Code != http.StatusOK {
					report("estimate %s = %d: %s", id, rec.Code, rec.Body)
				}
			}
		}()
		// Swap: publishes new generations (409 when two learns collide on
		// the same tenant is the documented contract, not a failure).
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 3; n++ {
				rec := do(t, h, "POST", "/v1/t/"+id+"/v1/learn", bytes.NewBufferString(`{"pairs":["Service/cpu"]}`))
				if rec.Code != http.StatusOK && rec.Code != http.StatusConflict {
					report("learn %s = %d: %s", id, rec.Code, rec.Body)
				}
			}
		}()
	}
	// Lifecycle churn against the same table the routers read.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < 4; n++ {
			if _, err := fl.Create(TenantSpec{App: "churn"}); err != nil {
				report("churn create: %v", err)
				return
			}
			do(t, h, "POST", "/v1/t/churn/v1/telemetry", toyBody(t, 1, 30, 200))
			if err := fl.Retire("churn"); err != nil {
				report("churn retire: %v", err)
				return
			}
		}
	}()
	// Status and metrics readers cross every tenant's state.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < 10; n++ {
			do(t, h, "GET", "/v1/fleet", nil)
			do(t, h, "GET", "/metrics", nil)
		}
	}()
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}
}

// TestSchedulerFairRotation pins the round-robin guarantee without clocks:
// three tenants all permanently due, a one-slot queue, many sweeps — every
// tenant must win an equal share of the contested slots. A fixed starting
// offset (the bug this test exists to catch) would hand every slot to the
// same tenant.
func TestSchedulerFairRotation(t *testing.T) {
	fl, _ := newToyFleet(t, Config{}, "a", "b", "c")
	s := &scheduler{f: fl, interval: time.Minute, driftEvery: time.Hour,
		jobs: make(chan schedJob, 1)}
	base := time.Unix(0, 0)
	s.sweepOnce(base) // first sighting: deadlines initialised, nothing due

	counts := map[string]int{}
	now := base
	const sweeps = 300
	for i := 0; i < sweeps; i++ {
		now = now.Add(2 * time.Minute)
		s.sweepOnce(now)
		for {
			select {
			case j := <-s.jobs:
				counts[j.t.ID]++
				j.t.trainPending.Store(false)
				continue
			default:
			}
			break
		}
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != sweeps {
		t.Fatalf("queued %d jobs over %d sweeps, want one per sweep (%v)", total, sweeps, counts)
	}
	for _, id := range []string{"a", "b", "c"} {
		if counts[id] < sweeps/3-10 || counts[id] > sweeps/3+10 {
			t.Errorf("tenant %s won %d of %d contested slots; rotation is unfair: %v",
				id, counts[id], sweeps, counts)
		}
	}
}

// TestSchedulerClaim: a tenant whose tick is already queued or running is
// never enqueued twice, however many sweeps pass.
func TestSchedulerClaim(t *testing.T) {
	fl, _ := newToyFleet(t, Config{}, "a")
	s := &scheduler{f: fl, interval: time.Minute, driftEvery: time.Hour,
		jobs: make(chan schedJob, 8)}
	base := time.Unix(0, 0)
	s.sweepOnce(base)
	for i := 1; i <= 5; i++ {
		s.sweepOnce(base.Add(time.Duration(i) * 2 * time.Minute))
	}
	if got := len(s.jobs); got != 1 {
		t.Fatalf("queued jobs = %d, want 1 (claim must hold across sweeps)", got)
	}
}

// TestFleetFairnessUnderFlood is the starvation wall: one tenant floods
// telemetry far past its ingest budget while a quiet tenant trickles. The
// flood must be shed with 429 + Retry-After (counted in the flooding
// tenant's shed metric), and the quiet tenant must notice nothing: every
// request admitted, its scheduled retrains still firing, its estimate tail
// latency bounded.
func TestFleetFairnessUnderFlood(t *testing.T) {
	opts := quickOpts()
	opts.Metrics = obs.NewRegistry()
	pcfg := pipeline.DefaultConfig()
	pcfg.Interval = 60 * time.Millisecond
	pcfg.DriftEvery = time.Hour // isolate the scheduled-retrain cadence
	fl, h := newToyFleet(t, Config{
		Opts:         opts,
		Pipeline:     pcfg,
		TrainWorkers: 2,
		IngestRate:   10,
		IngestBurst:  4,
	}, "flood", "quiet")
	quietBefore := quietVersion(fl, t)
	fl.StartScheduler()

	var floodShed, floodOK atomic.Int64
	var retryAfterSeen atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			rec := do(t, h, "POST", "/v1/t/flood/v1/telemetry", toyBody(t, 1, 30, int64(300+i)))
			switch rec.Code {
			case http.StatusTooManyRequests:
				floodShed.Add(1)
				if rec.Header().Get("Retry-After") != "" {
					retryAfterSeen.Store(true)
				}
			case http.StatusOK:
				floodOK.Add(1)
			}
		}
	}()

	// The quiet tenant trickles: a few ingests and steady estimates, all of
	// which must be admitted while the flood rages.
	var latencies []time.Duration
	deadline := time.Now().Add(900 * time.Millisecond)
	i := 0
	for time.Now().Before(deadline) {
		if i%8 == 0 {
			if rec := do(t, h, "POST", "/v1/t/quiet/v1/telemetry", toyBody(t, 1, 30, int64(400+i))); rec.Code != http.StatusOK {
				t.Errorf("quiet ingest shed: %d", rec.Code)
			}
		}
		start := time.Now()
		rec := do(t, h, "POST", "/v1/t/quiet/v1/estimate", toyEstimate(t))
		latencies = append(latencies, time.Since(start))
		if rec.Code != http.StatusOK {
			t.Errorf("quiet estimate = %d: %s", rec.Code, rec.Body)
		}
		i++
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if floodShed.Load() == 0 {
		t.Fatalf("flood was never shed (ok=%d)", floodOK.Load())
	}
	if !retryAfterSeen.Load() {
		t.Error("429 responses carried no Retry-After")
	}
	if ft, _ := fl.Get("flood"); ft.Server().ShedCount() == 0 {
		t.Error("flooding tenant's shed counter is zero")
	}
	if qt, _ := fl.Get("quiet"); qt.Server().ShedCount() != 0 {
		t.Errorf("quiet tenant was shed %d times", qt.Server().ShedCount())
	}

	// The quiet tenant's retrain cadence survived the flood: the shared
	// scheduler kept serving it new generations.
	waitFor(t, 5*time.Second, func() bool { return quietVersion(fl, t) > quietBefore })

	// Tail latency bound: generous (CI machines are noisy) but finite —
	// starvation shows up as multi-second stalls, not milliseconds.
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	if p99 := latencies[len(latencies)*99/100]; p99 > 2*time.Second {
		t.Errorf("quiet tenant estimate p99 = %v under flood", p99)
	}

	// The shed shows up per-tenant in the shared exposition.
	rec := do(t, h, "GET", "/metrics", nil)
	if !bytes.Contains(rec.Body.Bytes(), []byte(`deeprest_http_shed_total{app="flood"}`)) {
		t.Error("metrics carry no per-tenant shed series for the flooding tenant")
	}
}

func quietVersion(fl *Fleet, t *testing.T) int {
	t.Helper()
	qt, ok := fl.Get("quiet")
	if !ok {
		t.Fatal("quiet tenant missing")
	}
	return qt.Server().Pipeline().Status().ActiveVersion
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("condition not reached before timeout")
}

// TestExternalSchedulerDisablesPerTenantLoops: fleet tenants refuse the
// per-tenant pipeline start/stop endpoints — training belongs to the shared
// scheduler.
func TestExternalSchedulerDisablesPerTenantLoops(t *testing.T) {
	_, h := newToyFleet(t, Config{}, "a")
	if rec := do(t, h, "POST", "/v1/t/a/v1/pipeline/start", bytes.NewBufferString(`{}`)); rec.Code != http.StatusConflict {
		t.Fatalf("pipeline start under fleet = %d, want 409", rec.Code)
	}
	if rec := do(t, h, "POST", "/v1/t/a/v1/pipeline/stop", nil); rec.Code != http.StatusConflict {
		t.Fatalf("pipeline stop under fleet = %d, want 409", rec.Code)
	}
}

// TestFleetSchedulerEndToEnd: the live scheduler (real goroutines, real
// ticker) retrains every tenant of a small fleet within a few cadences and
// stops cleanly.
func TestFleetSchedulerEndToEnd(t *testing.T) {
	pcfg := pipeline.DefaultConfig()
	pcfg.Interval = 50 * time.Millisecond
	pcfg.DriftEvery = time.Hour
	fl, h := newToyFleet(t, Config{Pipeline: pcfg, TrainWorkers: 2}, "a", "b", "c")
	before := map[string]int{}
	for _, tn := range fl.Tenants() {
		before[tn.ID] = tn.Server().Pipeline().Status().ActiveVersion
	}
	// Fresh windows so scheduled retrains have something to train on.
	for i, id := range []string{"a", "b", "c"} {
		if rec := do(t, h, "POST", "/v1/t/"+id+"/v1/telemetry", toyBody(t, 1, 35, int64(500+i))); rec.Code != http.StatusOK {
			t.Fatalf("ingest = %d", rec.Code)
		}
	}
	fl.StartScheduler()
	if !fl.SchedulerRunning() {
		t.Fatal("scheduler not running after start")
	}
	waitFor(t, 10*time.Second, func() bool {
		for _, tn := range fl.Tenants() {
			if tn.Server().Pipeline().Status().ActiveVersion <= before[tn.ID] {
				return false
			}
		}
		return true
	})
	fl.Close()
	if fl.SchedulerRunning() {
		t.Fatal("scheduler still running after close")
	}
}
