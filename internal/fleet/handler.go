package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// HTTP surface of the fleet. Tenant traffic is path-sharded:
//
//	POST   /v1/tenants          create a tenant (TenantSpec body)
//	GET    /v1/fleet            fleet-wide status, one entry per tenant
//	DELETE /v1/tenants/{app}    retire a tenant
//	ANY    /v1/t/{app}/...      the tenant's full service API (prefix-stripped)
//	ANY    /...                 legacy single-app routes, aliased to the
//	                            default tenant so pre-fleet clients keep working
//
// Admission runs at this layer, before the tenant's own handler: the
// per-tenant ingest token bucket sheds flooding telemetry writers with 429 +
// Retry-After (the tenant's MaxInflight bound inside service.Server sheds
// concurrency overload with 503). Both count into the tenant's labelled
// deeprest_http_shed_total.

type fleetError struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(fleetError{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// Handler returns the fleet's HTTP surface.
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tenants", f.handleCreate)
	mux.HandleFunc("GET /v1/fleet", f.handleStatus)
	mux.HandleFunc("GET /v1/tenants", f.handleStatus)
	mux.HandleFunc("DELETE /v1/tenants/{app}", f.handleRetire)
	mux.HandleFunc("/v1/t/{app}/", f.handleTenant)
	if m := f.cfg.Opts.Metrics; m != nil {
		// One scrape covers the whole fleet: tenant views share the family
		// store, so the root handler renders every app="..." series.
		mux.Handle("GET /metrics", m.Handler())
	}
	mux.HandleFunc("/", f.handleDefault)
	return mux
}

// handleTenant routes /v1/t/{app}/... into the tenant's own service handler
// with the prefix stripped, after fleet-level admission.
func (f *Fleet) handleTenant(w http.ResponseWriter, r *http.Request) {
	app := r.PathValue("app")
	t, ok := f.Get(app)
	if !ok {
		writeErr(w, http.StatusNotFound, "no tenant %q", app)
		return
	}
	f.serveTenant(t, "/v1/t/"+app, w, r)
}

// handleDefault aliases the legacy un-prefixed service routes onto the
// default tenant, preserving the single-app daemon's wire surface.
func (f *Fleet) handleDefault(w http.ResponseWriter, r *http.Request) {
	t := f.Default()
	if t == nil {
		writeErr(w, http.StatusNotFound,
			"no default tenant; create one via POST /v1/tenants or address a tenant at /v1/t/{app}/...")
		return
	}
	f.serveTenant(t, "", w, r)
}

func (f *Fleet) serveTenant(t *Tenant, prefix string, w http.ResponseWriter, r *http.Request) {
	if t.retired.Load() {
		writeErr(w, http.StatusNotFound, "tenant %q retired", t.ID)
		return
	}
	if t.bucket != nil && r.Method == http.MethodPost &&
		r.URL.Path == prefix+"/v1/telemetry" {
		if ok, retry := t.bucket.take(time.Now()); !ok {
			secs := int(retry/time.Second) + 1
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			t.srv.ShedInc()
			writeErr(w, http.StatusTooManyRequests,
				"tenant %q ingest rate exceeded, retry in %ds", t.ID, secs)
			return
		}
	}
	if prefix == "" {
		t.handler.ServeHTTP(w, r)
		return
	}
	http.StripPrefix(prefix, t.handler).ServeHTTP(w, r)
}

// handleCreate registers a tenant from a TenantSpec body. The decoder is as
// strict as the manifest parser: unknown fields are rejected.
func (f *Fleet) handleCreate(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var ts TenantSpec
	if err := dec.Decode(&ts); err != nil {
		writeErr(w, http.StatusBadRequest, "decode tenant spec: %v", err)
		return
	}
	if err := validateSpecBounds(&ts); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	t, err := f.Create(ts)
	if err != nil {
		switch {
		case errors.Is(err, ErrDuplicate):
			writeErr(w, http.StatusConflict, "%v", err)
		case errors.Is(err, ErrAtCapacity):
			w.Header().Set("Retry-After", "60")
			writeErr(w, http.StatusServiceUnavailable, "%v", err)
		default:
			writeErr(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, f.tenantStatus(t))
}

// handleRetire removes a tenant.
func (f *Fleet) handleRetire(w http.ResponseWriter, r *http.Request) {
	app := r.PathValue("app")
	if err := f.Retire(app); err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, map[string]string{"retired": app})
}

// TenantStatus is one tenant's row in the GET /v1/fleet document.
type TenantStatus struct {
	App           string    `json:"app"`
	Spec          string    `json:"spec,omitempty"`
	CreatedAt     time.Time `json:"created_at"`
	Windows       int       `json:"windows"`
	ActiveVersion int       `json:"active_version"`
	Generations   int       `json:"generations"`
	Degraded      bool      `json:"degraded,omitempty"`
	Shed          uint64    `json:"shed_total,omitempty"`
}

// FleetStatus is the GET /v1/fleet document.
type FleetStatus struct {
	Tenants      []TenantStatus `json:"tenants"`
	Default      string         `json:"default_tenant,omitempty"`
	TrainWorkers int            `json:"train_workers"`
	Scheduler    bool           `json:"scheduler_running"`
}

func (f *Fleet) tenantStatus(t *Tenant) TenantStatus {
	st := t.srv.Pipeline().Status()
	return TenantStatus{
		App: t.ID, Spec: t.Spec, CreatedAt: t.CreatedAt,
		Windows:       t.srv.Windows(),
		ActiveVersion: st.ActiveVersion,
		Generations:   st.Generations,
		Degraded:      st.Degraded,
		Shed:          t.srv.ShedCount(),
	}
}

func (f *Fleet) handleStatus(w http.ResponseWriter, r *http.Request) {
	f.mu.RLock()
	tenants := make([]*Tenant, len(f.order))
	copy(tenants, f.order)
	deflt := f.deflt
	running := f.sched != nil
	f.mu.RUnlock()
	out := FleetStatus{
		Tenants:      make([]TenantStatus, 0, len(tenants)),
		Default:      deflt,
		TrainWorkers: f.cfg.TrainWorkers,
		Scheduler:    running,
	}
	for _, t := range tenants {
		out.Tenants = append(out.Tenants, f.tenantStatus(t))
	}
	writeJSON(w, out)
}

// validateSpecBounds applies the shared sanity bounds on a TenantSpec
// (ParseManifest applies the same bounds to manifest entries).
func validateSpecBounds(ts *TenantSpec) error {
	if ts.BootstrapDays < 0 || ts.BootstrapDays > 14 {
		return fmt.Errorf("fleet: tenant %q: bootstrap_days %d out of range [0,14]", ts.App, ts.BootstrapDays)
	}
	if ts.Retention < 0 {
		return fmt.Errorf("fleet: tenant %q: negative retention", ts.App)
	}
	if ts.MaxInflight < 0 {
		return fmt.Errorf("fleet: tenant %q: negative max_inflight", ts.App)
	}
	return nil
}
