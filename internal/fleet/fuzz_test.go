package fleet

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzFleetManifest drives arbitrary bytes through the manifest parser and
// checks the security invariant the parser exists to uphold: any manifest
// it ACCEPTS yields tenant ids that are safe to use as checkpoint path
// segments, metric label values, and URL path elements — no traversal out
// of the checkpoint root, no duplicates, no out-of-range knobs. Rejections
// are always fine; silent acceptance of a hostile id is the bug class.
//
// Run via `make fuzz` (FUZZTIME bounds each target) or directly:
//
//	go test ./internal/fleet -run=^$ -fuzz=FuzzFleetManifest -fuzztime=10s
func FuzzFleetManifest(f *testing.F) {
	for _, seed := range []string{
		`{"tenants":[{"app":"social","spec":"social","bootstrap_days":2}]}`,
		`{"tenants":[{"app":"a"},{"app":"b","retention":100,"max_inflight":4}]}`,
		`{"tenants":[{"app":"gen9","spec":"gen:seed=9,components=60"}]}`,
		`{"tenants":[{"app":"../../etc/passwd"}]}`,
		`{"tenants":[{"app":"..\\..\\windows"}]}`,
		`{"tenants":[{"app":"a"},{"app":"a"}]}`,
		`{"tenants":[{"app":".hidden"}]}`,
		`{"tenants":[{"app":"ok","bootstrap_days":-1}]}`,
		`{"tenants":[{"app":"ok","unknown_field":true}]}`,
		`{"tenants":[]}`,
		`{"tenants":[{"app":"a"}]} trailing`,
		`not json at all`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseManifest(bytes.NewReader(data))
		if err != nil {
			if m != nil {
				t.Fatalf("error %v returned alongside a manifest", err)
			}
			return
		}
		if len(m.Tenants) == 0 {
			t.Fatal("accepted manifest has no tenants")
		}
		const root = "ckptroot"
		seen := make(map[string]bool, len(m.Tenants))
		for _, ts := range m.Tenants {
			if err := ValidateID(ts.App); err != nil {
				t.Fatalf("accepted manifest carries invalid id %q: %v", ts.App, err)
			}
			if seen[ts.App] {
				t.Fatalf("accepted manifest carries duplicate id %q", ts.App)
			}
			seen[ts.App] = true
			// The id is about to become a checkpoint directory segment:
			// joining it must stay strictly inside the root.
			joined := filepath.Join(root, ts.App)
			if filepath.Dir(joined) != root ||
				!strings.HasPrefix(joined, root+string(filepath.Separator)) ||
				filepath.Base(joined) != ts.App {
				t.Fatalf("id %q escapes the checkpoint root: %q", ts.App, joined)
			}
			if ts.BootstrapDays < 0 || ts.BootstrapDays > 14 ||
				ts.Retention < 0 || ts.MaxInflight < 0 {
				t.Fatalf("accepted manifest carries out-of-range knobs: %+v", ts)
			}
		}
	})
}
