package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/testutil"
	"repro/internal/topo"
	"repro/internal/workload"
)

// The cross-tenant isolation wall. The contract under test: a fleet is
// indistinguishable, tenant by tenant, from the same applications run as
// isolated single-tenant daemons — bit-identical estimates, no shared
// mutable state, no cross-tenant lifecycle effects.

// quickOpts is the fast estimator configuration every service-layer test in
// the repo uses: small net, few epochs, short chunks.
func quickOpts() core.Options {
	opts := core.DefaultOptions()
	opts.Estimator.Hidden = 6
	opts.Estimator.Epochs = 8
	opts.Estimator.AttentionEpochs = 1
	opts.Estimator.ChunkLen = 24
	return opts
}

func do(t testing.TB, h http.Handler, method, path string, body *bytes.Buffer) *httptest.ResponseRecorder {
	t.Helper()
	if body == nil {
		body = &bytes.Buffer{}
	}
	req := httptest.NewRequest(method, path, body)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// toyBody serialises a toy run into the telemetry interchange format.
func toyBody(t testing.TB, days int, peak float64, seed int64) *bytes.Buffer {
	t.Helper()
	_, _, run := testutil.ToyTelemetry(t, days, peak, seed)
	store := telemetry.NewServer(run.WindowSeconds)
	store.RecordRun(run)
	var buf bytes.Buffer
	if err := store.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// estimateBody builds a deterministic estimate request for the given
// topology spec: one day of two-peak traffic over the spec's API mix.
func estimateBody(t testing.TB, spec string) *bytes.Buffer {
	t.Helper()
	_, mix, err := topo.Resolve(spec)
	if err != nil {
		t.Fatal(err)
	}
	prog := workload.Uniform(1, workload.DaySpec{Shape: workload.TwoPeak{}, Mix: mix, PeakRPS: 20})
	prog.WindowsPerDay = 24
	prog.WindowSeconds = 60
	prog.Seed = 77
	traffic := prog.Generate()
	body, err := json.Marshal(map[string]interface{}{
		"windows": traffic.Windows, "windows_per_day": traffic.WindowsPerDay,
	})
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewBuffer(body)
}

// wallTenants is the isolation wall's tenant roster: two paper topologies
// plus a generated production-scale one, each with the pair it learns.
var wallTenants = []struct{ id, spec, pair string }{
	{"social", "social", "UserService/cpu"},
	{"hotel", "hotel", "FrontendService/cpu"},
	{"synth", "gen:seed=9,components=60", "Gateway00/cpu"},
}

// TestFleetIsolationBitIdentical boots one 3-tenant fleet and three
// isolated single-tenant services from the same specs, trains each on the
// same pair, and requires byte-for-byte identical estimate responses. Any
// state bleeding between tenants — a shared RNG, a shared feature cache, a
// mixed-up ring — breaks bit-equality.
func TestFleetIsolationBitIdentical(t *testing.T) {
	fl := New(Config{Opts: quickOpts(), Pipeline: pipeline.DefaultConfig()})
	for _, wt := range wallTenants {
		if _, err := fl.Create(TenantSpec{App: wt.id, Spec: wt.spec}); err != nil {
			t.Fatalf("create %s: %v", wt.id, err)
		}
	}
	fh := fl.Handler()
	// Train fleet tenants in an order interleaved with queries so any
	// cross-tenant contamination has a chance to surface.
	for _, wt := range wallTenants {
		learn := bytes.NewBufferString(fmt.Sprintf(`{"pairs":[%q]}`, wt.pair))
		if rec := do(t, fh, "POST", "/v1/t/"+wt.id+"/v1/learn", learn); rec.Code != http.StatusOK {
			t.Fatalf("fleet learn %s = %d: %s", wt.id, rec.Code, rec.Body)
		}
	}

	for _, wt := range wallTenants {
		// The isolated control: same opts, same bootstrap, same learn.
		srv, err := service.NewWithConfig(quickOpts(), pipeline.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		run, err := BootstrapRun(wt.spec, 1)
		if err != nil {
			t.Fatalf("bootstrap %s: %v", wt.id, err)
		}
		if err := srv.Bootstrap(run); err != nil {
			t.Fatal(err)
		}
		sh := srv.Handler()
		learn := bytes.NewBufferString(fmt.Sprintf(`{"pairs":[%q]}`, wt.pair))
		if rec := do(t, sh, "POST", "/v1/learn", learn); rec.Code != http.StatusOK {
			t.Fatalf("solo learn %s = %d: %s", wt.id, rec.Code, rec.Body)
		}

		fleetRec := do(t, fh, "POST", "/v1/t/"+wt.id+"/v1/estimate", estimateBody(t, wt.spec))
		soloRec := do(t, sh, "POST", "/v1/estimate", estimateBody(t, wt.spec))
		if fleetRec.Code != http.StatusOK || soloRec.Code != http.StatusOK {
			t.Fatalf("%s: estimate fleet=%d solo=%d: %s", wt.id, fleetRec.Code, soloRec.Code, fleetRec.Body)
		}
		if !bytes.Equal(fleetRec.Body.Bytes(), soloRec.Body.Bytes()) {
			t.Errorf("%s: fleet estimate diverges from the isolated daemon\nfleet: %s\nsolo:  %s",
				wt.id, fleetRec.Body, soloRec.Body)
		}
	}

	// The legacy un-prefixed surface aliases the first-created tenant.
	legacy := do(t, fh, "POST", "/v1/estimate", estimateBody(t, wallTenants[0].spec))
	direct := do(t, fh, "POST", "/v1/t/"+wallTenants[0].id+"/v1/estimate", estimateBody(t, wallTenants[0].spec))
	if legacy.Code != http.StatusOK || !bytes.Equal(legacy.Body.Bytes(), direct.Body.Bytes()) {
		t.Errorf("legacy alias diverges from /v1/t/%s (code %d)", wallTenants[0].id, legacy.Code)
	}
}

// newToyFleet builds a fleet of push-only tenants, each ingested with the
// same toy run and trained on Service/cpu — the cheap fixture the stress,
// fairness, and lifecycle tests share.
func newToyFleet(t testing.TB, cfg Config, ids ...string) (*Fleet, http.Handler) {
	t.Helper()
	if cfg.Opts.Estimator.Hidden == 0 {
		cfg.Opts = quickOpts()
	}
	fl := New(cfg)
	t.Cleanup(fl.Close)
	h := fl.Handler()
	for i, id := range ids {
		if _, err := fl.Create(TenantSpec{App: id}); err != nil {
			t.Fatalf("create %s: %v", id, err)
		}
		if rec := do(t, h, "POST", "/v1/t/"+id+"/v1/telemetry", toyBody(t, 1, 30, int64(51+i))); rec.Code != http.StatusOK {
			t.Fatalf("ingest %s = %d: %s", id, rec.Code, rec.Body)
		}
		if rec := do(t, h, "POST", "/v1/t/"+id+"/v1/learn", bytes.NewBufferString(`{"pairs":["Service/cpu"]}`)); rec.Code != http.StatusOK {
			t.Fatalf("learn %s = %d: %s", id, rec.Code, rec.Body)
		}
	}
	return fl, h
}

// toyEstimate is the matching toy-mix estimate request.
func toyEstimate(t testing.TB) *bytes.Buffer {
	t.Helper()
	traffic := testutil.ToyProgram(1, 45, 99).Generate()
	body, err := json.Marshal(map[string]interface{}{
		"windows": traffic.Windows, "windows_per_day": traffic.WindowsPerDay,
	})
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewBuffer(body)
}

// TestTenantEvictionIsolation is the lifecycle property: however many
// tenants are created and retired around it, a resident tenant's estimates
// never change and its serving path never breaks — eviction frees only the
// evicted tenant's state. Exercised over several churn rounds with the
// surviving tenant queried between every step.
func TestTenantEvictionIsolation(t *testing.T) {
	fl, h := newToyFleet(t, Config{}, "keeper")
	baseline := do(t, h, "POST", "/v1/t/keeper/v1/estimate", toyEstimate(t))
	if baseline.Code != http.StatusOK {
		t.Fatalf("baseline estimate = %d: %s", baseline.Code, baseline.Body)
	}

	for round := 0; round < 4; round++ {
		id := fmt.Sprintf("churn%d", round)
		if _, err := fl.Create(TenantSpec{App: id}); err != nil {
			t.Fatal(err)
		}
		if rec := do(t, h, "POST", "/v1/t/"+id+"/v1/telemetry", toyBody(t, 1, 30, int64(70+round))); rec.Code != http.StatusOK {
			t.Fatalf("churn ingest = %d", rec.Code)
		}
		if rec := do(t, h, "POST", "/v1/t/"+id+"/v1/learn", bytes.NewBufferString(`{"pairs":["Service/cpu"]}`)); rec.Code != http.StatusOK {
			t.Fatalf("churn learn = %d: %s", rec.Code, rec.Body)
		}
		if rec := do(t, h, "DELETE", "/v1/tenants/"+id, nil); rec.Code != http.StatusOK {
			t.Fatalf("retire = %d: %s", rec.Code, rec.Body)
		}
		// The retired tenant's routes are gone...
		if rec := do(t, h, "GET", "/v1/t/"+id+"/v1/status", nil); rec.Code != http.StatusNotFound {
			t.Fatalf("retired tenant still routable: %d", rec.Code)
		}
		// ...and the keeper's estimates are bit-identical to before any
		// churn: eviction freed nothing the keeper owns.
		rec := do(t, h, "POST", "/v1/t/keeper/v1/estimate", toyEstimate(t))
		if rec.Code != http.StatusOK {
			t.Fatalf("round %d: keeper estimate = %d: %s", round, rec.Code, rec.Body)
		}
		if !bytes.Equal(rec.Body.Bytes(), baseline.Body.Bytes()) {
			t.Fatalf("round %d: keeper estimate changed after evicting %s", round, id)
		}
	}
	if got := len(fl.Tenants()); got != 1 {
		t.Fatalf("resident tenants = %d, want 1", got)
	}
}

// TestFleetLifecycleHTTP covers the management surface: create via POST,
// duplicate refused with 409, invalid id refused with 400, status document
// listing every tenant, retire via DELETE, unknown tenant 404.
func TestFleetLifecycleHTTP(t *testing.T) {
	_, h := newToyFleet(t, Config{}, "alpha")

	rec := do(t, h, "POST", "/v1/tenants", bytes.NewBufferString(`{"app":"beta"}`))
	if rec.Code != http.StatusCreated {
		t.Fatalf("create = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "POST", "/v1/tenants", bytes.NewBufferString(`{"app":"beta"}`)); rec.Code != http.StatusConflict {
		t.Fatalf("duplicate create = %d", rec.Code)
	}
	for _, bad := range []string{`{"app":"../evil"}`, `{"app":""}`, `{"app":"a/b"}`, `{"app":"x","nope":1}`} {
		if rec := do(t, h, "POST", "/v1/tenants", bytes.NewBufferString(bad)); rec.Code != http.StatusBadRequest {
			t.Fatalf("bad create %s = %d", bad, rec.Code)
		}
	}

	rec = do(t, h, "GET", "/v1/fleet", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("fleet status = %d", rec.Code)
	}
	var st FleetStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Tenants) != 2 || st.Default != "alpha" {
		t.Fatalf("fleet status = %+v", st)
	}
	if st.Tenants[0].App != "alpha" || st.Tenants[0].ActiveVersion != 1 {
		t.Fatalf("tenant row = %+v", st.Tenants[0])
	}

	if rec := do(t, h, "DELETE", "/v1/tenants/beta", nil); rec.Code != http.StatusOK {
		t.Fatalf("retire = %d", rec.Code)
	}
	if rec := do(t, h, "DELETE", "/v1/tenants/beta", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("double retire = %d", rec.Code)
	}
	if rec := do(t, h, "GET", "/v1/t/nosuch/v1/status", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown tenant = %d", rec.Code)
	}
}

// TestFleetCapacityBound: creation beyond MaxTenants is shed with 503 and a
// Retry-After, and retiring a tenant frees the slot.
func TestFleetCapacityBound(t *testing.T) {
	fl, h := newToyFleet(t, Config{MaxTenants: 1}, "only")
	rec := do(t, h, "POST", "/v1/tenants", bytes.NewBufferString(`{"app":"over"}`))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity create = %d", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("over-capacity shed carries no Retry-After")
	}
	if err := fl.Retire("only"); err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Create(TenantSpec{App: "over"}); err != nil {
		t.Fatalf("create after retire: %v", err)
	}
}

// TestManifestParsing pins the strict manifest grammar.
func TestManifestParsing(t *testing.T) {
	good := `{"tenants":[
		{"app":"social","spec":"social","bootstrap_days":2},
		{"app":"synth-60","spec":"gen:seed=9,components=60","retention":2880}
	]}`
	m, err := ParseManifest(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Tenants) != 2 || m.Tenants[1].Retention != 2880 {
		t.Fatalf("manifest = %+v", m)
	}

	for name, doc := range map[string]string{
		"empty":        `{"tenants":[]}`,
		"no doc":       ``,
		"unknown key":  `{"tenants":[{"app":"a","color":"red"}]}`,
		"duplicate id": `{"tenants":[{"app":"a"},{"app":"a"}]}`,
		"traversal":    `{"tenants":[{"app":"../../etc"}]}`,
		"separator":    `{"tenants":[{"app":"a/b"}]}`,
		"dot":          `{"tenants":[{"app":"a.b"}]}`,
		"leading dash": `{"tenants":[{"app":"-a"}]}`,
		"days range":   `{"tenants":[{"app":"a","bootstrap_days":99}]}`,
		"trailing":     `{"tenants":[{"app":"a"}]} {}`,
	} {
		if _, err := ParseManifest(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: manifest accepted: %s", name, doc)
		}
	}
}

// TestValidateID pins the id grammar at the unit level.
func TestValidateID(t *testing.T) {
	for _, ok := range []string{"a", "social", "A-1_b", "x" + strings.Repeat("y", 63)} {
		if err := ValidateID(ok); err != nil {
			t.Errorf("ValidateID(%q) = %v", ok, err)
		}
	}
	for _, bad := range []string{"", "..", ".", "a.b", "a/b", `a\b`, "-a", "_a",
		"a b", "a\x00b", "über", "x" + strings.Repeat("y", 64)} {
		if err := ValidateID(bad); err == nil {
			t.Errorf("ValidateID(%q) accepted", bad)
		}
	}
}
