// Package autoscale turns resource estimates into schedule-based scaling
// plans — the §2 use case the paper positions DeepRest for: unlike reactive
// autoscalers, which act only after load changes (too late for resources
// that take time to provision), a schedule allocates each resource ahead of
// time from the estimated demand, with headroom taken from the estimator's
// confidence interval.
//
// The package also scores plans against measured consumption, so the
// experiment drivers can compare "what would the cluster have looked like"
// under DeepRest-driven scheduling versus the baselines: violation minutes
// (demand above allocation → queueing/SLO risk) and waste (allocation above
// demand → cost).
package autoscale

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/app"
	"repro/internal/estimator"
)

// Config controls plan construction.
type Config struct {
	// IntervalWindows is the scheduling granularity: one allocation
	// decision per this many windows (e.g. an hour's worth). Resources
	// cannot be re-provisioned per scrape window.
	IntervalWindows int
	// Headroom is the fractional margin added above the estimate
	// (default 0.10).
	Headroom float64
	// UseUpper allocates against the upper confidence bound when
	// available, falling back to the expected value (default true).
	UseUpper bool
	// MinChange is the relative hysteresis: a new interval keeps the
	// previous allocation unless it differs by more than this fraction
	// (default 0.05), avoiding allocation churn.
	MinChange float64
}

// DefaultConfig returns conventional planning parameters.
func DefaultConfig() Config {
	return Config{IntervalWindows: 12, Headroom: 0.10, UseUpper: true, MinChange: 0.05}
}

// Allocation is one scheduled reservation: Amount of the resource over the
// window range [From, To).
type Allocation struct {
	From, To int
	Amount   float64
}

// Schedule is a per-pair allocation timetable.
type Schedule map[app.Pair][]Allocation

// Plan builds a schedule from interval estimates. For each scheduling
// interval the allocation covers the interval's peak estimated demand plus
// headroom.
func Plan(estimates map[app.Pair]estimator.Estimate, cfg Config) (Schedule, error) {
	if cfg.IntervalWindows <= 0 {
		return nil, fmt.Errorf("autoscale: IntervalWindows must be positive")
	}
	if cfg.Headroom < 0 {
		return nil, fmt.Errorf("autoscale: negative headroom")
	}
	out := make(Schedule, len(estimates))
	for p, est := range estimates {
		series := est.Exp
		if cfg.UseUpper && len(est.Up) == len(est.Exp) {
			series = est.Up
		}
		out[p] = planSeries(series, cfg)
	}
	return out, nil
}

// PlanSeries builds the allocation timetable for a single estimated demand
// series — the entry point for callers that bring estimates from any
// source (e.g. a baseline forecaster).
func PlanSeries(series []float64, cfg Config) ([]Allocation, error) {
	if cfg.IntervalWindows <= 0 {
		return nil, fmt.Errorf("autoscale: IntervalWindows must be positive")
	}
	return planSeries(series, cfg), nil
}

// Planner applies the allocation rule (interval peak + headroom, bounded
// hysteresis) one scheduling interval at a time. It is the incremental form
// of PlanSeries, shared with the closed control loop in internal/ctrl so
// the loop and the offline planner cannot drift apart semantically.
type Planner struct {
	cfg  Config
	prev float64
	live bool
}

// NewPlanner returns a Planner with the given headroom and hysteresis
// settings (IntervalWindows is not used: the caller decides the cadence by
// when it calls Next).
func NewPlanner(cfg Config) (*Planner, error) {
	if cfg.Headroom < 0 {
		return nil, fmt.Errorf("autoscale: negative headroom")
	}
	if cfg.MinChange < 0 {
		return nil, fmt.Errorf("autoscale: negative MinChange")
	}
	return &Planner{cfg: cfg}, nil
}

// Next consumes one scheduling interval's demand peak and returns the
// amount to allocate for that interval.
//
// Hysteresis is only allowed to spend headroom, never SLO: the previous
// allocation is kept when the desired change falls inside the MinChange
// dead-band AND the held amount still covers the interval's raw demand
// peak. Comparing against the last *actual* allocation (not the unclamped
// desired amount) bounds cumulative drift to the dead-band, and the
// peak-coverage condition bounds under-provisioning at zero: a slow
// monotonic ramp whose per-interval change stays inside the dead-band
// still triggers a reallocation the moment the held amount would sit
// below demand.
func (pl *Planner) Next(peak float64) float64 {
	amount := peak * (1 + pl.cfg.Headroom)
	if pl.live && math.Abs(amount-pl.prev) <= pl.cfg.MinChange*math.Max(pl.prev, 1e-9) && pl.prev >= peak {
		amount = pl.prev
	}
	pl.prev = amount
	pl.live = true
	return amount
}

// Last returns the most recent allocation decision (0 before the first
// Next call).
func (pl *Planner) Last() float64 { return pl.prev }

func planSeries(series []float64, cfg Config) []Allocation {
	var out []Allocation
	pl := &Planner{cfg: cfg}
	for from := 0; from < len(series); from += cfg.IntervalWindows {
		to := from + cfg.IntervalWindows
		if to > len(series) {
			to = len(series)
		}
		peak := 0.0
		for _, v := range series[from:to] {
			if v > peak {
				peak = v
			}
		}
		amount := pl.Next(peak)
		if len(out) > 0 && out[len(out)-1].Amount == amount {
			out[len(out)-1].To = to
		} else {
			out = append(out, Allocation{From: from, To: to, Amount: amount})
		}
	}
	return out
}

// Horizon returns the end of the planned range — the first window the
// schedule says nothing about (0 for an empty schedule).
func Horizon(allocs []Allocation) int {
	if len(allocs) == 0 {
		return 0
	}
	return allocs[len(allocs)-1].To
}

// AllocationAt returns the allocated amount for window w, or 0 when w is
// outside the planned horizon. Allocations are contiguous and sorted by
// construction, so the lookup is a binary search — it sits in the control
// loop's per-window hot path. Callers that actuate capacities should
// usually prefer AllocationAtHold, which does not drop to zero past the
// horizon.
func AllocationAt(allocs []Allocation, w int) float64 {
	i := sort.Search(len(allocs), func(i int) bool { return allocs[i].To > w })
	if i < len(allocs) && w >= allocs[i].From {
		return allocs[i].Amount
	}
	return 0
}

// AllocationAtHold is AllocationAt with hold-last semantics: windows past
// the planned horizon keep the final allocation instead of reading as an
// (impossible) zero reservation. Use it wherever an allocation becomes a
// provisioned capacity.
func AllocationAtHold(allocs []Allocation, w int) float64 {
	if n := len(allocs); n > 0 && w >= allocs[n-1].To {
		return allocs[n-1].Amount
	}
	return AllocationAt(allocs, w)
}

// Report scores a schedule against measured demand.
type Report struct {
	// ViolationFrac is the fraction of windows where demand exceeded the
	// allocation (under-provisioning → SLO risk).
	ViolationFrac float64
	// ViolationDepth is the mean relative shortfall over violating
	// windows.
	ViolationDepth float64
	// WasteFrac is the total over-allocation as a fraction of total
	// demand (cost of head-room and estimation error).
	WasteFrac float64
	// Changes is the number of allocation changes (provisioning churn).
	Changes int
	// BeyondHorizon counts measured windows past the planned horizon.
	// Those windows are excluded from scoring — the plan says nothing
	// about them — instead of being charged as phantom depth-1.0
	// violations against a zero allocation. A non-zero value is the
	// explicit horizon-mismatch signal for callers that expected the
	// plan to cover the whole measured range.
	BeyondHorizon int
}

// Assess compares one pair's allocations against the measured series.
// Scoring is truncated to the planned horizon: windows the schedule does
// not cover are counted in Report.BeyondHorizon rather than scored as
// violations of an all-zero allocation.
func Assess(allocs []Allocation, actual []float64) Report {
	var rep Report
	n := len(actual)
	if h := Horizon(allocs); n > h {
		rep.BeyondHorizon = n - h
		n = h
	}
	if n == 0 {
		return rep
	}
	violations := 0
	depth := 0.0
	waste := 0.0
	demand := 0.0
	for w, d := range actual[:n] {
		a := AllocationAt(allocs, w)
		demand += d
		if d > a {
			violations++
			if d > 0 {
				depth += (d - a) / d
			}
		} else {
			waste += a - d
		}
	}
	rep.ViolationFrac = float64(violations) / float64(n)
	if violations > 0 {
		rep.ViolationDepth = depth / float64(violations)
	}
	if demand > 0 {
		rep.WasteFrac = waste / demand
	}
	rep.Changes = len(allocs) - 1
	if rep.Changes < 0 {
		rep.Changes = 0
	}
	return rep
}

// AssessSchedule aggregates Assess over every pair of a schedule, averaging
// the fractions (BeyondHorizon is summed). Pairs are visited in sorted
// order, so a missing-measurement error is deterministic regardless of map
// iteration order.
func AssessSchedule(s Schedule, actual map[app.Pair][]float64) (Report, error) {
	pairs := make([]app.Pair, 0, len(s))
	for p := range s {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].String() < pairs[j].String() })
	var agg Report
	for _, p := range pairs {
		series, ok := actual[p]
		if !ok {
			return Report{}, fmt.Errorf("autoscale: no measurements for %s", p)
		}
		r := Assess(s[p], series)
		agg.ViolationFrac += r.ViolationFrac
		agg.ViolationDepth += r.ViolationDepth
		agg.WasteFrac += r.WasteFrac
		agg.Changes += r.Changes
		agg.BeyondHorizon += r.BeyondHorizon
	}
	if len(pairs) == 0 {
		return agg, nil
	}
	n := float64(len(pairs))
	agg.ViolationFrac /= n
	agg.ViolationDepth /= n
	agg.WasteFrac /= n
	return agg, nil
}
