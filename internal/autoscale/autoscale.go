// Package autoscale turns resource estimates into schedule-based scaling
// plans — the §2 use case the paper positions DeepRest for: unlike reactive
// autoscalers, which act only after load changes (too late for resources
// that take time to provision), a schedule allocates each resource ahead of
// time from the estimated demand, with headroom taken from the estimator's
// confidence interval.
//
// The package also scores plans against measured consumption, so the
// experiment drivers can compare "what would the cluster have looked like"
// under DeepRest-driven scheduling versus the baselines: violation minutes
// (demand above allocation → queueing/SLO risk) and waste (allocation above
// demand → cost).
package autoscale

import (
	"fmt"
	"math"

	"repro/internal/app"
	"repro/internal/estimator"
)

// Config controls plan construction.
type Config struct {
	// IntervalWindows is the scheduling granularity: one allocation
	// decision per this many windows (e.g. an hour's worth). Resources
	// cannot be re-provisioned per scrape window.
	IntervalWindows int
	// Headroom is the fractional margin added above the estimate
	// (default 0.10).
	Headroom float64
	// UseUpper allocates against the upper confidence bound when
	// available, falling back to the expected value (default true).
	UseUpper bool
	// MinChange is the relative hysteresis: a new interval keeps the
	// previous allocation unless it differs by more than this fraction
	// (default 0.05), avoiding allocation churn.
	MinChange float64
}

// DefaultConfig returns conventional planning parameters.
func DefaultConfig() Config {
	return Config{IntervalWindows: 12, Headroom: 0.10, UseUpper: true, MinChange: 0.05}
}

// Allocation is one scheduled reservation: Amount of the resource over the
// window range [From, To).
type Allocation struct {
	From, To int
	Amount   float64
}

// Schedule is a per-pair allocation timetable.
type Schedule map[app.Pair][]Allocation

// Plan builds a schedule from interval estimates. For each scheduling
// interval the allocation covers the interval's peak estimated demand plus
// headroom.
func Plan(estimates map[app.Pair]estimator.Estimate, cfg Config) (Schedule, error) {
	if cfg.IntervalWindows <= 0 {
		return nil, fmt.Errorf("autoscale: IntervalWindows must be positive")
	}
	if cfg.Headroom < 0 {
		return nil, fmt.Errorf("autoscale: negative headroom")
	}
	out := make(Schedule, len(estimates))
	for p, est := range estimates {
		series := est.Exp
		if cfg.UseUpper && len(est.Up) == len(est.Exp) {
			series = est.Up
		}
		out[p] = planSeries(series, cfg)
	}
	return out, nil
}

// PlanSeries builds the allocation timetable for a single estimated demand
// series — the entry point for callers that bring estimates from any
// source (e.g. a baseline forecaster).
func PlanSeries(series []float64, cfg Config) ([]Allocation, error) {
	if cfg.IntervalWindows <= 0 {
		return nil, fmt.Errorf("autoscale: IntervalWindows must be positive")
	}
	return planSeries(series, cfg), nil
}

func planSeries(series []float64, cfg Config) []Allocation {
	var out []Allocation
	prev := math.NaN()
	for from := 0; from < len(series); from += cfg.IntervalWindows {
		to := from + cfg.IntervalWindows
		if to > len(series) {
			to = len(series)
		}
		peak := 0.0
		for _, v := range series[from:to] {
			if v > peak {
				peak = v
			}
		}
		amount := peak * (1 + cfg.Headroom)
		// Hysteresis: keep the previous allocation for small changes.
		if !math.IsNaN(prev) && math.Abs(amount-prev) <= cfg.MinChange*math.Max(prev, 1e-9) {
			amount = prev
		}
		if len(out) > 0 && out[len(out)-1].Amount == amount {
			out[len(out)-1].To = to
		} else {
			out = append(out, Allocation{From: from, To: to, Amount: amount})
		}
		prev = amount
	}
	return out
}

// AllocationAt returns the allocated amount for window w (0 beyond the
// schedule).
func AllocationAt(allocs []Allocation, w int) float64 {
	for _, a := range allocs {
		if w >= a.From && w < a.To {
			return a.Amount
		}
	}
	return 0
}

// Report scores a schedule against measured demand.
type Report struct {
	// ViolationFrac is the fraction of windows where demand exceeded the
	// allocation (under-provisioning → SLO risk).
	ViolationFrac float64
	// ViolationDepth is the mean relative shortfall over violating
	// windows.
	ViolationDepth float64
	// WasteFrac is the total over-allocation as a fraction of total
	// demand (cost of head-room and estimation error).
	WasteFrac float64
	// Changes is the number of allocation changes (provisioning churn).
	Changes int
}

// Assess compares one pair's allocations against the measured series.
func Assess(allocs []Allocation, actual []float64) Report {
	var rep Report
	if len(actual) == 0 {
		return rep
	}
	violations := 0
	depth := 0.0
	waste := 0.0
	demand := 0.0
	for w, d := range actual {
		a := AllocationAt(allocs, w)
		demand += d
		if d > a {
			violations++
			if d > 0 {
				depth += (d - a) / d
			}
		} else {
			waste += a - d
		}
	}
	rep.ViolationFrac = float64(violations) / float64(len(actual))
	if violations > 0 {
		rep.ViolationDepth = depth / float64(violations)
	}
	if demand > 0 {
		rep.WasteFrac = waste / demand
	}
	rep.Changes = len(allocs) - 1
	if rep.Changes < 0 {
		rep.Changes = 0
	}
	return rep
}

// AssessSchedule aggregates Assess over every pair of a schedule, averaging
// the fractions.
func AssessSchedule(s Schedule, actual map[app.Pair][]float64) (Report, error) {
	var agg Report
	n := 0
	for p, allocs := range s {
		series, ok := actual[p]
		if !ok {
			return Report{}, fmt.Errorf("autoscale: no measurements for %s", p)
		}
		r := Assess(allocs, series)
		agg.ViolationFrac += r.ViolationFrac
		agg.ViolationDepth += r.ViolationDepth
		agg.WasteFrac += r.WasteFrac
		agg.Changes += r.Changes
		n++
	}
	if n == 0 {
		return agg, nil
	}
	agg.ViolationFrac /= float64(n)
	agg.ViolationDepth /= float64(n)
	agg.WasteFrac /= float64(n)
	return agg, nil
}
