package autoscale

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/app"
	"repro/internal/estimator"
)

func TestPlanSeriesBasics(t *testing.T) {
	series := []float64{10, 20, 30, 5, 5, 5}
	cfg := Config{IntervalWindows: 3, Headroom: 0.10}
	allocs, err := PlanSeries(series, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != 2 {
		t.Fatalf("allocations = %v", allocs)
	}
	if math.Abs(allocs[0].Amount-33) > 1e-9 {
		t.Errorf("first allocation = %v, want 33 (peak 30 + 10%%)", allocs[0].Amount)
	}
	if math.Abs(allocs[1].Amount-5.5) > 1e-9 {
		t.Errorf("second allocation = %v, want 5.5", allocs[1].Amount)
	}
	if allocs[0].From != 0 || allocs[0].To != 3 || allocs[1].To != 6 {
		t.Errorf("ranges = %v", allocs)
	}
}

func TestPlanHysteresisMergesIntervals(t *testing.T) {
	// Small fluctuations should not change the allocation.
	series := []float64{100, 101, 99, 100, 102, 98}
	cfg := Config{IntervalWindows: 2, Headroom: 0, MinChange: 0.05}
	allocs, _ := PlanSeries(series, cfg)
	if len(allocs) != 1 {
		t.Fatalf("hysteresis should merge to one allocation, got %v", allocs)
	}
	if allocs[0].From != 0 || allocs[0].To != 6 {
		t.Errorf("merged range = %v", allocs[0])
	}
}

func TestPlanValidation(t *testing.T) {
	if _, err := PlanSeries([]float64{1}, Config{}); err == nil {
		t.Error("zero interval must fail")
	}
	if _, err := Plan(nil, Config{IntervalWindows: 2, Headroom: -1}); err == nil {
		t.Error("negative headroom must fail")
	}
}

func TestPlanUsesUpperBound(t *testing.T) {
	p := app.Pair{Component: "A", Resource: app.CPU}
	est := map[app.Pair]estimator.Estimate{p: {
		Exp: []float64{10, 10},
		Up:  []float64{15, 15},
		Low: []float64{8, 8},
	}}
	cfg := Config{IntervalWindows: 2, UseUpper: true}
	s, err := Plan(est, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s[p][0].Amount; got != 15 {
		t.Errorf("allocation = %v, want 15 (upper bound)", got)
	}
	cfg.UseUpper = false
	s, _ = Plan(est, cfg)
	if got := s[p][0].Amount; got != 10 {
		t.Errorf("allocation = %v, want 10 (expected value)", got)
	}
}

func TestAllocationAt(t *testing.T) {
	allocs := []Allocation{{From: 0, To: 3, Amount: 5}, {From: 3, To: 6, Amount: 9}}
	if AllocationAt(allocs, 2) != 5 || AllocationAt(allocs, 3) != 9 {
		t.Error("AllocationAt boundaries wrong")
	}
	if AllocationAt(allocs, 10) != 0 {
		t.Error("out-of-schedule should be 0")
	}
}

func TestAssess(t *testing.T) {
	allocs := []Allocation{{From: 0, To: 4, Amount: 10}}
	actual := []float64{8, 12, 9, 20}
	r := Assess(allocs, actual)
	if r.ViolationFrac != 0.5 {
		t.Errorf("ViolationFrac = %v, want 0.5", r.ViolationFrac)
	}
	// Shortfalls: (12-10)/12 and (20-10)/20 → mean ≈ 0.3333.
	if math.Abs(r.ViolationDepth-((2.0/12+10.0/20)/2)) > 1e-9 {
		t.Errorf("ViolationDepth = %v", r.ViolationDepth)
	}
	// Waste: (10-8) + (10-9) = 3 over demand 49.
	if math.Abs(r.WasteFrac-3.0/49) > 1e-9 {
		t.Errorf("WasteFrac = %v", r.WasteFrac)
	}
	if r.Changes != 0 {
		t.Errorf("Changes = %d", r.Changes)
	}
	if got := Assess(nil, nil); got != (Report{}) {
		t.Error("empty assessment should be zero")
	}
}

func TestAssessSchedule(t *testing.T) {
	p := app.Pair{Component: "A", Resource: app.CPU}
	q := app.Pair{Component: "B", Resource: app.CPU}
	s := Schedule{
		p: {{From: 0, To: 2, Amount: 10}},
		q: {{From: 0, To: 2, Amount: 10}},
	}
	actual := map[app.Pair][]float64{
		p: {5, 5},   // no violations
		q: {20, 20}, // all violations
	}
	r, err := AssessSchedule(s, actual)
	if err != nil {
		t.Fatal(err)
	}
	if r.ViolationFrac != 0.5 {
		t.Errorf("mean ViolationFrac = %v", r.ViolationFrac)
	}
	delete(actual, q)
	if _, err := AssessSchedule(s, actual); err == nil {
		t.Error("missing measurements must fail")
	}
}

// Property: with zero estimation error and any non-negative headroom, a
// plan built from the demand itself never violates.
func TestPerfectPlanNeverViolatesProperty(t *testing.T) {
	f := func(raw []float64, h8 uint8) bool {
		series := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				series = append(series, math.Abs(v))
			}
		}
		if len(series) == 0 {
			return true
		}
		cfg := Config{IntervalWindows: 3, Headroom: float64(h8) / 255}
		allocs, err := PlanSeries(series, cfg)
		if err != nil {
			return false
		}
		return Assess(allocs, series).ViolationFrac == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
