package autoscale

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/app"
	"repro/internal/estimator"
)

func TestPlanSeriesBasics(t *testing.T) {
	series := []float64{10, 20, 30, 5, 5, 5}
	cfg := Config{IntervalWindows: 3, Headroom: 0.10}
	allocs, err := PlanSeries(series, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != 2 {
		t.Fatalf("allocations = %v", allocs)
	}
	if math.Abs(allocs[0].Amount-33) > 1e-9 {
		t.Errorf("first allocation = %v, want 33 (peak 30 + 10%%)", allocs[0].Amount)
	}
	if math.Abs(allocs[1].Amount-5.5) > 1e-9 {
		t.Errorf("second allocation = %v, want 5.5", allocs[1].Amount)
	}
	if allocs[0].From != 0 || allocs[0].To != 3 || allocs[1].To != 6 {
		t.Errorf("ranges = %v", allocs)
	}
}

func TestPlanHysteresisMergesIntervals(t *testing.T) {
	// Small fluctuations should not change the allocation. Hysteresis may
	// only spend headroom (the held amount must still cover each
	// interval's raw peak), so the dead-band needs headroom to live in.
	series := []float64{100, 101, 99, 100, 102, 98}
	cfg := Config{IntervalWindows: 2, Headroom: 0.10, MinChange: 0.05}
	allocs, _ := PlanSeries(series, cfg)
	if len(allocs) != 1 {
		t.Fatalf("hysteresis should merge to one allocation, got %v", allocs)
	}
	if allocs[0].From != 0 || allocs[0].To != 6 {
		t.Errorf("merged range = %v", allocs[0])
	}
}

func TestPlanRampRegression(t *testing.T) {
	// Regression for the hysteresis ratchet: a slow monotonic ramp whose
	// per-interval change stays inside the MinChange dead-band. The
	// pre-fix planner kept the stale allocation as long as the change was
	// small, baking under-provisioned intervals into the plan; the fix
	// only holds an allocation while it still covers the interval's raw
	// demand peak, so drift below demand is bounded at zero.
	var series []float64
	level := 100.0
	for i := 0; i < 6; i++ { // +4% per interval, under MinChange=0.05
		for w := 0; w < 4; w++ {
			series = append(series, level)
		}
		level *= 1.04
	}
	cfg := Config{IntervalWindows: 4, Headroom: 0, MinChange: 0.05}
	allocs, err := PlanSeries(series, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for w, d := range series {
		if a := AllocationAt(allocs, w); a < d {
			t.Fatalf("window %d: allocation %.2f below demand %.2f (ratchet)", w, a, d)
		}
	}
	if rep := Assess(allocs, series); rep.ViolationFrac != 0 {
		t.Errorf("ramp plan violates %.0f%% of windows, want 0", 100*rep.ViolationFrac)
	}
}

func TestPlannerIncrementalMatchesPlanSeries(t *testing.T) {
	// The control loop's incremental Planner and the offline planSeries
	// must produce identical allocations for the same peaks.
	series := []float64{10, 12, 11, 30, 29, 31, 30.5, 30.4, 5, 6, 5.5, 5.2}
	cfg := Config{IntervalWindows: 4, Headroom: 0.10, MinChange: 0.05}
	allocs, err := PlanSeries(series, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPlanner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for from := 0; from < len(series); from += cfg.IntervalWindows {
		to := from + cfg.IntervalWindows
		peak := 0.0
		for _, v := range series[from:to] {
			if v > peak {
				peak = v
			}
		}
		got := pl.Next(peak)
		if want := AllocationAt(allocs, from); got != want {
			t.Errorf("interval at %d: Planner %.3f, PlanSeries %.3f", from, got, want)
		}
		if pl.Last() != got {
			t.Errorf("Last() = %v after Next() = %v", pl.Last(), got)
		}
	}
	if _, err := NewPlanner(Config{Headroom: -1}); err == nil {
		t.Error("negative headroom must fail")
	}
	if _, err := NewPlanner(Config{MinChange: -1}); err == nil {
		t.Error("negative MinChange must fail")
	}
}

func TestPlanValidation(t *testing.T) {
	if _, err := PlanSeries([]float64{1}, Config{}); err == nil {
		t.Error("zero interval must fail")
	}
	if _, err := Plan(nil, Config{IntervalWindows: 2, Headroom: -1}); err == nil {
		t.Error("negative headroom must fail")
	}
}

func TestPlanUsesUpperBound(t *testing.T) {
	p := app.Pair{Component: "A", Resource: app.CPU}
	est := map[app.Pair]estimator.Estimate{p: {
		Exp: []float64{10, 10},
		Up:  []float64{15, 15},
		Low: []float64{8, 8},
	}}
	cfg := Config{IntervalWindows: 2, UseUpper: true}
	s, err := Plan(est, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s[p][0].Amount; got != 15 {
		t.Errorf("allocation = %v, want 15 (upper bound)", got)
	}
	cfg.UseUpper = false
	s, _ = Plan(est, cfg)
	if got := s[p][0].Amount; got != 10 {
		t.Errorf("allocation = %v, want 10 (expected value)", got)
	}
}

func TestAllocationAt(t *testing.T) {
	allocs := []Allocation{{From: 0, To: 3, Amount: 5}, {From: 3, To: 6, Amount: 9}}
	if AllocationAt(allocs, 2) != 5 || AllocationAt(allocs, 3) != 9 {
		t.Error("AllocationAt boundaries wrong")
	}
	if AllocationAt(allocs, 10) != 0 {
		t.Error("out-of-schedule should be 0")
	}
	if AllocationAt(allocs, -1) != 0 || AllocationAt(nil, 0) != 0 {
		t.Error("out-of-range lookups should be 0")
	}
	if AllocationAtHold(allocs, 10) != 9 || AllocationAtHold(allocs, 6) != 9 {
		t.Error("AllocationAtHold should extend the last allocation")
	}
	if AllocationAtHold(allocs, 2) != 5 || AllocationAtHold(nil, 3) != 0 {
		t.Error("AllocationAtHold in-schedule/empty lookups wrong")
	}
	if Horizon(allocs) != 6 || Horizon(nil) != 0 {
		t.Error("Horizon wrong")
	}
}

// TestAllocationAtMatchesLinear pins the binary search against the obvious
// linear reference on randomized contiguous schedules.
func TestAllocationAtMatchesLinear(t *testing.T) {
	linear := func(allocs []Allocation, w int) float64 {
		for _, a := range allocs {
			if w >= a.From && w < a.To {
				return a.Amount
			}
		}
		return 0
	}
	f := func(lens []uint8, probe uint16) bool {
		var allocs []Allocation
		from := 0
		for i, l := range lens {
			n := int(l%7) + 1
			allocs = append(allocs, Allocation{From: from, To: from + n, Amount: float64(i + 1)})
			from += n
		}
		w := int(probe) % (from + 10)
		return AllocationAt(allocs, w) == linear(allocs, w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAssessHorizonMismatch(t *testing.T) {
	// Measured series longer than the plan: the extra windows must be
	// reported as a horizon mismatch, not scored as depth-1.0 violations
	// against a phantom zero allocation.
	allocs := []Allocation{{From: 0, To: 2, Amount: 10}}
	actual := []float64{5, 5, 8, 8, 8, 8}
	r := Assess(allocs, actual)
	if r.BeyondHorizon != 4 {
		t.Errorf("BeyondHorizon = %d, want 4", r.BeyondHorizon)
	}
	if r.ViolationFrac != 0 {
		t.Errorf("ViolationFrac = %v, want 0 (no violation inside the horizon)", r.ViolationFrac)
	}
	if r.ViolationDepth != 0 {
		t.Errorf("ViolationDepth = %v, want 0", r.ViolationDepth)
	}
	// An empty schedule scores nothing: every window is beyond the
	// (zero-length) horizon.
	r = Assess(nil, actual)
	if r.BeyondHorizon != len(actual) || r.ViolationFrac != 0 {
		t.Errorf("empty schedule: %+v", r)
	}
}

func TestAssess(t *testing.T) {
	allocs := []Allocation{{From: 0, To: 4, Amount: 10}}
	actual := []float64{8, 12, 9, 20}
	r := Assess(allocs, actual)
	if r.ViolationFrac != 0.5 {
		t.Errorf("ViolationFrac = %v, want 0.5", r.ViolationFrac)
	}
	// Shortfalls: (12-10)/12 and (20-10)/20 → mean ≈ 0.3333.
	if math.Abs(r.ViolationDepth-((2.0/12+10.0/20)/2)) > 1e-9 {
		t.Errorf("ViolationDepth = %v", r.ViolationDepth)
	}
	// Waste: (10-8) + (10-9) = 3 over demand 49.
	if math.Abs(r.WasteFrac-3.0/49) > 1e-9 {
		t.Errorf("WasteFrac = %v", r.WasteFrac)
	}
	if r.Changes != 0 {
		t.Errorf("Changes = %d", r.Changes)
	}
	if got := Assess(nil, nil); got != (Report{}) {
		t.Error("empty assessment should be zero")
	}
}

func TestAssessSchedule(t *testing.T) {
	p := app.Pair{Component: "A", Resource: app.CPU}
	q := app.Pair{Component: "B", Resource: app.CPU}
	s := Schedule{
		p: {{From: 0, To: 2, Amount: 10}},
		q: {{From: 0, To: 2, Amount: 10}},
	}
	actual := map[app.Pair][]float64{
		p: {5, 5},   // no violations
		q: {20, 20}, // all violations
	}
	r, err := AssessSchedule(s, actual)
	if err != nil {
		t.Fatal(err)
	}
	if r.ViolationFrac != 0.5 {
		t.Errorf("mean ViolationFrac = %v", r.ViolationFrac)
	}
	delete(actual, q)
	if _, err := AssessSchedule(s, actual); err == nil {
		t.Error("missing measurements must fail")
	}
}

func TestAssessScheduleEmpty(t *testing.T) {
	r, err := AssessSchedule(Schedule{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r != (Report{}) {
		t.Errorf("empty schedule report = %+v, want zero", r)
	}
}

// TestAssessScheduleDeterministicError: with several pairs missing from the
// measurements, the reported pair must not depend on map iteration order.
func TestAssessScheduleDeterministicError(t *testing.T) {
	s := Schedule{}
	for _, c := range []string{"Zeta", "Alpha", "Mid", "Beta"} {
		s[app.Pair{Component: c, Resource: app.CPU}] = []Allocation{{From: 0, To: 2, Amount: 1}}
	}
	want := ""
	for i := 0; i < 20; i++ {
		_, err := AssessSchedule(s, map[app.Pair][]float64{})
		if err == nil {
			t.Fatal("missing measurements must fail")
		}
		if want == "" {
			want = err.Error()
		} else if err.Error() != want {
			t.Fatalf("error changed across runs: %q vs %q", err.Error(), want)
		}
	}
	if want != "autoscale: no measurements for Alpha/cpu" {
		t.Errorf("error should name the lexicographically first missing pair, got %q", want)
	}
}

// Property: per pair, the violating and non-violating window counts
// partition the scored range exactly — ViolationFrac·scored + ok == scored,
// with scored = len(actual) − BeyondHorizon.
func TestAssessPartitionProperty(t *testing.T) {
	f := func(raw []float64, lens []uint8) bool {
		series := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				series = append(series, math.Abs(v))
			}
		}
		var allocs []Allocation
		from := 0
		for i, l := range lens {
			n := int(l%5) + 1
			allocs = append(allocs, Allocation{From: from, To: from + n, Amount: float64(i % 3)})
			from += n
		}
		rep := Assess(allocs, series)
		scored := len(series) - rep.BeyondHorizon
		if scored < 0 {
			return false
		}
		if scored == 0 {
			return rep.ViolationFrac == 0
		}
		violations := rep.ViolationFrac * float64(scored)
		ok := 0
		for w, d := range series[:scored] {
			if d <= AllocationAt(allocs, w) {
				ok++
			}
		}
		return math.Abs(violations+float64(ok)-float64(scored)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: with zero estimation error, any non-negative headroom, and any
// hysteresis dead-band, a plan built from the demand itself never violates.
// (Pre-fix this only held with MinChange=0: the dead-band could hold an
// allocation below a later interval's peak.)
func TestPerfectPlanNeverViolatesProperty(t *testing.T) {
	f := func(raw []float64, h8, m8 uint8) bool {
		series := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				series = append(series, math.Abs(v))
			}
		}
		if len(series) == 0 {
			return true
		}
		cfg := Config{IntervalWindows: 3, Headroom: float64(h8) / 255, MinChange: float64(m8) / 255}
		allocs, err := PlanSeries(series, cfg)
		if err != nil {
			return false
		}
		return Assess(allocs, series).ViolationFrac == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
