package autoscale

import "testing"

// BenchmarkAllocationAt guards the lookup's complexity: it is called once
// per window per pair inside the control loop's hot path, so it must stay
// O(log n) in the schedule length. A regression back to the linear scan
// shows up as ~100× more ns/op at this schedule size.
func BenchmarkAllocationAt(b *testing.B) {
	const intervals = 4096
	allocs := make([]Allocation, intervals)
	for i := range allocs {
		allocs[i] = Allocation{From: i * 12, To: (i + 1) * 12, Amount: float64(i)}
	}
	horizon := Horizon(allocs)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += AllocationAt(allocs, (i*7919)%horizon)
	}
	_ = sink
}

// BenchmarkPlanSeries tracks the offline planner itself (one simulated
// month at 5-minute windows, hourly reservations).
func BenchmarkPlanSeries(b *testing.B) {
	series := make([]float64, 30*288)
	for i := range series {
		series[i] = 100 + 50*float64(i%288)/288
	}
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanSeries(series, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
