// Package obs is DeepRest's own observability layer: a dependency-free,
// concurrent metrics registry exposed in Prometheus text format.
//
// DeepRest *consumes* observability signals (traces and metrics) to estimate
// resources for other applications; this package makes the estimator itself
// measurable — request latencies on the serving endpoints, per-epoch training
// loss, generation publish times, drift scores — without pulling in any
// third-party client library (the repo is stdlib-only by policy).
//
// Three metric kinds are supported, matching the Prometheus data model:
//
//   - Counter: a monotonically increasing event count;
//   - Gauge: a value that goes up and down (in-flight requests, drift score);
//   - Histogram: fixed-bucket distribution with cumulative bucket counts,
//     sum, and count (request latencies, epoch durations).
//
// Each kind has a labelled variant (CounterVec, GaugeVec, HistogramVec) whose
// With method resolves one child series per label-value tuple.
//
// The whole API is nil-safe: every method on a nil *Registry returns a nil
// handle, and every operation on a nil handle is a no-op. Instrumented code
// therefore threads a single *Registry through its options and never guards
// call sites — a process that does not care about metrics passes nil and pays
// one predictable-branch nil check per operation.
//
// Registration is idempotent: asking for an existing name returns the same
// family, so independent subsystems may register shared metrics without
// coordination. Re-registering a name with a different type, help string, or
// label set panics — that is a programming error, not a runtime condition.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency buckets in seconds, tuned for HTTP
// handlers that range from tens of microseconds (status reads) to tens of
// seconds (training runs finishing inside a request).
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DurationBuckets are coarse wall-clock buckets in seconds for background
// operations (training epochs, generation publishes): milliseconds to
// minutes.
var DurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120, 300,
}

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

type metricType int

const (
	counterType metricType = iota
	gaugeType
	histogramType
)

func (t metricType) String() string {
	switch t {
	case counterType:
		return "counter"
	case gaugeType:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds metric families and renders them in Prometheus text format.
// All methods are safe for concurrent use. The zero value is not useful;
// a nil *Registry is: it hands out nil no-op handles.
//
// A Registry value is a *view* onto a shared family store: WithConstLabels
// derives a view that stamps a constant label pair onto every metric
// registered through it, while the exposition (Handler, WritePrometheus)
// always renders the whole store. Multi-tenant services use this to thread
// an `app` label through subsystems that register their metrics by plain
// name: each tenant instruments itself through its own labelled view, and
// all tenants' series land in the same families, distinguished by label.
type Registry struct {
	state *regState
	pre   []labelPair // constant labels prepended to every family
}

// regState is the family store shared by a registry and all its views.
type regState struct {
	mu       sync.RWMutex
	families map[string]*family
}

// labelPair is one constant name/value pair carried by a registry view.
type labelPair struct{ name, value string }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{state: &regState{families: make(map[string]*family)}}
}

// WithConstLabels derives a registry view that adds the given name/value
// pair as a leading constant label on every metric registered through it.
// Views share the underlying store: the base registry's exposition renders
// every view's series. Nested calls accumulate labels in call order.
func (r *Registry) WithConstLabels(name, value string) *Registry {
	if r == nil {
		return nil
	}
	if !labelRe.MatchString(name) || strings.HasPrefix(name, "__") {
		panic(fmt.Sprintf("obs: invalid constant label name %q", name))
	}
	pre := make([]labelPair, 0, len(r.pre)+1)
	pre = append(pre, r.pre...)
	pre = append(pre, labelPair{name, value})
	return &Registry{state: r.state, pre: pre}
}

// Root returns the registry without any constant labels — the view
// process-level metrics (build info) register through, so they stay
// unlabelled even when instrumented from inside a tenant-scoped component.
func (r *Registry) Root() *Registry {
	if r == nil || len(r.pre) == 0 {
		return r
	}
	return &Registry{state: r.state}
}

// preNames and preValues split the view's constant labels for registration
// and resolution.
func (r *Registry) preNames() []string {
	if len(r.pre) == 0 {
		return nil
	}
	out := make([]string, len(r.pre))
	for i, p := range r.pre {
		out[i] = p.name
	}
	return out
}

func (r *Registry) preValues() []string {
	if len(r.pre) == 0 {
		return nil
	}
	out := make([]string, len(r.pre))
	for i, p := range r.pre {
		out[i] = p.value
	}
	return out
}

// family is one named metric with a fixed type, help string, and label set.
type family struct {
	name    string
	help    string
	typ     metricType
	labels  []string
	buckets []float64 // histogram upper bounds, ascending, no +Inf

	mu       sync.RWMutex
	children map[string]*child // keyed by joined label values
}

// child is one series of a family: its label values plus the metric itself.
type child struct {
	values []string
	metric interface{} // *Counter | *Gauge | *Histogram
}

// family registers (or finds) a metric family, panicking on any mismatch
// with a previous registration of the same name. A view's constant label
// names are prepended to the declared label set, so every view of the same
// shape resolves to one shared family.
func (r *Registry) family(name, help string, typ metricType, buckets []float64, labels []string) *family {
	if r == nil {
		return nil
	}
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelRe.MatchString(l) || strings.HasPrefix(l, "__") {
			panic(fmt.Sprintf("obs: invalid label name %q for metric %q", l, name))
		}
	}
	labels = append(r.preNames(), labels...)
	st := r.state
	st.mu.Lock()
	defer st.mu.Unlock()
	if f, ok := st.families[name]; ok {
		if f.typ != typ || f.help != help || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different type, help, or labels", name))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   append([]string(nil), labels...),
		buckets:  normalizeBuckets(buckets),
		children: make(map[string]*child),
	}
	st.families[name] = f
	return f
}

// normalizeBuckets sorts, deduplicates, and strips any +Inf terminal bucket
// (the exposition adds +Inf implicitly).
func normalizeBuckets(buckets []float64) []float64 {
	out := make([]float64, 0, len(buckets))
	for _, b := range buckets {
		if !math.IsInf(b, +1) {
			out = append(out, b)
		}
	}
	sort.Float64s(out)
	dedup := out[:0]
	for i, b := range out {
		if i == 0 || b != out[i-1] {
			dedup = append(dedup, b)
		}
	}
	return dedup
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// labelSep joins label values into a child key. It cannot collide for
// distinct tuples unless a label value itself contains the separator byte,
// which is not a printable character and never appears in our labels.
const labelSep = "\xff"

// resolve finds or creates the child series for the given label values.
func (f *family) resolve(values []string) interface{} {
	if f == nil {
		return nil
	}
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c.metric
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c.metric
	}
	var m interface{}
	switch f.typ {
	case counterType:
		m = &Counter{}
	case gaugeType:
		m = &Gauge{}
	case histogramType:
		m = newHistogram(f.buckets)
	}
	f.children[key] = &child{values: append([]string(nil), values...), metric: m}
	return m
}

// --- Counter ---

// Counter is a monotonically increasing event count. A nil Counter is a
// valid no-op.
type Counter struct {
	n atomic.Uint64
}

// Counter registers (or finds) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// CounterVec registers (or finds) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := r.family(name, help, counterType, nil, labels)
	if f == nil {
		return nil
	}
	return &CounterVec{f, r.preValues()}
}

// CounterVec resolves label values to counters. A vec obtained through a
// labelled registry view curries the view's constant label values.
type CounterVec struct {
	f   *family
	pre []string
}

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	c, _ := v.f.resolve(joinValues(v.pre, values)).(*Counter)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increments by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.n.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// --- Gauge ---

// Gauge is a value that can go up and down. A nil Gauge is a valid no-op.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Gauge registers (or finds) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// GaugeVec registers (or finds) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	f := r.family(name, help, gaugeType, nil, labels)
	if f == nil {
		return nil
	}
	return &GaugeVec{f, r.preValues()}
}

// GaugeVec resolves label values to gauges. A vec obtained through a
// labelled registry view curries the view's constant label values.
type GaugeVec struct {
	f   *family
	pre []string
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	g, _ := v.f.resolve(joinValues(v.pre, values)).(*Gauge)
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by delta (negative to decrement).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// --- Histogram ---

// Histogram accumulates observations into fixed buckets. A nil Histogram is
// a valid no-op.
type Histogram struct {
	upper   []float64 // ascending; the implicit final bucket is +Inf
	counts  []atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Histogram registers (or finds) an unlabelled histogram with the given
// bucket upper bounds (+Inf is implicit; nil buckets use DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramVec(name, help, buckets).With()
}

// HistogramVec registers (or finds) a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.family(name, help, histogramType, buckets, labels)
	if f == nil {
		return nil
	}
	return &HistogramVec{f, r.preValues()}
}

// HistogramVec resolves label values to histograms. A vec obtained through a
// labelled registry view curries the view's constant label values.
type HistogramVec struct {
	f   *family
	pre []string
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	h, _ := v.f.resolve(joinValues(v.pre, values)).(*Histogram)
	return h
}

// joinValues prepends a view's constant label values to the caller's.
func joinValues(pre, values []string) []string {
	if len(pre) == 0 {
		return values
	}
	out := make([]string, 0, len(pre)+len(values))
	out = append(out, pre...)
	return append(out, values...)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Latency distributions concentrate in the low buckets; a linear scan
	// over ~16 bounds beats binary search at this size and branch-predicts
	// almost perfectly.
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// snapshot returns per-bucket counts (exclusive, +Inf last), the sum, and
// the total count. The counts are loaded once so the cumulative series the
// exposition derives from them is internally consistent.
func (h *Histogram) snapshot() (counts []uint64, sum float64, total uint64) {
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		c := h.counts[i].Load()
		counts[i] = c
		total += c
	}
	return counts, math.Float64frombits(h.sumBits.Load()), total
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	_, _, total := h.snapshot()
	return total
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	_, sum, _ := h.snapshot()
	return sum
}
