package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Stage tracing: the daemon's answer to "where does its own time go".
//
// DeepRest consumes distributed traces of *other* applications; SpanTracer
// records the daemon's own operational stages — ingest → extract → score →
// train → checkpoint → swap — as timed, hierarchical spans in a fixed-size
// in-process ring. It is deliberately not a distributed tracer: spans never
// leave the process, the buffer overwrites oldest-first, and recording one
// span costs two atomic ops plus a ring slot write.
//
// Span IDs follow the same determinism discipline as the fault schedules
// (internal/faults): each ID is the splitmix64 image of (seed, sequence
// number), a pure function with no shared RNG state, so a tracer built with
// a fixed seed mints bit-identical IDs for the same operation sequence —
// tests can golden them, and concurrent Start calls stay order-independent
// apart from which sequence number each draws.
//
// Parenting flows through context.Context: Start returns a derived context
// carrying the new span, and a later Start under that context records the
// parent-child edge. Code without a context (telemetry Record, checkpoint
// writes) starts root spans. slog records cross-link via SpanID(ctx).
//
// A nil *SpanTracer is valid and records nothing; every method on a nil
// *ActiveSpan is a no-op, so instrumented code threads the tracer without
// guards, exactly like the metrics handles in this package.

// Span is one completed stage record as exposed at /debug/spans.
type Span struct {
	// ID is the span's splitmix64-minted identity; Parent is the enclosing
	// span's ID (0 for roots).
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Name is the stage, e.g. "pipeline.train" or "service.ingest".
	Name string `json:"name"`
	// App is the tenant the stage ran for ("" for process-level stages or
	// single-tenant deployments); see SpanTracer.WithApp.
	App string `json:"app,omitempty"`
	// Start is the wall-clock begin; Duration the measured elapsed time.
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	// Windows optionally counts the telemetry windows the stage covered.
	Windows int `json:"windows,omitempty"`
	// Err carries the stage's failure, empty on success.
	Err string `json:"error,omitempty"`
}

// ActiveSpan is an in-flight stage; End completes it into the ring.
type ActiveSpan struct {
	tracer  *SpanTracer
	id      uint64
	parent  uint64
	name    string
	app     string
	start   time.Time
	windows int
	err     string
	done    atomic.Bool
}

// SpanTracer records completed spans into a fixed-size ring buffer. Like the
// metrics Registry, a SpanTracer value is a view onto a shared ring: WithApp
// derives a view that stamps a tenant id onto every span it starts, while
// Snapshot and Handler always cover the whole ring.
type SpanTracer struct {
	state *tracerRing
	app   string
}

// tracerRing is the span store shared by a tracer and all its views.
type tracerRing struct {
	seed uint64
	seq  atomic.Uint64

	mu   sync.Mutex
	ring []Span
	next int // ring write cursor
	n    int // spans resident (≤ len(ring))
}

// NewSpanTracer returns a tracer retaining the most recent capacity spans
// (minimum 16). Seed drives ID minting; a fixed seed gives reproducible IDs.
func NewSpanTracer(capacity int, seed uint64) *SpanTracer {
	if capacity < 16 {
		capacity = 16
	}
	return &SpanTracer{state: &tracerRing{seed: seed, ring: make([]Span, capacity)}}
}

// WithApp derives a tracer view that stamps the given tenant id onto every
// span it starts. Views share the ring, so a fleet's spans interleave in one
// buffer and /debug/spans can filter by ?app=.
func (t *SpanTracer) WithApp(app string) *SpanTracer {
	if t == nil {
		return nil
	}
	return &SpanTracer{state: t.state, app: app}
}

// spanKey is the context key carrying the active span.
type spanKey struct{}

// spanID mints the deterministic ID of sequence number seq: the splitmix64
// finalizer chained over (seed, seq), matching internal/faults' pure-hash
// discipline. Zero is reserved for "no span", so a vanishing image is bumped.
func (t *tracerRing) spanID(seq uint64) uint64 {
	id := mix64spans(mix64spans(t.seed) ^ seq)
	if id == 0 {
		id = 1
	}
	return id
}

// mix64spans is the splitmix64 finalizer (same constants as faults.mix64,
// duplicated rather than imported to keep obs dependency-free).
func mix64spans(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Start begins a span named name, parented to the span carried by ctx (root
// when none), and returns a derived context carrying the new span. On a nil
// tracer it returns ctx unchanged and a nil span.
func (t *SpanTracer) Start(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	if t == nil {
		return ctx, nil
	}
	s := &ActiveSpan{
		tracer: t,
		id:     t.state.spanID(t.state.seq.Add(1)),
		parent: SpanID(ctx),
		name:   name,
		app:    t.app,
		start:  time.Now(),
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// SpanID returns the ID of the span carried by ctx (0 when none) — the value
// slog records embed to cross-link log lines to /debug/spans entries.
func SpanID(ctx context.Context) uint64 {
	if ctx == nil {
		return 0
	}
	if s, ok := ctx.Value(spanKey{}).(*ActiveSpan); ok && s != nil {
		return s.id
	}
	return 0
}

// ID returns the span's identity (0 on nil).
func (s *ActiveSpan) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SetWindows annotates the span with the telemetry-window count it covered.
func (s *ActiveSpan) SetWindows(n int) {
	if s != nil {
		s.windows = n
	}
}

// SetErr records the stage's failure; a nil error clears nothing.
func (s *ActiveSpan) SetErr(err error) {
	if s != nil && err != nil {
		s.err = err.Error()
	}
}

// End completes the span into the tracer's ring. Idempotent: only the first
// End records.
func (s *ActiveSpan) End() {
	if s == nil || !s.done.CompareAndSwap(false, true) {
		return
	}
	rec := Span{
		ID: s.id, Parent: s.parent, Name: s.name, App: s.app,
		Start: s.start, Duration: time.Since(s.start),
		Windows: s.windows, Err: s.err,
	}
	t := s.tracer.state
	t.mu.Lock()
	t.ring[t.next] = rec
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
}

// Snapshot returns the resident spans, oldest first. Views share the ring,
// so a view's snapshot covers every app's spans.
func (t *SpanTracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	st := t.state
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Span, 0, st.n)
	start := (st.next - st.n + len(st.ring)) % len(st.ring)
	for i := 0; i < st.n; i++ {
		out = append(out, st.ring[(start+i)%len(st.ring)])
	}
	return out
}

// spansPage is the /debug/spans JSON document.
type spansPage struct {
	Capacity int    `json:"capacity"`
	Spans    []Span `json:"spans"`
}

// Handler serves the span buffer as JSON at GET /debug/spans. Spans are
// emitted oldest first; ?name=prefix filters by span-name prefix and
// ?app=id by exact tenant id. Gated like pprof: callers mount it only on
// operator surfaces.
func (t *SpanTracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, `{"error":"stage tracing disabled"}`, http.StatusNotFound)
			return
		}
		spans := t.Snapshot()
		if prefix := r.URL.Query().Get("name"); prefix != "" {
			kept := spans[:0]
			for _, s := range spans {
				if len(s.Name) >= len(prefix) && s.Name[:len(prefix)] == prefix {
					kept = append(kept, s)
				}
			}
			spans = kept
		}
		if app := r.URL.Query().Get("app"); app != "" {
			kept := spans[:0]
			for _, s := range spans {
				if s.App == app {
					kept = append(kept, s)
				}
			}
			spans = kept
		}
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(spansPage{Capacity: len(t.state.ring), Spans: spans})
	})
}
