package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "Completed jobs.").Add(7)
	r.GaugeVec("queue_depth", "Queue depth per shard.", "shard").With("s1").Set(3.5)
	h := r.HistogramVec("req_seconds", "Request latency.", []float64{0.1, 1}, "endpoint")
	h.With("/x").Observe(0.05)
	h.With("/x").Observe(0.5)
	h.With("/x").Observe(5)

	out := scrape(t, r)
	for _, want := range []string{
		"# HELP jobs_total Completed jobs.\n# TYPE jobs_total counter\njobs_total 7\n",
		"# TYPE queue_depth gauge\nqueue_depth{shard=\"s1\"} 3.5\n",
		"# TYPE req_seconds histogram\n",
		`req_seconds_bucket{endpoint="/x",le="0.1"} 1`,
		`req_seconds_bucket{endpoint="/x",le="1"} 2`,
		`req_seconds_bucket{endpoint="/x",le="+Inf"} 3`,
		`req_seconds_sum{endpoint="/x"} 5.55`,
		`req_seconds_count{endpoint="/x"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := Lint(strings.NewReader(out)); err != nil {
		t.Fatalf("lint: %v", err)
	}
}

func TestExpositionDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("z_total", "z", "l")
	v.With("b").Inc()
	v.With("a").Inc()
	r.Counter("a_total", "a").Inc()
	out := scrape(t, r)
	// Families sorted by name, children sorted by label values.
	if !(strings.Index(out, "a_total") < strings.Index(out, "z_total")) {
		t.Fatalf("families not sorted:\n%s", out)
	}
	if !(strings.Index(out, `z_total{l="a"}`) < strings.Index(out, `z_total{l="b"}`)) {
		t.Fatalf("children not sorted:\n%s", out)
	}
	if out != scrape(t, r) {
		t.Fatal("two scrapes of an idle registry differ")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "e", "v").With("a\"b\\c\nd").Inc()
	out := scrape(t, r)
	if !strings.Contains(out, `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", out)
	}
	if err := Lint(strings.NewReader(out)); err != nil {
		t.Fatalf("lint: %v", err)
	}
}

func TestHandlerServesMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "hits").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type = %q", ct)
	}
	body, _ := io.ReadAll(rec.Body)
	if !strings.Contains(string(body), "hits_total 1") {
		t.Fatalf("body = %s", body)
	}
	if err := Lint(strings.NewReader(string(body))); err != nil {
		t.Fatalf("lint: %v", err)
	}
}

// TestLintRejectsMalformed feeds the validator hand-broken expositions; each
// must be rejected, or the /metrics grammar test proves nothing.
func TestLintRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "orphan_total 1\n",
		"bad metric name":     "# TYPE bad-name counter\nbad-name 1\n",
		"bad label name":      "# TYPE m counter\nm{bad-label=\"x\"} 1\n",
		"bad value":           "# TYPE m counter\nm notanumber\n",
		"duplicate TYPE":      "# TYPE m counter\nm 1\n# TYPE m counter\nm 2\n",
		"split family": "# TYPE m counter\nm{l=\"a\"} 1\n" +
			"# TYPE other counter\nother 1\n" +
			"# TYPE m counter\nm{l=\"b\"} 1\n",
		"help after type":   "# TYPE m counter\n# HELP m text\nm 1\n",
		"unknown type":      "# TYPE m banana\nm 1\n",
		"unterminated label": "# TYPE m counter\nm{l=\"x} 1\n",
		"histogram without inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"histogram non-monotone": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"histogram le out of order": "# TYPE h histogram\n" +
			"h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"histogram count mismatch": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 7\n",
		"histogram missing sum": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 1\nh_count 1\n",
	}
	for name, in := range cases {
		if err := Lint(strings.NewReader(in)); err == nil {
			t.Errorf("%s: lint accepted malformed input:\n%s", name, in)
		}
	}
}

func TestLintAcceptsRealWorldShapes(t *testing.T) {
	good := `# HELP up Scrape success.
# TYPE up gauge
up 1
# HELP http_seconds Latency.
# TYPE http_seconds histogram
http_seconds_bucket{code="200",le="0.1"} 2
http_seconds_bucket{code="200",le="+Inf"} 3
http_seconds_sum{code="200"} 1.5
http_seconds_count{code="200"} 3
# TYPE untyped_thing untyped
untyped_thing 42 1712000000
`
	if err := Lint(strings.NewReader(good)); err != nil {
		t.Fatalf("lint rejected valid exposition: %v", err)
	}
}
