package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Lint validates a Prometheus text-format exposition (version 0.0.4) against
// the grammar an actual scraper enforces:
//
//   - metric and label names match the Prometheus charsets;
//   - every sample belongs to a family announced by a preceding # TYPE line,
//     with # HELP (when present) coming first, and each family appearing as
//     one contiguous block;
//   - sample suffixes match the family type (_bucket/_sum/_count only on
//     histograms);
//   - every histogram series has monotonically non-decreasing cumulative
//     bucket counts over increasing le bounds, terminated by an le="+Inf"
//     bucket that equals the series' _count, and carries a _sum;
//   - all sample values parse as floats.
//
// It exists so tests can scrape /metrics and prove the endpoint emits what a
// real Prometheus server would ingest, not something that merely looks right.
func Lint(r io.Reader) error {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	type histSeries struct {
		les     []float64
		counts  []uint64
		sum     bool
		countOK bool
		count   float64
	}
	var (
		curName string // current family, "" before the first
		curType string
		helpFor = map[string]bool{}
		typeFor = map[string]string{}
		closed  = map[string]bool{} // families whose block has ended
		hists   map[string]*histSeries
		lineNo  int
	)

	finishFamily := func() error {
		if curName == "" {
			return nil
		}
		closed[curName] = true
		if curType == "histogram" {
			for key, hs := range hists {
				n := len(hs.les)
				if n == 0 || !math.IsInf(hs.les[n-1], +1) {
					return fmt.Errorf("obs: histogram %s{%s}: bucket series does not end in le=\"+Inf\"", curName, key)
				}
				for i := 1; i < n; i++ {
					if hs.les[i] <= hs.les[i-1] {
						return fmt.Errorf("obs: histogram %s{%s}: le bounds not strictly increasing", curName, key)
					}
					if hs.counts[i] < hs.counts[i-1] {
						return fmt.Errorf("obs: histogram %s{%s}: cumulative bucket counts decrease", curName, key)
					}
				}
				if !hs.sum {
					return fmt.Errorf("obs: histogram %s{%s}: missing _sum", curName, key)
				}
				if !hs.countOK {
					return fmt.Errorf("obs: histogram %s{%s}: missing _count", curName, key)
				}
				if hs.count != float64(hs.counts[n-1]) {
					return fmt.Errorf("obs: histogram %s{%s}: _count %v != +Inf bucket %d", curName, key, hs.count, hs.counts[n-1])
				}
			}
		}
		curName, curType, hists = "", "", nil
		return nil
	}

	openFamily := func(name string) error {
		if err := finishFamily(); err != nil {
			return err
		}
		if closed[name] {
			return fmt.Errorf("obs: line %d: family %q appears in more than one block", lineNo, name)
		}
		curName = name
		hists = map[string]*histSeries{}
		return nil
	}

	for s.Scan() {
		lineNo++
		line := s.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			kw, name := fields[1], fields[2]
			if !nameRe.MatchString(name) {
				return fmt.Errorf("obs: line %d: invalid metric name %q", lineNo, name)
			}
			if kw == "HELP" {
				if helpFor[name] {
					return fmt.Errorf("obs: line %d: duplicate HELP for %q", lineNo, name)
				}
				helpFor[name] = true
				if typeFor[name] != "" {
					return fmt.Errorf("obs: line %d: HELP for %q after its TYPE", lineNo, name)
				}
				if name != curName {
					if err := openFamily(name); err != nil {
						return err
					}
				}
				continue
			}
			// TYPE
			if typeFor[name] != "" {
				return fmt.Errorf("obs: line %d: duplicate TYPE for %q", lineNo, name)
			}
			if len(fields) != 4 {
				return fmt.Errorf("obs: line %d: malformed TYPE line", lineNo)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("obs: line %d: unknown metric type %q", lineNo, fields[3])
			}
			typeFor[name] = fields[3]
			if name != curName {
				if err := openFamily(name); err != nil {
					return err
				}
			}
			curType = fields[3]
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("obs: line %d: %v", lineNo, err)
		}
		base, suffix := name, ""
		if curType == "histogram" {
			for _, sfx := range []string{"_bucket", "_sum", "_count"} {
				if strings.HasSuffix(name, sfx) && strings.TrimSuffix(name, sfx) == curName {
					base, suffix = curName, sfx
					break
				}
			}
		}
		if base != curName {
			return fmt.Errorf("obs: line %d: sample %q outside its family block (current family %q)", lineNo, name, curName)
		}
		if typeFor[curName] == "" {
			return fmt.Errorf("obs: line %d: sample %q has no TYPE line", lineNo, name)
		}

		var le string
		var rest []string
		for _, kv := range labels {
			if !labelRe.MatchString(kv[0]) {
				return fmt.Errorf("obs: line %d: invalid label name %q", lineNo, kv[0])
			}
			if kv[0] == "le" && suffix == "_bucket" {
				le = kv[1]
				continue
			}
			rest = append(rest, kv[0]+"="+kv[1])
		}
		sort.Strings(rest)
		key := strings.Join(rest, ",")

		switch suffix {
		case "_bucket":
			if le == "" {
				return fmt.Errorf("obs: line %d: bucket sample without le label", lineNo)
			}
			bound, err := parseLe(le)
			if err != nil {
				return fmt.Errorf("obs: line %d: %v", lineNo, err)
			}
			hs := hists[key]
			if hs == nil {
				hs = &histSeries{}
				hists[key] = hs
			}
			hs.les = append(hs.les, bound)
			hs.counts = append(hs.counts, uint64(value))
		case "_sum":
			hs := hists[key]
			if hs == nil {
				hs = &histSeries{}
				hists[key] = hs
			}
			hs.sum = true
		case "_count":
			hs := hists[key]
			if hs == nil {
				hs = &histSeries{}
				hists[key] = hs
			}
			hs.countOK = true
			hs.count = value
		default:
			if curType == "histogram" {
				return fmt.Errorf("obs: line %d: bare sample %q in histogram family", lineNo, name)
			}
		}
	}
	if err := s.Err(); err != nil {
		return err
	}
	return finishFamily()
}

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(+1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le bound %q", s)
	}
	return v, nil
}

// parseSample parses `name{a="x",b="y"} value [timestamp]`.
func parseSample(line string) (name string, labels [][2]string, value float64, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name = line[:i]
	if !nameRe.MatchString(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		labels, rest, err = parseLabels(rest[1:])
		if err != nil {
			return "", nil, 0, err
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("malformed sample value in %q", line)
	}
	value, err = parseValue(fields[0])
	if err != nil {
		return "", nil, 0, err
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", s)
	}
	return v, nil
}

// parseLabels parses `a="x",b="y"}` (the opening brace already consumed),
// returning the labels and whatever follows the closing brace.
func parseLabels(s string) ([][2]string, string, error) {
	var labels [][2]string
	for {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if s[0] == '}' {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("malformed label in %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, "", fmt.Errorf("unquoted label value for %q", name)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if len(s) == 0 {
				return nil, "", fmt.Errorf("unterminated label value for %q", name)
			}
			c := s[0]
			if c == '\\' {
				if len(s) < 2 {
					return nil, "", fmt.Errorf("dangling escape in label value for %q", name)
				}
				switch s[1] {
				case '\\':
					val.WriteByte('\\')
				case 'n':
					val.WriteByte('\n')
				case '"':
					val.WriteByte('"')
				default:
					return nil, "", fmt.Errorf("bad escape \\%c in label value for %q", s[1], name)
				}
				s = s[2:]
				continue
			}
			if c == '"' {
				s = s[1:]
				break
			}
			val.WriteByte(c)
			s = s[1:]
		}
		labels = append(labels, [2]string{name, val.String()})
		if len(s) > 0 && s[0] == ',' {
			s = s[1:]
		}
	}
}
