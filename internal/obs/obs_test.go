package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "events")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Registration is idempotent: same handle state.
	if v := r.Counter("events_total", "events").Value(); v != 5 {
		t.Fatalf("re-registered counter = %d, want 5", v)
	}

	g := r.Gauge("level", "level")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
}

func TestVecResolvesPerLabelTuple(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("http_requests_total", "requests", "endpoint", "code")
	v.With("/a", "200").Add(3)
	v.With("/a", "500").Inc()
	v.With("/a", "200").Inc()
	if got := v.With("/a", "200").Value(); got != 4 {
		t.Fatalf("series (/a,200) = %d, want 4", got)
	}
	if got := v.With("/a", "500").Value(); got != 1 {
		t.Fatalf("series (/a,500) = %d, want 1", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("sum = %v, want 56.05", h.Sum())
	}
	counts, _, _ := h.snapshot()
	want := []uint64{1, 2, 1, 1} // ≤0.1, ≤1, ≤10, +Inf
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, counts[i], w, counts)
		}
	}
}

func TestBucketsNormalized(t *testing.T) {
	r := NewRegistry()
	// Unsorted, duplicated, +Inf-terminated input must come out clean.
	h := r.Histogram("h", "h", []float64{5, 1, 5, math.Inf(+1), 2})
	if len(h.upper) != 3 || h.upper[0] != 1 || h.upper[1] != 2 || h.upper[2] != 5 {
		t.Fatalf("normalized buckets = %v", h.upper)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("c", "c").Inc()
	r.CounterVec("cv", "c", "l").With("x").Add(2)
	r.Gauge("g", "g").Set(1)
	r.GaugeVec("gv", "g", "l").With("x").Add(1)
	r.Histogram("h", "h", nil).Observe(1)
	r.HistogramVec("hv", "h", nil, "l").With("x").Observe(1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry wrote %q, err %v", sb.String(), err)
	}
	// Values read back as zero.
	if r.Counter("c", "c").Value() != 0 || r.Gauge("g", "g").Value() != 0 || r.Histogram("h", "h", nil).Count() != 0 {
		t.Fatal("nil handles reported non-zero values")
	}
}

func TestRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "fine")
	for name, fn := range map[string]func(){
		"bad metric name":   func() { r.Counter("bad-name", "x") },
		"bad label name":    func() { r.CounterVec("c2_total", "x", "bad-label") },
		"type mismatch":     func() { r.Gauge("ok_total", "fine") },
		"label mismatch":    func() { r.CounterVec("ok_total", "fine", "extra") },
		"wrong label arity": func() { r.CounterVec("cv_total", "x", "a", "b").With("only-one") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	v := r.CounterVec("cv_total", "c", "worker")
	h := r.Histogram("h_seconds", "h", DefBuckets)
	g := r.Gauge("g", "g")
	var wg sync.WaitGroup
	const workers, iters = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := string(rune('a' + w))
			for i := 0; i < iters; i++ {
				c.Inc()
				v.With(label).Inc()
				h.Observe(float64(i) / 1000)
				g.Add(1)
				g.Add(-1)
			}
		}(w)
	}
	// A concurrent scraper must never corrupt or crash.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			if err := Lint(strings.NewReader(sb.String())); err != nil {
				t.Errorf("concurrent scrape lint: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if c.Value() != workers*iters {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*iters)
	}
	if h.Count() != workers*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %v, want 0", g.Value())
	}
}
