package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text-format content type served by Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler that renders the registry in Prometheus
// text format — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w)
	})
}

// WritePrometheus renders every family in Prometheus text exposition format
// (version 0.0.4): families sorted by name, each preceded by its # HELP and
// # TYPE lines, histogram children expanded into cumulative _bucket series
// ending in le="+Inf" plus _sum and _count. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	st := r.state
	st.mu.RLock()
	fams := make([]*family, 0, len(st.families))
	for _, f := range st.families {
		fams = append(fams, f)
	}
	st.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if err := f.write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (f *family) write(w *bufio.Writer) error {
	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]*child, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.RUnlock()
	if len(children) == 0 {
		return nil // a family with no series exports nothing, like client_golang
	}

	fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
	for _, c := range children {
		switch m := c.metric.(type) {
		case *Counter:
			fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(f.labels, c.values, "", 0),
				strconv.FormatUint(m.Value(), 10))
		case *Gauge:
			fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(f.labels, c.values, "", 0),
				formatFloat(m.Value()))
		case *Histogram:
			counts, sum, total := m.snapshot()
			cum := uint64(0)
			for i, upper := range m.upper {
				cum += counts[i]
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					renderLabels(f.labels, c.values, "le", upper), cum)
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				renderLabels(f.labels, c.values, "le", math.Inf(+1)), total)
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name,
				renderLabels(f.labels, c.values, "", 0), formatFloat(sum))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name,
				renderLabels(f.labels, c.values, "", 0), total)
		}
	}
	return nil
}

// renderLabels renders {a="x",b="y"} (empty string for no labels), with an
// optional trailing le bucket label.
func renderLabels(names, values []string, le string, upper float64) string {
	if len(names) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(le)
		b.WriteString(`="`)
		b.WriteString(formatFloat(upper))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
