package obs

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestSpanTracerHierarchyAndRing(t *testing.T) {
	tr := NewSpanTracer(16, 42)
	ctx, root := tr.Start(context.Background(), "pipeline.train")
	if SpanID(ctx) != root.ID() || root.ID() == 0 {
		t.Fatalf("context does not carry the root span: ctx=%d span=%d", SpanID(ctx), root.ID())
	}
	_, child := tr.Start(ctx, "pipeline.fetch")
	child.SetWindows(96)
	child.End()
	root.SetErr(errors.New("boom"))
	root.End()
	root.End() // idempotent

	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("snapshot = %d spans, want 2", len(spans))
	}
	if spans[0].Name != "pipeline.fetch" || spans[0].Parent != root.ID() {
		t.Fatalf("child span = %+v, want parent %d", spans[0], root.ID())
	}
	if spans[0].Windows != 96 {
		t.Fatalf("child windows = %d", spans[0].Windows)
	}
	if spans[1].Name != "pipeline.train" || spans[1].Parent != 0 || spans[1].Err != "boom" {
		t.Fatalf("root span = %+v", spans[1])
	}
}

func TestSpanTracerDeterministicIDs(t *testing.T) {
	mint := func() []uint64 {
		tr := NewSpanTracer(16, 7)
		var ids []uint64
		ctx := context.Background()
		for _, name := range []string{"a", "b", "c"} {
			_, s := tr.Start(ctx, name)
			ids = append(ids, s.ID())
			s.End()
		}
		return ids
	}
	a, b := mint(), mint()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("span IDs not deterministic per seed: %v vs %v", a, b)
		}
		if a[i] == 0 {
			t.Fatalf("zero span ID minted")
		}
	}
	// A different seed must mint a different stream.
	other := NewSpanTracer(16, 8)
	_, s := other.Start(context.Background(), "a")
	if s.ID() == a[0] {
		t.Fatalf("different seeds minted the same first ID %d", a[0])
	}
}

func TestSpanTracerRingEvictsOldest(t *testing.T) {
	tr := NewSpanTracer(16, 1)
	for i := 0; i < 40; i++ {
		_, s := tr.Start(context.Background(), "tick")
		s.End()
	}
	spans := tr.Snapshot()
	if len(spans) != 16 {
		t.Fatalf("resident = %d, want capacity 16", len(spans))
	}
}

func TestSpanTracerNilSafe(t *testing.T) {
	var tr *SpanTracer
	ctx, s := tr.Start(context.Background(), "noop")
	if s != nil {
		t.Fatalf("nil tracer returned a span")
	}
	s.SetWindows(1)
	s.SetErr(errors.New("x"))
	s.End()
	if SpanID(ctx) != 0 {
		t.Fatalf("nil tracer put a span in the context")
	}
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer snapshot = %v", got)
	}
}

func TestSpanTracerConcurrent(t *testing.T) {
	tr := NewSpanTracer(64, 3)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ctx, parent := tr.Start(context.Background(), "outer")
				_, inner := tr.Start(ctx, "inner")
				inner.End()
				parent.End()
			}
		}()
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for _, s := range tr.Snapshot() {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestSpansHandler(t *testing.T) {
	tr := NewSpanTracer(16, 5)
	ctx, root := tr.Start(context.Background(), "service.ingest")
	_, ext := tr.Start(ctx, "telemetry.extract")
	ext.End()
	root.End()

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/spans", nil))
	if rec.Code != 200 {
		t.Fatalf("spans = %d", rec.Code)
	}
	var page struct {
		Capacity int    `json:"capacity"`
		Spans    []Span `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if page.Capacity != 16 || len(page.Spans) != 2 {
		t.Fatalf("page = %+v", page)
	}

	// Name-prefix filter.
	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/spans?name=telemetry.", nil))
	_ = json.Unmarshal(rec.Body.Bytes(), &page)
	if len(page.Spans) != 1 || page.Spans[0].Name != "telemetry.extract" {
		t.Fatalf("filtered page = %+v", page)
	}
}
