package obs

import (
	"io"
	"testing"
)

// The registry sits on the serving hot path (one histogram observation, one
// counter increment, and one gauge pair per HTTP request), so its primitives
// must stay in the tens-of-nanoseconds range.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c_total", "c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h_seconds", "h", DefBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkVecWith(b *testing.B) {
	v := NewRegistry().CounterVec("c_total", "c", "endpoint", "code")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("/v1/estimate", "200").Inc()
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	h := r.HistogramVec("h_seconds", "h", DefBuckets, "endpoint")
	for _, ep := range []string{"/a", "/b", "/c", "/d"} {
		for i := 0; i < 100; i++ {
			h.With(ep).Observe(float64(i) / 100)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
