// Package ctrl closes the provisioning loop the paper's §2 positions
// DeepRest for: instead of reacting to load after it arrives (too late for
// resources that take time to provision), an estimate-driven autoscaler
// resizes components *ahead* of load from DeepRest's forecast of the
// projected traffic.
//
// The loop runs inside the simulator: each scheduling interval a Policy
// proposes per-component demand targets, the shared autoscale.Planner turns
// them into allocations (headroom + bounded hysteresis, identical semantics
// to the offline planner), and the resulting capacities are actuated into
// the queueing latency model after a configurable provisioning lag. Two
// ledgers are charged every window:
//
//   - SLO violation minutes — windows where any API's modeled latency
//     breaches the SLO (queueing inflation above MaxInflation, absolute
//     p95 above SLOMs, or a saturated station), in minutes;
//   - resource-hours — the provisioned capacity integrated over time, in
//     core-hours.
//
// This is the trade every operator prices: violation minutes are the QoS
// cost of under-provisioning, resource-hours the dollar cost of headroom.
// Crash and throttle faults from a faults.Schedule perturb the effective
// capacities, so the same loop scores degraded-infrastructure scenarios.
package ctrl

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/app"
	"repro/internal/autoscale"
	"repro/internal/estimator"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Config tunes the control loop.
type Config struct {
	// IntervalWindows is the scheduling cadence: one capacity decision
	// per this many windows.
	IntervalWindows int
	// LagWindows is the actuation lag: a decision made at an interval
	// boundary takes effect this many windows later, modeling the time
	// real provisioning takes (pod scheduling, warm-up). Both proactive
	// and reactive policies pay it; only a proactive policy can plan
	// around it.
	LagWindows int
	// UtilTarget sizes capacity from planned demand: capacity =
	// allocation / UtilTarget (the standard utilization-target rule;
	// default 0.5).
	UtilTarget float64
	// Headroom and MinChange parameterize the shared autoscale.Planner
	// (fractional margin above the demand target, hysteresis dead-band).
	Headroom  float64
	MinChange float64
	// MaxInflation is the scale-free SLO: a window violates when any
	// API's mean latency exceeds MaxInflation × its zero-load latency
	// (3.0 ≡ "queueing wait ≤ 2× service time"). Saturation always
	// violates.
	MaxInflation float64
	// SLOMs optionally adds an absolute SLO: any API p95 above this many
	// milliseconds violates. 0 disables the absolute check.
	SLOMs float64
	// MinCapacity floors every actuated capacity (millicores), so a
	// zero-demand forecast cannot descale a component to nothing.
	MinCapacity float64
	// Metrics optionally records loop telemetry (nil-safe).
	Metrics *obs.Registry
}

// DefaultConfig returns conventional loop parameters: hourly-scale
// reservations at a 50% utilization target with 10% headroom, one window
// of actuation lag, and the wait ≤ 2× service SLO.
func DefaultConfig() Config {
	return Config{
		IntervalWindows: 12,
		LagWindows:      1,
		UtilTarget:      0.5,
		Headroom:        0.10,
		MinChange:       0.05,
		MaxInflation:    3,
		MinCapacity:     1,
	}
}

func (c Config) validate() error {
	if c.IntervalWindows <= 0 {
		return fmt.Errorf("ctrl: IntervalWindows must be positive")
	}
	if c.LagWindows < 0 {
		return fmt.Errorf("ctrl: negative LagWindows")
	}
	if c.UtilTarget <= 0 || c.UtilTarget > 1 {
		return fmt.Errorf("ctrl: UtilTarget must be in (0, 1]")
	}
	if c.MaxInflation <= 1 && c.SLOMs <= 0 {
		return fmt.Errorf("ctrl: need MaxInflation > 1 or SLOMs > 0 for a meaningful SLO")
	}
	return nil
}

// Env is the simulated environment one loop run plays against.
type Env struct {
	// Spec is the application; unmanaged components keep its declared
	// capacities.
	Spec *app.Spec
	// Traffic is the realized per-window API traffic the loop serves.
	Traffic *workload.Traffic
	// Components lists the managed components (resized and charged for).
	Components []string
	// Faults optionally perturbs effective capacities (crash, throttle).
	// Allocated capacity is still charged during a fault — the operator
	// pays for the reservation whether or not the node delivers it.
	Faults *faults.Schedule
}

// Observed is the feedback a Policy sees at a decision boundary: everything
// a real control plane would have from its metrics pipeline, nothing more.
type Observed struct {
	// Demand is the realized per-component CPU demand (millicores) for
	// every completed window, as inferred from utilization telemetry: a
	// saturated station reads 100% busy, so observed demand is capped at
	// the effective capacity — exactly the blindness that makes reactive
	// scaling slow to size deep overloads.
	Demand map[string][]float64
	// Capacity is the currently actuated capacity per managed component.
	Capacity map[string]float64
}

// Policy proposes, at each interval boundary, the demand (millicores) each
// managed component should be provisioned for over [from, to) — the window
// range the decision will actually serve, which starts one provisioning lag
// after the decision itself. Observed never extends to from: the windows in
// between are the future the policy must bridge, by forecast or by guess.
// Components missing from the result hold their current capacity.
type Policy interface {
	Name() string
	Target(from, to int, obs Observed) map[string]float64
}

// Ledger accumulates one run's SLO and cost accounting.
type Ledger struct {
	// ViolationMinutes is the total time any API was outside its SLO.
	ViolationMinutes float64
	// ViolationWindows counts the violating windows behind those minutes.
	ViolationWindows int
	// WindowsScored is the number of evaluated windows.
	WindowsScored int
	// ResourceHours is the provisioned capacity of the managed
	// components integrated over the run, in core-hours.
	ResourceHours float64
	// ScaleOps counts applied capacity changes (provisioning churn).
	ScaleOps int
	// ByAPI attributes violation minutes to the APIs that breached.
	ByAPI map[string]float64
}

// Result is one policy's run outcome.
type Result struct {
	Policy string
	Ledger Ledger
	// Demand is the realized per-component demand series the loop
	// observed — feed it to NewProactive to build the perfect-forecast
	// oracle for the same traffic.
	Demand map[string][]float64
}

// crashedCapacity stands in for a crashed component's capacity: small
// enough that any visit saturates the station, positive so the latency
// model accepts it.
const crashedCapacity = 1e-6

// Run plays one policy over the environment and returns its ledgers.
func Run(env Env, cfg Config, pol Policy) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if env.Traffic == nil || len(env.Traffic.Windows) == 0 {
		return Result{}, fmt.Errorf("ctrl: no traffic to serve")
	}
	if env.Traffic.WindowSeconds <= 0 {
		return Result{}, fmt.Errorf("ctrl: traffic has no window duration")
	}
	if len(env.Components) == 0 {
		return Result{}, fmt.Errorf("ctrl: no managed components")
	}
	model, err := sim.NewLatencyModel(env.Spec)
	if err != nil {
		return Result{}, err
	}

	comps := append([]string(nil), env.Components...)
	sort.Strings(comps)
	specCap := make(map[string]float64, len(env.Spec.Components))
	for _, c := range env.Spec.Components {
		specCap[c.Name] = c.CPUCapacity
	}
	caps := make(map[string]float64, len(comps))
	planners := make(map[string]*autoscale.Planner, len(comps))
	plannerCfg := autoscale.Config{Headroom: cfg.Headroom, MinChange: cfg.MinChange}
	for _, comp := range comps {
		base, ok := specCap[comp]
		if !ok {
			return Result{}, fmt.Errorf("ctrl: unknown component %q", comp)
		}
		caps[comp] = base
		if planners[comp], err = autoscale.NewPlanner(plannerCfg); err != nil {
			return Result{}, err
		}
	}

	led := Ledger{ByAPI: make(map[string]float64)}
	demand := make(map[string][]float64, len(comps))
	pending := make(map[int]map[string]float64)
	windowMin := env.Traffic.WindowSeconds / 60
	windowHours := env.Traffic.WindowSeconds / 3600

	for w, reqs := range env.Traffic.Windows {
		// Decision boundary: plan the interval this decision will serve.
		// The target range starts where the decision lands (after the
		// provisioning lag) — a forecast-driven policy reads its forecast
		// there and covers the interval exactly; a backward-looking
		// policy has nothing to read there, which is the point.
		if w%cfg.IntervalWindows == 0 {
			from := w + cfg.LagWindows
			targets := pol.Target(from, from+cfg.IntervalWindows, Observed{Demand: demand, Capacity: caps})
			change := make(map[string]float64)
			for _, comp := range comps {
				t, ok := targets[comp]
				if !ok || math.IsNaN(t) || t < 0 {
					continue // hold current capacity
				}
				c := planners[comp].Next(t) / cfg.UtilTarget
				if c < cfg.MinCapacity {
					c = cfg.MinCapacity
				}
				change[comp] = c
			}
			if len(change) > 0 {
				at := w + cfg.LagWindows
				if pending[at] == nil {
					pending[at] = change
				} else {
					for comp, c := range change {
						pending[at][comp] = c
					}
				}
			}
		}
		// Actuate decisions whose provisioning lag has elapsed.
		if nc, ok := pending[w]; ok {
			for comp, c := range nc {
				if caps[comp] != c {
					led.ScaleOps++
				}
				caps[comp] = c
			}
			delete(pending, w)
		}

		// Effective capacities: allocation for managed components, spec
		// for the rest, both degraded by any active fault.
		for _, c := range env.Spec.Components {
			eff, managed := caps[c.Name]
			if !managed {
				eff = c.CPUCapacity
			}
			if env.Faults != nil {
				if env.Faults.Crashed(c.Name, w) {
					eff = crashedCapacity
				} else {
					eff *= env.Faults.CPUFactor(c.Name, w)
				}
			}
			if eff < crashedCapacity {
				eff = crashedCapacity
			}
			if err := model.SetCapacity(c.Name, eff); err != nil {
				return Result{}, err
			}
		}

		loads, lats, err := model.Evaluate(reqs, env.Traffic.WindowSeconds)
		if err != nil {
			return Result{}, err
		}
		violated := false
		for api, lat := range lats {
			bad := lat.Saturated ||
				(cfg.MaxInflation > 1 && lat.NoQueueMs > 0 && lat.MeanMs > cfg.MaxInflation*lat.NoQueueMs) ||
				(cfg.SLOMs > 0 && lat.P95Ms > cfg.SLOMs)
			if bad {
				violated = true
				led.ByAPI[api] += windowMin
			}
		}
		if violated {
			led.ViolationWindows++
			led.ViolationMinutes += windowMin
		}
		led.WindowsScored++

		for _, comp := range comps {
			led.ResourceHours += caps[comp] / 1000 * windowHours
			// Observe demand through the utilization telemetry a real
			// autoscaler would have (capped at 100% busy).
			eff := caps[comp]
			if env.Faults != nil {
				if env.Faults.Crashed(comp, w) {
					eff = crashedCapacity
				} else {
					eff *= env.Faults.CPUFactor(comp, w)
				}
			}
			rho := loads[comp].Utilization
			if rho > 1 {
				rho = 1
			}
			demand[comp] = append(demand[comp], rho*eff)
		}
	}

	if cfg.Metrics != nil {
		m := cfg.Metrics
		m.CounterVec("deeprest_ctrl_scale_ops_total",
			"Capacity changes applied by the autoscale control loop.", "policy").
			With(pol.Name()).Add(uint64(led.ScaleOps))
		m.CounterVec("deeprest_ctrl_windows_scored_total",
			"Windows evaluated by the autoscale control loop.", "policy").
			With(pol.Name()).Add(uint64(led.WindowsScored))
		m.GaugeVec("deeprest_ctrl_violation_minutes",
			"SLO violation minutes charged in the last control-loop run.", "policy").
			With(pol.Name()).Set(led.ViolationMinutes)
		m.GaugeVec("deeprest_ctrl_resource_hours",
			"Core-hours provisioned in the last control-loop run.", "policy").
			With(pol.Name()).Set(led.ResourceHours)
	}

	return Result{Policy: pol.Name(), Ledger: led, Demand: demand}, nil
}

// DemandForecast extracts the proactive policy's demand signal from
// DeepRest interval estimates: per component, the upper confidence bound
// of its CPU expert (falling back to the expected value when the model has
// no interval), in millicores per window.
func DemandForecast(est map[app.Pair]estimator.Estimate, components []string) map[string][]float64 {
	out := make(map[string][]float64, len(components))
	for _, comp := range components {
		e, ok := est[app.Pair{Component: comp, Resource: app.CPU}]
		if !ok {
			continue
		}
		series := e.Exp
		if len(e.Up) == len(e.Exp) {
			series = e.Up
		}
		out[comp] = series
	}
	return out
}
