package ctrl

// The three policies the experiments compare. Proactive and Reactive share
// the planner (headroom, hysteresis, utilization target) — they differ only
// in the demand signal: a forecast of the *upcoming* interval versus an
// observation of the *previous* one. That isolation is deliberate: any
// ledger difference is attributable to foresight, not to tuning.

// Proactive provisions ahead of load from a per-window demand forecast —
// DeepRest's upper confidence bound over the projected traffic (see
// DemandForecast). The forecast for [from, to) is reduced to its peak and
// handed to the planner before the interval begins.
type Proactive struct {
	name     string
	forecast map[string][]float64
}

// NewProactive wraps a per-component demand forecast (millicores per
// window) as a policy. Feeding a run's realized Demand back in builds the
// perfect-forecast oracle.
func NewProactive(name string, forecast map[string][]float64) *Proactive {
	return &Proactive{name: name, forecast: forecast}
}

func (p *Proactive) Name() string { return p.name }

// Target returns the forecast peak per component over [from, to).
// Components whose forecast does not reach `from` hold.
func (p *Proactive) Target(from, to int, _ Observed) map[string]float64 {
	out := make(map[string]float64, len(p.forecast))
	for comp, series := range p.forecast {
		if from >= len(series) {
			continue
		}
		hi := to
		if hi > len(series) {
			hi = len(series)
		}
		peak := 0.0
		for _, v := range series[from:hi] {
			if v > peak {
				peak = v
			}
		}
		out[comp] = peak
	}
	return out
}

// Reactive is the classic threshold autoscaler every proactive system is
// measured against: when a component's observed peak utilization over the
// last interval leaves the [Down, Up] band, it is resized so that peak
// observed demand would have sat at the utilization target. It can only
// ever chase load — by at least one interval plus the actuation lag — and
// it carries the two defensive behaviors practical threshold scalers ship
// with, both of which cost money:
//
//   - surge: a saturated station reads 100% busy, so the observed peak is
//     only a lower bound on demand; the scaler multiplies it by Surge to
//     escape saturation in few steps (Kubernetes HPA and EC2 step policies
//     both overshoot this way), at the price of over-provisioning once the
//     true demand is finally visible;
//   - scale-down stabilization: descaling sizes against the peak over the
//     last StabilizeIntervals intervals, not just the most recent one, so a
//     short lull (or the trough before a returning peak) does not strand
//     the component undersized — at the price of holding peak capacity
//     into the valley.
type Reactive struct {
	// Up and Down are the utilization thresholds (fractions of current
	// capacity) that trigger a resize.
	Up, Down float64
	// Surge multiplies the observed peak when the component saturated
	// during the last interval (≤ 1 disables; conventional value 2).
	Surge float64
	// StabilizeIntervals is the scale-down lookback in intervals
	// (values < 1 mean 1: last interval only).
	StabilizeIntervals int
}

// NewReactive returns the conventional threshold autoscaler: resize outside
// the [0.3, 0.7] utilization band, 2× surge out of saturation, two-interval
// scale-down stabilization.
func NewReactive() *Reactive {
	return &Reactive{Up: 0.7, Down: 0.3, Surge: 2, StabilizeIntervals: 2}
}

func (r *Reactive) Name() string { return "reactive" }

func (r *Reactive) Target(from, to int, obs Observed) map[string]float64 {
	n := to - from
	stab := r.StabilizeIntervals
	if stab < 1 {
		stab = 1
	}
	out := make(map[string]float64)
	for comp, series := range obs.Demand {
		// All a backward-looker has is the observed tail — the target
		// range [from, to) lies beyond its telemetry.
		m := len(series)
		if m == 0 {
			continue // nothing observed yet
		}
		lo := m - n
		if lo < 0 {
			lo = 0
		}
		loStab := m - stab*n
		if loStab < 0 {
			loStab = 0
		}
		peak := seriesPeak(series[lo:m])
		cap := obs.Capacity[comp]
		if cap <= 0 {
			continue
		}
		switch util := peak / cap; {
		case util > r.Up:
			t := peak
			if r.Surge > 1 && peak >= cap*0.999 {
				t = peak * r.Surge
			}
			out[comp] = t
		case util < r.Down:
			out[comp] = seriesPeak(series[loStab:m])
		}
	}
	return out
}

func seriesPeak(s []float64) float64 {
	peak := 0.0
	for _, v := range s {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// Static never scales: every component keeps the capacity it started with
// (the spec's declared sizing). It is the "cluster as deployed" reference
// and the probe run used to collect realized demand for the oracle.
type Static struct{}

func (Static) Name() string                                 { return "static" }
func (Static) Target(int, int, Observed) map[string]float64 { return nil }
