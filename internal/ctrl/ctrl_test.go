package ctrl

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/app"
	"repro/internal/estimator"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/workload"
)

// toyTraffic builds count-per-window /read traffic against app.Toy with
// 60-second windows. With Toy's costs (DB 1100 CPUms per request), n
// requests per window is a DB demand of n*1100/60/1000 millicores.
func toyTraffic(counts []int) *workload.Traffic {
	t := &workload.Traffic{WindowSeconds: 60, WindowsPerDay: len(counts), APIs: []string{"/read"}}
	for _, n := range counts {
		t.Windows = append(t.Windows, map[string]int{"/read": n})
	}
	return t
}

// twoPeakCounts is 16 intervals of 4 windows: base load with two peak
// bursts at windows [17,24) and [41,48). Each peak starts one window after
// an interval boundary, so a one-window actuation lag can still be planned
// around by a proactive policy.
func twoPeakCounts() []int {
	counts := make([]int, 64)
	for w := range counts {
		counts[w] = 500
		if (w >= 17 && w < 24) || (w >= 41 && w < 48) {
			counts[w] = 3000
		}
	}
	return counts
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.IntervalWindows = 4
	return cfg
}

func toyEnv(counts []int) Env {
	return Env{
		Spec:       app.Toy(),
		Traffic:    toyTraffic(counts),
		Components: []string{"Gateway", "Service", "DB"},
	}
}

func TestConfigValidate(t *testing.T) {
	env := toyEnv(twoPeakCounts())
	bad := []Config{
		{},
		{IntervalWindows: 4, UtilTarget: 0.5, MaxInflation: 3, LagWindows: -1},
		{IntervalWindows: 4, UtilTarget: 0, MaxInflation: 3},
		{IntervalWindows: 4, UtilTarget: 1.5, MaxInflation: 3},
		{IntervalWindows: 4, UtilTarget: 0.5, MaxInflation: 1}, // no SLO at all
	}
	for i, cfg := range bad {
		if _, err := Run(env, cfg, Static{}); err == nil {
			t.Errorf("config %d: expected validation error", i)
		}
	}
	if _, err := Run(Env{Spec: app.Toy(), Components: []string{"DB"}}, testConfig(), Static{}); err == nil {
		t.Error("expected error for missing traffic")
	}
	if _, err := Run(Env{Spec: app.Toy(), Traffic: toyTraffic([]int{1})}, testConfig(), Static{}); err == nil {
		t.Error("expected error for no managed components")
	}
	envBad := toyEnv([]int{1, 1})
	envBad.Components = []string{"NoSuchComponent"}
	if _, err := Run(envBad, testConfig(), Static{}); err == nil {
		t.Error("expected error for unknown component")
	}
}

// TestStaticLedgerAccounting pins the resource-hour ledger arithmetic: a
// never-scaling policy over flat low traffic charges exactly the spec
// capacities integrated over the run, with no violations and no scale ops.
func TestStaticLedgerAccounting(t *testing.T) {
	counts := make([]int, 24)
	for i := range counts {
		counts[i] = 500
	}
	env := toyEnv(counts)
	res, err := Run(env, testConfig(), Static{})
	if err != nil {
		t.Fatal(err)
	}
	led := res.Ledger
	if led.WindowsScored != 24 {
		t.Fatalf("WindowsScored = %d, want 24", led.WindowsScored)
	}
	if led.ViolationMinutes != 0 || led.ViolationWindows != 0 {
		t.Fatalf("flat low load should not violate: %+v", led)
	}
	if led.ScaleOps != 0 {
		t.Fatalf("static policy performed %d scale ops", led.ScaleOps)
	}
	// Toy declares Gateway 40 + Service 48 + DB 60 = 148 millicores over
	// 24 windows of 60 s: 148/1000 * 24/60 core-hours.
	want := 148.0 / 1000 * 24 * 60 / 3600
	if math.Abs(led.ResourceHours-want) > 1e-9 {
		t.Fatalf("ResourceHours = %g, want %g", led.ResourceHours, want)
	}
	for _, comp := range env.Components {
		if len(res.Demand[comp]) != 24 {
			t.Fatalf("demand series for %s has %d windows", comp, len(res.Demand[comp]))
		}
	}
}

// TestProactiveBeatsReactive is the package's reason to exist in miniature:
// on a two-peak load, a proactive policy fed the realized demand (the
// perfect-forecast oracle) provisions ahead of each burst and never
// violates, while the threshold autoscaler — same planner, same lag, but
// looking backwards — saturates through every burst onset.
func TestProactiveBeatsReactive(t *testing.T) {
	env := toyEnv(twoPeakCounts())
	cfg := testConfig()

	probe, err := Run(env, cfg, Static{})
	if err != nil {
		t.Fatal(err)
	}
	// Static capacity keeps peak utilization under 1 here, so the probe's
	// observed demand is the true demand — a perfect forecast.
	if got := probe.Ledger.ViolationWindows; got != 14 {
		t.Fatalf("static probe violated %d windows, want the 14 peak windows", got)
	}

	pro, err := Run(env, cfg, NewProactive("proactive", probe.Demand))
	if err != nil {
		t.Fatal(err)
	}
	rea, err := Run(env, cfg, &Reactive{Up: 0.7, Down: 0.3})
	if err != nil {
		t.Fatal(err)
	}

	if pro.Ledger.ViolationMinutes != 0 {
		t.Errorf("proactive violated %.0f minutes, want 0", pro.Ledger.ViolationMinutes)
	}
	if rea.Ledger.ViolationMinutes <= pro.Ledger.ViolationMinutes {
		t.Errorf("reactive (%.0f min) should violate more than proactive (%.0f min)",
			rea.Ledger.ViolationMinutes, pro.Ledger.ViolationMinutes)
	}
	if rea.Ledger.ViolationMinutes < 10 {
		t.Errorf("reactive violated only %.0f minutes; burst onsets should cost it more",
			rea.Ledger.ViolationMinutes)
	}
	if pro.Ledger.ResourceHours <= 0 || rea.Ledger.ResourceHours <= 0 {
		t.Errorf("resource-hours not charged: pro=%g rea=%g",
			pro.Ledger.ResourceHours, rea.Ledger.ResourceHours)
	}
	// Both policies descale the over-provisioned spec at base load, so
	// both should run cheaper than the static deployment.
	if pro.Ledger.ResourceHours >= probe.Ledger.ResourceHours {
		t.Errorf("proactive (%g core-h) should cost less than static (%g core-h)",
			pro.Ledger.ResourceHours, probe.Ledger.ResourceHours)
	}
	if len(pro.Ledger.ByAPI) != 0 {
		t.Errorf("proactive ByAPI should be empty, got %v", pro.Ledger.ByAPI)
	}
	if rea.Ledger.ByAPI["/read"] != rea.Ledger.ViolationMinutes {
		t.Errorf("ByAPI[/read] = %g, want %g (single-API traffic)",
			rea.Ledger.ByAPI["/read"], rea.Ledger.ViolationMinutes)
	}
}

// recordingPolicy captures the capacity the loop exposes at each decision
// boundary and requests one resize at the first.
type recordingPolicy struct {
	target float64
	caps   []float64
	fired  bool
}

func (r *recordingPolicy) Name() string { return "recording" }

func (r *recordingPolicy) Target(from, to int, obs Observed) map[string]float64 {
	r.caps = append(r.caps, obs.Capacity["DB"])
	if !r.fired {
		r.fired = true
		return map[string]float64{"DB": r.target}
	}
	return nil
}

// TestActuationLag pins the provisioning-lag semantics: a decision made at
// window 0 with LagWindows=2 is invisible to the policy until window 3
// (decisions are taken before the same window's actuation).
func TestActuationLag(t *testing.T) {
	env := toyEnv([]int{500, 500, 500, 500, 500, 500})
	env.Components = []string{"DB"}
	cfg := testConfig()
	cfg.IntervalWindows = 1
	cfg.LagWindows = 2

	pol := &recordingPolicy{target: 55}
	res, err := Run(env, cfg, pol)
	if err != nil {
		t.Fatal(err)
	}
	scaled := 55 * (1 + cfg.Headroom) / cfg.UtilTarget
	want := []float64{60, 60, 60, scaled, scaled, scaled}
	if len(pol.caps) != len(want) {
		t.Fatalf("policy called %d times, want %d", len(pol.caps), len(want))
	}
	for i, c := range pol.caps {
		if math.Abs(c-want[i]) > 1e-9 {
			t.Fatalf("capacity at decision %d = %g, want %g (full trace %v)", i, c, want[i], pol.caps)
		}
	}
	if res.Ledger.ScaleOps != 1 {
		t.Fatalf("ScaleOps = %d, want 1", res.Ledger.ScaleOps)
	}
}

// TestCrashFaultChargesBoth verifies the fault contract: a crashed window
// saturates (violation minutes accrue) while the reservation is still
// charged — faults must not discount the resource ledger.
func TestCrashFaultChargesBoth(t *testing.T) {
	counts := make([]int, 12)
	for i := range counts {
		counts[i] = 500
	}
	clean := toyEnv(counts)
	base, err := Run(clean, testConfig(), Static{})
	if err != nil {
		t.Fatal(err)
	}

	sched, err := faults.Compile("seed=1;crash:comp=DB,from=4,to=8")
	if err != nil {
		t.Fatal(err)
	}
	faulty := clean
	faulty.Faults = sched
	res, err := Run(faulty, testConfig(), Static{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ledger.ViolationWindows < 4 {
		t.Errorf("crash should violate its 4 windows, got %d", res.Ledger.ViolationWindows)
	}
	if res.Ledger.ResourceHours != base.Ledger.ResourceHours {
		t.Errorf("faults must not change the resource ledger: %g vs %g",
			res.Ledger.ResourceHours, base.Ledger.ResourceHours)
	}
}

// TestObservedDemandCapped verifies saturation blindness: a station driven
// past its capacity reads as exactly 100% busy, so observed demand equals
// the effective capacity, never the true arriving demand.
func TestObservedDemandCapped(t *testing.T) {
	counts := make([]int, 8)
	for i := range counts {
		counts[i] = 4000 // DB true demand ~73 mc > 60 mc capacity
	}
	env := toyEnv(counts)
	res, err := Run(env, testConfig(), Static{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Demand["DB"] {
		if math.Abs(d-60) > 1e-9 {
			t.Fatalf("saturated DB observed at %g mc, want capped at capacity 60", d)
		}
	}
	if res.Ledger.ViolationWindows != 8 {
		t.Fatalf("all 8 saturated windows should violate, got %d", res.Ledger.ViolationWindows)
	}
}

func TestRunDeterminism(t *testing.T) {
	env := toyEnv(twoPeakCounts())
	env.Faults, _ = faults.Compile("seed=7;throttle:comp=Service,from=20,to=30,factor=0.5")
	a, err := Run(env, testConfig(), &Reactive{Up: 0.7, Down: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(env, testConfig(), &Reactive{Up: 0.7, Down: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical runs diverged")
	}
}

func TestMetricsRecorded(t *testing.T) {
	reg := obs.NewRegistry()
	env := toyEnv(twoPeakCounts())
	cfg := testConfig()
	cfg.Metrics = reg
	res, err := Run(env, cfg, Static{})
	if err != nil {
		t.Fatal(err)
	}
	got := reg.GaugeVec("deeprest_ctrl_violation_minutes",
		"SLO violation minutes charged in the last control-loop run.", "policy").
		With("static").Value()
	if got != res.Ledger.ViolationMinutes {
		t.Fatalf("violation-minutes gauge = %g, want %g", got, res.Ledger.ViolationMinutes)
	}
	ops := reg.CounterVec("deeprest_ctrl_windows_scored_total",
		"Windows evaluated by the autoscale control loop.", "policy").
		With("static").Value()
	if ops != uint64(res.Ledger.WindowsScored) {
		t.Fatalf("windows-scored counter = %d, want %d", ops, res.Ledger.WindowsScored)
	}
}

func TestPolicyEdgeCases(t *testing.T) {
	// Proactive holds (returns nothing) past its forecast horizon and on
	// components it has no forecast for.
	p := NewProactive("p", map[string][]float64{"DB": {1, 2, 3}})
	if got := p.Target(4, 8, Observed{}); len(got) != 0 {
		t.Errorf("past-horizon target = %v, want empty", got)
	}
	if got := p.Target(1, 8, Observed{}); got["DB"] != 3 {
		t.Errorf("clamped-interval peak = %v, want DB:3", got)
	}
	// Reactive holds with no observations, or when inside the band.
	r := &Reactive{Up: 0.7, Down: 0.3}
	if got := r.Target(0, 4, Observed{}); len(got) != 0 {
		t.Errorf("reactive with no history = %v, want empty", got)
	}
	obsd := Observed{
		Demand:   map[string][]float64{"DB": {30, 30, 30, 30}},
		Capacity: map[string]float64{"DB": 60},
	}
	if got := r.Target(4, 8, obsd); len(got) != 0 {
		t.Errorf("in-band utilization should hold, got %v", got)
	}
	obsd.Capacity["DB"] = 0
	if got := r.Target(4, 8, obsd); len(got) != 0 {
		t.Errorf("zero capacity should hold, got %v", got)
	}
}

func TestDemandForecast(t *testing.T) {
	est := map[app.Pair]estimator.Estimate{
		{Component: "DB", Resource: app.CPU}:      {Exp: []float64{1, 2}, Up: []float64{3, 4}},
		{Component: "Service", Resource: app.CPU}: {Exp: []float64{5, 6}, Up: []float64{9}}, // ragged CI
		{Component: "DB", Resource: app.Memory}:   {Exp: []float64{99}, Up: []float64{99}},
	}
	fc := DemandForecast(est, []string{"DB", "Service", "Gateway"})
	if !reflect.DeepEqual(fc["DB"], []float64{3, 4}) {
		t.Errorf("DB forecast = %v, want upper CI", fc["DB"])
	}
	if !reflect.DeepEqual(fc["Service"], []float64{5, 6}) {
		t.Errorf("Service forecast = %v, want Exp fallback on ragged CI", fc["Service"])
	}
	if _, ok := fc["Gateway"]; ok {
		t.Error("Gateway has no CPU estimate and should be absent")
	}
}
