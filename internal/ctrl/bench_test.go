package ctrl

import "testing"

// BenchmarkCtrlLoop measures one full closed-loop run (64 windows, 3
// managed components, reactive policy) — the per-simulated-day cost the
// autoscale experiment pays per policy per scenario.
func BenchmarkCtrlLoop(b *testing.B) {
	env := toyEnv(twoPeakCounts())
	cfg := testConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(env, cfg, &Reactive{Up: 0.7, Down: 0.3}); err != nil {
			b.Fatal(err)
		}
	}
}
