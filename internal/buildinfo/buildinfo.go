// Package buildinfo identifies the running build. The version is stamped at
// link time (go build -ldflags "-X repro/internal/buildinfo.Version=v1.2.3")
// and defaults to "dev" plus whatever VCS revision the Go toolchain embeds.
package buildinfo

import (
	"runtime"
	"runtime/debug"

	"repro/internal/obs"
)

// Version is the release identity of this binary; overridden at link time.
var Version = "dev"

// Revision returns the VCS revision the toolchain embedded into the build
// ("" outside a VCS checkout or when built from a module zip).
func Revision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			if len(s.Value) > 12 {
				return s.Value[:12]
			}
			return s.Value
		}
	}
	return ""
}

// GoVersion returns the Go runtime the binary was built with.
func GoVersion() string { return runtime.Version() }

// String renders the full identity, e.g. "dev (abc123def456, go1.22.1)".
func String() string {
	if rev := Revision(); rev != "" {
		return Version + " (" + rev + ", " + GoVersion() + ")"
	}
	return Version + " (" + GoVersion() + ")"
}

// Register publishes the deeprest_build_info gauge: constant 1 with the
// build identity in labels, the standard Prometheus idiom for joining
// version metadata onto any other series. Nil registry is a no-op;
// registration is idempotent like the rest of internal/obs.
func Register(reg *obs.Registry) {
	if reg == nil {
		return
	}
	// Build identity is per-process, not per-tenant: register through the
	// root view so a tenant-labelled registry never forks the family.
	reg = reg.Root()
	reg.GaugeVec("deeprest_build_info",
		"Build identity of the running deeprest binary (constant 1; the labels carry the information).",
		"version", "go_version").
		With(Version, GoVersion()).Set(1)
}
