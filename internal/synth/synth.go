// Package synth implements DeepRest's trace synthesizer (paper §4.4).
//
// Resource-allocation queries submit API traffic that the application has
// not served yet, so no traces exist for it. The synthesizer learns, for
// every API endpoint, the empirical probability distribution of invocation
// paths conditioned on the API — Prob(P | API) — from the traces captured
// during application learning, and converts query traffic into synthetic
// trace batches by sampling that distribution once per request.
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/features"
	"repro/internal/trace"
	"repro/internal/workload"
)

// shape is one observed invocation tree of an API with its empirical
// probability.
type shape struct {
	tree  *trace.Span
	count float64
	prob  float64
}

// Synthesizer holds Prob(P | API) for every API observed during application
// learning.
type Synthesizer struct {
	shapes map[string][]shape
}

// Learn estimates Prob(P | API) from the learning-phase windows.
func Learn(windows [][]trace.Batch) *Synthesizer {
	s := &Synthesizer{shapes: make(map[string][]shape)}
	index := make(map[string]map[string]int) // api -> tree signature -> slot
	for _, w := range windows {
		for _, b := range w {
			if b.Trace.Root == nil || b.Count <= 0 {
				continue
			}
			api := b.Trace.API
			sig := signature(b.Trace.Root)
			slots, ok := index[api]
			if !ok {
				slots = make(map[string]int)
				index[api] = slots
			}
			if i, ok := slots[sig]; ok {
				s.shapes[api][i].count += float64(b.Count)
			} else {
				slots[sig] = len(s.shapes[api])
				s.shapes[api] = append(s.shapes[api], shape{tree: b.Trace.Root, count: float64(b.Count)})
			}
		}
	}
	for api, list := range s.shapes {
		total := 0.0
		for _, sh := range list {
			total += sh.count
		}
		for i := range list {
			list[i].prob = list[i].count / total
		}
		// Deterministic ordering: descending probability, signature
		// tie-break, so synthesis is reproducible regardless of map
		// iteration order during learning.
		sort.Slice(list, func(i, j int) bool {
			if list[i].prob != list[j].prob {
				return list[i].prob > list[j].prob
			}
			return signature(list[i].tree) < signature(list[j].tree)
		})
		s.shapes[api] = list
	}
	return s
}

// signature canonically serialises a span tree.
func signature(s *trace.Span) string {
	out := s.ID()
	if len(s.Children) > 0 {
		out += "("
		for i, c := range s.Children {
			if i > 0 {
				out += ","
			}
			out += signature(c)
		}
		out += ")"
	}
	return out
}

// APIs returns the sorted endpoints the synthesizer knows about.
func (s *Synthesizer) APIs() []string {
	out := make([]string, 0, len(s.shapes))
	for api := range s.shapes {
		out = append(out, api)
	}
	sort.Strings(out)
	return out
}

// NumShapes returns how many distinct invocation trees were learned for an
// API.
func (s *Synthesizer) NumShapes(api string) int { return len(s.shapes[api]) }

// Prob returns the empirical probability of shape index i of the API.
func (s *Synthesizer) Prob(api string, i int) float64 { return s.shapes[api][i].prob }

// Synthesize converts query API traffic into synthetic trace batches, one
// window at a time, by sampling Prob(P | API) for every request. The seed
// makes synthesis reproducible.
func (s *Synthesizer) Synthesize(t *workload.Traffic, seed int64) ([][]trace.Batch, error) {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]trace.Batch, len(t.Windows))
	for w, reqs := range t.Windows {
		apis := make([]string, 0, len(reqs))
		for api := range reqs {
			apis = append(apis, api)
		}
		sort.Strings(apis)
		var batches []trace.Batch
		for _, api := range apis {
			n := reqs[api]
			if n <= 0 {
				continue
			}
			list, ok := s.shapes[api]
			if !ok {
				return nil, fmt.Errorf("synth: API %q was never observed during application learning", api)
			}
			counts := multinomial(rng, n, list)
			for i, c := range counts {
				if c == 0 {
					continue
				}
				batches = append(batches, trace.Batch{
					Trace: trace.Trace{API: api, Root: list[i].tree},
					Count: c,
				})
			}
		}
		out[w] = batches
	}
	return out, nil
}

// multinomial splits n across the shapes proportionally to probability with
// sampling noise, keeping the total exactly n.
func multinomial(rng *rand.Rand, n int, list []shape) []int {
	counts := make([]int, len(list))
	remaining := n
	probLeft := 1.0
	for i := range list {
		if i == len(list)-1 {
			counts[i] = remaining
			break
		}
		if probLeft <= 0 {
			break
		}
		cond := list[i].prob / probLeft
		if cond > 1 {
			cond = 1
		}
		mean := float64(remaining) * cond
		sd := math.Sqrt(float64(remaining) * cond * (1 - cond))
		k := int(math.Round(mean + sd*rng.NormFloat64()))
		if k < 0 {
			k = 0
		}
		if k > remaining {
			k = remaining
		}
		counts[i] = k
		remaining -= k
		probLeft -= list[i].prob
	}
	return counts
}

// Accuracy measures synthesis quality as in the paper's Table 1: the
// synthetic traces of each window are compared, in feature space, with the
// ground-truth traces captured by running the same query traffic. For each
// window the overlap is 1 − L1(synth, truth)/total(truth); the result is
// the percentage average over non-empty windows.
func Accuracy(space *features.Space, synthetic, truth [][]trace.Batch) float64 {
	if len(synthetic) != len(truth) {
		panic(fmt.Sprintf("synth: Accuracy window count mismatch %d vs %d", len(synthetic), len(truth)))
	}
	sum, n := 0.0, 0
	for w := range truth {
		tv := space.Extract(truth[w])
		sv := space.Extract(synthetic[w])
		totalTruth := tv.Unknown
		l1 := 0.0
		for i := range tv.Counts {
			l1 += math.Abs(tv.Counts[i] - sv.Counts[i])
			totalTruth += tv.Counts[i]
		}
		l1 += math.Abs(tv.Unknown - sv.Unknown)
		if totalTruth == 0 {
			continue
		}
		acc := 1 - l1/totalTruth
		if acc < 0 {
			acc = 0
		}
		sum += acc
		n++
	}
	if n == 0 {
		return 0
	}
	return 100 * sum / float64(n)
}
