package synth

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/features"
	"repro/internal/testutil"
	"repro/internal/trace"
	"repro/internal/workload"
)

func learnToy(t *testing.T) ([][]trace.Batch, *Synthesizer) {
	t.Helper()
	_, _, run := testutil.ToyTelemetry(t, 2, 30, 1)
	return run.Windows, Learn(run.Windows)
}

func TestLearnDistribution(t *testing.T) {
	windows, s := learnToy(t)
	apis := s.APIs()
	if len(apis) != 2 || apis[0] != "/read" || apis[1] != "/write" {
		t.Fatalf("APIs = %v", apis)
	}
	for _, api := range apis {
		n := s.NumShapes(api)
		if n != 1 {
			t.Fatalf("%s has %d shapes, want 1 (toy app)", api, n)
		}
		total := 0.0
		for i := 0; i < n; i++ {
			total += s.Prob(api, i)
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("%s probabilities sum to %v", api, total)
		}
	}
	_ = windows
}

func TestLearnMultiTemplateProbabilities(t *testing.T) {
	// Hand-built windows: API /m with two shapes at 3:1.
	a := trace.Trace{API: "/m", Root: trace.NewSpan("A", "x")}
	broot := trace.NewSpan("A", "x")
	broot.Child("B", "y")
	b := trace.Trace{API: "/m", Root: broot}
	windows := [][]trace.Batch{
		{{Trace: a, Count: 30}, {Trace: b, Count: 10}},
		{{Trace: a, Count: 30}, {Trace: b, Count: 10}},
	}
	s := Learn(windows)
	if s.NumShapes("/m") != 2 {
		t.Fatalf("shapes = %d, want 2", s.NumShapes("/m"))
	}
	if math.Abs(s.Prob("/m", 0)-0.75) > 1e-9 {
		t.Errorf("Prob(0) = %v, want 0.75", s.Prob("/m", 0))
	}
}

func TestSynthesizeCountsMatchTraffic(t *testing.T) {
	_, s := learnToy(t)
	prog := testutil.ToyProgram(1, 50, 9)
	traffic := prog.Generate()
	out, err := s.Synthesize(traffic, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != traffic.NumWindows() {
		t.Fatalf("windows = %d", len(out))
	}
	for w, batches := range out {
		want := traffic.WindowTotal(w)
		if got := trace.TotalRequests(batches); got != want {
			t.Fatalf("window %d: synthesized %d requests, want %d", w, got, want)
		}
	}
}

func TestSynthesizeUnknownAPI(t *testing.T) {
	_, s := learnToy(t)
	traffic := &workload.Traffic{
		Windows:       []map[string]int{{"/mystery": 5}},
		WindowSeconds: 60, WindowsPerDay: 48,
	}
	if _, err := s.Synthesize(traffic, 1); err == nil {
		t.Fatal("unknown API must error")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	_, s := learnToy(t)
	traffic := testutil.ToyProgram(1, 40, 5).Generate()
	a, _ := s.Synthesize(traffic, 3)
	b, _ := s.Synthesize(traffic, 3)
	for w := range a {
		if len(a[w]) != len(b[w]) {
			t.Fatal("non-deterministic batch structure")
		}
		for i := range a[w] {
			if a[w][i].Count != b[w][i].Count {
				t.Fatal("non-deterministic counts")
			}
		}
	}
}

func TestAccuracySelf(t *testing.T) {
	windows, _ := learnToy(t)
	space := features.NewSpace(windows)
	if got := Accuracy(space, windows, windows); got != 100 {
		t.Errorf("self accuracy = %v, want 100", got)
	}
}

func TestAccuracyAgainstGroundTruth(t *testing.T) {
	cluster, _, run := testutil.ToyTelemetry(t, 2, 30, 2)
	s := Learn(run.Windows)
	space := features.NewSpace(run.Windows)
	query := testutil.ToyProgram(1, 60, 77).Generate()
	truth, err := cluster.Run(query)
	if err != nil {
		t.Fatal(err)
	}
	synthetic, err := s.Synthesize(query, 5)
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(space, synthetic, truth.Windows)
	t.Logf("synthesis accuracy: %.2f%%", acc)
	if acc < 90 {
		t.Errorf("synthesis accuracy %.2f%% below the paper's 90%% bar", acc)
	}
}

func TestAccuracyMismatchedWindowsPanics(t *testing.T) {
	windows, _ := learnToy(t)
	space := features.NewSpace(windows)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Accuracy(space, windows[:1], windows)
}

// Property: synthesized batch counts per window always sum to the requested
// traffic, for any request count.
func TestSynthesisConservationProperty(t *testing.T) {
	_, s := learnToy(t)
	f := func(n uint16, seed int64) bool {
		traffic := &workload.Traffic{
			Windows:       []map[string]int{{"/read": int(n % 3000), "/write": int(n % 997)}},
			WindowSeconds: 60, WindowsPerDay: 48,
		}
		out, err := s.Synthesize(traffic, seed)
		if err != nil {
			return false
		}
		return trace.TotalRequests(out[0]) == int(n%3000)+int(n%997)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
