package experiments

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/eval"
	"repro/internal/workload"
)

// fig14Components are the four CPU-allocation targets of Figures 14–16.
var fig14Components = []string{"FrontendNGINX", "ComposePostService", "UserTimelineService", "PostStorageMongoDB"}

// Fig14 estimates CPU utilization for query traffic with unseen scales of
// application users (1×, 2×, 3×), repeating each scale with minor
// variations and reporting the worst case (paper Figure 14).
func (r *Runner) Fig14() (Result, error) {
	l, err := r.Social()
	if err != nil {
		return Result{}, err
	}
	rows := cpuPairs(fig14Components...)
	metrics := map[string]float64{}
	for i, scale := range []float64{1, 2, 3} {
		queries := l.scenarioQueries(workload.TwoPeak{}, l.Mix, l.PeakRPS*scale, r.P.Reps, r.P.Seed+470+int64(i)*97)
		evs, err := l.evaluateAll(queries)
		if err != nil {
			return Result{}, err
		}
		worst := mapeTable(r.P.Out, fmt.Sprintf("unseen scale %.0fx (worst of %d reps, CPU MAPE)", scale, r.P.Reps), rows, evs)
		for _, m := range Methods {
			mean := 0.0
			for _, p := range rows {
				mean += worst[m][p]
			}
			metrics[fmt.Sprintf("scale%d_%s", int(scale), shortName(m))] = mean / float64(len(rows))
		}
		metrics[fmt.Sprintf("scale%d_deeprest_wins", int(scale))] = float64(winsFor(MethodDeepRest, worst, rows))
	}
	return Result{ID: "fig14", Metrics: metrics}, nil
}

// Fig15 estimates CPU utilization for query traffic with API compositions
// that were (left) or were not (right) observed during application learning
// (paper Figure 15).
func (r *Runner) Fig15() (Result, error) {
	l, err := r.Social()
	if err != nil {
		return Result{}, err
	}
	rows := cpuPairs(fig14Components...)
	metrics := map[string]float64{}
	settings := []struct {
		key string
		mix workload.Mix
	}{
		{"seen", l.Mix},
		{"unseen", unseenCompositionMix()},
	}
	for i, s := range settings {
		queries := l.scenarioQueries(workload.TwoPeak{}, s.mix, l.PeakRPS, r.P.Reps, r.P.Seed+490+int64(i)*91)
		evs, err := l.evaluateAll(queries)
		if err != nil {
			return Result{}, err
		}
		worst := mapeTable(r.P.Out, fmt.Sprintf("%s API composition (worst of %d reps, CPU MAPE)", s.key, r.P.Reps), rows, evs)
		for _, m := range Methods {
			mean := 0.0
			for _, p := range rows {
				mean += worst[m][p]
			}
			metrics[fmt.Sprintf("%s_%s", s.key, shortName(m))] = mean / float64(len(rows))
		}
		metrics[s.key+"_deeprest_wins"] = float64(winsFor(MethodDeepRest, worst, rows))
	}
	return Result{ID: "fig15", Metrics: metrics}, nil
}

// Fig16 estimates CPU utilization under unseen traffic shapes, in both
// directions: a model learned on 2-peak/day traffic queried with flat
// traffic, and a model learned on flat traffic queried with 2-peak/day
// traffic (paper Figure 16).
func (r *Runner) Fig16() (Result, error) {
	rows := cpuPairs(fig14Components...)
	metrics := map[string]float64{}

	type direction struct {
		key   string
		lab   func() (*Lab, error)
		shape workload.Shape
	}
	dirs := []direction{
		{"2peak_to_flat", r.Social, workload.Flat{}},
		{"flat_to_2peak", r.SocialFlat, workload.TwoPeak{}},
	}
	for i, d := range dirs {
		l, err := d.lab()
		if err != nil {
			return Result{}, err
		}
		queries := l.scenarioQueries(d.shape, l.Mix, l.PeakRPS, r.P.Reps, r.P.Seed+510+int64(i)*83)
		evs, err := l.evaluateAll(queries)
		if err != nil {
			return Result{}, err
		}
		worst := mapeTable(r.P.Out, fmt.Sprintf("%s (worst of %d reps, CPU MAPE)", d.key, r.P.Reps), rows, evs)
		for _, m := range Methods {
			mean := 0.0
			for _, p := range rows {
				mean += worst[m][p]
			}
			metrics[fmt.Sprintf("%s_%s", d.key, shortName(m))] = mean / float64(len(rows))
		}
		metrics[d.key+"_deeprest_wins"] = float64(winsFor(MethodDeepRest, worst, rows))
	}
	return Result{ID: "fig16", Metrics: metrics}, nil
}

// Fig17 queries the hotel-reservation system with 3× more users than ever
// and reports the CPU estimation of the FrontendService: DeepRest stays
// accurate while the scaling baselines drift — small per-request errors are
// magnified at large scales, and scaling the idle baseline with traffic
// systematically overestimates (paper Figure 17).
func (r *Runner) Fig17() (Result, error) {
	l, err := r.Hotel()
	if err != nil {
		return Result{}, err
	}
	w := r.P.Out
	p := app.Pair{Component: "FrontendService", Resource: app.CPU}
	q := l.queryDay(workload.TwoPeak{}, l.Mix, l.PeakRPS*3, r.P.Seed+530)
	ev, err := l.Evaluate(q)
	if err != nil {
		return Result{}, err
	}
	fmt.Fprintf(w, "hotel reservation, 3x users, %s\n", p)
	fmt.Fprintf(w, "  %-17s %s  (%s)\n", "actual", eval.Sparkline(ev.Actual[p], 64), eval.SeriesSummary(ev.Actual[p]))
	metrics := map[string]float64{}
	for _, m := range Methods {
		s := ev.Series[m][p]
		mape := eval.MAPE(s, ev.Actual[p])
		fmt.Fprintf(w, "  %-17s %s  (%s) MAPE=%.1f%%\n", m, eval.Sparkline(s, 64), eval.SeriesSummary(s), mape)
		metrics["mape_"+shortName(m)] = mape
		metrics["mean_ratio_"+shortName(m)] = meanOf(s) / meanOf(ev.Actual[p])
	}
	// Absolute percentage error distribution for DeepRest (Figure 17b).
	ape := make([]float64, len(ev.Actual[p]))
	for i := range ape {
		den := ev.Actual[p][i]
		if den < 1 {
			den = 1
		}
		ape[i] = 100 * abs(ev.Series[MethodDeepRest][p][i]-ev.Actual[p][i]) / den
	}
	fmt.Fprintf(w, "  DeepRest abs %% error over the day: %s (%s)\n", eval.Sparkline(ape, 64), eval.SeriesSummary(ape))
	return Result{ID: "fig17", Metrics: metrics}, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
