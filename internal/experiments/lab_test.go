package experiments

import (
	"io"
	"math"
	"testing"

	"repro/internal/app"
	"repro/internal/sim"
	"repro/internal/workload"
)

// sharedLab provisions one quick lab per test binary run.
var sharedLab *Lab

func quickLab(t *testing.T) *Lab {
	t.Helper()
	if testing.Short() {
		t.Skip("provisions a lab")
	}
	if sharedLab == nil {
		p := DefaultParams(io.Discard)
		p.Quick = true
		p.Reps = 1
		l, err := NewSocialLab(p, workload.TwoPeak{})
		if err != nil {
			t.Fatal(err)
		}
		sharedLab = l
	}
	return sharedLab
}

func TestScenarioMixesNormalise(t *testing.T) {
	for name, mix := range map[string]workload.Mix{
		"compose": composeDominatedMix(),
		"read":    readDominatedMix(),
		"unseen":  unseenCompositionMix(),
	} {
		n := mix.Normalize()
		sum := 0.0
		for _, v := range n {
			if v < 0 {
				t.Errorf("%s: negative share", name)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: normalised sum %v", name, sum)
		}
	}
	// The read-dominated mix must actually be read-dominated.
	r := readDominatedMix().Normalize()
	if r["/readTimeline"] < 0.5 {
		t.Errorf("read share = %v", r["/readTimeline"])
	}
}

func TestGroundTruthDeterministic(t *testing.T) {
	l := quickLab(t)
	q := l.QueryDay(workload.TwoPeak{}, l.Mix, 1.5, 901)
	a, err := l.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range l.Pairs {
		sa, sb := a.Series(p), b.Series(p)
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("%s window %d: %v vs %v", p, i, sa[i], sb[i])
			}
		}
	}
}

func TestEvaluateInvariants(t *testing.T) {
	l := quickLab(t)
	q := l.QueryDay(workload.TwoPeak{}, l.Mix, 1.2, 902)
	ev, err := l.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	n := q.NumWindows()
	if len(ev.Synthetic) != n {
		t.Fatalf("synthetic windows = %d, want %d", len(ev.Synthetic), n)
	}
	for _, p := range l.Pairs {
		if len(ev.Actual[p]) != n {
			t.Fatalf("%s actual length %d", p, len(ev.Actual[p]))
		}
		for _, m := range Methods {
			if len(ev.Series[m][p]) != n {
				t.Fatalf("%s/%s estimate length %d", m, p, len(ev.Series[m][p]))
			}
		}
		if len(ev.Estimates[p].Low) != n || len(ev.Estimates[p].Up) != n {
			t.Fatalf("%s interval lengths wrong", p)
		}
	}
	// Synthesis accuracy of the evaluation must clear the Table-1 bar.
	if acc := l.SynthAccuracy(ev); acc < 90 {
		t.Errorf("synthesis accuracy %.2f%% below 90%%", acc)
	}
	// The MAPE helper agrees with a direct computation.
	mapes := ev.MAPE(pairComposeCPU)
	if len(mapes) != len(Methods) {
		t.Fatalf("MAPE methods = %d", len(mapes))
	}
}

func TestAttackShifting(t *testing.T) {
	l := quickLab(t)
	// An attack specified relative to the query start must land inside
	// the ground-truth run at the same relative offset.
	q := l.QueryDay(workload.TwoPeak{}, l.Mix, 1, 903)
	clean, err := l.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	attacked, err := l.GroundTruth(q, cryptojackAt(10, 20, "PostStorageMongoDB", 500))
	if err != nil {
		t.Fatal(err)
	}
	p := pairPostCPU()
	for w := 0; w < q.NumWindows(); w++ {
		diff := attacked.Series(p)[w] - clean.Series(p)[w]
		inAttack := w >= 10 && w < 20
		if inAttack && diff < 400 {
			t.Fatalf("window %d: attack not visible (diff %v)", w, diff)
		}
		if !inAttack && math.Abs(diff) > 100 {
			t.Fatalf("window %d: unexpected perturbation %v outside the attack", w, diff)
		}
	}
}

// cryptojackAt builds a query-relative cryptojack injection.
func cryptojackAt(from, to int, component string, mcores float64) sim.Cryptojack {
	return sim.Cryptojack{Component: component, FromWindow: from, ToWindow: to, ExtraCPU: mcores}
}

func pairPostCPU() app.Pair {
	return app.Pair{Component: "PostStorageMongoDB", Resource: app.CPU}
}
