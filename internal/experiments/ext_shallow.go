package experiments

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/baselines"
	"repro/internal/eval"
	"repro/internal/features"
	"repro/internal/workload"
)

// ExtShallow probes the paper's §3 motivation for deep models: with
// shallow learning over the same trace features, some resources fit best
// with a linear function and others with a polynomial one, so the
// application owner faces per-resource model selection. That burden
// reproduces here. An honest caveat also emerges: on this simulated
// substrate — whose cost model is closer to affine than a real testbed —
// closed-form ridge regression over the right features is competitive with
// the recurrent estimator on point MAPE. What the shallow models still
// lack is everything the paper's use cases need beyond a point estimate:
// calibrated confidence intervals (sanity checks), temporal state (caches,
// queuing memory), and the per-expert structure behind Figures 21–22.
func (r *Runner) ExtShallow() (Result, error) {
	l, err := r.Social()
	if err != nil {
		return Result{}, err
	}
	w := r.P.Out

	// Shared design matrices: the same invocation-path features the
	// estimator consumes, raw-scaled.
	space := features.NewSpace(l.LearnRun.Windows)
	scaler := features.FitScaler(features.Matrix(space.ExtractSeries(l.LearnRun.Windows)))
	xTrain := scaler.Apply(features.Matrix(space.ExtractSeries(l.LearnRun.Windows)))

	query := l.queryDay(workload.TwoPeak{}, l.Mix, l.PeakRPS*3, r.P.Seed+620)
	ev, err := l.Evaluate(query)
	if err != nil {
		return Result{}, err
	}
	xQuery := scaler.Apply(features.Matrix(space.ExtractSeries(ev.Synthetic)))

	pairs := []app.Pair{
		{Component: "FrontendNGINX", Resource: app.CPU},
		{Component: "ComposePostService", Resource: app.CPU},
		{Component: "UserTimelineService", Resource: app.CPU},
		{Component: "PostStorageMongoDB", Resource: app.CPU},
		{Component: "PostStorageMongoDB", Resource: app.WriteIOps},
		{Component: "PostStorageMongoDB", Resource: app.Memory},
	}
	fmt.Fprintln(w, "shallow model selection vs DeepRest (unseen 3x-scale query)")
	fmt.Fprintf(w, "  %-34s %10s %10s %12s %10s\n", "pair", "linear", "polynomial", "best shallow", "DeepRest")

	metrics := map[string]float64{}
	linWins, polyWins := 0, 0
	deepBeatsBest := 0
	cfg := baselines.DefaultShallowConfig()
	for _, p := range pairs {
		yTrain := l.LearnRun.Usage[p]
		lin, err := baselines.TrainShallow(baselines.ShallowLinear, xTrain, yTrain, cfg)
		if err != nil {
			return Result{}, err
		}
		poly, err := baselines.TrainShallow(baselines.ShallowPolynomial, xTrain, yTrain, cfg)
		if err != nil {
			return Result{}, err
		}
		linErr := eval.MAPE(lin.Predict(xQuery), ev.Actual[p])
		polyErr := eval.MAPE(poly.Predict(xQuery), ev.Actual[p])
		deepErr := eval.MAPE(ev.Series[MethodDeepRest][p], ev.Actual[p])
		best := linErr
		bestName := "linear"
		if polyErr < best {
			best, bestName = polyErr, "polynomial"
			polyWins++
		} else {
			linWins++
		}
		if deepErr < best {
			deepBeatsBest++
		}
		fmt.Fprintf(w, "  %-34s %9.1f%% %9.1f%% %12s %9.1f%%\n", p, linErr, polyErr, bestName, deepErr)
		key := shortPairKey(p)
		metrics[key+"_linear"] = linErr
		metrics[key+"_poly"] = polyErr
		metrics[key+"_deeprest"] = deepErr
	}
	fmt.Fprintf(w, "  winning shallow class differs by resource: linear %d, polynomial %d (the §3 model-selection burden)\n", linWins, polyWins)
	fmt.Fprintf(w, "  DeepRest beats the per-resource best shallow model on %d/%d pairs\n", deepBeatsBest, len(pairs))
	fmt.Fprintln(w, "  note: on this near-affine simulated substrate, well-featured ridge regression is a")
	fmt.Fprintln(w, "  strong point estimator; the shallow models provide no confidence intervals, so the")
	fmt.Fprintln(w, "  paper's sanity-check use case remains out of their reach (see EXPERIMENTS.md).")
	metrics["linear_wins"] = float64(linWins)
	metrics["poly_wins"] = float64(polyWins)
	metrics["deep_beats_best"] = float64(deepBeatsBest)
	metrics["pairs"] = float64(len(pairs))
	return Result{ID: "shallow", Metrics: metrics}, nil
}

func shortPairKey(p app.Pair) string {
	return p.Component + "_" + p.Resource.String()
}
