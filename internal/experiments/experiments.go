package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/workload"
)

// Result carries an experiment's headline metrics so callers (tests,
// EXPERIMENTS.md generation) can assert the reproduction's shape without
// parsing printed output.
type Result struct {
	// ID is the experiment identifier (fig9..fig22, table1, ...).
	ID string
	// Metrics holds named headline numbers.
	Metrics map[string]float64
}

// Runner executes experiments, lazily provisioning and caching the labs so
// one process trains each model at most once (the paper likewise reuses one
// application-learning phase across queries).
type Runner struct {
	P Params

	socialTwoPeak *Lab
	socialFlat    *Lab
	hotel         *Lab
}

// NewRunner returns a Runner with the given parameters.
func NewRunner(p Params) *Runner {
	if p.Out == nil {
		p.Out = io.Discard
	}
	if p.Reps <= 0 {
		p.Reps = 3
	}
	return &Runner{P: p}
}

// Social returns the two-peak social-network lab, provisioning on first use.
func (r *Runner) Social() (*Lab, error) {
	if r.socialTwoPeak == nil {
		fmt.Fprintln(r.P.Out, "# provisioning social-network lab (two-peak learning traffic)...")
		l, err := NewSocialLab(r.P, workload.TwoPeak{})
		if err != nil {
			return nil, err
		}
		r.socialTwoPeak = l
	}
	return r.socialTwoPeak, nil
}

// SocialFlat returns the social-network lab trained on flat traffic (the
// reverse direction of Figure 16), provisioning on first use.
func (r *Runner) SocialFlat() (*Lab, error) {
	if r.socialFlat == nil {
		fmt.Fprintln(r.P.Out, "# provisioning social-network lab (flat learning traffic)...")
		p := r.P
		p.Seed += 5000
		l, err := NewSocialLab(p, workload.Flat{})
		if err != nil {
			return nil, err
		}
		r.socialFlat = l
	}
	return r.socialFlat, nil
}

// Hotel returns the hotel-reservation lab, provisioning on first use.
func (r *Runner) Hotel() (*Lab, error) {
	if r.hotel == nil {
		fmt.Fprintln(r.P.Out, "# provisioning hotel-reservation lab...")
		l, err := NewHotelLab(r.P)
		if err != nil {
			return nil, err
		}
		r.hotel = l
	}
	return r.hotel, nil
}

// driver is one experiment entry point.
type driver struct {
	id    string
	about string
	run   func(r *Runner) (Result, error)
}

// registry lists every experiment in paper order.
var registry = []driver{
	{"fig9", "7-day learning-phase API traffic (Figure 9)", (*Runner).Fig9},
	{"fig10", "/composePost-dominated query estimation (Figure 10)", (*Runner).Fig10},
	{"fig11", "/readTimeline-dominated query estimation (Figure 11)", (*Runner).Fig11},
	{"fig12", "estimation-quality heatmaps, 4 components x 5 resources (Figure 12)", (*Runner).Fig12},
	{"fig13", "example queries of the three business scenarios (Figure 13)", (*Runner).Fig13},
	{"fig14", "unseen user scales 1x/2x/3x (Figure 14)", (*Runner).Fig14},
	{"fig15", "unseen API compositions (Figure 15)", (*Runner).Fig15},
	{"fig16", "unseen traffic shapes (Figure 16)", (*Runner).Fig16},
	{"fig17", "hotel reservation, 3x users (Figure 17)", (*Runner).Fig17},
	{"fig18", "2-peak->flat example estimates (Figure 18)", (*Runner).Fig18},
	{"table1", "trace-synthesizer accuracy over six settings (Table 1)", (*Runner).Table1},
	{"fig19", "ransomware sanity check (Figure 19)", (*Runner).Fig19},
	{"fig20", "cryptojacking sanity check (Figure 20)", (*Runner).Fig20},
	{"fig21", "PCA of expert GRU parameters (Figure 21)", (*Runner).Fig21},
	{"fig22", "learned API-aware masks (Figure 22)", (*Runner).Fig22},
	{"gensweep", "extension: estimation accuracy across generated topology sizes", (*Runner).GenSweep},
	{"autoscale", "extension: schedule-based autoscaling from estimates, offline plans + closed control loop (paper §2)", (*Runner).ExtAutoscale},
	{"shallow", "extension: shallow model selection vs DeepRest (paper §3)", (*Runner).ExtShallow},
	{"drift", "extension: concept-drift adaptation via continued training (paper §6)", (*Runner).ExtDrift},
}

// List returns the experiment IDs in paper order.
func List() []string {
	out := make([]string, len(registry))
	for i, d := range registry {
		out[i] = d.id
	}
	return out
}

// Describe returns the one-line description of an experiment ID.
func Describe(id string) string {
	for _, d := range registry {
		if d.id == id {
			return d.about
		}
	}
	return ""
}

// Run executes one experiment by ID.
func (r *Runner) Run(id string) (Result, error) {
	for _, d := range registry {
		if d.id == id {
			fmt.Fprintf(r.P.Out, "\n== %s: %s ==\n", d.id, d.about)
			return d.run(r)
		}
	}
	return Result{}, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, List())
}

// RunAll executes every experiment in paper order and returns the results
// keyed by ID.
func (r *Runner) RunAll() (map[string]Result, error) {
	out := make(map[string]Result, len(registry))
	for _, d := range registry {
		res, err := r.Run(d.id)
		if err != nil {
			return out, fmt.Errorf("%s: %w", d.id, err)
		}
		out[d.id] = res
	}
	return out, nil
}

// sortedMetricKeys renders metrics deterministically.
func sortedMetricKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// PrintMetrics renders a result's metrics block.
func PrintMetrics(w io.Writer, res Result) {
	for _, k := range sortedMetricKeys(res.Metrics) {
		fmt.Fprintf(w, "  metric %s = %.3f\n", k, res.Metrics[k])
	}
}
