package experiments

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/drift"
	"repro/internal/estimator"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ExtDrift exercises the §6 adaptation story at experiment scale: a new
// application version ships whose /composePost handler costs 40% more CPU.
// The stale model mis-estimates the changed components; one day of
// continued training on fresh telemetry (estimator.Model.Update) repairs
// the estimates without a full re-learn.
//
// The drift measurement itself lives in internal/drift (the exported API
// the continuous-learning pipeline consumes); this experiment is a thin
// driver over it.
func (r *Runner) ExtDrift() (Result, error) {
	l, err := r.Social()
	if err != nil {
		return Result{}, err
	}
	w := r.P.Out

	// The new version: every ComposePostService visit costs 1.4x CPU.
	drifted := scaleComponentCPU(l.Spec, "ComposePostService", 1.4)
	cluster, err := sim.NewCluster(drifted, l.P.Seed+100) // same seed → same streams
	if err != nil {
		return Result{}, err
	}
	// Warm the drifted cluster through the (historical) learning phase,
	// then serve two fresh days on the new version: one to adapt on, one
	// to evaluate on.
	if _, err := cluster.Run(l.LearnTraffic); err != nil {
		return Result{}, err
	}
	freshDays := make([]workload.DaySpec, 2)
	for i := range freshDays {
		freshDays[i] = workload.DaySpec{Shape: l.LearnShape, Mix: l.Mix, PeakRPS: l.PeakRPS}
	}
	fresh := l.program(freshDays, l.P.Seed+640).Generate()
	run, err := cluster.Run(fresh)
	if err != nil {
		return Result{}, err
	}
	adaptTo := l.WPD
	adaptRun := run.Slice(0, adaptTo)
	evalRun := run.Slice(adaptTo, run.NumWindows())

	target := app.Pair{Component: "ComposePostService", Resource: app.CPU}
	control := app.Pair{Component: "UserTimelineService", Resource: app.CPU}

	// Update mutates the model, so retrain a private copy for this
	// experiment and keep the shared lab's system pristine.
	trainUsage := make(map[app.Pair][]float64, len(l.Pairs))
	for _, p := range l.Pairs {
		trainUsage[p] = l.LearnRun.Usage[p]
	}
	model, err := estimator.Train(l.LearnRun.Windows, trainUsage, l.P.estimatorConfig())
	if err != nil {
		return Result{}, err
	}

	det := drift.NewDetector()
	mapeOnEval := func() (map[app.Pair]float64, error) {
		sig, err := det.Measure(model, evalRun.Windows, evalRun.Usage)
		if err != nil {
			return nil, err
		}
		out := map[app.Pair]float64{}
		for _, p := range []app.Pair{target, control} {
			out[p] = sig.PairMAPE[p]
		}
		return out, nil
	}
	before, err := mapeOnEval()
	if err != nil {
		return Result{}, err
	}

	usage := make(map[app.Pair][]float64, len(l.Pairs))
	for _, p := range l.Pairs {
		usage[p] = adaptRun.Usage[p]
	}
	unknown, err := model.Update(adaptRun.Windows, usage, 6)
	if err != nil {
		return Result{}, err
	}
	after, err := mapeOnEval()
	if err != nil {
		return Result{}, err
	}

	fmt.Fprintf(w, "concept drift: new version costs 1.4x CPU in ComposePostService (unknown paths: %.0f)\n", unknown)
	fmt.Fprintf(w, "  %-30s %14s %14s\n", "pair", "stale model", "after Update")
	metrics := map[string]float64{"unknown_paths": unknown}
	for _, p := range []app.Pair{target, control} {
		fmt.Fprintf(w, "  %-30s %13.1f%% %13.1f%%\n", p, before[p], after[p])
		metrics[shortPairKey(p)+"_before"] = before[p]
		metrics[shortPairKey(p)+"_after"] = after[p]
	}
	return Result{ID: "drift", Metrics: metrics}, nil
}

// scaleComponentCPU deep-copies a spec with every visit to the component
// costing factor× CPU.
func scaleComponentCPU(spec *app.Spec, component string, factor float64) *app.Spec {
	out := &app.Spec{Name: spec.Name + "-v2", Components: append([]app.Component(nil), spec.Components...)}
	for _, a := range spec.APIs {
		na := app.API{Name: a.Name, PayloadCV: a.PayloadCV}
		for _, t := range a.Templates {
			na.Templates = append(na.Templates, app.Template{Prob: t.Prob, Root: scaleNode(t.Root, component, factor)})
		}
		out.APIs = append(out.APIs, na)
	}
	return out
}

func scaleNode(n *app.PathNode, component string, factor float64) *app.PathNode {
	cost := n.Cost
	if n.Component == component {
		cost.CPUms *= factor
	}
	cp := app.Node(n.Component, n.Operation, cost)
	for _, ch := range n.Children {
		cp.Children = append(cp.Children, scaleNode(ch, component, factor))
	}
	return cp
}
