package experiments

import (
	"fmt"
	"io"
	"os"
	"testing"

	"repro/internal/app"
	"repro/internal/estimator"
	"repro/internal/eval"
	"repro/internal/workload"
)

func TestDiagAttribution(t *testing.T) {
	if os.Getenv("DIAG") == "" {
		t.Skip("diagnostic; set DIAG=1")
	}
	p := Params{Out: io.Discard, Quick: true, Seed: 1, Reps: 1}
	wpd, ws, days, peak := p.dims()
	_ = ws
	target := app.Pair{Component: "PostStorageMongoDB", Resource: app.WriteIOps}

	for _, tc := range []struct {
		name string
		mod  func(c *estimator.Config)
	}{
		{"default", func(c *estimator.Config) {}},
		{"noAttn", func(c *estimator.Config) { c.AttentionEpochs = 0; c.UseAttention = false }},
		{"noL1", func(c *estimator.Config) { c.MaskL1 = 0; c.BypassL1 = 0 }},
		{"strongL1", func(c *estimator.Config) { c.MaskL1 = 0.01; c.BypassL1 = 0.002 }},
		{"epochs60", func(c *estimator.Config) { c.Epochs = 60 }},
		{"noGRUskip", func(c *estimator.Config) { c.LinearBypass = false }},
		{"bypassOnlyIsh", func(c *estimator.Config) { c.Hidden = 4 }},
	} {
		l := &Lab{
			P: p, Spec: app.SocialNetwork(), LearnShape: workload.TwoPeak{},
			Mix: workload.SocialDefaultMix(), PeakRPS: peak, LearnDays: days,
			WPD: wpd, WindowSec: ws,
			Pairs:       SocialFocusPairs(),
			clusterSeed: 101,
		}
		cfg := p.estimatorConfig()
		tc.mod(&cfg)
		// provision manually with modified config
		if err := provisionWith(l, cfg); err != nil {
			t.Fatal(err)
		}
		// in-sample
		est, _ := l.System.Model().Predict(l.LearnRun.Windows)
		insample := eval.MAPE(est[target].Exp, l.LearnRun.Usage[target])
		// read-dominated query
		q := l.queryDay(workload.TwoPeak{}, readDominatedMix(), l.PeakRPS*2, 440+1)
		ev, err := l.Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		ratio := meanOf(ev.Series[MethodDeepRest][target]) / meanOf(ev.Actual[target])
		mape := eval.MAPE(ev.Series[MethodDeepRest][target], ev.Actual[target])
		// 3x scale query, check CPU of ComposePostService and FrontendNGINX
		q3 := l.queryDay(workload.TwoPeak{}, l.Mix, l.PeakRPS*3, 470+2)
		ev3, err := l.Evaluate(q3)
		if err != nil {
			t.Fatal(err)
		}
		ccpu := app.Pair{Component: "ComposePostService", Resource: app.CPU}
		fcpu := app.Pair{Component: "FrontendNGINX", Resource: app.CPU}
		m3c := eval.MAPE(ev3.Series[MethodDeepRest][ccpu], ev3.Actual[ccpu])
		m3f := eval.MAPE(ev3.Series[MethodDeepRest][fcpu], ev3.Actual[fcpu])
		fmt.Printf("%-14s insample=%.1f%% readQ: MAPE=%.1f%% ratio=%.2f | 3x: composeCPU=%.1f%% frontendCPU=%.1f%%\n",
			tc.name, insample, mape, ratio, m3c, m3f)
	}
}
