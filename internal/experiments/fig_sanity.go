package experiments

import (
	"fmt"
	"sort"

	"repro/internal/anomaly"
	"repro/internal/app"
	"repro/internal/eval"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The sanity-check experiments reuse the paper's July 2021 timeline: the
// application learning phase covers 07/06–07/12 and the checking phase
// 07/13–07/21 (9 days). Day indices below are relative to 07/13.
var checkDates = []string{"07/13", "07/14", "07/15", "07/16", "07/17", "07/18", "07/19", "07/20", "07/21"}

// checkDays builds the 9-day checking-phase traffic: mostly the learned
// two-peak days, plus benign-but-novel days that violate historical
// patterns without violating the traffic→resource causality — a constantly
// high 07/14 and a single-peak 07/16 (and 07/19's shape for fig19).
func (l *Lab) checkDays(day6Shape workload.Shape) []workload.DaySpec {
	days := make([]workload.DaySpec, 9)
	for i := range days {
		days[i] = workload.DaySpec{Shape: workload.TwoPeak{}, Mix: l.Mix, PeakRPS: l.PeakRPS}
	}
	days[1].Shape = workload.High{}    // 07/14: constantly high utilization — benign
	days[3].Shape = workload.OnePeak{} // 07/16: only one peak hour — benign
	days[6].Shape = day6Shape          // 07/19: shape for the attack day
	return days
}

// windowLabel renders a checking-phase window index as "MM/DD hh:mm".
func windowLabel(wpd int) func(int) string {
	return func(w int) string {
		day := w / wpd
		if day >= len(checkDates) {
			day = len(checkDates) - 1
		}
		frac := float64(w%wpd) / float64(wpd)
		h := int(frac * 24)
		m := int(frac*24*60) % 60
		return fmt.Sprintf("%s %02d:%02d", checkDates[day], h, m)
	}
}

// daysOfEvents maps detected events to the set of checking-phase day
// indices they touch.
func daysOfEvents(events []anomaly.Event, wpd int) []int {
	set := map[int]bool{}
	for _, e := range events {
		for d := e.From / wpd; d <= (e.To-1)/wpd; d++ {
			set[d] = true
		}
	}
	out := make([]int, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// baselineSuspiciousDays runs the history-only detection the paper compares
// against: a day is suspicious when the actual utilization deviates from
// the resrc-aware DL forecast by a large margin for a sustained share of
// the day. Because the forecast only knows the historical two-peak
// pattern, benign-but-novel days get flagged.
func baselineSuspiciousDays(l *Lab, pairs []app.Pair, actual map[app.Pair][]float64, horizon int) ([]int, error) {
	wpd := l.WPD
	days := horizon / wpd
	flagged := map[int]bool{}
	for _, p := range pairs {
		// The paper's manual-inspection narrative reasons over CPU
		// utilization shapes; mirror that.
		if p.Resource != app.CPU {
			continue
		}
		fc, err := l.RA.Forecast(p, horizon)
		if err != nil {
			return nil, err
		}
		// Normalise deviations by the forecast's own diurnal
		// amplitude: the monitor asks "does today deviate from the
		// expected daily pattern", so the pattern's swing — not its
		// absolute level — is the natural scale.
		scale := maxOf(fc) - minOf(fc)
		if scale < 1 {
			scale = 1
		}
		for d := 0; d < days; d++ {
			bad, extreme, run := 0, 0, 0
			for w := d * wpd; w < (d+1)*wpd; w++ {
				dev := abs(actual[p][w] - fc[w])
				if dev > 0.6*scale {
					bad++
				}
				// A short but extreme burst (e.g. the ransomware
				// spike) also makes the day suspicious.
				if dev > 2.5*scale {
					run++
					if run > extreme {
						extreme = run
					}
				} else {
					run = 0
				}
			}
			if float64(bad) > 0.32*float64(wpd) || extreme >= 3 {
				flagged[d] = true
			}
		}
	}
	out := make([]int, 0, len(flagged))
	for d := range flagged {
		out = append(out, d)
	}
	sort.Ints(out)
	return out, nil
}

// sanityRun executes a sanity-check scenario: it replays the checking
// traffic with the given attacks, runs DeepRest's Mode-2 check on the
// served traces, and contrasts with the history-only baseline.
func (r *Runner) sanityRun(id string, day6Shape workload.Shape, attacks []sim.Attack, attackDays map[int]bool, focus []app.Pair) (Result, error) {
	l, err := r.Social()
	if err != nil {
		return Result{}, err
	}
	w := r.P.Out
	wpd := l.WPD

	check := l.program(l.checkDays(day6Shape), r.P.Seed+560).Generate()
	truth, err := l.GroundTruth(check, attacks...)
	if err != nil {
		return Result{}, err
	}
	actual := make(map[app.Pair][]float64, len(focus))
	for _, p := range focus {
		actual[p] = truth.Usage[p]
	}

	events, err := l.System.SanityCheck(truth.Windows, actual, nil)
	if err != nil {
		return Result{}, err
	}
	label := windowLabel(wpd)
	fmt.Fprintf(w, "checking phase %s–%s (%d windows/day)\n", checkDates[0], checkDates[len(checkDates)-1], wpd)
	cpu := app.Pair{Component: "PostStorageMongoDB", Resource: app.CPU}
	fmt.Fprintf(w, "  actual %-26s %s\n", cpu, eval.Sparkline(actual[cpu], 81))
	if tp, ok := actual[app.Pair{Component: "PostStorageMongoDB", Resource: app.WriteTput}]; ok {
		fmt.Fprintf(w, "  actual %-26s %s\n", app.Pair{Component: "PostStorageMongoDB", Resource: app.WriteTput}, eval.Sparkline(tp, 81))
	}
	fmt.Fprintf(w, "  DeepRest alerts (%d):\n", len(events))
	for _, e := range events {
		fmt.Fprintln(w, indent(e.Format(label), "    "))
	}
	drDays := daysOfEvents(events, wpd)
	blDays, err := baselineSuspiciousDays(l, focus, actual, check.NumWindows())
	if err != nil {
		return Result{}, err
	}
	sesdDays, err := sesdSuspiciousDays(l, focus, actual)
	if err != nil {
		return Result{}, err
	}
	fmt.Fprintf(w, "  DeepRest-suspicious days: %s\n", dayList(drDays))
	fmt.Fprintf(w, "  resrc-aware-DL-suspicious days: %s\n", dayList(blDays))
	fmt.Fprintf(w, "  seasonal-ESD-suspicious days: %s\n", dayList(sesdDays))

	metrics := map[string]float64{
		"deeprest_alert_days": float64(len(drDays)),
		"baseline_alert_days": float64(len(blDays)),
		"sesd_alert_days":     float64(len(sesdDays)),
	}
	metrics["deeprest_true_positives"], metrics["deeprest_false_positives"] = confusion(drDays, attackDays)
	metrics["baseline_true_positives"], metrics["baseline_false_positives"] = confusion(blDays, attackDays)
	metrics["sesd_true_positives"], metrics["sesd_false_positives"] = confusion(sesdDays, attackDays)
	fmt.Fprintf(w, "  attack days: %s\n", dayList(keys(attackDays)))
	fmt.Fprintf(w, "  DeepRest: %d true / %d false alarms; resrc-aware DL: %d true / %d false; Seasonal ESD: %d true / %d false\n",
		int(metrics["deeprest_true_positives"]), int(metrics["deeprest_false_positives"]),
		int(metrics["baseline_true_positives"]), int(metrics["baseline_false_positives"]),
		int(metrics["sesd_true_positives"]), int(metrics["sesd_false_positives"]))
	return Result{ID: id, Metrics: metrics}, nil
}

// sesdSuspiciousDays runs the Seasonal-ESD metric detector (related work
// [34]) over the checking phase, calibrated on the learning phase — another
// history-only reference point that cannot justify novel-but-benign days.
func sesdSuspiciousDays(l *Lab, pairs []app.Pair, actual map[app.Pair][]float64) ([]int, error) {
	det := anomaly.NewSeasonalESD(l.WPD)
	flaggedDays := map[int]bool{}
	for _, p := range pairs {
		if p.Resource != app.CPU {
			continue
		}
		flagged, err := det.Detect(l.LearnRun.Usage[p], actual[p])
		if err != nil {
			return nil, err
		}
		for _, d := range anomaly.SuspiciousDays(flagged, l.WPD, l.WPD/12) {
			flaggedDays[d] = true
		}
	}
	out := make([]int, 0, len(flaggedDays))
	for d := range flaggedDays {
		out = append(out, d)
	}
	sort.Ints(out)
	return out, nil
}

func confusion(flagged []int, attackDays map[int]bool) (tp, fp float64) {
	for _, d := range flagged {
		if attackDays[d] {
			tp++
		} else {
			fp++
		}
	}
	return tp, fp
}

func keys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for d := range m {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

func dayList(days []int) string {
	if len(days) == 0 {
		return "(none)"
	}
	s := ""
	for i, d := range days {
		if i > 0 {
			s += ", "
		}
		if d < len(checkDates) {
			s += checkDates[d]
		} else {
			s += fmt.Sprintf("day%d", d)
		}
	}
	return s
}

func indent(s, prefix string) string {
	out := prefix
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += prefix
		}
	}
	return out
}

// Fig19 launches a ransomware attack on PostStorageMongoDB at midday of
// 07/19: the malware reads stored posts, encrypts them, and writes them
// back. Manual inspection (and resrc-aware DL) would also suspect the
// benign 07/14 (constantly high) and 07/16 (one peak) — DeepRest justifies
// those via the API traffic and alerts only on the attack (paper
// Figure 19).
func (r *Runner) Fig19() (Result, error) {
	l, err := r.Social()
	if err != nil {
		return Result{}, err
	}
	wpd := l.WPD
	from := 6*wpd + wpd/2        // 07/19 ~12:00
	to := 6*wpd + wpd/2 + wpd/16 // ~90 minutes
	if to <= from {
		to = from + 2
	}
	attack := sim.Ransomware{
		Component:     "PostStorageMongoDB",
		FromWindow:    from,
		ToWindow:      to,
		ExtraCPU:      90,
		ExtraWriteOps: 400,
		ExtraWriteKiB: 800,
		ShedComponent: "FrontendNGINX",
		ShedFraction:  0.2,
	}
	focus := []app.Pair{
		{Component: "PostStorageMongoDB", Resource: app.CPU},
		{Component: "PostStorageMongoDB", Resource: app.Memory},
		{Component: "PostStorageMongoDB", Resource: app.WriteIOps},
		{Component: "PostStorageMongoDB", Resource: app.WriteTput},
		{Component: "FrontendNGINX", Resource: app.CPU},
	}
	return r.sanityRun("fig19", workload.OnePeak{}, []sim.Attack{attack}, map[int]bool{6: true}, focus)
}

// Fig20 installs a cryptomining process in PostStorageMongoDB from 07/18
// onwards: sustained CPU theft that the API traffic cannot justify, while
// the benign novel days before it must not alert (paper Figure 20).
func (r *Runner) Fig20() (Result, error) {
	l, err := r.Social()
	if err != nil {
		return Result{}, err
	}
	wpd := l.WPD
	attack := sim.Cryptojack{
		Component:  "PostStorageMongoDB",
		FromWindow: 5 * wpd, // 07/18 00:00 onwards
		ToWindow:   1 << 30,
		ExtraCPU:   70,
	}
	focus := []app.Pair{
		{Component: "PostStorageMongoDB", Resource: app.CPU},
		{Component: "PostStorageMongoDB", Resource: app.Memory},
	}
	attackDays := map[int]bool{5: true, 6: true, 7: true, 8: true}
	return r.sanityRun("fig20", workload.TwoPeak{}, []sim.Attack{attack}, attackDays, focus)
}
