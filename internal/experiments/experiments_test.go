package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// quickRunner returns a Runner at reduced scale; labs are cached across
// subtests through the shared Runner.
func quickRunner(out io.Writer) *Runner {
	if out == nil {
		out = io.Discard
	}
	p := DefaultParams(out)
	p.Quick = true
	p.Reps = 2
	return NewRunner(p)
}

// TestReproductionShape runs the full experiment suite in quick mode and
// asserts the paper's qualitative claims: who wins, roughly by what factor,
// and where the crossovers fall. This is the repository's core regression
// test for claims C1 and C2.
func TestReproductionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment suite still trains several models")
	}
	r := quickRunner(nil)
	res, err := r.RunAll()
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(res) != len(List()) {
		t.Fatalf("got %d results for %d experiments", len(res), len(List()))
	}

	// Fig 9: two peaks per learning day.
	if got := res["fig9"].Metrics["mean_peaks_per_day"]; got != 2 {
		t.Errorf("fig9: %.1f peaks/day, want 2", got)
	}

	// Fig 10: for compose-dominated traffic, DeepRest must beat the
	// history-only forecaster on both focus resources.
	m10 := res["fig10"].Metrics
	if m10["cpu_deeprest_mape"] >= m10["cpu_resrc_aware_mape"] {
		t.Errorf("fig10 CPU: DeepRest %.1f%% not better than resrc-aware %.1f%%",
			m10["cpu_deeprest_mape"], m10["cpu_resrc_aware_mape"])
	}
	if m10["write_iops_deeprest_mape"] >= m10["write_iops_simple_mape"] {
		t.Errorf("fig10 IOps: DeepRest %.1f%% not better than simple scaling %.1f%%",
			m10["write_iops_deeprest_mape"], m10["write_iops_simple_mape"])
	}

	// Fig 11: read-dominated traffic — the scaling baselines
	// overestimate write IOps by ~3x while DeepRest stays near 1x.
	m11 := res["fig11"].Metrics
	if r := m11["iops_ratio_simple"]; r < 1.8 {
		t.Errorf("fig11: simple scaling IOps ratio %.2f, expected heavy overestimation", r)
	}
	if r := m11["iops_ratio_comp_aware"]; r < 1.8 {
		t.Errorf("fig11: component-aware IOps ratio %.2f, expected overestimation", r)
	}
	if r := m11["iops_ratio_deeprest"]; r < 0.6 || r > 1.6 {
		t.Errorf("fig11: DeepRest IOps ratio %.2f, want ≈1", r)
	}

	// Fig 12: DeepRest has the lowest mean MAPE across the heatmap.
	m12 := res["fig12"].Metrics
	dr := m12["mean_mape_deeprest"]
	for _, other := range []string{"resrc_aware", "simple", "comp_aware"} {
		if dr >= m12["mean_mape_"+other] {
			t.Errorf("fig12: DeepRest mean %.1f%% not best vs %s %.1f%%", dr, other, m12["mean_mape_"+other])
		}
	}

	// Fig 13: query volumes scale with the user knob.
	m13 := res["fig13"].Metrics
	if m13["scale_3x_volume_ratio"] < 2.5 || m13["scale_3x_volume_ratio"] > 3.5 {
		t.Errorf("fig13: 3x volume ratio = %.2f", m13["scale_3x_volume_ratio"])
	}

	// Fig 14: DeepRest wins every component at every scale, and its
	// error grows with scale but stays far below the baselines.
	m14 := res["fig14"].Metrics
	for _, scale := range []string{"1", "2", "3"} {
		if m14["scale"+scale+"_deeprest_wins"] < 3 {
			t.Errorf("fig14 scale %sx: DeepRest wins %.0f/4 components", scale, m14["scale"+scale+"_deeprest_wins"])
		}
		if m14["scale"+scale+"_deeprest"] >= m14["scale"+scale+"_simple"] {
			t.Errorf("fig14 scale %sx: DeepRest %.1f%% not better than simple %.1f%%",
				scale, m14["scale"+scale+"_deeprest"], m14["scale"+scale+"_simple"])
		}
	}
	if m14["scale3_deeprest"] <= m14["scale1_deeprest"] {
		t.Logf("note: error did not grow with scale (%.1f%% vs %.1f%%)",
			m14["scale3_deeprest"], m14["scale1_deeprest"])
	}

	// Fig 15: DeepRest stays best for unseen compositions.
	m15 := res["fig15"].Metrics
	if m15["unseen_deeprest"] >= m15["unseen_simple"] {
		t.Errorf("fig15 unseen: DeepRest %.1f%% vs simple %.1f%%", m15["unseen_deeprest"], m15["unseen_simple"])
	}

	// Fig 16: best mean error in both shape-change directions.
	m16 := res["fig16"].Metrics
	for _, dir := range []string{"2peak_to_flat", "flat_to_2peak"} {
		dr := m16[dir+"_deeprest"]
		for _, other := range []string{"_resrc_aware", "_simple", "_comp_aware"} {
			if dr >= m16[dir+other] {
				t.Errorf("fig16 %s: DeepRest %.1f%% not best vs%s %.1f%%", dir, dr, other, m16[dir+other])
			}
		}
	}

	// Fig 17: hotel at 3x — DeepRest closest to the actual consumption.
	m17 := res["fig17"].Metrics
	if m17["mape_"+shortName(MethodDeepRest)] >= m17["mape_"+shortName(MethodSimpleScaling)] {
		t.Errorf("fig17: DeepRest %.1f%% vs simple %.1f%%",
			m17["mape_deeprest"], m17["mape_simple"])
	}

	// Fig 18: the history forecaster keeps the two-peak shape on a flat
	// query; DeepRest follows the flat query.
	m18 := res["fig18"].Metrics
	actualPeak := m18["peakiness_actual"]
	if dev := abs(m18["peakiness_deeprest"] - actualPeak); dev > 0.35 {
		t.Errorf("fig18: DeepRest peakiness %.2f far from actual %.2f", m18["peakiness_deeprest"], actualPeak)
	}
	if m18["peakiness_resrc_aware"] <= m18["peakiness_deeprest"] {
		t.Errorf("fig18: resrc-aware peakiness %.2f should exceed DeepRest %.2f (it only knows 2-peak history)",
			m18["peakiness_resrc_aware"], m18["peakiness_deeprest"])
	}

	// Table 1: synthesis accuracy above the paper's 91% in all settings.
	if got := res["table1"].Metrics["min_accuracy"]; got < 91 {
		t.Errorf("table1: min synthesis accuracy %.2f%% below 91%%", got)
	}

	// Fig 19: ransomware found with zero false alarms, while the
	// history-only monitor raises false alarms on benign novel days.
	m19 := res["fig19"].Metrics
	if m19["deeprest_true_positives"] != 1 || m19["deeprest_false_positives"] != 0 {
		t.Errorf("fig19: DeepRest %v TP / %v FP, want 1/0",
			m19["deeprest_true_positives"], m19["deeprest_false_positives"])
	}
	if m19["baseline_false_positives"] < 1 {
		t.Errorf("fig19: baseline FP %.0f, expected false alarms on benign days", m19["baseline_false_positives"])
	}

	// Fig 20: cryptojacking flagged from its start, zero false alarms.
	m20 := res["fig20"].Metrics
	if m20["deeprest_true_positives"] < 3 || m20["deeprest_false_positives"] != 0 {
		t.Errorf("fig20: DeepRest %v TP / %v FP", m20["deeprest_true_positives"], m20["deeprest_false_positives"])
	}

	// Fig 21: MongoDB experts cluster (closer to each other than to the
	// rest).
	if sep := res["fig21"].Metrics["separation_ratio"]; sep < 1.2 {
		t.Errorf("fig21: separation ratio %.2f, want > 1.2", sep)
	}

	// Fig 22: the learned API→resource dependencies match ground truth.
	if frac := res["fig22"].Metrics["dominance_correct_fraction"]; frac < 0.75 {
		t.Errorf("fig22: dominance checks %.0f%% correct", 100*frac)
	}

	// Autoscale extension: DeepRest-planned reservations violate far less
	// than forecaster-planned ones at far lower waste than the scaling
	// baselines.
	ma := res["autoscale"].Metrics
	if ma["violations_deeprest"] > 10 {
		t.Errorf("autoscale: DeepRest violations %.1f%%", ma["violations_deeprest"])
	}
	if ma["violations_deeprest"] >= ma["violations_resrc_aware"] {
		t.Errorf("autoscale: DeepRest violations %.1f%% not below resrc-aware %.1f%%",
			ma["violations_deeprest"], ma["violations_resrc_aware"])
	}
	if ma["waste_deeprest"] >= ma["waste_simple"] {
		t.Errorf("autoscale: DeepRest waste %.1f%% not below simple scaling %.1f%%",
			ma["waste_deeprest"], ma["waste_simple"])
	}
	// Closed control loop (clean day): the estimate-driven proactive
	// policy must beat the SLO-tuned reactive baseline on both ledgers —
	// strictly fewer violation minutes at equal-or-lower core-hours —
	// and run cheaper than the static deployment without violating more.
	if ma["ctrl_proactive_violation_min"] >= ma["ctrl_reactive_violation_min"] {
		t.Errorf("ctrl: proactive violation minutes %.1f not strictly below reactive %.1f",
			ma["ctrl_proactive_violation_min"], ma["ctrl_reactive_violation_min"])
	}
	if ma["ctrl_proactive_core_hours"] > ma["ctrl_reactive_core_hours"] {
		t.Errorf("ctrl: proactive core-hours %.3f above reactive %.3f",
			ma["ctrl_proactive_core_hours"], ma["ctrl_reactive_core_hours"])
	}
	if ma["ctrl_proactive_core_hours"] >= ma["ctrl_static_core_hours"] {
		t.Errorf("ctrl: proactive core-hours %.3f not below static deployment %.3f",
			ma["ctrl_proactive_core_hours"], ma["ctrl_static_core_hours"])
	}
	if ma["ctrl_proactive_violation_min"] > ma["ctrl_static_violation_min"] {
		t.Errorf("ctrl: proactive violation minutes %.1f above static %.1f",
			ma["ctrl_proactive_violation_min"], ma["ctrl_static_violation_min"])
	}
	// Under faults the ranking must not invert: foresight still wins.
	if ma["ctrl_crash_proactive_violation_min"] >= ma["ctrl_crash_reactive_violation_min"] {
		t.Errorf("ctrl: crash scenario: proactive %.1f min not below reactive %.1f min",
			ma["ctrl_crash_proactive_violation_min"], ma["ctrl_crash_reactive_violation_min"])
	}

	// Topology-size sweep: the focus-expert error stays bounded as the
	// generated topology grows (quick scale sweeps 10 and 40 components).
	mg := res["gensweep"].Metrics
	for _, k := range []string{"gen10_mape_mean", "gen40_mape_mean"} {
		if v, ok := mg[k]; !ok || v <= 0 || v > 60 {
			t.Errorf("gensweep: %s = %v (present=%v)", k, v, ok)
		}
	}

	// Drift extension: one day of continued training repairs the stale
	// model's error on the changed component.
	md := res["drift"].Metrics
	if md["ComposePostService_cpu_after"] >= md["ComposePostService_cpu_before"] {
		t.Errorf("drift: Update did not improve (%.1f%% -> %.1f%%)",
			md["ComposePostService_cpu_before"], md["ComposePostService_cpu_after"])
	}
}

func TestRegistry(t *testing.T) {
	ids := List()
	if len(ids) != 19 {
		t.Fatalf("registry has %d experiments, want 19", len(ids))
	}
	if ids[0] != "fig9" || ids[len(ids)-1] != "drift" {
		t.Errorf("registry order: %v", ids)
	}
	for _, id := range ids {
		if Describe(id) == "" {
			t.Errorf("experiment %s has no description", id)
		}
	}
	if Describe("nope") != "" {
		t.Error("unknown ID should describe empty")
	}
	r := quickRunner(nil)
	if _, err := r.Run("nope"); err == nil {
		t.Error("unknown experiment must error")
	}
}

func TestRunnerOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	var buf bytes.Buffer
	r := quickRunner(&buf)
	res, err := r.Run("fig9")
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "/composePost") {
		t.Errorf("fig9 output missing API series:\n%s", out)
	}
	buf.Reset()
	PrintMetrics(&buf, res)
	if !strings.Contains(buf.String(), "metric") {
		t.Error("PrintMetrics produced nothing")
	}
}

func TestSocialFocusPairs(t *testing.T) {
	pairs := SocialFocusPairs()
	if len(pairs) != 18 {
		t.Fatalf("focus pairs = %d, want 18", len(pairs))
	}
	stateful := 0
	for _, p := range pairs {
		if p.Resource.StatefulOnly() {
			stateful++
		}
	}
	if stateful != 6 {
		t.Errorf("stateful-only pairs = %d, want 6", stateful)
	}
}
