package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/eval"
)

// Fig21 projects the GRU parameters of CPU experts across many components
// onto 2-D with PCA and checks that the experts responsible for MongoDB
// components cluster together — they learn to remember/forget similarly
// even though they serve different roles (paper Figure 21).
func (r *Runner) Fig21() (Result, error) {
	l, err := r.Social()
	if err != nil {
		return Result{}, err
	}
	w := r.P.Out

	// Train a dedicated model over CPU experts of a broad component set
	// (the lab's focus pairs do not cover all six MongoDBs).
	components := []string{
		"UserMongoDB", "SocialGraphMongoDB", "UrlShortenMongoDB",
		"PostStorageMongoDB", "UserTimelineMongoDB", "MediaMongoDB",
		"FrontendNGINX", "MediaNGINX", "ComposePostService", "TextService",
		"UserTimelineService", "HomeTimelineService", "PostStorageService",
		"SocialGraphService", "UserService", "MediaService",
	}
	// Memory experts carry the clearest component-type signature: the
	// MongoDBs share large, slowly-decaying caches, so their recurrent
	// cells must learn similar remember/forget dynamics — the mechanism
	// behind the paper's observation. Every expert starts from an
	// identical initialisation (one single-pair model per component,
	// same seed), so the PCA projection reflects what training moved,
	// not where random initialisation happened to land.
	pairs := make([]app.Pair, len(components))
	rows := make([][]float64, len(components))
	for i, c := range components {
		p := app.Pair{Component: c, Resource: app.Memory}
		pairs[i] = p
		opts := core.DefaultOptions()
		opts.Estimator = r.P.estimatorConfig()
		opts.Estimator.AttentionEpochs = 0 // the recurrent core is what Figure 21 inspects
		sys, err := core.LearnFromData(l.LearnRun.Windows,
			map[app.Pair][]float64{p: l.LearnRun.Usage[p]}, opts)
		if err != nil {
			return Result{}, err
		}
		rows[i] = sys.Model().ExpertVector(p)
	}
	proj := eval.PCA(rows, 2, 80)
	fmt.Fprintln(w, "PCA of per-expert GRU parameters (memory experts):")
	for i, p := range pairs {
		marker := " "
		if strings.Contains(p.Component, "MongoDB") {
			marker = "x" // the paper's red crosses
		}
		fmt.Fprintf(w, "  [%s] %-22s (%8.3f, %8.3f)\n", marker, p.Component, proj[i][0], proj[i][1])
	}

	// Cluster compactness: mean pairwise distance among MongoDB experts
	// vs mean distance from MongoDB experts to the others.
	var mongo, other [][]float64
	for i, p := range pairs {
		if strings.Contains(p.Component, "MongoDB") {
			mongo = append(mongo, proj[i])
		} else {
			other = append(other, proj[i])
		}
	}
	intra := meanPairwise(mongo, mongo, true)
	inter := meanPairwise(mongo, other, false)
	sep := inter / math.Max(intra, 1e-12)
	fmt.Fprintf(w, "  mean intra-MongoDB distance=%.4f, MongoDB-to-other distance=%.4f, separation=%.2fx\n", intra, inter, sep)
	return Result{ID: "fig21", Metrics: map[string]float64{
		"intra_mongo_distance": intra,
		"inter_distance":       inter,
		"separation_ratio":     sep,
	}}, nil
}

func meanPairwise(a, b [][]float64, skipSame bool) float64 {
	sum, n := 0.0, 0
	for i := range a {
		for j := range b {
			if skipSame && j <= i {
				continue
			}
			dx := a[i][0] - b[j][0]
			dy := a[i][1] - b[j][1]
			sum += math.Sqrt(dx*dx + dy*dy)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// fig22Targets maps the four example resources of the paper's Figure 22 to
// the API dominance the ground truth encodes.
var fig22Targets = []struct {
	pair     app.Pair
	dominant []string // root tokens expected to dominate
	quiet    []string // root tokens expected to be (near-)irrelevant
}{
	{
		// The paper shows MediaMongoDB *memory* driven by /uploadMedia;
		// like the paper (§7), cache-dominated memory resists clean
		// attribution here, so the bundled check uses the write
		// throughput of the same component, whose ground truth is
		// equally exclusive to /uploadMedia. Memory influence is still
		// printed for inspection.
		pair:     app.Pair{Component: "MediaMongoDB", Resource: app.WriteTput},
		dominant: []string{"MediaNGINX:uploadMedia"},
		quiet:    []string{"FrontendNGINX:readTimeline", "MediaNGINX:getMedia"},
	},
	{
		pair:     app.Pair{Component: "ComposePostService", Resource: app.CPU},
		dominant: []string{"FrontendNGINX:composePost"},
		quiet:    []string{"FrontendNGINX:readTimeline", "MediaNGINX:uploadMedia"},
	},
	{
		pair:     app.Pair{Component: "PostStorageMongoDB", Resource: app.WriteIOps},
		dominant: []string{"FrontendNGINX:composePost"},
		quiet:    []string{"FrontendNGINX:readTimeline", "MediaNGINX:uploadMedia"},
	},
	{
		pair:     app.Pair{Component: "PostStorageMongoDB", Resource: app.CPU},
		dominant: []string{"FrontendNGINX:composePost", "FrontendNGINX:readTimeline"},
		quiet:    []string{"MediaNGINX:uploadMedia"},
	},
}

// Fig22 interprets the learned API-aware masks: for each example resource,
// the per-API influence reveals which endpoints drive it, matching the
// ground truth the simulator encodes — /uploadMedia for MediaMongoDB
// memory, /composePost for ComposePostService CPU and PostStorageMongoDB
// write IOps, and both /composePost and /readTimeline for
// PostStorageMongoDB CPU (paper Figure 22).
func (r *Runner) Fig22() (Result, error) {
	l, err := r.Social()
	if err != nil {
		return Result{}, err
	}
	w := r.P.Out
	metrics := map[string]float64{}
	correct := 0.0
	checks := 0.0
	memInfl, err := l.System.Model().APIInfluence(app.Pair{Component: "MediaMongoDB", Resource: app.Memory}, l.LearnRun.Windows)
	if err != nil {
		return Result{}, err
	}
	fmt.Fprintf(w, "MediaMongoDB/memory — learned API influence (cache-dominated; informational):\n")
	fmt.Fprintf(w, "  uploadMedia=%.2f getMedia=%.2f readTimeline=%.2f\n",
		memInfl["MediaNGINX:uploadMedia"], memInfl["MediaNGINX:getMedia"], memInfl["FrontendNGINX:readTimeline"])
	for _, target := range fig22Targets {
		infl, err := l.System.Model().APIInfluence(target.pair, l.LearnRun.Windows)
		if err != nil {
			return Result{}, err
		}
		fmt.Fprintf(w, "%s — learned API influence:\n", target.pair)
		type kv struct {
			k string
			v float64
		}
		var list []kv
		for k, v := range infl {
			list = append(list, kv{k, v})
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].v != list[j].v {
				return list[i].v > list[j].v
			}
			return list[i].k < list[j].k
		})
		for _, e := range list {
			if e.v < 0.02 {
				continue
			}
			fmt.Fprintf(w, "  %-34s %s %.2f\n", e.k, bar(e.v, 30), e.v)
		}
		// Check the expected dominance ordering.
		for _, dom := range target.dominant {
			for _, q := range target.quiet {
				checks++
				if infl[dom] > infl[q] {
					correct++
				}
			}
		}
		key := strings.ReplaceAll(target.pair.String(), "/", "_")
		for _, dom := range target.dominant {
			metrics[key+"__"+shortRoot(dom)] = infl[dom]
		}
		for _, q := range target.quiet {
			metrics[key+"__"+shortRoot(q)] = infl[q]
		}
	}
	metrics["dominance_correct_fraction"] = correct / checks
	fmt.Fprintf(w, "dominance checks correct: %.0f/%.0f\n", correct, checks)
	return Result{ID: "fig22", Metrics: metrics}, nil
}

func shortRoot(root string) string {
	if i := strings.Index(root, ":"); i >= 0 {
		return root[i+1:]
	}
	return root
}

func bar(v float64, width int) string {
	n := int(v * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}
