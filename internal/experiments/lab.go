// Package experiments contains one driver per table and figure of the
// paper's evaluation (§5) plus the §6 interpretation artifacts. Each driver
// prints the same rows/series the paper reports and returns its headline
// metrics so tests and EXPERIMENTS.md can assert the reproduction's shape:
// who wins, by roughly what factor, and where the crossovers fall.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/app"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/eval"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Method names used across all experiment output. The first four are the
// paper's §5.1 comparison; the seasonal-AR forecaster is an additional
// reference point from the ARIMA family the paper cites ([18]).
const (
	MethodDeepRest       = "DeepRest"
	MethodResourceAware  = "Resrc-aware DL"
	MethodSimpleScaling  = "Simple Scaling"
	MethodComponentAware = "Component-aware"
	MethodSeasonalAR     = "Seasonal AR"
)

// Methods lists all techniques in presentation order.
var Methods = []string{MethodDeepRest, MethodResourceAware, MethodSimpleScaling, MethodComponentAware, MethodSeasonalAR}

// Params configures an experiment run.
type Params struct {
	// Out receives the experiment's printed artifact.
	Out io.Writer
	// Quick shrinks the workload and training so the full suite runs in
	// seconds (used by tests and benchmarks); the full setting mirrors
	// the paper's 7-day learning phase.
	Quick bool
	// Seed drives every random choice.
	Seed int64
	// Reps is the number of query repetitions per scenario (the paper
	// uses nine and reports the worst case).
	Reps int
	// Apps overrides the topology-size sweep's application list (gensweep).
	// Each entry is a cmd -app spec: social|hotel|media, @file.json, or
	// gen:seed=N,components=N. Empty means the default 30/100/300 sweep.
	Apps []string
}

// DefaultParams returns full-scale parameters writing to w.
func DefaultParams(w io.Writer) Params {
	return Params{Out: w, Seed: 1, Reps: 3}
}

// dims returns the window geometry for the current scale.
func (p Params) dims() (windowsPerDay int, windowSeconds float64, learnDays int, peakRPS float64) {
	if p.Quick {
		return 48, 60, 3, 30
	}
	return 96, 300, 7, 60
}

func (p Params) estimatorConfig() estimator.Config {
	cfg := estimator.DefaultConfig()
	cfg.Seed = p.Seed
	if p.Quick {
		cfg.Hidden = 4
		cfg.Epochs = 30
		cfg.AttentionEpochs = 4
		cfg.ChunkLen = 24
	}
	return cfg
}

func (p Params) raConfig() baselines.RAConfig {
	cfg := baselines.DefaultRAConfig()
	cfg.Seed = p.Seed + 7
	if p.Quick {
		cfg.Hidden = 4
		cfg.Epochs = 30
		cfg.ChunkLen = 24
	}
	return cfg
}

// SocialFocusPairs is the set of (component, resource) pairs the paper's
// figures report on for the social network: the four Figure 12/14–16
// components plus the media pipeline needed for Figures 8 and 22.
func SocialFocusPairs() []app.Pair {
	var out []app.Pair
	for _, c := range []string{"FrontendNGINX", "MediaNGINX", "ComposePostService", "UserTimelineService"} {
		out = append(out, app.Pair{Component: c, Resource: app.CPU}, app.Pair{Component: c, Resource: app.Memory})
	}
	for _, c := range []string{"PostStorageMongoDB", "MediaMongoDB"} {
		for _, r := range app.AllResources {
			out = append(out, app.Pair{Component: c, Resource: r})
		}
	}
	return out
}

// Lab is a fully provisioned experiment fixture: a simulated deployment,
// its learning-phase telemetry, a trained DeepRest system, and the three
// trained baselines. Labs are cached by the registry so consecutive
// experiments in one process reuse the same trained models, exactly like
// the paper reuses one application-learning phase across queries.
type Lab struct {
	P          Params
	Spec       *app.Spec
	LearnShape workload.Shape
	Mix        workload.Mix
	PeakRPS    float64
	LearnDays  int
	WPD        int
	WindowSec  float64

	LearnTraffic *workload.Traffic
	LearnRun     *sim.Run
	Pairs        []app.Pair
	System       *core.System
	RA           *baselines.ResourceAware
	Simple       *baselines.SimpleScaling
	CompAware    *baselines.ComponentAware
	AR           *baselines.AR

	clusterSeed int64
}

// NewSocialLab provisions the social-network lab with the given learning
// shape (TwoPeak for most experiments, Flat for the reverse direction of
// Figure 16).
func NewSocialLab(p Params, shape workload.Shape) (*Lab, error) {
	wpd, ws, days, peak := p.dims()
	l := &Lab{
		P:          p,
		Spec:       app.SocialNetwork(),
		LearnShape: shape,
		Mix:        workload.SocialDefaultMix(),
		PeakRPS:    peak,
		LearnDays:  days,
		WPD:        wpd,
		WindowSec:  ws,
		Pairs:      SocialFocusPairs(),

		clusterSeed: p.Seed + 100,
	}
	return l, l.provision()
}

// NewHotelLab provisions the hotel-reservation lab for Figure 17.
func NewHotelLab(p Params) (*Lab, error) {
	wpd, ws, days, peak := p.dims()
	l := &Lab{
		P:          p,
		Spec:       app.HotelReservation(),
		LearnShape: workload.TwoPeak{},
		Mix:        workload.HotelDefaultMix(),
		PeakRPS:    peak * 0.7,
		LearnDays:  days,
		WPD:        wpd,
		WindowSec:  ws,
		Pairs: []app.Pair{
			{Component: "FrontendService", Resource: app.CPU},
			{Component: "FrontendService", Resource: app.Memory},
			{Component: "SearchService", Resource: app.CPU},
			{Component: "ProfileService", Resource: app.CPU},
			{Component: "ReserveMongoDB", Resource: app.CPU},
			{Component: "ReserveMongoDB", Resource: app.WriteIOps},
			{Component: "ReserveMongoDB", Resource: app.DiskUsage},
		},
		clusterSeed: p.Seed + 200,
	}
	return l, l.provision()
}

// program builds a traffic program over this lab's geometry.
func (l *Lab) program(days []workload.DaySpec, seed int64) workload.Program {
	return workload.Program{
		Days:          days,
		WindowsPerDay: l.WPD,
		WindowSeconds: l.WindowSec,
		DayJitter:     0.05,
		MixJitter:     0.15,
		PhaseSpread:   0.05,
		NoiseCV:       0.06,
		Seed:          seed,
	}
}

// learnProgram is the application-learning traffic program.
func (l *Lab) learnProgram() workload.Program {
	days := make([]workload.DaySpec, l.LearnDays)
	for i := range days {
		days[i] = workload.DaySpec{Shape: l.LearnShape, Mix: l.Mix, PeakRPS: l.PeakRPS}
	}
	return l.program(days, l.P.Seed+300)
}

func (l *Lab) provision() error {
	cluster, err := sim.NewCluster(l.Spec, l.clusterSeed)
	if err != nil {
		return err
	}
	l.LearnTraffic = l.learnProgram().Generate()
	l.LearnRun, err = cluster.Run(l.LearnTraffic)
	if err != nil {
		return fmt.Errorf("experiments: learning-phase simulation: %w", err)
	}

	usage := make(map[app.Pair][]float64, len(l.Pairs))
	for _, p := range l.Pairs {
		usage[p] = l.LearnRun.Usage[p]
	}
	opts := core.DefaultOptions()
	opts.Estimator = l.P.estimatorConfig()
	l.System, err = core.LearnFromData(l.LearnRun.Windows, usage, opts)
	if err != nil {
		return fmt.Errorf("experiments: train DeepRest: %w", err)
	}
	l.RA, err = baselines.TrainResourceAware(usage, l.WPD, l.P.raConfig())
	if err != nil {
		return fmt.Errorf("experiments: train resrc-aware DL: %w", err)
	}
	l.Simple, err = baselines.TrainSimpleScaling(usage, l.LearnTraffic.TotalSeries())
	if err != nil {
		return fmt.Errorf("experiments: train simple scaling: %w", err)
	}
	l.CompAware, err = baselines.TrainComponentAware(usage, l.LearnRun.Windows)
	if err != nil {
		return fmt.Errorf("experiments: train component-aware scaling: %w", err)
	}
	l.AR, err = baselines.TrainAR(usage, l.WPD, baselines.DefaultARConfig())
	if err != nil {
		return fmt.Errorf("experiments: train seasonal AR: %w", err)
	}
	return nil
}

// GroundTruth replays the learning phase on a fresh cluster (identical
// telemetry, since everything is seeded) and then serves the query traffic,
// returning the query period's run. attacks, if any, are injected with
// window indices relative to the start of the query period.
func (l *Lab) GroundTruth(query *workload.Traffic, attacks ...sim.Attack) (*sim.Run, error) {
	cluster, err := sim.NewCluster(l.Spec, l.clusterSeed)
	if err != nil {
		return nil, err
	}
	warm, err := cluster.Run(l.LearnTraffic)
	if err != nil {
		return nil, err
	}
	offset := warm.NumWindows()
	for _, a := range attacks {
		cluster.Inject(shiftAttack(a, offset))
	}
	return cluster.Run(query)
}

// shiftAttack rebases an attack's window interval from query-relative to
// cluster-absolute indices.
func shiftAttack(a sim.Attack, offset int) sim.Attack {
	switch at := a.(type) {
	case sim.Ransomware:
		at.FromWindow += offset
		at.ToWindow += offset
		return at
	case sim.Cryptojack:
		at.FromWindow += offset
		at.ToWindow += offset
		return at
	case sim.MemoryLeak:
		at.FromWindow += offset
		return at
	default:
		return a
	}
}

// Evaluation bundles every method's estimate for one query together with
// the ground truth.
type Evaluation struct {
	// Query is the evaluated traffic.
	Query *workload.Traffic
	// Actual is the ground-truth utilization per pair.
	Actual map[app.Pair][]float64
	// Series holds, per method, the estimated series per pair.
	Series map[string]map[app.Pair][]float64
	// Estimates holds DeepRest's full interval estimates.
	Estimates map[app.Pair]estimator.Estimate
	// Synthetic is the synthesizer's trace output for the query.
	Synthetic [][]trace.Batch
	// Truth is the ground-truth run (for synthesis accuracy et al.).
	Truth *sim.Run
}

// Evaluate runs a Mode-1 (hypothetical traffic) query through all four
// methods and collects the ground truth.
func (l *Lab) Evaluate(query *workload.Traffic) (*Evaluation, error) {
	truth, err := l.GroundTruth(query)
	if err != nil {
		return nil, fmt.Errorf("experiments: ground truth: %w", err)
	}
	ev := &Evaluation{
		Query:     query,
		Actual:    make(map[app.Pair][]float64, len(l.Pairs)),
		Series:    make(map[string]map[app.Pair][]float64, len(Methods)),
		Truth:     truth,
		Estimates: make(map[app.Pair]estimator.Estimate),
	}
	for _, m := range Methods {
		ev.Series[m] = make(map[app.Pair][]float64, len(l.Pairs))
	}
	for _, p := range l.Pairs {
		ev.Actual[p] = truth.Usage[p]
	}

	// DeepRest (Mode 1 uses the trace synthesizer).
	ev.Synthetic, err = l.System.Synthesizer().Synthesize(query, l.P.Seed+11)
	if err != nil {
		return nil, err
	}
	ev.Estimates, err = l.System.Model().Predict(ev.Synthetic)
	if err != nil {
		return nil, err
	}
	horizon := query.NumWindows()
	totals := query.TotalSeries()
	for _, p := range l.Pairs {
		ev.Series[MethodDeepRest][p] = ev.Estimates[p].Exp
		ra, err := l.RA.Forecast(p, horizon)
		if err != nil {
			return nil, err
		}
		ev.Series[MethodResourceAware][p] = ra
		ss, err := l.Simple.Estimate(p, totals)
		if err != nil {
			return nil, err
		}
		ev.Series[MethodSimpleScaling][p] = ss
		ca, err := l.CompAware.Estimate(p, ev.Synthetic)
		if err != nil {
			return nil, err
		}
		ev.Series[MethodComponentAware][p] = ca
		ar, err := l.AR.Forecast(p, horizon)
		if err != nil {
			return nil, err
		}
		ev.Series[MethodSeasonalAR][p] = ar
	}
	return ev, nil
}

// MAPE returns the per-method error on one pair.
func (ev *Evaluation) MAPE(p app.Pair) map[string]float64 {
	out := make(map[string]float64, len(ev.Series))
	for m, byPair := range ev.Series {
		out[m] = eval.MAPE(byPair[p], ev.Actual[p])
	}
	return out
}

// mapeTable prints a component-per-row table of per-method MAPEs.
func mapeTable(w io.Writer, title string, rows []app.Pair, evs []*Evaluation) map[string]map[app.Pair]float64 {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "  %-30s", "pair")
	for _, m := range Methods {
		fmt.Fprintf(w, " %16s", m)
	}
	fmt.Fprintln(w)
	worst := make(map[string]map[app.Pair]float64, len(Methods))
	for _, m := range Methods {
		worst[m] = make(map[app.Pair]float64, len(rows))
	}
	for _, p := range rows {
		fmt.Fprintf(w, "  %-30s", p)
		for _, m := range Methods {
			// The paper reports the worst case over repetitions.
			mx := 0.0
			for _, ev := range evs {
				if v := eval.MAPE(ev.Series[m][p], ev.Actual[p]); v > mx {
					mx = v
				}
			}
			worst[m][p] = mx
			fmt.Fprintf(w, " %15.1f%%", mx)
		}
		fmt.Fprintln(w)
	}
	return worst
}

// winsFor counts on how many rows the method has the lowest error.
func winsFor(method string, worst map[string]map[app.Pair]float64, rows []app.Pair) int {
	wins := 0
	for _, p := range rows {
		best, bestV := "", math.Inf(1)
		for m, byPair := range worst {
			if byPair[p] < bestV {
				best, bestV = m, byPair[p]
			}
		}
		if best == method {
			wins++
		}
	}
	return wins
}

// cpuPairs maps component names to their CPU pairs.
func cpuPairs(components ...string) []app.Pair {
	out := make([]app.Pair, len(components))
	for i, c := range components {
		out[i] = app.Pair{Component: c, Resource: app.CPU}
	}
	return out
}

// sortedPairs returns pairs in deterministic order.
func sortedPairs(m map[app.Pair][]float64) []app.Pair {
	out := make([]app.Pair, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// SynthAccuracy computes Table-1-style synthesis accuracy for an
// evaluation: synthesized traces vs the ground-truth traces of the query.
func (l *Lab) SynthAccuracy(ev *Evaluation) float64 {
	space := l.System.Model().Space
	return synth.Accuracy(space, ev.Synthetic, ev.Truth.Windows)
}
