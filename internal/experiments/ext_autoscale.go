package experiments

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/autoscale"
	"repro/internal/estimator"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ExtAutoscale is an extension experiment beyond the paper's figures,
// quantifying its §2 claim that DeepRest "can assist in schedule-based
// autoscaling": resources are reserved ahead of time, one decision per
// hour-scale interval, from each method's estimate of an unseen 2× day.
// The score is the trade-off every operator cares about — windows where
// demand exceeds the reservation (SLO risk) versus over-reservation
// (cost) — plus provisioning churn.
func (r *Runner) ExtAutoscale() (Result, error) {
	l, err := r.Social()
	if err != nil {
		return Result{}, err
	}
	w := r.P.Out
	q := l.queryDay(workload.TwoPeak{}, l.Mix, l.PeakRPS*2, r.P.Seed+600)
	ev, err := l.Evaluate(q)
	if err != nil {
		return Result{}, err
	}
	cfg := autoscale.DefaultConfig()
	cfg.IntervalWindows = l.WPD / 8 // 3-hour reservations

	pairs := cpuPairs(fig14Components...)
	fmt.Fprintf(w, "schedule-based autoscaling for an unseen 2x day (%d-window reservations, %.0f%% headroom)\n",
		cfg.IntervalWindows, cfg.Headroom*100)
	fmt.Fprintf(w, "  %-18s %14s %14s %10s\n", "plan source", "violations", "waste", "changes")

	metrics := map[string]float64{}
	for _, m := range Methods {
		agg := autoscale.Report{}
		for _, p := range pairs {
			var allocs []autoscale.Allocation
			if m == MethodDeepRest {
				// DeepRest plans against its upper confidence
				// bound; point forecasters have no interval.
				sched, err := autoscale.Plan(map[app.Pair]estimator.Estimate{p: ev.Estimates[p]}, cfg)
				if err != nil {
					return Result{}, err
				}
				allocs = sched[p]
			} else {
				var err error
				allocs, err = autoscale.PlanSeries(ev.Series[m][p], cfg)
				if err != nil {
					return Result{}, err
				}
			}
			rep := autoscale.Assess(allocs, ev.Actual[p])
			agg.ViolationFrac += rep.ViolationFrac / float64(len(pairs))
			agg.WasteFrac += rep.WasteFrac / float64(len(pairs))
			agg.Changes += rep.Changes
		}
		fmt.Fprintf(w, "  %-18s %13.1f%% %13.1f%% %10d\n",
			m, 100*agg.ViolationFrac, 100*agg.WasteFrac, agg.Changes)
		metrics["violations_"+shortName(m)] = 100 * agg.ViolationFrac
		metrics["waste_"+shortName(m)] = 100 * agg.WasteFrac
	}

	// An oracle planner (perfect demand knowledge) bounds the achievable
	// waste at this scheduling granularity.
	oracle := autoscale.Report{}
	for _, p := range pairs {
		allocs, err := autoscale.PlanSeries(ev.Actual[p], cfg)
		if err != nil {
			return Result{}, err
		}
		rep := autoscale.Assess(allocs, ev.Actual[p])
		oracle.ViolationFrac += rep.ViolationFrac / float64(len(pairs))
		oracle.WasteFrac += rep.WasteFrac / float64(len(pairs))
	}
	fmt.Fprintf(w, "  %-18s %13.1f%% %13.1f%%\n", "oracle", 100*oracle.ViolationFrac, 100*oracle.WasteFrac)
	metrics["violations_oracle"] = 100 * oracle.ViolationFrac
	metrics["waste_oracle"] = 100 * oracle.WasteFrac

	// User-visible consequence: feed each plan's reservations into the
	// queueing model as the planned components' capacities (sized at a
	// 50% utilization target, the standard rule) and count windows where
	// a planned station's queueing delay exceeds twice its service time
	// (ρ > 2/3) or saturates — the point where user latency degrades.
	fmt.Fprintf(w, "  queueing SLO check (per-station wait <= 2x service) under each plan's reservations:\n")
	for _, m := range Methods {
		count, err := latencyViolations(l, ev, pairs, func(p app.Pair, wdw int) float64 {
			const utilTarget = 0.5
			if m == MethodDeepRest {
				sched, err := autoscale.Plan(map[app.Pair]estimator.Estimate{p: ev.Estimates[p]}, cfg)
				if err != nil {
					return 0
				}
				return autoscale.AllocationAt(sched[p], wdw) / utilTarget
			}
			allocs, err := autoscale.PlanSeries(ev.Series[m][p], cfg)
			if err != nil {
				return 0
			}
			return autoscale.AllocationAt(allocs, wdw) / utilTarget
		})
		if err != nil {
			return Result{}, err
		}
		frac := 100 * float64(count) / float64(ev.Query.NumWindows())
		fmt.Fprintf(w, "    %-18s %5.1f%% of windows violate\n", m, frac)
		metrics["slo_violations_"+shortName(m)] = frac
	}
	return Result{ID: "autoscale", Metrics: metrics}, nil
}

// latencyViolations counts query windows in which any *planned* station,
// provisioned with the allocation-derived capacity, queues requests for
// more than twice its service time (ρ > 2/3) or saturates.
func latencyViolations(l *Lab, ev *Evaluation, pairs []app.Pair, capAt func(p app.Pair, w int) float64) (int, error) {
	model, err := sim.NewLatencyModel(l.Spec)
	if err != nil {
		return 0, err
	}
	count := 0
	for wdw, reqs := range ev.Query.Windows {
		for _, p := range pairs {
			if c := capAt(p, wdw); c > 0 {
				if err := model.SetCapacity(p.Component, c); err != nil {
					return 0, err
				}
			}
		}
		loads, _, err := model.Evaluate(reqs, l.WindowSec)
		if err != nil {
			return 0, err
		}
		for _, p := range pairs {
			ld := loads[p.Component]
			if ld.Utilization >= 1 || ld.WaitMs > 2*ld.ServiceMs {
				count++
				break
			}
		}
	}
	return count, nil
}
