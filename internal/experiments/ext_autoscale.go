package experiments

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/autoscale"
	"repro/internal/ctrl"
	"repro/internal/estimator"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ExtAutoscale is an extension experiment beyond the paper's figures,
// quantifying its §2 claim that DeepRest "can assist in schedule-based
// autoscaling": resources are reserved ahead of time, one decision per
// hour-scale interval, from each method's estimate of an unseen 2× day.
// The score is the trade-off every operator cares about — windows where
// demand exceeds the reservation (SLO risk) versus over-reservation
// (cost) — plus provisioning churn.
func (r *Runner) ExtAutoscale() (Result, error) {
	l, err := r.Social()
	if err != nil {
		return Result{}, err
	}
	w := r.P.Out
	q := l.queryDay(workload.TwoPeak{}, l.Mix, l.PeakRPS*2, r.P.Seed+600)
	ev, err := l.Evaluate(q)
	if err != nil {
		return Result{}, err
	}
	cfg := autoscale.DefaultConfig()
	cfg.IntervalWindows = l.WPD / 8 // 3-hour reservations

	pairs := cpuPairs(fig14Components...)
	fmt.Fprintf(w, "schedule-based autoscaling for an unseen 2x day (%d-window reservations, %.0f%% headroom)\n",
		cfg.IntervalWindows, cfg.Headroom*100)
	fmt.Fprintf(w, "  %-18s %14s %14s %10s\n", "plan source", "violations", "waste", "changes")

	metrics := map[string]float64{}
	for _, m := range Methods {
		agg := autoscale.Report{}
		for _, p := range pairs {
			var allocs []autoscale.Allocation
			if m == MethodDeepRest {
				// DeepRest plans against its upper confidence
				// bound; point forecasters have no interval.
				sched, err := autoscale.Plan(map[app.Pair]estimator.Estimate{p: ev.Estimates[p]}, cfg)
				if err != nil {
					return Result{}, err
				}
				allocs = sched[p]
			} else {
				var err error
				allocs, err = autoscale.PlanSeries(ev.Series[m][p], cfg)
				if err != nil {
					return Result{}, err
				}
			}
			rep := autoscale.Assess(allocs, ev.Actual[p])
			agg.ViolationFrac += rep.ViolationFrac / float64(len(pairs))
			agg.WasteFrac += rep.WasteFrac / float64(len(pairs))
			agg.Changes += rep.Changes
		}
		fmt.Fprintf(w, "  %-18s %13.1f%% %13.1f%% %10d\n",
			m, 100*agg.ViolationFrac, 100*agg.WasteFrac, agg.Changes)
		metrics["violations_"+shortName(m)] = 100 * agg.ViolationFrac
		metrics["waste_"+shortName(m)] = 100 * agg.WasteFrac
	}

	// An oracle planner (perfect demand knowledge) bounds the achievable
	// waste at this scheduling granularity.
	oracle := autoscale.Report{}
	for _, p := range pairs {
		allocs, err := autoscale.PlanSeries(ev.Actual[p], cfg)
		if err != nil {
			return Result{}, err
		}
		rep := autoscale.Assess(allocs, ev.Actual[p])
		oracle.ViolationFrac += rep.ViolationFrac / float64(len(pairs))
		oracle.WasteFrac += rep.WasteFrac / float64(len(pairs))
	}
	fmt.Fprintf(w, "  %-18s %13.1f%% %13.1f%%\n", "oracle", 100*oracle.ViolationFrac, 100*oracle.WasteFrac)
	metrics["violations_oracle"] = 100 * oracle.ViolationFrac
	metrics["waste_oracle"] = 100 * oracle.WasteFrac

	// User-visible consequence: feed each plan's reservations into the
	// queueing model as the planned components' capacities (sized at a
	// 50% utilization target, the standard rule) and count windows where
	// a planned station's queueing delay exceeds twice its service time
	// (ρ > 2/3) or saturates — the point where user latency degrades.
	fmt.Fprintf(w, "  queueing SLO check (per-station wait <= 2x service) under each plan's reservations:\n")
	for _, m := range Methods {
		count, err := latencyViolations(l, ev, pairs, func(p app.Pair, wdw int) float64 {
			const utilTarget = 0.5
			if m == MethodDeepRest {
				sched, err := autoscale.Plan(map[app.Pair]estimator.Estimate{p: ev.Estimates[p]}, cfg)
				if err != nil {
					return 0
				}
				// Hold-last past the planned horizon: a reservation
				// becomes a provisioned capacity here, and capacity
				// does not vanish when the plan runs out.
				return autoscale.AllocationAtHold(sched[p], wdw) / utilTarget
			}
			allocs, err := autoscale.PlanSeries(ev.Series[m][p], cfg)
			if err != nil {
				return 0
			}
			return autoscale.AllocationAtHold(allocs, wdw) / utilTarget
		})
		if err != nil {
			return Result{}, err
		}
		frac := 100 * float64(count) / float64(ev.Query.NumWindows())
		fmt.Fprintf(w, "    %-18s %5.1f%% of windows violate\n", m, frac)
		metrics["slo_violations_"+shortName(m)] = frac
	}

	if err := r.closedLoop(l, ev, q, cfg.IntervalWindows, metrics); err != nil {
		return Result{}, err
	}
	return Result{ID: "autoscale", Metrics: metrics}, nil
}

// closedLoop is the experiment's second act: instead of scoring offline
// plans, it runs the ctrl loop — forecast, resize ahead of load, charge the
// SLO and cost ledgers — and compares proactive (DeepRest), reactive
// (threshold), static (as deployed), and oracle (perfect foresight)
// policies on the same realized day, clean and under faults.
func (r *Runner) closedLoop(l *Lab, ev *Evaluation, realized *workload.Traffic, interval int, metrics map[string]float64) error {
	w := r.P.Out

	// The operator's traffic projection: the same diurnal program the day
	// actually follows, but an independent jitter/noise draw — plausible,
	// not clairvoyant. Each interval the loop re-forecasts over a hybrid
	// traffic (realized so far ++ projection for the rest), so later
	// intervals see progressively more truth.
	projected := l.queryDay(workload.TwoPeak{}, l.Mix, l.PeakRPS*2, r.P.Seed+601)
	forecast, err := closedLoopForecast(l, realized, projected, interval, fig14Components)
	if err != nil {
		return err
	}

	cfg := ctrl.DefaultConfig()
	cfg.IntervalWindows = interval
	// Provisioning takes real time — half a scheduling interval here —
	// which is the paper's §2 argument for schedule-based scaling: a
	// backward-looking policy's purchases land after the need has moved
	// on, while a forecast-driven one orders capacity for the window range
	// its decision will actually serve.
	cfg.LagWindows = interval / 2

	// Oracle: perfect knowledge of the day's true demand.
	oracleFC := make(map[string][]float64, len(fig14Components))
	for _, p := range cpuPairs(fig14Components...) {
		oracleFC[p.Component] = ev.Actual[p]
	}

	// The reactive policy runs at the utilization target that minimizes
	// its violations on this day (see the frontier below): the margin a
	// backward-looking scaler must carry everywhere to even approach the
	// SLO, because its real uncertainty is everything the load can do
	// within a lookback interval plus the provisioning lag. The
	// forecast-driven policies carry only forecast error and run at the
	// standard 50% target.
	reactiveCfg := cfg
	reactiveCfg.UtilTarget = 0.15
	runs := []struct {
		pol ctrl.Policy
		cfg ctrl.Config
	}{
		{ctrl.NewProactive("proactive", forecast), cfg},
		{ctrl.NewReactive(), reactiveCfg},
		{ctrl.Static{}, cfg},
		{ctrl.NewProactive("oracle", oracleFC), cfg},
	}
	n := realized.NumWindows()
	scenarios := []struct{ name, spec string }{
		{"clean", ""},
		{"crash", fmt.Sprintf("seed=%d;crash:comp=UserTimelineService,from=%d,to=%d",
			r.P.Seed, n/3, n/3+interval)},
		{"throttle", fmt.Sprintf("seed=%d;throttle:comp=PostStorageMongoDB,from=%d,to=%d,factor=0.5",
			r.P.Seed, 2*n/3, 2*n/3+2*interval)},
	}

	fmt.Fprintf(w, "  closed control loop over the realized day (%d-window intervals, lag %d, util target %.0f%%):\n",
		cfg.IntervalWindows, cfg.LagWindows, cfg.UtilTarget*100)
	fmt.Fprintf(w, "    %-10s %-10s %14s %12s %9s\n", "scenario", "policy", "violation min", "core-hours", "scale ops")
	for _, sc := range scenarios {
		env := ctrl.Env{Spec: l.Spec, Traffic: realized, Components: fig14Components}
		if sc.spec != "" {
			if env.Faults, err = faults.Compile(sc.spec); err != nil {
				return err
			}
		}
		for _, rn := range runs {
			res, err := ctrl.Run(env, rn.cfg, rn.pol)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "    %-10s %-10s %14.1f %12.2f %9d\n", sc.name, res.Policy,
				res.Ledger.ViolationMinutes, res.Ledger.ResourceHours, res.Ledger.ScaleOps)
			prefix := "ctrl_"
			if sc.name != "clean" {
				prefix = "ctrl_" + sc.name + "_"
			}
			metrics[prefix+res.Policy+"_violation_min"] = res.Ledger.ViolationMinutes
			metrics[prefix+res.Policy+"_core_hours"] = res.Ledger.ResourceHours
		}
	}

	// Cost/violation frontier: sweep the one knob each policy family has
	// (headroom for forecast-driven, band width for threshold-driven) on
	// the clean day. Each row is one achievable operating point.
	fmt.Fprintf(w, "  cost/violation frontier (clean day):\n")
	fmt.Fprintf(w, "    %-22s %14s %12s\n", "operating point", "violation min", "core-hours")
	env := ctrl.Env{Spec: l.Spec, Traffic: realized, Components: fig14Components}
	for _, h := range []float64{0, 0.10, 0.25} {
		c := cfg
		c.Headroom = h
		res, err := ctrl.Run(env, c, ctrl.NewProactive("proactive", forecast))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "    proactive headroom=%-4.2f %13.1f %12.2f\n",
			h, res.Ledger.ViolationMinutes, res.Ledger.ResourceHours)
	}
	for _, ut := range []float64{0.5, 0.35, 0.25, 0.15} {
		c := cfg
		c.UtilTarget = ut
		res, err := ctrl.Run(env, c, ctrl.NewReactive())
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "    reactive util=%-7.2f %13.1f %12.2f\n",
			ut, res.Ledger.ViolationMinutes, res.Ledger.ResourceHours)
	}
	return nil
}

// closedLoopForecast produces the proactive policy's demand signal the way
// a deployed control plane would: at each interval boundary it re-runs the
// Mode-1 query over a hybrid traffic — realized windows up to now, the
// operator's projection beyond — and keeps that interval's slice of the
// answer. All per-interval queries go through the inference engine as one
// coalesced EstimateTrafficBatch pass.
func closedLoopForecast(l *Lab, realized, projected *workload.Traffic, interval int, components []string) (map[string][]float64, error) {
	n := realized.NumWindows()
	if projected.NumWindows() != n {
		return nil, fmt.Errorf("experiments: projection covers %d windows, realized %d", projected.NumWindows(), n)
	}
	var hybrids []*workload.Traffic
	for from := 0; from < n; from += interval {
		h := projected
		if from > 0 {
			var err error
			if h, err = realized.Slice(0, from).Append(projected.Slice(from, n)); err != nil {
				return nil, err
			}
		}
		hybrids = append(hybrids, h)
	}
	batch, err := l.System.EstimateTrafficBatch(hybrids)
	if err != nil {
		return nil, err
	}
	forecast := make(map[string][]float64, len(components))
	for k, est := range batch {
		from := k * interval
		to := from + interval
		if to > n {
			to = n
		}
		for comp, series := range ctrl.DemandForecast(est, components) {
			if len(series) < to {
				return nil, fmt.Errorf("experiments: forecast for %s covers %d windows, need %d", comp, len(series), to)
			}
			forecast[comp] = append(forecast[comp], series[from:to]...)
		}
	}
	return forecast, nil
}

// latencyViolations counts query windows in which any *planned* station,
// provisioned with the allocation-derived capacity, queues requests for
// more than twice its service time (ρ > 2/3) or saturates.
func latencyViolations(l *Lab, ev *Evaluation, pairs []app.Pair, capAt func(p app.Pair, w int) float64) (int, error) {
	model, err := sim.NewLatencyModel(l.Spec)
	if err != nil {
		return 0, err
	}
	count := 0
	for wdw, reqs := range ev.Query.Windows {
		for _, p := range pairs {
			if c := capAt(p, wdw); c > 0 {
				if err := model.SetCapacity(p.Component, c); err != nil {
					return 0, err
				}
			}
		}
		loads, _, err := model.Evaluate(reqs, l.WindowSec)
		if err != nil {
			return 0, err
		}
		for _, p := range pairs {
			ld := loads[p.Component]
			if ld.Utilization >= 1 || ld.WaitMs > 2*ld.ServiceMs {
				count++
				break
			}
		}
	}
	return count, nil
}
