package experiments

import (
	"fmt"

	"repro/internal/workload"
)

// Table1 measures the trace synthesizer's quality: for each of the six
// query settings of the paper's Table 1, the synthetic traces are compared
// in feature space against the ground-truth traces captured by actually
// running the query, expecting >90% overlap (paper Table 1).
func (r *Runner) Table1() (Result, error) {
	l, err := r.Social()
	if err != nil {
		return Result{}, err
	}
	type setting struct {
		key   string
		label string
		lab   *Lab
		query *workload.Traffic
	}
	var settings []setting
	for i, scale := range []float64{1, 2, 3} {
		settings = append(settings, setting{
			key:   fmt.Sprintf("scale_%dx", int(scale)),
			label: fmt.Sprintf("Unseen Scale %.0fx", scale),
			lab:   l,
			query: l.queryDay(workload.TwoPeak{}, l.Mix, l.PeakRPS*scale, r.P.Seed+540+int64(i)),
		})
	}
	settings = append(settings, setting{
		key:   "composition",
		label: "Unseen API Composition",
		lab:   l,
		query: l.queryDay(workload.TwoPeak{}, unseenCompositionMix(), l.PeakRPS, r.P.Seed+545),
	})
	settings = append(settings, setting{
		key:   "shape_2peak_to_flat",
		label: "Unseen Shape 2-peak/day -> flat",
		lab:   l,
		query: l.queryDay(workload.Flat{}, l.Mix, l.PeakRPS, r.P.Seed+546),
	})
	flat, err := r.SocialFlat()
	if err != nil {
		return Result{}, err
	}
	settings = append(settings, setting{
		key:   "shape_flat_to_2peak",
		label: "Unseen Shape flat -> 2-peak/day",
		lab:   flat,
		query: flat.queryDay(workload.TwoPeak{}, flat.Mix, flat.PeakRPS, r.P.Seed+547),
	})

	w := r.P.Out
	fmt.Fprintf(w, "%-36s %s\n", "Query Scenario", "Synthesis Quality (%)")
	metrics := map[string]float64{}
	min := 100.0
	for _, s := range settings {
		ev, err := s.lab.Evaluate(s.query)
		if err != nil {
			return Result{}, err
		}
		acc := s.lab.SynthAccuracy(ev)
		fmt.Fprintf(w, "%-36s %.2f\n", s.label, acc)
		metrics[s.key] = acc
		if acc < min {
			min = acc
		}
	}
	metrics["min_accuracy"] = min
	return Result{ID: "table1", Metrics: metrics}, nil
}
