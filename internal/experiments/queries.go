package experiments

import (
	"math/rand"
	"sort"

	"repro/internal/workload"
)

// Query builders for the paper's three business scenarios (§5.3). Each
// returns a one-day traffic program over the lab's geometry.

// composeDominatedMix is the Figure 10 scenario: the additional requests
// are primarily /composePost.
func composeDominatedMix() workload.Mix {
	return workload.Mix{
		"/composePost":      0.52,
		"/readTimeline":     0.18,
		"/readHomeTimeline": 0.08,
		"/uploadMedia":      0.10,
		"/getMedia":         0.04,
		"/login":            0.03,
		"/readPost":         0.02,
		"/follow":           0.01,
		"/unfollow":         0.005,
		"/register":         0.005,
		"/searchUser":       0.01,
	}
}

// readDominatedMix is the Figure 11 scenario: dominated by /readTimeline,
// with a similar total volume to Figure 10.
func readDominatedMix() workload.Mix {
	return workload.Mix{
		"/composePost":      0.06,
		"/readTimeline":     0.62,
		"/readHomeTimeline": 0.15,
		"/uploadMedia":      0.03,
		"/getMedia":         0.06,
		"/login":            0.03,
		"/readPost":         0.03,
		"/follow":           0.005,
		"/unfollow":         0.005,
		"/register":         0.005,
		"/searchUser":       0.005,
	}
}

// unseenCompositionMix is the Figure 13b/15 scenario: 10% /composePost,
// 85% /readTimeline, 5% /uploadMedia — never observed during learning.
func unseenCompositionMix() workload.Mix {
	return workload.Mix{
		"/composePost":  0.10,
		"/readTimeline": 0.85,
		"/uploadMedia":  0.05,
	}
}

// jitterMix perturbs a mix's weights by ±spread (relative), keeping the
// scenario recognisable while varying repetitions like the paper's "minor
// variations in ... the composition of APIs".
func jitterMix(m workload.Mix, spread float64, rng *rand.Rand) workload.Mix {
	// Iterate in sorted key order: the jitter consumes randomness per
	// API, so map-iteration order would make repetitions irreproducible.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make(workload.Mix, len(m))
	for _, k := range keys {
		f := 1 + spread*(2*rng.Float64()-1)
		out[k] = m[k] * f
	}
	return out
}

// queryDay builds a one-day query program on the lab's geometry.
func (l *Lab) queryDay(shape workload.Shape, mix workload.Mix, peakRPS float64, seed int64) *workload.Traffic {
	return l.program([]workload.DaySpec{{Shape: shape, Mix: mix, PeakRPS: peakRPS}}, seed).Generate()
}

// scenarioQueries builds rep query variations for a scenario, jittering the
// mix and the peak volume slightly between repetitions.
func (l *Lab) scenarioQueries(shape workload.Shape, mix workload.Mix, peakRPS float64, reps int, seed int64) []*workload.Traffic {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*workload.Traffic, reps)
	for i := range out {
		m := jitterMix(mix, 0.08, rng)
		p := peakRPS * (1 + 0.05*(2*rng.Float64()-1))
		out[i] = l.queryDay(shape, m, p, seed+int64(i)*17)
	}
	return out
}

// evaluateAll runs Evaluate over a set of queries.
func (l *Lab) evaluateAll(queries []*workload.Traffic) ([]*Evaluation, error) {
	out := make([]*Evaluation, len(queries))
	for i, q := range queries {
		ev, err := l.Evaluate(q)
		if err != nil {
			return nil, err
		}
		out[i] = ev
	}
	return out, nil
}

// QueryDay builds a one-day query at scale × the lab's learning peak with
// the given shape and mix — the entry point for external consumers (the
// web demo) that compose their own scenarios.
func (l *Lab) QueryDay(shape workload.Shape, mix workload.Mix, scale float64, seed int64) *workload.Traffic {
	return l.queryDay(shape, mix, l.PeakRPS*scale, seed)
}
