package experiments

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/workload"
)

// defaultSweepApps is the production-scale accuracy sweep from
// EXPERIMENTS.md: the same generator seed at three topology sizes.
var defaultSweepApps = []string{
	"gen:seed=7,components=30",
	"gen:seed=7,components=100",
	"gen:seed=7,components=300",
}

// quickSweepApps keeps the quick suite fast while still spanning a 4x size
// range.
var quickSweepApps = []string{
	"gen:seed=7,components=10",
	"gen:seed=7,components=40",
}

// sweepFocusPairs picks a bounded, deterministic set of CPU pairs spread
// evenly across the component list, so training cost stays flat while the
// topology grows. The first component (the entry tier on generated
// topologies) is always included.
func sweepFocusPairs(spec *app.Spec, k int) []app.Pair {
	n := len(spec.Components)
	if k > n {
		k = n
	}
	out := make([]app.Pair, 0, k)
	seen := make(map[string]bool, k)
	for i := 0; i < k; i++ {
		c := spec.Components[i*n/k].Name
		if !seen[c] {
			seen[c] = true
			out = append(out, app.Pair{Component: c, Resource: app.CPU})
		}
	}
	return out
}

// GenSweep trains DeepRest on generated topologies of increasing size and
// reports Mode-1 estimation error at an unseen 2x traffic scale — the
// accuracy half of the EXPERIMENTS.md topology-size sweep (the wall-clock
// half lives in BENCH_topo.json). Unlike the paper-figure labs it trains
// only DeepRest, on a fixed-size focus set of CPU experts, so the sweep
// isolates how estimation quality holds up as the topology grows rather
// than how long full provisioning takes. The app list defaults to
// gen:seed=7 at 30/100/300 components and can be overridden with
// `experiments -app gen:...` (repeatable).
func (r *Runner) GenSweep() (Result, error) {
	apps := r.P.Apps
	if len(apps) == 0 {
		apps = defaultSweepApps
		if r.P.Quick {
			apps = quickSweepApps
		}
	}
	wpd, ws, days, peak := r.P.dims()
	metrics := map[string]float64{}
	fmt.Fprintf(r.P.Out, "  %-34s %10s %7s %12s %12s\n",
		"app", "components", "experts", "mean MAPE", "worst MAPE")
	for i, arg := range apps {
		spec, mix, err := topo.Resolve(arg)
		if err != nil {
			return Result{}, fmt.Errorf("gensweep: %w", err)
		}
		l := &Lab{
			P:          r.P,
			Spec:       spec,
			LearnShape: workload.TwoPeak{},
			Mix:        mix,
			PeakRPS:    peak,
			LearnDays:  days,
			WPD:        wpd,
			WindowSec:  ws,

			clusterSeed: r.P.Seed + 700 + int64(i)*13,
		}
		cluster, err := sim.NewCluster(spec, l.clusterSeed)
		if err != nil {
			return Result{}, fmt.Errorf("gensweep: %s: %w", arg, err)
		}
		l.LearnTraffic = l.learnProgram().Generate()
		l.LearnRun, err = cluster.Run(l.LearnTraffic)
		if err != nil {
			return Result{}, fmt.Errorf("gensweep: %s: learning-phase simulation: %w", arg, err)
		}
		l.Pairs = sweepFocusPairs(spec, 6)
		usage := make(map[app.Pair][]float64, len(l.Pairs))
		for _, p := range l.Pairs {
			usage[p] = l.LearnRun.Usage[p]
		}
		opts := core.DefaultOptions()
		opts.Estimator = r.P.estimatorConfig()
		l.System, err = core.LearnFromData(l.LearnRun.Windows, usage, opts)
		if err != nil {
			return Result{}, fmt.Errorf("gensweep: %s: train: %w", arg, err)
		}

		// Unseen 2x scale, one day — the Figure 14 scenario on the
		// generated topology.
		query := l.program(
			[]workload.DaySpec{{Shape: workload.TwoPeak{}, Mix: l.Mix, PeakRPS: l.PeakRPS * 2}},
			r.P.Seed+800+int64(i)*31,
		).Generate()
		truth, err := l.GroundTruth(query)
		if err != nil {
			return Result{}, fmt.Errorf("gensweep: %s: ground truth: %w", arg, err)
		}
		synthetic, err := l.System.Synthesizer().Synthesize(query, r.P.Seed+11)
		if err != nil {
			return Result{}, fmt.Errorf("gensweep: %s: synthesize: %w", arg, err)
		}
		est, err := l.System.Model().Predict(synthetic)
		if err != nil {
			return Result{}, fmt.Errorf("gensweep: %s: predict: %w", arg, err)
		}
		mean, worst := 0.0, 0.0
		for _, p := range l.Pairs {
			m := eval.MAPE(est[p].Exp, truth.Usage[p])
			mean += m
			if m > worst {
				worst = m
			}
		}
		mean /= float64(len(l.Pairs))
		fmt.Fprintf(r.P.Out, "  %-34s %10d %7d %11.1f%% %11.1f%%\n",
			arg, len(spec.Components), len(l.Pairs), mean, worst)
		size := len(spec.Components)
		metrics[fmt.Sprintf("gen%d_mape_mean", size)] = mean
		metrics[fmt.Sprintf("gen%d_mape_worst", size)] = worst
	}
	return Result{ID: "gensweep", Metrics: metrics}, nil
}
