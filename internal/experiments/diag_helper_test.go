package experiments

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/sim"
)

// provisionWith is a test helper: lab provisioning with an explicit
// estimator config.
func provisionWith(l *Lab, cfg estimator.Config) error {
	cluster, err := sim.NewCluster(l.Spec, l.clusterSeed)
	if err != nil {
		return err
	}
	l.LearnTraffic = l.learnProgram().Generate()
	l.LearnRun, err = cluster.Run(l.LearnTraffic)
	if err != nil {
		return err
	}
	usage := make(map[app.Pair][]float64, len(l.Pairs))
	for _, p := range l.Pairs {
		usage[p] = l.LearnRun.Usage[p]
	}
	opts := core.DefaultOptions()
	opts.Estimator = cfg
	l.System, err = core.LearnFromData(l.LearnRun.Windows, usage, opts)
	if err != nil {
		return fmt.Errorf("train: %w", err)
	}
	l.RA, err = baselines.TrainResourceAware(usage, l.WPD, l.P.raConfig())
	if err != nil {
		return err
	}
	l.Simple, err = baselines.TrainSimpleScaling(usage, l.LearnTraffic.TotalSeries())
	if err != nil {
		return err
	}
	l.CompAware, err = baselines.TrainComponentAware(usage, l.LearnRun.Windows)
	return err
}
