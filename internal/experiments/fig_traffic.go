package experiments

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/workload"
)

// Fig9 prints the 7-day application-learning API traffic of the social
// network: per-window request series of the three headline APIs with two
// peak hours per day (paper Figure 9).
func (r *Runner) Fig9() (Result, error) {
	l, err := r.Social()
	if err != nil {
		return Result{}, err
	}
	w := r.P.Out
	t := l.LearnTraffic
	fmt.Fprintf(w, "learning traffic: %d days x %d windows/day, window=%.0fs, total requests=%d\n",
		l.LearnDays, t.WindowsPerDay, t.WindowSeconds, t.TotalRequests())
	for _, api := range []string{"/composePost", "/readTimeline", "/uploadMedia"} {
		s := t.Series(api)
		fmt.Fprintf(w, "  %-16s %s  (%s req/window)\n", api, eval.Sparkline(s, 84), eval.SeriesSummary(s))
	}
	total := t.TotalSeries()
	fmt.Fprintf(w, "  %-16s %s  (%s req/window)\n", "total", eval.Sparkline(total, 84), eval.SeriesSummary(total))

	// Verify the two-peak structure of each day: every day's
	// autocorrelation with the first day should be high.
	peaks := countDailyPeaks(total, t.WindowsPerDay)
	fmt.Fprintf(w, "  detected peaks per day: %v\n", peaks)
	mean := 0.0
	for _, p := range peaks {
		mean += float64(p)
	}
	mean /= float64(len(peaks))
	return Result{ID: "fig9", Metrics: map[string]float64{
		"total_requests":      float64(t.TotalRequests()),
		"mean_peaks_per_day":  mean,
		"windows_per_day":     float64(t.WindowsPerDay),
		"learning_days":       float64(l.LearnDays),
		"peak_window_total":   maxOf(total),
		"trough_window_total": minOf(total),
	}}, nil
}

// countDailyPeaks finds local maxima above 70% of the day's max, merged
// within a quarter-day.
func countDailyPeaks(total []float64, wpd int) []int {
	days := len(total) / wpd
	out := make([]int, days)
	for d := 0; d < days; d++ {
		day := total[d*wpd : (d+1)*wpd]
		max := maxOf(day)
		count := 0
		last := -wpd
		for i := 1; i < len(day)-1; i++ {
			if day[i] >= 0.7*max && day[i] >= day[i-1] && day[i] >= day[i+1] && i-last > wpd/6 {
				count++
				last = i
			}
		}
		out[d] = count
	}
	return out
}

func maxOf(s []float64) float64 {
	m := s[0]
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	return m
}

func minOf(s []float64) float64 {
	m := s[0]
	for _, v := range s {
		if v < m {
			m = v
		}
	}
	return m
}

// Fig13 prints example one-day query traffic for the three business
// scenarios: unseen user scales (1×/2×/3×), an unseen API composition, and
// an unseen (flat) traffic shape (paper Figure 13).
func (r *Runner) Fig13() (Result, error) {
	l, err := r.Social()
	if err != nil {
		return Result{}, err
	}
	w := r.P.Out
	metrics := map[string]float64{}

	fmt.Fprintln(w, "(a) unseen scales of application users")
	base := 0.0
	for i, scale := range []float64{1, 2, 3} {
		q := l.queryDay(workload.TwoPeak{}, l.Mix, l.PeakRPS*scale, r.P.Seed+400+int64(i))
		total := q.TotalSeries()
		fmt.Fprintf(w, "  %.0fx users  %s  (%s)\n", scale, eval.Sparkline(total, 64), eval.SeriesSummary(total))
		if i == 0 {
			base = float64(q.TotalRequests())
		}
		metrics[fmt.Sprintf("scale_%dx_volume_ratio", int(scale))] = float64(q.TotalRequests()) / base
	}

	fmt.Fprintln(w, "(b) unseen API composition (10% compose / 85% readTimeline / 5% uploadMedia)")
	qc := l.queryDay(workload.TwoPeak{}, unseenCompositionMix(), l.PeakRPS, r.P.Seed+410)
	for _, api := range []string{"/composePost", "/readTimeline", "/uploadMedia"} {
		s := qc.Series(api)
		fmt.Fprintf(w, "  %-16s %s  (%s)\n", api, eval.Sparkline(s, 64), eval.SeriesSummary(s))
	}
	metrics["composition_read_share"] = sumOf(qc.Series("/readTimeline")) / float64(qc.TotalRequests())

	fmt.Fprintln(w, "(c) unseen traffic shape (flat)")
	qf := l.queryDay(workload.Flat{}, l.Mix, l.PeakRPS, r.P.Seed+420)
	total := qf.TotalSeries()
	fmt.Fprintf(w, "  %-16s %s  (%s)\n", "total", eval.Sparkline(total, 64), eval.SeriesSummary(total))
	metrics["flat_peak_to_trough"] = maxOf(total) / (minOf(total) + 1)

	return Result{ID: "fig13", Metrics: metrics}, nil
}

func sumOf(s []float64) float64 {
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return sum
}
