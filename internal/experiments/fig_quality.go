package experiments

import (
	"fmt"
	"math"

	"repro/internal/app"
	"repro/internal/eval"
	"repro/internal/workload"
)

// pairComposeCPU and pairPostIOps are the two resources the paper's
// qualitative analysis (Figures 10, 11, 18) focuses on.
var (
	pairComposeCPU = app.Pair{Component: "ComposePostService", Resource: app.CPU}
	pairPostIOps   = app.Pair{Component: "PostStorageMongoDB", Resource: app.WriteIOps}
)

// qualitative prints, for one evaluated query, the actual series and every
// method's estimate for the two focus pairs, and returns the per-method
// MAPEs keyed "<pair>/<method>".
func qualitative(r *Runner, ev *Evaluation, title string) map[string]float64 {
	w := r.P.Out
	metrics := map[string]float64{}
	total := ev.Query.TotalSeries()
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "  query total traffic  %s  (%s req/window)\n", eval.Sparkline(total, 64), eval.SeriesSummary(total))
	for _, p := range []app.Pair{pairComposeCPU, pairPostIOps} {
		fmt.Fprintf(w, "  -- %s (%s) --\n", p, p.Resource.Unit())
		fmt.Fprintf(w, "    %-17s %s  (%s)\n", "actual", eval.Sparkline(ev.Actual[p], 64), eval.SeriesSummary(ev.Actual[p]))
		for _, m := range Methods {
			s := ev.Series[m][p]
			mape := eval.MAPE(s, ev.Actual[p])
			fmt.Fprintf(w, "    %-17s %s  (%s) MAPE=%.1f%%\n", m, eval.Sparkline(s, 64), eval.SeriesSummary(s), mape)
			metrics[metricKey(p, m)] = mape
		}
	}
	return metrics
}

func metricKey(p app.Pair, method string) string {
	return fmt.Sprintf("%s_%s_mape", p.Resource, shortName(method))
}

func shortName(method string) string {
	switch method {
	case MethodDeepRest:
		return "deeprest"
	case MethodResourceAware:
		return "resrc_aware"
	case MethodSimpleScaling:
		return "simple"
	case MethodComponentAware:
		return "comp_aware"
	case MethodSeasonalAR:
		return "seasonal_ar"
	default:
		return method
	}
}

// Fig10 evaluates the /composePost-dominated query: the additional traffic
// drives both ComposePostService CPU and PostStorageMongoDB write IOps, so
// every traffic-aware method captures the burst while resrc-aware DL —
// blind to the query — misses it (paper Figure 10).
func (r *Runner) Fig10() (Result, error) {
	l, err := r.Social()
	if err != nil {
		return Result{}, err
	}
	q := l.queryDay(workload.TwoPeak{}, composeDominatedMix(), l.PeakRPS*2, r.P.Seed+430)
	ev, err := l.Evaluate(q)
	if err != nil {
		return Result{}, err
	}
	metrics := qualitative(r, ev, "query: /composePost-dominated, 2x volume")
	return Result{ID: "fig10", Metrics: metrics}, nil
}

// Fig11 evaluates the /readTimeline-dominated query: similar total volume
// to Figure 10, but /readTimeline does not invoke ComposePostService and
// performs no writes on PostStorageMongoDB — so simple scaling wrongly
// scales the CPU and the IOps, component-aware scaling wrongly scales the
// IOps (it sees the component busy but not which resource), and DeepRest
// correctly expects low utilization (paper Figure 11).
func (r *Runner) Fig11() (Result, error) {
	l, err := r.Social()
	if err != nil {
		return Result{}, err
	}
	q := l.queryDay(workload.TwoPeak{}, readDominatedMix(), l.PeakRPS*2, r.P.Seed+440)
	ev, err := l.Evaluate(q)
	if err != nil {
		return Result{}, err
	}
	metrics := qualitative(r, ev, "query: /readTimeline-dominated, 2x volume")

	// The diagnostic over/under-estimation ratios the paper's
	// discussion calls out.
	for _, m := range []string{MethodSimpleScaling, MethodComponentAware, MethodDeepRest} {
		est := meanOf(ev.Series[m][pairPostIOps])
		act := meanOf(ev.Actual[pairPostIOps])
		ratio := math.Inf(1)
		if act > 0 {
			ratio = est / act
		}
		metrics["iops_ratio_"+shortName(m)] = ratio
		fmt.Fprintf(r.P.Out, "  write-IOps mean(est)/mean(actual) [%s] = %.2f\n", m, ratio)
	}
	return Result{ID: "fig11", Metrics: metrics}, nil
}

func meanOf(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// fig12Components are the four heatmap columns of the paper's Figure 12.
var fig12Components = []string{"FrontendNGINX", "ComposePostService", "UserTimelineService", "PostStorageMongoDB"}

// Fig12 renders the estimation-quality heatmaps: four components × five
// resource types × four algorithms, averaging MAPE over the three scenario
// queries (paper Figure 12).
func (r *Runner) Fig12() (Result, error) {
	l, err := r.Social()
	if err != nil {
		return Result{}, err
	}
	queries := []*workload.Traffic{
		l.queryDay(workload.TwoPeak{}, composeDominatedMix(), l.PeakRPS*2, r.P.Seed+450),
		l.queryDay(workload.TwoPeak{}, readDominatedMix(), l.PeakRPS*2, r.P.Seed+451),
		l.queryDay(workload.Flat{}, l.Mix, l.PeakRPS, r.P.Seed+452),
	}
	evs, err := l.evaluateAll(queries)
	if err != nil {
		return Result{}, err
	}

	metrics := map[string]float64{}
	heatmaps := make(map[string]*eval.Heatmap, len(Methods))
	for _, m := range Methods {
		errs := make(map[app.Pair]float64)
		for _, c := range fig12Components {
			comp, _ := l.Spec.Component(c)
			for _, res := range app.AllResources {
				if res.StatefulOnly() && !comp.Stateful {
					errs[app.Pair{Component: c, Resource: res}] = math.NaN()
					continue
				}
				p := app.Pair{Component: c, Resource: res}
				sum := 0.0
				for _, ev := range evs {
					sum += eval.MAPE(ev.Series[m][p], ev.Actual[p])
				}
				errs[p] = sum / float64(len(evs))
			}
		}
		h := eval.NewHeatmap(m, fig12Components, errs)
		heatmaps[m] = h
		fmt.Fprintln(r.P.Out, h.Render())
		metrics["mean_mape_"+shortName(m)] = h.MeanMAPE()
	}

	// CPU and memory row ranges, matching the paper's §5.2 summary
	// numbers (CPU: DeepRest 7.86–11.19% vs baselines up to 123%).
	for _, m := range Methods {
		lo, hi := rowRange(heatmaps[m], app.CPU)
		metrics["cpu_mape_min_"+shortName(m)] = lo
		metrics["cpu_mape_max_"+shortName(m)] = hi
		fmt.Fprintf(r.P.Out, "  CPU MAPE range [%s]: %.2f%% .. %.2f%%\n", m, lo, hi)
	}
	return Result{ID: "fig12", Metrics: metrics}, nil
}

func rowRange(h *eval.Heatmap, res app.Resource) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, c := range h.Components {
		v, ok := h.Cells[app.Pair{Component: c, Resource: res}]
		if !ok || math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}

// Fig18 shows the 2-peak→flat shape change on the two focus resources: the
// resrc-aware forecaster still predicts two peaks (it only knows history),
// while the traffic-aware methods follow the flat query — with DeepRest
// closest in magnitude (paper Figure 18).
func (r *Runner) Fig18() (Result, error) {
	l, err := r.Social()
	if err != nil {
		return Result{}, err
	}
	q := l.queryDay(workload.Flat{}, l.Mix, l.PeakRPS, r.P.Seed+460)
	ev, err := l.Evaluate(q)
	if err != nil {
		return Result{}, err
	}
	metrics := qualitative(r, ev, "query: flat shape at learning-phase volume (2-peak/day -> flat)")

	// Peakiness diagnostic: ratio of max to mean. Actual (flat) should be
	// near 1; the history-bound forecaster stays peaky.
	for _, m := range []string{MethodDeepRest, MethodResourceAware} {
		s := ev.Series[m][pairComposeCPU]
		metrics["peakiness_"+shortName(m)] = maxOf(s) / (meanOf(s) + 1e-9)
	}
	metrics["peakiness_actual"] = maxOf(ev.Actual[pairComposeCPU]) / (meanOf(ev.Actual[pairComposeCPU]) + 1e-9)
	fmt.Fprintf(r.P.Out, "  peakiness (max/mean of ComposePostService CPU): actual=%.2f deeprest=%.2f resrc-aware=%.2f\n",
		metrics["peakiness_actual"], metrics["peakiness_deeprest"], metrics["peakiness_resrc_aware"])
	return Result{ID: "fig18", Metrics: metrics}, nil
}
