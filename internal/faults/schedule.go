package faults

// Schedule answers fault queries for a compiled Spec. Every answer is a
// pure function of (seed, injector index, window, unit): no RNG state is
// shared with callers, no call order matters, and concurrent queries are
// safe. A nil *Schedule is valid and injects nothing, so consumers thread
// it without guards.
type Schedule struct {
	spec Spec
}

// NewSchedule compiles a spec. The spec is copied; later mutation of the
// caller's Spec does not affect the schedule.
func NewSchedule(spec *Spec) *Schedule {
	if spec == nil {
		return nil
	}
	s := &Schedule{spec: Spec{Seed: spec.Seed}}
	s.spec.Injectors = append([]Injector(nil), spec.Injectors...)
	return s
}

// Compile parses a spec string and builds its schedule in one step — the
// form the -fault-spec flags consume. An empty string yields a nil schedule
// (no faults).
func Compile(specText string) (*Schedule, error) {
	spec, err := Parse(specText)
	if err != nil {
		return nil, err
	}
	if len(spec.Injectors) == 0 {
		return nil, nil
	}
	return NewSchedule(spec), nil
}

// Spec returns a copy of the compiled spec.
func (s *Schedule) Spec() Spec {
	if s == nil {
		return Spec{}
	}
	out := Spec{Seed: s.spec.Seed}
	out.Injectors = append([]Injector(nil), s.spec.Injectors...)
	return out
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection on uint64.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// roll draws the deterministic uniform [0, 1) variate of one (injector,
// window, unit) coordinate. Chaining mix64 over the coordinates gives
// independent streams per injector and per window with no shared state.
func (s *Schedule) roll(injector, window, unit int) float64 {
	h := mix64(uint64(s.spec.Seed))
	h = mix64(h ^ uint64(injector+1))
	h = mix64(h ^ uint64(window+1))
	h = mix64(h ^ uint64(unit+1))
	return float64(h>>11) / (1 << 53)
}

// active reports whether injector in covers window (or attempt) w.
func active(in Injector, w int) bool {
	return w >= in.From && (in.To == 0 || w < in.To)
}

// matches reports whether injector in targets component comp ("" in the
// injector matches every component).
func matches(in Injector, comp string) bool {
	return in.Component == "" || in.Component == comp
}

// fires reports whether a probabilistic injector fires at window w for the
// given unit. Prob 0 means "always, while in range".
func (s *Schedule) fires(i int, in Injector, w, unit int) bool {
	if !active(in, w) {
		return false
	}
	return in.Prob == 0 || s.roll(i, w, unit) < in.Prob
}

// Crashed reports whether comp is down in window w.
func (s *Schedule) Crashed(comp string, w int) bool {
	if s == nil {
		return false
	}
	for i, in := range s.spec.Injectors {
		if in.Kind == Crash && in.Component == comp && s.fires(i, in, w, 0) {
			return true
		}
	}
	return false
}

// CPUFactor returns the product of the capacity multipliers throttling comp
// in window w (1 when unthrottled).
func (s *Schedule) CPUFactor(comp string, w int) float64 {
	f := 1.0
	if s == nil {
		return f
	}
	for i, in := range s.spec.Injectors {
		if in.Kind == Throttle && matches(in, comp) && s.fires(i, in, w, 0) {
			f *= in.Factor
		}
	}
	return f
}

// LatencyFactor returns the product of the queue-inflation multipliers on
// comp in window w (1 when unaffected, ≥ 1 otherwise).
func (s *Schedule) LatencyFactor(comp string, w int) float64 {
	f := 1.0
	if s == nil {
		return f
	}
	for i, in := range s.spec.Injectors {
		if in.Kind == Latency && matches(in, comp) && s.fires(i, in, w, 0) {
			f *= in.Factor
		}
	}
	return f
}

// ScrapeGapped reports whether comp's metric scrape is lost in window w.
func (s *Schedule) ScrapeGapped(comp string, w int) bool {
	if s == nil {
		return false
	}
	for i, in := range s.spec.Injectors {
		if in.Kind == ScrapeGap && matches(in, comp) && s.fires(i, in, w, 0) {
			return true
		}
	}
	return false
}

// DroppedSpans returns how many of a batch's count requests lose their
// spans to collector faults in window w. unit distinguishes batches within
// the window so per-batch rounding stays independent. The result never
// exceeds count.
func (s *Schedule) DroppedSpans(w, unit, count int) int {
	return s.collectorLoss(DropSpans, w, unit, count)
}

// DuplicatedSpans returns how many duplicate requests the collector mints
// for a batch of count requests in window w.
func (s *Schedule) DuplicatedSpans(w, unit, count int) int {
	return s.collectorLoss(DupSpans, w, unit, count)
}

// collectorLoss converts a fractional factor into a deterministic integer
// perturbation: the expectation round(count·factor) with the fractional
// remainder resolved by an independent roll, so small batches still see
// occasional loss rather than never rounding up.
func (s *Schedule) collectorLoss(kind Kind, w, unit, count int) int {
	if s == nil || count <= 0 {
		return 0
	}
	total := 0
	for i, in := range s.spec.Injectors {
		if in.Kind != kind || !active(in, w) || in.Factor == 0 {
			continue
		}
		exp := float64(count) * in.Factor
		n := int(exp)
		if s.roll(i, w, unit) < exp-float64(n) {
			n++
		}
		total += n
	}
	if total > count {
		total = count
	}
	return total
}

// Skew returns how many windows the traces emitted in window w are delayed
// before the collector delivers them (0 = on time).
func (s *Schedule) Skew(w int) int {
	if s == nil {
		return 0
	}
	k := 0
	for i, in := range s.spec.Injectors {
		if in.Kind == ClockSkew && s.fires(i, in, w, 0) {
			k += in.Skew
		}
	}
	return k
}

// FailTraining reports whether training attempt (1-based, monotonically
// counted by the pipeline) is injected to fail.
func (s *Schedule) FailTraining(attempt int) bool {
	if s == nil {
		return false
	}
	for i, in := range s.spec.Injectors {
		if in.Kind == RetrainFail && s.fires(i, in, attempt, 0) {
			return true
		}
	}
	return false
}

// CorruptCheckpoint reports whether the checkpoint of generation version is
// injected to rot on disk after a successful write.
func (s *Schedule) CorruptCheckpoint(version int) bool {
	if s == nil {
		return false
	}
	for i, in := range s.spec.Injectors {
		if in.Kind == CkptCorrupt && s.fires(i, in, version, 0) {
			return true
		}
	}
	return false
}

// TouchesSim reports whether the schedule contains any cluster-facing
// injector — lets a daemon warn when a spec only makes sense against the
// simulator.
func (s *Schedule) TouchesSim() bool {
	if s == nil {
		return false
	}
	simKinds := map[Kind]bool{
		Crash: true, Throttle: true, Latency: true, DropSpans: true,
		DupSpans: true, ScrapeGap: true, ClockSkew: true,
	}
	for _, in := range s.spec.Injectors {
		if simKinds[in.Kind] {
			return true
		}
	}
	return false
}
