package faults

import (
	"strings"
	"testing"
)

// FuzzParseSpec hammers the fault-spec parser with arbitrary input: it must
// reject garbage with an error — never panic — and anything it accepts must
// have a stable canonical form (Parse ∘ String is the identity on accepted
// specs). The canonical form is what operators see echoed back and what the
// golden scenario tests pin, so instability would silently change fault
// schedules between runs.
func FuzzParseSpec(f *testing.F) {
	f.Add("")
	f.Add("seed=42")
	f.Add("seed=42;crash:comp=DB,from=10,to=15")
	f.Add("throttle:comp=Svc,factor=0.5;latency:comp=Svc,factor=2")
	f.Add("dropspans:factor=0.2;dupspans:factor=0.1;scrapegap:prob=0.25")
	f.Add("clockskew:skew=2,from=30;retrainfail:prob=0.5;ckptcorrupt:from=3,to=4")
	f.Add("seed=-9;scrapegap")
	f.Add("crash:comp=a=b,from=1")
	f.Add(";;;")
	f.Add("seed=42;;crash:comp= spaced name ,from=1")
	f.Fuzz(func(t *testing.T, input string) {
		spec, err := Parse(input)
		if err != nil {
			return
		}
		canon := spec.String()
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form rejected: %q: %v", canon, err)
		}
		if got := again.String(); got != canon {
			t.Fatalf("canonical form unstable: %q → %q", canon, got)
		}
		// An accepted spec must compile, and the schedule must answer a
		// sample of queries without panicking, including for extreme
		// windows.
		s := NewSchedule(spec)
		for _, w := range []int{0, 1, maxBound} {
			s.Crashed("X", w)
			s.CPUFactor("X", w)
			s.LatencyFactor("X", w)
			s.ScrapeGapped("", w)
			s.DroppedSpans(w, 0, 100)
			s.DuplicatedSpans(w, 1, 100)
			s.Skew(w)
			s.FailTraining(w)
			s.CorruptCheckpoint(w)
		}
		// Determinism: recompiling from the canonical form answers alike.
		s2 := NewSchedule(again)
		for w := 0; w < 32; w++ {
			if s.ScrapeGapped("A", w) != s2.ScrapeGapped("A", w) ||
				s.DroppedSpans(w, 2, 9) != s2.DroppedSpans(w, 2, 9) {
				t.Fatalf("recompiled schedule diverged at window %d", w)
			}
		}
		// Canonical forms must survive clause reordering-free reserialization
		// even with surrounding whitespace in the original input.
		if strings.TrimSpace(input) == "" && canon != "" {
			t.Fatalf("empty input produced canonical form %q", canon)
		}
	})
}
