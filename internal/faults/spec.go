// Package faults is the deterministic fault-injection subsystem: a textual
// scenario language, a parser, and a seeded Schedule that turns a Spec into
// reproducible per-window fault decisions.
//
// DeepRest's second query mode is an application sanity check — the system
// must keep estimating (and flagging) when the application misbehaves. The
// simulator only ever produced healthy traffic and the serving stack assumed
// every retrain and checkpoint succeeds; this package is the substrate that
// lets every layer rehearse partial failure:
//
//   - internal/sim consumes the cluster-facing injectors (crash, throttle,
//     latency, dropspans, dupspans, scrapegap, clockskew) to perturb the
//     emitted traces and metrics;
//   - internal/pipeline consumes the control-plane injectors (retrainfail,
//     ckptcorrupt) to fail training generations and rot checkpoints on disk.
//
// Determinism contract: every decision a Schedule makes is a pure function
// of (Spec.Seed, injector index, window/attempt, unit). No shared RNG state
// is consumed, so the same seed + spec produces bit-identical fault
// schedules regardless of call order, goroutine interleaving, or how many
// other random draws the host system performed. Two simulator runs with the
// same cluster seed and the same fault spec emit bit-identical telemetry.
//
// Spec text format (flag-friendly, one line):
//
//	seed=42;crash:comp=DB,from=10,to=15;throttle:comp=Svc,from=0,factor=0.5
//
// Clauses are ';'-separated. An optional leading "seed=N" sets the schedule
// seed; every other clause is "kind" or "kind:key=val,key=val,...". Keys:
//
//	comp=NAME   target component ("" = every component, where allowed)
//	from=N      first affected window/attempt (default 0)
//	to=N        one past the last affected window/attempt (0 = open-ended)
//	prob=P      per-window/attempt firing probability in [0,1] (0 = always)
//	factor=F    magnitude (capacity multiplier, inflation, or fraction)
//	skew=N      clock skew in windows
package faults

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies one fault injector type.
type Kind string

// Cluster-facing kinds (consumed by internal/sim).
const (
	// Crash takes a component down for [From, To) windows: its requests
	// fail (no traces, no demand), its scrapes read zero, and its caches
	// restart cold.
	Crash Kind = "crash"
	// Throttle multiplies a component's CPU capacity by Factor (0 < F ≤ 1),
	// amplifying queuing inflation under the same load.
	Throttle Kind = "throttle"
	// Latency multiplies a component's queuing coefficient by Factor
	// (F ≥ 1): the same load queues as if the component were slower.
	Latency Kind = "latency"
	// DropSpans makes the trace collector lose a Factor fraction of each
	// batch's requests: resources are consumed but spans never arrive.
	DropSpans Kind = "dropspans"
	// DupSpans makes the collector deliver a Factor fraction of duplicate
	// spans: traffic looks heavier than the resources it consumed.
	DupSpans Kind = "dupspans"
	// ScrapeGap drops a component's metric scrape for the window (the
	// store records zero), with per-window probability Prob.
	ScrapeGap Kind = "scrapegap"
	// ClockSkew delays trace delivery by Skew windows relative to metric
	// scrapes, desynchronising the two telemetry streams.
	ClockSkew Kind = "clockskew"
)

// Control-plane kinds (consumed by internal/pipeline).
const (
	// RetrainFail fails training attempts in [From, To) with probability
	// Prob (0 = every attempt in range).
	RetrainFail Kind = "retrainfail"
	// CkptCorrupt flips bytes in a just-written checkpoint for generation
	// versions in [From, To) with probability Prob — latent disk
	// corruption discovered only at recovery time.
	CkptCorrupt Kind = "ckptcorrupt"
)

// Injector is one parsed fault clause.
type Injector struct {
	Kind      Kind
	Component string
	// From and To bound the affected windows (or training attempts /
	// checkpoint versions for control-plane kinds) as a half-open
	// interval [From, To); To == 0 means open-ended.
	From, To int
	// Prob is the per-window (or per-attempt) firing probability for
	// probabilistic kinds; 0 means "always, while in range".
	Prob float64
	// Factor is the kind-specific magnitude: capacity multiplier
	// (throttle), queue inflation (latency), or dropped/duplicated
	// fraction (dropspans, dupspans).
	Factor float64
	// Skew is the trace delay in windows (clockskew only).
	Skew int
}

// Spec is a parsed fault scenario: a seed plus its injectors.
type Spec struct {
	Seed      int64
	Injectors []Injector
}

// Parse decodes the textual spec format. An empty string parses to an empty
// spec (no faults).
func Parse(s string) (*Spec, error) {
	spec := &Spec{}
	for ci, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: clause %d: bad seed %q", ci, v)
			}
			spec.Seed = seed
			continue
		}
		in, err := parseInjector(clause)
		if err != nil {
			return nil, fmt.Errorf("faults: clause %d: %w", ci, err)
		}
		spec.Injectors = append(spec.Injectors, in)
	}
	return spec, nil
}

// MustParse is Parse for compile-time-constant specs in tests and examples.
func MustParse(s string) *Spec {
	spec, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return spec
}

func parseInjector(clause string) (Injector, error) {
	kindStr, params, _ := strings.Cut(clause, ":")
	in := Injector{Kind: Kind(strings.TrimSpace(kindStr))}
	if params != "" {
		for _, kv := range strings.Split(params, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return in, fmt.Errorf("parameter %q is not key=value", kv)
			}
			key, val = strings.TrimSpace(key), strings.TrimSpace(val)
			var err error
			switch key {
			case "comp":
				in.Component = val
			case "from":
				in.From, err = parseBoundedInt(val)
			case "to":
				in.To, err = parseBoundedInt(val)
			case "prob":
				in.Prob, err = strconv.ParseFloat(val, 64)
			case "factor":
				in.Factor, err = strconv.ParseFloat(val, 64)
			case "skew":
				in.Skew, err = parseBoundedInt(val)
			default:
				return in, fmt.Errorf("unknown parameter %q", key)
			}
			if err != nil {
				return in, fmt.Errorf("bad %s value %q", key, val)
			}
		}
	}
	return in, in.validate()
}

// maxBound caps window/attempt indices so arithmetic on them (skew offsets,
// interval ends) cannot overflow regardless of the input.
const maxBound = 1 << 30

func parseBoundedInt(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if n < 0 || n > maxBound {
		return 0, fmt.Errorf("out of range [0, %d]", maxBound)
	}
	return n, nil
}

// validate enforces per-kind parameter constraints so a Schedule never has
// to defend against nonsensical magnitudes at query time.
func (in Injector) validate() error {
	if in.To != 0 && in.To <= in.From {
		return fmt.Errorf("%s: empty interval [%d, %d)", in.Kind, in.From, in.To)
	}
	if math.IsNaN(in.Prob) || math.IsNaN(in.Factor) ||
		math.IsInf(in.Prob, 0) || math.IsInf(in.Factor, 0) {
		return fmt.Errorf("%s: prob and factor must be finite", in.Kind)
	}
	if in.Prob < 0 || in.Prob > 1 {
		return fmt.Errorf("%s: prob %v outside [0, 1]", in.Kind, in.Prob)
	}
	switch in.Kind {
	case Crash:
		if in.Component == "" {
			return fmt.Errorf("crash: comp is required")
		}
	case Throttle:
		if in.Component == "" {
			return fmt.Errorf("throttle: comp is required")
		}
		if in.Factor <= 0 || in.Factor > 1 {
			return fmt.Errorf("throttle: factor %v outside (0, 1]", in.Factor)
		}
	case Latency:
		if in.Component == "" {
			return fmt.Errorf("latency: comp is required")
		}
		if in.Factor < 1 {
			return fmt.Errorf("latency: factor %v must be ≥ 1", in.Factor)
		}
	case DropSpans, DupSpans:
		if in.Factor < 0 || in.Factor > 1 {
			return fmt.Errorf("%s: factor %v outside [0, 1]", in.Kind, in.Factor)
		}
	case ScrapeGap:
		// comp "" means every component; all parameters optional.
	case ClockSkew:
		if in.Skew < 1 {
			return fmt.Errorf("clockskew: skew %d must be ≥ 1", in.Skew)
		}
	case RetrainFail, CkptCorrupt:
		// Interval and prob only; both optional.
	default:
		return fmt.Errorf("unknown injector kind %q", in.Kind)
	}
	return nil
}

// String renders the spec in canonical form: Parse(spec.String()) yields an
// identical spec, which the parser fuzz target pins as an invariant.
func (s *Spec) String() string {
	var parts []string
	if s.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatInt(s.Seed, 10))
	}
	for _, in := range s.Injectors {
		parts = append(parts, in.String())
	}
	return strings.Join(parts, ";")
}

// String renders one injector clause in canonical form.
func (in Injector) String() string {
	var kv []string
	if in.Component != "" {
		kv = append(kv, "comp="+in.Component)
	}
	if in.From != 0 {
		kv = append(kv, "from="+strconv.Itoa(in.From))
	}
	if in.To != 0 {
		kv = append(kv, "to="+strconv.Itoa(in.To))
	}
	if in.Prob != 0 {
		kv = append(kv, "prob="+strconv.FormatFloat(in.Prob, 'g', -1, 64))
	}
	if in.Factor != 0 {
		kv = append(kv, "factor="+strconv.FormatFloat(in.Factor, 'g', -1, 64))
	}
	if in.Skew != 0 {
		kv = append(kv, "skew="+strconv.Itoa(in.Skew))
	}
	if len(kv) == 0 {
		return string(in.Kind)
	}
	return string(in.Kind) + ":" + strings.Join(kv, ",")
}

// Kinds returns the sorted distinct injector kinds in the spec — handy for
// logging what a scenario perturbs.
func (s *Spec) Kinds() []string {
	set := make(map[string]bool, len(s.Injectors))
	for _, in := range s.Injectors {
		set[string(in.Kind)] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
