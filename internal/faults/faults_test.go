package faults

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestParseFullSpec(t *testing.T) {
	spec, err := Parse("seed=42; crash:comp=DB,from=10,to=15; throttle:comp=Svc,factor=0.5,from=3;" +
		"latency:comp=Svc,factor=2.5;dropspans:factor=0.2,from=1,to=9;" +
		"dupspans:factor=0.1;scrapegap:comp=DB,prob=0.25;clockskew:skew=2,from=30;" +
		"retrainfail:prob=0.5,from=2;ckptcorrupt:from=3,to=4")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 42 {
		t.Fatalf("seed = %d", spec.Seed)
	}
	if len(spec.Injectors) != 9 {
		t.Fatalf("injectors = %d", len(spec.Injectors))
	}
	want := Injector{Kind: Crash, Component: "DB", From: 10, To: 15}
	if spec.Injectors[0] != want {
		t.Fatalf("crash clause = %+v", spec.Injectors[0])
	}
	kinds := spec.Kinds()
	if len(kinds) != 9 { // latency+throttle+… distinct kinds
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	bad := []string{
		"crash",                          // missing comp
		"crash:comp=DB,from=5,to=5",      // empty interval
		"throttle:comp=A,factor=0",       // factor out of (0,1]
		"throttle:comp=A,factor=1.5",     // factor out of (0,1]
		"latency:comp=A,factor=0.5",      // factor < 1
		"dropspans:factor=1.5",           // fraction > 1
		"scrapegap:prob=2",               // prob > 1
		"scrapegap:prob=NaN",             // non-finite
		"clockskew",                      // skew < 1
		"wat:comp=A",                     // unknown kind
		"crash:comp=A,wat=1",             // unknown key
		"crash:comp=A,from=x",            // bad int
		"seed=abc",                       // bad seed
		"crash:comp=A,from=-1",           // negative bound
		"clockskew:skew=99999999999",     // over maxBound
		"dropspans:factor",               // not key=value
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestParseEmptyAndWhitespace(t *testing.T) {
	for _, s := range []string{"", " ", ";;", "seed=7"} {
		spec, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if len(spec.Injectors) != 0 {
			t.Fatalf("Parse(%q) produced injectors %v", s, spec.Injectors)
		}
	}
	// Compile maps an injector-free spec to a nil (inert) schedule.
	sched, err := Compile("seed=7")
	if err != nil || sched != nil {
		t.Fatalf("Compile(seed only) = %v, %v", sched, err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	const text = "seed=-3;crash:comp=DB,from=1,to=4;scrapegap:prob=0.25;clockskew:from=2,skew=3"
	spec := MustParse(text)
	again := MustParse(spec.String())
	if !reflect.DeepEqual(spec, again) {
		t.Fatalf("round trip: %+v vs %+v", spec, again)
	}
	if spec.String() != again.String() {
		t.Fatalf("canonical form unstable: %q vs %q", spec.String(), again.String())
	}
}

// TestScheduleDeterminism is the determinism contract: two schedules
// compiled from the same seed + spec answer every query identically, and a
// different seed diverges.
func TestScheduleDeterminism(t *testing.T) {
	const text = "seed=11;scrapegap:prob=0.3;dropspans:factor=0.25;retrainfail:prob=0.5"
	a, err := Compile(text)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Compile(text)
	other, _ := Compile(strings.Replace(text, "seed=11", "seed=12", 1))
	diverged := false
	for w := 0; w < 200; w++ {
		if a.ScrapeGapped("X", w) != b.ScrapeGapped("X", w) ||
			a.DroppedSpans(w, 3, 17) != b.DroppedSpans(w, 3, 17) ||
			a.FailTraining(w) != b.FailTraining(w) {
			t.Fatalf("same seed diverged at window %d", w)
		}
		if a.ScrapeGapped("X", w) != other.ScrapeGapped("X", w) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical scrape-gap schedules")
	}
}

func TestScheduleQueries(t *testing.T) {
	s := NewSchedule(MustParse(
		"crash:comp=DB,from=10,to=12;throttle:comp=Svc,factor=0.5,from=5,to=6;" +
			"latency:comp=Svc,factor=3,from=5,to=6;clockskew:skew=2,from=7,to=8;" +
			"dupspans:factor=1,from=4,to=5"))
	if s.Crashed("DB", 9) || !s.Crashed("DB", 10) || !s.Crashed("DB", 11) || s.Crashed("DB", 12) {
		t.Fatal("crash interval wrong")
	}
	if s.Crashed("Svc", 10) {
		t.Fatal("crash leaked to another component")
	}
	if got := s.CPUFactor("Svc", 5); got != 0.5 {
		t.Fatalf("CPUFactor = %v", got)
	}
	if got := s.CPUFactor("Svc", 6); got != 1 {
		t.Fatalf("CPUFactor outside interval = %v", got)
	}
	if got := s.LatencyFactor("Svc", 5); got != 3 {
		t.Fatalf("LatencyFactor = %v", got)
	}
	if got := s.Skew(7); got != 2 {
		t.Fatalf("Skew = %d", got)
	}
	if got := s.Skew(8); got != 0 {
		t.Fatalf("Skew outside interval = %d", got)
	}
	// factor=1 duplicates every request, and never more than count.
	if got := s.DuplicatedSpans(4, 0, 7); got != 7 {
		t.Fatalf("DuplicatedSpans = %d", got)
	}
	if got := s.DuplicatedSpans(5, 0, 7); got != 0 {
		t.Fatalf("DuplicatedSpans outside interval = %d", got)
	}
}

// TestCollectorLossTracksExpectation: over many batches the deterministic
// remainder-rounding must track count·factor in aggregate.
func TestCollectorLossTracksExpectation(t *testing.T) {
	s := NewSchedule(MustParse("seed=5;dropspans:factor=0.3"))
	total, dropped := 0, 0
	for w := 0; w < 500; w++ {
		total += 10
		dropped += s.DroppedSpans(w, 0, 10)
	}
	got := float64(dropped) / float64(total)
	if math.Abs(got-0.3) > 0.03 {
		t.Fatalf("aggregate drop fraction = %v, want ≈0.3", got)
	}
}

func TestNilScheduleIsInert(t *testing.T) {
	var s *Schedule
	if s.Crashed("X", 0) || s.ScrapeGapped("X", 0) || s.FailTraining(1) ||
		s.CorruptCheckpoint(1) || s.TouchesSim() {
		t.Fatal("nil schedule fired")
	}
	if s.CPUFactor("X", 0) != 1 || s.LatencyFactor("X", 0) != 1 ||
		s.Skew(0) != 0 || s.DroppedSpans(0, 0, 5) != 0 {
		t.Fatal("nil schedule perturbed")
	}
}

func TestControlPlaneQueries(t *testing.T) {
	s := NewSchedule(MustParse("retrainfail:from=2,to=4;ckptcorrupt:from=3,to=4"))
	if s.FailTraining(1) || !s.FailTraining(2) || !s.FailTraining(3) || s.FailTraining(4) {
		t.Fatal("retrainfail interval wrong")
	}
	if s.CorruptCheckpoint(2) || !s.CorruptCheckpoint(3) || s.CorruptCheckpoint(4) {
		t.Fatal("ckptcorrupt interval wrong")
	}
	if s.TouchesSim() {
		t.Fatal("control-plane spec reported as sim-facing")
	}
	if !NewSchedule(MustParse("scrapegap:prob=0.1")).TouchesSim() {
		t.Fatal("sim spec not reported as sim-facing")
	}
}
