package features

import (
	"math"
	"testing"

	"repro/internal/trace"
)

// referenceExtract is the pre-optimisation extractor: Walk every span,
// build the path key with PathKey (one fresh string per span), look it up.
// It is the semantic oracle for the allocation-free fast path.
func referenceExtract(s *Space, window []trace.Batch) Vector {
	v := Vector{Counts: make([]float64, s.Dim())}
	for _, b := range window {
		if b.Trace.Root == nil {
			continue
		}
		n := float64(b.Count)
		b.Trace.Root.Walk(func(_ *trace.Span, path []string) {
			if i, ok := s.Index(trace.PathKey(path)); ok {
				v.Counts[i] += n
			} else {
				v.Unknown += n
			}
		})
	}
	return v
}

// deepWindow builds a window with a deep, branching trace plus one span
// that is unknown to the space built from knownWindow.
func deepWindow() []trace.Batch {
	root := trace.NewSpan("Gateway", "route")
	auth := root.Child("Auth", "verify")
	auth.Child("DB", "lookup")
	svc := root.Child("Service", "handle")
	svc.Child("Cache", "get")
	svc.Child("DB", "query")
	unknownRoot := trace.NewSpan("Rogue", "op")
	return []trace.Batch{
		{Trace: trace.Trace{API: "/a", Root: root}, Count: 7},
		{Trace: trace.Trace{API: "/b", Root: unknownRoot}, Count: 2},
	}
}

func knownWindow() []trace.Batch {
	w := deepWindow()
	return w[:1]
}

func TestExtractMatchesReference(t *testing.T) {
	s := NewSpace([][]trace.Batch{knownWindow()})
	for _, tc := range []struct {
		name   string
		window []trace.Batch
	}{
		{"all known", knownWindow()},
		{"with unknown spans", deepWindow()},
		{"empty window", nil},
		{"nil root", []trace.Batch{{Count: 3}}},
	} {
		got := s.Extract(tc.window)
		want := referenceExtract(s, tc.window)
		if len(got.Counts) != len(want.Counts) {
			t.Fatalf("%s: dim %d, want %d", tc.name, len(got.Counts), len(want.Counts))
		}
		for i := range want.Counts {
			if math.Float64bits(got.Counts[i]) != math.Float64bits(want.Counts[i]) {
				t.Fatalf("%s: Counts[%d] = %v, want %v", tc.name, i, got.Counts[i], want.Counts[i])
			}
		}
		if got.Unknown != want.Unknown {
			t.Fatalf("%s: Unknown = %v, want %v", tc.name, got.Unknown, want.Unknown)
		}
	}
}

// TestExtractAllocs pins the per-span allocation fix: one Extract call
// allocates the result vector and (at most) one shared path buffer,
// regardless of how many spans the window holds. The old extractor built a
// fresh path string per span, so allocations grew with span count.
func TestExtractAllocs(t *testing.T) {
	s := NewSpace([][]trace.Batch{knownWindow()})
	w := knownWindow()
	// Warm up so the one-time buffer growth inside the first call does not
	// get charged to the measured runs.
	_ = s.Extract(w)
	allocs := testing.AllocsPerRun(100, func() {
		_ = s.Extract(w)
	})
	// Counts slice + path buffer. Anything above that means per-span
	// allocation crept back in.
	if allocs > 2 {
		t.Fatalf("Extract allocates %.0f objects per call, want <= 2 (per-span allocation regressed)", allocs)
	}
}

func BenchmarkExtract(b *testing.B) {
	s := NewSpace([][]trace.Batch{knownWindow()})
	w := deepWindow()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Extract(w)
	}
}

func BenchmarkExtractReference(b *testing.B) {
	s := NewSpace([][]trace.Batch{knownWindow()})
	w := deepWindow()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = referenceExtract(s, w)
	}
}
