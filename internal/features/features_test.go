package features

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func readTrace() trace.Trace {
	root := trace.NewSpan("Frontend", "read")
	svc := root.Child("Service", "read")
	svc.Child("DB", "find")
	return trace.Trace{API: "/read", Root: root}
}

func writeTrace() trace.Trace {
	root := trace.NewSpan("Frontend", "write")
	svc := root.Child("Service", "write")
	svc.Child("DB", "insert")
	return trace.Trace{API: "/write", Root: root}
}

func windows() [][]trace.Batch {
	return [][]trace.Batch{
		{{Trace: readTrace(), Count: 10}, {Trace: writeTrace(), Count: 4}},
		{{Trace: readTrace(), Count: 2}},
	}
}

func TestSpaceConstruction(t *testing.T) {
	s := NewSpace(windows())
	// Each 3-node chain contributes 3 prefixes; two distinct chains → 6.
	if got := s.Dim(); got != 6 {
		t.Fatalf("Dim = %d, want 6", got)
	}
	// First-seen order: the read chain was seen first.
	if s.Path(0) != "Frontend:read" {
		t.Errorf("Path(0) = %q", s.Path(0))
	}
	if _, ok := s.Index("Frontend:read→Service:read→DB:find"); !ok {
		t.Error("deep read path missing")
	}
	if _, ok := s.Index("nonexistent"); ok {
		t.Error("unknown path should not resolve")
	}
}

func TestExtractCounts(t *testing.T) {
	w := windows()
	s := NewSpace(w)
	v := s.Extract(w[0])
	// Window 0: read ×10 and write ×4; every node on a chain counts.
	iRead, _ := s.Index("Frontend:read")
	iReadDeep, _ := s.Index("Frontend:read→Service:read→DB:find")
	iWrite, _ := s.Index("Frontend:write")
	if v.Counts[iRead] != 10 || v.Counts[iReadDeep] != 10 {
		t.Errorf("read counts wrong: %v", v.Counts)
	}
	if v.Counts[iWrite] != 4 {
		t.Errorf("write count = %v, want 4", v.Counts[iWrite])
	}
	if v.Unknown != 0 {
		t.Errorf("Unknown = %v, want 0", v.Unknown)
	}
}

func TestExtractUnknownPaths(t *testing.T) {
	s := NewSpace(windows())
	novel := trace.Trace{Root: trace.NewSpan("NewComponent", "op"), API: "/new"}
	v := s.Extract([]trace.Batch{{Trace: novel, Count: 3}})
	if v.Unknown != 3 {
		t.Errorf("Unknown = %v, want 3", v.Unknown)
	}
}

func TestExtractSeriesAndMatrix(t *testing.T) {
	w := windows()
	s := NewSpace(w)
	series := s.ExtractSeries(w)
	if len(series) != 2 {
		t.Fatalf("series len = %d", len(series))
	}
	m := Matrix(series)
	if len(m) != 2 || len(m[0]) != s.Dim() {
		t.Fatalf("matrix shape = %dx%d", len(m), len(m[0]))
	}
	// Mutating the matrix must not affect the series.
	m[0][0] = -1
	if series[0].Counts[0] == -1 {
		t.Error("Matrix must copy rows")
	}
}

func TestScaler(t *testing.T) {
	m := [][]float64{{2, 0}, {4, 0}}
	s := FitScaler(m)
	if s.Max[0] != 4 || s.Max[1] != 1 {
		t.Fatalf("Max = %v", s.Max)
	}
	out := s.Apply(m)
	if out[1][0] != 1 || out[0][0] != 0.5 {
		t.Errorf("Apply = %v", out)
	}
	// Scaling preserves ratios beyond the training max (3× traffic maps
	// to values around 3), the property the estimator's extrapolation
	// relies on.
	row := []float64{12, 0}
	s.ApplyRow(row)
	if row[0] != 3 {
		t.Errorf("ApplyRow = %v, want 3", row[0])
	}
	if empty := FitScaler(nil); len(empty.Max) != 0 {
		t.Error("FitScaler(nil) should be empty")
	}
}

func TestRestoreSpaceRoundTrip(t *testing.T) {
	s := NewSpace(windows())
	r := RestoreSpace(s.Paths())
	if r.Dim() != s.Dim() {
		t.Fatalf("restored Dim = %d, want %d", r.Dim(), s.Dim())
	}
	for i := 0; i < s.Dim(); i++ {
		if r.Path(i) != s.Path(i) {
			t.Fatalf("path %d mismatch: %q vs %q", i, r.Path(i), s.Path(i))
		}
		if j, ok := r.Index(s.Path(i)); !ok || j != i {
			t.Fatalf("index %d mismatch", i)
		}
	}
}

func TestTopPaths(t *testing.T) {
	w := windows()
	s := NewSpace(w)
	series := s.ExtractSeries(w)
	top := TopPaths(s, series, 2)
	if len(top) != 2 {
		t.Fatalf("TopPaths len = %d", len(top))
	}
	// Read chain (12 total) must outrank write chain (4 total).
	if top[0] != "Frontend:read (12)" {
		t.Errorf("top path = %q", top[0])
	}
}

// Property: extraction is additive — extracting two windows separately and
// summing equals extracting their concatenation.
func TestExtractAdditivityProperty(t *testing.T) {
	s := NewSpace(windows())
	f := func(c1, c2 uint8) bool {
		w1 := []trace.Batch{{Trace: readTrace(), Count: int(c1)}}
		w2 := []trace.Batch{{Trace: writeTrace(), Count: int(c2)}}
		both := append(append([]trace.Batch{}, w1...), w2...)
		v1 := s.Extract(w1)
		v2 := s.Extract(w2)
		v := s.Extract(both)
		for i := range v.Counts {
			if math.Abs(v.Counts[i]-(v1.Counts[i]+v2.Counts[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a batch of count N produces exactly N× the counts of a batch of
// count 1.
func TestExtractLinearityProperty(t *testing.T) {
	s := NewSpace(windows())
	f := func(n uint8) bool {
		one := s.Extract([]trace.Batch{{Trace: readTrace(), Count: 1}})
		many := s.Extract([]trace.Batch{{Trace: readTrace(), Count: int(n)}})
		for i := range one.Counts {
			if many.Counts[i] != one.Counts[i]*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
