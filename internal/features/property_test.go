package features

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
)

// Property-based tests: rather than pinning outputs for hand-built traces,
// these generate random trace forests from a seeded source and check
// invariants that must hold for every input the extractor can see.

// randomTrace builds a random span tree: bounded depth and fan-out, with
// component/operation names drawn from small pools so paths collide across
// traces (exercising the shared-prefix bookkeeping).
func randomTrace(rng *rand.Rand) trace.Trace {
	comps := []string{"Gateway", "Service", "Cache", "DB"}
	ops := []string{"read", "write", "scan"}
	api := fmt.Sprintf("/api%d", rng.Intn(3))
	root := trace.NewSpan(comps[rng.Intn(len(comps))], ops[rng.Intn(len(ops))])
	grow(rng, root, 0)
	return trace.Trace{API: api, Root: root}
}

// grow adds random children with pairwise-distinct (component, operation)
// labels. Distinct siblings keep root-to-node path keys unique within a
// trace, which is what makes the child≤parent count invariant hold exactly
// (two identical siblings would share one path key and count double).
func grow(rng *rand.Rand, s *trace.Span, depth int) {
	if depth >= 3 {
		return
	}
	comps := []string{"Gateway", "Service", "Cache", "DB"}
	ops := []string{"read", "write", "scan"}
	used := map[string]bool{}
	for i := 0; i < rng.Intn(3); i++ {
		c, o := comps[rng.Intn(len(comps))], ops[rng.Intn(len(ops))]
		if used[c+":"+o] {
			continue
		}
		used[c+":"+o] = true
		child := s.Child(c, o)
		grow(rng, child, depth+1)
	}
}

func randomWindow(rng *rand.Rand, maxBatches int) []trace.Batch {
	w := make([]trace.Batch, rng.Intn(maxBatches+1))
	for i := range w {
		w[i] = trace.Batch{Trace: randomTrace(rng), Count: 1 + rng.Intn(20)}
	}
	return w
}

// TestPropertyChildCountNeverExceedsParent: a span is only reached through
// its parent, so for every feature path "P→c" the extracted count of the
// child path can never exceed the count of its prefix P. This is the
// structural invariant that makes path counts meaningful as triggers.
func TestPropertyChildCountNeverExceedsParent(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for iter := 0; iter < 200; iter++ {
		w := randomWindow(rng, 6)
		s := NewSpace([][]trace.Batch{w})
		v := s.Extract(w)
		for i, key := range s.Paths() {
			cut := strings.LastIndex(key, "→")
			if cut < 0 {
				continue // root path, no parent
			}
			parent := key[:cut]
			pi, ok := s.Index(parent)
			if !ok {
				t.Fatalf("iter %d: child path %q known but parent %q is not", iter, key, parent)
			}
			if v.Counts[i] > v.Counts[pi] {
				t.Fatalf("iter %d: child %q count %v exceeds parent %q count %v",
					iter, key, v.Counts[i], parent, v.Counts[pi])
			}
		}
	}
}

// TestPropertyPermutationInvariance: the feature vector of a window is a
// bag-of-paths — reordering the batches within the window must not change
// any count, nor the Unknown tally.
func TestPropertyPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	for iter := 0; iter < 200; iter++ {
		w := randomWindow(rng, 8)
		// Learn the space from a different random forest so some of w's
		// paths land in Unknown too.
		space := NewSpace([][]trace.Batch{randomWindow(rng, 8)})
		want := space.Extract(w)

		shuffled := make([]trace.Batch, len(w))
		copy(shuffled, w)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		got := space.Extract(shuffled)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("iter %d: extraction is order-sensitive:\n%+v\nvs\n%+v", iter, want, got)
		}
	}
}

// TestPropertyEmptyWindowIsZero: an empty window (and a window of traces
// with nil roots) must extract to all-zero counts with zero Unknown,
// whatever the space.
func TestPropertyEmptyWindowIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	for iter := 0; iter < 50; iter++ {
		space := NewSpace([][]trace.Batch{randomWindow(rng, 8)})
		for _, w := range [][]trace.Batch{nil, {}, {{Trace: trace.Trace{API: "/x"}, Count: 5}}} {
			v := space.Extract(w)
			if v.Unknown != 0 {
				t.Fatalf("iter %d: empty window has Unknown = %v", iter, v.Unknown)
			}
			if len(v.Counts) != space.Dim() {
				t.Fatalf("iter %d: vector dim %d != space dim %d", iter, len(v.Counts), space.Dim())
			}
			for i, c := range v.Counts {
				if c != 0 {
					t.Fatalf("iter %d: empty window counted %v at %q", iter, c, space.Path(i))
				}
			}
		}
	}
}

// TestPropertySpaceOrderIndependentOfBatchOrder: the *set* of dimensions is
// permutation-invariant too (first-seen numbering may differ, but every
// path present in one ordering is present in the other).
func TestPropertySpaceOrderIndependentOfBatchOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for iter := 0; iter < 100; iter++ {
		w := randomWindow(rng, 8)
		shuffled := make([]trace.Batch, len(w))
		copy(shuffled, w)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		a := NewSpace([][]trace.Batch{w})
		b := NewSpace([][]trace.Batch{shuffled})
		if a.Dim() != b.Dim() {
			t.Fatalf("iter %d: dims differ: %d vs %d", iter, a.Dim(), b.Dim())
		}
		for _, p := range a.Paths() {
			if _, ok := b.Index(p); !ok {
				t.Fatalf("iter %d: path %q lost under permutation", iter, p)
			}
		}
	}
}
