// Package features implements DeepRest's distributed-tracing feature
// extractor (paper §4.1, Algorithms 1 and 2).
//
// Traces are unstructured trees of spans whose size varies with request
// payloads, so they cannot be fed to a neural network directly. The
// extractor turns them into fixed-width count vectors: the feature space has
// one dimension per distinct root-to-node invocation path observed during
// application learning, and the feature vector of a scrape window counts how
// many times each path was exercised by the window's traces. The intuition
// is that the utilization of a resource in a component is a function of how
// many times the component is triggered, conditioned on the business logic —
// which the invocation path encodes.
package features

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Space is the path-to-feature map M of Algorithm 1. It is immutable once
// built: querying a window never adds dimensions, so vectors extracted at
// query time always align with the vectors the model was trained on.
type Space struct {
	index map[string]int
	paths []string
}

// NewSpace constructs the feature space from the batches collected during
// the application learning phase (Algorithm 1). Every root-to-node path
// prefix across all traces becomes one dimension, numbered in first-seen
// order exactly as in the paper's pseudo-code.
func NewSpace(windows [][]trace.Batch) *Space {
	s := &Space{index: make(map[string]int)}
	for _, w := range windows {
		for _, b := range w {
			s.addTrace(b.Trace)
		}
	}
	return s
}

// NewSpaceFromTraces constructs the feature space from individual traces.
func NewSpaceFromTraces(traces []trace.Trace) *Space {
	s := &Space{index: make(map[string]int)}
	for _, t := range traces {
		s.addTrace(t)
	}
	return s
}

func (s *Space) addTrace(t trace.Trace) {
	if t.Root == nil {
		return
	}
	t.Root.Walk(func(_ *trace.Span, path []string) {
		key := trace.PathKey(path)
		if _, ok := s.index[key]; !ok {
			s.index[key] = len(s.index)
			s.paths = append(s.paths, key)
		}
	})
}

// RestoreSpace rebuilds a Space from a saved path list (dimension i gets
// paths[i]), the inverse of Paths. Used when loading serialized models.
func RestoreSpace(paths []string) *Space {
	s := &Space{index: make(map[string]int, len(paths))}
	for i, p := range paths {
		s.index[p] = i
		s.paths = append(s.paths, p)
	}
	return s
}

// Dim returns the dimensionality of the feature space.
func (s *Space) Dim() int { return len(s.index) }

// Index returns the feature index of a path key and whether it is known.
func (s *Space) Index(key string) (int, bool) {
	i, ok := s.index[key]
	return i, ok
}

// Path returns the path key of feature dimension i.
func (s *Space) Path(i int) string { return s.paths[i] }

// Paths returns all path keys ordered by feature index.
func (s *Space) Paths() []string {
	out := make([]string, len(s.paths))
	copy(out, s.paths)
	return out
}

// Extract transforms one window of trace batches into its feature vector
// (Algorithm 2): for every span in every trace, the count of the span's
// root-to-node path is incremented by the batch multiplicity. Paths never
// seen during application learning are counted in the Unknown tally instead
// of silently dropped, so callers can detect topology drift.
//
// This is the ingestion hot path: the path key is built incrementally in a
// byte buffer shared across the whole window, and the index lookup converts
// it without allocating, so extraction costs two allocations per window
// (the count vector and the buffer) instead of one string per span.
func (s *Space) Extract(window []trace.Batch) Vector {
	v := Vector{Counts: make([]float64, s.Dim())}
	// Start at a capacity that covers typical path keys; deeper paths regrow
	// once and the larger buffer is kept for the rest of the window.
	buf := make([]byte, 0, 128)
	for _, b := range window {
		if b.Trace.Root == nil {
			continue
		}
		buf = s.countSpans(b.Trace.Root, buf[:0], float64(b.Count), &v)
	}
	return v
}

// pathSep is the separator trace.PathKey joins span IDs with.
const pathSep = "→"

// countSpans walks the span tree depth-first, extending the path key of the
// current node in prefix. It returns the (possibly regrown) buffer so the
// caller keeps the larger backing array for subsequent trees; siblings
// truncate back to their parent's length before appending their own ID.
func (s *Space) countSpans(sp *trace.Span, prefix []byte, n float64, v *Vector) []byte {
	if len(prefix) > 0 {
		prefix = append(prefix, pathSep...)
	}
	prefix = append(prefix, sp.Component...)
	prefix = append(prefix, ':')
	prefix = append(prefix, sp.Operation...)
	if i, ok := s.index[string(prefix)]; ok { // no-alloc map lookup
		v.Counts[i] += n
	} else {
		v.Unknown += n
	}
	base := len(prefix)
	for _, c := range sp.Children {
		prefix = s.countSpans(c, prefix[:base], n, v)
	}
	return prefix
}

// ExtractSeries transforms a sequence of windows into the time-series of
// feature vectors {x_1, ..., x_T} consumed by the resource estimator.
func (s *Space) ExtractSeries(windows [][]trace.Batch) []Vector {
	out := make([]Vector, len(windows))
	for t, w := range windows {
		out[t] = s.Extract(w)
	}
	return out
}

// Vector is the feature vector x_t of one scrape window.
type Vector struct {
	// Counts holds, per feature-space dimension, the number of times the
	// corresponding invocation path was exercised in the window.
	Counts []float64
	// Unknown counts span visits whose path was never seen during
	// application learning. A persistently non-zero value means the
	// application topology changed and the model should be re-learned.
	Unknown float64
}

// Matrix stacks a feature-vector series into a dense [T][D] matrix, the
// layout expected by the neural estimator.
func Matrix(series []Vector) [][]float64 {
	out := make([][]float64, len(series))
	for t, v := range series {
		row := make([]float64, len(v.Counts))
		copy(row, v.Counts)
		out[t] = row
	}
	return out
}

// Scaler normalises feature matrices so that every dimension has comparable
// magnitude. DeepRest scales counts by the per-dimension maximum observed
// during application learning (no shift), so that a query with, say, 3× the
// traffic maps to values around 3.0 — preserving the extrapolation signal
// rather than clipping it.
type Scaler struct {
	// Max holds the per-dimension maxima; dimensions never observed
	// non-zero use 1 to avoid division by zero.
	Max []float64
}

// FitScaler computes per-dimension maxima over a training matrix.
func FitScaler(m [][]float64) *Scaler {
	if len(m) == 0 {
		return &Scaler{}
	}
	max := make([]float64, len(m[0]))
	for _, row := range m {
		for i, v := range row {
			if v > max[i] {
				max[i] = v
			}
		}
	}
	for i, v := range max {
		if v <= 0 {
			max[i] = 1
		}
	}
	return &Scaler{Max: max}
}

// Apply returns a newly allocated scaled copy of m.
func (s *Scaler) Apply(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for t, row := range m {
		r := make([]float64, len(row))
		for i, v := range row {
			r[i] = v / s.Max[i]
		}
		out[t] = r
	}
	return out
}

// ApplyRow scales a single feature row in place.
func (s *Scaler) ApplyRow(row []float64) {
	for i := range row {
		row[i] /= s.Max[i]
	}
}

// TopPaths returns the n feature paths with the largest total count across
// the series, useful for debugging which invocation paths dominate a
// workload.
func TopPaths(s *Space, series []Vector, n int) []string {
	type pc struct {
		path  string
		count float64
	}
	totals := make([]pc, s.Dim())
	for i := range totals {
		totals[i].path = s.Path(i)
	}
	for _, v := range series {
		for i, c := range v.Counts {
			totals[i].count += c
		}
	}
	sort.Slice(totals, func(i, j int) bool {
		if totals[i].count != totals[j].count {
			return totals[i].count > totals[j].count
		}
		return totals[i].path < totals[j].path
	})
	if n > len(totals) {
		n = len(totals)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = fmt.Sprintf("%s (%.0f)", totals[i].path, totals[i].count)
	}
	return out
}
