// Package quality continuously shadow-scores the serving model against the
// ground truth it is about to be asked about.
//
// DeepRest's control surfaces (what-if answers, sanity checks, and — next on
// the roadmap — autoscaling) are only as good as the active model generation,
// yet accuracy was previously measurable only offline via cmd/experiments.
// The Scorer closes that gap: as telemetry windows arrive, it replays them
// through the active generation and scores prediction against the observed
// utilization, maintaining rolling per-(component,resource) MAE/sMAPE over
// sliding horizons (1h/6h/24h of windows by default), quantile-head
// calibration (empirical interval coverage plus pinball loss for the upper
// p-head), and per-API attributed error.
//
// Shadow-scoring semantics. Scoring is chunk-aligned: windows are grouped
// into fixed chunks at absolute window indices (chunk k covers windows
// [k·C, (k+1)·C)), the model's recurrent state is reset at each chunk start,
// and only complete chunks are scored. Aligning on absolute indices makes
// the scores a pure function of (telemetry, model generation) — independent
// of how often CatchUp is called — which is what makes the golden
// determinism test possible. The scoring lag is therefore bounded by one
// chunk of windows.
//
// Boards are keyed by model version: a serving swap finalizes the current
// scoreboard into a compact summary (retained for before/after comparison)
// and starts a fresh one, so scores never mix generations. Ring buffers are
// bounded by the longest horizon and clamped to the telemetry retention
// horizon, evicting in lockstep with the PR-5 ring buffer.
//
// The Scorer also closes the loop back into the pipeline: Regressed reports
// when the aggregate sMAPE has stayed above a configurable threshold for N
// consecutive scored windows, and internal/pipeline polls it on the drift
// tick to trigger an early retrain alongside the drift signal.
package quality

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/nn/loss"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Source is the telemetry view the scorer replays. *telemetry.Server
// satisfies it.
type Source interface {
	// WindowSeconds is the telemetry window length in seconds.
	WindowSeconds() float64
	// NumWindows counts every window ever recorded; OldestWindow is the
	// absolute index of the first still-resident one.
	NumWindows() int
	OldestWindow() int
	// Traces, Metrics and Features read the absolute window range [from, to).
	Traces(from, to int) ([][]trace.Batch, error)
	Metrics(from, to int) (map[app.Pair][]float64, error)
	Features(gen int, fn func([]trace.Batch) features.Vector, from, to int) ([]features.Vector, error)
}

// Config bounds and tunes a Scorer.
type Config struct {
	// Horizons are the sliding report horizons, shortest first. Empty
	// defaults to 1h/6h/24h. The longest horizon sizes the ring buffers.
	Horizons []time.Duration
	// Chunk is the shadow-prediction chunk length in windows. Zero adopts
	// the active model's ChunkLen (the truncated-BPTT segment length it
	// was trained with).
	Chunk int
	// Retention is the telemetry retention horizon in windows (0 =
	// unbounded). Rings never retain more than this, so quality evicts in
	// lockstep with telemetry.
	Retention int
	// SMAPEThreshold arms the regression gate: when > 0, an aggregate
	// per-window sMAPE above it for SustainWindows consecutive scored
	// windows makes Regressed report true. In percent.
	SMAPEThreshold float64
	// SustainWindows is how many consecutive bad windows trip the gate
	// (default 8).
	SustainWindows int
}

// Deps wires the scorer into the daemon. All fields but Source and Active
// are optional.
type Deps struct {
	// Source is the telemetry store to replay.
	Source Source
	// Active returns the serving model generation: its registry version
	// and the system to shadow. A nil system means nothing is being
	// served yet and scoring waits.
	Active func() (version int, sys *core.System)
	// Metrics receives the deeprest_quality_* series when non-nil.
	Metrics *obs.Registry
	// Tracer records "quality.score" stage spans when non-nil.
	Tracer *obs.SpanTracer
	// Logger receives per-pass debug records when non-nil.
	Logger *slog.Logger
}

// DefaultHorizons are the report horizons used when Config.Horizons is empty.
var DefaultHorizons = []time.Duration{time.Hour, 6 * time.Hour, 24 * time.Hour}

// sample is one scored window for one pair.
type sample struct {
	exp, low, up, act float64
}

// ring is a bounded FIFO of per-window values with O(1) append.
type ring[T any] struct {
	buf  []T
	next int
	n    int
}

func newRing[T any](capacity int) *ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &ring[T]{buf: make([]T, capacity)}
}

func (r *ring[T]) push(v T) {
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// last visits the most recent min(k, n) entries, oldest of them first.
func (r *ring[T]) last(k int, visit func(T)) int {
	if k > r.n {
		k = r.n
	}
	start := (r.next - k + len(r.buf)) % len(r.buf)
	for i := 0; i < k; i++ {
		visit(r.buf[(start+i)%len(r.buf)])
	}
	return k
}

// apiSample is one window's error contribution attributed to one API.
type apiSample struct {
	// err is the window's aggregate sMAPE weighted by the API's traffic
	// share that window; share is the share itself. The rolling attributed
	// error is Σerr/Σshare.
	err, share float64
}

// board is the scoreboard of one model generation.
type board struct {
	version int
	// pairs are the scored pairs in sorted order (DiskUsage excluded);
	// every scored window appends one sample per pair, so rings stay
	// aligned.
	pairs    []app.Pair
	byPair   map[app.Pair]*ring[sample]
	apiNames []string
	byAPI    map[string]*ring[apiSample]
	// agg holds the per-window aggregate sMAPE (mean over pairs).
	agg *ring[float64]
	// scored counts every window this board ever scored (not just
	// resident ones); scoredTo is the absolute index one past the last.
	scored   int
	scoredTo int
	// delta is the model's interval confidence level; qUp the upper
	// quantile its Up head targets.
	delta, qUp float64
	// consecBad counts consecutive windows whose aggregate sMAPE exceeded
	// the regression threshold.
	consecBad int
	// chunk is the effective scoring chunk length (config override or the
	// model's ChunkLen).
	chunk int
}

// FinalSummary is the compact score a generation leaves behind at swap.
type FinalSummary struct {
	Version       int `json:"version"`
	WindowsScored int `json:"windows_scored"`
	// SMAPE and Coverage are over the longest horizon at finalization.
	SMAPE    float64 `json:"smape"`
	Coverage float64 `json:"coverage"`
}

// PairScore is one (component,resource) row of a horizon report.
type PairScore struct {
	MAE      float64 `json:"mae"`
	SMAPE    float64 `json:"smape"`
	Coverage float64 `json:"coverage"`
	Unit     string  `json:"unit"`
}

// HorizonReport is the scoreboard over one sliding horizon.
type HorizonReport struct {
	// Label names the horizon ("1h"); Windows is how many scored windows
	// it actually covers (≤ the horizon's window count).
	Label   string `json:"label"`
	Windows int    `json:"windows"`
	// SMAPE is the aggregate symmetric error in percent; Coverage the
	// empirical fraction of actuals inside [Low, Up] (target: the model's
	// delta); PinballUp the mean pinball loss of the upper quantile head.
	SMAPE     float64              `json:"smape"`
	Coverage  float64              `json:"coverage"`
	PinballUp float64              `json:"pinball_up"`
	Pairs     map[string]PairScore `json:"pairs"`
	// APIs is the per-API attributed sMAPE: each window's aggregate error
	// split by traffic share.
	APIs map[string]float64 `json:"apis,omitempty"`
}

// Report is the GET /v1/quality document.
type Report struct {
	Version       int     `json:"version"`
	WindowSeconds float64 `json:"window_seconds"`
	ChunkWindows  int     `json:"chunk_windows"`
	WindowsScored int     `json:"windows_scored"`
	ScoredTo      int     `json:"scored_to_window"`
	// Delta is the interval confidence level the coverage column targets;
	// QUp the upper quantile the pinball column scores.
	Delta float64 `json:"delta"`
	QUp   float64 `json:"q_up"`
	// Summary is the traffic light: "green", "yellow", "red", or "empty"
	// when nothing has been scored yet.
	Summary       string          `json:"summary"`
	Regressed     bool            `json:"regressed,omitempty"`
	RegressReason string          `json:"regress_reason,omitempty"`
	Horizons      []HorizonReport `json:"horizons"`
	// Previous is the predecessor generation's final score, for
	// before/after comparison across a serving swap.
	Previous *FinalSummary `json:"previous,omitempty"`
}

// Scorer shadow-scores the active model generation against arriving
// telemetry. Safe for concurrent use; CatchUp passes serialize.
type Scorer struct {
	cfg  Config
	deps Deps

	mSMAPE   *obs.GaugeVec
	mAggrS   *obs.GaugeVec
	mCover   *obs.GaugeVec
	mPinball *obs.GaugeVec
	mScored  *obs.Counter
	mRegr    *obs.Gauge

	mu     sync.Mutex
	cur    *board
	prev   *FinalSummary
	cursor int // next absolute window index eligible for scoring
}

// New builds a Scorer. deps.Source and deps.Active must be non-nil.
func New(cfg Config, deps Deps) *Scorer {
	if len(cfg.Horizons) == 0 {
		cfg.Horizons = append([]time.Duration(nil), DefaultHorizons...)
	}
	sort.Slice(cfg.Horizons, func(i, j int) bool { return cfg.Horizons[i] < cfg.Horizons[j] })
	if cfg.SustainWindows <= 0 {
		cfg.SustainWindows = 8
	}
	s := &Scorer{cfg: cfg, deps: deps}
	if reg := deps.Metrics; reg != nil {
		s.mSMAPE = reg.GaugeVec("deeprest_quality_smape",
			"Rolling shadow-scoring sMAPE (percent) per component/resource over the shortest horizon.",
			"component", "resource")
		s.mAggrS = reg.GaugeVec("deeprest_quality_smape_aggregate",
			"Rolling aggregate shadow-scoring sMAPE (percent) per horizon.", "horizon")
		s.mCover = reg.GaugeVec("deeprest_quality_coverage",
			"Empirical confidence-interval coverage per horizon (target: model delta).", "horizon")
		s.mPinball = reg.GaugeVec("deeprest_quality_pinball_up",
			"Mean pinball loss of the upper quantile head per horizon.", "horizon")
		s.mScored = reg.Counter("deeprest_quality_windows_scored_total",
			"Telemetry windows shadow-scored against the active model generation.")
		s.mRegr = reg.Gauge("deeprest_quality_regressed",
			"1 while the sustained-regression gate is tripped, else 0.")
	}
	return s
}

// horizonWindows converts the configured horizons to window counts (≥1),
// clamped to the retention horizon so rings evict in lockstep with telemetry.
func (s *Scorer) horizonWindows() []int {
	ws := s.deps.Source.WindowSeconds()
	if ws <= 0 {
		ws = 1
	}
	out := make([]int, len(s.cfg.Horizons))
	for i, h := range s.cfg.Horizons {
		n := int(math.Round(h.Seconds() / ws))
		if n < 1 {
			n = 1
		}
		if s.cfg.Retention > 0 && n > s.cfg.Retention {
			n = s.cfg.Retention
		}
		out[i] = n
	}
	return out
}

// horizonLabel renders a horizon duration compactly ("1h", "90m", "24h").
func horizonLabel(d time.Duration) string {
	if d%time.Hour == 0 {
		return fmt.Sprintf("%dh", int(d/time.Hour))
	}
	if d%time.Minute == 0 {
		return fmt.Sprintf("%dm", int(d/time.Minute))
	}
	return d.String()
}

// newBoard starts a fresh scoreboard for one generation.
func (s *Scorer) newBoard(version int, sys *core.System, capacity int) *board {
	model := sys.Model()
	b := &board{
		version: version,
		byPair:  map[app.Pair]*ring[sample]{},
		byAPI:   map[string]*ring[apiSample]{},
		agg:     newRing[float64](capacity),
		delta:   model.Cfg.Delta,
		qUp:     loss.Quantiles(model.Cfg.Delta)[2],
	}
	for _, p := range model.Pairs {
		if p.Resource == app.DiskUsage {
			// Monotone counters: sMAPE against a cumulative series is
			// dominated by the running total, not prediction skill, so
			// they are excluded the same way drift detection excludes
			// them.
			continue
		}
		b.pairs = append(b.pairs, p)
		b.byPair[p] = newRing[sample](capacity)
	}
	sort.Slice(b.pairs, func(i, j int) bool {
		if b.pairs[i].Component != b.pairs[j].Component {
			return b.pairs[i].Component < b.pairs[j].Component
		}
		return b.pairs[i].Resource < b.pairs[j].Resource
	})
	return b
}

// apiRing fetches or creates the attribution ring for one API, keeping
// apiNames sorted for deterministic aggregation order.
func (b *board) apiRing(name string, capacity int) *ring[apiSample] {
	if r, ok := b.byAPI[name]; ok {
		return r
	}
	r := newRing[apiSample](capacity)
	b.byAPI[name] = r
	i := sort.SearchStrings(b.apiNames, name)
	b.apiNames = append(b.apiNames, "")
	copy(b.apiNames[i+1:], b.apiNames[i:])
	b.apiNames[i] = name
	return r
}

// CatchUp scores every complete, still-resident chunk that has not been
// scored yet and returns how many windows it scored. It is the single write
// path: the ingest hook and the pipeline tick both call it, and passes
// serialize on the scorer lock. A version change finalizes the current board
// first, so scores never mix generations.
func (s *Scorer) CatchUp(ctx context.Context) int {
	version, sys := s.deps.Active()
	if sys == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	horizons := s.horizonWindows()
	capacity := horizons[len(horizons)-1]

	if s.cur == nil || s.cur.version != version {
		s.finalizeLocked(horizons)
		s.cur = s.newBoard(version, sys, capacity)
		if s.mRegr != nil {
			s.mRegr.Set(0)
		}
	}
	b := s.cur
	if len(b.pairs) == 0 {
		return 0
	}

	chunk := s.cfg.Chunk
	if chunk <= 0 {
		chunk = sys.Model().Cfg.ChunkLen
	}
	if chunk <= 0 {
		chunk = 1
	}
	b.chunk = chunk

	n := s.deps.Source.NumWindows()
	oldest := s.deps.Source.OldestWindow()
	// Resume from the first chunk boundary at or after both the cursor and
	// the retention floor; anything older is either scored or evicted.
	from := s.cursor
	if from < oldest {
		from = oldest
	}
	k := (from + chunk - 1) / chunk
	if (k+1)*chunk > n {
		return 0
	}

	ctx, span := s.deps.Tracer.Start(ctx, "quality.score")
	defer span.End()

	scored := 0
	for ; (k+1)*chunk <= n; k++ {
		lo, hi := k*chunk, (k+1)*chunk
		if err := s.scoreChunkLocked(ctx, b, sys, version, lo, hi, capacity); err != nil {
			span.SetErr(err)
			if s.deps.Logger != nil {
				s.deps.Logger.Warn("quality: scoring chunk failed",
					"from", lo, "to", hi, "err", err, "span_id", obs.SpanID(ctx))
			}
			break
		}
		scored += hi - lo
	}
	if scored > 0 {
		s.cursor = k * chunk
		b.scoredTo = s.cursor
		s.exportLocked(b, horizons)
		if s.deps.Logger != nil {
			s.deps.Logger.Debug("quality: scored",
				"windows", scored, "scored_to", s.cursor, "version", version,
				"span_id", obs.SpanID(ctx))
		}
	}
	span.SetWindows(scored)
	return scored
}

// scoreChunkLocked replays windows [lo, hi) through sys and appends one
// sample per pair per window.
func (s *Scorer) scoreChunkLocked(_ context.Context, b *board, sys *core.System, version int, lo, hi, capacity int) error {
	series, err := s.deps.Source.Features(version, sys.Extractor(), lo, hi)
	if err != nil {
		return fmt.Errorf("features: %w", err)
	}
	usage, err := s.deps.Source.Metrics(lo, hi)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	windows, err := s.deps.Source.Traces(lo, hi)
	if err != nil {
		return fmt.Errorf("traces: %w", err)
	}
	est, err := sys.ExpectedUtilizationVectors(series)
	if err != nil {
		return fmt.Errorf("predict: %w", err)
	}

	for w := 0; w < hi-lo; w++ {
		// Aggregate sMAPE for this window: mean of per-pair symmetric
		// errors, iterated in sorted pair order so float summation is
		// deterministic.
		sum, cnt := 0.0, 0
		for _, p := range b.pairs {
			e, ok := est[p]
			actSeries := usage[p]
			if !ok || w >= len(e.Exp) || w >= len(actSeries) {
				continue
			}
			sm := sample{exp: e.Exp[w], low: e.Low[w], up: e.Up[w], act: actSeries[w]}
			b.byPair[p].push(sm)
			den := (math.Abs(sm.exp) + math.Abs(sm.act)) / 2
			if den > 0 {
				sum += 100 * math.Abs(sm.exp-sm.act) / den
				cnt++
			}
		}
		wErr := 0.0
		if cnt > 0 {
			wErr = sum / float64(cnt)
		}
		b.agg.push(wErr)
		b.scored++
		if s.mScored != nil {
			s.mScored.Inc()
		}

		// Attribute the window's aggregate error to APIs by traffic share.
		total := 0
		shares := map[string]int{}
		for _, batch := range windows[w] {
			shares[batch.Trace.API] += batch.Count
			total += batch.Count
		}
		if total > 0 {
			names := make([]string, 0, len(shares))
			for name := range shares {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				share := float64(shares[name]) / float64(total)
				b.apiRing(name, capacity).push(apiSample{err: wErr * share, share: share})
			}
		}

		// Regression gate: consecutive windows above the sMAPE threshold.
		if s.cfg.SMAPEThreshold > 0 {
			if wErr > s.cfg.SMAPEThreshold {
				b.consecBad++
			} else {
				b.consecBad = 0
			}
		}
	}
	return nil
}

// exportLocked refreshes the Prometheus gauges from the current rings: the
// per-pair sMAPE over the shortest horizon, and the aggregate series per
// horizon.
func (s *Scorer) exportLocked(b *board, horizons []int) {
	if s.mSMAPE == nil {
		return
	}
	shortest := horizons[0]
	for _, p := range b.pairs {
		s.mSMAPE.With(p.Component, p.Resource.String()).Set(pairScore(b.byPair[p], shortest, b.qUp).SMAPE)
	}
	for i, h := range horizons {
		label := horizonLabel(s.cfg.Horizons[i])
		agg := s.aggregateLocked(b, h)
		s.mAggrS.With(label).Set(agg.SMAPE)
		s.mCover.With(label).Set(agg.Coverage)
		s.mPinball.With(label).Set(agg.PinballUp)
	}
	if s.mRegr != nil {
		if bad, _ := s.regressedLocked(); bad {
			s.mRegr.Set(1)
		} else {
			s.mRegr.Set(0)
		}
	}
}

// pairScore folds the last h samples of one pair ring into a PairScore.
func pairScore(r *ring[sample], h int, qUp float64) PairScore {
	var mae, smape, pinball float64
	covered, cnt := 0, 0
	r.last(h, func(sm sample) {
		mae += math.Abs(sm.exp - sm.act)
		den := (math.Abs(sm.exp) + math.Abs(sm.act)) / 2
		if den > 0 {
			smape += 100 * math.Abs(sm.exp-sm.act) / den
		}
		if sm.act >= sm.low && sm.act <= sm.up {
			covered++
		}
		pinball += loss.Pinball(sm.act-sm.up, qUp)
		cnt++
	})
	if cnt == 0 {
		return PairScore{}
	}
	f := float64(cnt)
	return PairScore{MAE: mae / f, SMAPE: smape / f, Coverage: float64(covered) / f}
}

// aggregate is the cross-pair fold of one horizon.
type aggregate struct {
	Windows   int
	SMAPE     float64
	Coverage  float64
	PinballUp float64
}

// aggregateLocked folds all pair rings over the last h windows.
func (s *Scorer) aggregateLocked(b *board, h int) aggregate {
	var smape float64
	windows := 0
	b.agg.last(h, func(v float64) { smape += v; windows++ })
	var pinball float64
	covered, cnt := 0, 0
	for _, p := range b.pairs {
		b.byPair[p].last(h, func(sm sample) {
			if sm.act >= sm.low && sm.act <= sm.up {
				covered++
			}
			pinball += loss.Pinball(sm.act-sm.up, b.qUp)
			cnt++
		})
	}
	out := aggregate{Windows: windows}
	if windows > 0 {
		out.SMAPE = smape / float64(windows)
	}
	if cnt > 0 {
		out.Coverage = float64(covered) / float64(cnt)
		out.PinballUp = pinball / float64(cnt)
	}
	return out
}

// regressedLocked evaluates the sustained-regression gate.
func (s *Scorer) regressedLocked() (bool, string) {
	if s.cfg.SMAPEThreshold <= 0 || s.cur == nil {
		return false, ""
	}
	if s.cur.consecBad >= s.cfg.SustainWindows {
		return true, fmt.Sprintf("aggregate sMAPE > %.1f%% for %d consecutive windows",
			s.cfg.SMAPEThreshold, s.cur.consecBad)
	}
	return false, ""
}

// Regressed reports whether the sustained-regression gate is tripped, with a
// human-readable reason. internal/pipeline polls this on its drift tick.
func (s *Scorer) Regressed() (bool, string) {
	if s == nil {
		return false, ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.regressedLocked()
}

// finalizeLocked compacts the current board (if it scored anything) into the
// predecessor summary slot.
func (s *Scorer) finalizeLocked(horizons []int) {
	if s.cur == nil || s.cur.scored == 0 {
		return
	}
	longest := horizons[len(horizons)-1]
	agg := s.aggregateLocked(s.cur, longest)
	s.prev = &FinalSummary{
		Version:       s.cur.version,
		WindowsScored: s.cur.scored,
		SMAPE:         agg.SMAPE,
		Coverage:      agg.Coverage,
	}
}

// Report renders the scoreboard. Safe to call before any scoring; the
// summary is then "empty".
func (s *Scorer) Report() Report {
	s.mu.Lock()
	defer s.mu.Unlock()

	rep := Report{
		WindowSeconds: s.deps.Source.WindowSeconds(),
		Summary:       "empty",
		Previous:      s.prev,
	}
	b := s.cur
	if b == nil || b.scored == 0 {
		return rep
	}
	rep.Version = b.version
	rep.WindowsScored = b.scored
	rep.ScoredTo = b.scoredTo
	rep.Delta = b.delta
	rep.QUp = b.qUp
	rep.ChunkWindows = b.chunk

	horizons := s.horizonWindows()
	for i, h := range horizons {
		hr := HorizonReport{
			Label: horizonLabel(s.cfg.Horizons[i]),
			Pairs: map[string]PairScore{},
		}
		agg := s.aggregateLocked(b, h)
		hr.Windows = agg.Windows
		hr.SMAPE = agg.SMAPE
		hr.Coverage = agg.Coverage
		hr.PinballUp = agg.PinballUp
		for _, p := range b.pairs {
			ps := pairScore(b.byPair[p], h, b.qUp)
			ps.Unit = p.Resource.Unit()
			hr.Pairs[p.String()] = ps
		}
		for _, name := range b.apiNames {
			var errSum, shareSum float64
			b.byAPI[name].last(h, func(a apiSample) { errSum += a.err; shareSum += a.share })
			if shareSum > 0 {
				if hr.APIs == nil {
					hr.APIs = map[string]float64{}
				}
				hr.APIs[name] = errSum / shareSum
			}
		}
		rep.Horizons = append(rep.Horizons, hr)
	}

	rep.Regressed, rep.RegressReason = s.regressedLocked()
	rep.Summary = trafficLight(rep)
	return rep
}

// trafficLight folds the longest populated horizon into green/yellow/red.
// Green: error low and the interval roughly holds its nominal coverage.
// Red: the regression gate tripped, error is severe, or the interval has
// collapsed. Everything between is yellow.
func trafficLight(rep Report) string {
	if len(rep.Horizons) == 0 {
		return "empty"
	}
	h := rep.Horizons[len(rep.Horizons)-1]
	if h.Windows == 0 {
		return "empty"
	}
	switch {
	case rep.Regressed || h.SMAPE >= 40 || h.Coverage < 0.5:
		return "red"
	case h.SMAPE < 15 && h.Coverage >= rep.Delta-0.2:
		return "green"
	default:
		return "yellow"
	}
}

// ScoredWindows returns how many windows the current board has scored.
func (s *Scorer) ScoredWindows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur == nil {
		return 0
	}
	return s.cur.scored
}
