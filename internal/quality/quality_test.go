package quality

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/testutil"
)

// quickOpts keeps training fast enough for race-enabled tests.
func quickOpts() core.Options {
	opts := core.DefaultOptions()
	opts.Estimator.Hidden = 3
	opts.Estimator.Epochs = 4
	opts.Estimator.AttentionEpochs = 0
	opts.Estimator.ChunkLen = 24
	return opts
}

// harness is a trained system plus the telemetry it was trained on.
type harness struct {
	store *telemetry.Server
	run   *sim.Run
	sys   *core.System
}

// newHarness trains a tiny system on the first trainDays of telemetry and
// returns a store holding all days.
func newHarness(t testing.TB, days, trainDays int, seed int64) *harness {
	t.Helper()
	_, _, run := testutil.ToyTelemetry(t, days, 30, seed)
	store := telemetry.NewServer(run.WindowSeconds)
	store.RecordRun(run)
	sys, err := core.Learn(store, 0, trainDays*testutil.ToyDay, quickOpts())
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	return &harness{store: store, run: run, sys: sys}
}

func (h *harness) active(version int) func() (int, *core.System) {
	return func() (int, *core.System) { return version, h.sys }
}

func TestScorerScoresAndReports(t *testing.T) {
	h := newHarness(t, 2, 1, 42)
	s := New(Config{Chunk: 8}, Deps{Source: h.store, Active: h.active(1)})

	scored := s.CatchUp(context.Background())
	wantScored := (h.store.NumWindows() / 8) * 8
	if scored != wantScored {
		t.Fatalf("scored %d windows, want %d (chunk-aligned)", scored, wantScored)
	}
	if s.CatchUp(context.Background()) != 0 {
		t.Fatal("second CatchUp rescored windows")
	}

	rep := s.Report()
	if rep.Version != 1 || rep.WindowsScored != wantScored || rep.ScoredTo != wantScored {
		t.Fatalf("report header = %+v", rep)
	}
	if rep.Summary == "empty" {
		t.Fatalf("summary = %q after scoring", rep.Summary)
	}
	if rep.Delta != 0.90 || rep.QUp != 0.95 {
		t.Fatalf("delta/qUp = %v/%v", rep.Delta, rep.QUp)
	}
	if len(rep.Horizons) != len(DefaultHorizons) {
		t.Fatalf("horizons = %d, want %d", len(rep.Horizons), len(DefaultHorizons))
	}
	long := rep.Horizons[len(rep.Horizons)-1]
	if len(long.Pairs) == 0 {
		t.Fatal("no per-pair scores")
	}
	for name, ps := range long.Pairs {
		if ps.SMAPE < 0 || ps.MAE < 0 || ps.Coverage < 0 || ps.Coverage > 1 {
			t.Fatalf("pair %s score out of range: %+v", name, ps)
		}
		if ps.Unit == "" {
			t.Fatalf("pair %s missing unit", name)
		}
	}
	// DiskUsage pairs are excluded like drift does.
	for name := range long.Pairs {
		if name == "DB/disk" || name == "DB/disk_usage" {
			t.Fatalf("monotone pair %s scored", name)
		}
	}
	// Toy app serves /read and /write; both must carry attributed error.
	if long.APIs["/read"] <= 0 && long.APIs["/write"] <= 0 {
		t.Fatalf("per-API attribution empty: %+v", long.APIs)
	}
	// The model trained on this very telemetry: coverage should be far
	// from collapsed.
	if long.Coverage <= 0.2 {
		t.Fatalf("coverage = %v, interval collapsed", long.Coverage)
	}
}

// TestScorerDeterministicPerSeedAndCadence is the golden determinism test:
// the scoreboard is a pure function of (telemetry seed, model), independent
// of how often CatchUp runs.
func TestScorerDeterministicPerSeedAndCadence(t *testing.T) {
	h := newHarness(t, 1, 1, 7)

	// Run A: everything recorded, one CatchUp.
	a := New(Config{Chunk: 8}, Deps{Source: h.store, Active: h.active(1)})
	a.CatchUp(context.Background())

	// Run B: fresh store fed window-by-window, CatchUp after every record.
	storeB := telemetry.NewServer(h.run.WindowSeconds)
	b := New(Config{Chunk: 8}, Deps{Source: storeB, Active: func() (int, *core.System) { return 1, h.sys }})
	for i, w := range h.run.Windows {
		usage := sim.Usage{}
		for p, vs := range h.run.Usage {
			usage[p] = vs[i]
		}
		storeB.Record(sim.WindowResult{Batches: w, Usage: usage})
		b.CatchUp(context.Background())
	}

	ja, _ := json.Marshal(a.Report())
	jb, _ := json.Marshal(b.Report())
	if string(ja) != string(jb) {
		t.Fatalf("scoreboards diverge across call cadence:\nA: %s\nB: %s", ja, jb)
	}

	// Same seed, fresh everything → bit-identical report.
	h2 := newHarness(t, 1, 1, 7)
	c := New(Config{Chunk: 8}, Deps{Source: h2.store, Active: h2.active(1)})
	c.CatchUp(context.Background())
	jc, _ := json.Marshal(c.Report())
	if string(ja) != string(jc) {
		t.Fatalf("scoreboards diverge across runs with the same seed")
	}
}

func TestScorerVersionSwapStartsFreshBoard(t *testing.T) {
	h := newHarness(t, 2, 1, 11)
	var version atomic.Int64
	version.Store(1)
	s := New(Config{Chunk: 8}, Deps{Source: h.store, Active: func() (int, *core.System) {
		return int(version.Load()), h.sys
	}})

	firstScored := s.CatchUp(context.Background())
	if firstScored == 0 {
		t.Fatal("nothing scored under version 1")
	}
	rep1 := s.Report()

	// Swap. More telemetry arrives, the next pass runs under version 2.
	version.Store(2)
	_, _, more := testutil.ToyTelemetry(t, 1, 30, 12)
	h.store.RecordRun(more)
	if s.CatchUp(context.Background()) == 0 {
		t.Fatal("nothing scored under version 2")
	}

	rep2 := s.Report()
	if rep2.Version != 2 {
		t.Fatalf("report version = %d, want 2", rep2.Version)
	}
	if rep2.WindowsScored >= rep1.WindowsScored+firstScored {
		t.Fatalf("board not reset at swap: scored %d", rep2.WindowsScored)
	}
	if rep2.Previous == nil || rep2.Previous.Version != 1 || rep2.Previous.WindowsScored != firstScored {
		t.Fatalf("predecessor summary = %+v, want version 1 with %d windows", rep2.Previous, firstScored)
	}
}

func TestScorerRegressionGate(t *testing.T) {
	h := newHarness(t, 1, 1, 21)

	// An impossible threshold never trips.
	calm := New(Config{Chunk: 8, SMAPEThreshold: 1e9, SustainWindows: 3},
		Deps{Source: h.store, Active: h.active(1)})
	calm.CatchUp(context.Background())
	if bad, _ := calm.Regressed(); bad {
		t.Fatal("gate tripped under an impossible threshold")
	}

	// A zero threshold disables the gate entirely.
	off := New(Config{Chunk: 8, SustainWindows: 1}, Deps{Source: h.store, Active: h.active(1)})
	off.CatchUp(context.Background())
	if bad, _ := off.Regressed(); bad {
		t.Fatal("gate tripped while disabled")
	}

	// A near-zero threshold trips after SustainWindows consecutive windows.
	hot := New(Config{Chunk: 8, SMAPEThreshold: 1e-9, SustainWindows: 3},
		Deps{Source: h.store, Active: h.active(1)})
	hot.CatchUp(context.Background())
	bad, reason := hot.Regressed()
	if !bad || reason == "" {
		t.Fatalf("gate did not trip: %v %q", bad, reason)
	}
	rep := hot.Report()
	if !rep.Regressed || rep.Summary != "red" {
		t.Fatalf("report = %q regressed=%v, want red/true", rep.Summary, rep.Regressed)
	}

	// A swap resets the gate with the fresh board.
	hot.deps.Active = h.active(2)
	hot.CatchUp(context.Background())
	if bad, _ := hot.Regressed(); bad {
		t.Fatal("gate survived a serving swap")
	}
}

func TestScorerRetentionClampsRings(t *testing.T) {
	h := newHarness(t, 2, 1, 31)
	h.store.SetRetention(40)
	s := New(Config{Chunk: 8, Retention: 40, Horizons: []time.Duration{100 * time.Hour}},
		Deps{Source: h.store, Active: h.active(1)})
	s.CatchUp(context.Background())
	rep := s.Report()
	if len(rep.Horizons) != 1 {
		t.Fatalf("horizons = %d", len(rep.Horizons))
	}
	if rep.Horizons[0].Windows > 40 {
		t.Fatalf("ring retained %d windows beyond the retention horizon", rep.Horizons[0].Windows)
	}
	if rep.WindowsScored == 0 {
		t.Fatal("nothing scored")
	}
}

func TestScorerMetricsExport(t *testing.T) {
	h := newHarness(t, 1, 1, 51)
	reg := obs.NewRegistry()
	s := New(Config{Chunk: 8}, Deps{Source: h.store, Active: h.active(1), Metrics: reg})
	if s.CatchUp(context.Background()) == 0 {
		t.Fatal("nothing scored")
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.Lint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("obs.Lint: %v", err)
	}
	text := buf.String()
	for _, want := range []string{
		"deeprest_quality_smape{",
		"deeprest_quality_coverage{",
		"deeprest_quality_windows_scored_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestScorerRaceWithSwaps runs scoring concurrent with serving swaps and
// report reads; meaningful under -race.
func TestScorerRaceWithSwaps(t *testing.T) {
	h := newHarness(t, 1, 1, 61)
	var version atomic.Int64
	version.Store(1)
	s := New(Config{Chunk: 4, SMAPEThreshold: 50}, Deps{Source: h.store, Active: func() (int, *core.System) {
		return int(version.Load()), h.sys
	}})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			s.CatchUp(context.Background())
			_, _, more := testutil.ToyTelemetry(t, 1, 20, int64(100+i))
			h.store.RecordRun(more)
		}
		close(stop)
	}()
	go func() {
		defer wg.Done()
		for i := int64(2); ; i++ {
			select {
			case <-stop:
				return
			default:
				version.Store(i)
				s.CatchUp(context.Background())
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = s.Report()
				s.Regressed()
				s.ScoredWindows()
			}
		}
	}()
	wg.Wait()
}

func BenchmarkScorerCatchUp(b *testing.B) {
	h := newHarness(b, 2, 1, 71)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := New(Config{Chunk: 24}, Deps{Source: h.store, Active: h.active(1)})
		b.StartTimer()
		if s.CatchUp(context.Background()) == 0 {
			b.Fatal("nothing scored")
		}
	}
}

func BenchmarkScorerReport(b *testing.B) {
	h := newHarness(b, 2, 1, 71)
	s := New(Config{Chunk: 24}, Deps{Source: h.store, Active: h.active(1)})
	s.CatchUp(context.Background())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Report()
	}
}
