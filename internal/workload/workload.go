// Package workload generates API traffic programs: multivariate time-series
// of requests-per-window for every exposed API endpoint.
//
// It stands in for the paper's Locust-based generator (§5.1): traffic
// follows real-world-like shapes (two peak hours per day by default, e.g.
// lunchtime and late evening), an API composition mix, a user-scale knob,
// and day-to-day variation to mimic the non-deterministic properties of
// production traffic. The three query scenarios the paper evaluates —
// unseen user scales, unseen API compositions, unseen traffic shapes — are
// all expressed by varying these knobs.
package workload

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
)

// Shape maps the position of a window within a day to a relative traffic
// intensity in (0, 1].
type Shape interface {
	// Intensity returns the relative traffic level for window w of a day
	// with total windowsPerDay windows. Implementations must return a
	// value in (0, 1] with a maximum of 1 somewhere in the day.
	Intensity(w, windowsPerDay int) float64
	// Name identifies the shape in experiment output.
	Name() string
}

// TwoPeak is the default diurnal shape: a low overnight base with two peak
// hours (lunchtime and late evening), matching the paper's Figure 9.
type TwoPeak struct {
	// Base is the overnight fraction of peak traffic (default 0.12).
	Base float64
	// Peak1Frac and Peak2Frac position the peaks as fractions of the day
	// (defaults 0.54 ≈ 13:00 and 0.88 ≈ 21:00).
	Peak1Frac, Peak2Frac float64
	// Width is the Gaussian width of each peak as a fraction of the day
	// (default 0.055 ≈ 80 minutes).
	Width float64
}

// Name implements Shape.
func (TwoPeak) Name() string { return "2-peak/day" }

// Intensity implements Shape.
func (s TwoPeak) Intensity(w, windowsPerDay int) float64 {
	base := s.Base
	if base == 0 {
		base = 0.12
	}
	p1, p2 := s.Peak1Frac, s.Peak2Frac
	if p1 == 0 {
		p1 = 0.54
	}
	if p2 == 0 {
		p2 = 0.88
	}
	width := s.Width
	if width == 0 {
		width = 0.055
	}
	x := float64(w%windowsPerDay) / float64(windowsPerDay)
	g := func(mu float64) float64 {
		d := x - mu
		return math.Exp(-d * d / (2 * width * width))
	}
	v := base + (1-base)*math.Max(g(p1), 0.85*g(p2))
	if v > 1 {
		v = 1
	}
	return v
}

// Flat is a constant-intensity shape, modelling a customer base spread over
// many time zones (the paper's "unseen traffic shape" scenario).
type Flat struct {
	// Level is the constant intensity (default 0.55, so that a flat day
	// carries roughly the same request volume as a two-peak day at the
	// same peak RPS).
	Level float64
}

// Name implements Shape.
func (Flat) Name() string { return "flat" }

// Intensity implements Shape.
func (s Flat) Intensity(_, _ int) float64 {
	if s.Level == 0 {
		return 0.55
	}
	return s.Level
}

// OnePeak has a single daily peak; used by the sanity-check experiments to
// produce benign-but-novel days (e.g. the paper's 07/16).
type OnePeak struct {
	// Base, PeakFrac, Width as in TwoPeak (defaults 0.12, 0.54, 0.07).
	Base, PeakFrac, Width float64
}

// Name implements Shape.
func (OnePeak) Name() string { return "1-peak/day" }

// Intensity implements Shape.
func (s OnePeak) Intensity(w, windowsPerDay int) float64 {
	base := s.Base
	if base == 0 {
		base = 0.12
	}
	p := s.PeakFrac
	if p == 0 {
		p = 0.54
	}
	width := s.Width
	if width == 0 {
		width = 0.07
	}
	x := float64(w%windowsPerDay) / float64(windowsPerDay)
	d := x - p
	v := base + (1-base)*math.Exp(-d*d/(2*width*width))
	if v > 1 {
		v = 1
	}
	return v
}

// High is a constantly-high shape (the paper's benign 07/14 in Figure 19).
type High struct {
	// Level is the constant intensity (default 0.9).
	Level float64
}

// Name implements Shape.
func (High) Name() string { return "high" }

// Intensity implements Shape.
func (s High) Intensity(_, _ int) float64 {
	if s.Level == 0 {
		return 0.9
	}
	return s.Level
}

// Mix is the API composition: relative weights per endpoint. Weights need
// not sum to 1; they are normalised at generation time.
type Mix map[string]float64

// Normalize returns a copy of the mix scaled to sum to 1.
func (m Mix) Normalize() Mix {
	sum := 0.0
	for _, w := range m {
		sum += w
	}
	out := make(Mix, len(m))
	if sum <= 0 {
		return out
	}
	for k, w := range m {
		out[k] = w / sum
	}
	return out
}

// SocialDefaultMix is the learning-phase composition for the social network:
// read-heavy with a substantial compose share, matching Figure 9's three
// dominant APIs plus background traffic on the remaining endpoints.
func SocialDefaultMix() Mix {
	return Mix{
		"/composePost":      0.22,
		"/readTimeline":     0.30,
		"/readHomeTimeline": 0.14,
		"/uploadMedia":      0.10,
		"/getMedia":         0.08,
		"/login":            0.05,
		"/readPost":         0.05,
		"/follow":           0.02,
		"/unfollow":         0.01,
		"/register":         0.01,
		"/searchUser":       0.02,
	}
}

// HotelDefaultMix is the learning-phase composition for the hotel
// reservation application.
func HotelDefaultMix() Mix {
	return Mix{
		"/search":    0.55,
		"/recommend": 0.24,
		"/reserve":   0.11,
		"/user":      0.10,
	}
}

// DaySpec describes one day of a traffic program. Programs are composed of
// days so that experiments can mix shapes and compositions (e.g. the
// sanity-check timeline where day 7 has a flat shape).
type DaySpec struct {
	// Shape of the day's traffic.
	Shape Shape
	// Mix is the day's API composition.
	Mix Mix
	// PeakRPS is the total requests per second across all APIs at the
	// day's intensity maximum.
	PeakRPS float64
}

// Program is a multi-day traffic program.
type Program struct {
	// Days lists the per-day specifications in order.
	Days []DaySpec
	// WindowsPerDay is the number of scrape windows per day (default 288,
	// i.e. 5-minute windows).
	WindowsPerDay int
	// WindowSeconds is the length of one window in seconds (default 300).
	WindowSeconds float64
	// DayJitter is the day-to-day multiplicative volume variation
	// (coefficient, e.g. 0.05 for ±5%).
	DayJitter float64
	// MixJitter is the day-to-day variation of each API's share of the
	// mix (coefficient, e.g. 0.15 for ±15%). Real user populations shift
	// their behaviour between days; this variation is also what lets an
	// API-aware estimator tell apart the resource footprints of APIs
	// that would otherwise be perfectly correlated.
	MixJitter float64
	// PhaseSpread shifts each API's diurnal curve by a stable per-API
	// fraction of the day in [-PhaseSpread, PhaseSpread] (e.g. 0.06 ≈
	// ±90 minutes). Real endpoints peak at different times — media
	// uploads in the evening, feed reads at lunch — and this
	// decorrelation is essential for any estimator to identify per-API
	// resource footprints from production traffic.
	PhaseSpread float64
	// NoiseCV is the per-window multiplicative noise coefficient.
	NoiseCV float64
	// Seed drives all randomness; identical programs generate identical
	// traffic.
	Seed int64
}

// Uniform returns a program with the same day specification repeated for
// the given number of days, with conventional defaults for the remaining
// knobs.
func Uniform(days int, spec DaySpec) Program {
	return Program{
		Days:          repeatDays(days, spec),
		WindowsPerDay: 288,
		WindowSeconds: 300,
		DayJitter:     0.05,
		MixJitter:     0.15,
		PhaseSpread:   0.05,
		NoiseCV:       0.06,
		Seed:          1,
	}
}

func repeatDays(n int, spec DaySpec) []DaySpec {
	out := make([]DaySpec, n)
	for i := range out {
		out[i] = spec
	}
	return out
}

// Traffic is generated API traffic: per window, the number of requests
// received per API endpoint. It is the multivariate RPS time-series of the
// paper's Figure 2a, materialised as counts per window.
type Traffic struct {
	// Windows holds, per window, request counts keyed by API name.
	Windows []map[string]int
	// WindowSeconds is the duration of each window.
	WindowSeconds float64
	// WindowsPerDay is the day length in windows.
	WindowsPerDay int
	// APIs is the sorted list of endpoints with any traffic.
	APIs []string
}

// Generate materialises the program into traffic.
func (p Program) Generate() *Traffic {
	wpd := p.WindowsPerDay
	if wpd == 0 {
		wpd = 288
	}
	ws := p.WindowSeconds
	if ws == 0 {
		ws = 300
	}
	rng := rand.New(rand.NewSource(p.Seed))
	tr := &Traffic{
		WindowSeconds: ws,
		WindowsPerDay: wpd,
	}
	apiSet := make(map[string]bool)
	for _, day := range p.Days {
		mix := day.Mix.Normalize()
		// Iterate APIs in sorted order: the generator draws noise per
		// API, so map-iteration order would make traffic
		// non-reproducible.
		apis := make([]string, 0, len(mix))
		for api := range mix {
			apis = append(apis, api)
		}
		sort.Strings(apis)
		if p.MixJitter > 0 {
			jittered := make(Mix, len(mix))
			for _, api := range apis {
				f := 1 + p.MixJitter*rng.NormFloat64()
				if f < 0.1 {
					f = 0.1
				}
				jittered[api] = mix[api] * f
			}
			mix = jittered.Normalize()
		}
		dayFactor := 1 + p.DayJitter*rng.NormFloat64()
		if dayFactor < 0.5 {
			dayFactor = 0.5
		}
		offsets := make(map[string]int, len(apis))
		for _, api := range apis {
			offsets[api] = phaseOffset(api, p.PhaseSpread, wpd)
		}
		for w := 0; w < wpd; w++ {
			counts := make(map[string]int, len(mix))
			for _, api := range apis {
				frac := mix[api]
				if frac <= 0 {
					continue
				}
				shifted := ((w-offsets[api])%wpd + wpd) % wpd
				intensity := day.Shape.Intensity(shifted, wpd)
				noise := 1 + p.NoiseCV*rng.NormFloat64()
				if noise < 0 {
					noise = 0
				}
				n := int(math.Round(day.PeakRPS * dayFactor * intensity * frac * ws * noise))
				if n < 0 {
					n = 0
				}
				counts[api] = n
				if n > 0 {
					apiSet[api] = true
				}
			}
			tr.Windows = append(tr.Windows, counts)
		}
	}
	tr.APIs = sortedKeys(apiSet)
	return tr
}

// phaseOffset derives a stable per-API shift of the diurnal curve, in
// windows, in [-spread, spread] fractions of the day.
func phaseOffset(api string, spread float64, wpd int) int {
	if spread <= 0 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(api))
	// Map the hash to [-1, 1).
	u := float64(h.Sum64()%100000)/50000 - 1
	return int(u * spread * float64(wpd))
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// NumWindows returns the total number of windows.
func (t *Traffic) NumWindows() int { return len(t.Windows) }

// TotalRequests returns the total request count over all windows and APIs.
func (t *Traffic) TotalRequests() int {
	n := 0
	for _, w := range t.Windows {
		for _, c := range w {
			n += c
		}
	}
	return n
}

// WindowTotal returns the total request count of window w.
func (t *Traffic) WindowTotal(w int) int {
	n := 0
	for _, c := range t.Windows[w] {
		n += c
	}
	return n
}

// Series returns the per-window request counts of one API.
func (t *Traffic) Series(api string) []float64 {
	out := make([]float64, len(t.Windows))
	for w, m := range t.Windows {
		out[w] = float64(m[api])
	}
	return out
}

// TotalSeries returns the per-window total request counts.
func (t *Traffic) TotalSeries() []float64 {
	out := make([]float64, len(t.Windows))
	for w := range t.Windows {
		out[w] = float64(t.WindowTotal(w))
	}
	return out
}

// Slice returns the traffic restricted to windows [from, to).
func (t *Traffic) Slice(from, to int) *Traffic {
	cp := &Traffic{
		Windows:       t.Windows[from:to],
		WindowSeconds: t.WindowSeconds,
		WindowsPerDay: t.WindowsPerDay,
		APIs:          t.APIs,
	}
	return cp
}

// Append concatenates other onto t and returns a new Traffic. Both inputs
// must share window geometry.
func (t *Traffic) Append(other *Traffic) (*Traffic, error) {
	if t.WindowSeconds != other.WindowSeconds || t.WindowsPerDay != other.WindowsPerDay {
		return nil, fmt.Errorf("workload: mismatched window geometry (%vs/%d vs %vs/%d)",
			t.WindowSeconds, t.WindowsPerDay, other.WindowSeconds, other.WindowsPerDay)
	}
	apiSet := make(map[string]bool)
	for _, a := range t.APIs {
		apiSet[a] = true
	}
	for _, a := range other.APIs {
		apiSet[a] = true
	}
	return &Traffic{
		Windows:       append(append([]map[string]int{}, t.Windows...), other.Windows...),
		WindowSeconds: t.WindowSeconds,
		WindowsPerDay: t.WindowsPerDay,
		APIs:          sortedKeys(apiSet),
	}, nil
}
