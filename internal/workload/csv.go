package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSV interchange for traffic: the same table cmd/loadgen emits with
// -format csv — a header of "window,<api>,<api>,..." followed by one row of
// integer request counts per scrape window. ReadCSV lets measured traffic
// (exported from an API gateway's access logs, for example) drive Mode-1
// queries directly.

// WriteCSV serialises the traffic as CSV.
func (t *Traffic) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"window"}, t.APIs...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("workload: write header: %w", err)
	}
	row := make([]string, len(t.APIs)+1)
	for i, counts := range t.Windows {
		row[0] = strconv.Itoa(i)
		for j, api := range t.APIs {
			row[j+1] = strconv.Itoa(counts[api])
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("workload: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses traffic from the CSV layout above. windowSeconds and
// windowsPerDay define the geometry the counts describe; windowsPerDay 0
// treats the whole file as one day.
func ReadCSV(r io.Reader, windowSeconds float64, windowsPerDay int) (*Traffic, error) {
	if windowSeconds <= 0 {
		return nil, fmt.Errorf("workload: windowSeconds must be positive")
	}
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: read CSV header: %w", err)
	}
	if len(header) < 2 || strings.TrimSpace(header[0]) != "window" {
		return nil, fmt.Errorf("workload: CSV header must start with %q and name at least one API", "window")
	}
	apis := make([]string, len(header)-1)
	for i, api := range header[1:] {
		api = strings.TrimSpace(api)
		if api == "" {
			return nil, fmt.Errorf("workload: empty API name in column %d", i+1)
		}
		apis[i] = api
	}
	t := &Traffic{
		WindowSeconds: windowSeconds,
		APIs:          append([]string(nil), apis...),
	}
	for line := 1; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: read CSV row %d: %w", line, err)
		}
		if len(row) != len(header) {
			return nil, fmt.Errorf("workload: row %d has %d fields, want %d", line, len(row), len(header))
		}
		counts := make(map[string]int, len(apis))
		for j, api := range apis {
			n, err := strconv.Atoi(strings.TrimSpace(row[j+1]))
			if err != nil {
				return nil, fmt.Errorf("workload: row %d column %q: %w", line, api, err)
			}
			if n < 0 {
				return nil, fmt.Errorf("workload: row %d column %q: negative count %d", line, api, n)
			}
			counts[api] = n
		}
		t.Windows = append(t.Windows, counts)
	}
	if len(t.Windows) == 0 {
		return nil, fmt.Errorf("workload: CSV has no data rows")
	}
	t.WindowsPerDay = windowsPerDay
	if t.WindowsPerDay <= 0 {
		t.WindowsPerDay = len(t.Windows)
	}
	return t, nil
}
