package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	tr := testProgram(42).Generate()
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(&buf, tr.WindowSeconds, tr.WindowsPerDay)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if back.NumWindows() != tr.NumWindows() {
		t.Fatalf("windows %d vs %d", back.NumWindows(), tr.NumWindows())
	}
	if back.WindowsPerDay != tr.WindowsPerDay || back.WindowSeconds != tr.WindowSeconds {
		t.Fatal("geometry lost")
	}
	for w := range tr.Windows {
		for _, api := range tr.APIs {
			if back.Windows[w][api] != tr.Windows[w][api] {
				t.Fatalf("window %d api %s: %d vs %d", w, api, back.Windows[w][api], tr.Windows[w][api])
			}
		}
	}
}

func TestReadCSVMinimal(t *testing.T) {
	in := "window,/a,/b\n0,5,2\n1,0,7\n"
	tr, err := ReadCSV(strings.NewReader(in), 60, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumWindows() != 2 || tr.WindowsPerDay != 2 {
		t.Fatalf("traffic = %+v", tr)
	}
	if tr.Windows[0]["/a"] != 5 || tr.Windows[1]["/b"] != 7 {
		t.Fatalf("counts = %v", tr.Windows)
	}
	if tr.TotalRequests() != 14 {
		t.Errorf("total = %d", tr.TotalRequests())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad header":  "time,/a\n0,1\n",
		"no apis":     "window\n0\n",
		"empty api":   "window,\n0,1\n",
		"short row":   "window,/a,/b\n0,1\n",
		"non-numeric": "window,/a\n0,xyz\n",
		"negative":    "window,/a\n0,-4\n",
		"no rows":     "window,/a\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), 60, 0); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if _, err := ReadCSV(strings.NewReader("window,/a\n0,1\n"), 0, 0); err == nil {
		t.Error("bad windowSeconds must fail")
	}
}
