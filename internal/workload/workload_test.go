package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestShapesBounded(t *testing.T) {
	shapes := []Shape{TwoPeak{}, Flat{}, OnePeak{}, High{}}
	for _, s := range shapes {
		for w := 0; w < 96; w++ {
			v := s.Intensity(w, 96)
			if v <= 0 || v > 1 {
				t.Errorf("%s intensity(%d) = %v out of (0,1]", s.Name(), w, v)
			}
		}
	}
}

func TestTwoPeakHasTwoPeaks(t *testing.T) {
	s := TwoPeak{}
	wpd := 96
	peaks := 0
	last := -wpd
	max := 0.0
	for w := 0; w < wpd; w++ {
		if v := s.Intensity(w, wpd); v > max {
			max = v
		}
	}
	for w := 1; w < wpd-1; w++ {
		v := s.Intensity(w, wpd)
		if v >= 0.7*max && v >= s.Intensity(w-1, wpd) && v >= s.Intensity(w+1, wpd) && w-last > wpd/6 {
			peaks++
			last = w
		}
	}
	if peaks != 2 {
		t.Errorf("TwoPeak produced %d peaks, want 2", peaks)
	}
}

func TestFlatIsFlat(t *testing.T) {
	s := Flat{}
	v0 := s.Intensity(0, 96)
	for w := 1; w < 96; w++ {
		if s.Intensity(w, 96) != v0 {
			t.Fatal("Flat must be constant")
		}
	}
}

func TestMixNormalize(t *testing.T) {
	m := Mix{"a": 2, "b": 2}.Normalize()
	if m["a"] != 0.5 || m["b"] != 0.5 {
		t.Errorf("Normalize = %v", m)
	}
	if got := (Mix{}).Normalize(); len(got) != 0 {
		t.Error("empty mix should normalise to empty")
	}
}

func TestDefaultMixesCoverAPIs(t *testing.T) {
	if got := len(SocialDefaultMix()); got != 11 {
		t.Errorf("social mix has %d APIs, want 11", got)
	}
	if got := len(HotelDefaultMix()); got != 4 {
		t.Errorf("hotel mix has %d APIs, want 4", got)
	}
}

func testProgram(seed int64) Program {
	p := Uniform(2, DaySpec{Shape: TwoPeak{}, Mix: Mix{"/a": 0.6, "/b": 0.4}, PeakRPS: 20})
	p.WindowsPerDay = 48
	p.WindowSeconds = 60
	p.Seed = seed
	return p
}

func TestGenerateDeterminism(t *testing.T) {
	t1 := testProgram(5).Generate()
	t2 := testProgram(5).Generate()
	if t1.NumWindows() != t2.NumWindows() {
		t.Fatal("window count mismatch")
	}
	for w := range t1.Windows {
		for api, c := range t1.Windows[w] {
			if t2.Windows[w][api] != c {
				t.Fatalf("window %d api %s: %d vs %d", w, api, c, t2.Windows[w][api])
			}
		}
	}
	t3 := testProgram(6).Generate()
	if t1.TotalRequests() == t3.TotalRequests() {
		t.Error("different seeds should generally differ")
	}
}

func TestGenerateGeometry(t *testing.T) {
	tr := testProgram(1).Generate()
	if tr.NumWindows() != 96 {
		t.Errorf("NumWindows = %d, want 96", tr.NumWindows())
	}
	if tr.WindowsPerDay != 48 || tr.WindowSeconds != 60 {
		t.Error("geometry not propagated")
	}
	if len(tr.APIs) != 2 {
		t.Errorf("APIs = %v", tr.APIs)
	}
}

func TestSeriesAndTotals(t *testing.T) {
	tr := testProgram(2).Generate()
	a := tr.Series("/a")
	b := tr.Series("/b")
	total := tr.TotalSeries()
	for w := range total {
		if math.Abs(total[w]-(a[w]+b[w])) > 1e-9 {
			t.Fatalf("window %d: total %v != %v + %v", w, total[w], a[w], b[w])
		}
		if tr.WindowTotal(w) != int(total[w]) {
			t.Fatalf("WindowTotal mismatch at %d", w)
		}
	}
	sum := 0.0
	for _, v := range total {
		sum += v
	}
	if int(sum) != tr.TotalRequests() {
		t.Error("TotalRequests mismatch")
	}
}

func TestSliceAndAppend(t *testing.T) {
	tr := testProgram(3).Generate()
	first := tr.Slice(0, 48)
	second := tr.Slice(48, 96)
	if first.NumWindows() != 48 || second.NumWindows() != 48 {
		t.Fatal("Slice sizes wrong")
	}
	joined, err := first.Append(second)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if joined.TotalRequests() != tr.TotalRequests() {
		t.Error("Append lost requests")
	}
	other := testProgram(3)
	other.WindowsPerDay = 24
	if _, err := first.Append(other.Generate()); err == nil {
		t.Error("Append with mismatched geometry must fail")
	}
}

func TestMixShareRoughlyHonored(t *testing.T) {
	tr := testProgram(4).Generate()
	a := sum(tr.Series("/a"))
	total := float64(tr.TotalRequests())
	share := a / total
	if share < 0.5 || share > 0.7 {
		t.Errorf("share of /a = %.3f, want ≈0.6", share)
	}
}

func sum(s []float64) float64 {
	t := 0.0
	for _, v := range s {
		t += v
	}
	return t
}

func TestPhaseSpreadShiftsPeaks(t *testing.T) {
	p := testProgram(7)
	p.PhaseSpread = 0.1
	p.NoiseCV = 0
	p.MixJitter = 0
	p.DayJitter = 0
	tr := p.Generate()
	// The two APIs should peak at different windows.
	pa := argmax(tr.Series("/a")[:48])
	pb := argmax(tr.Series("/b")[:48])
	if pa == pb {
		t.Errorf("phase spread did not separate peaks (both at %d)", pa)
	}
	// Without spread they coincide.
	p2 := testProgram(7)
	p2.PhaseSpread = 0
	p2.NoiseCV = 0
	p2.MixJitter = 0
	p2.DayJitter = 0
	tr2 := p2.Generate()
	if argmax(tr2.Series("/a")[:48]) != argmax(tr2.Series("/b")[:48]) {
		t.Error("without phase spread peaks must coincide")
	}
}

func argmax(s []float64) int {
	best, bi := math.Inf(-1), 0
	for i, v := range s {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Property: scaling PeakRPS by k scales total volume by ≈k.
func TestVolumeScalesWithPeakProperty(t *testing.T) {
	f := func(k8 uint8) bool {
		k := 1 + float64(k8%4)
		base := testProgram(11)
		base.NoiseCV = 0
		base.DayJitter = 0
		base.MixJitter = 0
		scaled := base
		scaled.Days = []DaySpec{}
		for _, d := range base.Days {
			d.PeakRPS *= k
			scaled.Days = append(scaled.Days, d)
		}
		b := float64(base.Generate().TotalRequests())
		s := float64(scaled.Generate().TotalRequests())
		ratio := s / b
		return math.Abs(ratio-k) < 0.02*k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// Property: generated counts are never negative.
func TestNonNegativeCountsProperty(t *testing.T) {
	f := func(seed int64) bool {
		p := testProgram(seed)
		p.NoiseCV = 0.5 // aggressive noise
		tr := p.Generate()
		for _, w := range tr.Windows {
			for _, c := range w {
				if c < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
