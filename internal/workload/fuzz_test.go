package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV: the CSV parser must never panic, and accepted traffic must
// round-trip through WriteCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add("window,/a,/b\n0,5,2\n1,0,7\n")
	f.Add("window,/a\n0,-1\n")
	f.Add("garbage")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadCSV(strings.NewReader(input), 60, 0)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted traffic failed to export: %v", err)
		}
		back, err := ReadCSV(&buf, 60, tr.WindowsPerDay)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.TotalRequests() != tr.TotalRequests() {
			t.Fatalf("round trip changed totals: %d vs %d", back.TotalRequests(), tr.TotalRequests())
		}
	})
}
