package pipeline

import (
	"testing"

	"repro/internal/app"
	"repro/internal/obs"
)

func TestPipelineMetrics(t *testing.T) {
	store := toyStore(t, 1, 91)
	reg := obs.NewRegistry()
	opts := quickOpts()
	opts.Metrics = reg
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.CheckpointDir = dir
	cfg.MinDriftWindows = 1
	p, err := New(opts, cfg, sourceOf(store))
	if err != nil {
		t.Fatal(err)
	}

	// Train up to four windows short of the newest so the drift check below
	// has fresh telemetry to measure against.
	trainTo := store.NumWindows() - 4
	if _, err := p.TrainOnce(0, trainTo, []app.Pair{cpuPair}, "manual"); err != nil {
		t.Fatal(err)
	}
	genOK := reg.CounterVec("deeprest_pipeline_generations_total",
		"Training generations by trigger (manual, scheduled, drift) and result (ok, error).",
		"trigger", "result")
	if got := genOK.With("manual", "ok").Value(); got != 1 {
		t.Fatalf("generations_total{manual,ok} = %d, want 1", got)
	}
	genDur := reg.HistogramVec("deeprest_pipeline_generation_seconds",
		"Wall-clock duration of one training generation, train through publish.",
		obs.DurationBuckets, "trigger")
	if got := genDur.With("manual").Count(); got != 1 {
		t.Fatalf("generation_seconds{manual} count = %d, want 1", got)
	}
	active := reg.Gauge("deeprest_active_generation",
		"Version of the model generation currently serving queries (0 before the first publish).")
	if got := active.Value(); got != 1 {
		t.Fatalf("active_generation = %v, want 1", got)
	}
	ckpt := reg.CounterVec("deeprest_checkpoint_ops_total",
		"Model checkpoint operations by kind (write, recover) and result (ok, error).",
		"op", "result")
	if got := ckpt.With("write", "ok").Value(); got != 1 {
		t.Fatalf("checkpoint_ops_total{write,ok} = %d, want 1", got)
	}

	// A failing run (unknown pair) counts as an error, not a publish.
	bad := app.Pair{Component: "NoSuch", Resource: app.CPU}
	if _, err := p.TrainOnce(0, 0, []app.Pair{bad}, "manual"); err == nil {
		t.Fatal("TrainOnce with unknown pair succeeded")
	}
	if got := genOK.With("manual", "error").Value(); got != 1 {
		t.Fatalf("generations_total{manual,error} = %d, want 1", got)
	}

	// The four windows beyond trainedTo are fresh telemetry: a drift check
	// must run and, drifted or not, touch the counter and gauges.
	p.checkDrift()
	checks := reg.CounterVec("deeprest_drift_checks_total",
		"Drift measurements of the active model against fresh telemetry, by verdict.",
		"drifted")
	if got := checks.With("true").Value() + checks.With("false").Value(); got != 1 {
		t.Fatalf("drift_checks_total = %d, want 1", got)
	}

	// A restarted pipeline recovers the checkpoint and restores the gauge.
	reg2 := obs.NewRegistry()
	opts2 := quickOpts()
	opts2.Metrics = reg2
	p2, err := New(opts2, cfg, sourceOf(store))
	if err != nil {
		t.Fatal(err)
	}
	n, err := p2.Recover()
	if err != nil || n != 1 {
		t.Fatalf("Recover = %d, %v; want 1 generation", n, err)
	}
	ckpt2 := reg2.CounterVec("deeprest_checkpoint_ops_total",
		"Model checkpoint operations by kind (write, recover) and result (ok, error).",
		"op", "result")
	if got := ckpt2.With("recover", "ok").Value(); got != 1 {
		t.Fatalf("checkpoint_ops_total{recover,ok} = %d, want 1", got)
	}
	active2 := reg2.Gauge("deeprest_active_generation",
		"Version of the model generation currently serving queries (0 before the first publish).")
	if got := active2.Value(); got != 1 {
		t.Fatalf("recovered active_generation = %v, want 1", got)
	}
}

func TestUninstrumentedPipelineIsNoOp(t *testing.T) {
	store := toyStore(t, 1, 92)
	p, err := New(quickOpts(), DefaultConfig(), sourceOf(store))
	if err != nil {
		t.Fatal(err)
	}
	// Metrics nil: every handle is a nil no-op; nothing may panic.
	if _, err := p.TrainOnce(0, 0, []app.Pair{cpuPair}, "manual"); err != nil {
		t.Fatal(err)
	}
	p.checkDrift()
}
