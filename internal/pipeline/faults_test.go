package pipeline

import (
	"context"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/faults"
)

func readCheckpointGob(t *testing.T, path string) *checkpointGob {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var g checkpointGob
	if err := gob.NewDecoder(f).Decode(&g); err != nil {
		t.Fatal(err)
	}
	return &g
}

func writeCheckpointGob(t *testing.T, path string, g *checkpointGob) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(f).Encode(g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestInjectedRetrainFailureKeepsLastGood is the graceful-degradation
// contract: while the retrainfail injector makes training attempts fail, the
// previously published generation keeps serving, Status reports the degraded
// state, and the first successful attempt clears it.
func TestInjectedRetrainFailureKeepsLastGood(t *testing.T) {
	store := toyStore(t, 1, 95)
	cfg := DefaultConfig()
	cfg.Faults = faults.NewSchedule(faults.MustParse("retrainfail:from=2,to=4"))
	p, err := New(quickOpts(), cfg, sourceOf(store))
	if err != nil {
		t.Fatal(err)
	}

	g1, err := p.TrainOnce(0, 0, []app.Pair{cpuPair}, "manual") // attempt 1: ok
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 2; attempt <= 3; attempt++ { // attempts 2, 3: injected failure
		_, err := p.TrainOnce(0, 0, nil, "manual")
		if !errors.Is(err, ErrFaultInjected) {
			t.Fatalf("attempt %d: err = %v, want ErrFaultInjected", attempt, err)
		}
		if p.Active() != g1 {
			t.Fatalf("attempt %d: active generation changed during failure", attempt)
		}
		st := p.Status()
		if !st.Degraded || st.ConsecutiveFailures != attempt-1 {
			t.Fatalf("attempt %d: status = degraded %v, consecutive %d",
				attempt, st.Degraded, st.ConsecutiveFailures)
		}
		if !strings.Contains(st.LastError, "injected") {
			t.Fatalf("last error does not name the injection: %q", st.LastError)
		}
	}

	g4, err := p.TrainOnce(0, 0, nil, "manual") // attempt 4: past the fault window
	if err != nil {
		t.Fatal(err)
	}
	if g4.Version != 2 || p.Active() != g4 {
		t.Fatalf("recovery generation = %+v", g4)
	}
	st := p.Status()
	if st.Degraded || st.ConsecutiveFailures != 0 || st.LastError != "" {
		t.Fatalf("status after recovery = %+v", st)
	}
}

// TestScheduledRetrainRetriesWithBackoff: the loop's retrain path retries a
// failed attempt with backoff instead of giving up until the next tick.
func TestScheduledRetrainRetriesWithBackoff(t *testing.T) {
	store := toyStore(t, 1, 96)
	cfg := DefaultConfig()
	cfg.Faults = faults.NewSchedule(faults.MustParse("retrainfail:from=1,to=2")) // only attempt 1 fails
	cfg.MaxRetries = 1
	cfg.RetryBackoff = time.Millisecond
	p, err := New(quickOpts(), cfg, sourceOf(store))
	if err != nil {
		t.Fatal(err)
	}
	p.scheduledRetrain(context.Background(), "scheduled")
	g := p.Active()
	if g == nil || g.Version != 1 {
		t.Fatalf("retry did not publish: active = %+v", g)
	}
	if st := p.Status(); st.Degraded || st.LastError != "" {
		t.Fatalf("status after successful retry = %+v", st)
	}
}

// TestScheduledRetrainExhaustsRetries: when every attempt fails, the loop
// gives up after MaxRetries retries and leaves the failure visible in Status
// without tearing anything down.
func TestScheduledRetrainExhaustsRetries(t *testing.T) {
	store := toyStore(t, 1, 97)
	cfg := DefaultConfig()
	cfg.Faults = faults.NewSchedule(faults.MustParse("retrainfail:from=1")) // open-ended: all fail
	cfg.MaxRetries = 2
	cfg.RetryBackoff = time.Millisecond
	p, err := New(quickOpts(), cfg, sourceOf(store))
	if err != nil {
		t.Fatal(err)
	}
	p.scheduledRetrain(context.Background(), "scheduled")
	if p.Active() != nil {
		t.Fatal("all-failing schedule still published a generation")
	}
	st := p.Status()
	if !st.Degraded || st.ConsecutiveFailures != 3 { // 1 attempt + 2 retries
		t.Fatalf("status = degraded %v, consecutive %d", st.Degraded, st.ConsecutiveFailures)
	}
}

// TestTrainOnceCtxCancelled: a cancelled context abandons the generation
// before any training work and never touches the serving model.
func TestTrainOnceCtxCancelled(t *testing.T) {
	store := toyStore(t, 1, 98)
	p, err := New(quickOpts(), DefaultConfig(), sourceOf(store))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.TrainOnceCtx(ctx, 0, 0, []app.Pair{cpuPair}, "manual"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if p.Active() != nil {
		t.Fatal("cancelled training published a generation")
	}
	// The in-flight slot is released: a live context trains fine afterwards.
	if _, err := p.TrainOnce(0, 0, []app.Pair{cpuPair}, "manual"); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointCorruptionQuarantineAndFallback: the ckptcorrupt injector
// rots a checkpoint on disk after publish; the next recovery quarantines the
// rotten file and falls back to the newest valid generation instead of
// failing outright or silently serving garbage.
func TestCheckpointCorruptionQuarantineAndFallback(t *testing.T) {
	store := toyStore(t, 1, 99)
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.CheckpointDir = dir
	cfg.Faults = faults.NewSchedule(faults.MustParse("ckptcorrupt:from=2,to=3")) // version 2 rots
	p, err := New(quickOpts(), cfg, sourceOf(store))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.TrainOnce(0, 0, []app.Pair{cpuPair}, "manual"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.TrainOnce(0, 0, nil, "scheduled"); err != nil {
		t.Fatal(err) // publish succeeds; the corruption is latent on disk
	}

	// "Restart" with a clean config: recovery must fall back to version 1.
	clean := cfg
	clean.Faults = nil
	p2, err := New(quickOpts(), clean, sourceOf(store))
	if err != nil {
		t.Fatal(err)
	}
	n, err := p2.Recover()
	if err != nil {
		t.Fatalf("fallback recovery failed: %v", err)
	}
	if n != 1 {
		t.Fatalf("recovered %d generations, want 1", n)
	}
	act := p2.Active()
	if act == nil || act.Version != 1 {
		t.Fatalf("active after fallback = %+v", act)
	}
	if q := p2.Registry().Quarantined(); len(q) != 1 || q[0] != "gen-000002.ckpt" {
		t.Fatalf("quarantined = %v", q)
	}
	st := p2.Status()
	if len(st.Quarantined) != 1 || !strings.Contains(st.LastError, "quarantined") {
		t.Fatalf("status does not surface the quarantine: %+v", st)
	}
	// The rotten file was renamed aside, not deleted: the damage stays
	// inspectable, and the next recovery does not trip over it.
	if _, err := os.Stat(filepath.Join(dir, "gen-000002.ckpt.corrupt")); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "gen-000002.ckpt")); !os.IsNotExist(err) {
		t.Fatalf("rotten checkpoint still under its original name: %v", err)
	}
}

// TestChecksumCatchesModelByteRot: corruption confined to the model bytes
// decodes as perfectly valid gob; only the checksum catches it.
func TestChecksumCatchesModelByteRot(t *testing.T) {
	store := toyStore(t, 1, 90)
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.CheckpointDir = dir
	p, err := New(quickOpts(), cfg, sourceOf(store))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.TrainOnce(0, 0, []app.Pair{cpuPair}, "manual"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "gen-000001.ckpt")
	// Re-encode the checkpoint with flipped model bytes but everything else
	// intact — gob-valid, semantically rotten.
	rotModelBytes(t, path)

	p2, err := New(quickOpts(), cfg, sourceOf(store))
	if err != nil {
		t.Fatal(err)
	}
	n, err := p2.Recover()
	if err == nil || !strings.Contains(err.Error(), "corrupt checkpoint") {
		t.Fatalf("checksum mismatch not reported: n=%d err=%v", n, err)
	}
}

// rotModelBytes flips a byte inside the encoded Model field while keeping
// the checkpoint gob-decodable, then rewrites the file.
func rotModelBytes(t *testing.T, path string) {
	t.Helper()
	g := readCheckpointGob(t, path)
	if len(g.Model) == 0 {
		t.Fatal("checkpoint has no model bytes")
	}
	g.Model[len(g.Model)/2] ^= 0x01
	writeCheckpointGob(t, path, g)
}
