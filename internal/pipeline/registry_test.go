package pipeline

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/app"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/testutil"
)

func TestRegistryBoundedHistory(t *testing.T) {
	store := toyStore(t, 1, 91)
	cfg := DefaultConfig()
	cfg.MaxHistory = 2
	p, err := New(quickOpts(), cfg, sourceOf(store))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.TrainOnce(0, 0, []app.Pair{cpuPair}, "manual"); err != nil {
			t.Fatal(err)
		}
	}
	gens := p.Registry().Generations()
	if len(gens) != 2 || gens[0].Version != 2 || gens[1].Version != 3 {
		t.Fatalf("retained versions = %v", versions(gens))
	}
	if _, err := p.Registry().Activate(1); err == nil {
		t.Fatal("evicted version still activatable")
	}
	// The active generation survives eviction even when it is the oldest.
	if _, err := p.Registry().Activate(2); err != nil {
		t.Fatal(err)
	}
	if _, err := p.TrainOnce(0, 0, nil, "scheduled"); err != nil {
		t.Fatal(err)
	}
	got := versions(p.Registry().Generations())
	if len(got) != 2 || got[len(got)-1] != 4 {
		t.Fatalf("versions after publish over rollback = %v", got)
	}
}

func versions(gens []*Generation) []int {
	out := make([]int, len(gens))
	for i, g := range gens {
		out[i] = g.Version
	}
	return out
}

// TestCheckpointRestartRoundTrip is the acceptance path: registry save →
// process restart (fresh registry) → load → Predict produces byte-identical
// estimates.
func TestCheckpointRestartRoundTrip(t *testing.T) {
	store := toyStore(t, 1, 92)
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.CheckpointDir = dir
	p, err := New(quickOpts(), cfg, sourceOf(store))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.TrainOnce(0, 0, []app.Pair{cpuPair}, "manual"); err != nil {
		t.Fatal(err)
	}
	g2, err := p.TrainOnce(0, 0, nil, "scheduled")
	if err != nil {
		t.Fatal(err)
	}
	windows, err := store.Traces(0, store.NumWindows())
	if err != nil {
		t.Fatal(err)
	}
	want, err := g2.Model().Predict(windows)
	if err != nil {
		t.Fatal(err)
	}

	// "Restart": a brand-new pipeline over the same checkpoint dir.
	p2, err := New(quickOpts(), cfg, sourceOf(store))
	if err != nil {
		t.Fatal(err)
	}
	n, err := p2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("recovered %d generations, want 2", n)
	}
	act := p2.Active()
	if act == nil || act.Version != 2 || act.Trigger != "recovered" {
		t.Fatalf("active after recover = %+v", act)
	}
	if p2.Status().TrainedTo != store.NumWindows() {
		t.Fatalf("trainedTo after recover = %d", p2.Status().TrainedTo)
	}
	got, err := act.Model().Predict(windows)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("pair count %d != %d", len(got), len(want))
	}
	for pr, w := range want {
		g := got[pr]
		for i := range w.Exp {
			if g.Exp[i] != w.Exp[i] || g.Low[i] != w.Low[i] || g.Up[i] != w.Up[i] {
				t.Fatalf("%s window %d: recovered estimate differs (%v vs %v)", pr, i, g.Exp[i], w.Exp[i])
			}
		}
	}
	// Rollback still works across the restart, and the version counter
	// resumes past the recovered generations.
	if _, err := p2.Registry().Activate(1); err != nil {
		t.Fatal(err)
	}
	g3, err := p2.TrainOnce(0, 0, []app.Pair{cpuPair}, "manual")
	if err != nil {
		t.Fatal(err)
	}
	if g3.Version != 3 {
		t.Fatalf("post-recover version = %d, want 3", g3.Version)
	}
}

// TestScheduledRetrainAfterRebasedStore: after a restart the telemetry
// store restarts at window zero, so the recovered trained-to mark can
// exceed the store size. The loop must rebase instead of stalling until
// the old window count is reached again.
func TestScheduledRetrainAfterRebasedStore(t *testing.T) {
	store := toyStore(t, 1, 94)
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.CheckpointDir = dir
	p, err := New(quickOpts(), cfg, sourceOf(store))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.TrainOnce(0, 0, []app.Pair{cpuPair}, "manual"); err != nil {
		t.Fatal(err)
	}

	// "Restart": only part of the history gets re-ingested.
	_, _, run := testutil.ToyTelemetry(t, 1, 30, 94)
	small := telemetry.NewServer(run.WindowSeconds)
	record := func(w int) {
		usage := make(sim.Usage, len(run.Usage))
		for pr, series := range run.Usage {
			usage[pr] = series[w]
		}
		small.Record(sim.WindowResult{Batches: run.Windows[w], Usage: usage})
	}
	for w := 0; w < 20; w++ {
		record(w)
	}
	p2, err := New(quickOpts(), cfg, sourceOf(small))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Recover(); err != nil {
		t.Fatal(err)
	}
	if p2.Status().TrainedTo <= small.NumWindows() {
		t.Fatalf("precondition: recovered mark %d should exceed store %d",
			p2.Status().TrainedTo, small.NumWindows())
	}

	// Re-ingested history alone is not "fresh": no retrain, but the mark
	// rebases to the store size instead of stalling at the old count.
	p2.scheduledRetrain(context.Background(), "scheduled")
	if got := len(p2.Registry().Generations()); got != 1 {
		t.Fatalf("retrained on re-ingested history: %d generations", got)
	}
	if p2.Status().TrainedTo != small.NumWindows() {
		t.Fatalf("trainedTo = %d, want rebased to %d", p2.Status().TrainedTo, small.NumWindows())
	}

	// One genuinely fresh window re-arms the loop.
	record(20)
	p2.scheduledRetrain(context.Background(), "scheduled")
	if got := len(p2.Registry().Generations()); got != 2 {
		t.Fatalf("fresh window did not trigger a retrain: %d generations", got)
	}
	if p2.Status().TrainedTo != small.NumWindows() {
		t.Fatalf("trainedTo after retrain = %d, want %d", p2.Status().TrainedTo, small.NumWindows())
	}
}

func TestCorruptCheckpointFailsLoudly(t *testing.T) {
	store := toyStore(t, 1, 93)
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.CheckpointDir = dir
	p, err := New(quickOpts(), cfg, sourceOf(store))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.TrainOnce(0, 0, []app.Pair{cpuPair}, "manual"); err != nil {
		t.Fatal(err)
	}
	paths, _ := filepath.Glob(filepath.Join(dir, "gen-*.ckpt"))
	if len(paths) != 1 {
		t.Fatalf("checkpoints on disk = %v", paths)
	}

	corrupt := func(t *testing.T, mutate func(string)) {
		t.Helper()
		data, err := os.ReadFile(paths[0])
		if err != nil {
			t.Fatal(err)
		}
		defer os.WriteFile(paths[0], data, 0o644) // restore for the next case
		mutate(paths[0])
		p2, err := New(quickOpts(), cfg, sourceOf(store))
		if err != nil {
			t.Fatal(err)
		}
		n, err := p2.Recover()
		if err == nil {
			t.Fatal("corrupt checkpoint recovered without error")
		}
		if !strings.Contains(err.Error(), "corrupt checkpoint") {
			t.Fatalf("error does not name the corruption: %v", err)
		}
		if n != 0 || p2.Active() != nil {
			t.Fatal("corrupt recovery half-activated a model")
		}
	}

	t.Run("garbage", func(t *testing.T) {
		corrupt(t, func(path string) {
			if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
				t.Fatal(err)
			}
		})
	})
	t.Run("truncated", func(t *testing.T) {
		corrupt(t, func(path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		})
	})
}
