// Package pipeline is the continuous-learning orchestrator that converts
// DeepRest from a batch trainer into a long-running training/inference
// service (the deployment the paper envisions in §1 and §7: the model keeps
// learning as traffic evolves, while serving estimates the whole time).
//
// The pipeline owns the model lifecycle end to end:
//
//   - a background loop retrains on a configurable cadence over a sliding
//     window of the most recent telemetry, warm-starting each generation
//     from the previous one (internal/estimator transfer machinery);
//   - a drift detector (internal/drift) is evaluated on the telemetry that
//     arrived since the last training run and triggers an early retrain when
//     the model's estimates stop explaining the measurements;
//   - every trained generation is published into a versioned Registry with
//     bounded history, optional checkpoints on disk, and rollback;
//   - serving reads go through Registry.Active — an RCU-style atomic
//     snapshot — so estimate and sanity queries never block on training and
//     never observe a half-swapped model.
//
// The loop is context-cancellable: Stop cancels in-flight waits and joins
// the background goroutine before returning.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"strconv"
	"sync"
	"time"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/estimator"
	"repro/internal/faults"
	"repro/internal/features"
	"repro/internal/obs"
	"repro/internal/trace"
)

// ErrTrainingInFlight is returned when a training run is requested while a
// previous generation is still training. The HTTP layer maps it to
// 409 Conflict.
var ErrTrainingInFlight = errors.New("pipeline: a training generation is already in flight")

// ErrFaultInjected is the failure produced by a retrainfail injector in the
// configured fault schedule. It exists so tests (and operators reading
// Status.LastError) can tell an injected failure from an organic one.
var ErrFaultInjected = errors.New("pipeline: training failure injected by fault schedule")

// Source supplies telemetry to train and drift-check over.
// *telemetry.Server satisfies it.
type Source interface {
	NumWindows() int
	Traces(from, to int) ([][]trace.Batch, error)
	Metrics(from, to int) (map[app.Pair][]float64, error)
}

// BoundedSource is an optional Source extension for retention-bounded
// stores: OldestWindow is the first window index still resident. The
// pipeline clamps training and drift ranges to it so a sliding window wider
// than the retention horizon degrades to "all resident telemetry" instead
// of erroring forever.
type BoundedSource interface {
	OldestWindow() int
}

// FeatureSource is an optional Source extension for stores that cache
// per-window feature vectors (telemetry.Server). After every publish the
// pipeline installs the new generation's extractor so ingestion extracts
// each window exactly once, and drift checks read the cached vectors
// instead of re-walking trace trees.
type FeatureSource interface {
	SetExtractor(gen int, fn func([]trace.Batch) features.Vector)
	Features(gen int, fn func([]trace.Batch) features.Vector, from, to int) ([]features.Vector, error)
}

// oldestWindow returns the source's retention floor (0 for unbounded
// stores).
func oldestWindow(src Source) int {
	if b, ok := src.(BoundedSource); ok {
		return b.OldestWindow()
	}
	return 0
}

// Config tunes the continuous-learning loop. Start from DefaultConfig.
type Config struct {
	// Interval is the scheduled retraining cadence.
	Interval time.Duration
	// DriftEvery is the drift-check cadence (usually a fraction of
	// Interval so drift can cut a retrain wait short).
	DriftEvery time.Duration
	// Window bounds the sliding training window to the most recent N
	// telemetry windows; 0 trains over the whole history.
	Window int
	// MinNewWindows is how many fresh telemetry windows must have arrived
	// since the last training run before a scheduled retrain fires.
	MinNewWindows int
	// MinDriftWindows is how many fresh windows the drift check needs
	// before it produces a meaningful signal.
	MinDriftWindows int
	// WarmStart seeds each generation from the previous one's parameters.
	WarmStart bool
	// MaxHistory bounds the registry (minimum 2).
	MaxHistory int
	// CheckpointDir enables on-disk checkpoints when non-empty.
	CheckpointDir string
	// MaxRetries bounds how many times a failed scheduled/drift retrain is
	// retried before the loop gives up until the next tick (default 2).
	// Manual TrainOnce calls are never retried: the caller gets the error.
	MaxRetries int
	// RetryBackoff is the initial delay before the first retry; it doubles
	// after every failed attempt (default 1s).
	RetryBackoff time.Duration
	// Faults, when non-nil, injects deterministic control-plane failures:
	// retrainfail makes training attempts fail, ckptcorrupt rots checkpoint
	// files after a successful write. Nil disables injection.
	Faults *faults.Schedule
	// Drift overrides the drift detector thresholds; nil uses defaults.
	Drift *drift.Detector
	// BeforeTrain, when non-nil, runs after a training slot is acquired
	// and before training starts — an observability hook, also used by
	// tests to hold a generation in flight deterministically.
	BeforeTrain func()
	// OnGeneration, when non-nil, is called after each generation is
	// published.
	OnGeneration func(*Generation)
	// QualityCheck, when non-nil, is polled on every drift tick after the
	// drift verdict: returning true (with a human-readable reason)
	// triggers an early retrain with trigger "quality". The service layer
	// wires this to the shadow-scoring regression gate
	// (internal/quality.Scorer.Regressed) — the hook indirection keeps
	// quality from importing pipeline and vice versa.
	QualityCheck func() (bool, string)
}

// DefaultConfig returns the production defaults: retrain every 15 minutes
// over the most recent day of one-minute windows, drift-check four times
// per cadence, warm-start, keep 4 generations.
func DefaultConfig() Config {
	return Config{
		Interval:        15 * time.Minute,
		DriftEvery:      0, // derived: Interval / 4
		Window:          0,
		MinNewWindows:   1,
		MinDriftWindows: 8,
		WarmStart:       true,
		MaxHistory:      4,
		MaxRetries:      2,
		RetryBackoff:    time.Second,
	}
}

// Pipeline orchestrates training generations against a telemetry source
// and publishes them into its Registry.
type Pipeline struct {
	opts   core.Options
	cfg    Config
	det    *drift.Detector
	reg    *Registry
	source func() Source
	log    *slog.Logger // nil = no structured logging

	// Self-instrumentation (all handles nil-safe no-ops when
	// core.Options.Metrics is nil).
	genDur        *obs.HistogramVec // generation train+publish duration, by trigger
	genTotal      *obs.CounterVec   // generations by trigger and result
	genRetries    *obs.CounterVec   // retrain retry attempts, by trigger
	degradedGauge *obs.Gauge        // 1 while serving last-good through failures
	consecFailsG  *obs.Gauge        // consecutive training failures
	driftChecks   *obs.CounterVec   // drift measurements, by verdict
	driftScore    *obs.Gauge        // mean MAPE of the last drift check
	driftCoverage *obs.Gauge        // interval coverage of the last drift check
	driftUnknown  *obs.Gauge        // unknown-path fraction of the last drift check

	mu          sync.Mutex
	inFlight    bool
	pairs       []app.Pair // pair restriction of the last manual learn
	trainedTo   int        // store index the latest generation trained up to
	lastErr     string
	lastDrift   *drift.Signal
	lastQuality string // reason of the last quality-gate regression
	attempts    int    // lifetime training attempts, feeds the retrainfail injector
	consecFails int    // training failures since the last successful publish
	running     bool
	cancel      context.CancelFunc
	done        chan struct{}
}

// New builds a pipeline over a telemetry source. The source getter is
// called lazily (the telemetry store may not exist until first ingest) and
// may return nil while no telemetry has arrived.
func New(opts core.Options, cfg Config, source func() Source) (*Pipeline, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultConfig().Interval
	}
	if cfg.DriftEvery <= 0 {
		cfg.DriftEvery = cfg.Interval / 4
	}
	if cfg.MinDriftWindows <= 0 {
		cfg.MinDriftWindows = DefaultConfig().MinDriftWindows
	}
	if cfg.MaxHistory <= 0 {
		cfg.MaxHistory = DefaultConfig().MaxHistory
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = DefaultConfig().RetryBackoff
	}
	det := cfg.Drift
	if det == nil {
		det = drift.NewDetector()
	}
	reg, err := NewRegistry(cfg.MaxHistory, cfg.CheckpointDir)
	if err != nil {
		return nil, err
	}
	reg.instrument(opts.Metrics)
	reg.injected = cfg.Faults
	reg.tracer = opts.Tracer
	p := &Pipeline{opts: opts, cfg: cfg, det: det, reg: reg, source: source, log: opts.Logger}
	if m := opts.Metrics; m != nil {
		p.genDur = m.HistogramVec("deeprest_pipeline_generation_seconds",
			"Wall-clock duration of one training generation, train through publish.",
			obs.DurationBuckets, "trigger")
		p.genTotal = m.CounterVec("deeprest_pipeline_generations_total",
			"Training generations by trigger (manual, scheduled, drift) and result (ok, error).",
			"trigger", "result")
		p.genRetries = m.CounterVec("deeprest_pipeline_retries_total",
			"Retry attempts after a failed scheduled or drift retrain, by trigger.",
			"trigger")
		p.degradedGauge = m.Gauge("deeprest_pipeline_degraded",
			"1 while the pipeline is degraded (training is failing and queries are served from the last good generation), else 0.")
		p.consecFailsG = m.Gauge("deeprest_pipeline_consecutive_failures",
			"Training failures since the last successfully published generation.")
		p.driftChecks = m.CounterVec("deeprest_drift_checks_total",
			"Drift measurements of the active model against fresh telemetry, by verdict.",
			"drifted")
		p.driftScore = m.Gauge("deeprest_drift_score",
			"Mean MAPE (percent) of the active model on fresh telemetry at the last drift check.")
		p.driftCoverage = m.Gauge("deeprest_drift_coverage",
			"Fraction of fresh observations inside the model's confidence interval at the last drift check.")
		p.driftUnknown = m.Gauge("deeprest_drift_unknown_path_frac",
			"Fraction of span visits on invocation paths unknown to the model at the last drift check.")
	}
	return p, nil
}

// info logs through the configured structured logger; a nil logger drops the
// line (the pipeline is used headless in tests and library embeddings).
func (p *Pipeline) info(msg string, args ...interface{}) {
	if p.log != nil {
		p.log.Info(msg, args...)
	}
}

func (p *Pipeline) warn(msg string, args ...interface{}) {
	if p.log != nil {
		p.log.Warn(msg, args...)
	}
}

// Registry exposes the versioned model store.
func (p *Pipeline) Registry() *Registry { return p.reg }

// Active is shorthand for the serving generation (nil before the first
// training run).
func (p *Pipeline) Active() *Generation { return p.reg.Active() }

// Status is a point-in-time snapshot of the pipeline state.
type Status struct {
	Running       bool          `json:"running"`
	InFlight      bool          `json:"training_in_flight"`
	ActiveVersion int           `json:"active_version,omitempty"`
	Generations   int           `json:"generations"`
	TrainedTo     int           `json:"trained_to_window"`
	LastError     string        `json:"last_error,omitempty"`
	LastDrift     *drift.Signal `json:"last_drift,omitempty"`
	// LastQuality carries the most recent shadow-scoring regression that
	// triggered (or is about to trigger) an early retrain.
	LastQuality string `json:"last_quality_regression,omitempty"`
	// ConsecutiveFailures counts training failures since the last
	// successful publish; Degraded is true while that count is non-zero,
	// meaning queries are being answered from the last good generation.
	ConsecutiveFailures int  `json:"consecutive_failures,omitempty"`
	Degraded            bool `json:"degraded,omitempty"`
	// Quarantined lists checkpoint files set aside as corrupt at recovery.
	Quarantined []string `json:"quarantined_checkpoints,omitempty"`
}

// Status reports the pipeline state.
func (p *Pipeline) Status() Status {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := Status{
		Running:             p.running,
		InFlight:            p.inFlight,
		Generations:         len(p.reg.Generations()),
		TrainedTo:           p.trainedTo,
		LastError:           p.lastErr,
		LastDrift:           p.lastDrift,
		LastQuality:         p.lastQuality,
		ConsecutiveFailures: p.consecFails,
		Degraded:            p.consecFails > 0,
		Quarantined:         p.reg.Quarantined(),
	}
	if g := p.reg.Active(); g != nil {
		st.ActiveVersion = g.Version
	}
	return st
}

// Degraded reports whether training is currently failing while the service
// keeps answering from the last good generation.
func (p *Pipeline) Degraded() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.consecFails > 0
}

// DriftEvery reports the resolved drift-check cadence (useful when the
// config left it to be derived from the retrain interval).
func (p *Pipeline) DriftEvery() time.Duration { return p.cfg.DriftEvery }

// Running reports whether the background loop is live.
func (p *Pipeline) Running() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.running
}

// TrainOnce trains and publishes one generation over store windows
// [from, to); to <= 0 means "up to the newest window". A "manual" trigger
// records the pair restriction for subsequent scheduled retrains. Only one
// generation trains at a time: concurrent calls fail fast with
// ErrTrainingInFlight instead of queueing behind a long training run.
func (p *Pipeline) TrainOnce(from, to int, pairs []app.Pair, trigger string) (*Generation, error) {
	return p.TrainOnceCtx(context.Background(), from, to, pairs, trigger)
}

// TrainOnceCtx is TrainOnce with cancellation: the context is checked at
// phase boundaries (before fetching telemetry and before publishing), so a
// cancelled request abandons the generation without publishing a
// half-trained model. The serving generation is untouched on any failure.
func (p *Pipeline) TrainOnceCtx(ctx context.Context, from, to int, pairs []app.Pair, trigger string) (*Generation, error) {
	src := p.source()
	if src == nil {
		return nil, fmt.Errorf("pipeline: no telemetry ingested")
	}
	if to <= 0 {
		to = src.NumWindows()
	}
	// Clamp to the retention horizon: on a bounded store, "from the
	// beginning" (and any sliding window wider than the horizon) means
	// "from the oldest resident window".
	if o := oldestWindow(src); from < o {
		from = o
	}

	p.mu.Lock()
	if p.inFlight {
		p.mu.Unlock()
		return nil, ErrTrainingInFlight
	}
	p.inFlight = true
	p.attempts++
	attempt := p.attempts
	if trigger == "manual" {
		p.pairs = pairs
	} else if pairs == nil {
		pairs = p.pairs
	}
	var warm estimator.WarmStart
	prevWarm := false
	if p.cfg.WarmStart {
		if g := p.reg.Active(); g != nil {
			warm = estimator.FromModel(g.Model())
			prevWarm = true
		}
	}
	p.mu.Unlock()

	start := time.Now()
	tctx, span := p.opts.Tracer.Start(ctx, "pipeline.train")
	span.SetWindows(to - from)
	gen, err := p.train(tctx, src, from, to, pairs, trigger, warm, prevWarm, attempt)
	span.SetErr(err)
	span.End()
	elapsed := time.Since(start)

	p.mu.Lock()
	p.inFlight = false
	if err != nil {
		p.lastErr = err.Error()
		p.consecFails++
	} else {
		p.lastErr = ""
		p.trainedTo = to
		p.lastDrift = nil // the new generation resets the drift signal
		p.consecFails = 0
	}
	degraded := p.consecFails
	p.mu.Unlock()
	p.consecFailsG.Set(float64(degraded))
	if degraded > 0 {
		p.degradedGauge.Set(1)
	} else {
		p.degradedGauge.Set(0)
	}

	p.genDur.With(trigger).Observe(elapsed.Seconds())
	if err != nil {
		p.genTotal.With(trigger, "error").Inc()
		p.warn("training generation failed",
			"trigger", trigger, "from", from, "to", to,
			"duration", elapsed, "error", err, "span_id", obs.SpanID(tctx))
	} else {
		p.genTotal.With(trigger, "ok").Inc()
		p.info("generation published",
			"version", gen.Version, "trigger", trigger,
			"from", gen.From, "to", gen.To, "experts", gen.Experts(),
			"warm_started", gen.Warm, "duration", elapsed,
			"span_id", obs.SpanID(tctx))
	}

	if err == nil && p.cfg.OnGeneration != nil {
		p.cfg.OnGeneration(gen)
	}
	return gen, err
}

// train runs one training generation. The in-flight slot is already held.
func (p *Pipeline) train(ctx context.Context, src Source, from, to int, pairs []app.Pair, trigger string, warm estimator.WarmStart, warmed bool, attempt int) (*Generation, error) {
	if p.cfg.BeforeTrain != nil {
		p.cfg.BeforeTrain()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pipeline: training cancelled: %w", err)
	}
	if p.cfg.Faults.FailTraining(attempt) {
		return nil, fmt.Errorf("%w (attempt %d)", ErrFaultInjected, attempt)
	}
	windows, err := src.Traces(from, to)
	if err != nil {
		return nil, fmt.Errorf("pipeline: fetch traces: %w", err)
	}
	usage, err := src.Metrics(from, to)
	if err != nil {
		return nil, fmt.Errorf("pipeline: fetch metrics: %w", err)
	}
	if len(pairs) > 0 {
		sub := make(map[app.Pair][]float64, len(pairs))
		for _, pr := range pairs {
			s, ok := usage[pr]
			if !ok {
				return nil, fmt.Errorf("pipeline: no metric recorded for %s", pr)
			}
			sub[pr] = s
		}
		usage = sub
	}
	sys, err := core.LearnFromDataWarm(windows, usage, p.opts, warm)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pipeline: training cancelled before publish: %w", err)
	}
	g := &Generation{Trigger: trigger, From: from, To: to, Warm: warmed, System: sys}
	pub, err := p.reg.Publish(ctx, g)
	if err != nil {
		return nil, err
	}
	// Swap the ingestion-time feature extractor to the new generation's
	// space: windows recorded from here on are extracted once, at Record
	// time, and cached vectors of the old space lazily invalidate on read.
	if fs, ok := src.(FeatureSource); ok {
		fs.SetExtractor(pub.Version, pub.System.Extractor())
	}
	return pub, nil
}

// slidingFrom maps "train up to n" to the configured sliding-window start.
func (p *Pipeline) slidingFrom(n int) int {
	if p.cfg.Window > 0 && n > p.cfg.Window {
		return n - p.cfg.Window
	}
	return 0
}

// Recover loads checkpointed generations from the configured directory
// (process restart). Each recovered model is wrapped in a System whose
// synthesizer is re-learned from whatever telemetry the source currently
// holds; sanity-check serving works immediately, traffic queries once
// telemetry for the relevant APIs is ingested again.
func (p *Pipeline) Recover() (int, error) {
	src := p.source()
	var windows [][]trace.Batch
	if src != nil {
		if w, err := src.Traces(oldestWindow(src), src.NumWindows()); err == nil {
			windows = w
		}
	}
	n, err := p.reg.Recover(func(m *estimator.Model) *core.System {
		return core.Restore(m, windows, p.opts)
	})
	if g := p.reg.Active(); g != nil {
		if fs, ok := src.(FeatureSource); ok {
			fs.SetExtractor(g.Version, g.System.Extractor())
		}
	}
	if q := p.reg.Quarantined(); len(q) > 0 {
		p.warn("corrupt checkpoints quarantined during recovery",
			"files", q, "recovered", n)
		p.mu.Lock()
		p.lastErr = fmt.Sprintf("quarantined corrupt checkpoint(s): %v", q)
		p.mu.Unlock()
	}
	if err != nil || n == 0 {
		return n, err
	}
	p.mu.Lock()
	if g := p.reg.Active(); g != nil && g.To > p.trainedTo {
		p.trainedTo = g.To
	}
	p.mu.Unlock()
	return n, nil
}

// Start launches the background retraining loop. It fails if the loop is
// already running. Stop (or cancelling the daemon's context) shuts it down
// cleanly.
func (p *Pipeline) Start() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.running {
		return fmt.Errorf("pipeline: already running")
	}
	ctx, cancel := context.WithCancel(context.Background())
	p.running = true
	p.cancel = cancel
	p.done = make(chan struct{})
	go p.loop(ctx, p.done)
	return nil
}

// Stop cancels the background loop and waits for it to exit. Idempotent.
// An in-flight training generation finishes (training is not preemptible
// mid-epoch) but no further generation is scheduled.
func (p *Pipeline) Stop() {
	p.mu.Lock()
	if !p.running {
		p.mu.Unlock()
		return
	}
	cancel, done := p.cancel, p.done
	p.mu.Unlock()
	cancel()
	<-done
	p.mu.Lock()
	p.running = false
	p.cancel, p.done = nil, nil
	p.mu.Unlock()
}

func (p *Pipeline) loop(ctx context.Context, done chan struct{}) {
	defer close(done)
	retrain := time.NewTicker(p.cfg.Interval)
	defer retrain.Stop()
	driftTick := time.NewTicker(p.cfg.DriftEvery)
	defer driftTick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-retrain.C:
			p.TickScheduled(ctx)
		case <-driftTick.C:
			p.TickDrift(ctx)
		}
	}
}

// TickScheduled runs one scheduled-retrain check: retrain over the sliding
// window if enough fresh telemetry arrived, else do nothing. It is the body
// of the internal loop's retrain tick, exported so an external scheduler
// (internal/fleet) can drive N pipelines from one bounded worker pool
// instead of N background loops.
func (p *Pipeline) TickScheduled(ctx context.Context) { p.scheduledRetrain(ctx, "scheduled") }

// TickDrift runs one drift/quality check, retraining early when either gate
// fires — the body of the internal loop's drift tick, exported for external
// schedulers like TickScheduled.
func (p *Pipeline) TickDrift(ctx context.Context) {
	if p.checkDrift() {
		p.scheduledRetrain(ctx, "drift")
	} else if p.checkQuality() {
		p.scheduledRetrain(ctx, "quality")
	}
}

// Interval reports the resolved scheduled-retrain cadence, the companion of
// DriftEvery for external schedulers.
func (p *Pipeline) Interval() time.Duration { return p.cfg.Interval }

// rebaseTrainedTo returns the high-water mark of trained windows, clamped
// to the store size. After a restart the recovered mark can exceed the
// rebuilt (re-ingested) store, whose window indices restart at zero; without
// the clamp the loop would wait for the old count to be passed again and
// silently stall. Clamping treats the re-ingested history as already
// covered, so the next genuinely fresh window re-arms the loop.
func (p *Pipeline) rebaseTrainedTo(n int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.trainedTo > n {
		p.trainedTo = n
	}
	return p.trainedTo
}

// scheduledRetrain retrains over the sliding window when enough fresh
// telemetry has arrived. Errors (including a manual learn holding the
// training slot) are recorded in Status, never fatal to the loop. A failed
// attempt is retried up to MaxRetries times with doubling backoff; while
// failures persist the pipeline is degraded — queries keep being served
// from the last good generation.
func (p *Pipeline) scheduledRetrain(ctx context.Context, trigger string) {
	src := p.source()
	if src == nil {
		return
	}
	n := src.NumWindows()
	trainedTo := p.rebaseTrainedTo(n)
	minNew := p.cfg.MinNewWindows
	if trigger == "drift" || trigger == "quality" {
		minNew = 1 // the drift/quality gate already decided fresh data warrants it
	}
	if n == 0 || (p.reg.Active() != nil && n-trainedTo < minNew) {
		return
	}
	backoff := p.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		_, err := p.TrainOnceCtx(ctx, p.slidingFrom(n), n, nil, trigger)
		if err == nil || errors.Is(err, ErrTrainingInFlight) {
			// A manual learn holding the slot is not a training failure;
			// the next tick will pick the fresh windows up.
			return
		}
		p.mu.Lock()
		p.lastErr = err.Error()
		p.mu.Unlock()
		if attempt >= p.cfg.MaxRetries || ctx.Err() != nil {
			p.warn("retrain failed; serving last good generation until next tick",
				"trigger", trigger, "attempts", attempt+1, "error", err)
			return
		}
		p.genRetries.With(trigger).Inc()
		p.info("retrain failed; backing off before retry",
			"trigger", trigger, "attempt", attempt+1, "backoff", backoff, "error", err)
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		backoff *= 2
	}
}

// TrainingInFlight reports whether a training generation is currently in
// flight. The HTTP layer uses it to refuse serving swaps mid-learn.
func (p *Pipeline) TrainingInFlight() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inFlight
}

// checkQuality polls the shadow-scoring regression gate (when configured)
// and reports whether a quality-triggered retrain should fire.
func (p *Pipeline) checkQuality() bool {
	if p.cfg.QualityCheck == nil || p.reg.Active() == nil {
		return false
	}
	bad, reason := p.cfg.QualityCheck()
	if !bad {
		return false
	}
	p.mu.Lock()
	p.lastQuality = reason
	p.mu.Unlock()
	p.warn("prediction quality regressed; scheduling early retrain", "reason", reason)
	return true
}

// checkDrift measures the active model against the telemetry that arrived
// since the last training run and reports whether an early retrain should
// fire.
func (p *Pipeline) checkDrift() bool {
	src := p.source()
	g := p.reg.Active()
	if src == nil || g == nil {
		return false
	}
	n := src.NumWindows()
	from := p.rebaseTrainedTo(n)
	if o := oldestWindow(src); from < o {
		from = o
	}
	if n-from < p.cfg.MinDriftWindows {
		return false
	}
	usage, err := src.Metrics(from, n)
	if err != nil {
		return false
	}
	var sig drift.Signal
	if fs, ok := src.(FeatureSource); ok {
		// Retention-aware store: score the cached per-window vectors
		// instead of re-walking every trace tree on every drift tick.
		series, ferr := fs.Features(g.Version, g.System.Extractor(), from, n)
		if ferr != nil {
			return false
		}
		sig, err = p.det.MeasureVectors(g.Model(), series, usage)
	} else {
		var windows [][]trace.Batch
		if windows, err = src.Traces(from, n); err != nil {
			return false
		}
		sig, err = p.det.Measure(g.Model(), windows, usage)
	}
	if err != nil {
		p.mu.Lock()
		p.lastErr = err.Error()
		p.mu.Unlock()
		return false
	}
	p.mu.Lock()
	p.lastDrift = &sig
	p.mu.Unlock()
	p.driftChecks.With(strconv.FormatBool(sig.Drifted)).Inc()
	p.driftScore.Set(sig.MeanMAPE)
	p.driftCoverage.Set(sig.Coverage)
	p.driftUnknown.Set(sig.UnknownPathFrac)
	if sig.Drifted {
		p.warn("drift detected; scheduling early retrain",
			"reason", sig.Reason, "windows", sig.Windows,
			"mean_mape", sig.MeanMAPE, "coverage", sig.Coverage,
			"unknown_path_frac", sig.UnknownPathFrac)
	}
	return sig.Drifted
}
