package pipeline

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/faults"
	"repro/internal/obs"
)

// Generation is one published model version. A Generation is immutable
// after Publish: serving reads grab the active pointer once and use it for
// the whole request, so a request never observes experts from two
// generations.
type Generation struct {
	// Version is the registry-assigned, monotonically increasing id.
	Version int
	// Trigger records what caused the training run: "manual", "scheduled",
	// "drift", or "recovered" (loaded from a checkpoint at startup).
	Trigger string
	// From and To bound the telemetry windows trained over, [From, To).
	From, To int
	// Warm reports whether the generation warm-started from its
	// predecessor's parameters.
	Warm bool
	// TrainedAt stamps the publication time.
	TrainedAt time.Time
	// System is the learned DeepRest instance serving this generation.
	System *core.System
}

// Model is a convenience accessor for the generation's estimator.
func (g *Generation) Model() *estimator.Model { return g.System.Model() }

// Experts returns the number of trained experts.
func (g *Generation) Experts() int { return len(g.System.Pairs()) }

// Registry is the versioned model store at the heart of the
// continuous-learning pipeline: it owns every live generation, keeps a
// bounded history for rollback, checkpoints each generation to disk when
// configured, and publishes the serving model through an RCU-style atomic
// pointer — readers call Active with no lock and no waiting, writers swap
// the pointer only after a generation is fully built.
type Registry struct {
	active atomic.Pointer[Generation]

	// Nil-safe instrumentation handles (see instrument).
	activeGen *obs.Gauge
	ckptOps   *obs.CounterVec

	mu          sync.Mutex
	gens        []*Generation // ascending by version
	max         int
	dir         string
	next        int
	quarantined []string // checkpoint files set aside as corrupt at recovery

	// injected is the fault schedule rotting checkpoints after write
	// (nil in production; see faults.CkptCorrupt).
	injected *faults.Schedule

	// tracer records checkpoint/swap stage spans (nil-safe no-op).
	tracer *obs.SpanTracer
}

// instrument registers the registry's metrics: the serving generation
// version and checkpoint write/recover outcomes. A nil obs registry leaves
// the handles as no-ops.
func (r *Registry) instrument(m *obs.Registry) {
	if m == nil {
		return
	}
	r.activeGen = m.Gauge("deeprest_active_generation",
		"Version of the model generation currently serving queries (0 before the first publish).")
	r.ckptOps = m.CounterVec("deeprest_checkpoint_ops_total",
		"Model checkpoint operations by kind (write, recover) and result (ok, error).",
		"op", "result")
}

// NewRegistry returns a registry keeping at most maxHistory generations
// (minimum 2, so rollback always has a target). A non-empty dir enables
// checkpointing: every published generation is written to
// dir/gen-NNNNNN.ckpt and evicted generations are deleted.
func NewRegistry(maxHistory int, dir string) (*Registry, error) {
	if maxHistory < 2 {
		maxHistory = 2
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("pipeline: checkpoint dir: %w", err)
		}
	}
	return &Registry{max: maxHistory, dir: dir, next: 1}, nil
}

// Active returns the serving generation (nil before the first Publish).
// This is the RCU read side: a single atomic load, never blocked by
// training or publication.
func (r *Registry) Active() *Generation { return r.active.Load() }

// Publish assigns the next version to g, checkpoints it, appends it to the
// history (evicting the oldest non-active generation beyond the bound), and
// atomically makes it the serving generation.
func (r *Registry) Publish(ctx context.Context, g *Generation) (*Generation, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	g.Version = r.next
	if g.TrainedAt.IsZero() {
		g.TrainedAt = time.Now()
	}
	if r.dir != "" {
		_, ckSpan := r.tracer.Start(ctx, "pipeline.checkpoint")
		err := r.writeCheckpoint(g)
		ckSpan.SetErr(err)
		ckSpan.End()
		if err != nil {
			r.ckptOps.With("write", "error").Inc()
			return nil, err
		}
		r.ckptOps.With("write", "ok").Inc()
	}
	_, swapSpan := r.tracer.Start(ctx, "pipeline.swap")
	r.next++
	r.gens = append(r.gens, g)
	r.active.Store(g)
	r.activeGen.Set(float64(g.Version))
	r.evictLocked()
	swapSpan.End()
	return g, nil
}

// evictLocked drops the oldest non-active generations beyond the history
// bound, deleting their checkpoints.
func (r *Registry) evictLocked() {
	act := r.active.Load()
	for len(r.gens) > r.max {
		victim := -1
		for i, g := range r.gens {
			if act == nil || g.Version != act.Version {
				victim = i
				break
			}
		}
		if victim < 0 {
			return // everything but the bound is active; nothing to evict
		}
		g := r.gens[victim]
		r.gens = append(r.gens[:victim], r.gens[victim+1:]...)
		// Retired generations drop their inference snapshot immediately:
		// the parameter slabs are reclaimed even if a slow reader still
		// holds the generation pointer (it finishes on the tape path).
		g.System.ReleaseEngine()
		if r.dir != "" {
			_ = os.Remove(r.checkpointPath(g.Version))
		}
	}
}

// Activate makes a retained generation the serving one — rollback to an
// older version or roll-forward again. The training version counter is not
// rewound: the next Publish still gets a fresh version.
func (r *Registry) Activate(version int) (*Generation, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, g := range r.gens {
		if g.Version == version {
			_, span := r.tracer.Start(context.Background(), "pipeline.swap")
			r.active.Store(g)
			r.activeGen.Set(float64(g.Version))
			span.End()
			return g, nil
		}
	}
	return nil, fmt.Errorf("pipeline: version %d not in registry (retained: %v)", version, r.versionsLocked())
}

// Generations returns the retained generations in ascending version order.
func (r *Registry) Generations() []*Generation {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Generation, len(r.gens))
	copy(out, r.gens)
	return out
}

// Get returns the retained generation with the given version.
func (r *Registry) Get(version int) (*Generation, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, g := range r.gens {
		if g.Version == version {
			return g, true
		}
	}
	return nil, false
}

func (r *Registry) versionsLocked() []int {
	out := make([]int, len(r.gens))
	for i, g := range r.gens {
		out[i] = g.Version
	}
	return out
}

// --- checkpointing ---

// checkpointGob is the on-disk layout: generation metadata plus the
// estimator snapshot as produced by Model.Save. The model bytes are nested
// rather than streamed so the metadata and model decode independently.
// Checksum guards the model bytes against silent disk corruption that gob
// would happily decode into a garbage model; Checksummed distinguishes a
// real zero checksum from a pre-checksum checkpoint (verification is
// skipped for those legacy files).
type checkpointGob struct {
	Version     int
	Trigger     string
	From, To    int
	Warm        bool
	TrainedAt   time.Time
	Model       []byte
	Checksum    uint64
	Checksummed bool
}

// modelChecksum is the FNV-64a digest of the serialized model bytes.
func modelChecksum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

func (r *Registry) checkpointPath(version int) string {
	return filepath.Join(r.dir, fmt.Sprintf("gen-%06d.ckpt", version))
}

// writeCheckpoint persists one generation atomically (temp file + rename),
// so a crash mid-write never leaves a half-written checkpoint behind under
// the final name.
func (r *Registry) writeCheckpoint(g *Generation) error {
	var model bytes.Buffer
	if err := g.Model().Save(&model); err != nil {
		return fmt.Errorf("pipeline: serialize generation %d: %w", g.Version, err)
	}
	ck := checkpointGob{
		Version: g.Version, Trigger: g.Trigger, From: g.From, To: g.To,
		Warm: g.Warm, TrainedAt: g.TrainedAt, Model: model.Bytes(),
		Checksum: modelChecksum(model.Bytes()), Checksummed: true,
	}
	tmp, err := os.CreateTemp(r.dir, "ckpt-*")
	if err != nil {
		return fmt.Errorf("pipeline: checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := gob.NewEncoder(tmp).Encode(ck); err != nil {
		tmp.Close()
		return fmt.Errorf("pipeline: checkpoint generation %d: %w", g.Version, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("pipeline: checkpoint generation %d: %w", g.Version, err)
	}
	if err := os.Rename(tmp.Name(), r.checkpointPath(g.Version)); err != nil {
		return err
	}
	if r.injected.CorruptCheckpoint(g.Version) {
		// Latent fault: rot the file on disk after a successful write, the
		// way real bit rot presents — the publish succeeds, the damage only
		// surfaces at the next recovery.
		r.rotCheckpoint(g.Version)
	}
	return nil
}

// rotCheckpoint flips bytes in the middle of a checkpoint file, simulating
// silent on-disk corruption for fault-injection tests.
func (r *Registry) rotCheckpoint(version int) {
	p := r.checkpointPath(version)
	b, err := os.ReadFile(p)
	if err != nil || len(b) == 0 {
		return
	}
	for i := len(b) / 2; i < len(b) && i < len(b)/2+16; i++ {
		b[i] ^= 0xff
	}
	_ = os.WriteFile(p, b, 0o644)
}

// readCheckpoint loads one checkpoint file and rebuilds its generation via
// the given System constructor. Corruption is reported loudly, never
// papered over: a registry that silently dropped a bad checkpoint would
// roll back the serving model without anyone noticing.
func readCheckpoint(path string, rebuild func(*estimator.Model) *core.System) (*Generation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pipeline: open checkpoint: %w", err)
	}
	defer f.Close()
	var ck checkpointGob
	if err := gob.NewDecoder(f).Decode(&ck); err != nil {
		return nil, fmt.Errorf("pipeline: corrupt checkpoint %s: %w", filepath.Base(path), err)
	}
	if ck.Checksummed && modelChecksum(ck.Model) != ck.Checksum {
		return nil, fmt.Errorf("pipeline: corrupt checkpoint %s: model checksum mismatch", filepath.Base(path))
	}
	model, err := estimator.Load(bytes.NewReader(ck.Model))
	if err != nil {
		return nil, fmt.Errorf("pipeline: corrupt checkpoint %s: %w", filepath.Base(path), err)
	}
	return &Generation{
		Version: ck.Version, Trigger: "recovered", From: ck.From, To: ck.To,
		Warm: ck.Warm, TrainedAt: ck.TrainedAt, System: rebuild(model),
	}, nil
}

// Recover loads every checkpoint in the registry directory (a simulated or
// real process restart), retaining up to the history bound and activating
// the newest generation. It returns the number of generations recovered.
//
// Corrupt checkpoints (truncated gob, model checksum mismatch, undecodable
// model) are quarantined — renamed to <name>.corrupt so the next recovery
// does not trip over them again — and recovery falls back to the remaining
// valid generations. Corruption is still loud: the quarantined files are
// listed via Quarantined, and if *no* valid checkpoint survives, Recover
// fails with an error naming the corrupt files rather than silently
// starting empty.
func (r *Registry) Recover(rebuild func(*estimator.Model) *core.System) (int, error) {
	if r.dir == "" {
		return 0, nil
	}
	paths, err := filepath.Glob(filepath.Join(r.dir, "gen-*.ckpt"))
	if err != nil {
		return 0, err
	}
	sort.Strings(paths)
	var gens []*Generation
	var corrupt []string
	for _, p := range paths {
		g, err := readCheckpoint(p, rebuild)
		if err != nil {
			r.ckptOps.With("recover", "corrupt").Inc()
			// Quarantine: .corrupt files escape the gen-*.ckpt glob, so
			// the damage is preserved for inspection without blocking
			// future recoveries.
			if renameErr := os.Rename(p, p+".corrupt"); renameErr == nil {
				corrupt = append(corrupt, filepath.Base(p))
			}
			continue
		}
		r.ckptOps.With("recover", "ok").Inc()
		gens = append(gens, g)
	}
	r.mu.Lock()
	r.quarantined = append(r.quarantined, corrupt...)
	r.mu.Unlock()
	if len(gens) == 0 {
		if len(corrupt) > 0 {
			return 0, fmt.Errorf("pipeline: corrupt checkpoint(s) %s and no valid generation to fall back to",
				strings.Join(corrupt, ", "))
		}
		return 0, nil
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].Version < gens[j].Version })

	r.mu.Lock()
	defer r.mu.Unlock()
	if len(gens) > r.max {
		for _, g := range gens[:len(gens)-r.max] {
			_ = os.Remove(r.checkpointPath(g.Version))
		}
		gens = gens[len(gens)-r.max:]
	}
	r.gens = gens
	newest := gens[len(gens)-1]
	r.active.Store(newest)
	r.activeGen.Set(float64(newest.Version))
	if newest.Version >= r.next {
		r.next = newest.Version + 1
	}
	return len(gens), nil
}

// Quarantined returns the base names of checkpoint files set aside as
// corrupt during recovery, in the order they were found.
func (r *Registry) Quarantined() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.quarantined))
	copy(out, r.quarantined)
	return out
}
