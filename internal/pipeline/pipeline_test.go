package pipeline

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/testutil"
)

var cpuPair = app.Pair{Component: "Service", Resource: app.CPU}

// quickOpts keeps training fast enough for race-enabled tests.
func quickOpts() core.Options {
	opts := core.DefaultOptions()
	opts.Estimator.Hidden = 3
	opts.Estimator.Epochs = 4
	opts.Estimator.AttentionEpochs = 0
	opts.Estimator.ChunkLen = 24
	return opts
}

// toyStore records `days` days of toy telemetry into a store.
func toyStore(t *testing.T, days int, seed int64) *telemetry.Server {
	t.Helper()
	_, _, run := testutil.ToyTelemetry(t, days, 30, seed)
	store := telemetry.NewServer(run.WindowSeconds)
	store.RecordRun(run)
	return store
}

func sourceOf(store *telemetry.Server) func() Source {
	return func() Source { return store }
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestTrainOncePublishesAndWarmStarts(t *testing.T) {
	store := toyStore(t, 1, 81)
	p, err := New(quickOpts(), DefaultConfig(), sourceOf(store))
	if err != nil {
		t.Fatal(err)
	}
	g1, err := p.TrainOnce(0, 0, []app.Pair{cpuPair}, "manual")
	if err != nil {
		t.Fatal(err)
	}
	if g1.Version != 1 || g1.Warm || g1.To != store.NumWindows() {
		t.Fatalf("gen1 = %+v", g1)
	}
	if p.Active() != g1 {
		t.Fatal("gen1 not active")
	}
	g2, err := p.TrainOnce(0, 0, nil, "scheduled")
	if err != nil {
		t.Fatal(err)
	}
	if g2.Version != 2 || !g2.Warm {
		t.Fatalf("gen2 = version %d warm %v, want 2/true", g2.Version, g2.Warm)
	}
	// The scheduled retrain inherits the manual pair restriction.
	if g2.Experts() != 1 {
		t.Fatalf("gen2 experts = %d, want 1 (inherited pair restriction)", g2.Experts())
	}
	if st := p.Status(); st.ActiveVersion != 2 || st.Generations != 2 || st.TrainedTo != store.NumWindows() {
		t.Fatalf("status = %+v", st)
	}
}

func TestTrainOnceConflict(t *testing.T) {
	store := toyStore(t, 1, 82)
	cfg := DefaultConfig()
	enter, release := make(chan struct{}), make(chan struct{})
	var gate sync.Once
	cfg.BeforeTrain = func() {
		gate.Do(func() { // only the first generation blocks
			close(enter)
			<-release
		})
	}
	p, err := New(quickOpts(), cfg, sourceOf(store))
	if err != nil {
		t.Fatal(err)
	}
	firstDone := make(chan error, 1)
	go func() {
		_, err := p.TrainOnce(0, 0, []app.Pair{cpuPair}, "manual")
		firstDone <- err
	}()
	<-enter
	if !p.Status().InFlight {
		t.Error("status does not report training in flight")
	}
	if _, err := p.TrainOnce(0, 0, nil, "manual"); !errors.Is(err, ErrTrainingInFlight) {
		t.Fatalf("concurrent TrainOnce = %v, want ErrTrainingInFlight", err)
	}
	close(release)
	if err := <-firstDone; err != nil {
		t.Fatalf("first TrainOnce failed: %v", err)
	}
	// The slot is free again.
	if _, err := p.TrainOnce(0, 0, nil, "scheduled"); err != nil {
		t.Fatalf("TrainOnce after release = %v", err)
	}
}

func TestRollbackActivatesPriorVersion(t *testing.T) {
	store := toyStore(t, 1, 83)
	p, err := New(quickOpts(), DefaultConfig(), sourceOf(store))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.TrainOnce(0, 0, []app.Pair{cpuPair}, "manual"); err != nil {
		t.Fatal(err)
	}
	g2, err := p.TrainOnce(0, 0, nil, "scheduled")
	if err != nil {
		t.Fatal(err)
	}
	if p.Active().Version != g2.Version {
		t.Fatal("newest generation not active")
	}
	back, err := p.Registry().Activate(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Active() != back || p.Active().Version != 1 {
		t.Fatalf("active after rollback = v%d, want v1", p.Active().Version)
	}
	// Rolling forward again works too, and unknown versions error.
	if _, err := p.Registry().Activate(2); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Registry().Activate(99); err == nil {
		t.Fatal("activating unknown version did not error")
	}
}

func TestBackgroundLoopRetrains(t *testing.T) {
	store := toyStore(t, 1, 84)
	cfg := DefaultConfig()
	cfg.Interval = 20 * time.Millisecond
	cfg.DriftEvery = time.Hour // isolate the scheduled path
	cfg.MinNewWindows = 0      // every tick retrains, no fresh data needed
	cfg.MaxHistory = 8
	p, err := New(quickOpts(), cfg, sourceOf(store))
	if err != nil {
		t.Fatal(err)
	}
	// Seed the pair restriction so the loop trains a single expert.
	if _, err := p.TrainOnce(0, 0, []app.Pair{cpuPair}, "manual"); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err == nil {
		t.Fatal("double Start did not error")
	}
	waitFor(t, "3 generations", func() bool { return p.Status().Generations >= 3 })
	p.Stop()
	p.Stop() // idempotent
	if p.Running() {
		t.Fatal("still running after Stop")
	}
	gens := p.Registry().Generations()
	if len(gens) < 3 {
		t.Fatalf("generations = %d", len(gens))
	}
	for _, g := range gens[1:] {
		if g.Trigger != "scheduled" {
			t.Fatalf("background generation trigger = %q", g.Trigger)
		}
		if !g.Warm {
			t.Fatal("background generation did not warm-start")
		}
	}
	n := p.Status().Generations
	time.Sleep(60 * time.Millisecond)
	if p.Status().Generations != n {
		t.Fatal("generations kept appearing after Stop")
	}
}

func TestDriftTriggersEarlyRetrain(t *testing.T) {
	_, _, run := testutil.ToyTelemetry(t, 1, 30, 85)
	store := telemetry.NewServer(run.WindowSeconds)
	store.RecordRun(run)

	cfg := DefaultConfig()
	cfg.Interval = time.Hour // the scheduled path must not fire
	cfg.DriftEvery = 10 * time.Millisecond
	cfg.MinDriftWindows = 8
	p, err := New(quickOpts(), cfg, sourceOf(store))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.TrainOnce(0, 0, []app.Pair{cpuPair}, "manual"); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	// No drift on quiet telemetry: give the checker a couple of ticks.
	time.Sleep(50 * time.Millisecond)
	if got := p.Status().Generations; got != 1 {
		t.Fatalf("retrained without fresh telemetry: %d generations", got)
	}

	// A "new version" ships: the same traffic suddenly costs 6x CPU.
	// Record 16 fresh windows the model will badly mis-estimate.
	for i := 0; i < 16; i++ {
		w := i % len(run.Windows)
		usage := make(sim.Usage, len(run.Usage))
		for pr, series := range run.Usage {
			usage[pr] = 6 * series[w]
		}
		store.Record(sim.WindowResult{Batches: run.Windows[w], Usage: usage})
	}
	waitFor(t, "drift-triggered generation", func() bool {
		for _, g := range p.Registry().Generations() {
			if g.Trigger == "drift" {
				return true
			}
		}
		return false
	})
	st := p.Status()
	if st.TrainedTo != store.NumWindows() {
		t.Fatalf("drift retrain covered up to %d, want %d", st.TrainedTo, store.NumWindows())
	}
}

func TestTrainOnceWithoutTelemetry(t *testing.T) {
	p, err := New(quickOpts(), DefaultConfig(), func() Source { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.TrainOnce(0, 0, nil, "manual"); err == nil {
		t.Fatal("TrainOnce without telemetry did not error")
	}

	// With telemetry, an unknown pair restriction fails the generation and
	// surfaces in the status, but leaves the pipeline usable.
	store := toyStore(t, 1, 86)
	p2, err := New(quickOpts(), DefaultConfig(), sourceOf(store))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.TrainOnce(0, 0, []app.Pair{{Component: "Nope", Resource: app.CPU}}, "manual"); err == nil {
		t.Fatal("unknown pair did not error")
	}
	if st := p2.Status(); st.LastError == "" || st.InFlight {
		t.Fatalf("status after failed generation = %+v", st)
	}
	if _, err := p2.TrainOnce(0, 0, []app.Pair{cpuPair}, "manual"); err != nil {
		t.Fatalf("pipeline unusable after failed generation: %v", err)
	}
}

// The telemetry store must satisfy the pipeline's optional source
// extensions — a signature drift here fails the type assertions silently
// (no extractor installed, drift checks on the slow path), so pin it at
// compile time.
var (
	_ Source        = (*telemetry.Server)(nil)
	_ BoundedSource = (*telemetry.Server)(nil)
	_ FeatureSource = (*telemetry.Server)(nil)
)

// TestTrainInstallsExtractor: publishing a generation through the pipeline
// must arm Record-time extraction on a real telemetry store, tagged with
// the published version.
func TestTrainInstallsExtractor(t *testing.T) {
	store := toyStore(t, 1, 86)
	p, err := New(quickOpts(), DefaultConfig(), sourceOf(store))
	if err != nil {
		t.Fatal(err)
	}
	if got := store.ExtractorGen(); got != 0 {
		t.Fatalf("extractor generation before training = %d, want 0", got)
	}
	g1, err := p.TrainOnce(0, 0, []app.Pair{cpuPair}, "manual")
	if err != nil {
		t.Fatal(err)
	}
	if got := store.ExtractorGen(); got != g1.Version {
		t.Fatalf("extractor generation after publish = %d, want %d", got, g1.Version)
	}
	g2, err := p.TrainOnce(0, 0, nil, "manual")
	if err != nil {
		t.Fatal(err)
	}
	if got := store.ExtractorGen(); got != g2.Version {
		t.Fatalf("extractor generation after second publish = %d, want %d", got, g2.Version)
	}
}
