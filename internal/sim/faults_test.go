package sim

import (
	"reflect"
	"testing"

	"repro/internal/app"
	"repro/internal/faults"
	"repro/internal/workload"
)

// faultScenario is the golden scenario: every injector kind firing over a
// two-day toy run. Changing the schedule semantics, the spec parser, or the
// simulator's fault plumbing changes the fingerprint below.
const faultScenario = "seed=1234;" +
	"crash:comp=DB,from=10,to=13;" +
	"throttle:comp=Service,factor=0.5,from=20,to=30;" +
	"latency:comp=Gateway,factor=2,from=25,to=35;" +
	"dropspans:factor=0.2,from=40,to=60;" +
	"dupspans:factor=0.15,from=50,to=70;" +
	"scrapegap:comp=Service,prob=0.3,from=0,to=80;" +
	"clockskew:skew=2,from=75,to=80"

// goldenFaultFingerprint pins the bit-exact telemetry of the golden
// scenario (toy app, cluster seed 7, 2 days of 48 one-minute windows at
// 30 peak RPS). The same fault seed + spec must reproduce it forever.
const goldenFaultFingerprint = "da0349816ad01f09"

func faultRun(t *testing.T, spec string) *Run {
	t.Helper()
	sched, err := faults.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewCluster(app.Toy(), 7, WithFaults(sched))
	if err != nil {
		t.Fatal(err)
	}
	p := workload.Uniform(2, workload.DaySpec{
		Shape:   workload.TwoPeak{},
		Mix:     workload.Mix{"/read": 0.7, "/write": 0.3},
		PeakRPS: 30,
	})
	p.WindowsPerDay = 48
	p.WindowSeconds = 60
	p.Seed = 7
	run, err := cluster.Run(p.Generate())
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// TestGoldenFaultScenario is the determinism acceptance gate: the same
// fault seed + spec produces bit-identical fault schedules and simulator
// output, pinned against a golden fingerprint.
func TestGoldenFaultScenario(t *testing.T) {
	a := faultRun(t, faultScenario)
	b := faultRun(t, faultScenario)
	if !reflect.DeepEqual(a.Usage, b.Usage) {
		t.Fatal("same seed+spec produced different usage series")
	}
	if !reflect.DeepEqual(a.Windows, b.Windows) {
		t.Fatal("same seed+spec produced different trace windows")
	}
	got := Fingerprint(a)
	if got != goldenFaultFingerprint {
		t.Fatalf("golden fault scenario fingerprint drifted:\n got %s\nwant %s", got, goldenFaultFingerprint)
	}
	// A different fault seed must actually perturb the output.
	other := faultRun(t, "seed=99;"+faultScenario[len("seed=1234;"):])
	if Fingerprint(other) == got {
		t.Fatal("different fault seed produced identical telemetry")
	}
}

func TestCrashZeroesUsageAndFailsRequests(t *testing.T) {
	sched, err := faults.Compile("crash:comp=DB,from=2,to=4")
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewCluster(app.Toy(), 3, WithFaults(sched), WithMeasurementNoise(0))
	if err != nil {
		t.Fatal(err)
	}
	reqs := map[string]int{"/read": 100, "/write": 40}
	for w := 0; w < 6; w++ {
		wr, err := cluster.Step(reqs, 60)
		if err != nil {
			t.Fatal(err)
		}
		dbCPU := wr.Usage[app.Pair{Component: "DB", Resource: app.CPU}]
		crashed := w >= 2 && w < 4
		if crashed {
			if dbCPU != 0 {
				t.Fatalf("window %d: crashed DB cpu = %v", w, dbCPU)
			}
			// Every toy request routes through DB, so all of them fail.
			if wr.NumRequests() != 0 {
				t.Fatalf("window %d: %d requests traced through a crashed component", w, wr.NumRequests())
			}
			// The healthy components fall back to their idle baseline.
			if got := wr.Usage[app.Pair{Component: "Service", Resource: app.CPU}]; got != 5 {
				t.Fatalf("window %d: Service cpu = %v, want idle base 5", w, got)
			}
		} else {
			if dbCPU <= 8 {
				t.Fatalf("window %d: healthy DB cpu = %v", w, dbCPU)
			}
			if wr.NumRequests() != 140 {
				t.Fatalf("window %d: requests = %d", w, wr.NumRequests())
			}
		}
	}
}

func TestCrashRestartsCacheCold(t *testing.T) {
	warm := func(spec string) []float64 {
		sched, err := faults.Compile(spec)
		if err != nil {
			t.Fatal(err)
		}
		cluster, err := NewCluster(app.Toy(), 3, WithFaults(sched), WithMeasurementNoise(0))
		if err != nil {
			t.Fatal(err)
		}
		var mem []float64
		for w := 0; w < 12; w++ {
			wr, err := cluster.Step(map[string]int{"/read": 200}, 60)
			if err != nil {
				t.Fatal(err)
			}
			mem = append(mem, wr.Usage[app.Pair{Component: "DB", Resource: app.Memory}])
		}
		return mem
	}
	healthy := warm("")
	crashed := warm("crash:comp=DB,from=6,to=7")
	// Before the crash the runs agree; after the restart the cache must
	// rebuild from cold, so memory sits below the uninterrupted run.
	for w := 0; w < 6; w++ {
		if healthy[w] != crashed[w] {
			t.Fatalf("pre-crash window %d diverged: %v vs %v", w, healthy[w], crashed[w])
		}
	}
	if crashed[7] >= healthy[7] {
		t.Fatalf("post-restart memory %v not below warm %v", crashed[7], healthy[7])
	}
}

func TestThrottleAndLatencyInflateCPU(t *testing.T) {
	cpuAt := func(spec, comp string) float64 {
		var sched *faults.Schedule
		if spec != "" {
			var err error
			if sched, err = faults.Compile(spec); err != nil {
				t.Fatal(err)
			}
		}
		cluster, err := NewCluster(app.Toy(), 3, WithFaults(sched), WithMeasurementNoise(0))
		if err != nil {
			t.Fatal(err)
		}
		wr, err := cluster.Step(map[string]int{"/read": 300}, 60)
		if err != nil {
			t.Fatal(err)
		}
		return wr.Usage[app.Pair{Component: comp, Resource: app.CPU}]
	}
	base := cpuAt("", "Service")
	throttled := cpuAt("throttle:comp=Service,factor=0.5,to=2", "Service")
	if throttled <= base {
		t.Fatalf("throttled cpu %v not above baseline %v", throttled, base)
	}
	spiked := cpuAt("latency:comp=Service,factor=3,to=2", "Service")
	if spiked <= base {
		t.Fatalf("latency-spiked cpu %v not above baseline %v", spiked, base)
	}
	// Other components are untouched by a scoped injector.
	if got := cpuAt("throttle:comp=Service,factor=0.5,to=2", "Gateway"); got != cpuAt("", "Gateway") {
		t.Fatalf("throttle on Service leaked to Gateway: %v", got)
	}
}

func TestScrapeGapZeroesMetricsButKeepsTraces(t *testing.T) {
	sched, err := faults.Compile("scrapegap:comp=DB,from=1,to=2")
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewCluster(app.Toy(), 3, WithFaults(sched), WithMeasurementNoise(0))
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 3; w++ {
		wr, err := cluster.Step(map[string]int{"/read": 100}, 60)
		if err != nil {
			t.Fatal(err)
		}
		db := wr.Usage[app.Pair{Component: "DB", Resource: app.CPU}]
		if w == 1 {
			if db != 0 {
				t.Fatalf("gapped scrape read %v", db)
			}
			if wr.NumRequests() != 100 {
				t.Fatalf("scrape gap perturbed traces: %d requests", wr.NumRequests())
			}
		} else if db == 0 {
			t.Fatalf("window %d: healthy scrape read 0", w)
		}
	}
}

func TestCollectorDropAndDuplicate(t *testing.T) {
	count := func(spec string) int {
		sched, err := faults.Compile(spec)
		if err != nil {
			t.Fatal(err)
		}
		cluster, err := NewCluster(app.Toy(), 3, WithFaults(sched))
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for w := 0; w < 10; w++ {
			wr, err := cluster.Step(map[string]int{"/read": 100}, 60)
			if err != nil {
				t.Fatal(err)
			}
			total += wr.NumRequests()
		}
		return total
	}
	base := count("") // healthy cluster
	if base != 1000 {
		t.Fatalf("baseline requests = %d", base)
	}
	dropped := count("seed=2;dropspans:factor=0.3")
	if dropped >= base || dropped < 600 || dropped > 800 {
		t.Fatalf("dropped-span run delivered %d of %d requests, want ≈700", dropped, base)
	}
	duplicated := count("seed=2;dupspans:factor=0.3")
	if duplicated <= base || duplicated < 1200 || duplicated > 1400 {
		t.Fatalf("duplicated-span run delivered %d of %d requests, want ≈1300", duplicated, base)
	}
}

func TestClockSkewDelaysTraces(t *testing.T) {
	sched, err := faults.Compile("clockskew:skew=2,from=1,to=2")
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewCluster(app.Toy(), 3, WithFaults(sched))
	if err != nil {
		t.Fatal(err)
	}
	var perWindow []int
	var usage []float64
	for w := 0; w < 5; w++ {
		wr, err := cluster.Step(map[string]int{"/read": 50}, 60)
		if err != nil {
			t.Fatal(err)
		}
		perWindow = append(perWindow, wr.NumRequests())
		usage = append(usage, wr.Usage[app.Pair{Component: "DB", Resource: app.CPU}])
	}
	want := []int{50, 0, 50, 100, 50}
	if !reflect.DeepEqual(perWindow, want) {
		t.Fatalf("skewed trace delivery = %v, want %v", perWindow, want)
	}
	// Metrics are not skewed: the resources were consumed in window 1.
	for w, v := range usage {
		if v <= 0 {
			t.Fatalf("window %d: usage %v despite skew being trace-only", w, v)
		}
	}
	var total int
	for _, n := range perWindow {
		total += n
	}
	if total != 250 {
		t.Fatalf("skew lost requests: %d", total)
	}
}

// TestHealthyClusterUnchangedByNilSchedule guards the zero-cost property:
// arming no faults must leave the simulator's output bit-identical to the
// pre-fault-subsystem behaviour (same rng consumption, same telemetry).
func TestHealthyClusterUnchangedByNilSchedule(t *testing.T) {
	run := func(s *faults.Schedule) *Run {
		cluster, err := NewCluster(app.Toy(), 21, WithFaults(s))
		if err != nil {
			t.Fatal(err)
		}
		p := workload.Uniform(1, workload.DaySpec{
			Shape: workload.TwoPeak{}, Mix: workload.Mix{"/read": 1}, PeakRPS: 20,
		})
		p.WindowsPerDay = 24
		p.WindowSeconds = 60
		p.Seed = 21
		r, err := cluster.Run(p.Generate())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if Fingerprint(run(nil)) != Fingerprint(run(nil)) {
		t.Fatal("healthy cluster not deterministic")
	}
}
