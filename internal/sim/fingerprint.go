package sim

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/app"
)

// Fingerprint serialises a run canonically (sorted pairs, bit-exact floats,
// full batch shapes) and hashes it, so "bit-identical telemetry" is testable
// as one string compare. Two runs fingerprint equal iff every trace batch
// and every usage sample match to the last bit.
//
// This is the determinism gate shared by the fault-injection golden tests
// and the topology round-trip tests: a spec decoded from its DSL encoding
// must drive the simulator to the same fingerprint as the original.
func Fingerprint(r *Run) string {
	h := fnv.New64a()
	for w, batches := range r.Windows {
		fmt.Fprintf(h, "w%d:", w)
		for _, b := range batches {
			fmt.Fprintf(h, "%s|%d|", b.Trace.API, b.Count)
			if b.Trace.Root != nil {
				fmt.Fprintf(h, "%s;", b.Trace.Root.String())
			}
		}
	}
	pairs := make([]app.Pair, 0, len(r.Usage))
	for p := range r.Usage {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].String() < pairs[j].String() })
	for _, p := range pairs {
		fmt.Fprintf(h, "%s:", p)
		for _, v := range r.Usage[p] {
			fmt.Fprintf(h, "%016x", math.Float64bits(v))
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
