package sim

import (
	"math"
	"testing"

	"repro/internal/app"
)

func toyLatencyModel(t *testing.T) *LatencyModel {
	t.Helper()
	m, err := NewLatencyModel(app.Toy())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLatencyMM1Arithmetic(t *testing.T) {
	m := toyLatencyModel(t)
	// Toy /read visits Gateway (300 mc-ms), Service (900), DB (1100).
	// Override the capacities so every station's service time is exactly
	// 100 ms and the M/M/1 arithmetic has closed-form expectations.
	if err := m.SetCapacity("Gateway", 3); err != nil {
		t.Fatal(err)
	}
	if err := m.SetCapacity("Service", 9); err != nil {
		t.Fatal(err)
	}
	if err := m.SetCapacity("DB", 11); err != nil {
		t.Fatal(err)
	}
	// With these capacities each station's service time is exactly
	// 100 ms; at 5 req/s, ρ = 0.5 and W = ρ/(μ−λ) = 0.5/5 = 100 ms.
	reqs := map[string]int{"/read": 300} // 5 req/s over 60 s
	loads, lats, err := m.Evaluate(reqs, 60)
	if err != nil {
		t.Fatal(err)
	}
	db := loads["DB"]
	if math.Abs(db.ServiceMs-100) > 1e-9 {
		t.Errorf("DB service = %v ms, want 100", db.ServiceMs)
	}
	if math.Abs(db.Utilization-0.5) > 1e-9 {
		t.Errorf("DB utilization = %v, want 0.5", db.Utilization)
	}
	if math.Abs(db.WaitMs-100) > 1e-9 {
		t.Errorf("DB wait = %v ms, want 100", db.WaitMs)
	}
	// End-to-end mean: three stations, each 200 ms sojourn.
	lat := lats["/read"]
	if math.Abs(lat.MeanMs-600) > 1e-9 {
		t.Errorf("mean latency = %v ms, want 600", lat.MeanMs)
	}
	if lat.Saturated {
		t.Error("not saturated at ρ=0.5")
	}
	if lat.P95Ms <= lat.MeanMs {
		t.Error("p95 must exceed the mean")
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	m := toyLatencyModel(t)
	_, low, err := m.Evaluate(map[string]int{"/read": 60}, 60)
	if err != nil {
		t.Fatal(err)
	}
	_, high, err := m.Evaluate(map[string]int{"/read": 600}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if high["/read"].Saturated {
		// At toy capacities this load may saturate; that is also a
		// valid "grows with load" outcome.
		return
	}
	if high["/read"].MeanMs <= low["/read"].MeanMs {
		t.Errorf("latency did not grow with load: %v -> %v", low["/read"].MeanMs, high["/read"].MeanMs)
	}
}

func TestLatencySaturation(t *testing.T) {
	m := toyLatencyModel(t)
	// Overwhelm the DB: at its toy capacity of 60 mcores a read visit
	// takes 1100/60 ≈ 18.3 ms, so μ ≈ 55 visits/s; offer 100/s.
	_, lats, err := m.Evaluate(map[string]int{"/read": 6000}, 60)
	if err != nil {
		t.Fatal(err)
	}
	lat := lats["/read"]
	if !lat.Saturated || !math.IsInf(lat.MeanMs, 1) {
		t.Errorf("expected saturation, got %+v", lat)
	}
}

func TestLatencyCapacityScaling(t *testing.T) {
	m := toyLatencyModel(t)
	reqs := map[string]int{"/read": 120}
	_, before, err := m.Evaluate(reqs, 60)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"Gateway", "Service", "DB"} {
		if err := m.SetCapacity(c, 10000); err != nil {
			t.Fatal(err)
		}
	}
	_, after, err := m.Evaluate(reqs, 60)
	if err != nil {
		t.Fatal(err)
	}
	if after["/read"].MeanMs >= before["/read"].MeanMs && !before["/read"].Saturated {
		t.Errorf("more capacity did not reduce latency: %v -> %v", before["/read"].MeanMs, after["/read"].MeanMs)
	}
}

func TestLatencyValidation(t *testing.T) {
	m := toyLatencyModel(t)
	if err := m.SetCapacity("ghost", 100); err == nil {
		t.Error("unknown component must fail")
	}
	if err := m.SetCapacity("DB", -1); err == nil {
		t.Error("non-positive capacity must fail")
	}
	if _, _, err := m.Evaluate(map[string]int{"/nope": 1}, 60); err == nil {
		t.Error("unknown API must fail")
	}
	if _, _, err := m.Evaluate(nil, 0); err == nil {
		t.Error("bad window must fail")
	}
}

func TestSLOViolations(t *testing.T) {
	m := toyLatencyModel(t)
	// At 5 mcores a DB read visit takes 220 ms (μ = 4.55/s).
	for _, c := range []string{"Gateway", "Service", "DB"} {
		if err := m.SetCapacity(c, 5); err != nil {
			t.Fatal(err)
		}
	}
	windows := []map[string]int{
		{"/read": 30},    // light (0.5/s)
		{"/read": 240},   // heavy (ρ≈0.88 at the DB)
		{"/read": 60000}, // saturating (1000/s)
	}
	// A generous SLO is violated only by the saturating window; a tight
	// one by more.
	loose, err := m.SLOViolations(windows, 60, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	if loose != 1 {
		t.Errorf("loose SLO violations = %d, want 1 (saturated window)", loose)
	}
	tight, err := m.SLOViolations(windows, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tight != 3 {
		t.Errorf("tight SLO violations = %d, want 3", tight)
	}
}
