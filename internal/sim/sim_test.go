package sim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/app"
	"repro/internal/trace"
	"repro/internal/workload"
)

func newToy(t *testing.T, opts ...Option) *Cluster {
	t.Helper()
	c, err := NewCluster(app.Toy(), 1, opts...)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c
}

func TestNewClusterValidates(t *testing.T) {
	bad := &app.Spec{
		Name:       "bad",
		Components: []app.Component{{Name: "A"}},
		APIs: []app.API{{
			Name:      "/x",
			Templates: []app.Template{{Prob: 0.5, Root: app.Node("A", "op", app.Cost{})}},
		}},
	}
	if _, err := NewCluster(bad, 1); err == nil {
		t.Fatal("invalid spec must be rejected")
	}
}

func TestStepIdle(t *testing.T) {
	c := newToy(t, WithMeasurementNoise(0))
	wr, err := c.Step(nil, 60)
	if err != nil {
		t.Fatal(err)
	}
	// Idle usage equals the components' base consumption.
	if got := wr.Usage[app.Pair{Component: "Gateway", Resource: app.CPU}]; got != 5 {
		t.Errorf("idle Gateway CPU = %v, want 5", got)
	}
	if got := wr.Usage[app.Pair{Component: "DB", Resource: app.Memory}]; got != 150 {
		t.Errorf("idle DB memory = %v, want 150", got)
	}
	if got := wr.Usage[app.Pair{Component: "DB", Resource: app.WriteIOps}]; got != 0 {
		t.Errorf("idle write IOps = %v", got)
	}
	if len(wr.Batches) != 0 {
		t.Error("idle window must produce no traces")
	}
}

func TestStepAccounting(t *testing.T) {
	c := newToy(t, WithMeasurementNoise(0), WithQueueFactor(0))
	const n = 600
	wr, err := c.Step(map[string]int{"/write": n}, 60)
	if err != nil {
		t.Fatal(err)
	}
	// The toy /write chain puts 1400 CPUms and 5 write ops on DB per
	// request. Payload noise averages out at CV/sqrt(n) ≈ 0.4%.
	cpu := wr.Usage[app.Pair{Component: "DB", Resource: app.CPU}]
	wantCPU := 8 + float64(n)*1400/(60*1000)
	if math.Abs(cpu-wantCPU) > 0.05*wantCPU {
		t.Errorf("DB CPU = %v, want ≈%v", cpu, wantCPU)
	}
	iops := wr.Usage[app.Pair{Component: "DB", Resource: app.WriteIOps}]
	wantIOps := float64(n) * 5 / 60
	if math.Abs(iops-wantIOps) > 0.05*wantIOps {
		t.Errorf("IOps = %v, want ≈%v", iops, wantIOps)
	}
	if got := trace.TotalRequests(wr.Batches); got != n {
		t.Errorf("trace batches carry %d requests, want %d", got, n)
	}
}

func TestQueuingSuperlinearity(t *testing.T) {
	base, err := NewCluster(app.Toy(), 1, WithMeasurementNoise(0), WithQueueFactor(0.8))
	if err != nil {
		t.Fatal(err)
	}
	low, _ := base.Step(map[string]int{"/read": 300}, 60)
	high, _ := base.Step(map[string]int{"/read": 900}, 60)
	p := app.Pair{Component: "DB", Resource: app.CPU}
	lowReq := low.Usage[p] - 8
	highReq := high.Usage[p] - 8
	ratio := highReq / lowReq
	if ratio <= 3.05 {
		t.Errorf("3x traffic gave %vx request CPU; queuing should make it superlinear", ratio)
	}
}

func TestDiskMonotone(t *testing.T) {
	c := newToy(t, WithMeasurementNoise(0))
	p := app.Pair{Component: "DB", Resource: app.DiskUsage}
	prev := -1.0
	for i := 0; i < 5; i++ {
		wr, err := c.Step(map[string]int{"/write": 100}, 60)
		if err != nil {
			t.Fatal(err)
		}
		if wr.Usage[p] < prev {
			t.Fatalf("disk usage decreased: %v -> %v", prev, wr.Usage[p])
		}
		prev = wr.Usage[p]
	}
	if prev <= 0 {
		t.Error("disk usage never grew")
	}
}

func TestCacheWarmsAndDecays(t *testing.T) {
	c := newToy(t, WithMeasurementNoise(0))
	p := app.Pair{Component: "DB", Resource: app.Memory}
	var warm float64
	for i := 0; i < 50; i++ {
		wr, _ := c.Step(map[string]int{"/read": 400}, 60)
		warm = wr.Usage[p]
	}
	if warm <= 150 {
		t.Fatalf("cache never warmed: memory %v", warm)
	}
	var cooled float64
	for i := 0; i < 100; i++ {
		wr, _ := c.Step(nil, 60)
		cooled = wr.Usage[p]
	}
	if cooled >= warm {
		t.Errorf("cache never decayed: %v -> %v", warm, cooled)
	}
	if cooled < 150 {
		t.Errorf("memory fell below base: %v", cooled)
	}
}

func TestUnknownAPI(t *testing.T) {
	c := newToy(t)
	if _, err := c.Step(map[string]int{"/nope": 1}, 60); err == nil {
		t.Fatal("unknown API must error")
	}
	if _, err := c.Step(nil, 0); err == nil {
		t.Fatal("non-positive window must error")
	}
}

func TestRunAlignsSeries(t *testing.T) {
	c := newToy(t)
	prog := workload.Uniform(1, workload.DaySpec{Shape: workload.TwoPeak{}, Mix: workload.Mix{"/read": 0.7, "/write": 0.3}, PeakRPS: 20})
	prog.WindowsPerDay = 24
	prog.WindowSeconds = 60
	traffic := prog.Generate()
	run, err := c.Run(traffic)
	if err != nil {
		t.Fatal(err)
	}
	if run.NumWindows() != 24 {
		t.Fatalf("NumWindows = %d", run.NumWindows())
	}
	for _, p := range app.Toy().ResourcePairs() {
		if got := len(run.Series(p)); got != 24 {
			t.Fatalf("%s series len = %d", p, got)
		}
	}
	sl := run.Slice(6, 12)
	if sl.NumWindows() != 6 {
		t.Fatal("Slice wrong size")
	}
	p := app.Pair{Component: "DB", Resource: app.CPU}
	if sl.Series(p)[0] != run.Series(p)[6] {
		t.Fatal("Slice must align series with windows")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Run {
		c, _ := NewCluster(app.Toy(), 42)
		prog := workload.Uniform(1, workload.DaySpec{Shape: workload.TwoPeak{}, Mix: workload.Mix{"/read": 1}, PeakRPS: 10})
		prog.WindowsPerDay = 12
		prog.WindowSeconds = 60
		r, _ := c.Run(prog.Generate())
		return r
	}
	a, b := run(), run()
	p := app.Pair{Component: "Service", Resource: app.CPU}
	for i := range a.Series(p) {
		if a.Series(p)[i] != b.Series(p)[i] {
			t.Fatalf("non-deterministic at window %d", i)
		}
	}
}

func TestAttacks(t *testing.T) {
	c := newToy(t, WithMeasurementNoise(0))
	c.Inject(Ransomware{Component: "DB", FromWindow: 1, ToWindow: 2, ExtraCPU: 100, ExtraWriteOps: 50, ExtraWriteKiB: 500, ShedComponent: "Gateway", ShedFraction: 0.5})
	c.Inject(Cryptojack{Component: "Service", FromWindow: 2, ToWindow: 3, ExtraCPU: 70})
	c.Inject(MemoryLeak{Component: "Gateway", FromWindow: 2, MiBPerWindow: 10})

	w0, _ := c.Step(nil, 60)
	if w0.Usage[app.Pair{Component: "DB", Resource: app.CPU}] != 8 {
		t.Error("attack fired before FromWindow")
	}
	w1, _ := c.Step(nil, 60)
	if got := w1.Usage[app.Pair{Component: "DB", Resource: app.CPU}]; got != 108 {
		t.Errorf("ransomware CPU = %v, want 108", got)
	}
	if got := w1.Usage[app.Pair{Component: "DB", Resource: app.WriteIOps}]; got != 50 {
		t.Errorf("ransomware IOps = %v", got)
	}
	if got := w1.Usage[app.Pair{Component: "Gateway", Resource: app.CPU}]; got != 2.5 {
		t.Errorf("shed CPU = %v, want 2.5", got)
	}
	w2, _ := c.Step(nil, 60)
	if got := w2.Usage[app.Pair{Component: "Service", Resource: app.CPU}]; got != 75 {
		t.Errorf("cryptojack CPU = %v, want 75", got)
	}
	if got := w2.Usage[app.Pair{Component: "Gateway", Resource: app.Memory}]; got != 60 {
		t.Errorf("leak memory = %v, want 60", got)
	}
	w3, _ := c.Step(nil, 60)
	if got := w3.Usage[app.Pair{Component: "Service", Resource: app.CPU}]; got != 5 {
		t.Error("cryptojack fired past ToWindow")
	}
	if got := w3.Usage[app.Pair{Component: "Gateway", Resource: app.Memory}]; got != 70 {
		t.Errorf("leak must keep growing: %v", got)
	}
}

// Property: total requests in trace batches always equal the requested
// counts, for any request vector.
func TestTraceConservationProperty(t *testing.T) {
	c := newToy(t)
	f := func(r, w uint16) bool {
		reqs := map[string]int{"/read": int(r % 5000), "/write": int(w % 5000)}
		wr, err := c.Step(reqs, 60)
		if err != nil {
			return false
		}
		return trace.TotalRequests(wr.Batches) == reqs["/read"]+reqs["/write"]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: usage values are never negative.
func TestNonNegativeUsageProperty(t *testing.T) {
	c := newToy(t)
	f := func(r uint16) bool {
		wr, err := c.Step(map[string]int{"/read": int(r % 10000)}, 60)
		if err != nil {
			return false
		}
		for _, v := range wr.Usage {
			if v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMultinomialSplitsSocial(t *testing.T) {
	// composePost has three templates (0.5/0.3/0.2); with many requests
	// all three should materialise and sum exactly.
	c, err := NewCluster(app.SocialNetwork(), 3)
	if err != nil {
		t.Fatal(err)
	}
	wr, err := c.Step(map[string]int{"/composePost": 10000}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(wr.Batches) != 3 {
		t.Fatalf("expected 3 template batches, got %d", len(wr.Batches))
	}
	total := 0
	for _, b := range wr.Batches {
		total += b.Count
		frac := float64(b.Count) / 10000
		if frac < 0.1 || frac > 0.6 {
			t.Errorf("template share %v implausible", frac)
		}
	}
	if total != 10000 {
		t.Errorf("batch counts sum to %d", total)
	}
}
