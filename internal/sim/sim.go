// Package sim executes an application Spec as a discrete-time microservice
// cluster: it turns API traffic into the two artifacts DeepRest consumes —
// distributed traces and per-window resource metrics.
//
// The simulator stands in for the paper's Kubernetes testbed (DeathStarBench
// on minikube with Jaeger and Prometheus). It preserves every behaviour the
// estimation problem depends on:
//
//   - each request samples one of its API's invocation-path templates, so
//     the same endpoint triggers components and consumes resources in
//     different ways per request;
//   - CPU consumption inflates superlinearly as load approaches a
//     component's capacity (queuing), so 2× traffic can cost more than 2×
//     CPU — the effect the paper's takeaway in §5.3 calls out;
//   - memory has a history-dependent cache term (reads populate caches that
//     decay slowly), which is what makes memory the hardest resource in the
//     paper's Figure 12;
//   - disk usage grows monotonically with writes;
//   - all measurements carry multiplicative scrape noise.
//
// Attack injectors add resource consumption that the API traffic cannot
// justify, reproducing the ransomware and cryptojacking scenarios of §5.4.
//
// Fault injection (internal/faults) perturbs the cluster the other way:
// instead of unexplained extra consumption, it produces the partial
// failures a real deployment suffers — component crashes that fail requests
// and cold-start caches, CPU throttles and latency spikes that amplify
// queuing, trace collectors that drop or duplicate spans, metric scrapes
// that go missing, and clock skew that desynchronises traces from metrics.
// All fault decisions derive from the schedule's own seed, so the same
// cluster seed + fault spec emits bit-identical telemetry.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/app"
	"repro/internal/faults"
	"repro/internal/trace"
	"repro/internal/workload"
)

// QueueFactor is the default queuing-inflation coefficient: at full nominal
// capacity, CPU consumption is (1 + QueueFactor)× the raw demand.
const QueueFactor = 0.8

// MeasurementNoiseCV is the default multiplicative scrape-noise coefficient.
const MeasurementNoiseCV = 0.02

// templateInfo caches, per API template, the immutable span tree and the
// per-component aggregated cost of one request following the template.
type templateInfo struct {
	prob  float64
	spans *trace.Span
	costs map[string]app.Cost
}

// Cluster is a running deployment of an application Spec. It is stateful:
// caches warm up and disks fill over simulated time, so consecutive runs
// continue from where the previous one stopped — exactly like a production
// environment observed by a telemetry server.
type Cluster struct {
	spec      *app.Spec
	rng       *rand.Rand
	noiseCV   float64
	queue     float64
	templates map[string][]templateInfo
	cacheMiB  map[string]float64
	diskMiB   map[string]float64
	attacks   []Attack
	window    int

	// faults is the armed fault schedule (nil = healthy cluster); pending
	// buffers trace batches the clock-skew injector has delayed, keyed by
	// their delivery window.
	faults  *faults.Schedule
	pending map[int][]trace.Batch
}

// Option configures a Cluster.
type Option func(*Cluster)

// WithQueueFactor overrides the queuing-inflation coefficient.
func WithQueueFactor(q float64) Option {
	return func(c *Cluster) { c.queue = q }
}

// WithMeasurementNoise overrides the scrape-noise coefficient. Zero disables
// measurement noise, useful for exactness tests.
func WithMeasurementNoise(cv float64) Option {
	return func(c *Cluster) { c.noiseCV = cv }
}

// WithFaults arms a fault-injection schedule at deployment time. A nil
// schedule leaves the cluster healthy.
func WithFaults(s *faults.Schedule) Option {
	return func(c *Cluster) { c.faults = s }
}

// SetFaults arms (or, with nil, disarms) a fault schedule mid-run. Fault
// decisions are indexed by the cluster's global window counter, so a
// schedule armed late still fires at its spec'd windows.
func (c *Cluster) SetFaults(s *faults.Schedule) { c.faults = s }

// NewCluster deploys spec with the given random seed.
func NewCluster(spec *app.Spec, seed int64, opts ...Option) (*Cluster, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("sim: invalid spec: %w", err)
	}
	c := &Cluster{
		spec:      spec,
		rng:       rand.New(rand.NewSource(seed)),
		noiseCV:   MeasurementNoiseCV,
		queue:     QueueFactor,
		templates: make(map[string][]templateInfo),
		cacheMiB:  make(map[string]float64),
		diskMiB:   make(map[string]float64),
	}
	for _, o := range opts {
		o(c)
	}
	for _, a := range spec.APIs {
		infos := make([]templateInfo, len(a.Templates))
		for i, t := range a.Templates {
			infos[i] = templateInfo{
				prob:  t.Prob,
				spans: buildSpans(t.Root),
				costs: aggregateCosts(t.Root),
			}
		}
		c.templates[a.Name] = infos
	}
	return c, nil
}

func buildSpans(n *app.PathNode) *trace.Span {
	s := trace.NewSpan(n.Component, n.Operation)
	for _, ch := range n.Children {
		s.Children = append(s.Children, buildSpans(ch))
	}
	return s
}

func aggregateCosts(n *app.PathNode) map[string]app.Cost {
	out := make(map[string]app.Cost)
	var rec func(nd *app.PathNode)
	rec = func(nd *app.PathNode) {
		out[nd.Component] = out[nd.Component].Add(nd.Cost)
		for _, ch := range nd.Children {
			rec(ch)
		}
	}
	rec(n)
	return out
}

// Spec returns the deployed application spec.
func (c *Cluster) Spec() *app.Spec { return c.spec }

// Window returns the index of the next window to be simulated.
func (c *Cluster) Window() int { return c.window }

// Inject arms an attack. Attacks fire based on the cluster's global window
// counter.
func (c *Cluster) Inject(a Attack) { c.attacks = append(c.attacks, a) }

// Usage is a per-(component, resource) utilization map for one window.
type Usage map[app.Pair]float64

// WindowResult is the telemetry produced by one simulated window.
type WindowResult struct {
	// Batches are the traces of the window, run-length encoded.
	Batches []trace.Batch
	// Usage is the measured utilization per (component, resource) pair.
	Usage Usage
}

// NumRequests returns the number of requests the window served (batches
// expanded by their run-length counts).
func (wr WindowResult) NumRequests() int {
	return trace.TotalRequests(wr.Batches)
}

// NumSpans returns the number of spans the window's requests executed —
// the volume a real tracing backend would have ingested. Each batch
// contributes its template's span-tree size once per request.
func (wr WindowResult) NumSpans() int {
	return countSpans(wr.Batches)
}

func countSpans(batches []trace.Batch) int {
	n := 0
	for _, b := range batches {
		if b.Trace.Root != nil {
			n += b.Trace.Root.NumSpans() * b.Count
		}
	}
	return n
}

// Step simulates one window serving the given per-API request counts and
// returns its telemetry. windowSeconds is the window duration.
func (c *Cluster) Step(requests map[string]int, windowSeconds float64) (WindowResult, error) {
	if windowSeconds <= 0 {
		return WindowResult{}, fmt.Errorf("sim: windowSeconds must be positive, got %v", windowSeconds)
	}
	res := WindowResult{Usage: make(Usage)}
	// Demand accumulated from requests, per component.
	demand := make(map[string]app.Cost, len(c.spec.Components))

	apis := make([]string, 0, len(requests))
	for api := range requests {
		apis = append(apis, api)
	}
	sort.Strings(apis)

	for _, api := range apis {
		n := requests[api]
		if n <= 0 {
			continue
		}
		infos, ok := c.templates[api]
		if !ok {
			return WindowResult{}, fmt.Errorf("sim: unknown API %q", api)
		}
		spec, _ := c.spec.API(api)
		counts := c.multinomial(n, infos)
		for ti, cnt := range counts {
			if cnt == 0 {
				continue
			}
			if c.crashedOnPath(infos[ti].costs) {
				// Requests routed through a crashed component fail: no
				// trace is recorded and no resource demand accrues.
				continue
			}
			res.Batches = append(res.Batches, trace.Batch{
				Trace: trace.Trace{API: api, Root: infos[ti].spans},
				Count: cnt,
			})
			// Payload variation averages out over the batch: the
			// spread of the mean cost of cnt i.i.d. requests is
			// CV/sqrt(cnt).
			factor := 1.0
			if spec.PayloadCV > 0 {
				factor += spec.PayloadCV / math.Sqrt(float64(cnt)) * c.rng.NormFloat64()
				if factor < 0.2 {
					factor = 0.2
				}
			}
			for comp, cost := range infos[ti].costs {
				demand[comp] = demand[comp].Add(cost.Scale(float64(cnt) * factor))
			}
		}
	}

	for _, comp := range c.spec.Components {
		d := demand[comp.Name]

		if c.faults.Crashed(comp.Name, c.window) {
			// Container down: scrapes read zero and the cache restarts
			// cold, so the post-restart windows show the warm-up
			// transient a real redeploy would.
			c.cacheMiB[comp.Name] = 0
			c.zeroUsage(comp, res.Usage)
			continue
		}

		// CPU: raw demand in millicores plus queuing inflation. A CPU
		// throttle shrinks the effective capacity; a latency spike
		// amplifies the queuing coefficient — both inflate consumption
		// superlinearly, exactly like an overloaded real component.
		reqCPU := d.CPUms / (windowSeconds * 1000)
		if comp.CPUCapacity > 0 {
			capacity := comp.CPUCapacity * c.faults.CPUFactor(comp.Name, c.window)
			queue := c.queue * c.faults.LatencyFactor(comp.Name, c.window)
			reqCPU *= 1 + queue*(reqCPU/capacity)
		}
		cpu := comp.BaseCPU + reqCPU

		// Memory: idle footprint + working set proportional to request
		// rate + slowly-decaying cache.
		working := d.MemMiB / windowSeconds * 100
		cache := c.cacheMiB[comp.Name]
		if comp.CacheMax > 0 {
			decay := comp.CacheDecay
			if decay <= 0 || decay > 1 {
				decay = 0.99
			}
			cache = cache*decay + d.CacheMiB*(1-cache/comp.CacheMax)
			if cache > comp.CacheMax {
				cache = comp.CacheMax
			}
			if cache < 0 {
				cache = 0
			}
			c.cacheMiB[comp.Name] = cache
		}
		mem := comp.BaseMemory + working + cache

		res.Usage[app.Pair{Component: comp.Name, Resource: app.CPU}] = c.noisy(cpu)
		res.Usage[app.Pair{Component: comp.Name, Resource: app.Memory}] = c.noisy(mem)

		if comp.Stateful {
			iops := d.WriteOps / windowSeconds
			tput := d.WriteKiB / windowSeconds
			c.diskMiB[comp.Name] += d.DiskMiB
			res.Usage[app.Pair{Component: comp.Name, Resource: app.WriteIOps}] = c.noisy(iops)
			res.Usage[app.Pair{Component: comp.Name, Resource: app.WriteTput}] = c.noisy(tput)
			res.Usage[app.Pair{Component: comp.Name, Resource: app.DiskUsage}] = c.noisy(c.diskMiB[comp.Name])
		}

		if c.faults.ScrapeGapped(comp.Name, c.window) {
			// The scrape failed: the telemetry store sees a zero sample,
			// while the component's internal state (cache, disk) moves on.
			c.zeroUsage(comp, res.Usage)
		}
	}

	for _, a := range c.attacks {
		a.Apply(c.window, windowSeconds, res.Usage)
	}
	c.applyCollectorFaults(&res)
	c.window++
	return res, nil
}

// crashedOnPath reports whether any component a request template touches is
// currently crashed (such requests fail end to end).
func (c *Cluster) crashedOnPath(costs map[string]app.Cost) bool {
	if c.faults == nil {
		return false
	}
	for comp := range costs {
		if c.faults.Crashed(comp, c.window) {
			return true
		}
	}
	return false
}

// zeroUsage writes zero samples for every resource of comp — what the
// metrics backend records when a container is down or a scrape is lost.
func (c *Cluster) zeroUsage(comp app.Component, u Usage) {
	u[app.Pair{Component: comp.Name, Resource: app.CPU}] = 0
	u[app.Pair{Component: comp.Name, Resource: app.Memory}] = 0
	if comp.Stateful {
		u[app.Pair{Component: comp.Name, Resource: app.WriteIOps}] = 0
		u[app.Pair{Component: comp.Name, Resource: app.WriteTput}] = 0
		u[app.Pair{Component: comp.Name, Resource: app.DiskUsage}] = 0
	}
}

// applyCollectorFaults perturbs the window's emitted traces the way a lossy
// tracing backend would: dropped and duplicated spans change batch counts
// without touching the resources the requests actually consumed, and clock
// skew delays whole batches to a later delivery window.
func (c *Cluster) applyCollectorFaults(res *WindowResult) {
	if c.faults == nil {
		return
	}
	w := c.window
	kept := res.Batches[:0]
	for bi, b := range res.Batches {
		n := b.Count
		n -= c.faults.DroppedSpans(w, bi, b.Count)
		n += c.faults.DuplicatedSpans(w, bi, b.Count)
		if n <= 0 {
			continue
		}
		b.Count = n
		kept = append(kept, b)
	}
	res.Batches = kept
	if k := c.faults.Skew(w); k > 0 {
		if c.pending == nil {
			c.pending = make(map[int][]trace.Batch)
		}
		c.pending[w+k] = append(c.pending[w+k], res.Batches...)
		res.Batches = nil
	}
	if delayed, ok := c.pending[w]; ok {
		// Late batches surface ahead of the window's own: the collector
		// flushes its backlog in arrival order.
		res.Batches = append(delayed, res.Batches...)
		delete(c.pending, w)
	}
}

// noisy applies multiplicative scrape noise.
func (c *Cluster) noisy(v float64) float64 {
	if c.noiseCV == 0 {
		return v
	}
	out := v * (1 + c.noiseCV*c.rng.NormFloat64())
	if out < 0 {
		out = 0
	}
	return out
}

// multinomial splits n requests across templates proportionally to their
// probabilities with sampling noise, guaranteeing the counts sum to n.
func (c *Cluster) multinomial(n int, infos []templateInfo) []int {
	counts := make([]int, len(infos))
	remaining := n
	probLeft := 1.0
	for i := range infos {
		if i == len(infos)-1 {
			counts[i] = remaining
			break
		}
		p := infos[i].prob
		if probLeft <= 0 {
			break
		}
		cond := p / probLeft
		if cond > 1 {
			cond = 1
		}
		mean := float64(remaining) * cond
		sd := math.Sqrt(float64(remaining) * cond * (1 - cond))
		k := int(math.Round(mean + sd*c.rng.NormFloat64()))
		if k < 0 {
			k = 0
		}
		if k > remaining {
			k = remaining
		}
		counts[i] = k
		remaining -= k
		probLeft -= p
	}
	return counts
}

// Run is the telemetry of a multi-window simulation: what the telemetry
// server (Jaeger + Prometheus) would have recorded.
type Run struct {
	// Windows holds the trace batches of each window.
	Windows [][]trace.Batch
	// Usage holds, per (component, resource) pair, the utilization
	// time-series aligned with Windows.
	Usage map[app.Pair][]float64
	// WindowSeconds is the scrape window duration.
	WindowSeconds float64
	// WindowsPerDay is the day length in windows (informational).
	WindowsPerDay int
}

// NumSpans returns the total spans across every window of the run.
func (r *Run) NumSpans() int {
	n := 0
	for _, w := range r.Windows {
		n += countSpans(w)
	}
	return n
}

// NumRequests returns the total requests across every window of the run.
func (r *Run) NumRequests() int {
	n := 0
	for _, w := range r.Windows {
		n += trace.TotalRequests(w)
	}
	return n
}

// Run simulates the full traffic program and collects its telemetry.
func (c *Cluster) Run(t *workload.Traffic) (*Run, error) {
	out := &Run{
		Usage:         make(map[app.Pair][]float64),
		WindowSeconds: t.WindowSeconds,
		WindowsPerDay: t.WindowsPerDay,
	}
	for _, p := range c.spec.ResourcePairs() {
		out.Usage[p] = make([]float64, 0, len(t.Windows))
	}
	for _, reqs := range t.Windows {
		wr, err := c.Step(reqs, t.WindowSeconds)
		if err != nil {
			return nil, err
		}
		out.Windows = append(out.Windows, wr.Batches)
		for p := range out.Usage {
			out.Usage[p] = append(out.Usage[p], wr.Usage[p])
		}
	}
	return out, nil
}

// NumWindows returns the number of simulated windows in the run.
func (r *Run) NumWindows() int { return len(r.Windows) }

// Series returns the utilization series of one pair (nil if untracked).
func (r *Run) Series(p app.Pair) []float64 { return r.Usage[p] }

// Slice returns the run restricted to windows [from, to). The usage slices
// share backing arrays with the original.
func (r *Run) Slice(from, to int) *Run {
	out := &Run{
		Windows:       r.Windows[from:to],
		Usage:         make(map[app.Pair][]float64, len(r.Usage)),
		WindowSeconds: r.WindowSeconds,
		WindowsPerDay: r.WindowsPerDay,
	}
	for p, s := range r.Usage {
		out.Usage[p] = s[from:to]
	}
	return out
}
