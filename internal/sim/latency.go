package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/app"
)

// Queueing-theoretic latency model over the same component/cost structure
// the telemetry simulator uses. Each component is an M/M/1 station whose
// server speed is its CPU capacity; an API request's end-to-end latency is
// the sum of the sojourn times at every node of its invocation path. This
// is the substrate the paper's QoS framing rests on ("ensure the
// application can serve the traffic", "maintain QoS", §1): it converts a
// resource allocation into user-visible latency, which is what the
// schedule-based autoscaling extension scores against an SLO.

// ComponentLoad summarises one component's queueing state in a window.
type ComponentLoad struct {
	// ArrivalRate is visits per second.
	ArrivalRate float64
	// Utilization is the offered load ρ = λ/μ (can exceed 1 when
	// overloaded).
	Utilization float64
	// WaitMs is the mean queueing delay per visit in milliseconds
	// (infinite when ρ ≥ 1).
	WaitMs float64
	// ServiceMs is the mean service time per visit in milliseconds.
	ServiceMs float64
}

// APILatency summarises one endpoint's end-to-end latency in a window.
type APILatency struct {
	// MeanMs is the expected request latency in milliseconds.
	MeanMs float64
	// P95Ms approximates the 95th-percentile latency (exponential
	// sojourn approximation per station).
	P95Ms float64
	// NoQueueMs is the zero-load latency at the same capacities (pure
	// service time); MeanMs/NoQueueMs is the queueing inflation factor.
	NoQueueMs float64
	// Saturated marks that at least one component on the path is at or
	// beyond capacity, making the steady-state latency unbounded.
	Saturated bool
}

// LatencyModel evaluates request latency for an application under given
// per-component CPU capacities.
type LatencyModel struct {
	spec *app.Spec
	// caps holds effective CPU capacity per component, in millicores.
	caps map[string]float64
	// per-API weighted node lists, precomputed.
	apis map[string][]latNode
}

type latNode struct {
	component string
	cpuMs     float64 // expected mc-ms per request (template-weighted)
	visits    float64 // expected visits per request
}

// NewLatencyModel builds the model from a spec with its declared
// capacities; override individual components via SetCapacity (e.g. to score
// an autoscaling allocation).
func NewLatencyModel(spec *app.Spec) (*LatencyModel, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("sim: invalid spec: %w", err)
	}
	m := &LatencyModel{
		spec: spec,
		caps: make(map[string]float64, len(spec.Components)),
		apis: make(map[string][]latNode, len(spec.APIs)),
	}
	for _, c := range spec.Components {
		m.caps[c.Name] = c.CPUCapacity
	}
	for _, a := range spec.APIs {
		agg := make(map[string]*latNode)
		for _, t := range a.Templates {
			var rec func(n *app.PathNode)
			rec = func(n *app.PathNode) {
				ln, ok := agg[n.Component]
				if !ok {
					ln = &latNode{component: n.Component}
					agg[n.Component] = ln
				}
				ln.cpuMs += t.Prob * n.Cost.CPUms
				ln.visits += t.Prob
				for _, ch := range n.Children {
					rec(ch)
				}
			}
			rec(t.Root)
		}
		nodes := make([]latNode, 0, len(agg))
		for _, ln := range agg {
			nodes = append(nodes, *ln)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].component < nodes[j].component })
		m.apis[a.Name] = nodes
	}
	return m, nil
}

// SetCapacity overrides one component's CPU capacity (millicores).
func (m *LatencyModel) SetCapacity(component string, mcores float64) error {
	if _, ok := m.caps[component]; !ok {
		return fmt.Errorf("sim: unknown component %q", component)
	}
	if mcores <= 0 {
		return fmt.Errorf("sim: capacity must be positive")
	}
	m.caps[component] = mcores
	return nil
}

// Evaluate computes per-component loads and per-API latencies for one
// window of traffic (requests per API over windowSeconds).
func (m *LatencyModel) Evaluate(requests map[string]int, windowSeconds float64) (map[string]ComponentLoad, map[string]APILatency, error) {
	if windowSeconds <= 0 {
		return nil, nil, fmt.Errorf("sim: windowSeconds must be positive")
	}
	// Aggregate per-component arrival rate (visits/s) and CPU demand.
	arrivals := make(map[string]float64)
	demandMs := make(map[string]float64) // mc-ms per second
	for api, n := range requests {
		if n <= 0 {
			continue
		}
		nodes, ok := m.apis[api]
		if !ok {
			return nil, nil, fmt.Errorf("sim: unknown API %q", api)
		}
		rate := float64(n) / windowSeconds
		for _, ln := range nodes {
			arrivals[ln.component] += rate * ln.visits
			demandMs[ln.component] += rate * ln.cpuMs
		}
	}

	loads := make(map[string]ComponentLoad, len(arrivals))
	for comp, lam := range arrivals {
		cap := m.caps[comp]
		// Mean CPU work per visit in mc-ms.
		perVisit := 0.0
		if lam > 0 {
			perVisit = demandMs[comp] / lam
		}
		// Service time: perVisit millicore-milliseconds of work on a
		// server running at cap millicores → milliseconds of wall
		// time per visit.
		serviceMs := perVisit / cap
		mu := math.Inf(1)
		if serviceMs > 0 {
			mu = 1000 / serviceMs // visits per second
		}
		rho := lam / mu
		wait := math.Inf(1)
		if rho < 1 {
			// M/M/1 mean queueing delay: ρ/(μ−λ).
			wait = rho / (mu - lam) * 1000
		}
		loads[comp] = ComponentLoad{
			ArrivalRate: lam,
			Utilization: rho,
			WaitMs:      wait,
			ServiceMs:   serviceMs,
		}
	}

	lats := make(map[string]APILatency, len(requests))
	for api, n := range requests {
		if n <= 0 {
			continue
		}
		var lat APILatency
		rate95 := 0.0 // Σ 1/(μ−λ) per station, for the p95 approximation
		for _, ln := range m.apis[api] {
			ld := loads[ln.component]
			if ld.Utilization >= 1 {
				lat.Saturated = true
				lat.MeanMs = math.Inf(1)
				lat.P95Ms = math.Inf(1)
				break
			}
			// Per-visit sojourn = wait + service, scaled by the
			// expected visits of this API at the component.
			soj := (ld.WaitMs + ld.ServiceMs) * ln.visits
			lat.MeanMs += soj
			lat.NoQueueMs += ld.ServiceMs * ln.visits
			rate95 += soj // treat stations as exponential stages
		}
		if !lat.Saturated {
			// Exponential-sum tail approximation: p95 ≈ mean·ln20
			// for a single dominant stage, smoothly below for many
			// balanced stages. Use the conservative single-stage
			// bound.
			lat.P95Ms = lat.MeanMs * math.Log(20)
			_ = rate95
		}
		lats[api] = lat
	}
	return loads, lats, nil
}

// SLOViolations counts, over a traffic program's windows, how many windows
// have any API whose p95 latency exceeds sloMs under the model's current
// capacities.
func (m *LatencyModel) SLOViolations(windows []map[string]int, windowSeconds, sloMs float64) (int, error) {
	violations := 0
	for _, reqs := range windows {
		_, lats, err := m.Evaluate(reqs, windowSeconds)
		if err != nil {
			return 0, err
		}
		for _, lat := range lats {
			if lat.Saturated || lat.P95Ms > sloMs {
				violations++
				break
			}
		}
	}
	return violations, nil
}

// InflationViolations counts windows where any API's mean latency exceeds
// maxInflation × its zero-load latency (or a component saturates) — a
// scale-free queueing SLO that is meaningful regardless of the absolute
// service-time scale of the deployment.
func (m *LatencyModel) InflationViolations(windows []map[string]int, windowSeconds, maxInflation float64) (int, error) {
	violations := 0
	for _, reqs := range windows {
		_, lats, err := m.Evaluate(reqs, windowSeconds)
		if err != nil {
			return 0, err
		}
		for _, lat := range lats {
			if lat.Saturated || (lat.NoQueueMs > 0 && lat.MeanMs > maxInflation*lat.NoQueueMs) {
				violations++
				break
			}
		}
	}
	return violations, nil
}
