package sim

import (
	"repro/internal/app"
)

// Attack injects resource consumption that the API traffic cannot justify.
// Attacks observe the cluster's global window counter, so they can be armed
// before a run and fire mid-run, like the paper's 07/19 ransomware launch.
type Attack interface {
	// Apply mutates the window's measured usage. windowSeconds is the
	// scrape window duration.
	Apply(window int, windowSeconds float64, u Usage)
}

// Ransomware models a crypto-ransomware attack on a stateful component: the
// malware reads stored documents, encrypts them (CPU), and writes them back
// (write IOps and throughput), exactly the fingerprint of the paper's §5.4
// attack on PostStorageMongoDB. A side effect mirrored from the paper's
// Figure 19c alert: while the store is busy encrypting, the front end serves
// slightly less traffic, so an optional victim list can shed a fraction of
// CPU elsewhere.
type Ransomware struct {
	// Component under attack.
	Component string
	// FromWindow and ToWindow bound the attack (half-open interval).
	FromWindow, ToWindow int
	// ExtraCPU is stolen CPU in millicores while active.
	ExtraCPU float64
	// ExtraWriteOps is the re-encryption write rate in ops/s.
	ExtraWriteOps float64
	// ExtraWriteKiB is the re-encryption write throughput in KiB/s.
	ExtraWriteKiB float64
	// ShedComponent, if set, loses ShedFraction of its CPU while the
	// attack is active (the collateral slowdown of the entry component).
	ShedComponent string
	// ShedFraction is the fractional CPU drop on ShedComponent (0..1).
	ShedFraction float64
}

// Apply implements Attack.
func (r Ransomware) Apply(window int, _ float64, u Usage) {
	if window < r.FromWindow || window >= r.ToWindow {
		return
	}
	u[app.Pair{Component: r.Component, Resource: app.CPU}] += r.ExtraCPU
	u[app.Pair{Component: r.Component, Resource: app.WriteIOps}] += r.ExtraWriteOps
	u[app.Pair{Component: r.Component, Resource: app.WriteTput}] += r.ExtraWriteKiB
	if r.ShedComponent != "" && r.ShedFraction > 0 {
		p := app.Pair{Component: r.ShedComponent, Resource: app.CPU}
		u[p] *= 1 - r.ShedFraction
	}
}

// Cryptojack models a cryptojacking attack: a mining process installed in a
// component steals CPU for proof-of-work computations from FromWindow
// onwards (the paper's §5.4 pow.py inside PostStorageMongoDB).
type Cryptojack struct {
	// Component hosting the miner.
	Component string
	// FromWindow is when mining starts; ToWindow bounds it (use a large
	// value for "until the end").
	FromWindow, ToWindow int
	// ExtraCPU is the sustained mining load in millicores.
	ExtraCPU float64
}

// Apply implements Attack.
func (c Cryptojack) Apply(window int, _ float64, u Usage) {
	if window < c.FromWindow || window >= c.ToWindow {
		return
	}
	u[app.Pair{Component: c.Component, Resource: app.CPU}] += c.ExtraCPU
}

// MemoryLeak models a software bug steadily leaking memory in a component —
// the paper's §5.4 mentions memory leakage as another detectable incident.
type MemoryLeak struct {
	// Component with the leak.
	Component string
	// FromWindow is when the leak starts.
	FromWindow int
	// MiBPerWindow is the leak rate.
	MiBPerWindow float64
}

// Apply implements Attack.
func (m MemoryLeak) Apply(window int, _ float64, u Usage) {
	if window < m.FromWindow {
		return
	}
	leaked := m.MiBPerWindow * float64(window-m.FromWindow+1)
	u[app.Pair{Component: m.Component, Resource: app.Memory}] += leaked
}
