package webdemo

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func testDemo() *Demo {
	p := experiments.DefaultParams(io.Discard)
	p.Quick = true
	p.Reps = 1
	return New(experiments.NewRunner(p))
}

func get(t *testing.T, h http.Handler, path string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec, rec.Body.String()
}

func TestDemoPages(t *testing.T) {
	if testing.Short() {
		t.Skip("provisions a lab")
	}
	h := testDemo().Handler()

	rec, body := get(t, h, "/")
	if rec.Code != http.StatusOK {
		t.Fatalf("index = %d", rec.Code)
	}
	for _, id := range []string{"scale2x", "scale3x", "compose", "read", "flat"} {
		if !strings.Contains(body, "/scenario/"+id) {
			t.Errorf("index missing scenario %s", id)
		}
	}

	rec, body = get(t, h, "/scenario/read")
	if rec.Code != http.StatusOK {
		t.Fatalf("scenario = %d", rec.Code)
	}
	if !strings.Contains(body, "<svg") || !strings.Contains(body, "polyline") {
		t.Error("scenario page missing the SVG chart")
	}
	for _, m := range experiments.Methods {
		if !strings.Contains(body, m) {
			t.Errorf("scenario page missing method %s", m)
		}
	}
	if !strings.Contains(body, "MAPE") {
		t.Error("scenario page missing the error table")
	}

	if rec, _ := get(t, h, "/scenario/nope"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown scenario = %d", rec.Code)
	}
	if rec, _ := get(t, h, "/other"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown path = %d", rec.Code)
	}
}
