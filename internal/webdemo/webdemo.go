// Package webdemo renders the interactive comparison the paper's artifact
// ships as its web-based demo (Artifact Appendix A.5): precomputed
// estimation scenarios — unseen user scales, API compositions, and traffic
// shapes — shown as per-method curves against the actual measurements, plus
// the sanity-check timelines. Everything is server-rendered HTML + inline
// SVG from the stdlib, so the demo works offline in any browser.
package webdemo

import (
	"fmt"
	"html/template"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"

	"repro/internal/app"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/workload"
)

// Scenario is one precomputed comparison: a query, its ground truth, and
// every method's estimate for a chosen pair.
type Scenario struct {
	// ID is the URL slug, Title the human-readable description.
	ID, Title string
	// Pair is the plotted estimation target.
	Pair app.Pair
	// Actual is the measured utilization.
	Actual []float64
	// Series holds each method's estimate, keyed by method name.
	Series map[string][]float64
	// MAPE holds each method's error.
	MAPE map[string]float64
}

// Demo precomputes scenarios once and serves them.
type Demo struct {
	once      sync.Once
	initErr   error
	runner    *experiments.Runner
	scenarios []*Scenario
}

// New returns a demo over the given experiment runner (quick parameters
// keep first-load latency in seconds).
func New(r *experiments.Runner) *Demo {
	return &Demo{runner: r}
}

// precompute builds the scenario set the paper's demo describes.
func (d *Demo) precompute() {
	lab, err := d.runner.Social()
	if err != nil {
		d.initErr = err
		return
	}
	type spec struct {
		id, title string
		pair      app.Pair
		query     *workload.Traffic
	}
	composeCPU := app.Pair{Component: "ComposePostService", Resource: app.CPU}
	postIOps := app.Pair{Component: "PostStorageMongoDB", Resource: app.WriteIOps}
	frontCPU := app.Pair{Component: "FrontendNGINX", Resource: app.CPU}
	mix := lab.Mix
	specs := []spec{
		{"scale2x", "Unseen user scale: 2x more users (FrontendNGINX CPU)", frontCPU,
			quickQuery(lab, workload.TwoPeak{}, mix, 2.0, 701)},
		{"scale3x", "Unseen user scale: 3x more users (FrontendNGINX CPU)", frontCPU,
			quickQuery(lab, workload.TwoPeak{}, mix, 3.0, 702)},
		{"compose", "Unseen composition: /composePost-dominated (ComposePostService CPU)", composeCPU,
			quickQuery(lab, workload.TwoPeak{}, composeMix(), 2.0, 703)},
		{"read", "Unseen composition: /readTimeline-dominated (PostStorageMongoDB write IOps)", postIOps,
			quickQuery(lab, workload.TwoPeak{}, readMix(), 2.0, 704)},
		{"flat", "Unseen shape: flat traffic (ComposePostService CPU)", composeCPU,
			quickQuery(lab, workload.Flat{}, mix, 1.0, 705)},
	}
	for _, sp := range specs {
		ev, err := lab.Evaluate(sp.query)
		if err != nil {
			d.initErr = err
			return
		}
		s := &Scenario{
			ID: sp.id, Title: sp.title, Pair: sp.pair,
			Actual: ev.Actual[sp.pair],
			Series: make(map[string][]float64, len(experiments.Methods)),
			MAPE:   make(map[string]float64, len(experiments.Methods)),
		}
		for _, m := range experiments.Methods {
			s.Series[m] = ev.Series[m][sp.pair]
			s.MAPE[m] = eval.MAPE(ev.Series[m][sp.pair], ev.Actual[sp.pair])
		}
		d.scenarios = append(d.scenarios, s)
	}
}

func quickQuery(lab *experiments.Lab, shape workload.Shape, mix workload.Mix, scale float64, seed int64) *workload.Traffic {
	return lab.QueryDay(shape, mix, scale, seed)
}

func composeMix() workload.Mix {
	return workload.Mix{"/composePost": 0.55, "/readTimeline": 0.25, "/uploadMedia": 0.10, "/getMedia": 0.10}
}

func readMix() workload.Mix {
	return workload.Mix{"/composePost": 0.06, "/readTimeline": 0.75, "/uploadMedia": 0.04, "/getMedia": 0.15}
}

// Handler returns the demo's HTTP handler.
func (d *Demo) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", d.handleIndex)
	mux.HandleFunc("/scenario/", d.handleScenario)
	return mux
}

func (d *Demo) ensure(w http.ResponseWriter) bool {
	d.once.Do(d.precompute)
	if d.initErr != nil {
		http.Error(w, fmt.Sprintf("demo initialisation failed: %v", d.initErr), http.StatusInternalServerError)
		return false
	}
	return true
}

func (d *Demo) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	if !d.ensure(w) {
		return
	}
	var b strings.Builder
	b.WriteString(pageHead("DeepRest demo"))
	b.WriteString("<h1>DeepRest — resource estimation demo</h1>")
	b.WriteString("<p>Precomputed scenarios comparing DeepRest with the baseline estimators, as in the paper's web demo (Artifact Appendix A.5). Each page plots every method's estimate against the actual measurement for one unseen query.</p><ul>")
	for _, s := range d.scenarios {
		fmt.Fprintf(&b, `<li><a href="/scenario/%s">%s</a></li>`, s.ID, template.HTMLEscapeString(s.Title))
	}
	b.WriteString("</ul>" + pageFoot)
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

func (d *Demo) handleScenario(w http.ResponseWriter, r *http.Request) {
	if !d.ensure(w) {
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/scenario/")
	var sc *Scenario
	for _, s := range d.scenarios {
		if s.ID == id {
			sc = s
			break
		}
	}
	if sc == nil {
		http.NotFound(w, r)
		return
	}
	var b strings.Builder
	b.WriteString(pageHead(sc.Title))
	fmt.Fprintf(&b, "<h1>%s</h1>", template.HTMLEscapeString(sc.Title))
	b.WriteString(`<p><a href="/">&larr; all scenarios</a></p>`)
	b.WriteString(renderChart(sc))
	b.WriteString("<table><tr><th>method</th><th>MAPE</th></tr>")
	names := append([]string{}, experiments.Methods...)
	sort.Slice(names, func(i, j int) bool { return sc.MAPE[names[i]] < sc.MAPE[names[j]] })
	for _, m := range names {
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%.1f%%</td></tr>", template.HTMLEscapeString(m), sc.MAPE[m])
	}
	b.WriteString("</table>" + pageFoot)
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

// methodColors assigns stable plot colors.
var methodColors = map[string]string{
	experiments.MethodDeepRest:       "#1a9850",
	experiments.MethodResourceAware:  "#d73027",
	experiments.MethodSimpleScaling:  "#e08214",
	experiments.MethodComponentAware: "#4575b4",
	experiments.MethodSeasonalAR:     "#9970ab",
}

// renderChart emits an inline SVG line chart: actual in black, methods in
// color.
func renderChart(sc *Scenario) string {
	const width, height, pad = 860, 360, 40
	max := 0.0
	for _, v := range sc.Actual {
		max = math.Max(max, v)
	}
	for _, series := range sc.Series {
		for _, v := range series {
			if !math.IsInf(v, 0) {
				max = math.Max(max, v)
			}
		}
	}
	if max == 0 {
		max = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %d %d" width="%d" height="%d" role="img">`, width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="#fafafa"/>`, width, height)
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`, pad, height-pad, width-pad, height-pad)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`, pad, pad, pad, height-pad)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" fill="#333">%.0f %s</text>`, 4, pad+4, max, sc.Pair.Resource.Unit())
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" fill="#333">0</text>`, pad-14, height-pad+4)

	plot := func(series []float64, color string, widthPx float64, dash string) {
		if len(series) == 0 {
			return
		}
		var pts []string
		for i, v := range series {
			if math.IsInf(v, 0) || math.IsNaN(v) {
				v = max
			}
			x := float64(pad) + float64(i)/float64(len(series)-1)*float64(width-2*pad)
			y := float64(height-pad) - v/max*float64(height-2*pad)
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
		}
		dashAttr := ""
		if dash != "" {
			dashAttr = fmt.Sprintf(` stroke-dasharray="%s"`, dash)
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="%.1f"%s points="%s"/>`,
			color, widthPx, dashAttr, strings.Join(pts, " "))
	}
	for _, m := range experiments.Methods {
		plot(sc.Series[m], methodColors[m], 1.5, "4 3")
	}
	plot(sc.Actual, "#000000", 2.5, "")

	// Legend.
	y := pad
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="14" height="3" fill="#000"/><text x="%d" y="%d" font-size="12">actual</text>`, width-190, y, width-170, y+6)
	for _, m := range experiments.Methods {
		y += 18
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="14" height="3" fill="%s"/><text x="%d" y="%d" font-size="12">%s</text>`,
			width-190, y, methodColors[m], width-170, y+6, template.HTMLEscapeString(m))
	}
	b.WriteString("</svg>")
	return b.String()
}

func pageHead(title string) string {
	return fmt.Sprintf(`<!DOCTYPE html><html><head><meta charset="utf-8"><title>%s</title>
<style>body{font-family:sans-serif;max-width:920px;margin:2em auto;padding:0 1em;color:#222}
table{border-collapse:collapse;margin-top:1em}td,th{border:1px solid #ccc;padding:4px 12px;text-align:left}
a{color:#4575b4}</style></head><body>`, template.HTMLEscapeString(title))
}

const pageFoot = `</body></html>`
