// Package testutil provides shared fixtures for tests and benchmarks: small
// simulated deployments with deterministic telemetry, so individual test
// files do not repeat the simulate-learn-query plumbing.
package testutil

import (
	"testing"

	"repro/internal/app"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ToyDay is the number of windows per day used by toy fixtures: short
// enough to keep tests fast, long enough to carry a visible diurnal shape.
const ToyDay = 48

// ToyProgram returns a traffic program for the Toy application: `days` days
// of two-peak traffic at the given peak RPS with a fixed seed.
func ToyProgram(days int, peakRPS float64, seed int64) workload.Program {
	p := workload.Uniform(days, workload.DaySpec{
		Shape:   workload.TwoPeak{},
		Mix:     workload.Mix{"/read": 0.7, "/write": 0.3},
		PeakRPS: peakRPS,
	})
	p.WindowsPerDay = ToyDay
	p.WindowSeconds = 60
	p.Seed = seed
	return p
}

// ToyTelemetry simulates `days` days of Toy-application traffic and returns
// the cluster (so callers can continue it with query traffic), the traffic,
// and the run.
func ToyTelemetry(t testing.TB, days int, peakRPS float64, seed int64) (*sim.Cluster, *workload.Traffic, *sim.Run) {
	t.Helper()
	cluster, err := sim.NewCluster(app.Toy(), seed)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	traffic := ToyProgram(days, peakRPS, seed).Generate()
	run, err := cluster.Run(traffic)
	if err != nil {
		t.Fatalf("cluster.Run: %v", err)
	}
	return cluster, traffic, run
}

// FocusPairs filters a usage map down to the given pairs.
func FocusPairs(usage map[app.Pair][]float64, pairs ...app.Pair) map[app.Pair][]float64 {
	out := make(map[app.Pair][]float64, len(pairs))
	for _, p := range pairs {
		if s, ok := usage[p]; ok {
			out[p] = s
		}
	}
	return out
}
