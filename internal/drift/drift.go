// Package drift quantifies how far a trained DeepRest model has drifted
// from live telemetry — the §6 "adaptation to application evolution" signal,
// promoted out of the experiment driver (internal/experiments/ext_drift.go)
// into a reusable API the continuous-learning pipeline consumes.
//
// Two kinds of drift are scored:
//
//   - topology drift: traces exercise invocation paths the feature space has
//     never seen (a new component, operation, or call edge shipped), counted
//     by the feature extractor's Unknown tally;
//   - concept drift: the paths are known but their cost changed (a new
//     version makes a handler 1.4× more expensive), visible as estimation
//     error and confidence intervals that stop covering the measurements.
//
// A Detector turns a Signal into a retrain/no-retrain decision via
// configurable thresholds; the pipeline fires an early retrain when
// Signal.Drifted is set.
package drift

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/estimator"
	"repro/internal/eval"
	"repro/internal/features"
	"repro/internal/trace"
)

// Signal summarises one drift measurement of a model against fresh
// telemetry windows.
type Signal struct {
	// Windows is the number of telemetry windows measured.
	Windows int `json:"windows"`
	// UnknownPathFrac is the fraction of span visits whose invocation
	// path the model's feature space has never seen (topology drift).
	UnknownPathFrac float64 `json:"unknown_path_frac"`
	// Coverage is the fraction of (pair, window) observations that fall
	// inside the model's δ-confidence interval. A calibrated model covers
	// ≈δ of them; concept drift pushes measurements outside the band.
	Coverage float64 `json:"coverage"`
	// MeanMAPE averages the per-pair estimation error (percent).
	MeanMAPE float64 `json:"mean_mape"`
	// PairMAPE holds the per-pair estimation error (percent).
	PairMAPE map[app.Pair]float64 `json:"-"`
	// WorstPair and WorstMAPE identify the most mis-estimated pair.
	WorstPair app.Pair `json:"worst_pair"`
	WorstMAPE float64  `json:"worst_mape"`
	// Drifted reports the detector's verdict, Reason the threshold that
	// tripped (empty when not drifted).
	Drifted bool   `json:"drifted"`
	Reason  string `json:"reason,omitempty"`
}

// Detector holds the drift thresholds. The zero value is not useful; start
// from NewDetector.
type Detector struct {
	// MaxUnknownFrac flags topology drift when more than this fraction of
	// span visits hit unknown invocation paths.
	MaxUnknownFrac float64
	// MinCoverage flags concept drift when fewer than this fraction of
	// observations fall inside the confidence interval.
	MinCoverage float64
	// MaxMeanMAPE flags concept drift when the mean estimation error
	// (percent) exceeds this bound.
	MaxMeanMAPE float64
}

// NewDetector returns a detector with the default thresholds.
func NewDetector() *Detector {
	return &Detector{MaxUnknownFrac: 0.05, MinCoverage: 0.5, MaxMeanMAPE: 35}
}

// Measure scores model m against fresh telemetry: the windows of trace
// batches and the measured utilization per pair. Only pairs the model
// estimates and actual covers are scored; monotone counters (disk usage)
// are skipped because their integration base shifts between training and
// measurement. The returned Signal has Drifted/Reason filled in per the
// detector thresholds.
func (d *Detector) Measure(m *estimator.Model, windows [][]trace.Batch, actual map[app.Pair][]float64) (Signal, error) {
	return d.MeasureVectors(m, m.Space.ExtractSeries(windows), actual)
}

// MeasureVectors is Measure over pre-extracted feature vectors — the
// telemetry store caches them per window (extracted once at Record time), so
// the continuous-learning pipeline's periodic drift checks stop re-walking
// the same trace trees. The vectors must come from m.Space; extraction and
// prediction each happen exactly once here, where Measure previously
// extracted the series twice (once for the unknown tally, once inside
// Predict).
func (d *Detector) MeasureVectors(m *estimator.Model, series []features.Vector, actual map[app.Pair][]float64) (Signal, error) {
	sig := Signal{Windows: len(series), PairMAPE: make(map[app.Pair]float64)}
	if len(series) == 0 {
		return sig, fmt.Errorf("drift: no windows to measure")
	}

	// Topology drift: unknown-path fraction from the feature extractor.
	var known, unknown float64
	for _, v := range series {
		unknown += v.Unknown
		for _, c := range v.Counts {
			known += c
		}
	}
	if known+unknown > 0 {
		sig.UnknownPathFrac = unknown / (known + unknown)
	}

	// Concept drift: estimation error and interval coverage.
	est, err := m.PredictVectors(series)
	if err != nil {
		return sig, fmt.Errorf("drift: predict: %w", err)
	}
	var covered, observations int
	for _, p := range m.Pairs {
		measured, ok := actual[p]
		if !ok || len(measured) != len(series) || p.Resource == app.DiskUsage {
			continue
		}
		e := est[p]
		for i, v := range measured {
			observations++
			if v >= e.Low[i] && v <= e.Up[i] {
				covered++
			}
		}
		mape := eval.MAPE(e.Exp, measured)
		sig.PairMAPE[p] = mape
		sig.MeanMAPE += mape
		if mape > sig.WorstMAPE {
			sig.WorstMAPE, sig.WorstPair = mape, p
		}
	}
	if len(sig.PairMAPE) > 0 {
		sig.MeanMAPE /= float64(len(sig.PairMAPE))
	}
	if observations > 0 {
		sig.Coverage = float64(covered) / float64(observations)
	}

	switch {
	case sig.UnknownPathFrac > d.MaxUnknownFrac:
		sig.Drifted = true
		sig.Reason = fmt.Sprintf("unknown-path fraction %.3f exceeds %.3f (topology drift)", sig.UnknownPathFrac, d.MaxUnknownFrac)
	case observations > 0 && sig.Coverage < d.MinCoverage:
		sig.Drifted = true
		sig.Reason = fmt.Sprintf("interval coverage %.2f below %.2f", sig.Coverage, d.MinCoverage)
	case len(sig.PairMAPE) > 0 && sig.MeanMAPE > d.MaxMeanMAPE:
		sig.Drifted = true
		sig.Reason = fmt.Sprintf("mean MAPE %.1f%% exceeds %.1f%% (worst: %s at %.1f%%)", sig.MeanMAPE, d.MaxMeanMAPE, sig.WorstPair, sig.WorstMAPE)
	}
	return sig, nil
}
