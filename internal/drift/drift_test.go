package drift

import (
	"strings"
	"testing"

	"repro/internal/app"
	"repro/internal/estimator"
	"repro/internal/testutil"
	"repro/internal/trace"
)

func quickConfig() estimator.Config {
	cfg := estimator.DefaultConfig()
	cfg.Hidden = 4
	cfg.Epochs = 10
	cfg.AttentionEpochs = 0
	cfg.ChunkLen = 24
	return cfg
}

// trainToy trains a small model over two toy days and returns it with its
// training telemetry.
func trainToy(t *testing.T) (*estimator.Model, [][]trace.Batch, map[app.Pair][]float64) {
	t.Helper()
	_, _, run := testutil.ToyTelemetry(t, 2, 30, 71)
	p := app.Pair{Component: "Service", Resource: app.CPU}
	usage := testutil.FocusPairs(run.Usage, p)
	m, err := estimator.Train(run.Windows, usage, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m, run.Windows, usage
}

func TestNoDriftOnTrainingData(t *testing.T) {
	m, windows, usage := trainToy(t)
	det := NewDetector()
	// Loose concept thresholds: in-sample error of the quick config is
	// small but not tiny, and this test is about the verdict plumbing.
	det.MaxMeanMAPE = 60
	det.MinCoverage = 0.2
	sig, err := det.Measure(m, windows, usage)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Drifted {
		t.Fatalf("training data flagged as drift: %+v", sig)
	}
	if sig.UnknownPathFrac != 0 {
		t.Errorf("unknown paths on training data: %f", sig.UnknownPathFrac)
	}
	if sig.Windows != len(windows) {
		t.Errorf("windows = %d, want %d", sig.Windows, len(windows))
	}
}

func TestConceptDriftFlagged(t *testing.T) {
	m, windows, usage := trainToy(t)
	p := app.Pair{Component: "Service", Resource: app.CPU}
	inflated := make([]float64, len(usage[p]))
	for i, v := range usage[p] {
		inflated[i] = 8 * v
	}
	det := NewDetector()
	det.MaxMeanMAPE = 60
	sig, err := det.Measure(m, windows, map[app.Pair][]float64{p: inflated})
	if err != nil {
		t.Fatal(err)
	}
	if !sig.Drifted {
		t.Fatalf("8x utilization not flagged: %+v", sig)
	}
	if sig.Reason == "" || sig.WorstPair != p {
		t.Errorf("reason=%q worst=%s", sig.Reason, sig.WorstPair)
	}
	if sig.PairMAPE[p] < 80 {
		t.Errorf("MAPE on 8x data suspiciously low: %.1f%%", sig.PairMAPE[p])
	}
}

func TestTopologyDriftFlagged(t *testing.T) {
	m, windows, usage := trainToy(t)
	// A "new version" renames every operation: every span visit lands on
	// an unknown invocation path.
	renamed := make([][]trace.Batch, len(windows))
	for w, batches := range windows {
		nb := make([]trace.Batch, len(batches))
		for i, b := range batches {
			clone := b.Trace.Root.Clone()
			renameOps(clone, "_v2")
			nb[i] = trace.Batch{Trace: trace.Trace{API: b.Trace.API, Root: clone}, Count: b.Count}
		}
		renamed[w] = nb
	}
	sig, err := NewDetector().Measure(m, renamed, usage)
	if err != nil {
		t.Fatal(err)
	}
	if sig.UnknownPathFrac < 0.9 {
		t.Fatalf("unknown fraction = %.2f, want ~1", sig.UnknownPathFrac)
	}
	if !sig.Drifted || !strings.Contains(sig.Reason, "topology") {
		t.Fatalf("topology drift not flagged: %+v", sig)
	}
}

func TestMeasureEmptyWindows(t *testing.T) {
	m, _, _ := trainToy(t)
	if _, err := NewDetector().Measure(m, nil, nil); err == nil {
		t.Fatal("no error on empty windows")
	}
}

func renameOps(s *trace.Span, sfx string) {
	s.Operation += sfx
	for _, c := range s.Children {
		renameOps(c, sfx)
	}
}
