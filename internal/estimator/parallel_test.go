package estimator

import (
	"bytes"
	"testing"

	"repro/internal/app"
	"repro/internal/testutil"
)

// TestTrainParallelismDeterministic: the per-expert worker pool must not
// change results. Every expert trains from its own deterministic seed
// (cfg.Seed + pair index), so a 1-worker and an N-worker run produce
// byte-identical models.
func TestTrainParallelismDeterministic(t *testing.T) {
	_, _, run := testutil.ToyTelemetry(t, 1, 30, 61)
	usage := testutil.FocusPairs(run.Usage,
		app.Pair{Component: "Service", Resource: app.CPU},
		app.Pair{Component: "DB", Resource: app.CPU},
		app.Pair{Component: "DB", Resource: app.WriteIOps},
	)
	cfg := DefaultConfig()
	cfg.Hidden = 3
	cfg.Epochs = 5
	cfg.AttentionEpochs = 2
	cfg.ChunkLen = 24

	snapshots := make([][]byte, 0, 2)
	for _, par := range []int{1, 4} {
		c := cfg
		c.Parallelism = par
		m, err := Train(run.Windows, usage, c)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatal(err)
		}
		snapshots = append(snapshots, buf.Bytes())
	}
	if !bytes.Equal(snapshots[0], snapshots[1]) {
		t.Fatal("1-worker and 4-worker training produced different models")
	}
}

// TestFromModelWarmStart: warm-starting copies matching experts' parameters
// and silently skips pairs the source never learned or whose shapes differ.
func TestFromModelWarmStart(t *testing.T) {
	_, _, run := testutil.ToyTelemetry(t, 1, 30, 62)
	p := app.Pair{Component: "Service", Resource: app.CPU}
	q := app.Pair{Component: "DB", Resource: app.CPU}
	cfg := DefaultConfig()
	cfg.Hidden = 3
	cfg.Epochs = 3
	cfg.AttentionEpochs = 0
	cfg.ChunkLen = 24

	src, err := Train(run.Windows, testutil.FocusPairs(run.Usage, p), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Warm training with zero epochs: the new model's expert for p must
	// carry exactly the source parameters; q (absent from src) starts cold.
	c := cfg
	c.Epochs = 0
	warm, err := TrainWarm(run.Windows, testutil.FocusPairs(run.Usage, p, q), c, FromModel(src))
	if err != nil {
		t.Fatal(err)
	}
	sp, wp := src.Experts[p].Params(), warm.Experts[p].Params()
	for i := range wp {
		if len(sp[i].Data) != len(wp[i].Data) {
			continue // attention shapes differ with peer count
		}
		for j := range wp[i].Data {
			if wp[i].Data[j] != sp[i].Data[j] {
				t.Fatalf("param %s[%d] not copied by warm start", wp[i].Name, j)
			}
		}
	}

	// A nil source is a no-op, not a crash.
	if _, err := TrainWarm(run.Windows, testutil.FocusPairs(run.Usage, p), c, FromModel(nil)); err != nil {
		t.Fatal(err)
	}
}
