package estimator

import (
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sort"
	"sync"
	"testing"

	"repro/internal/app"
	"repro/internal/testutil"
)

// goldenConfig is the fixed training configuration behind the determinism
// goldens. Any change here invalidates the recorded hashes.
func goldenConfig() Config {
	cfg := DefaultConfig()
	cfg.Hidden = 4
	cfg.Epochs = 3
	cfg.AttentionEpochs = 2
	cfg.ChunkLen = 24
	cfg.Seed = 1
	return cfg
}

// goldenPairs exercises a level target, a stateful level target, and a
// delta-kind (re-integrated) target, with enough experts for phase B.
func goldenPairs() []app.Pair {
	return []app.Pair{
		{Component: "Service", Resource: app.CPU},
		{Component: "DB", Resource: app.CPU},
		{Component: "DB", Resource: app.WriteIOps},
		{Component: "DB", Resource: app.DiskUsage},
	}
}

// lossRecorder collects per-expert epoch losses from the (concurrent)
// Progress hook, keyed "pair|phase".
type lossRecorder struct {
	mu     sync.Mutex
	losses map[string][]float64
}

func newLossRecorder() *lossRecorder {
	return &lossRecorder{losses: make(map[string][]float64)}
}

func (r *lossRecorder) hook(ev ProgressEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := ev.Pair + "|" + ev.Phase
	for len(r.losses[key]) < ev.Epoch {
		r.losses[key] = append(r.losses[key], math.NaN())
	}
	r.losses[key][ev.Epoch-1] = ev.Loss
}

// hashFloats folds the exact bit patterns of a float series into an FNV-1a
// hash: equal hashes mean bit-identical floats.
func hashFloats(vals []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range vals {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// goldenRun trains the golden model and returns the per-expert epoch-loss
// series and per-pair prediction hashes.
func goldenRun(t *testing.T) (map[string][]float64, map[string]uint64) {
	t.Helper()
	_, _, run := testutil.ToyTelemetry(t, 2, 30, 12)
	usage := testutil.FocusPairs(run.Usage, goldenPairs()...)
	rec := newLossRecorder()
	cfg := goldenConfig()
	cfg.Progress = rec.hook
	m, err := Train(run.Windows, usage, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	est, err := m.Predict(run.Windows)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	preds := make(map[string]uint64)
	for p, e := range est {
		preds[p.String()+"|exp"] = hashFloats(e.Exp)
		preds[p.String()+"|low"] = hashFloats(e.Low)
		preds[p.String()+"|up"] = hashFloats(e.Up)
	}
	return rec.losses, preds
}

// TestGoldenDeterminismCapture prints the current loss bits and prediction
// hashes in the literal form embedded below; run with -v to refresh the
// goldens after an intentional numeric change.
func TestGoldenDeterminismCapture(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("capture helper; run with -v to print goldens")
	}
	losses, preds := goldenRun(t)
	keys := make([]string, 0, len(losses))
	for k := range losses {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		line := fmt.Sprintf("%q: {", k)
		for i, v := range losses[k] {
			if i > 0 {
				line += ", "
			}
			line += fmt.Sprintf("0x%016x", math.Float64bits(v))
		}
		t.Logf("%s},", line)
	}
	pk := make([]string, 0, len(preds))
	for k := range preds {
		pk = append(pk, k)
	}
	sort.Strings(pk)
	for _, k := range pk {
		t.Logf("%q: 0x%016x,", k, preds[k])
	}
}

// goldenLosses holds the exact per-epoch training losses (as float64 bits)
// captured from the pre-arena, pre-fusion implementation. The optimized AD
// path must reproduce them bit for bit.
var goldenLosses = map[string][]uint64{
	"DB/cpu|attention":        {0x3fb27a9cc60afcbd, 0x3fad6fccb5cc64fa},
	"DB/cpu|train":            {0x3fd71466b3432f1f, 0x3fc2c883929ae290, 0x3fbcdb55d7111f09},
	"DB/disk_usage|attention": {0x3fc62952e23df280, 0x3fc5b6a20cede5be},
	"DB/disk_usage|train":     {0x3fd4796bb3629789, 0x3fcd7c0add81c647, 0x3fc89a6d71062b5e},
	"DB/write_iops|attention": {0x3fb826d841d194a7, 0x3fb584031852b44a},
	"DB/write_iops|train":     {0x3fcdafa8a75778dd, 0x3fbe327971c981d0, 0x3fbca740efa22984},
	"Service/cpu|attention":   {0x3fc0a4f5553d336e, 0x3fbade79c7aff11e},
	"Service/cpu|train":       {0x3fde8cd8729d293e, 0x3fd4c2d0f95ffa74, 0x3fc8cd316df16dc3},
}

// goldenPredictions holds FNV-1a hashes over the exact prediction bits from
// the same baseline run.
var goldenPredictions = map[string]uint64{
	"DB/cpu|exp":        0x5dd3c57313be0df7,
	"DB/cpu|low":        0xd56f3b6fa780ad13,
	"DB/cpu|up":         0xb9f6d54a2e879ddc,
	"DB/disk_usage|exp": 0xcb49d335b3868a74,
	"DB/disk_usage|low": 0xb56a4263e164aec4,
	"DB/disk_usage|up":  0x0a8a533e723b88dc,
	"DB/write_iops|exp": 0xd842a46daa7da075,
	"DB/write_iops|low": 0xb93ac64397acdf69,
	"DB/write_iops|up":  0x30858d20fca4cce3,
	"Service/cpu|exp":   0x446bda1a11e82b4b,
	"Service/cpu|low":   0x65a353680fbd30f4,
	"Service/cpu|up":    0x5d20de2a6dc2b24d,
}

// TestGoldenDeterminism proves the optimized hot path (tape arenas, fused
// GRU step, gradient-free inference) is numerically invisible: the same
// seed yields bit-identical epoch losses and predictions to the
// straight-line implementation this test's goldens were captured from.
func TestGoldenDeterminism(t *testing.T) {
	losses, preds := goldenRun(t)

	// Two runs in one process must agree bitwise regardless of platform:
	// tape pooling, expert parallelism, and buffer reuse may not leak
	// state between runs.
	losses2, preds2 := goldenRun(t)
	for k, want := range losses {
		got := losses2[k]
		if len(got) != len(want) {
			t.Fatalf("%s: %d epochs vs %d on rerun", k, len(want), len(got))
		}
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Errorf("%s epoch %d: %x vs %x across runs", k, i+1, math.Float64bits(want[i]), math.Float64bits(got[i]))
			}
		}
	}
	for k, want := range preds {
		if preds2[k] != want {
			t.Errorf("%s: prediction hash %016x vs %016x across runs", k, want, preds2[k])
		}
	}

	// The recorded goldens encode exact amd64 arithmetic; other
	// architectures may legally differ (e.g. fused multiply-add).
	if runtime.GOARCH != "amd64" {
		t.Skipf("golden bits recorded on amd64; running on %s", runtime.GOARCH)
	}
	if len(goldenLosses) == 0 {
		t.Fatal("goldenLosses not recorded")
	}
	for k, want := range goldenLosses {
		got, ok := losses[k]
		if !ok {
			t.Errorf("missing loss series %s", k)
			continue
		}
		if len(got) != len(want) {
			t.Errorf("%s: %d epochs, want %d", k, len(got), len(want))
			continue
		}
		for i, wb := range want {
			if gb := math.Float64bits(got[i]); gb != wb {
				t.Errorf("%s epoch %d: loss bits %016x, want %016x (value %v vs %v)",
					k, i+1, gb, wb, got[i], math.Float64frombits(wb))
			}
		}
	}
	for k, want := range goldenPredictions {
		if got, ok := preds[k]; !ok || got != want {
			t.Errorf("%s: prediction hash %016x, want %016x", k, preds[k], want)
		}
	}
}
