package estimator

import (
	"testing"

	"repro/internal/app"
	"repro/internal/eval"
	"repro/internal/testutil"
	"repro/internal/trace"
)

// TestTransferAcceleratesConvergence reproduces the §6 transfer-learning
// claim at unit scale: warm-starting from a well-trained expert lets a
// heavily budget-constrained training run reach an accuracy that cold
// initialisation cannot.
func TestTransferAcceleratesConvergence(t *testing.T) {
	p := app.Pair{Component: "DB", Resource: app.CPU}

	// Source: well-trained on 3 days.
	_, _, srcRun := testutil.ToyTelemetry(t, 3, 40, 31)
	srcCfg := testConfig()
	srcCfg.Epochs = 20
	src, err := Train(srcRun.Windows, testutil.FocusPairs(srcRun.Usage, p), srcCfg)
	if err != nil {
		t.Fatal(err)
	}

	// Target: a different deployment of the same application (fresh
	// seed), with a tiny training budget.
	_, _, tgtRun := testutil.ToyTelemetry(t, 1, 40, 32)
	tinyCfg := testConfig()
	tinyCfg.Epochs = 1
	tinyCfg.AttentionEpochs = 0
	usage := testutil.FocusPairs(tgtRun.Usage, p)

	cold, err := Train(tgtRun.Windows, usage, tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := TrainWarm(tgtRun.Windows, usage, tinyCfg, FromExpert(src, p))
	if err != nil {
		t.Fatal(err)
	}

	coldEst, err := cold.Predict(tgtRun.Windows)
	if err != nil {
		t.Fatal(err)
	}
	warmEst, err := warm.Predict(tgtRun.Windows)
	if err != nil {
		t.Fatal(err)
	}
	coldMAPE := eval.MAPE(coldEst[p].Exp, tgtRun.Usage[p])
	warmMAPE := eval.MAPE(warmEst[p].Exp, tgtRun.Usage[p])
	t.Logf("1-epoch budget: cold=%.2f%% warm=%.2f%%", coldMAPE, warmMAPE)
	if warmMAPE >= coldMAPE {
		t.Errorf("warm start (%.2f%%) should beat cold start (%.2f%%) under a tiny budget", warmMAPE, coldMAPE)
	}
	if warmMAPE > 25 {
		t.Errorf("warm start MAPE %.2f%% too high", warmMAPE)
	}
}

func TestTransferShapeMismatch(t *testing.T) {
	p := app.Pair{Component: "DB", Resource: app.CPU}
	_, _, run := testutil.ToyTelemetry(t, 1, 30, 33)
	cfgA := testConfig()
	cfgA.Epochs = 1
	src, err := Train(run.Windows, testutil.FocusPairs(run.Usage, p), cfgA)
	if err != nil {
		t.Fatal(err)
	}
	cfgB := cfgA
	cfgB.Hidden = cfgA.Hidden * 2
	if _, err := TrainWarm(run.Windows, testutil.FocusPairs(run.Usage, p), cfgB, FromExpert(src, p)); err == nil {
		t.Error("hidden-width mismatch must fail")
	}
	if _, err := TrainWarm(run.Windows, testutil.FocusPairs(run.Usage, p), cfgA,
		FromExpert(src, app.Pair{Component: "ghost", Resource: app.CPU})); err == nil {
		t.Error("unknown source pair must fail")
	}
}

// TestUpdateAdaptsToDrift reproduces the §6 concept-drift scenario: the
// application's per-request cost changes (a new version ships), the stale
// model mis-estimates, and Update over one day of fresh telemetry repairs
// it.
func TestUpdateAdaptsToDrift(t *testing.T) {
	p := app.Pair{Component: "Service", Resource: app.CPU}

	_, _, oldRun := testutil.ToyTelemetry(t, 3, 40, 34)
	cfg := testConfig()
	m, err := Train(oldRun.Windows, testutil.FocusPairs(oldRun.Usage, p), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The new version consumes 1.6x the CPU per request: replay the
	// telemetry with inflated demand above the base load.
	drift := func(run []float64) []float64 {
		out := make([]float64, len(run))
		for i, v := range run {
			base := 5.0 // Service base CPU in the toy spec
			out[i] = base + (v-base)*1.6
		}
		return out
	}
	_, _, newRun := testutil.ToyTelemetry(t, 1, 40, 35)
	newUsage := map[app.Pair][]float64{p: drift(newRun.Usage[p])}

	est, err := m.Predict(newRun.Windows)
	if err != nil {
		t.Fatal(err)
	}
	before := eval.MAPE(est[p].Exp, newUsage[p])

	unknown, err := m.Update(newRun.Windows, newUsage, 8)
	if err != nil {
		t.Fatal(err)
	}
	if unknown != 0 {
		t.Errorf("unexpected unknown paths: %v", unknown)
	}
	est, err = m.Predict(newRun.Windows)
	if err != nil {
		t.Fatal(err)
	}
	after := eval.MAPE(est[p].Exp, newUsage[p])
	t.Logf("drift MAPE before=%.2f%% after=%.2f%%", before, after)
	if after >= before {
		t.Errorf("Update did not adapt: %.2f%% -> %.2f%%", before, after)
	}
	if after > 12 {
		t.Errorf("post-update MAPE %.2f%% too high", after)
	}
}

func TestUpdateValidation(t *testing.T) {
	p := app.Pair{Component: "Service", Resource: app.CPU}
	_, _, run := testutil.ToyTelemetry(t, 1, 30, 36)
	cfg := testConfig()
	cfg.Epochs = 1
	m, err := Train(run.Windows, testutil.FocusPairs(run.Usage, p), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Update(run.Windows, testutil.FocusPairs(run.Usage, p), 0); err == nil {
		t.Error("zero epochs must fail")
	}
	if _, err := m.Update(run.Windows, map[app.Pair][]float64{}, 1); err == nil {
		t.Error("missing series must fail")
	}
	short := map[app.Pair][]float64{p: {1, 2, 3}}
	if _, err := m.Update(run.Windows, short, 1); err == nil {
		t.Error("misaligned series must fail")
	}
}

// TestUpdateReportsUnknownPaths: topology drift (a new component) surfaces
// through the unknown-path counter.
func TestUpdateReportsUnknownPaths(t *testing.T) {
	p := app.Pair{Component: "Service", Resource: app.CPU}
	_, _, run := testutil.ToyTelemetry(t, 1, 30, 37)
	cfg := testConfig()
	cfg.Epochs = 1
	cfg.AttentionEpochs = 0
	m, err := Train(run.Windows, testutil.FocusPairs(run.Usage, p), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Graft a novel component onto one window's traces.
	windows := make([][]trace.Batch, len(run.Windows))
	copy(windows, run.Windows)
	novel := trace.Trace{API: "/v2", Root: trace.NewSpan("BrandNewService", "op")}
	windows[0] = append(append([]trace.Batch{}, windows[0]...), trace.Batch{Trace: novel, Count: 7})
	unknown, err := m.Update(windows, testutil.FocusPairs(run.Usage, p), 1)
	if err != nil {
		t.Fatal(err)
	}
	if unknown != 7 {
		t.Errorf("unknown paths = %v, want 7", unknown)
	}
}
