package estimator

import (
	"bytes"
	"testing"

	"repro/internal/app"
	"repro/internal/eval"
	"repro/internal/synth"
	"repro/internal/testutil"
)

// testConfig returns a training configuration small enough for unit tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Hidden = 12
	cfg.Epochs = 8
	cfg.AttentionEpochs = 2
	cfg.ChunkLen = 24
	return cfg
}

// TestTrainPredictEndToEnd trains on 3 toy days and checks that prediction
// of a 2×-scaled unseen day tracks the ground truth closely — the core
// claim C1 at unit-test scale.
func TestTrainPredictEndToEnd(t *testing.T) {
	cluster, _, run := testutil.ToyTelemetry(t, 3, 40, 1)

	m, err := Train(run.Windows, run.Usage, testConfig())
	if err != nil {
		t.Fatalf("Train: %v", err)
	}

	// Query: one unseen day at 2× users. Ground truth: continue the same
	// cluster.
	qprog := testutil.ToyProgram(1, 80, 99)
	qtraffic := qprog.Generate()
	truth, err := cluster.Run(qtraffic)
	if err != nil {
		t.Fatalf("query Run: %v", err)
	}

	// Hypothetical-mode prediction via synthetic traces.
	syn := synth.Learn(run.Windows)
	synthetic, err := syn.Synthesize(qtraffic, 5)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	est, err := m.Predict(synthetic)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}

	checks := []struct {
		pair    app.Pair
		maxMAPE float64
	}{
		{app.Pair{Component: "Service", Resource: app.CPU}, 20},
		{app.Pair{Component: "DB", Resource: app.CPU}, 20},
		{app.Pair{Component: "DB", Resource: app.WriteIOps}, 25},
		{app.Pair{Component: "Gateway", Resource: app.CPU}, 20},
		{app.Pair{Component: "DB", Resource: app.DiskUsage}, 15},
	}
	for _, c := range checks {
		e, ok := est[c.pair]
		if !ok {
			t.Fatalf("no estimate for %s", c.pair)
		}
		got := eval.MAPE(e.Exp, truth.Usage[c.pair])
		t.Logf("%s: MAPE=%.2f%%", c.pair, got)
		if got > c.maxMAPE {
			t.Errorf("%s: MAPE %.2f%% exceeds %.2f%%", c.pair, got, c.maxMAPE)
		}
	}
}

// TestIntervalOrdering asserts low ≤ exp ≤ up everywhere.
func TestIntervalOrdering(t *testing.T) {
	_, _, run := testutil.ToyTelemetry(t, 2, 30, 2)
	m, err := Train(run.Windows, run.Usage, testConfig())
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	est, err := m.Predict(run.Windows)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	for p, e := range est {
		for i := range e.Exp {
			if e.Low[i] > e.Exp[i]+1e-9 || e.Up[i] < e.Exp[i]-1e-9 {
				t.Fatalf("%s window %d: interval [%g, %g] does not bracket %g", p, i, e.Low[i], e.Up[i], e.Exp[i])
			}
		}
	}
}

// TestIntervalCoverage asserts the δ=0.9 interval covers most in-sample
// measurements for a representative resource.
func TestIntervalCoverage(t *testing.T) {
	_, _, run := testutil.ToyTelemetry(t, 3, 40, 3)
	m, err := Train(run.Windows, run.Usage, testConfig())
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	est, err := m.Predict(run.Windows)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	p := app.Pair{Component: "Service", Resource: app.CPU}
	e := est[p]
	truth := run.Usage[p]
	covered := 0
	for i, y := range truth {
		if y >= e.Low[i] && y <= e.Up[i] {
			covered++
		}
	}
	frac := float64(covered) / float64(len(truth))
	t.Logf("coverage: %.2f", frac)
	if frac < 0.6 {
		t.Errorf("interval coverage %.2f too low for δ=0.9", frac)
	}
}

// TestSaveLoadRoundTrip checks that a serialized model predicts identically
// after loading.
func TestSaveLoadRoundTrip(t *testing.T) {
	_, _, run := testutil.ToyTelemetry(t, 2, 30, 4)
	usage := testutil.FocusPairs(run.Usage,
		app.Pair{Component: "Service", Resource: app.CPU},
		app.Pair{Component: "DB", Resource: app.WriteIOps},
		app.Pair{Component: "DB", Resource: app.DiskUsage},
	)
	cfg := testConfig()
	cfg.Epochs = 3
	cfg.AttentionEpochs = 1
	m, err := Train(run.Windows, usage, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	a, err := m.Predict(run.Windows)
	if err != nil {
		t.Fatalf("Predict(a): %v", err)
	}
	b, err := m2.Predict(run.Windows)
	if err != nil {
		t.Fatalf("Predict(b): %v", err)
	}
	for p, ea := range a {
		eb, ok := b[p]
		if !ok {
			t.Fatalf("loaded model lost pair %s", p)
		}
		for i := range ea.Exp {
			if diff := ea.Exp[i] - eb.Exp[i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("%s window %d: %.12f vs %.12f after round trip", p, i, ea.Exp[i], eb.Exp[i])
			}
		}
	}
}

// TestTrainValidation exercises the error paths of Train.
func TestTrainValidation(t *testing.T) {
	_, _, run := testutil.ToyTelemetry(t, 2, 20, 5)
	cfg := testConfig()

	if _, err := Train(nil, run.Usage, cfg); err == nil {
		t.Error("Train with no windows should fail")
	}
	if _, err := Train(run.Windows, nil, cfg); err == nil {
		t.Error("Train with no usage should fail")
	}
	bad := map[app.Pair][]float64{
		{Component: "Service", Resource: app.CPU}: make([]float64, 3),
	}
	if _, err := Train(run.Windows, bad, cfg); err == nil {
		t.Error("Train with misaligned series should fail")
	}
	badCfg := cfg
	badCfg.Hidden = 0
	if _, err := Train(run.Windows, run.Usage, badCfg); err == nil {
		t.Error("Train with zero hidden should fail")
	}
	badOpt := cfg
	badOpt.Optimizer = "lbfgs"
	usage := testutil.FocusPairs(run.Usage, app.Pair{Component: "Service", Resource: app.CPU})
	if _, err := Train(run.Windows, usage, badOpt); err == nil {
		t.Error("Train with unknown optimizer should fail")
	}
}

// TestMaskInterpretation checks that the learned API-aware mask attributes
// the DB's write IOps to the /write API, not /read (the Figure 22 claim at
// unit scale).
func TestMaskInterpretation(t *testing.T) {
	_, _, run := testutil.ToyTelemetry(t, 3, 40, 6)
	usage := testutil.FocusPairs(run.Usage,
		app.Pair{Component: "DB", Resource: app.WriteIOps},
	)
	cfg := testConfig()
	cfg.Epochs = 12
	m, err := Train(run.Windows, usage, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	infl, err := m.APIInfluence(app.Pair{Component: "DB", Resource: app.WriteIOps}, run.Windows)
	if err != nil {
		t.Fatalf("APIInfluence: %v", err)
	}
	if len(infl) == 0 {
		t.Fatal("no API influence computed")
	}
	write := infl["Gateway:write"]
	read := infl["Gateway:read"]
	t.Logf("influence write=%.3f read=%.3f", write, read)
	if write <= read {
		t.Errorf("write influence (%.3f) should exceed read influence (%.3f) for DB write IOps", write, read)
	}
}

// TestTrainLogOutput checks the progress log plumbing.
func TestTrainLogOutput(t *testing.T) {
	_, _, run := testutil.ToyTelemetry(t, 2, 20, 7)
	usage := testutil.FocusPairs(run.Usage, app.Pair{Component: "Service", Resource: app.CPU})
	cfg := testConfig()
	cfg.Epochs = 1
	cfg.AttentionEpochs = 0
	var buf bytes.Buffer
	cfg.Log = &buf
	if _, err := Train(run.Windows, usage, cfg); err != nil {
		t.Fatalf("Train: %v", err)
	}
	if buf.Len() == 0 {
		t.Error("expected training log output")
	}
}

// TestPredictRealTraces checks sanity-check mode: predicting on the real
// traces of the training period reproduces the training utilization.
func TestPredictRealTraces(t *testing.T) {
	_, _, run := testutil.ToyTelemetry(t, 3, 40, 8)
	p := app.Pair{Component: "DB", Resource: app.CPU}
	usage := testutil.FocusPairs(run.Usage, p)
	m, err := Train(run.Windows, usage, testConfig())
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	est, err := m.Predict(run.Windows)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	mape := eval.MAPE(est[p].Exp, usage[p])
	t.Logf("in-sample MAPE: %.2f%%", mape)
	if mape > 15 {
		t.Errorf("in-sample MAPE %.2f%% too high", mape)
	}
}

// TestVariableDurationQueries exercises the paper's §4.2 claim that queries
// may have any duration: the same trained model estimates a 30-minute, a
// 1-day, and a 3-day query without retraining.
func TestVariableDurationQueries(t *testing.T) {
	cluster, _, run := testutil.ToyTelemetry(t, 3, 40, 9)
	p := app.Pair{Component: "Service", Resource: app.CPU}
	m, err := Train(run.Windows, testutil.FocusPairs(run.Usage, p), testConfig())
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	for _, days := range []float64{0.25, 1, 3} {
		n := int(days * float64(testutil.ToyDay))
		prog := testutil.ToyProgram(3, 40, 100+int64(days*10))
		traffic := prog.Generate().Slice(0, n)
		truth, err := cluster.Run(traffic)
		if err != nil {
			t.Fatal(err)
		}
		est, err := m.Predict(truth.Windows)
		if err != nil {
			t.Fatalf("Predict(%v days): %v", days, err)
		}
		if len(est[p].Exp) != n {
			t.Fatalf("%v days: estimate length %d, want %d", days, len(est[p].Exp), n)
		}
		mape := eval.MAPE(est[p].Exp, truth.Usage[p])
		t.Logf("%v-day query: MAPE=%.2f%%", days, mape)
		if mape > 20 {
			t.Errorf("%v-day query MAPE %.2f%% too high", days, mape)
		}
	}
}

// TestLRSchedules trains under each learning-rate schedule and checks all
// reach a usable in-sample fit (and that unknown names are rejected).
func TestLRSchedules(t *testing.T) {
	_, _, run := testutil.ToyTelemetry(t, 2, 30, 13)
	p := app.Pair{Component: "Service", Resource: app.CPU}
	usage := testutil.FocusPairs(run.Usage, p)
	for _, sched := range []string{"", "constant", "cosine", "step"} {
		cfg := testConfig()
		cfg.LRSchedule = sched
		m, err := Train(run.Windows, usage, cfg)
		if err != nil {
			t.Fatalf("schedule %q: %v", sched, err)
		}
		est, err := m.Predict(run.Windows)
		if err != nil {
			t.Fatal(err)
		}
		mape := eval.MAPE(est[p].Exp, usage[p])
		t.Logf("schedule %q: in-sample MAPE=%.2f%%", sched, mape)
		// Constant LR can stall on short runs (that is why cosine is
		// the default); only the annealed schedules carry a bound.
		if sched == "cosine" || sched == "step" {
			if mape > 15 {
				t.Errorf("schedule %q: MAPE %.2f%% too high", sched, mape)
			}
		}
	}
	cfg := testConfig()
	cfg.LRSchedule = "bogus"
	if _, err := Train(run.Windows, usage, cfg); err == nil {
		t.Error("unknown schedule must fail")
	}
}

// TestGatherPeersMissingCacheEntry pins the fallback in gatherPeers: a
// non-nil peerKeys cache that lacks an entry for the queried pair (stale or
// partial cache, hand-assembled model) must still derive the peer list from
// Pairs instead of silently dropping the attention context.
func TestGatherPeersMissingCacheEntry(t *testing.T) {
	a := app.Pair{Component: "a", Resource: app.CPU}
	b := app.Pair{Component: "b", Resource: app.CPU}
	c := app.Pair{Component: "c", Resource: app.CPU}
	m := &Model{Pairs: []app.Pair{a, b, c}}
	hidden := map[string][][]float64{
		a.String(): {{1}, {10}},
		b.String(): {{2}, {20}},
		c.String(): {{3}, {30}},
	}
	want := [][][]float64{{{2}, {3}}, {{20}, {30}}}

	check := func(label string, got [][][]float64) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d steps, want %d", label, len(got), len(want))
		}
		for ts := range want {
			if len(got[ts]) != len(want[ts]) {
				t.Fatalf("%s: step %d has %d peers, want %d", label, ts, len(got[ts]), len(want[ts]))
			}
			for k := range want[ts] {
				if got[ts][k][0] != want[ts][k][0] {
					t.Fatalf("%s: step %d peer %d = %v, want %v", label, ts, k, got[ts][k], want[ts][k])
				}
			}
		}
	}

	// Nil cache: the historical fallback path.
	check("nil cache", m.gatherPeers(a, hidden))

	// Non-nil cache missing the entry for a: the regression — this used to
	// yield no peers at all because only the nil-map case fell back.
	m.peerKeys = map[app.Pair][]string{b: {a.String(), c.String()}}
	check("partial cache", m.gatherPeers(a, hidden))
	if got := m.gatherPeers(a, hidden); got == nil {
		t.Fatal("partial cache: gatherPeers returned nil (fallback only honoured a nil map)")
	}

	// A cached entry, when present, is used verbatim (b attends to a then c).
	gotB := m.gatherPeers(b, hidden)
	wantB := [][][]float64{{{1}, {3}}, {{10}, {30}}}
	for ts := range wantB {
		for k := range wantB[ts] {
			if gotB[ts][k][0] != wantB[ts][k][0] {
				t.Fatalf("cached entry: step %d peer %d = %v, want %v", ts, k, gotB[ts][k], wantB[ts][k])
			}
		}
	}
}
