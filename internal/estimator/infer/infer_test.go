package infer_test

import (
	"math"
	"testing"

	"repro/internal/app"
	"repro/internal/estimator"
	"repro/internal/estimator/infer"
	"repro/internal/features"
	"repro/internal/sim"
	"repro/internal/testutil"
	"repro/internal/topo"
	"repro/internal/workload"
)

// trainOn simulates one day of traffic for the named application (a builtin
// or a gen: topology), trains a small but fully featured model (mask,
// attention, bypass all on), and returns it with the day's feature series.
func trainOn(t *testing.T, arg string) (*estimator.Model, []features.Vector) {
	t.Helper()
	spec, mix, err := topo.Resolve(arg)
	if err != nil {
		t.Fatalf("Resolve(%s): %v", arg, err)
	}
	prog := workload.Uniform(1, workload.DaySpec{Shape: workload.TwoPeak{}, Mix: mix, PeakRPS: 30})
	prog.WindowsPerDay = 48
	c, err := sim.NewCluster(spec, 17)
	if err != nil {
		t.Fatalf("NewCluster(%s): %v", arg, err)
	}
	run, err := c.Run(prog.Generate())
	if err != nil {
		t.Fatalf("Run(%s): %v", arg, err)
	}
	cfg := estimator.DefaultConfig()
	cfg.Epochs = 1
	cfg.AttentionEpochs = 1
	cfg.ChunkLen = 24
	m, err := estimator.Train(run.Windows, run.Usage, cfg)
	if err != nil {
		t.Fatalf("Train(%s): %v", arg, err)
	}
	return m, m.Space.ExtractSeries(run.Windows)
}

func sameBits(t *testing.T, ctx string, tape, engine map[app.Pair]estimator.Estimate) {
	t.Helper()
	if len(tape) != len(engine) {
		t.Fatalf("%s: %d tape pairs vs %d engine pairs", ctx, len(tape), len(engine))
	}
	for p, want := range tape {
		got, ok := engine[p]
		if !ok {
			t.Fatalf("%s: engine missing %s", ctx, p)
		}
		for _, s := range []struct {
			name      string
			want, got []float64
		}{{"exp", want.Exp, got.Exp}, {"low", want.Low, got.Low}, {"up", want.Up, got.Up}} {
			if len(s.want) != len(s.got) {
				t.Fatalf("%s: %s %s: %d vs %d samples", ctx, p, s.name, len(s.want), len(s.got))
			}
			for i := range s.want {
				if math.Float64bits(s.want[i]) != math.Float64bits(s.got[i]) {
					t.Fatalf("%s: %s %s[%d]: tape %x engine %x", ctx, p, s.name, i,
						math.Float64bits(s.want[i]), math.Float64bits(s.got[i]))
				}
			}
		}
	}
}

// TestEngineMatchesTapeOnApps pins the compiled engine to the eval-tape
// path bit for bit on every bundled application and on a generated
// topology: same experts, same attention peers, same descaling — any
// divergence in any float of any series fails.
func TestEngineMatchesTapeOnApps(t *testing.T) {
	for _, arg := range []string{"social", "hotel", "media", "gen:seed=5,components=24"} {
		t.Run(arg, func(t *testing.T) {
			m, series := trainOn(t, arg)
			eng, err := infer.Compile(m)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			want, err := m.PredictVectors(series)
			if err != nil {
				t.Fatalf("tape predict: %v", err)
			}
			got, err := eng.Predict(series)
			if err != nil {
				t.Fatalf("engine predict: %v", err)
			}
			sameBits(t, arg, want, got)

			// The inline (nil-pool) path must agree too: parallel fan-out
			// cannot change a single bit.
			eng.SetPool(nil)
			inline, err := eng.Predict(series)
			if err != nil {
				t.Fatalf("inline predict: %v", err)
			}
			sameBits(t, arg+"/inline", want, inline)
		})
	}
}

// TestEnginePredictBatchMatchesSingle checks the coalesced batch pass is
// the same computation as N independent predicts.
func TestEnginePredictBatchMatchesSingle(t *testing.T) {
	_, _, run := testutil.ToyTelemetry(t, 2, 35, 13)
	cfg := estimator.DefaultConfig()
	cfg.Epochs = 1
	cfg.AttentionEpochs = 1
	cfg.ChunkLen = 24
	m, err := estimator.Train(run.Windows, run.Usage, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := infer.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	full := m.Space.ExtractSeries(run.Windows)
	batch := [][]features.Vector{
		full[:testutil.ToyDay],
		full[testutil.ToyDay/2 : testutil.ToyDay],
		full[:3],
	}
	got, err := eng.PredictBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(batch) {
		t.Fatalf("batch returned %d results for %d inputs", len(got), len(batch))
	}
	for b, series := range batch {
		want, err := eng.Predict(series)
		if err != nil {
			t.Fatal(err)
		}
		sameBits(t, "batch", want, got[b])
	}
}

// TestEngineWarmPredictAllocs enforces the near-zero-alloc contract of the
// warm path in a regular test, so an allocation regression fails go test
// instead of silently drifting a benchmark JSON.
func TestEngineWarmPredictAllocs(t *testing.T) {
	_, _, run := testutil.ToyTelemetry(t, 1, 30, 13)
	cfg := estimator.DefaultConfig()
	cfg.Epochs = 1
	cfg.AttentionEpochs = 1
	cfg.ChunkLen = 24
	m, err := estimator.Train(run.Windows, run.Usage, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := infer.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	series := m.Space.ExtractSeries(run.Windows)
	out := make(map[app.Pair]estimator.Estimate, len(m.Pairs))
	if err := eng.PredictInto(series, out); err != nil { // warm the scratch pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := eng.PredictInto(series, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 10 {
		t.Fatalf("warm PredictInto allocates %.1f/op, want <= 10", allocs)
	}
}

// TestEngineRejectsMismatchedSeries checks dimension validation: a vector
// extracted against a different feature space must error, not read out of
// bounds.
func TestEngineRejectsMismatchedSeries(t *testing.T) {
	_, _, run := testutil.ToyTelemetry(t, 1, 30, 13)
	cfg := estimator.DefaultConfig()
	cfg.Epochs = 0
	cfg.AttentionEpochs = 0
	m, err := estimator.Train(run.Windows, run.Usage, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := infer.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Predict([]features.Vector{{Counts: []float64{1}}}); err == nil {
		t.Fatal("expected error for mismatched feature dimensionality")
	}
}
