package infer_test

import (
	"testing"

	"repro/internal/app"
	"repro/internal/estimator"
	"repro/internal/estimator/infer"
	"repro/internal/features"
	"repro/internal/testutil"
)

// Serving-path benchmarks tracked in BENCH_estimator.json by `make bench`.
// They share BenchmarkModelPredict's fixture (same telemetry, same training
// configuration, one day of windows) so ns/op and allocs/op are directly
// comparable: ModelPredict is the eval-tape baseline, InferPredict is the
// compiled tape-free engine on the identical computation, InferBatched is
// the coalesced multi-request pass the service batcher dispatches.

func benchEngine(b *testing.B) (*infer.Engine, []features.Vector, int) {
	b.Helper()
	_, _, run := testutil.ToyTelemetry(b, 3, 40, 21)
	cfg := estimator.DefaultConfig()
	cfg.Epochs = 2
	cfg.AttentionEpochs = 1
	cfg.ChunkLen = 24
	m, err := estimator.Train(run.Windows, run.Usage, cfg)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := infer.Compile(m)
	if err != nil {
		b.Fatal(err)
	}
	return eng, m.Space.ExtractSeries(run.Windows[:testutil.ToyDay]), len(m.Pairs)
}

// BenchmarkInferPredict measures one warm tape-free prediction of the full
// multi-expert model (attention enabled) over one day — the engine
// counterpart of BenchmarkModelPredict. Warm means the scratch pool is
// primed: this is every serving request after the first.
func BenchmarkInferPredict(b *testing.B) {
	eng, day, pairs := benchEngine(b)
	out := make(map[app.Pair]estimator.Estimate, pairs)
	if err := eng.PredictInto(day, out); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.PredictInto(day, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInferBatched measures one coalesced engine pass over 8 day-long
// requests — what the estimate batcher dispatches for a concurrent burst —
// and reports the effective per-request cost.
func BenchmarkInferBatched(b *testing.B) {
	eng, day, _ := benchEngine(b)
	const reqs = 8
	batch := make([][]features.Vector, reqs)
	for i := range batch {
		batch[i] = day
	}
	if _, err := eng.PredictBatch(batch); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.PredictBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perReq := float64(b.Elapsed().Nanoseconds()) / float64(b.N*reqs)
	b.ReportMetric(perReq, "ns/req")
}
