package infer

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a fixed set of long-lived workers that execute index-fanned jobs.
// The serving path shares one process-wide pool across every engine and
// every in-flight request, so concurrent /v1/estimate queries fan their
// expert passes over a bounded goroutine count instead of spawning one
// goroutine per (request, expert).
//
// Run is deadlock-free under nesting and undersubscription: the job is
// offered to workers with non-blocking sends and the calling goroutine
// always participates in draining the index space, so progress never
// depends on a free worker.
type Pool struct {
	jobs    chan *job
	workers int
}

// job is one Run invocation: workers (and the caller) claim indices from
// next until the space [0, n) is exhausted.
type job struct {
	fn   func(int)
	n    int32
	next atomic.Int32
	wg   sync.WaitGroup
}

func (j *job) run() {
	for {
		i := j.next.Add(1) - 1
		if i >= j.n {
			return
		}
		j.fn(int(i))
		j.wg.Done()
	}
}

// NewPool starts a pool of n workers (n < 1 means GOMAXPROCS). Close stops
// them.
func NewPool(n int) *Pool {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{jobs: make(chan *job, 2*n), workers: n}
	for i := 0; i < n; i++ {
		go func() {
			for j := range p.jobs {
				j.run()
			}
		}()
	}
	return p
}

// Close stops the workers once queued jobs finish. Run must not be called
// after Close.
func (p *Pool) Close() { close(p.jobs) }

// Run executes fn(i) for every i in [0, n) and returns when all calls have
// completed. Work is claimed dynamically, so uneven per-index cost balances
// across workers. A nil pool runs inline.
func (p *Pool) Run(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if p == nil || p.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	j := &job{fn: fn, n: int32(n)}
	j.wg.Add(n)
	// Offer the job to up to workers-many helpers; a full queue just means
	// the pool is busy and the caller does more of the work itself. Workers
	// that pick the job up after it is drained exit run immediately.
	offers := p.workers - 1
	if offers > n-1 {
		offers = n - 1
	}
	for i := 0; i < offers; i++ {
		select {
		case p.jobs <- j:
		default:
			i = offers // queue full; stop offering
		}
	}
	j.run()
	j.wg.Wait()
}

// The process-shared serving pool. Engines use it by default so generation
// swaps never leak worker goroutines; its size is configurable once at
// startup (deeprestd -predict-workers) before the first predict.
var (
	defaultMu      sync.Mutex
	defaultPool    *Pool
	defaultWorkers int
)

// SetDefaultWorkers fixes the size of the shared serving pool. It must be
// called before the first prediction; once the pool exists the call is
// ignored.
func SetDefaultWorkers(n int) {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultPool == nil {
		defaultWorkers = n
	}
}

// SharedPool returns the process-wide serving pool, creating it on first
// use.
func SharedPool() *Pool {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultPool == nil {
		defaultPool = NewPool(defaultWorkers)
	}
	return defaultPool
}
