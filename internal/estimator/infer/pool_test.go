package infer

import (
	"sync/atomic"
	"testing"
)

// TestPoolRunCoversIndexSpace checks every index runs exactly once across
// pool sizes and job shapes, including n much larger than the worker count.
func TestPoolRunCoversIndexSpace(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 3, 7, 64, 1000} {
			counts := make([]atomic.Int32, n)
			p.Run(n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
		p.Close()
	}
}

// TestPoolNestedRun checks Run called from inside a Run callback cannot
// deadlock: the caller always participates, so progress never waits on a
// free worker.
func TestPoolNestedRun(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var total atomic.Int32
	p.Run(8, func(int) {
		p.Run(8, func(int) { total.Add(1) })
	})
	if got := total.Load(); got != 64 {
		t.Fatalf("nested Run executed %d of 64 tasks", got)
	}
}

// TestNilPoolRunsInline checks the nil pool is a safe sequential fallback.
func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	ran := 0
	p.Run(5, func(i int) {
		if i != ran {
			t.Fatalf("inline run out of order: got %d want %d", i, ran)
		}
		ran++
	})
	if ran != 5 {
		t.Fatalf("ran %d of 5", ran)
	}
}

// TestPoolConcurrentRuns hammers one pool from many goroutines — the
// serving scenario where every in-flight request fans its expert passes
// over the same shared workers. Run under -race in CI.
func TestPoolConcurrentRuns(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	done := make(chan int32)
	for g := 0; g < 16; g++ {
		go func() {
			var local atomic.Int32
			for r := 0; r < 50; r++ {
				p.Run(13, func(int) { local.Add(1) })
			}
			done <- local.Load()
		}()
	}
	var total int64
	for g := 0; g < 16; g++ {
		total += int64(<-done)
	}
	if want := int64(16 * 50 * 13); total != want {
		t.Fatalf("concurrent runs executed %d of %d tasks", total, want)
	}
}
