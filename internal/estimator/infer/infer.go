// Package infer is the serving-side inference engine: it snapshots a
// trained estimator.Model into flat, contiguous parameter slabs and runs a
// closed-form forward pass — fused GRU recurrence, cross-component
// attention over the snapshot's own hidden trajectories, mask and bypass
// heads — without recording a single AD-tape node.
//
// The engine exists because serving replayed training machinery: every
// /v1/estimate walked each expert through the gradient-capable tape,
// rebuilding node, hidden-state, and peer buffers per request (~1.9 ms and
// ~1,300 allocations per predict at toy scale). Here the parameters are
// read-only slabs, all per-call state lives in sync.Pool-recycled scratch,
// and expert passes fan out over a shared bounded worker Pool — a warm
// predict is near-zero-alloc and orders of magnitude faster.
//
// Correctness contract: the engine performs the same float64 operations in
// the same order as the eval-tape path (Expert.Forward/HiddenStates), via
// the shared ad.Dot / ad.Logistic / ad.GRUKernel primitives and the shared
// TargetScale.DescaleInto epilogue, so its output is bit-identical to the
// tape's (absent FMA contraction). An Engine is immutable after Compile and
// safe for concurrent use; each model generation compiles its own engine,
// so a served prediction can never mix parameters from two generations.
package infer

import (
	"fmt"
	"sync"

	"repro/internal/app"
	"repro/internal/estimator"
	"repro/internal/features"
	"repro/internal/nn/ad"
)

// Engine is a compiled, read-only snapshot of one trained model.
type Engine struct {
	pairs      []app.Pair
	dim        int // feature-space dimensionality
	hidden     int // GRU width, uniform across experts
	attnActive bool // model-wide: attention trained and >1 expert
	scalerMax  []float64
	experts    []expertSlab
	slab       []float64 // backing storage for every expert's parameters

	pool    *Pool
	scratch sync.Pool // *predictScratch
}

// expertSlab is one expert's parameters, as sub-slices of Engine.slab.
type expertSlab struct {
	mask    []float64 // precomputed σ(m) gate; nil when the mask is off
	gru     ad.GRUKernel
	alpha   []float64 // attention weights, aligned with peerIdx
	peerIdx []int     // peer expert indices in engine order
	headW   []float64 // 3 × 2·hidden
	headB   []float64 // 3
	bypW    []float64 // 3 × dim; nil when the bypass is off
	bypB    []float64 // 3
	scale   estimator.TargetScale
}

// predictScratch is the per-call mutable state, recycled through
// Engine.scratch. Slices grow to the largest series seen and are reused.
type predictScratch struct {
	x       []float64    // T×dim scaled input, row-major
	traj    []float64    // P×T×hidden hidden trajectories
	ws      []float64    // per-expert work areas (masked input, GRU scratch, attention, concat)
	zero    []float64    // hidden-sized all-zero h₀
	triples [][3]float64 // P×T scaled output triples
}

// Compile snapshots m into an engine. It fails (and the caller falls back
// to the tape path) when the model's shape is not the uniform architecture
// the slab layout assumes — e.g. hand-assembled experts with mismatched
// dimensions or unresolvable attention peers.
func Compile(m *estimator.Model) (*Engine, error) {
	if m == nil || len(m.Pairs) == 0 {
		return nil, fmt.Errorf("infer: no trained experts to compile")
	}
	if m.Space == nil || m.FeatScaler == nil {
		return nil, fmt.Errorf("infer: model has no feature space or scaler")
	}
	dim := m.Space.Dim()
	if len(m.FeatScaler.Max) != dim {
		return nil, fmt.Errorf("infer: scaler covers %d of %d feature dims", len(m.FeatScaler.Max), dim)
	}
	idx := make(map[string]int, len(m.Pairs))
	for i, p := range m.Pairs {
		idx[p.String()] = i
	}

	e := &Engine{
		pairs:      append([]app.Pair(nil), m.Pairs...),
		dim:        dim,
		attnActive: m.Cfg.UseAttention && len(m.Pairs) > 1,
		scalerMax:  append([]float64(nil), m.FeatScaler.Max...),
		experts:    make([]expertSlab, len(m.Pairs)),
		pool:       SharedPool(),
	}
	e.scratch.New = func() any { return new(predictScratch) }

	// First pass: validate shapes and size the slab.
	total := 0
	for i, p := range m.Pairs {
		ex := m.Experts[p]
		ts := m.TargetScales[p]
		if ex == nil || ts == nil {
			return nil, fmt.Errorf("infer: %s: missing expert or target scale", p)
		}
		if ex.InDim != dim || ex.Cell == nil || ex.Cell.In != dim {
			return nil, fmt.Errorf("infer: %s: input dim mismatch", p)
		}
		if i == 0 {
			e.hidden = ex.Hidden
		}
		if ex.Hidden != e.hidden || ex.Cell.Hidden != e.hidden || e.hidden <= 0 {
			return nil, fmt.Errorf("infer: %s: non-uniform hidden width", p)
		}
		if ex.Head == nil || ex.Head.In != 2*e.hidden || ex.Head.Out != 3 {
			return nil, fmt.Errorf("infer: %s: unexpected head shape", p)
		}
		total += 3*(e.hidden*dim) + 3*(e.hidden*e.hidden) + 3*e.hidden // GRU
		total += 3*2*e.hidden + 3                                     // head
		if ex.UseMask {
			if ex.Mask == nil || len(ex.Mask.M.Data) != dim {
				return nil, fmt.Errorf("infer: %s: unexpected mask shape", p)
			}
			total += dim
		}
		if ex.UseBypass {
			if ex.Bypass == nil || ex.Bypass.In != dim || ex.Bypass.Out != 3 {
				return nil, fmt.Errorf("infer: %s: unexpected bypass shape", p)
			}
			total += 3*dim + 3
		}
		if e.attnActive && ex.UseAttention {
			if ex.Attn == nil || len(ex.Attn.Alpha.Data) != len(ex.Attn.Peers) {
				return nil, fmt.Errorf("infer: %s: attention weights misaligned with peers", p)
			}
			for _, peer := range ex.Attn.Peers {
				j, ok := idx[peer]
				if !ok || j == i {
					return nil, fmt.Errorf("infer: %s: unresolvable attention peer %q", p, peer)
				}
			}
			total += len(ex.Attn.Peers)
		}
	}

	// Second pass: copy every parameter into one contiguous slab.
	e.slab = make([]float64, total)
	off := 0
	take := func(n int) []float64 {
		s := e.slab[off : off+n : off+n]
		off += n
		return s
	}
	copyInto := func(dst, src []float64) []float64 {
		copy(dst, src)
		return dst
	}
	for i, p := range m.Pairs {
		ex := m.Experts[p]
		slab := &e.experts[i]
		slab.scale = *m.TargetScales[p]
		if ex.UseMask {
			slab.mask = take(dim)
			for j, v := range ex.Mask.M.Data {
				// The tape recomputes σ(m) every step; the values are
				// identical, so snapshotting the gate once is bit-safe.
				slab.mask[j] = ad.Logistic(v)
			}
		}
		k := ex.Cell.Kernel()
		slab.gru = ad.GRUKernel{
			In: dim, Hidden: e.hidden,
			Wz: copyInto(take(e.hidden*dim), k.Wz),
			Uz: copyInto(take(e.hidden*e.hidden), k.Uz),
			Bz: copyInto(take(e.hidden), k.Bz),
			Wk: copyInto(take(e.hidden*dim), k.Wk),
			Uk: copyInto(take(e.hidden*e.hidden), k.Uk),
			Bk: copyInto(take(e.hidden), k.Bk),
			Wh: copyInto(take(e.hidden*dim), k.Wh),
			Uh: copyInto(take(e.hidden*e.hidden), k.Uh),
			Bh: copyInto(take(e.hidden), k.Bh),
		}
		slab.headW = copyInto(take(3*2*e.hidden), ex.Head.W.Data)
		slab.headB = copyInto(take(3), ex.Head.B.Data)
		if ex.UseBypass {
			slab.bypW = copyInto(take(3*dim), ex.Bypass.W.Data)
			slab.bypB = copyInto(take(3), ex.Bypass.B.Data)
		}
		if e.attnActive && ex.UseAttention && len(ex.Attn.Peers) > 0 {
			slab.alpha = copyInto(take(len(ex.Attn.Peers)), ex.Attn.Alpha.Data)
			slab.peerIdx = make([]int, len(ex.Attn.Peers))
			for k, peer := range ex.Attn.Peers {
				slab.peerIdx[k] = idx[peer]
			}
		}
	}
	return e, nil
}

// Pairs returns the estimation targets in training order. The slice is
// shared; callers must not mutate it.
func (e *Engine) Pairs() []app.Pair { return e.pairs }

// SetPool overrides the worker pool (nil runs expert passes inline). Call
// before the engine starts serving; benches and tests use it to pin
// parallelism.
func (e *Engine) SetPool(p *Pool) { e.pool = p }

// wsLen is the per-expert work-area length: masked input, GRU step
// scratch, attention context, and the a_t ∥ h_t concat buffer.
func (e *Engine) wsLen() int { return e.dim + 3*e.hidden + e.hidden + 2*e.hidden }

func (e *Engine) getScratch(T int) *predictScratch {
	sc := e.scratch.Get().(*predictScratch)
	P := len(e.experts)
	sc.x = growFloats(sc.x, T*e.dim)
	sc.traj = growFloats(sc.traj, P*T*e.hidden)
	sc.ws = growFloats(sc.ws, P*e.wsLen())
	sc.zero = growFloats(sc.zero, e.hidden)
	for i := range sc.zero {
		sc.zero[i] = 0
	}
	if cap(sc.triples) < P*T {
		sc.triples = make([][3]float64, P*T)
	} else {
		sc.triples = sc.triples[:P*T]
	}
	return sc
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// scaleInput normalises the feature series into sc.x with the snapshot's
// per-dimension maxima — the same v / max[j] the tape path applies.
func (e *Engine) scaleInput(series []features.Vector, sc *predictScratch) error {
	for t, v := range series {
		if len(v.Counts) != e.dim {
			return fmt.Errorf("infer: window %d has %d features for a %d-dim space", t, len(v.Counts), e.dim)
		}
		row := sc.x[t*e.dim : (t+1)*e.dim]
		for j, c := range v.Counts {
			row[j] = c / e.scalerMax[j]
		}
	}
	return nil
}

// maskedInput gates the scaled feature row, returning either the xt buffer
// or (mask off) the row itself.
func (ex *expertSlab) maskedInput(row, xt []float64) []float64 {
	if ex.mask == nil {
		return row
	}
	for j, m := range ex.mask {
		xt[j] = m * row[j]
	}
	return xt
}

// trajectory computes expert i's full hidden trajectory into sc.traj. Each
// step writes out-of-place, so the previous step's row serves as h_{t−1}
// without copying — bit-identical to the tape's carried-buffer recurrence.
func (e *Engine) trajectory(i, T int, sc *predictScratch) {
	ex := &e.experts[i]
	ws := sc.ws[i*e.wsLen() : (i+1)*e.wsLen()]
	xt := ws[:e.dim]
	gs := ws[e.dim : e.dim+3*e.hidden]
	hPrev := sc.zero
	base := i * T * e.hidden
	for t := 0; t < T; t++ {
		row := sc.x[t*e.dim : (t+1)*e.dim]
		hOut := sc.traj[base+t*e.hidden : base+(t+1)*e.hidden]
		ex.gru.Step(ex.maskedInput(row, xt), hPrev, hOut, gs)
		hPrev = hOut
	}
}

// outputs computes expert i's scaled output triples from the trajectories:
// attention context over peer hidden states, head over a_t ∥ h_t, plus the
// linear bypass — the same operation order as Expert.stepOutput.
func (e *Engine) outputs(i, T int, sc *predictScratch) {
	ex := &e.experts[i]
	dim, hid := e.dim, e.hidden
	ws := sc.ws[i*e.wsLen() : (i+1)*e.wsLen()]
	xt := ws[:dim]
	attn := ws[dim+3*hid : dim+4*hid]
	cat := ws[dim+4*hid : dim+6*hid]
	useAttn := e.attnActive && len(ex.peerIdx) > 0
	for t := 0; t < T; t++ {
		row := sc.x[t*dim : (t+1)*dim]
		in := ex.maskedInput(row, xt)
		for j := range attn {
			attn[j] = 0
		}
		if useAttn {
			// Σ_k α_k · h_t^{(k)}, accumulated in peer order like the
			// tape's WeightedSumConst.
			for k, pi := range ex.peerIdx {
				a := ex.alpha[k]
				ph := sc.traj[(pi*T+t)*hid : (pi*T+t+1)*hid]
				for j, x := range ph {
					attn[j] += a * x
				}
			}
		}
		copy(cat[:hid], attn)
		copy(cat[hid:], sc.traj[(i*T+t)*hid:(i*T+t+1)*hid])
		tr := &sc.triples[i*T+t]
		for j := 0; j < 3; j++ {
			y := ad.Dot(ex.headW[j*2*hid:(j+1)*2*hid], cat) + ex.headB[j]
			if ex.bypW != nil {
				y += ad.Dot(ex.bypW[j*dim:(j+1)*dim], in) + ex.bypB[j]
			}
			tr[j] = y
		}
	}
}

// Predict estimates the utilization of every pair for the given feature
// series, in raw resource units — the tape-free equivalent of
// Model.PredictVectors.
func (e *Engine) Predict(series []features.Vector) (map[app.Pair]estimator.Estimate, error) {
	out := make(map[app.Pair]estimator.Estimate, len(e.pairs))
	if err := e.PredictInto(series, out); err != nil {
		return nil, err
	}
	return out, nil
}

// PredictInto is Predict writing into a caller-owned map: existing entries'
// slices are reused when their capacity suffices, so a warm caller that
// keeps its map between calls allocates (almost) nothing.
func (e *Engine) PredictInto(series []features.Vector, out map[app.Pair]estimator.Estimate) error {
	T := len(series)
	sc := e.getScratch(T)
	defer e.scratch.Put(sc)
	if err := e.scaleInput(series, sc); err != nil {
		return err
	}
	P := len(e.experts)
	e.pool.Run(P, func(i int) { e.trajectory(i, T, sc) })
	e.pool.Run(P, func(i int) { e.outputs(i, T, sc) })
	for i, p := range e.pairs {
		est := out[p]
		e.experts[i].scale.DescaleInto(sc.triples[i*T:(i+1)*T], &est)
		out[p] = est
	}
	return nil
}

// PredictBatch runs several independent feature series through the engine
// as one fanned pass: all (series, expert) tasks of the batch share one
// trip through the worker pool, so a coalesced micro-batch of concurrent
// requests costs two pool dispatches total instead of two per request.
func (e *Engine) PredictBatch(batch [][]features.Vector) ([]map[app.Pair]estimator.Estimate, error) {
	B, P := len(batch), len(e.experts)
	if B == 0 {
		return nil, nil
	}
	scs := make([]*predictScratch, B)
	for b, series := range batch {
		scs[b] = e.getScratch(len(series))
		if err := e.scaleInput(series, scs[b]); err != nil {
			for _, sc := range scs[:b+1] {
				e.scratch.Put(sc)
			}
			return nil, err
		}
	}
	e.pool.Run(B*P, func(k int) { e.trajectory(k%P, len(batch[k/P]), scs[k/P]) })
	e.pool.Run(B*P, func(k int) { e.outputs(k%P, len(batch[k/P]), scs[k/P]) })
	out := make([]map[app.Pair]estimator.Estimate, B)
	for b := range batch {
		T := len(batch[b])
		m := make(map[app.Pair]estimator.Estimate, P)
		for i, p := range e.pairs {
			var est estimator.Estimate
			e.experts[i].scale.DescaleInto(scs[b].triples[i*T:(i+1)*T], &est)
			m[p] = est
		}
		out[b] = m
		e.scratch.Put(scs[b])
	}
	return out, nil
}
