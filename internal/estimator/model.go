package estimator

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/app"
	"repro/internal/features"
	"repro/internal/nn/ad"
	"repro/internal/nn/loss"
	"repro/internal/nn/opt"
	"repro/internal/trace"
)

// Config controls model architecture and training. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// Hidden is the GRU width. The paper uses 128 on a real testbed; on
	// the simulated substrate a small recurrent state (default 4)
	// reproduces the evaluation shape best — wider GRUs have enough
	// capacity to memorise the diurnal *shape* of the training traffic
	// instead of the per-API footprints, which mis-extrapolates when a
	// query changes the API composition (see DESIGN.md).
	Hidden int
	// Delta is the confidence level δ of the estimated interval
	// (paper: 0.90).
	Delta float64
	// Epochs is the number of phase-A epochs (attention disabled).
	Epochs int
	// AttentionEpochs is the number of phase-B epochs fine-tuning with
	// cross-component attention over detached peer hidden states.
	AttentionEpochs int
	// ChunkLen is the truncated-BPTT segment length in windows.
	ChunkLen int
	// LR is the learning rate.
	LR float64
	// Optimizer selects "adam" (default) or "sgd" (the paper's choice;
	// slower to converge at equal epochs).
	Optimizer string
	// Momentum applies to the sgd optimizer.
	Momentum float64
	// ClipNorm bounds the per-step global gradient norm.
	ClipNorm float64
	// Seed drives parameter initialisation and chunk shuffling.
	Seed int64
	// UseMask enables the API-aware mask (ablation: false freezes the
	// gate fully open).
	UseMask bool
	// UseAttention enables the cross-component attention mechanism.
	UseAttention bool
	// LinearBypass enables the linear input→output skip connection that
	// lets the bounded recurrent state extrapolate to unseen scales.
	LinearBypass bool
	// MaskL1 penalises open mask gates (λ·Σ σ(m)), pressuring each
	// expert to admit only the invocation paths that actually explain
	// its resource. Different APIs share the diurnal shape, so without
	// sparsity pressure the credit for a resource spreads across
	// correlated paths and mis-extrapolates when a query changes the
	// composition.
	MaskL1 float64
	// BypassL1 penalises the linear bypass weights (λ·Σ|S|), for the
	// same attribution reason.
	BypassL1 float64
	// LRSchedule selects the learning-rate schedule: "" or "constant"
	// holds LR (the default — it reproduces the paper's evaluation shape
	// best at full scale), "cosine" anneals to LR/10 over the training
	// run, "step" halves the rate every third of the run. The annealed
	// schedules include a short linear warmup and converge more robustly
	// on very short runs.
	LRSchedule string
	// Parallelism bounds concurrent expert training; 0 means GOMAXPROCS.
	Parallelism int
	// Log, when non-nil, receives one line per epoch phase.
	Log io.Writer
	// Progress, when non-nil, receives one event per completed training
	// epoch per expert. Experts train in parallel, so the hook MUST be safe
	// for concurrent use; it also runs inline on the training path and must
	// be cheap. The continuous-learning pipeline uses it to export per-epoch
	// loss and duration metrics.
	Progress func(ProgressEvent)
}

// Training phases reported through Config.Progress.
const (
	// PhaseTrain is phase A: independent truncated-BPTT training of each
	// expert with attention disabled.
	PhaseTrain = "train"
	// PhaseAttention is phase B: fitting attention weights and the output
	// head over frozen recurrent trunks.
	PhaseAttention = "attention"
)

// ProgressEvent describes one completed training epoch of one expert.
type ProgressEvent struct {
	// Pair is the expert's (component, resource) target, e.g. "Service/cpu".
	Pair string
	// Phase is PhaseTrain or PhaseAttention.
	Phase string
	// Epoch counts from 1 to Epochs within the phase.
	Epoch, Epochs int
	// Loss is the mean pinball loss across the epoch's chunks, in the
	// expert's unit target scale.
	Loss float64
	// Duration is the wall-clock time the epoch took.
	Duration time.Duration
}

// DefaultConfig returns the configuration used by the experiment drivers.
func DefaultConfig() Config {
	return Config{
		Hidden:          4,
		Delta:           0.90,
		Epochs:          30,
		AttentionEpochs: 6,
		ChunkLen:        64,
		LR:              0.01,
		Optimizer:       "adam",
		ClipNorm:        5,
		Seed:            1,
		UseMask:         true,
		UseAttention:    true,
		LinearBypass:    true,
		MaskL1:          0.002,
		BypassL1:        0.0005,
	}
}

// targetKind distinguishes level series (CPU, memory, IOps, throughput)
// from monotone counters (disk usage), which are modelled as per-window
// deltas and re-integrated at prediction time.
type targetKind int

const (
	kindLevel targetKind = iota
	kindDelta
)

// TargetScale maps a raw utilization series into the unit scale the expert
// is trained on and back.
type TargetScale struct {
	// Kind selects level or delta modelling.
	Kind targetKind
	// Scale divides the (possibly differenced) series; always positive.
	Scale float64
	// Base is the value to resume a monotone counter from at query time
	// (the last observed training value).
	Base float64
}

func fitTargetScale(p app.Pair, series []float64) *TargetScale {
	ts := &TargetScale{Kind: kindLevel, Scale: 1}
	if p.Resource == app.DiskUsage {
		ts.Kind = kindDelta
		if len(series) > 0 {
			ts.Base = series[len(series)-1]
		}
	}
	tr := ts.transform(series)
	max := 0.0
	for _, v := range tr {
		if v > max {
			max = v
		} else if -v > max {
			max = -v
		}
	}
	if max > 0 {
		ts.Scale = max
	}
	return ts
}

// transform differences delta-kind series; level series pass through.
func (ts *TargetScale) transform(series []float64) []float64 {
	if ts.Kind == kindLevel {
		out := make([]float64, len(series))
		copy(out, series)
		return out
	}
	out := make([]float64, len(series))
	for i := range series {
		if i == 0 {
			out[i] = 0
			continue
		}
		out[i] = series[i] - series[i-1]
	}
	return out
}

// scaled returns the training targets in unit scale.
func (ts *TargetScale) scaled(series []float64) []float64 {
	out := ts.transform(series)
	for i := range out {
		out[i] /= ts.Scale
	}
	return out
}

// Estimate is a descaled prediction for one (component, resource) pair.
type Estimate struct {
	// Exp is the expected utilization per window.
	Exp []float64
	// Low and Up bound the δ-confidence interval per window.
	Low, Up []float64
}

// Model is a trained DeepRest instance for one application.
type Model struct {
	// Cfg is the training configuration.
	Cfg Config
	// Space is the invocation-path feature space built during
	// application learning.
	Space *features.Space
	// FeatScaler normalises feature counts.
	FeatScaler *features.Scaler
	// Pairs lists the estimation targets in training order.
	Pairs []app.Pair
	// Experts holds one expert per pair.
	Experts map[app.Pair]*Expert
	// TargetScales holds the per-pair descaling information.
	TargetScales map[app.Pair]*TargetScale

	// peerKeys caches, per pair, the attention peer-key list (every other
	// pair's string form, in training order). It is derived once from
	// Pairs at build/load time instead of re-deriving — and re-stringing
	// every pair — on each gatherPeers call.
	peerKeys map[app.Pair][]string
}

// initPeerKeys populates the peerKeys cache from Pairs. Call after Pairs is
// final (model build or snapshot load).
func (m *Model) initPeerKeys() {
	m.peerKeys = make(map[app.Pair][]string, len(m.Pairs))
	names := make([]string, len(m.Pairs))
	for i, p := range m.Pairs {
		names[i] = p.String()
	}
	for i, p := range m.Pairs {
		keys := make([]string, 0, len(m.Pairs)-1)
		for j := range m.Pairs {
			if j != i {
				keys = append(keys, names[j])
			}
		}
		m.peerKeys[p] = keys
	}
}

// Train learns a DeepRest model from application-learning telemetry: the
// windows of trace batches and the aligned utilization series per pair.
func Train(windows [][]trace.Batch, usage map[app.Pair][]float64, cfg Config) (*Model, error) {
	return TrainWarm(windows, usage, cfg, nil)
}

// buildModel constructs the feature space, scalers, and freshly initialised
// experts, returning the scaled inputs and targets ready for training.
func buildModel(windows [][]trace.Batch, usage map[app.Pair][]float64, cfg Config) (*Model, [][]float64, map[app.Pair][]float64, error) {
	if len(windows) == 0 {
		return nil, nil, nil, fmt.Errorf("estimator: no learning windows")
	}
	if len(usage) == 0 {
		return nil, nil, nil, fmt.Errorf("estimator: no utilization series")
	}
	if cfg.Hidden <= 0 || cfg.ChunkLen <= 0 || cfg.Epochs < 0 {
		return nil, nil, nil, fmt.Errorf("estimator: invalid config: hidden=%d chunk=%d epochs=%d", cfg.Hidden, cfg.ChunkLen, cfg.Epochs)
	}
	space := features.NewSpace(windows)
	if space.Dim() == 0 {
		return nil, nil, nil, fmt.Errorf("estimator: learning windows contain no traces")
	}
	raw := features.Matrix(space.ExtractSeries(windows))
	scaler := features.FitScaler(raw)
	x := scaler.Apply(raw)

	pairs := make([]app.Pair, 0, len(usage))
	for p, series := range usage {
		if len(series) != len(windows) {
			return nil, nil, nil, fmt.Errorf("estimator: %s has %d samples for %d windows", p, len(series), len(windows))
		}
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Component != pairs[j].Component {
			return pairs[i].Component < pairs[j].Component
		}
		return pairs[i].Resource < pairs[j].Resource
	})

	m := &Model{
		Cfg:          cfg,
		Space:        space,
		FeatScaler:   scaler,
		Pairs:        pairs,
		Experts:      make(map[app.Pair]*Expert, len(pairs)),
		TargetScales: make(map[app.Pair]*TargetScale, len(pairs)),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m.initPeerKeys()
	targets := make(map[app.Pair][]float64, len(pairs))
	for _, p := range pairs {
		m.TargetScales[p] = fitTargetScale(p, usage[p])
		targets[p] = m.TargetScales[p].scaled(usage[p])
		m.Experts[p] = newExpert(p, space.Dim(), cfg.Hidden, m.peerKeys[p], cfg, rng)
	}

	return m, x, targets, nil
}

// trainAll runs the two training phases over a freshly built (or
// warm-started) model.
func (m *Model) trainAll(x [][]float64, targets map[app.Pair][]float64, cfg Config) error {
	quant := loss.Quantiles(cfg.Delta)
	q := quant[:]

	// Phase A: train every expert independently with attention disabled.
	logf(cfg.Log, "phase A: training %d experts (%d epochs, dim=%d, hidden=%d)",
		len(m.Pairs), cfg.Epochs, m.Space.Dim(), cfg.Hidden)
	err := m.forEachExpert(func(i int, p app.Pair) error {
		return trainExpert(m.Experts[p], x, targets[p], nil, cfg, cfg.Epochs, q, cfg.Seed+int64(i))
	})
	if err != nil {
		return err
	}

	// Phase B: learn the cross-component attention weights over detached
	// peer hidden states. Only the attention weights α and the output
	// head V train here; the recurrent trunks stay frozen, so every
	// expert's hidden trajectory — and therefore every peer state — is
	// exactly what inference will see. (Fine-tuning the trunks here
	// would invalidate the peer states the attention was fitted to.)
	if cfg.UseAttention && cfg.AttentionEpochs > 0 && len(m.Pairs) > 1 {
		logf(cfg.Log, "phase B: attention (%d epochs over frozen trunks)", cfg.AttentionEpochs)
		hidden, err := m.allHiddenStates(x)
		if err != nil {
			return err
		}
		err = m.forEachExpert(func(i int, p app.Pair) error {
			peerStates := m.gatherPeers(p, hidden)
			return trainExpertHead(m.Experts[p], x, targets[p], peerStates, cfg, cfg.AttentionEpochs, q, cfg.Seed+1000+int64(i))
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func logf(w io.Writer, format string, args ...interface{}) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}

// forEachExpert runs fn for every pair with bounded parallelism; fn
// receives the pair's index in training order (the basis of its
// deterministic per-expert seed).
func (m *Model) forEachExpert(fn func(i int, p app.Pair) error) error {
	par := m.Cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(m.Pairs) {
		par = len(m.Pairs)
	}
	if par <= 1 {
		for i, p := range m.Pairs {
			if err := fn(i, p); err != nil {
				return err
			}
		}
		return nil
	}
	// A fixed pool of par workers pulls pair indices from a channel — on a
	// 300-component generated topology that is par goroutines total instead
	// of one per (component, resource) pair churning through a semaphore.
	// Results stay deterministic regardless of which worker takes which
	// pair: the per-expert seed is derived from the training-order index.
	idx := make(chan int, len(m.Pairs))
	for i := range m.Pairs {
		idx <- i
	}
	close(idx)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := fn(i, m.Pairs[i]); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// allHiddenStates computes every expert's hidden trajectory in parallel,
// keyed by pair string.
func (m *Model) allHiddenStates(x [][]float64) (map[string][][]float64, error) {
	out := make(map[string][][]float64, len(m.Pairs))
	var mu sync.Mutex
	err := m.forEachExpert(func(_ int, p app.Pair) error {
		hs := m.Experts[p].HiddenStates(x)
		mu.Lock()
		out[p.String()] = hs
		mu.Unlock()
		return nil
	})
	return out, err
}

// gatherPeers assembles, per time step, the peer hidden states of expert p
// in the order of its attention peer list (precomputed in peerKeys).
func (m *Model) gatherPeers(p app.Pair, hidden map[string][][]float64) [][][]float64 {
	peerKeys, cached := m.peerKeys[p]
	if !cached {
		// Hand-assembled model (tests) or a pair absent from the cache:
		// derive locally without touching the cache — gatherPeers runs
		// concurrently across experts. Falling back on a missing entry (not
		// just a nil map) keeps a stale or partial cache from silently
		// zeroing the attention peers.
		for _, q := range m.Pairs {
			if q != p {
				peerKeys = append(peerKeys, q.String())
			}
		}
	}
	if len(peerKeys) == 0 {
		return nil
	}
	steps := len(hidden[peerKeys[0]])
	out := make([][][]float64, steps)
	for t := 0; t < steps; t++ {
		rows := make([][]float64, len(peerKeys))
		for k, key := range peerKeys {
			rows[k] = hidden[key][t]
		}
		out[t] = rows
	}
	return out
}

// trainExpert runs truncated-BPTT training of one expert for the given
// number of epochs. peerStates enables the attention term; nil trains with
// a zero context.
func trainExpert(e *Expert, x [][]float64, target []float64, peerStates [][][]float64, cfg Config, epochs int, q []float64, seed int64) error {
	if len(x) != len(target) {
		return fmt.Errorf("estimator: %s: %d inputs vs %d targets", e.Pair, len(x), len(target))
	}
	params := e.Params()
	var optimizer opt.Optimizer
	switch cfg.Optimizer {
	case "", "adam":
		a := opt.NewAdam(params, cfg.LR)
		a.ClipNorm = cfg.ClipNorm
		optimizer = a
	case "sgd":
		s := opt.NewSGD(params, cfg.LR)
		s.Momentum = cfg.Momentum
		s.ClipNorm = cfg.ClipNorm
		optimizer = s
	default:
		return fmt.Errorf("estimator: unknown optimizer %q", cfg.Optimizer)
	}

	rng := rand.New(rand.NewSource(seed))
	nChunks := (len(x) + cfg.ChunkLen - 1) / cfg.ChunkLen
	optimizer, err2 := scheduledOptimizer(optimizer, cfg, epochs*nChunks)
	if err2 != nil {
		return err2
	}
	order := make([]int, nChunks)
	for i := range order {
		order[i] = i
	}
	tape := ad.NewTape()
	zeroAttn := make([]float64, e.Hidden)
	zeroH := make([]float64, e.Hidden)
	// The target triple and per-chunk loss list are reused across chunks
	// and epochs: Pinball copies the targets onto the tape, and the
	// SumScalars operand slice is only read up to Backward below.
	tgt := make([]float64, len(q))
	losses := make([]*ad.Value, 0, cfg.ChunkLen)
	useAttn := peerStates != nil && e.UseAttention && len(e.Attn.Peers) > 0

	for ep := 0; ep < epochs; ep++ {
		epochStart := time.Now()
		epochLoss := 0.0
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, ci := range order {
			from := ci * cfg.ChunkLen
			to := from + cfg.ChunkLen
			if to > len(x) {
				to = len(x)
			}
			tape.Reset()
			h := tape.Const(zeroH)
			losses = losses[:0]
			for t := from; t < to; t++ {
				xt := e.maskedInput(tape, x[t])
				h = e.Cell.Step(tape, xt, h)
				var attn *ad.Value
				if useAttn {
					attn = e.Attn.Apply(tape, peerStates[t])
				} else {
					attn = tape.Const(zeroAttn)
				}
				y := e.stepOutput(tape, xt, h, attn)
				for j := range tgt {
					tgt[j] = target[t]
				}
				losses = append(losses, tape.Pinball(y, tgt, q))
			}
			total := tape.SumScalars(losses...)
			mean := tape.ScaleConst(total, 1/float64(to-from))
			tape.Backward(mean)
			epochLoss += mean.Data[0]
			e.addRegularizationGrads(cfg)
			optimizer.Step()
		}
		if cfg.Progress != nil {
			cfg.Progress(ProgressEvent{
				Pair: e.Pair.String(), Phase: PhaseTrain,
				Epoch: ep + 1, Epochs: epochs,
				Loss:     epochLoss / float64(nChunks),
				Duration: time.Since(epochStart),
			})
		}
	}
	return nil
}

// trainExpertHead runs phase B for one expert: with the recurrent trunk,
// mask, and bypass frozen, it fits only the attention weights α and the
// output head V against the (now fixed) own and peer hidden states.
func trainExpertHead(e *Expert, x [][]float64, target []float64, peerStates [][][]float64, cfg Config, epochs int, q []float64, seed int64) error {
	if !e.UseAttention || len(e.Attn.Peers) == 0 || peerStates == nil {
		return nil
	}
	// Precompute the frozen parts per step: own hidden state and the
	// bypass contribution. Both are pure forward passes, so they run on
	// gradient-free eval tapes.
	own := e.HiddenStates(x)
	bypass := make([][]float64, len(x))
	if e.UseBypass {
		t := ad.NewEvalTape()
		for i, row := range x {
			xt := e.maskedInput(t, row)
			out := e.Bypass.Apply(t, xt)
			bypass[i] = append([]float64(nil), out.Data...)
			t.Reset()
		}
	}

	params := append(e.Head.Params(), e.Attn.Params()...)
	a := opt.NewAdam(params, cfg.LR)
	a.ClipNorm = cfg.ClipNorm

	rng := rand.New(rand.NewSource(seed))
	nChunks := (len(x) + cfg.ChunkLen - 1) / cfg.ChunkLen
	order := make([]int, nChunks)
	for i := range order {
		order[i] = i
	}
	tape := ad.NewTape()
	tgt := make([]float64, len(q))
	losses := make([]*ad.Value, 0, cfg.ChunkLen)
	for ep := 0; ep < epochs; ep++ {
		epochStart := time.Now()
		epochLoss := 0.0
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, ci := range order {
			from := ci * cfg.ChunkLen
			to := from + cfg.ChunkLen
			if to > len(x) {
				to = len(x)
			}
			tape.Reset()
			losses = losses[:0]
			for t := from; t < to; t++ {
				h := tape.Const(own[t])
				attn := e.Attn.Apply(tape, peerStates[t])
				y := e.Head.Apply(tape, tape.Concat(attn, h))
				if e.UseBypass {
					y = tape.Add(y, tape.Const(bypass[t]))
				}
				for j := range tgt {
					tgt[j] = target[t]
				}
				losses = append(losses, tape.Pinball(y, tgt, q))
			}
			total := tape.SumScalars(losses...)
			mean := tape.ScaleConst(total, 1/float64(to-from))
			tape.Backward(mean)
			epochLoss += mean.Data[0]
			a.Step()
		}
		if cfg.Progress != nil {
			cfg.Progress(ProgressEvent{
				Pair: e.Pair.String(), Phase: PhaseAttention,
				Epoch: ep + 1, Epochs: epochs,
				Loss:     epochLoss / float64(nChunks),
				Duration: time.Since(epochStart),
			})
		}
	}
	return nil
}

// scheduledOptimizer wraps the optimizer with the configured learning-rate
// schedule; totalSteps sizes annealing horizons.
func scheduledOptimizer(o opt.Optimizer, cfg Config, totalSteps int) (opt.Optimizer, error) {
	if totalSteps < 1 {
		totalSteps = 1
	}
	warm := totalSteps / 20
	switch cfg.LRSchedule {
	case "", "constant":
		return o, nil
	case "cosine":
		return opt.WithSchedule(o, opt.Warmup{Steps: warm, Inner: opt.Cosine{Base: cfg.LR, Min: cfg.LR / 10, Period: totalSteps}}), nil
	case "step":
		return opt.WithSchedule(o, opt.Warmup{Steps: warm, Inner: opt.StepDecay{Base: cfg.LR, Factor: 0.5, Every: (totalSteps + 2) / 3}}), nil
	default:
		return nil, fmt.Errorf("estimator: unknown LR schedule %q", cfg.LRSchedule)
	}
}

// addRegularizationGrads adds the L1 attribution penalties' gradients on
// top of the loss gradients accumulated by backprop.
func (e *Expert) addRegularizationGrads(cfg Config) {
	if cfg.MaskL1 > 0 && e.UseMask {
		m := e.Mask.M
		for i, v := range m.Data {
			s := sigmoid(v)
			m.Grad[i] += cfg.MaskL1 * s * (1 - s)
		}
	}
	if cfg.BypassL1 > 0 && e.UseBypass {
		w := e.Bypass.W
		for i, v := range w.Data {
			switch {
			case v > 0:
				w.Grad[i] += cfg.BypassL1
			case v < 0:
				w.Grad[i] -= cfg.BypassL1
			}
		}
	}
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// Predict estimates the utilization of every pair for the given windows of
// (real or synthetic) trace batches. The returned estimates are in raw
// resource units; monotone counters resume from their TargetScale base.
func (m *Model) Predict(windows [][]trace.Batch) (map[app.Pair]Estimate, error) {
	return m.PredictVectors(m.Space.ExtractSeries(windows))
}

// PredictVectors is Predict for callers that already hold the windows'
// feature vectors — e.g. the telemetry store's per-window extraction cache —
// so the trace trees are not re-walked on every query. The vectors must have
// been extracted against m.Space.
func (m *Model) PredictVectors(series []features.Vector) (map[app.Pair]Estimate, error) {
	raw := features.Matrix(series)
	x := m.FeatScaler.Apply(raw)
	return m.predictScaledInput(x)
}

func (m *Model) predictScaledInput(x [][]float64) (map[app.Pair]Estimate, error) {
	var hidden map[string][][]float64
	if m.Cfg.UseAttention && len(m.Pairs) > 1 {
		var err error
		hidden, err = m.allHiddenStates(x)
		if err != nil {
			return nil, err
		}
	}
	out := make(map[app.Pair]Estimate, len(m.Pairs))
	var mu sync.Mutex
	err := m.forEachExpert(func(_ int, p app.Pair) error {
		var peers [][][]float64
		if hidden != nil {
			peers = m.gatherPeers(p, hidden)
		}
		triples, err := m.Experts[p].Forward(x, peers)
		if err != nil {
			return err
		}
		est := m.descale(p, triples)
		mu.Lock()
		out[p] = est
		mu.Unlock()
		return nil
	})
	return out, err
}

// descale converts scaled (exp, low, up) triples into raw resource units,
// re-integrating delta-kind targets and repairing any quantile crossing.
func (m *Model) descale(p app.Pair, triples [][3]float64) Estimate {
	var est Estimate
	m.TargetScales[p].DescaleInto(triples, &est)
	return est
}

// DescaleInto is the buffer-reusing form of descaling: it writes the raw
// resource units into est, growing est's slices only when their capacity is
// insufficient. It is the single descale implementation — the tape path
// above and the tape-free inference engine (internal/estimator/infer) both
// run it, so their raw-unit outputs cannot diverge.
func (ts *TargetScale) DescaleInto(triples [][3]float64, est *Estimate) {
	n := len(triples)
	est.Exp = resizeFloats(est.Exp, n)
	est.Low = resizeFloats(est.Low, n)
	est.Up = resizeFloats(est.Up, n)
	if ts.Kind == kindDelta {
		accE, accL, accU := ts.Base, ts.Base, ts.Base
		for i, tr := range triples {
			e, l, u := ordered(tr)
			accE += e * ts.Scale
			accL += l * ts.Scale
			accU += u * ts.Scale
			est.Exp[i], est.Low[i], est.Up[i] = accE, accL, accU
		}
		return
	}
	for i, tr := range triples {
		e, l, u := ordered(tr)
		est.Exp[i] = e * ts.Scale
		est.Low[i] = l * ts.Scale
		est.Up[i] = u * ts.Scale
		if est.Exp[i] < 0 {
			est.Exp[i] = 0
		}
		if est.Low[i] < 0 {
			est.Low[i] = 0
		}
		if est.Up[i] < 0 {
			est.Up[i] = 0
		}
	}
}

// resizeFloats returns s resliced to length n, reallocating only when the
// capacity is insufficient.
func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// ordered repairs quantile crossing: low ≤ exp ≤ up.
func ordered(tr [3]float64) (exp, low, up float64) {
	exp, low, up = tr[0], tr[1], tr[2]
	if low > exp {
		low = exp
	}
	if up < exp {
		up = exp
	}
	return exp, low, up
}
