package estimator

import (
	"testing"

	"repro/internal/app"
	"repro/internal/nn/loss"
	"repro/internal/testutil"
)

// Hot-path benchmarks tracked in BENCH_estimator.json by `make bench`. They
// measure the three loops everything sits on: one truncated-BPTT training
// epoch of a single expert, a gradient-free forward pass, and end-to-end
// multi-expert prediction. ReportAllocs makes the allocation trajectory part
// of the recorded perf history.

func benchFixture(b *testing.B, pairs ...app.Pair) (*Model, [][]float64, map[app.Pair][]float64) {
	b.Helper()
	_, _, run := testutil.ToyTelemetry(b, 3, 40, 21)
	usage := run.Usage
	if len(pairs) > 0 {
		usage = testutil.FocusPairs(usage, pairs...)
	}
	cfg := DefaultConfig()
	cfg.ChunkLen = 24
	m, x, targets, err := buildModel(run.Windows, usage, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return m, x, targets
}

// BenchmarkTrainEpoch measures one full training epoch (chunked
// forward+backward+optimizer) of a single expert.
func BenchmarkTrainEpoch(b *testing.B) {
	p := app.Pair{Component: "Service", Resource: app.CPU}
	m, x, targets, cfg := benchExpertSetup(b, p)
	q := loss.Quantiles(cfg.Delta)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := trainExpert(m.Experts[p], x, targets[p], nil, cfg, 1, q[:], cfg.Seed); err != nil {
			b.Fatal(err)
		}
	}
}

func benchExpertSetup(b *testing.B, p app.Pair) (*Model, [][]float64, map[app.Pair][]float64, Config) {
	b.Helper()
	m, x, targets := benchFixture(b, p)
	return m, x, targets, m.Cfg
}

// BenchmarkExpertForward measures the gradient-free forward pass of one
// expert over one day of windows — the per-expert core of /v1/estimate.
func BenchmarkExpertForward(b *testing.B) {
	p := app.Pair{Component: "Service", Resource: app.CPU}
	m, x, _, _ := benchExpertSetup(b, p)
	day := x[:testutil.ToyDay]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Experts[p].Forward(day, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpertHiddenStates measures the detached recurrence used for
// peer-state precompute (phase B and attention-enabled prediction).
func BenchmarkExpertHiddenStates(b *testing.B) {
	p := app.Pair{Component: "Service", Resource: app.CPU}
	m, x, _, _ := benchExpertSetup(b, p)
	day := x[:testutil.ToyDay]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Experts[p].HiddenStates(day)
	}
}

// BenchmarkModelPredict measures end-to-end prediction of the full
// multi-expert toy model (attention enabled) over one day — the serving
// path behind /v1/estimate and /v1/sanity.
func BenchmarkModelPredict(b *testing.B) {
	_, _, run := testutil.ToyTelemetry(b, 3, 40, 21)
	cfg := DefaultConfig()
	cfg.Epochs = 2
	cfg.AttentionEpochs = 1
	cfg.ChunkLen = 24
	m, err := Train(run.Windows, run.Usage, cfg)
	if err != nil {
		b.Fatal(err)
	}
	day := run.Windows[:testutil.ToyDay]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(day); err != nil {
			b.Fatal(err)
		}
	}
}
