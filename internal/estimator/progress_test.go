package estimator

import (
	"math"
	"sync"
	"testing"

	"repro/internal/testutil"
)

// TestProgressHook trains a tiny model with a Progress hook installed and
// checks the per-epoch event stream: one event per (expert, phase, epoch),
// monotone epoch numbers per expert, finite losses, and non-negative
// durations. The hook is invoked from concurrent expert goroutines, so the
// collector locks — mirroring how the obs wiring uses it.
func TestProgressHook(t *testing.T) {
	_, _, run := testutil.ToyTelemetry(t, 2, 30, 7)

	cfg := testConfig()
	cfg.Epochs = 5
	cfg.AttentionEpochs = 2
	var (
		mu     sync.Mutex
		events []ProgressEvent
	)
	cfg.Progress = func(ev ProgressEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}

	m, err := Train(run.Windows, run.Usage, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}

	nPairs := len(m.Pairs)
	wantTrain := nPairs * cfg.Epochs
	wantAttn := nPairs * cfg.AttentionEpochs
	var gotTrain, gotAttn int
	lastEpoch := map[string]int{} // pair+phase -> last epoch seen
	for _, ev := range events {
		switch ev.Phase {
		case PhaseTrain:
			gotTrain++
			if ev.Epochs != cfg.Epochs {
				t.Fatalf("train event Epochs = %d, want %d", ev.Epochs, cfg.Epochs)
			}
		case PhaseAttention:
			gotAttn++
			if ev.Epochs != cfg.AttentionEpochs {
				t.Fatalf("attention event Epochs = %d, want %d", ev.Epochs, cfg.AttentionEpochs)
			}
		default:
			t.Fatalf("unknown phase %q", ev.Phase)
		}
		key := ev.Pair + "/" + ev.Phase
		if ev.Epoch != lastEpoch[key]+1 {
			t.Fatalf("%s: epoch %d follows %d", key, ev.Epoch, lastEpoch[key])
		}
		lastEpoch[key] = ev.Epoch
		if math.IsNaN(ev.Loss) || math.IsInf(ev.Loss, 0) {
			t.Fatalf("%s epoch %d: loss %v", key, ev.Epoch, ev.Loss)
		}
		if ev.Duration < 0 {
			t.Fatalf("%s epoch %d: negative duration", key, ev.Epoch)
		}
	}
	if gotTrain != wantTrain || gotAttn != wantAttn {
		t.Fatalf("events: train=%d attention=%d, want %d and %d", gotTrain, gotAttn, wantTrain, wantAttn)
	}

	// Training converges on the toy data: the mean loss of each expert's
	// last train epoch is below its first.
	first, last := map[string]float64{}, map[string]float64{}
	for _, ev := range events {
		if ev.Phase != PhaseTrain {
			continue
		}
		if ev.Epoch == 1 {
			first[ev.Pair] = ev.Loss
		}
		if ev.Epoch == cfg.Epochs {
			last[ev.Pair] = ev.Loss
		}
	}
	improved := 0
	for pair := range first {
		if last[pair] < first[pair] {
			improved++
		}
	}
	if improved == 0 {
		t.Fatalf("no expert's loss improved over %d epochs (first=%v last=%v)", cfg.Epochs, first, last)
	}
}
