// Package estimator implements DeepRest's API-aware deep resource estimator
// (paper §4.2–§4.3): a swarm of per-(component, resource) DNN experts, each
// a GRU with a learnable API-aware input mask, a cross-component attention
// mechanism over the other experts' hidden states, and a quantile-regression
// head that outputs the expected utilization together with the lower and
// upper limits of a δ-confidence interval.
package estimator

import (
	"fmt"
	"math/rand"

	"repro/internal/app"
	"repro/internal/nn/ad"
	"repro/internal/nn/layers"
)

// Expert is the dedicated estimator F^{c,r} for one resource r of one
// component c.
type Expert struct {
	// Pair identifies the estimation target.
	Pair app.Pair
	// InDim is the feature-space dimensionality, Hidden the GRU width.
	InDim, Hidden int
	// Mask is the API-aware input mask (Equation 1).
	Mask *layers.APIMask
	// Cell is the recurrent core (Equation 2).
	Cell *layers.GRUCell
	// Attn holds the cross-component attention weights α (Equation 3).
	Attn *layers.Attention
	// Head is the fully connected output layer V applied to a_t ∥ h_t
	// (Equation 4), emitting (expected, lower, upper).
	Head *layers.Dense
	// Bypass is a linear skip connection from the masked input to the
	// output. The GRU's tanh-bounded hidden state cannot represent
	// utilizations beyond the training range, so without the bypass the
	// model could not extrapolate to the paper's "3× more users than
	// ever" queries; the bypass carries the (locally linear) traffic →
	// utilization component while the recurrent path models queuing,
	// caches, and temporal effects. Disable via Config.LinearBypass for
	// the ablation study.
	Bypass *layers.Dense
	// UseMask and UseAttention mirror the training configuration so a
	// loaded model predicts exactly as trained.
	UseMask, UseAttention, UseBypass bool
}

// newExpert builds an expert for pair with the given dimensions and peers.
func newExpert(pair app.Pair, inDim, hidden int, peers []string, cfg Config, rng *rand.Rand) *Expert {
	name := pair.String()
	return &Expert{
		Pair:   pair,
		InDim:  inDim,
		Hidden: hidden,
		Mask:   layers.NewAPIMask(name, inDim),
		Cell:   layers.NewGRUCell(name, inDim, hidden, rng),
		Attn:   layers.NewAttention(name, peers),
		Head:   layers.NewDense(name+".V", 2*hidden, 3, rng),
		Bypass: layers.NewDense(name+".S", inDim, 3, rng),

		UseMask:      cfg.UseMask,
		UseAttention: cfg.UseAttention,
		UseBypass:    cfg.LinearBypass,
	}
}

// Params returns every trainable parameter of the expert.
func (e *Expert) Params() []*ad.Param {
	var out []*ad.Param
	out = append(out, e.Mask.Params()...)
	out = append(out, e.Cell.Params()...)
	out = append(out, e.Attn.Params()...)
	out = append(out, e.Head.Params()...)
	out = append(out, e.Bypass.Params()...)
	return out
}

// NumParams returns the total scalar parameter count.
func (e *Expert) NumParams() int {
	n := 0
	for _, p := range e.Params() {
		n += p.Size()
	}
	return n
}

// maskedInput places x on the tape and applies the API-aware mask.
func (e *Expert) maskedInput(t *ad.Tape, x []float64) *ad.Value {
	in := t.Const(x)
	if e.UseMask {
		return e.Mask.Apply(t, in)
	}
	return in
}

// stepOutput computes the output triple at one time step from the masked
// input, the new hidden state, and the attention context.
func (e *Expert) stepOutput(t *ad.Tape, xt, h, attn *ad.Value) *ad.Value {
	out := e.Head.Apply(t, t.Concat(attn, h))
	if e.UseBypass {
		out = t.Add(out, e.Bypass.Apply(t, xt))
	}
	return out
}

// HiddenStates runs the recurrence over a scaled feature series and returns
// the hidden-state trajectory [T][Hidden]. It runs on a gradient-free eval
// tape; this feeds the detached peer states consumed by other experts'
// attention.
func (e *Expert) HiddenStates(x [][]float64) [][]float64 {
	t := ad.NewEvalTape()
	// Reset recycles all tape memory each step, so the recurrent state is
	// carried across steps in a buffer the tape does not own.
	hbuf := make([]float64, e.Hidden)
	out := make([][]float64, len(x))
	for i, row := range x {
		h := t.Const(hbuf)
		xt := e.maskedInput(t, row)
		h = e.Cell.Step(t, xt, h)
		cp := make([]float64, e.Hidden)
		copy(cp, h.Data)
		out[i] = cp
		copy(hbuf, h.Data)
		t.Reset()
	}
	return out
}

// Forward runs the full forward pass over a scaled feature series and
// returns the (expected, lower, upper) triple per step, in scaled target
// units. peerHidden[t] holds the detached hidden states of the peer experts
// at step t, aligned with e.Attn.Peers; nil runs with a zero attention
// context (used for attention-free models and for occlusion probes).
func (e *Expert) Forward(x [][]float64, peerHidden [][][]float64) ([][3]float64, error) {
	if peerHidden != nil && len(peerHidden) != len(x) {
		return nil, fmt.Errorf("estimator: expert %s: %d peer-state steps for %d inputs", e.Pair, len(peerHidden), len(x))
	}
	t := ad.NewEvalTape()
	hbuf := make([]float64, e.Hidden)
	zeroAttn := make([]float64, e.Hidden)
	out := make([][3]float64, len(x))
	for i, row := range x {
		h := t.Const(hbuf)
		xt := e.maskedInput(t, row)
		h = e.Cell.Step(t, xt, h)
		var attn *ad.Value
		if e.UseAttention && len(e.Attn.Peers) > 0 && peerHidden != nil {
			attn = e.Attn.Apply(t, peerHidden[i])
		} else {
			attn = t.Const(zeroAttn)
		}
		y := e.stepOutput(t, xt, h, attn)
		out[i] = [3]float64{y.Data[0], y.Data[1], y.Data[2]}
		copy(hbuf, h.Data)
		t.Reset()
	}
	return out, nil
}
