package estimator

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/features"
	"repro/internal/trace"
	"sort"
	"strings"
)

// MaskEntry is one feature's learned admission weight in an expert's
// API-aware mask.
type MaskEntry struct {
	// Path is the invocation-path key of the feature.
	Path string
	// Weight is σ(m) for the feature, in [0, 1].
	Weight float64
}

// MaskReport returns the expert's learned API-aware mask, sorted by
// descending weight — the interpretability artifact of the paper's
// Figure 22, revealing which APIs (through their invocation paths) influence
// the resource.
func (m *Model) MaskReport(pair app.Pair) []MaskEntry {
	e, ok := m.Experts[pair]
	if !ok {
		return nil
	}
	ws := e.Mask.Weights()
	out := make([]MaskEntry, len(ws))
	for i, w := range ws {
		out[i] = MaskEntry{Path: m.Space.Path(i), Weight: w}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Path < out[j].Path
	})
	return out
}

// APIInfluence measures, per API, how strongly the expert's estimate
// depends on that API's traffic: the model is probed on the given windows
// with the API's invocation paths occluded (zeroed), and the influence is
// the mean absolute change of the expected-utilization output, normalised
// so the most influential API scores 1. This condenses the learned
// API→resource dependencies into the per-API bars of Figure 22.
//
// The paper reads the mask weights directly; occlusion probes the same
// question — "which APIs does this expert rely on?" — but stays faithful
// when attribution is shared between the mask, the recurrent weights, and
// the linear bypass. A path's API is identified by its root
// (component:operation) token; in a hashed deployment the tokens are opaque
// but still group correctly.
func (m *Model) APIInfluence(pair app.Pair, windows [][]trace.Batch) (map[string]float64, error) {
	e, ok := m.Experts[pair]
	if !ok {
		return nil, fmt.Errorf("estimator: no expert for %s", pair)
	}
	x := m.FeatScaler.Apply(features.Matrix(m.Space.ExtractSeries(windows)))
	base, err := e.Forward(x, nil)
	if err != nil {
		return nil, err
	}

	// Group feature columns by the root token of their path.
	cols := make(map[string][]int)
	for i := 0; i < m.Space.Dim(); i++ {
		root := rootToken(m.Space.Path(i))
		cols[root] = append(cols[root], i)
	}

	out := make(map[string]float64, len(cols))
	max := 0.0
	for root, idxs := range cols {
		occluded := occlude(x, idxs)
		probe, err := e.Forward(occluded, nil)
		if err != nil {
			return nil, err
		}
		diff := 0.0
		for t := range base {
			d := base[t][0] - probe[t][0]
			if d < 0 {
				d = -d
			}
			diff += d
		}
		v := diff / float64(len(base))
		out[root] = v
		if v > max {
			max = v
		}
	}
	if max > 0 {
		for k := range out {
			out[k] /= max
		}
	}
	return out, nil
}

// occlude returns a copy of x with the given columns zeroed.
func occlude(x [][]float64, cols []int) [][]float64 {
	out := make([][]float64, len(x))
	for t, row := range x {
		r := make([]float64, len(row))
		copy(r, row)
		for _, c := range cols {
			r[c] = 0
		}
		out[t] = r
	}
	return out
}

func rootToken(path string) string {
	if i := strings.Index(path, "→"); i >= 0 {
		return path[:i]
	}
	return path
}

// AttentionReport returns, for one expert, the peers sorted by descending
// |α| with their attention weights — which other (component, resource)
// experts it listens to.
func (m *Model) AttentionReport(pair app.Pair, topN int) []PeerWeight {
	e, ok := m.Experts[pair]
	if !ok {
		return nil
	}
	out := make([]PeerWeight, len(e.Attn.Peers))
	for i, name := range e.Attn.Peers {
		out[i] = PeerWeight{Peer: name, Alpha: e.Attn.Alpha.Data[i]}
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := out[i].Alpha, out[j].Alpha
		if ai < 0 {
			ai = -ai
		}
		if aj < 0 {
			aj = -aj
		}
		if ai != aj {
			return ai > aj
		}
		return out[i].Peer < out[j].Peer
	})
	if topN > 0 && topN < len(out) {
		out = out[:topN]
	}
	return out
}

// PeerWeight is one peer's attention weight.
type PeerWeight struct {
	// Peer is the peer expert's "Component/resource" key.
	Peer string
	// Alpha is the learned attention weight.
	Alpha float64
}

// ExpertVector flattens the application-independent recurrent parameters of
// an expert (its GRU cell) into one vector, the representation the paper
// projects with PCA in Figure 21 to show MongoDB experts clustering.
func (m *Model) ExpertVector(pair app.Pair) []float64 {
	e, ok := m.Experts[pair]
	if !ok {
		return nil
	}
	return e.Cell.FlatParams()
}
