package estimator

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/app"
	"repro/internal/testutil"
)

func newTestExpert(cfg Config, inDim int, peers []string) *Expert {
	rng := rand.New(rand.NewSource(1))
	return newExpert(app.Pair{Component: "C", Resource: app.CPU}, inDim, cfg.Hidden, peers, cfg, rng)
}

func seriesOf(dim, steps int) [][]float64 {
	x := make([][]float64, steps)
	for t := range x {
		x[t] = make([]float64, dim)
		for j := range x[t] {
			x[t][j] = float64((t+j)%5) / 5
		}
	}
	return x
}

func TestExpertHiddenStatesShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = 3
	e := newTestExpert(cfg, 4, nil)
	hs := e.HiddenStates(seriesOf(4, 10))
	if len(hs) != 10 {
		t.Fatalf("steps = %d", len(hs))
	}
	for _, h := range hs {
		if len(h) != 3 {
			t.Fatalf("hidden width = %d", len(h))
		}
	}
	// Deterministic.
	hs2 := e.HiddenStates(seriesOf(4, 10))
	for i := range hs {
		for j := range hs[i] {
			if hs[i][j] != hs2[i][j] {
				t.Fatal("HiddenStates not deterministic")
			}
		}
	}
}

func TestExpertForwardZeroAttentionFallback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = 3
	e := newTestExpert(cfg, 4, []string{"peer"})
	// nil peer states run with a zero attention context.
	out, err := e.Forward(seriesOf(4, 6), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 6 {
		t.Fatalf("outputs = %d", len(out))
	}
}

func TestExpertForwardPeerMismatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = 3
	e := newTestExpert(cfg, 4, []string{"peer"})
	peers := make([][][]float64, 2) // wrong step count for 6 inputs
	if _, err := e.Forward(seriesOf(4, 6), peers); err == nil {
		t.Fatal("mismatched peer states must fail")
	}
}

func TestExpertMaskGatesInput(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = 2
	e := newTestExpert(cfg, 3, nil)
	// Drive the mask hard closed: outputs must stop depending on the
	// input scale through the bypass.
	for i := range e.Mask.M.Data {
		e.Mask.M.Data[i] = -50 // σ ≈ 0
	}
	a, err := e.Forward([][]float64{{1, 1, 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Forward([][]float64{{100, 100, 100}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if diff := a[0][0] - b[0][0]; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("closed mask must block input influence: %v vs %v", a[0][0], b[0][0])
	}
}

func TestExpertNumParams(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = 4
	e := newTestExpert(cfg, 10, []string{"a", "b"})
	// mask 10 + GRU 3·(4·10+4·4+4) + attention 2 + head (3·8+3) + bypass (3·10+3).
	want := 10 + 3*(40+16+4) + 2 + 27 + 33
	if got := e.NumParams(); got != want {
		t.Errorf("NumParams = %d, want %d", got, want)
	}
}

func TestLoadRejectsCorruptSnapshots(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage must fail to load")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream must fail to load")
	}
}

func TestTargetScaleDeltaRoundTrip(t *testing.T) {
	p := app.Pair{Component: "DB", Resource: app.DiskUsage}
	series := []float64{100, 104, 110, 110, 123}
	ts := fitTargetScale(p, series)
	if ts.Kind != kindDelta {
		t.Fatal("disk usage must be delta-kind")
	}
	if ts.Base != 123 {
		t.Errorf("Base = %v, want last observation", ts.Base)
	}
	// Max delta is 13 → scale 13.
	if ts.Scale != 13 {
		t.Errorf("Scale = %v, want 13", ts.Scale)
	}
	scaled := ts.scaled(series)
	if scaled[0] != 0 || scaled[1] != 4.0/13 {
		t.Errorf("scaled = %v", scaled)
	}
}

func TestTargetScaleLevel(t *testing.T) {
	p := app.Pair{Component: "C", Resource: app.CPU}
	ts := fitTargetScale(p, []float64{2, 8, 4})
	if ts.Kind != kindLevel || ts.Scale != 8 {
		t.Errorf("level scale = %+v", ts)
	}
	// All-zero series must not divide by zero.
	ts0 := fitTargetScale(p, []float64{0, 0})
	if ts0.Scale != 1 {
		t.Errorf("zero-series scale = %v, want 1", ts0.Scale)
	}
}

func TestOrderedRepairsCrossing(t *testing.T) {
	e, l, u := ordered([3]float64{5, 7, 2})
	if l > e || u < e {
		t.Errorf("ordered = (%v, %v, %v)", e, l, u)
	}
	if e != 5 || l != 5 || u != 5 {
		t.Errorf("crossing repair = (%v, %v, %v), want all clamped to 5", e, l, u)
	}
}

func TestModelSummaryAndReports(t *testing.T) {
	_, _, run := testutil.ToyTelemetry(t, 2, 30, 12)
	usage := testutil.FocusPairs(run.Usage,
		app.Pair{Component: "Service", Resource: app.CPU},
		app.Pair{Component: "DB", Resource: app.DiskUsage},
	)
	cfg := testConfig()
	cfg.Epochs = 3
	cfg.AttentionEpochs = 1
	m, err := Train(run.Windows, usage, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	m.Summary(&buf)
	out := buf.String()
	for _, want := range []string{"2 experts", "Service/cpu", "DB/disk_usage", "growth", "mask"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("Summary missing %q:\n%s", want, out)
		}
	}
	top := m.TopFeatures(app.Pair{Component: "Service", Resource: app.CPU}, 3)
	if len(top) != 3 {
		t.Fatalf("TopFeatures = %d entries", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Weight > top[i-1].Weight {
			t.Fatal("TopFeatures not sorted by weight")
		}
	}
	pairs := []app.Pair{{Component: "Z", Resource: app.CPU}, {Component: "A", Resource: app.Memory}, {Component: "A", Resource: app.CPU}}
	SortPairs(pairs)
	if pairs[0].Component != "A" || pairs[0].Resource != app.CPU || pairs[2].Component != "Z" {
		t.Errorf("SortPairs = %v", pairs)
	}
}
