package estimator

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/app"
)

// Summary writes a human-readable report of a trained model: the feature
// space, and per expert its size, target scaling, mask openness, and top
// attention peers — the operator-facing view of what application learning
// produced.
func (m *Model) Summary(w io.Writer) {
	fmt.Fprintf(w, "DeepRest model: %d experts over %d invocation-path features (hidden=%d, δ=%.2f)\n",
		len(m.Pairs), m.Space.Dim(), m.Cfg.Hidden, m.Cfg.Delta)
	for _, p := range m.Pairs {
		e := m.Experts[p]
		ts := m.TargetScales[p]
		kind := "level"
		if ts.Kind == kindDelta {
			kind = "growth"
		}
		fmt.Fprintf(w, "  %-40s %5d params, target %s scale %.4g", p, e.NumParams(), kind, ts.Scale)
		if ts.Kind == kindDelta {
			fmt.Fprintf(w, " (base %.4g)", ts.Base)
		}
		open, total := maskOpenness(e)
		fmt.Fprintf(w, ", mask %d/%d gates open", open, total)
		if peers := m.AttentionReport(p, 2); len(peers) > 0 && e.UseAttention {
			fmt.Fprintf(w, ", listens to")
			for _, pw := range peers {
				fmt.Fprintf(w, " %s(%+.3f)", pw.Peer, pw.Alpha)
			}
		}
		fmt.Fprintln(w)
	}
}

// maskOpenness counts gates whose admission weight exceeds 0.5.
func maskOpenness(e *Expert) (open, total int) {
	ws := e.Mask.Weights()
	for _, w := range ws {
		if w > 0.5 {
			open++
		}
	}
	return open, len(ws)
}

// TopFeatures returns, for one expert, the n features with the widest-open
// mask gates together with their weights — the raw per-path view underneath
// APIInfluence.
func (m *Model) TopFeatures(pair app.Pair, n int) []MaskEntry {
	entries := m.MaskReport(pair)
	if n < len(entries) {
		entries = entries[:n]
	}
	return entries
}

// SortPairs orders pairs component-first; exported for presentation code.
func SortPairs(pairs []app.Pair) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Component != pairs[j].Component {
			return pairs[i].Component < pairs[j].Component
		}
		return pairs[i].Resource < pairs[j].Resource
	})
}
