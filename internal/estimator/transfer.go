package estimator

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/features"
	"repro/internal/nn/loss"
	"repro/internal/trace"
)

// This file implements the §6 extensions the paper sketches: transfer
// learning (warm-starting new experts from trained ones, motivated by the
// Figure-21 observation that experts for similar components converge to
// similar parameters) and adaptation to concept drift (continuing training
// on fresh telemetry).

// WarmStart is a hook invoked for every freshly initialised expert before
// training begins, letting callers seed parameters from a trained model.
type WarmStart func(pair app.Pair, e *Expert) error

// TrainWarm is Train with a warm-start hook. A nil hook is plain Train.
func TrainWarm(windows [][]trace.Batch, usage map[app.Pair][]float64, cfg Config, warm WarmStart) (*Model, error) {
	m, x, targets, err := buildModel(windows, usage, cfg)
	if err != nil {
		return nil, err
	}
	if warm != nil {
		for _, p := range m.Pairs {
			if err := warm(p, m.Experts[p]); err != nil {
				return nil, fmt.Errorf("estimator: warm start %s: %w", p, err)
			}
		}
	}
	if err := m.trainAll(x, targets, cfg); err != nil {
		return nil, err
	}
	return m, nil
}

// FromExpert returns a WarmStart that copies the source expert's recurrent
// core, mask, head, and bypass into every new expert. Dimensions must
// match (same feature space and hidden width).
func FromExpert(src *Model, srcPair app.Pair) WarmStart {
	return func(_ app.Pair, e *Expert) error {
		se, ok := src.Experts[srcPair]
		if !ok {
			return fmt.Errorf("source model has no expert for %s", srcPair)
		}
		return copyExpertParams(se, e)
	}
}

// FromModel returns a WarmStart that seeds every new expert from the source
// model's expert for the same pair, when one exists with matching feature
// and hidden dimensions. Pairs the source never learned — or whose shapes
// changed because the feature space grew — start cold. This is the
// generation-to-generation warm start of the continuous-learning pipeline:
// retraining over a fresh telemetry window resumes from the previous
// generation's parameters instead of from scratch.
func FromModel(src *Model) WarmStart {
	return func(p app.Pair, e *Expert) error {
		if src == nil {
			return nil
		}
		se, ok := src.Experts[p]
		if !ok || se.InDim != e.InDim || se.Hidden != e.Hidden {
			return nil
		}
		return copyExpertParams(se, e)
	}
}

func copyExpertParams(src, dst *Expert) error {
	if src.InDim != dst.InDim || src.Hidden != dst.Hidden {
		return fmt.Errorf("shape mismatch: source %dx%d, target %dx%d",
			src.InDim, src.Hidden, dst.InDim, dst.Hidden)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range dp {
		// The attention weight vectors may differ in peer count; skip
		// any parameter whose size differs (attention is relearned).
		if len(sp[i].Data) != len(dp[i].Data) {
			continue
		}
		copy(dp[i].Data, sp[i].Data)
	}
	return nil
}

// Update adapts the model to fresh telemetry (concept drift, §6): it
// extracts features with the existing space and scalers and continues
// training every expert for the given number of epochs. Invocation paths
// unseen during the original learning phase are reported so the caller can
// decide when drift warrants a full re-learn.
func (m *Model) Update(windows [][]trace.Batch, usage map[app.Pair][]float64, epochs int) (unknownPaths float64, err error) {
	if epochs <= 0 {
		return 0, fmt.Errorf("estimator: Update epochs must be positive")
	}
	series := m.Space.ExtractSeries(windows)
	for _, v := range series {
		unknownPaths += v.Unknown
	}
	raw := features.Matrix(series)
	x := m.FeatScaler.Apply(raw)

	targets := make(map[app.Pair][]float64, len(m.Pairs))
	for _, p := range m.Pairs {
		s, ok := usage[p]
		if !ok {
			return unknownPaths, fmt.Errorf("estimator: Update missing series for %s", p)
		}
		if len(s) != len(windows) {
			return unknownPaths, fmt.Errorf("estimator: Update %s has %d samples for %d windows", p, len(s), len(windows))
		}
		ts := m.TargetScales[p]
		targets[p] = ts.scaled(s)
		if ts.Kind == kindDelta {
			// Resume the monotone counter from the fresh data.
			ts.Base = s[len(s)-1]
		}
	}

	cfg := m.Cfg
	quant := loss.Quantiles(cfg.Delta)
	q := quant[:]
	err = m.forEachExpert(func(i int, p app.Pair) error {
		return trainExpert(m.Experts[p], x, targets[p], nil, cfg, epochs, q, cfg.Seed+7777+int64(i))
	})
	if err != nil {
		return unknownPaths, err
	}
	// Refresh the attention stage against the updated trunks.
	if cfg.UseAttention && cfg.AttentionEpochs > 0 && len(m.Pairs) > 1 {
		hidden, err := m.allHiddenStates(x)
		if err != nil {
			return unknownPaths, err
		}
		err = m.forEachExpert(func(i int, p app.Pair) error {
			peers := m.gatherPeers(p, hidden)
			return trainExpertHead(m.Experts[p], x, targets[p], peers, cfg, cfg.AttentionEpochs, q, cfg.Seed+8888+int64(i))
		})
		if err != nil {
			return unknownPaths, err
		}
	}
	return unknownPaths, nil
}
