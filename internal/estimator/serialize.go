package estimator

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/app"
	"repro/internal/features"
	"repro/internal/nn/ad"
	"repro/internal/nn/layers"
)

// The on-disk format is an explicit snapshot rather than the live object
// graph: it pins the layout (so refactoring internals never silently breaks
// saved models), drops volatile state (gradients, loggers), and rebuilds
// the expert wiring on load.

type paramGob struct {
	Name       string
	Rows, Cols int
	Data       []float64
}

type expertGob struct {
	Pair          app.Pair
	InDim, Hidden int
	Peers         []string
	Params        []paramGob
	UseMask       bool
	UseAttention  bool
	UseBypass     bool
}

type targetScaleGob struct {
	Kind  int
	Scale float64
	Base  float64
}

type modelGob struct {
	Version      int
	Hidden       int
	Delta        float64
	UseMask      bool
	UseAttention bool
	LinearBypass bool
	Paths        []string
	ScalerMax    []float64
	Pairs        []app.Pair
	Experts      []expertGob
	Scales       []targetScaleGob
}

// snapshotVersion guards the serialized layout.
const snapshotVersion = 1

// Save writes the trained model to w in gob format.
func (m *Model) Save(w io.Writer) error {
	g := modelGob{
		Version:      snapshotVersion,
		Hidden:       m.Cfg.Hidden,
		Delta:        m.Cfg.Delta,
		UseMask:      m.Cfg.UseMask,
		UseAttention: m.Cfg.UseAttention,
		LinearBypass: m.Cfg.LinearBypass,
		Paths:        m.Space.Paths(),
		ScalerMax:    m.FeatScaler.Max,
		Pairs:        m.Pairs,
	}
	for _, p := range m.Pairs {
		e := m.Experts[p]
		eg := expertGob{
			Pair:         e.Pair,
			InDim:        e.InDim,
			Hidden:       e.Hidden,
			Peers:        e.Attn.Peers,
			UseMask:      e.UseMask,
			UseAttention: e.UseAttention,
			UseBypass:    e.UseBypass,
		}
		for _, par := range e.Params() {
			eg.Params = append(eg.Params, paramGob{
				Name: par.Name, Rows: par.Rows, Cols: par.Cols, Data: par.Data,
			})
		}
		g.Experts = append(g.Experts, eg)
		ts := m.TargetScales[p]
		g.Scales = append(g.Scales, targetScaleGob{Kind: int(ts.Kind), Scale: ts.Scale, Base: ts.Base})
	}
	return gob.NewEncoder(w).Encode(g)
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	var g modelGob
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("estimator: decode model: %w", err)
	}
	if g.Version != snapshotVersion {
		return nil, fmt.Errorf("estimator: unsupported model version %d (want %d)", g.Version, snapshotVersion)
	}
	if len(g.Experts) != len(g.Pairs) || len(g.Scales) != len(g.Pairs) {
		return nil, fmt.Errorf("estimator: corrupt snapshot: %d pairs, %d experts, %d scales",
			len(g.Pairs), len(g.Experts), len(g.Scales))
	}
	cfg := DefaultConfig()
	cfg.Hidden = g.Hidden
	cfg.Delta = g.Delta
	cfg.UseMask = g.UseMask
	cfg.UseAttention = g.UseAttention
	cfg.LinearBypass = g.LinearBypass

	m := &Model{
		Cfg:          cfg,
		Space:        features.RestoreSpace(g.Paths),
		FeatScaler:   &features.Scaler{Max: g.ScalerMax},
		Pairs:        g.Pairs,
		Experts:      make(map[app.Pair]*Expert, len(g.Pairs)),
		TargetScales: make(map[app.Pair]*TargetScale, len(g.Pairs)),
	}
	for i, eg := range g.Experts {
		e := &Expert{
			Pair:         eg.Pair,
			InDim:        eg.InDim,
			Hidden:       eg.Hidden,
			Mask:         layers.NewAPIMask(eg.Pair.String(), eg.InDim),
			Cell:         layers.NewGRUCellZero(eg.Pair.String(), eg.InDim, eg.Hidden),
			Attn:         layers.NewAttention(eg.Pair.String(), eg.Peers),
			Head:         layers.NewDenseZero(eg.Pair.String()+".V", 2*eg.Hidden, 3),
			Bypass:       layers.NewDenseZero(eg.Pair.String()+".S", eg.InDim, 3),
			UseMask:      eg.UseMask,
			UseAttention: eg.UseAttention,
			UseBypass:    eg.UseBypass,
		}
		params := e.Params()
		if len(params) != len(eg.Params) {
			return nil, fmt.Errorf("estimator: expert %s: snapshot has %d params, expected %d",
				eg.Pair, len(eg.Params), len(params))
		}
		for j, pg := range eg.Params {
			if err := restoreParam(params[j], pg); err != nil {
				return nil, fmt.Errorf("estimator: expert %s: %w", eg.Pair, err)
			}
		}
		m.Experts[eg.Pair] = e
		m.TargetScales[eg.Pair] = &TargetScale{
			Kind:  targetKind(g.Scales[i].Kind),
			Scale: g.Scales[i].Scale,
			Base:  g.Scales[i].Base,
		}
	}
	m.initPeerKeys()
	return m, nil
}

func restoreParam(dst *ad.Param, src paramGob) error {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		return fmt.Errorf("param %s: shape %dx%d in snapshot, expected %dx%d",
			src.Name, src.Rows, src.Cols, dst.Rows, dst.Cols)
	}
	copy(dst.Data, src.Data)
	return nil
}
