// Package anomaly implements DeepRest's application sanity checks (paper
// §5.4): given the utilization DeepRest expects for the API traffic an
// application actually served, it scores how far the measured utilization
// deviates from the expected δ-confidence interval, combines the scores
// across the resources of a component into an ensemble, and emits
// interpretable alert events like the paper's Figure 19c.
//
// The core idea: violating historical utilization patterns is not by itself
// anomalous — traffic changes for benign reasons. Consumption is anomalous
// only when the API traffic cannot justify it.
package anomaly

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/app"
	"repro/internal/estimator"
)

// Score quantifies, per window, how far the actual measurement falls
// outside the expected interval [low, up], normalised by the interval's
// scale so that scores are comparable across resources. Inside the interval
// the score is 0; the paper visualises this series as a 1-D heatmap.
func Score(actual []float64, est estimator.Estimate) ([]float64, error) {
	if len(actual) != len(est.Exp) {
		return nil, fmt.Errorf("anomaly: %d measurements for %d estimated windows", len(actual), len(est.Exp))
	}
	out := make([]float64, len(actual))
	for i, y := range actual {
		low, up := est.Low[i], est.Up[i]
		var dev float64
		switch {
		case y > up:
			dev = y - up
		case y < low:
			dev = low - y
		}
		if dev == 0 {
			continue
		}
		scale := math.Max(up-low, 0.05*math.Max(math.Abs(est.Exp[i]), 1e-9))
		out[i] = dev / scale
	}
	return out, nil
}

// Ensemble averages the scores of several resources (typically all
// resources of one component) window-by-window, boosting confidence the way
// the paper triangulates resources before alerting.
func Ensemble(scores ...[]float64) []float64 {
	if len(scores) == 0 {
		return nil
	}
	n := len(scores[0])
	out := make([]float64, n)
	for _, s := range scores {
		for i, v := range s {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(scores))
	}
	return out
}

// Deviation describes how one resource deviated from expectation during an
// event.
type Deviation struct {
	// Pair is the resource.
	Pair app.Pair
	// Percent is the mean deviation of the actual measurement from the
	// expected utilization over the event, in percent. Positive means
	// higher than expected.
	Percent float64
}

// Event is one contiguous anomalous period on one component.
type Event struct {
	// Component under suspicion.
	Component string
	// From and To bound the event in window indices (half-open).
	From, To int
	// PeakScore is the maximum ensemble score inside the event.
	PeakScore float64
	// Deviations lists the per-resource deviations, largest magnitude
	// first. Resources of other components with notable deviations in
	// the same period may be appended by the detector for triangulation.
	Deviations []Deviation
}

// Detector runs sanity checks over a set of pairs.
type Detector struct {
	// Threshold is the ensemble score above which a window is anomalous
	// (default 1: the measurement exceeds the interval by its width).
	Threshold float64
	// MinLen is the minimum anomalous run length, in windows, to report
	// an event (default 3) — brief scrape noise does not alert.
	MinLen int
	// SideNote is the |percent| deviation above which other components'
	// resources are included in the event report for triangulation
	// (default 15).
	SideNote float64
}

// NewDetector returns a detector with the defaults above.
func NewDetector() *Detector {
	return &Detector{Threshold: 1, MinLen: 3, SideNote: 15}
}

// Detect compares actual measurements against expected estimates and
// returns the alert events, ordered by start window. Pairs sharing a
// component are ensembled together.
func (d *Detector) Detect(actual map[app.Pair][]float64, expected map[app.Pair]estimator.Estimate) ([]Event, error) {
	perComponent := make(map[string][]app.Pair)
	scores := make(map[app.Pair][]float64, len(actual))
	for p, series := range actual {
		est, ok := expected[p]
		if !ok {
			return nil, fmt.Errorf("anomaly: no expectation for measured pair %s", p)
		}
		s, err := Score(series, est)
		if err != nil {
			return nil, fmt.Errorf("anomaly: %s: %w", p, err)
		}
		scores[p] = s
		perComponent[p.Component] = append(perComponent[p.Component], p)
	}

	var events []Event
	for comp, pairs := range perComponent {
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].Resource < pairs[j].Resource })
		compScores := make([][]float64, len(pairs))
		for i, p := range pairs {
			compScores[i] = scores[p]
		}
		ens := Ensemble(compScores...)
		for _, run := range runsAbove(ens, d.Threshold, d.MinLen) {
			ev := Event{Component: comp, From: run[0], To: run[1]}
			for _, v := range ens[run[0]:run[1]] {
				if v > ev.PeakScore {
					ev.PeakScore = v
				}
			}
			for _, p := range pairs {
				if pct := meanDeviationPct(actual[p], expected[p], run[0], run[1]); math.Abs(pct) >= 1 {
					ev.Deviations = append(ev.Deviations, Deviation{Pair: p, Percent: pct})
				}
			}
			// Triangulate: other components' notable deviations in
			// the same period strengthen (or contextualise) the
			// alert, like FrontendNGINX's CPU drop in Figure 19c.
			for p := range actual {
				if p.Component == comp {
					continue
				}
				if pct := meanDeviationPct(actual[p], expected[p], run[0], run[1]); math.Abs(pct) >= d.SideNote {
					ev.Deviations = append(ev.Deviations, Deviation{Pair: p, Percent: pct})
				}
			}
			// Group the suspect component first, then other
			// components alphabetically, with the largest
			// deviations leading within each group — the layout of
			// the paper's Figure 19c alert.
			sort.Slice(ev.Deviations, func(i, j int) bool {
				di, dj := ev.Deviations[i], ev.Deviations[j]
				ri, rj := 1, 1
				if di.Pair.Component == comp {
					ri = 0
				}
				if dj.Pair.Component == comp {
					rj = 0
				}
				if ri != rj {
					return ri < rj
				}
				if di.Pair.Component != dj.Pair.Component {
					return di.Pair.Component < dj.Pair.Component
				}
				ai, aj := math.Abs(di.Percent), math.Abs(dj.Percent)
				if ai != aj {
					return ai > aj
				}
				return di.Pair.String() < dj.Pair.String()
			})
			events = append(events, ev)
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].From != events[j].From {
			return events[i].From < events[j].From
		}
		return events[i].Component < events[j].Component
	})
	return events, nil
}

// runsAbove returns the [from, to) runs where s exceeds threshold for at
// least minLen consecutive windows, tolerating single-window dips.
func runsAbove(s []float64, threshold float64, minLen int) [][2]int {
	var out [][2]int
	start := -1
	dips := 0
	for i, v := range s {
		if v > threshold {
			if start < 0 {
				start = i
			}
			dips = 0
			continue
		}
		if start >= 0 && dips == 0 && i+1 < len(s) && s[i+1] > threshold {
			dips = 1 // tolerate one quiet window inside a run
			continue
		}
		if start >= 0 {
			end := i - dips
			if end-start >= minLen {
				out = append(out, [2]int{start, end})
			}
			start = -1
			dips = 0
		}
	}
	if start >= 0 && len(s)-start >= minLen {
		out = append(out, [2]int{start, len(s)})
	}
	return out
}

// meanDeviationPct returns the mean percentage deviation of actual from the
// expected utilization over windows [from, to).
func meanDeviationPct(actual []float64, est estimator.Estimate, from, to int) float64 {
	sum, n := 0.0, 0
	for i := from; i < to && i < len(actual); i++ {
		exp := est.Exp[i]
		if math.Abs(exp) < 1e-9 {
			continue
		}
		sum += (actual[i] - exp) / math.Abs(exp)
		n++
	}
	if n == 0 {
		return 0
	}
	return 100 * sum / float64(n)
}

// Format renders an event as the interpretable alert of the paper's
// Figure 19c. windowLabel converts a window index into a human-readable
// timestamp; pass nil for bare indices.
func (e Event) Format(windowLabel func(int) string) string {
	var b strings.Builder
	if windowLabel == nil {
		fmt.Fprintf(&b, "Anomalous Event: windows %d–%d (peak score %.2f)\n", e.From, e.To, e.PeakScore)
	} else {
		fmt.Fprintf(&b, "Anomalous Event: %s – %s (peak score %.2f)\n", windowLabel(e.From), windowLabel(e.To), e.PeakScore)
	}
	lastComp := ""
	for _, d := range e.Deviations {
		if d.Pair.Component != lastComp {
			fmt.Fprintf(&b, "  Component: %s\n", d.Pair.Component)
			lastComp = d.Pair.Component
		}
		dir := "higher"
		pct := d.Percent
		if pct < 0 {
			dir = "lower"
			pct = -pct
		}
		fmt.Fprintf(&b, "    %s: %.1f%% %s than expected\n", d.Pair.Resource, pct, dir)
	}
	return b.String()
}
