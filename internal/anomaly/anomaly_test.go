package anomaly

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/app"
	"repro/internal/estimator"
)

// flatEstimate builds an Estimate expecting exp everywhere with a ±width/2
// interval.
func flatEstimate(n int, exp, width float64) estimator.Estimate {
	e := estimator.Estimate{
		Exp: make([]float64, n),
		Low: make([]float64, n),
		Up:  make([]float64, n),
	}
	for i := 0; i < n; i++ {
		e.Exp[i] = exp
		e.Low[i] = exp - width/2
		e.Up[i] = exp + width/2
	}
	return e
}

func TestScoreInsideIntervalIsZero(t *testing.T) {
	est := flatEstimate(5, 100, 20)
	actual := []float64{95, 100, 105, 109, 91}
	s, err := Score(actual, est)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range s {
		if v != 0 {
			t.Errorf("window %d: score %v, want 0", i, v)
		}
	}
}

func TestScoreScalesWithDeviation(t *testing.T) {
	est := flatEstimate(3, 100, 20)
	s, err := Score([]float64{130, 150, 70}, est)
	if err != nil {
		t.Fatal(err)
	}
	// 130: 20 above the upper bound 110 → 20/20 = 1.
	if math.Abs(s[0]-1) > 1e-9 {
		t.Errorf("score = %v, want 1", s[0])
	}
	if s[1] <= s[0] {
		t.Error("larger deviation must score higher")
	}
	// 70: 20 below the lower bound 90 → symmetric.
	if math.Abs(s[2]-1) > 1e-9 {
		t.Errorf("below-interval score = %v, want 1", s[2])
	}
}

func TestScoreLengthMismatch(t *testing.T) {
	if _, err := Score([]float64{1}, flatEstimate(2, 1, 1)); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestEnsemble(t *testing.T) {
	e := Ensemble([]float64{1, 0}, []float64{3, 0})
	if e[0] != 2 || e[1] != 0 {
		t.Fatalf("Ensemble = %v", e)
	}
	if Ensemble() != nil {
		t.Error("empty ensemble should be nil")
	}
}

func TestRunsAbove(t *testing.T) {
	// Two runs: [1,4) clean, and [6,10) via the one-window dip tolerance
	// (window 8 is quiet but 9 resumes).
	s := []float64{0, 2, 2, 2, 0, 0, 2, 2, 0, 2}
	runs := runsAbove(s, 1, 3)
	if len(runs) != 2 || runs[0] != [2]int{1, 4} || runs[1] != [2]int{6, 10} {
		t.Fatalf("runs = %v", runs)
	}
	// One-window dips inside a run are tolerated.
	s2 := []float64{2, 2, 0, 2, 2, 0, 0}
	runs2 := runsAbove(s2, 1, 4)
	if len(runs2) != 1 || runs2[0] != [2]int{0, 5} {
		t.Fatalf("dip-tolerant runs = %v", runs2)
	}
	// Run extending to the end.
	s3 := []float64{0, 2, 2, 2}
	runs3 := runsAbove(s3, 1, 3)
	if len(runs3) != 1 || runs3[0] != [2]int{1, 4} {
		t.Fatalf("tail run = %v", runs3)
	}
}

func sanityFixture() (map[app.Pair][]float64, map[app.Pair]estimator.Estimate) {
	cpu := app.Pair{Component: "DB", Resource: app.CPU}
	iops := app.Pair{Component: "DB", Resource: app.WriteIOps}
	fcpu := app.Pair{Component: "Frontend", Resource: app.CPU}
	n := 30
	actual := map[app.Pair][]float64{
		cpu:  make([]float64, n),
		iops: make([]float64, n),
		fcpu: make([]float64, n),
	}
	expected := map[app.Pair]estimator.Estimate{
		cpu:  flatEstimate(n, 100, 10),
		iops: flatEstimate(n, 50, 10),
		fcpu: flatEstimate(n, 80, 10),
	}
	for i := 0; i < n; i++ {
		actual[cpu][i] = 100
		actual[iops][i] = 50
		actual[fcpu][i] = 80
	}
	// Attack on windows 10..18: CPU + IOps burst on DB, slight dip on
	// the frontend.
	for i := 10; i < 18; i++ {
		actual[cpu][i] = 260
		actual[iops][i] = 170
		actual[fcpu][i] = 66
	}
	return actual, expected
}

func TestDetectFindsAttack(t *testing.T) {
	actual, expected := sanityFixture()
	events, err := NewDetector().Detect(actual, expected)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1", len(events))
	}
	ev := events[0]
	if ev.Component != "DB" {
		t.Errorf("component = %s", ev.Component)
	}
	if ev.From > 10 || ev.To < 17 {
		t.Errorf("event window [%d, %d) misses the attack", ev.From, ev.To)
	}
	if len(ev.Deviations) == 0 {
		t.Fatal("no deviations reported")
	}
	// DB deviations lead; the frontend's dip is triangulated after.
	if ev.Deviations[0].Pair.Component != "DB" {
		t.Errorf("first deviation = %v", ev.Deviations[0])
	}
	foundShed := false
	for _, d := range ev.Deviations {
		if d.Pair.Component == "Frontend" && d.Percent < 0 {
			foundShed = true
		}
	}
	if !foundShed {
		t.Error("frontend CPU dip not triangulated")
	}
	text := ev.Format(nil)
	if !strings.Contains(text, "DB") || !strings.Contains(text, "higher than expected") {
		t.Errorf("Format = %q", text)
	}
	label := func(w int) string { return "T" }
	if !strings.Contains(ev.Format(label), "T – T") {
		t.Error("Format with label broken")
	}
}

func TestDetectNoFalseAlarmOnClean(t *testing.T) {
	actual, expected := sanityFixture()
	// Remove the attack.
	for p := range actual {
		for i := range actual[p] {
			actual[p][i] = expected[p].Exp[i]
		}
	}
	events, err := NewDetector().Detect(actual, expected)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("false alarms: %v", events)
	}
}

func TestDetectMissingExpectation(t *testing.T) {
	actual, expected := sanityFixture()
	delete(expected, app.Pair{Component: "DB", Resource: app.CPU})
	if _, err := NewDetector().Detect(actual, expected); err == nil {
		t.Fatal("missing expectation must error")
	}
}

func TestDetectorMinLen(t *testing.T) {
	cpu := app.Pair{Component: "DB", Resource: app.CPU}
	n := 20
	actual := map[app.Pair][]float64{cpu: make([]float64, n)}
	expected := map[app.Pair]estimator.Estimate{cpu: flatEstimate(n, 100, 10)}
	for i := range actual[cpu] {
		actual[cpu][i] = 100
	}
	actual[cpu][5] = 300 // single-window blip
	d := NewDetector()
	events, err := d.Detect(actual, expected)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Errorf("single-window blip must not alert, got %v", events)
	}
}

// Property: scores are non-negative and zero whenever actual lies within
// the interval.
func TestScoreProperty(t *testing.T) {
	f := func(vals []float64) bool {
		n := len(vals)
		if n == 0 {
			return true
		}
		est := flatEstimate(n, 10, 4)
		actual := make([]float64, n)
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 10
			}
			actual[i] = math.Mod(math.Abs(v), 30)
		}
		s, err := Score(actual, est)
		if err != nil {
			return false
		}
		for i, v := range s {
			if v < 0 {
				return false
			}
			if actual[i] >= 8 && actual[i] <= 12 && v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
