package anomaly

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// seasonalSeries builds days of a sinusoidal daily pattern plus noise.
func seasonalSeries(days, period int, noise float64, rng *rand.Rand) []float64 {
	out := make([]float64, days*period)
	for i := range out {
		phase := 2 * math.Pi * float64(i%period) / float64(period)
		out[i] = 100 + 30*math.Sin(phase) + noise*rng.NormFloat64()
	}
	return out
}

func TestSeasonalESDFindsInjectedSpikes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	period := 48
	history := seasonalSeries(4, period, 2, rng)
	series := seasonalSeries(1, period, 2, rng)
	series[10] += 60
	series[30] -= 55
	d := NewSeasonalESD(period)
	got, err := d.Detect(history, series)
	if err != nil {
		t.Fatal(err)
	}
	if !containsInt(got, 10) || !containsInt(got, 30) {
		t.Errorf("Detect = %v, want to include 10 and 30", got)
	}
	if len(got) > 6 {
		t.Errorf("too many flags: %v", got)
	}
}

func TestSeasonalESDCleanSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	period := 48
	history := seasonalSeries(4, period, 2, rng)
	series := seasonalSeries(1, period, 2, rng)
	d := NewSeasonalESD(period)
	got, err := d.Detect(history, series)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) > 3 {
		t.Errorf("clean series flagged %d windows: %v", len(got), got)
	}
}

// TestSeasonalESDFlagsBenignShapeChange demonstrates the detector's
// documented weakness: a benign flat day violates the learned two-peak
// pattern and gets flagged — exactly why the paper's traffic-justified
// checks are needed.
func TestSeasonalESDFlagsBenignShapeChange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	period := 48
	history := seasonalSeries(4, period, 2, rng)
	flat := make([]float64, period)
	for i := range flat {
		flat[i] = 100 + 2*rng.NormFloat64() // constant level, no daily swing
	}
	d := NewSeasonalESD(period)
	got, err := d.Detect(history, flat)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Error("history-only detector should (wrongly) flag a benign flat day")
	}
}

func TestSeasonalESDValidation(t *testing.T) {
	d := NewSeasonalESD(0)
	if _, err := d.Detect([]float64{1}, []float64{1}); err == nil {
		t.Error("zero period must fail")
	}
	d = NewSeasonalESD(48)
	if _, err := d.Detect(make([]float64, 10), make([]float64, 48)); err == nil {
		t.Error("short history must fail")
	}
}

func TestMedianAndMAD(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("median = %v", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
	if got := median(nil); got != 0 {
		t.Errorf("empty median = %v", got)
	}
	m := mad([]float64{1, 2, 3, 4, 100}, 3)
	if m <= 0 {
		t.Errorf("mad = %v", m)
	}
}

func TestNormQuantile(t *testing.T) {
	cases := map[float64]float64{
		0.5:   0,
		0.975: 1.959964,
		0.025: -1.959964,
		0.99:  2.326348,
	}
	for p, want := range cases {
		if got := normQuantile(p); math.Abs(got-want) > 1e-4 {
			t.Errorf("normQuantile(%v) = %v, want %v", p, got, want)
		}
	}
	if !math.IsInf(normQuantile(0), -1) || !math.IsInf(normQuantile(1), 1) {
		t.Error("boundary quantiles must be infinite")
	}
}

func TestStudentTQuantile(t *testing.T) {
	// t(0.975, 10) ≈ 2.228.
	if got := studentTQuantile(0.975, 10); math.Abs(got-2.228) > 0.03 {
		t.Errorf("t quantile = %v, want ≈2.228", got)
	}
	// Converges to the normal for large df.
	if got := studentTQuantile(0.975, 1e6); math.Abs(got-1.96) > 0.001 {
		t.Errorf("large-df t quantile = %v", got)
	}
}

func TestSuspiciousDays(t *testing.T) {
	flagged := []int{1, 2, 3, 50, 100, 101, 102, 103}
	days := SuspiciousDays(flagged, 48, 3)
	if len(days) != 2 || days[0] != 0 || days[1] != 2 {
		t.Errorf("SuspiciousDays = %v, want [0 2]", days)
	}
}

// Property: median is always within [min, max] of its input.
func TestMedianBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var v []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				v = append(v, x)
			}
		}
		if len(v) == 0 {
			return true
		}
		m := median(v)
		lo, hi := v[0], v[0]
		for _, x := range v {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return m >= lo && m <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func containsInt(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
