package anomaly

import (
	"fmt"
	"math"
	"sort"
)

// SeasonalESD implements the Seasonal Hybrid ESD detector the paper cites
// as representative prior work for metric anomaly detection ([34],
// Hochenbaum et al.): the series is decomposed into a seasonal component
// (per-window-of-day medians) plus a residual, and the generalized extreme
// Studentized deviate test — with robust location/scale (median and MAD) —
// flags the most extreme residuals.
//
// It is a *metrics-only* detector: like the other history-based approaches,
// it flags any deviation from the recurring pattern, including benign
// traffic changes — the weakness DeepRest's traffic-justified checks avoid
// (paper §2, §5.4).
type SeasonalESD struct {
	// Period is the seasonal period in windows (e.g. windows per day).
	Period int
	// MaxAnomalies bounds the number of flagged windows as a fraction of
	// the series (default 0.10).
	MaxAnomalies float64
	// Alpha is the test's significance level (default 0.05).
	Alpha float64
}

// NewSeasonalESD returns a detector with the given seasonal period and
// conventional defaults.
func NewSeasonalESD(period int) *SeasonalESD {
	return &SeasonalESD{Period: period, MaxAnomalies: 0.10, Alpha: 0.05}
}

// Detect returns the indices of anomalous windows in the series, sorted
// ascending. history provides the seasonal profile (e.g. the learning
// phase); series is the period under test.
func (s *SeasonalESD) Detect(history, series []float64) ([]int, error) {
	if s.Period <= 0 {
		return nil, fmt.Errorf("anomaly: SeasonalESD period must be positive")
	}
	if len(history) < s.Period {
		return nil, fmt.Errorf("anomaly: history (%d) shorter than one period (%d)", len(history), s.Period)
	}
	seasonal := seasonalMedians(history, s.Period)
	// Calibrate the robust location/scale on the history's residuals:
	// the test asks whether the new residuals are extreme relative to
	// normal operation, not relative to their own spread.
	histResid := make([]float64, len(history))
	for i, v := range history {
		histResid[i] = v - seasonal[i%s.Period]
	}
	med := median(histResid)
	scale := mad(histResid, med)
	if scale == 0 {
		scale = 1e-9
	}
	resid := make([]float64, len(series))
	for i, v := range series {
		resid[i] = v - seasonal[i%s.Period]
	}
	maxK := int(s.MaxAnomalies * float64(len(series)))
	if maxK < 1 {
		maxK = 1
	}
	return esd(resid, med, scale, maxK, s.Alpha), nil
}

// seasonalMedians computes the per-phase median over the history.
func seasonalMedians(history []float64, period int) []float64 {
	buckets := make([][]float64, period)
	for i, v := range history {
		buckets[i%period] = append(buckets[i%period], v)
	}
	out := make([]float64, period)
	for i, b := range buckets {
		out[i] = median(b)
	}
	return out
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	cp := append([]float64(nil), v...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	// Halve before adding so the midpoint cannot overflow for extreme
	// values.
	return cp[n/2-1]/2 + cp[n/2]/2
}

// mad returns the median absolute deviation scaled to be consistent with
// the standard deviation under normality.
func mad(v []float64, med float64) float64 {
	dev := make([]float64, len(v))
	for i, x := range v {
		dev[i] = math.Abs(x - med)
	}
	return 1.4826 * median(dev)
}

// esd runs the generalized ESD test on the residuals against the
// history-calibrated robust location and scale, returning up to maxK
// anomalous indices.
func esd(resid []float64, med, scale float64, maxK int, alpha float64) []int {
	type cand struct {
		idx int
		val float64
	}
	active := make([]cand, len(resid))
	for i, v := range resid {
		active[i] = cand{i, v}
	}
	var flaggedAt []int
	lastSignificant := 0
	for k := 1; k <= maxK && len(active) > 2; k++ {
		// Find the most extreme remaining residual.
		best, bestR := -1, -1.0
		for i, c := range active {
			r := math.Abs(c.val-med) / scale
			if r > bestR {
				bestR, best = r, i
			}
		}
		n := float64(len(active))
		// Critical value from the t-distribution approximation.
		p := 1 - alpha/(2*n)
		tcrit := studentTQuantile(p, n-2)
		lambda := (n - 1) * tcrit / math.Sqrt((n-2+tcrit*tcrit)*n)
		flaggedAt = append(flaggedAt, active[best].idx)
		if bestR > lambda {
			lastSignificant = k
		}
		active = append(active[:best], active[best+1:]...)
	}
	out := append([]int(nil), flaggedAt[:lastSignificant]...)
	sort.Ints(out)
	return out
}

// studentTQuantile approximates the quantile function of Student's t with
// df degrees of freedom via the Cornish–Fisher expansion around the normal
// quantile — ample accuracy for thresholding.
func studentTQuantile(p, df float64) float64 {
	z := normQuantile(p)
	if df <= 0 {
		return z
	}
	z3 := z * z * z
	z5 := z3 * z * z
	g1 := (z3 + z) / 4
	g2 := (5*z5 + 16*z3 + 3*z) / 96
	return z + g1/df + g2/(df*df)
}

// normQuantile is the Acklam rational approximation of the standard normal
// quantile function.
func normQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// SuspiciousDays maps flagged window indices to day indices given a day
// length, requiring at least minWindows flagged windows per day.
func SuspiciousDays(flagged []int, windowsPerDay, minWindows int) []int {
	counts := map[int]int{}
	for _, w := range flagged {
		counts[w/windowsPerDay]++
	}
	var out []int
	for d, n := range counts {
		if n >= minWindows {
			out = append(out, d)
		}
	}
	sort.Ints(out)
	return out
}
