package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/pipeline"
)

// TestEstimateCacheHit: a repeated identical /v1/estimate against the same
// model generation is served from the prediction cache — byte-identical
// body, marked with the cache header — and publishing a new generation
// invalidates (the version is part of the key).
func TestEstimateCacheHit(t *testing.T) {
	s, err := NewWithConfig(quickServiceOpts(), pipeline.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	if rec := do(t, h, "POST", "/v1/telemetry", telemetryBody(t, 1, 30, 81)); rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "POST", "/v1/learn", bytes.NewBufferString(`{}`)); rec.Code != http.StatusOK {
		t.Fatalf("learn = %d: %s", rec.Code, rec.Body)
	}

	body := `{"windows":[{"/read":10},{"/read":25},{"/read":40}]}`
	first := do(t, h, "POST", "/v1/estimate", bytes.NewBufferString(body))
	if first.Code != http.StatusOK {
		t.Fatalf("estimate = %d: %s", first.Code, first.Body)
	}
	if first.Header().Get("X-DeepRest-Cache") == "hit" {
		t.Fatal("first estimate claims a cache hit")
	}
	second := do(t, h, "POST", "/v1/estimate", bytes.NewBufferString(body))
	if second.Code != http.StatusOK {
		t.Fatalf("second estimate = %d: %s", second.Code, second.Body)
	}
	if got := second.Header().Get("X-DeepRest-Cache"); got != "hit" {
		t.Fatalf("second identical estimate not served from cache (header %q)", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("cached estimate body differs from the computed one")
	}

	// Same semantics, different JSON spelling: the canonical re-marshal
	// must still hit.
	respelled := `{ "windows": [ {"/read":10}, {"/read":25}, {"/read":40} ] }`
	third := do(t, h, "POST", "/v1/estimate", bytes.NewBufferString(respelled))
	if got := third.Header().Get("X-DeepRest-Cache"); got != "hit" {
		t.Fatalf("re-spelled identical estimate not served from cache (header %q)", got)
	}

	// A new generation invalidates: the same request recomputes against
	// the new version.
	if rec := do(t, h, "POST", "/v1/learn", bytes.NewBufferString(`{}`)); rec.Code != http.StatusOK {
		t.Fatalf("second learn = %d: %s", rec.Code, rec.Body)
	}
	fourth := do(t, h, "POST", "/v1/estimate", bytes.NewBufferString(body))
	if fourth.Code != http.StatusOK {
		t.Fatalf("post-retrain estimate = %d: %s", fourth.Code, fourth.Body)
	}
	if fourth.Header().Get("X-DeepRest-Cache") == "hit" {
		t.Fatal("estimate against a new generation must not reuse the old cache entry")
	}
	var resp estimateResponse
	if err := json.Unmarshal(fourth.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Version != 2 {
		t.Fatalf("post-retrain estimate version = %d, want 2", resp.Version)
	}
}

func TestEstimateCacheDisabled(t *testing.T) {
	s, err := NewWithConfig(quickServiceOpts(), pipeline.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.EstimateCache = -1
	h := s.Handler()
	if rec := do(t, h, "POST", "/v1/telemetry", telemetryBody(t, 1, 30, 82)); rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "POST", "/v1/learn", bytes.NewBufferString(`{}`)); rec.Code != http.StatusOK {
		t.Fatalf("learn = %d: %s", rec.Code, rec.Body)
	}
	body := `{"windows":[{"/read":10}]}`
	for i := 0; i < 2; i++ {
		rec := do(t, h, "POST", "/v1/estimate", bytes.NewBufferString(body))
		if rec.Code != http.StatusOK {
			t.Fatalf("estimate %d = %d: %s", i, rec.Code, rec.Body)
		}
		if rec.Header().Get("X-DeepRest-Cache") == "hit" {
			t.Fatal("disabled cache served a hit")
		}
	}
}

// TestRetentionBitIdenticalEstimates is the acceptance proof for bounded
// ingestion: a retention-bounded service and an unbounded one ingest the
// same telemetry, learn over the same absolute window range (the bounded
// store's retained range), and must answer /v1/estimate and /v1/sanity
// byte-for-byte identically — eviction may only forget history, never
// change what the retained windows mean.
func TestRetentionBitIdenticalEstimates(t *testing.T) {
	const retention = 30
	build := func(bounded bool) (*Server, http.Handler) {
		t.Helper()
		s, err := NewWithConfig(quickServiceOpts(), pipeline.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if bounded {
			s.Retention = retention
		}
		h := s.Handler()
		if rec := do(t, h, "POST", "/v1/telemetry", telemetryBody(t, 1, 30, 83)); rec.Code != http.StatusOK {
			t.Fatalf("ingest = %d: %s", rec.Code, rec.Body)
		}
		return s, h
	}
	_, bh := build(true)
	_, uh := build(false)

	// The bounded store has evicted its head; learn both services over
	// exactly the retained absolute range.
	var st statusResponse
	rec := do(t, bh, "GET", "/v1/status", nil)
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.OldestWindow == 0 {
		t.Fatalf("bounded store evicted nothing (status %+v); test needs ingest >> retention", st)
	}
	if st.ResidentWindows != retention {
		t.Fatalf("resident_windows = %d, want %d", st.ResidentWindows, retention)
	}
	if st.Windows != st.OldestWindow+st.ResidentWindows {
		t.Fatalf("windows = %d, want oldest+resident = %d", st.Windows, st.OldestWindow+st.ResidentWindows)
	}
	learn := fmt.Sprintf(`{"from":%d,"to":%d}`, st.OldestWindow, st.Windows)
	if rec := do(t, bh, "POST", "/v1/learn", bytes.NewBufferString(learn)); rec.Code != http.StatusOK {
		t.Fatalf("bounded learn = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, uh, "POST", "/v1/learn", bytes.NewBufferString(learn)); rec.Code != http.StatusOK {
		t.Fatalf("unbounded learn = %d: %s", rec.Code, rec.Body)
	}

	est := `{"windows":[{"/read":10},{"/read":30},{"/read":50},{"/read":20}]}`
	be := do(t, bh, "POST", "/v1/estimate", bytes.NewBufferString(est))
	ue := do(t, uh, "POST", "/v1/estimate", bytes.NewBufferString(est))
	if be.Code != http.StatusOK || ue.Code != http.StatusOK {
		t.Fatalf("estimate codes = %d / %d: %s / %s", be.Code, ue.Code, be.Body, ue.Body)
	}
	if !bytes.Equal(be.Body.Bytes(), ue.Body.Bytes()) {
		t.Fatalf("bounded and unbounded estimates differ:\n%s\nvs\n%s", be.Body, ue.Body)
	}

	// Sanity over the retained range agrees too (it reads cached features
	// on the bounded side, raw traces on the unbounded one).
	sanity := fmt.Sprintf(`{"from":%d,"to":%d}`, st.OldestWindow, st.Windows)
	bs := do(t, bh, "POST", "/v1/sanity", bytes.NewBufferString(sanity))
	us := do(t, uh, "POST", "/v1/sanity", bytes.NewBufferString(sanity))
	if bs.Code != http.StatusOK || us.Code != http.StatusOK {
		t.Fatalf("sanity codes = %d / %d: %s / %s", bs.Code, us.Code, bs.Body, us.Body)
	}
	if !bytes.Equal(bs.Body.Bytes(), us.Body.Bytes()) {
		t.Fatalf("bounded and unbounded sanity differ:\n%s\nvs\n%s", bs.Body, us.Body)
	}

	// Reads reaching below the horizon fail loudly instead of silently
	// shifting the range.
	below := do(t, bh, "POST", "/v1/sanity", bytes.NewBufferString(`{"from":0,"to":8}`))
	if below.Code == http.StatusOK {
		t.Fatalf("sanity below the horizon = %d, want an error", below.Code)
	}
}
