package service

import (
	"context"
	"fmt"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Bootstrap seeds the service's telemetry store from a simulation run before
// any listener is up — the daemon's -app mode, where the service boots with
// a learnable history instead of waiting for telemetry adapters to push one.
// It follows the same adoption path as POST /v1/telemetry: the first source
// creates the store (arming retention, metrics, and the active generation's
// feature extractor), later ones must agree on the window duration.
func (s *Server) Bootstrap(run *sim.Run) error {
	if run == nil || len(run.Windows) == 0 {
		return fmt.Errorf("bootstrap: empty run")
	}
	ctx, span := s.opts.Tracer.Start(context.Background(), "service.ingest")
	span.SetWindows(len(run.Windows))
	defer span.End()
	in := telemetry.NewServer(run.WindowSeconds)
	in.RecordRun(run)

	s.mu.Lock()
	if s.store == nil {
		s.adoptStore(in)
	} else {
		if s.store.WindowSeconds() != run.WindowSeconds {
			have := s.store.WindowSeconds()
			s.mu.Unlock()
			return fmt.Errorf("bootstrap: window duration %vs does not match existing store (%vs)",
				run.WindowSeconds, have)
		}
		n := in.NumWindows()
		traces, _ := in.Traces(0, n)
		metrics, _ := in.Metrics(0, n)
		for i := 0; i < n; i++ {
			s.store.Record(windowResult(traces[i], metrics, i))
		}
	}
	s.mu.Unlock()
	s.qualityCatchUp(ctx)
	return nil
}

// adoptStore installs a freshly imported telemetry server as the service's
// store. Callers must hold s.mu.
func (s *Server) adoptStore(in *telemetry.Server) {
	s.store = in
	if s.Retention > 0 {
		s.store.SetRetention(s.Retention)
	}
	// Back-counts the imported windows, so ingestion metrics cover the
	// stream that created the store too.
	s.store.Instrument(s.opts.Metrics)
	s.store.SetTracer(s.opts.Tracer)
	// A recovered generation may predate the store: arm its extractor so
	// Record-time feature extraction starts with the first window.
	if gen := s.pipe.Active(); gen != nil {
		s.store.SetExtractor(gen.Version, gen.System.Extractor())
	}
}
