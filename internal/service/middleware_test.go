package service

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/pipeline"
)

// instrumentedService builds a quick service wired to a fresh metrics
// registry and a JSON access log captured in logBuf.
func instrumentedService(t *testing.T, cfg pipeline.Config) (*Server, *obs.Registry, *bytes.Buffer) {
	t.Helper()
	reg := obs.NewRegistry()
	logBuf := &bytes.Buffer{}
	opts := quickServiceOpts()
	opts.Metrics = reg
	opts.Logger = slog.New(slog.NewJSONHandler(logBuf, nil))
	s, err := NewWithConfig(opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, reg, logBuf
}

// TestMetricsScrape drives the service through ingest + learn and validates
// the full /metrics exposition against the Prometheus text-format grammar,
// then checks the promised series are all present.
func TestMetricsScrape(t *testing.T) {
	s, _, _ := instrumentedService(t, pipeline.DefaultConfig())
	h := s.Handler()

	if rec := do(t, h, "POST", "/v1/telemetry", telemetryBody(t, 1, 30, 61)); rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/v1/learn", bytes.NewBufferString(`{"pairs":["Service/cpu"]}`)); rec.Code != http.StatusOK {
		t.Fatalf("learn = %d: %s", rec.Code, rec.Body)
	}
	// A request that routes nowhere must fold into the "other" endpoint
	// label instead of minting a new one.
	do(t, h, "GET", "/no/such/route", nil)
	// Touch the quality scoreboard so its gauges export scored values.
	if rec := do(t, h, "GET", "/v1/quality", nil); rec.Code != http.StatusOK {
		t.Fatalf("quality = %d", rec.Code)
	}

	rec := do(t, h, "GET", "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("content type = %q, want %q", ct, obs.ContentType)
	}
	body := rec.Body.String()
	if err := obs.Lint(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition fails Prometheus grammar: %v\n%s", err, body)
	}
	for _, want := range []string{
		`deeprest_http_request_duration_seconds_bucket{endpoint="/v1/learn",le="+Inf"}`,
		`deeprest_http_requests_total{endpoint="/v1/telemetry",code="200"}`,
		`deeprest_http_requests_total{endpoint="other",code="404"}`,
		"deeprest_http_in_flight_requests 1", // the scrape itself is in flight
		`deeprest_train_epochs_total{phase="train"}`,
		"deeprest_train_epoch_loss{",
		`deeprest_pipeline_generation_seconds_count{trigger="manual"} 1`,
		`deeprest_pipeline_generations_total{trigger="manual",result="ok"} 1`,
		"deeprest_drift_score 0",
		"deeprest_active_generation 1",
		"deeprest_telemetry_windows_total",
		"deeprest_telemetry_spans_total",
		`deeprest_build_info{version=`,
		"deeprest_quality_windows_scored_total",
		`deeprest_quality_smape{component="Service",resource="cpu"}`,
		"deeprest_quality_coverage{",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape is missing %q", want)
		}
	}
}

// TestRequestIDs: every response carries an X-Request-ID, ids are unique,
// an inbound id is propagated, and the access log links ids to statuses.
func TestRequestIDs(t *testing.T) {
	s, _, logBuf := instrumentedService(t, pipeline.DefaultConfig())
	h := s.Handler()

	r1 := do(t, h, "GET", "/v1/status", nil)
	r2 := do(t, h, "GET", "/v1/status", nil)
	id1, id2 := r1.Header().Get("X-Request-ID"), r2.Header().Get("X-Request-ID")
	if id1 == "" || id2 == "" {
		t.Fatalf("missing X-Request-ID: %q, %q", id1, id2)
	}
	if id1 == id2 {
		t.Fatalf("request ids collide: %q", id1)
	}

	// An id supplied by the caller (e.g. an upstream proxy) is kept.
	req := httptest.NewRequest("GET", "/v1/status", nil)
	req.Header.Set("X-Request-ID", "upstream-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-ID"); got != "upstream-42" {
		t.Fatalf("inbound id not propagated: %q", got)
	}

	// Each request produced one structured access-log line carrying the id,
	// method, path, and status.
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("access log has %d lines, want 3:\n%s", len(lines), logBuf)
	}
	byID := map[string]map[string]interface{}{}
	for _, line := range lines {
		var entry map[string]interface{}
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("access log line is not JSON: %s", line)
		}
		byID[entry["request_id"].(string)] = entry
	}
	for _, id := range []string{id1, id2, "upstream-42"} {
		e, ok := byID[id]
		if !ok {
			t.Fatalf("no access-log line for request %q", id)
		}
		if e["method"] != "GET" || e["path"] != "/v1/status" || e["status"] != float64(200) {
			t.Errorf("access log for %q = %v", id, e)
		}
	}
}

// TestMiddlewareRecordsStatuses covers the metric paths for success, client
// error, and the 409 returned to a learn racing an in-flight generation.
func TestMiddlewareRecordsStatuses(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	enter, release := make(chan struct{}), make(chan struct{})
	var gate sync.Once
	cfg.BeforeTrain = func() {
		gate.Do(func() {
			close(enter)
			<-release
		})
	}
	s, reg, _ := instrumentedService(t, cfg)
	h := s.Handler()

	if rec := do(t, h, "POST", "/v1/telemetry", telemetryBody(t, 1, 30, 62)); rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d", rec.Code)
	}
	// 400: malformed learn body.
	if rec := do(t, h, "POST", "/v1/learn", bytes.NewBufferString(`{"pairs":`)); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad learn = %d", rec.Code)
	}
	// 409: second learn while the first holds the training slot.
	firstDone := make(chan int, 1)
	go func() {
		rec := do(t, h, "POST", "/v1/learn", bytes.NewBufferString(`{"pairs":["Service/cpu"]}`))
		firstDone <- rec.Code
	}()
	<-enter
	if rec := do(t, h, "POST", "/v1/learn", nil); rec.Code != http.StatusConflict {
		t.Fatalf("concurrent learn = %d", rec.Code)
	}
	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("first learn = %d", code)
	}

	reqs := reg.CounterVec("deeprest_http_requests_total",
		"HTTP requests served, by endpoint pattern and status code.",
		"endpoint", "code")
	for _, tc := range []struct {
		code string
		want uint64
	}{{"200", 1}, {"400", 1}, {"409", 1}} {
		if got := reqs.With("/v1/learn", tc.code).Value(); got != tc.want {
			t.Errorf("requests_total{/v1/learn,%s} = %d, want %d", tc.code, got, tc.want)
		}
	}
	dur := reg.HistogramVec("deeprest_http_request_duration_seconds",
		"HTTP request latency by endpoint pattern.",
		obs.DefBuckets, "endpoint")
	if got := dur.With("/v1/learn").Count(); got != 3 {
		t.Errorf("latency observations for /v1/learn = %d, want 3", got)
	}
	if got := dur.With("/v1/learn").Sum(); got <= 0 {
		t.Errorf("latency sum = %v, want > 0", got)
	}
}

// TestPprofGating: the profiling mux is mounted only when EnablePprof is set.
func TestPprofGating(t *testing.T) {
	off, err := NewWithConfig(quickServiceOpts(), pipeline.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rec := do(t, off.Handler(), "GET", "/debug/pprof/cmdline", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("pprof while disabled = %d, want 404", rec.Code)
	}

	on, err := NewWithConfig(quickServiceOpts(), pipeline.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	on.EnablePprof = true
	if rec := do(t, on.Handler(), "GET", "/debug/pprof/cmdline", nil); rec.Code != http.StatusOK {
		t.Fatalf("pprof while enabled = %d, want 200", rec.Code)
	}
}

// TestUninstrumentedServiceServes: nil Metrics and Logger must not change
// behaviour — no /metrics route, no panics, ids still assigned.
func TestUninstrumentedServiceServes(t *testing.T) {
	s, err := NewWithConfig(quickServiceOpts(), pipeline.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	rec := do(t, h, "GET", "/v1/status", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if rec.Header().Get("X-Request-ID") == "" {
		t.Fatal("request id missing without instrumentation")
	}
	if rec := do(t, h, "GET", "/metrics", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("metrics without registry = %d, want 404", rec.Code)
	}
}
