package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/telemetry"
	"repro/internal/testutil"
)

// newTestService spins up a service with a quick estimator configuration.
func newTestService() *Server {
	opts := core.DefaultOptions()
	opts.Estimator.Hidden = 6
	opts.Estimator.Epochs = 8
	opts.Estimator.AttentionEpochs = 1
	opts.Estimator.ChunkLen = 24
	return New(opts)
}

// telemetryBody serialises a toy run into the interchange format.
func telemetryBody(t *testing.T, days int, peak float64, seed int64) *bytes.Buffer {
	t.Helper()
	_, _, run := testutil.ToyTelemetry(t, days, peak, seed)
	store := telemetry.NewServer(run.WindowSeconds)
	store.RecordRun(run)
	var buf bytes.Buffer
	if err := store.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func do(t *testing.T, h http.Handler, method, path string, body *bytes.Buffer) *httptest.ResponseRecorder {
	t.Helper()
	if body == nil {
		body = &bytes.Buffer{}
	}
	req := httptest.NewRequest(method, path, body)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestServiceEndToEnd(t *testing.T) {
	h := newTestService().Handler()

	// Status before any data.
	rec := do(t, h, "GET", "/v1/status", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var st statusResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Learned || st.Windows != 0 {
		t.Fatalf("fresh status = %+v", st)
	}

	// Estimate before learning must fail.
	if rec := do(t, h, "POST", "/v1/estimate", bytes.NewBufferString(`{"windows":[{"/read":10}]}`)); rec.Code != http.StatusPreconditionFailed {
		t.Fatalf("premature estimate = %d", rec.Code)
	}

	// Ingest telemetry.
	rec = do(t, h, "POST", "/v1/telemetry", telemetryBody(t, 2, 30, 51))
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", rec.Code, rec.Body)
	}

	// Learn a subset of pairs.
	learn := `{"pairs":["Service/cpu","DB/write_iops"]}`
	rec = do(t, h, "POST", "/v1/learn", bytes.NewBufferString(learn))
	if rec.Code != http.StatusOK {
		t.Fatalf("learn = %d: %s", rec.Code, rec.Body)
	}
	var lr map[string]float64
	_ = json.Unmarshal(rec.Body.Bytes(), &lr)
	if lr["experts"] != 2 {
		t.Fatalf("experts = %v", lr)
	}

	// Status reflects learning.
	rec = do(t, h, "GET", "/v1/status", nil)
	_ = json.Unmarshal(rec.Body.Bytes(), &st)
	if !st.Learned || len(st.Experts) != 2 {
		t.Fatalf("status after learn = %+v", st)
	}

	// Mode-1 estimate.
	traffic := testutil.ToyProgram(1, 45, 99).Generate()
	body, _ := json.Marshal(estimateRequest{Windows: traffic.Windows, WindowsPerDay: traffic.WindowsPerDay})
	rec = do(t, h, "POST", "/v1/estimate", bytes.NewBuffer(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("estimate = %d: %s", rec.Code, rec.Body)
	}
	var er estimateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	cpu, ok := er.Estimates["Service/cpu"]
	if !ok || len(cpu.Exp) != traffic.NumWindows() || cpu.Unit != "mcores" {
		t.Fatalf("estimate payload = %+v", er)
	}
	for i := range cpu.Exp {
		if cpu.Low[i] > cpu.Exp[i] || cpu.Up[i] < cpu.Exp[i] {
			t.Fatal("interval does not bracket the expectation")
		}
	}

	// Mode-2 sanity over the (benign) learning period: no events.
	rec = do(t, h, "POST", "/v1/sanity", bytes.NewBufferString(fmt.Sprintf(`{"from":0,"to":%d}`, st.Windows)))
	if rec.Code != http.StatusOK {
		t.Fatalf("sanity = %d: %s", rec.Code, rec.Body)
	}
	var sr sanityResponse
	_ = json.Unmarshal(rec.Body.Bytes(), &sr)
	if len(sr.Events) != 0 {
		t.Fatalf("benign period raised events: %+v", sr.Events)
	}

	// Influence for a learned pair.
	rec = do(t, h, "GET", "/v1/influence?pair=DB/write_iops", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("influence = %d: %s", rec.Code, rec.Body)
	}
	var ir map[string]map[string]float64
	_ = json.Unmarshal(rec.Body.Bytes(), &ir)
	if len(ir["influence"]) == 0 {
		t.Fatal("no influence data")
	}

	// Model download round-trips through the estimator loader.
	rec = do(t, h, "GET", "/v1/model", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("model = %d", rec.Code)
	}
	if _, err := estimator.Load(rec.Body); err != nil {
		t.Fatalf("downloaded model unreadable: %v", err)
	}

	// Read-only autoscale plan over the trailing telemetry: one
	// contiguous, positive-amount schedule per learned pair, in absolute
	// window indices.
	rec = do(t, h, "GET", "/v1/autoscale/plan?windows=48&interval=8&headroom=0.2", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("autoscale plan = %d: %s", rec.Code, rec.Body)
	}
	var pr planResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.ToWindow != st.Windows || pr.FromWindow != st.Windows-48 {
		t.Fatalf("plan range [%d,%d), want trailing 48 of %d", pr.FromWindow, pr.ToWindow, st.Windows)
	}
	if pr.IntervalWindows != 8 || pr.Headroom != 0.2 || len(pr.Plans) != 2 {
		t.Fatalf("plan shape = %+v", pr)
	}
	for pair, allocs := range pr.Plans {
		cursor := pr.FromWindow
		for _, a := range allocs {
			if a.FromWindow != cursor || a.ToWindow <= a.FromWindow || a.Amount < 0 {
				t.Fatalf("%s: bad allocation %+v at cursor %d", pair, a, cursor)
			}
			cursor = a.ToWindow
		}
		if cursor != pr.ToWindow {
			t.Fatalf("%s: schedule ends at %d, want %d", pair, cursor, pr.ToWindow)
		}
	}
}

func TestServiceIngestAppend(t *testing.T) {
	h := newTestService().Handler()
	if rec := do(t, h, "POST", "/v1/telemetry", telemetryBody(t, 1, 30, 52)); rec.Code != http.StatusOK {
		t.Fatalf("first ingest = %d", rec.Code)
	}
	rec := do(t, h, "POST", "/v1/telemetry", telemetryBody(t, 1, 30, 53))
	if rec.Code != http.StatusOK {
		t.Fatalf("second ingest = %d: %s", rec.Code, rec.Body)
	}
	var out map[string]int
	_ = json.Unmarshal(rec.Body.Bytes(), &out)
	if out["windows"] != 2*testutil.ToyDay {
		t.Fatalf("windows = %d, want %d", out["windows"], 2*testutil.ToyDay)
	}

	// Mismatched window duration is rejected.
	_, _, run := testutil.ToyTelemetry(t, 1, 30, 54)
	store := telemetry.NewServer(run.WindowSeconds * 2)
	store.RecordRun(run)
	var buf bytes.Buffer
	if err := store.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if rec := do(t, h, "POST", "/v1/telemetry", &buf); rec.Code != http.StatusConflict {
		t.Fatalf("mismatched ingest = %d", rec.Code)
	}
}

func TestServiceErrorPaths(t *testing.T) {
	h := newTestService().Handler()
	if rec := do(t, h, "POST", "/v1/telemetry", bytes.NewBufferString("not json")); rec.Code != http.StatusBadRequest {
		t.Errorf("bad ingest = %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/v1/learn", nil); rec.Code != http.StatusPreconditionFailed {
		t.Errorf("learn without data = %d", rec.Code)
	}
	if rec := do(t, h, "GET", "/v1/influence", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("influence without pair = %d", rec.Code)
	}
	if rec := do(t, h, "GET", "/v1/autoscale/plan", nil); rec.Code != http.StatusPreconditionFailed {
		t.Errorf("plan before learning = %d", rec.Code)
	}
	if rec := do(t, h, "GET", "/v1/autoscale/plan?windows=nope", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("plan with bad windows = %d", rec.Code)
	}
	if rec := do(t, h, "GET", "/v1/autoscale/plan?interval=-3", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("plan with bad interval = %d", rec.Code)
	}
	if rec := do(t, h, "GET", "/v1/autoscale/plan?headroom=-1", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("plan with bad headroom = %d", rec.Code)
	}
	if rec := do(t, h, "GET", "/v1/model", nil); rec.Code != http.StatusPreconditionFailed {
		t.Errorf("model before learn = %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/v1/sanity", bytes.NewBufferString(`{"from":0,"to":5}`)); rec.Code != http.StatusPreconditionFailed {
		t.Errorf("sanity before learn = %d", rec.Code)
	}

	// After ingest + learn, malformed inputs are 4xx.
	if rec := do(t, h, "POST", "/v1/telemetry", telemetryBody(t, 2, 30, 55)); rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/v1/learn", bytes.NewBufferString(`{"pairs":["nonsense"]}`)); rec.Code != http.StatusBadRequest {
		t.Errorf("learn bad pair = %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/v1/learn", bytes.NewBufferString(`{"pairs":["Service/cpu"]}`)); rec.Code != http.StatusOK {
		t.Fatalf("learn = %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/v1/estimate", bytes.NewBufferString(`{"windows":[]}`)); rec.Code != http.StatusBadRequest {
		t.Errorf("empty estimate = %d", rec.Code)
	}
	// Estimating an unseen API fails in the synthesizer.
	if rec := do(t, h, "POST", "/v1/estimate", bytes.NewBufferString(`{"windows":[{"/mystery":5}]}`)); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("unknown API estimate = %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/v1/sanity", bytes.NewBufferString(`{"from":-3,"to":1}`)); rec.Code != http.StatusBadRequest {
		t.Errorf("bad sanity range = %d", rec.Code)
	}
}

func TestServiceAnonymizedMode(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Estimator.Hidden = 4
	opts.Estimator.Epochs = 4
	opts.Estimator.AttentionEpochs = 0
	opts.Estimator.ChunkLen = 24
	opts.Anonymize = true
	opts.HashSalt = "svc"
	h := New(opts).Handler()
	if rec := do(t, h, "POST", "/v1/telemetry", telemetryBody(t, 1, 25, 56)); rec.Code != http.StatusOK {
		t.Fatal("ingest failed")
	}
	if rec := do(t, h, "POST", "/v1/learn", bytes.NewBufferString(`{"pairs":["DB/cpu"]}`)); rec.Code != http.StatusOK {
		t.Fatalf("learn = %d", rec.Code)
	}
	// Influence keys are hashed, not plaintext.
	rec := do(t, h, "GET", "/v1/influence?pair=DB/cpu", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("influence = %d: %s", rec.Code, rec.Body)
	}
	if strings.Contains(rec.Body.String(), "Gateway") {
		t.Error("plaintext component name leaked in anonymized mode")
	}
}
