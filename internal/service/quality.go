package service

import (
	"context"
	"net/http"
	"time"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/quality"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// storeSource adapts the lazily created telemetry store for the quality
// scorer: before the first ingest every read reports an empty store, so the
// scorer simply has nothing to score yet.
type storeSource struct{ s *Server }

func (ss storeSource) get() *telemetry.Server {
	ss.s.mu.RLock()
	defer ss.s.mu.RUnlock()
	return ss.s.store
}

func (ss storeSource) WindowSeconds() float64 {
	if st := ss.get(); st != nil {
		return st.WindowSeconds()
	}
	return 0
}

func (ss storeSource) NumWindows() int {
	if st := ss.get(); st != nil {
		return st.NumWindows()
	}
	return 0
}

func (ss storeSource) OldestWindow() int {
	if st := ss.get(); st != nil {
		return st.OldestWindow()
	}
	return 0
}

func (ss storeSource) Traces(from, to int) ([][]trace.Batch, error) {
	return ss.get().Traces(from, to)
}

func (ss storeSource) Metrics(from, to int) (map[app.Pair][]float64, error) {
	return ss.get().Metrics(from, to)
}

func (ss storeSource) Features(gen int, fn func([]trace.Batch) features.Vector, from, to int) ([]features.Vector, error) {
	return ss.get().Features(gen, fn, from, to)
}

// qualityHorizons derives the report horizons from the configured maximum:
// the defaults (1h/6h/24h) clipped to max, with max itself always included
// as the longest.
func qualityHorizons(max time.Duration) []time.Duration {
	if max <= 0 {
		max = quality.DefaultHorizons[len(quality.DefaultHorizons)-1]
	}
	var hs []time.Duration
	for _, h := range quality.DefaultHorizons {
		if h < max {
			hs = append(hs, h)
		}
	}
	return append(hs, max)
}

// initQuality builds the shadow scorer. Called once from Handler, after the
// operator-tunable fields (QualityHorizon, QualityThreshold, Retention) are
// final.
func (s *Server) initQuality() {
	if s.quality != nil {
		return
	}
	s.quality = quality.New(quality.Config{
		Horizons:       qualityHorizons(s.QualityHorizon),
		Retention:      s.Retention,
		SMAPEThreshold: s.QualityThreshold,
		SustainWindows: s.QualitySustain,
	}, quality.Deps{
		Source: storeSource{s},
		Active: func() (int, *core.System) {
			g := s.pipe.Active()
			if g == nil {
				return 0, nil
			}
			return g.Version, g.System
		},
		Metrics: s.opts.Metrics,
		Tracer:  s.opts.Tracer,
		Logger:  s.log,
	})
}

// qualityCatchUp scores any pending complete chunks. Callers must NOT hold
// s.mu: the scorer reads the store through storeSource, which takes the
// read lock itself.
func (s *Server) qualityCatchUp(ctx context.Context) {
	if s.quality != nil {
		s.quality.CatchUp(ctx)
	}
}

// qualityRegressed is the pipeline's QualityCheck hook: advance the
// scoreboard, then report the sustained-regression gate. Returning true
// makes the pipeline schedule an early retrain with trigger "quality".
func (s *Server) qualityRegressed() (bool, string) {
	if s.quality == nil {
		return false, ""
	}
	s.quality.CatchUp(context.Background())
	return s.quality.Regressed()
}

// handleQuality serves the shadow-scoring scoreboard. The report is
// refreshed first, so the response always covers every complete chunk of
// ingested telemetry.
func (s *Server) handleQuality(w http.ResponseWriter, r *http.Request) {
	if s.quality == nil {
		writeErr(w, http.StatusServiceUnavailable, "quality scoring not initialised")
		return
	}
	s.quality.CatchUp(r.Context())
	writeJSON(w, s.quality.Report())
}
