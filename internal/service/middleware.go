package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// statusWriter captures the status code and body size that flowed through a
// ResponseWriter, for metrics and the access log.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// Flush forwards to the underlying writer so streaming responses (the model
// download) keep working through the wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// endpointLabel maps a request to a bounded metric label: one of the routed
// patterns, or "other" for everything else so unroutable paths cannot mint
// unbounded label values.
func endpointLabel(r *http.Request) string {
	p := r.URL.Path
	switch p {
	case "/v1/telemetry", "/v1/learn", "/v1/status", "/v1/estimate",
		"/v1/predict", "/v1/sanity", "/v1/influence", "/v1/model",
		"/v1/pipeline/start", "/v1/pipeline/stop", "/v1/pipeline/status",
		"/v1/models", "/v1/quality", "/v1/version", "/metrics", "/debug/spans":
		return p
	}
	if strings.HasPrefix(p, "/v1/models/") && strings.HasSuffix(p, "/activate") {
		return "/v1/models/{version}/activate"
	}
	if strings.HasPrefix(p, "/debug/pprof") {
		return "/debug/pprof/"
	}
	return "other"
}

// newRequestPrefix draws a random per-process prefix so request ids from
// different daemon runs never collide in aggregated logs.
func newRequestPrefix() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "req"
	}
	return hex.EncodeToString(b[:])
}

// nextRequestID mints a unique id: random process prefix + atomic sequence.
func (s *Server) nextRequestID() string {
	return s.reqPrefix + "-" + strconv.FormatUint(s.reqSeq.Add(1), 16)
}

// operatorPath reports whether a path serves operator tooling that must stay
// reachable even when the service sheds API load.
func operatorPath(p string) bool {
	return p == "/metrics" || p == "/debug/spans" || strings.HasPrefix(p, "/debug/pprof")
}

// withAdmission is the bounded-admission middleware: at most MaxInflight
// requests are in the handler stack at once, and requests beyond the bound
// are shed immediately with 503 + Retry-After. Shedding beats unbounded
// queueing: a saturated estimator answering late is indistinguishable from
// an outage to its callers, while a fast 503 lets them back off and retry.
func (s *Server) withAdmission(next http.Handler) http.Handler {
	if s.MaxInflight <= 0 {
		return next
	}
	admit := make(chan struct{}, s.MaxInflight)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if operatorPath(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		select {
		case admit <- struct{}{}:
			defer func() { <-admit }()
			next.ServeHTTP(w, r)
		default:
			s.httpShed.Inc()
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable,
				"at capacity (%d requests in flight); retry later", s.MaxInflight)
		}
	})
}

// withDeadline attaches the configured per-request deadline to the request
// context. Handlers observe it wherever they block or cross a phase
// boundary (training checks it before fetch and before publish).
func (s *Server) withDeadline(next http.Handler) http.Handler {
	if s.RequestTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// withObservability is the outermost HTTP middleware: it assigns (or
// propagates) a request id, tracks in-flight requests, records per-endpoint
// latency and status-code metrics, and emits one structured access-log line.
// With nil Metrics and nil Logger every hook degrades to a no-op, leaving
// only the id header and a timestamp read on the hot path.
func (s *Server) withObservability(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = s.nextRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w}
		s.httpInFlight.Add(1)
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		s.httpInFlight.Add(-1)
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		ep := endpointLabel(r)
		s.httpReqs.With(ep, strconv.Itoa(sw.code)).Inc()
		s.httpDur.With(ep).Observe(elapsed.Seconds())
		if s.log != nil {
			s.log.Info("http request",
				"method", r.Method, "path", r.URL.Path, "status", sw.code,
				"bytes", sw.bytes, "duration", elapsed,
				"request_id", id, "remote", r.RemoteAddr)
		}
	})
}
