// Package service exposes DeepRest over HTTP — the deployment mode the
// paper envisions ("DeepRest can be deployed in on-premises clusters or a
// cloud as a service to serve any hosted application", §1). The API is
// deliberately small and JSON-only:
//
//	POST /v1/telemetry        ingest a telemetry stream (telemetry JSON format)
//	POST /v1/learn            train and publish one model generation
//	GET  /v1/status           learning state, window counts, expert inventory
//	POST /v1/estimate         Mode 1: resources for hypothetical API traffic
//	POST /v1/predict          alias for /v1/estimate
//	POST /v1/sanity           Mode 2: sanity-check a served period
//	GET  /v1/influence        learned API→resource dependencies for one pair
//	GET  /v1/model            download the serialized active model
//	GET  /v1/autoscale/plan   read-only scaling schedule from recent telemetry
//
// Continuous learning (internal/pipeline):
//
//	POST /v1/pipeline/start   start the background retraining loop
//	POST /v1/pipeline/stop    stop it (waits for an in-flight generation)
//	GET  /v1/pipeline/status  loop state, drift signal, last error
//	GET  /v1/models           list retained model generations
//	POST /v1/models/{version}/activate  roll back (or forward) the serving model
//
// Observability (see internal/obs):
//
//	GET  /metrics             Prometheus text-format metrics (mounted when
//	                          core.Options.Metrics is non-nil)
//	GET  /debug/pprof/        net/http/pprof profiles (only with EnablePprof)
//
// Every response carries an X-Request-ID header (propagated from the request
// when the caller set one), and with a configured Logger each request emits
// one structured access-log line keyed by that id.
//
// Model lifecycle: every training run — manual /v1/learn, scheduled retrain,
// or drift-triggered retrain — publishes a new generation into a versioned
// registry. Serving reads (/v1/estimate, /v1/sanity, /v1/influence,
// /v1/model) grab the active generation through one atomic snapshot: they
// never block on training and never observe a half-swapped model. Responses
// carry the generation version that produced them.
//
// Only one generation trains at a time: a /v1/learn issued while another
// training run is in flight fails fast with 409 Conflict instead of queueing
// behind (or racing with) the running generation.
//
// Overload and failure behavior: with MaxInflight set, requests beyond the
// bound are shed with 503 + Retry-After rather than queueing without bound;
// with RequestTimeout set, each request carries a context deadline that
// long-running handlers observe. When retraining fails (including injected
// failures from a fault schedule), queries keep being served from the last
// good generation and /v1/status reports degraded=true — graceful
// degradation rather than an outage.
//
// Privacy note: when the server is created with anonymisation enabled, all
// component, operation, and API names are hashed before entering the model,
// matching the paper's DeepRest-as-a-service threat model.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/anomaly"
	"repro/internal/app"
	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/quality"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Server is the HTTP facade over one DeepRest instance.
type Server struct {
	opts core.Options

	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the service
	// handler. Off by default — profiling endpoints are operator-facing and
	// should not ship on the public listener unless explicitly requested.
	// Set it before the first Handler call.
	EnablePprof bool

	// MaxInflight bounds concurrently admitted API requests. Once the bound
	// is reached further requests are shed immediately with 503 and a
	// Retry-After header instead of queueing without bound. 0 disables
	// admission control. Operator endpoints (/metrics, /debug/pprof) are
	// exempt so the service stays observable under overload. Set before the
	// first Handler call.
	MaxInflight int

	// RequestTimeout bounds each request's wall-clock handling time via its
	// context; long-running handlers (training) observe the deadline at
	// phase boundaries and abandon work cleanly. 0 disables per-request
	// deadlines. Set before the first Handler call.
	RequestTimeout time.Duration

	// Retention bounds the telemetry store to the most recent N windows
	// (ring-buffer eviction; see telemetry.Server.SetRetention). 0 keeps
	// every window forever. Set before the first ingest.
	Retention int

	// EstimateCache sizes the /v1/estimate response cache (entries).
	// 0 uses the default (512); negative disables caching. Set before the
	// first Handler call.
	EstimateCache int

	// PredictBatchWindow bounds the extra wait the estimate batcher spends
	// growing a micro-batch before dispatching one coalesced engine pass
	// (typically 1–2ms; 0 dispatches immediately, coalescing only the
	// requests that arrive while a pass is already executing).
	// PredictBatchMax caps requests per pass (0 = 64). Set before the first
	// Handler call.
	PredictBatchWindow time.Duration
	PredictBatchMax    int

	// ExternalScheduler marks the pipeline as driven by an external
	// scheduler (a fleet's shared training worker pool): the
	// /v1/pipeline/start and /v1/pipeline/stop endpoints refuse with 409
	// instead of spawning a per-tenant background loop that would race the
	// fleet's. Set before the first Handler call.
	ExternalScheduler bool

	// QualityHorizon is the longest shadow-scoring report horizon (see
	// internal/quality); 0 means 24h. QualityThreshold arms the
	// quality-regression retrain gate: a sustained aggregate sMAPE above
	// it (percent, over QualitySustain consecutive windows, default 8)
	// makes the pipeline schedule an early retrain. 0 disables the gate —
	// scoring still runs and /v1/quality still reports. Set before the
	// first Handler call.
	QualityHorizon   time.Duration
	QualityThreshold float64
	QualitySustain   int

	mu    sync.RWMutex
	store *telemetry.Server

	pipe    *pipeline.Pipeline
	quality *quality.Scorer

	estCache       *predCache
	estCacheHits   *obs.Counter
	estCacheMisses *obs.Counter

	batcher        *estBatcher
	batcherOnce    sync.Once
	estDedupHits   *obs.Counter
	estBatches     *obs.Counter
	estBatchedReqs *obs.Counter

	// Observability (all nil-safe no-ops when opts.Metrics / opts.Logger
	// are nil; see withObservability).
	log          *slog.Logger
	httpReqs     *obs.CounterVec
	httpDur      *obs.HistogramVec
	httpInFlight *obs.Gauge
	httpShed     *obs.Counter
	reqPrefix    string
	reqSeq       atomic.Uint64
}

// New returns a service with the given learning options and the default
// continuous-learning configuration. The telemetry store is created on
// first ingest (its window duration comes from the stream header).
func New(opts core.Options) *Server {
	s, err := NewWithConfig(opts, pipeline.DefaultConfig())
	if err != nil {
		// Unreachable: the default pipeline config has no checkpoint
		// directory, the only fallible part of construction.
		panic(err)
	}
	return s
}

// NewWithConfig returns a service with an explicit continuous-learning
// configuration (checkpoint directory, retrain cadence, drift thresholds,
// registry bound).
func NewWithConfig(opts core.Options, pcfg pipeline.Config) (*Server, error) {
	s := &Server{opts: opts, log: opts.Logger, reqPrefix: newRequestPrefix()}
	if m := opts.Metrics; m != nil {
		s.httpReqs = m.CounterVec("deeprest_http_requests_total",
			"HTTP requests served, by endpoint pattern and status code.",
			"endpoint", "code")
		s.httpDur = m.HistogramVec("deeprest_http_request_duration_seconds",
			"HTTP request latency by endpoint pattern.",
			obs.DefBuckets, "endpoint")
		s.httpInFlight = m.Gauge("deeprest_http_in_flight_requests",
			"Requests currently being served.")
		s.httpShed = m.Counter("deeprest_http_shed_total",
			"Requests shed with 503 (admission bound reached) or 429 (per-tenant ingest rate exceeded).")
		s.estCacheHits = m.Counter("deeprest_estimate_cache_hits_total",
			"Estimate requests answered from the prediction cache.")
		s.estCacheMisses = m.Counter("deeprest_estimate_cache_misses_total",
			"Estimate requests that had to run the full synthesize-extract-predict path.")
		s.estDedupHits = m.Counter("deeprest_estimate_cache_dedup_hits_total",
			"Estimate requests answered by joining an identical in-flight computation (singleflight dedup).")
		s.estBatches = m.Counter("deeprest_estimate_batches_total",
			"Coalesced inference passes dispatched by the estimate batcher.")
		s.estBatchedReqs = m.Counter("deeprest_estimate_batched_requests_total",
			"Estimate requests executed through coalesced batcher passes (divide by batches for mean batch size).")
	}
	buildinfo.Register(opts.Metrics)
	// The shadow-scoring regression gate feeds the pipeline's early-retrain
	// decision; the hook indirection keeps quality and pipeline decoupled.
	if pcfg.QualityCheck == nil {
		pcfg.QualityCheck = s.qualityRegressed
	}
	p, err := pipeline.New(opts, pcfg, s.telemetrySource)
	if err != nil {
		return nil, err
	}
	s.pipe = p
	return s, nil
}

// Pipeline exposes the continuous-learning orchestrator, e.g. for the
// daemon to auto-start the loop or recover checkpoints at boot.
func (s *Server) Pipeline() *pipeline.Pipeline { return s.pipe }

// Windows reports the total ingested telemetry window count (0 before the
// first ingest) — the fleet status endpoint reads it without going through
// the tenant's HTTP surface.
func (s *Server) Windows() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.store == nil {
		return 0
	}
	return s.store.NumWindows()
}

// ShedInc counts one shed request against this server's
// deeprest_http_shed_total series. The fleet's per-tenant admission layer
// uses it so 429s it issues on a tenant's behalf land on that tenant's
// counter.
func (s *Server) ShedInc() { s.httpShed.Inc() }

// ShedCount reports how many requests have been shed (503 admission bound
// plus fleet-issued 429s).
func (s *Server) ShedCount() uint64 { return s.httpShed.Value() }

// estBatcher lazily builds the estimate coalescer from the Server's tuning
// fields; the Once makes direct handler invocation (tests) race-free with
// Handler construction.
func (s *Server) estBatcher() *estBatcher {
	s.batcherOnce.Do(func() {
		s.batcher = newEstBatcher(s.PredictBatchWindow, s.PredictBatchMax)
		s.batcher.instrument(s.estDedupHits, s.estBatches, s.estBatchedReqs)
	})
	return s.batcher
}

// telemetrySource adapts the lazily created store for the pipeline.
func (s *Server) telemetrySource() pipeline.Source {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.store == nil {
		return nil
	}
	return s.store
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	if s.estCache == nil && s.EstimateCache >= 0 {
		size := s.EstimateCache
		if size == 0 {
			size = 512
		}
		s.estCache = newPredCache(size)
	}
	s.estBatcher()
	s.initQuality()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/telemetry", s.handleTelemetry)
	mux.HandleFunc("POST /v1/learn", s.handleLearn)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	mux.HandleFunc("POST /v1/predict", s.handleEstimate) // alias
	mux.HandleFunc("POST /v1/sanity", s.handleSanity)
	mux.HandleFunc("GET /v1/influence", s.handleInfluence)
	mux.HandleFunc("GET /v1/model", s.handleModel)
	mux.HandleFunc("POST /v1/pipeline/start", s.handlePipelineStart)
	mux.HandleFunc("POST /v1/pipeline/stop", s.handlePipelineStop)
	mux.HandleFunc("GET /v1/pipeline/status", s.handlePipelineStatus)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("POST /v1/models/{version}/activate", s.handleActivate)
	mux.HandleFunc("GET /v1/quality", s.handleQuality)
	mux.HandleFunc("GET /v1/autoscale/plan", s.handleAutoscalePlan)
	mux.HandleFunc("GET /v1/version", s.handleVersion)
	if s.opts.Metrics != nil {
		mux.Handle("GET /metrics", s.opts.Metrics.Handler())
	}
	if s.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		// Stage tracing is operator-facing like pprof: mounted only on
		// explicit opt-in, and only when a tracer is configured.
		if s.opts.Tracer != nil {
			mux.Handle("GET /debug/spans", s.opts.Tracer.Handler())
		}
	}
	var h http.Handler = mux
	h = s.withDeadline(h)
	h = s.withAdmission(h)
	return s.withObservability(h)
}

// httpError is the uniform error body.
type httpError struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(httpError{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// handleTelemetry ingests a telemetry stream (the interchange format of
// internal/telemetry) and appends its windows to the store.
func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	ctx, span := s.opts.Tracer.Start(r.Context(), "service.ingest")
	defer span.End()
	in, err := telemetry.ImportJSON(r.Body)
	if err != nil {
		span.SetErr(err)
		writeErr(w, http.StatusBadRequest, "ingest: %v", err)
		return
	}
	span.SetWindows(in.NumWindows())

	s.mu.Lock()
	if s.store == nil {
		s.adoptStore(in)
	} else {
		if s.store.WindowSeconds() != in.WindowSeconds() {
			ws, have := in.WindowSeconds(), s.store.WindowSeconds()
			s.mu.Unlock()
			writeErr(w, http.StatusConflict, "window duration %vs does not match existing store (%vs)",
				ws, have)
			return
		}
		n := in.NumWindows()
		traces, _ := in.Traces(0, n)
		metrics, _ := in.Metrics(0, n)
		for i := 0; i < n; i++ {
			s.store.Record(windowResult(traces[i], metrics, i))
		}
	}
	total := s.store.NumWindows()
	s.mu.Unlock()

	// Shadow-score the fresh windows against the active generation (the
	// scorer takes the store's own lock, so s.mu must be released first).
	s.qualityCatchUp(ctx)
	writeJSON(w, map[string]int{"windows": total})
}

// learnRequest controls one training generation.
type learnRequest struct {
	// From and To bound the learning windows; To 0 means "all".
	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"`
	// Pairs optionally restricts the estimation targets
	// ("Component/resource" keys). The restriction sticks: scheduled and
	// drift-triggered retrains train the same pairs.
	Pairs []string `json:"pairs,omitempty"`
}

// handleLearn trains one generation through the pipeline and publishes it.
// It holds no server lock during training: queries keep serving the
// previous generation, and a concurrent learn gets 409 Conflict.
func (s *Server) handleLearn(w http.ResponseWriter, r *http.Request) {
	var req learnRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.RLock()
	windows := 0
	if s.store != nil {
		windows = s.store.NumWindows()
	}
	s.mu.RUnlock()
	if windows == 0 {
		writeErr(w, http.StatusPreconditionFailed, "no telemetry ingested")
		return
	}
	to := req.To
	if to == 0 {
		to = windows
	}
	var pairs []app.Pair
	for _, key := range req.Pairs {
		p, err := app.ParsePair(key)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		pairs = append(pairs, p)
	}
	gen, err := s.pipe.TrainOnceCtx(r.Context(), req.From, to, pairs, "manual")
	switch {
	case errors.Is(err, pipeline.ErrTrainingInFlight):
		writeErr(w, http.StatusConflict, "%v", err)
		return
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		// The request deadline fired (or the client went away) before the
		// generation could publish; the previous generation keeps serving.
		writeErr(w, http.StatusGatewayTimeout, "learn: %v", err)
		return
	case err != nil:
		writeErr(w, http.StatusUnprocessableEntity, "learn: %v", err)
		return
	}
	writeJSON(w, map[string]interface{}{
		"experts":  gen.Experts(),
		"windows":  gen.To - gen.From,
		"features": gen.Model().Space.Dim(),
		"version":  gen.Version,
	})
}

// statusResponse reports the service state.
type statusResponse struct {
	Windows int  `json:"windows"`
	Learned bool `json:"learned"`
	// ResidentWindows and OldestWindow describe the retention ring: how
	// many windows are held in memory and the first absolute index still
	// queryable. They match Windows/0 on an unbounded store.
	ResidentWindows int      `json:"resident_windows"`
	OldestWindow    int      `json:"oldest_window"`
	Experts         []string `json:"experts,omitempty"`
	// Version is the active model generation (0 before the first learn).
	Version int `json:"version,omitempty"`
	// Generations counts the retained registry entries.
	Generations int `json:"generations,omitempty"`
	// Degraded is true while retraining is failing and queries are being
	// answered from the last good generation.
	Degraded bool `json:"degraded,omitempty"`
	// ServerVersion is the build identity of the serving binary.
	ServerVersion string `json:"server_version"`
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	resp := statusResponse{ServerVersion: buildinfo.Version}
	if s.store != nil {
		resp.Windows = s.store.NumWindows()
		resp.ResidentWindows = s.store.ResidentWindows()
		resp.OldestWindow = s.store.OldestWindow()
	}
	s.mu.RUnlock()
	if gen := s.pipe.Active(); gen != nil {
		resp.Learned = true
		resp.Version = gen.Version
		for _, p := range gen.System.Pairs() {
			resp.Experts = append(resp.Experts, p.String())
		}
		sort.Strings(resp.Experts)
	}
	resp.Generations = len(s.pipe.Registry().Generations())
	resp.Degraded = s.pipe.Degraded()
	writeJSON(w, resp)
}

// estimateRequest is a Mode-1 query: hypothetical API traffic as per-window
// request counts per endpoint.
type estimateRequest struct {
	// Windows holds the traffic: one map per scrape window.
	Windows []map[string]int `json:"windows"`
	// WindowsPerDay defaults to the number of windows (single day).
	WindowsPerDay int `json:"windows_per_day,omitempty"`
}

// estimateResponse maps "Component/resource" to the estimate series.
// Version is the model generation that produced the estimates — a single
// atomic snapshot, so the series never mix experts from two generations.
type estimateResponse struct {
	Version   int                       `json:"version"`
	Estimates map[string]estimateSeries `json:"estimates"`
}

type estimateSeries struct {
	Exp  []float64 `json:"exp"`
	Low  []float64 `json:"low"`
	Up   []float64 `json:"up"`
	Unit string    `json:"unit"`
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req estimateRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Windows) == 0 {
		writeErr(w, http.StatusBadRequest, "empty traffic")
		return
	}
	// RCU read: one atomic load pins the generation for the whole query.
	gen := s.pipe.Active()
	if gen == nil {
		writeErr(w, http.StatusPreconditionFailed, "not learned yet")
		return
	}

	// Prediction cache: estimates are deterministic per generation, so an
	// identical request against the same model version can be answered
	// from the marshaled response of the first one. The canonical
	// re-marshal of the decoded request normalises field order and
	// whitespace; the same (version, canon) identity keys singleflight
	// dedup in the batcher below, so it is derived even with caching off.
	canon, _ := json.Marshal(req)
	key := predKey(gen.Version, canon)
	if s.estCache != nil {
		if body, ok := s.estCache.get(key, canon); ok {
			s.estCacheHits.Inc()
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-DeepRest-Cache", "hit")
			_, _ = w.Write(body)
			return
		}
		s.estCacheMisses.Inc()
	}

	s.mu.RLock()
	var ws float64
	if s.store != nil {
		ws = s.store.WindowSeconds()
	}
	s.mu.RUnlock()
	wpd := req.WindowsPerDay
	if wpd == 0 {
		wpd = len(req.Windows)
	}
	traffic := &workload.Traffic{Windows: req.Windows, WindowSeconds: ws, WindowsPerDay: wpd}

	// Cache misses go through the batcher: identical in-flight requests are
	// deduplicated, distinct concurrent ones coalesce into one batched
	// engine pass over the shared worker pool.
	body, err := s.estBatcher().do(r.Context(), gen, traffic, key, canon)
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeErr(w, http.StatusGatewayTimeout, "estimate: %v", err)
		return
	case err != nil:
		writeErr(w, http.StatusUnprocessableEntity, "estimate: %v", err)
		return
	}
	if s.estCache != nil {
		s.estCache.put(key, canon, body)
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

func toEstimateResponse(version int, est map[app.Pair]estimator.Estimate) estimateResponse {
	resp := estimateResponse{Version: version, Estimates: make(map[string]estimateSeries, len(est))}
	for p, e := range est {
		resp.Estimates[p.String()] = estimateSeries{
			Exp: e.Exp, Low: e.Low, Up: e.Up, Unit: p.Resource.Unit(),
		}
	}
	return resp
}

// sanityRequest is a Mode-2 query over a previously ingested window range.
type sanityRequest struct {
	// From and To bound the served period within the store.
	From int `json:"from"`
	To   int `json:"to"`
	// Threshold and MinLen tune the detector (0 = defaults).
	Threshold float64 `json:"threshold,omitempty"`
	MinLen    int     `json:"min_len,omitempty"`
}

// sanityResponse lists detected events.
type sanityResponse struct {
	Version int           `json:"version"`
	Events  []sanityEvent `json:"events"`
}

type sanityEvent struct {
	Component  string            `json:"component"`
	FromWindow int               `json:"from_window"`
	ToWindow   int               `json:"to_window"`
	PeakScore  float64           `json:"peak_score"`
	Deviations map[string]string `json:"deviations"`
}

func (s *Server) handleSanity(w http.ResponseWriter, r *http.Request) {
	var req sanityRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	gen := s.pipe.Active()
	s.mu.RLock()
	store := s.store
	s.mu.RUnlock()
	if gen == nil || store == nil {
		writeErr(w, http.StatusPreconditionFailed, "not learned yet")
		return
	}
	sys := gen.System
	// Serve from the per-window feature cache: each window was extracted
	// once at Record time (or on the first read after a generation swap),
	// so the sanity check never re-walks the stored trace trees.
	series, err := store.Features(gen.Version, sys.Extractor(), req.From, req.To)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	actual := make(map[app.Pair][]float64)
	for _, p := range sys.Pairs() {
		ms, err := store.Metric(p, req.From, req.To)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		actual[p] = ms
	}
	det := anomaly.NewDetector()
	if req.Threshold > 0 {
		det.Threshold = req.Threshold
	}
	if req.MinLen > 0 {
		det.MinLen = req.MinLen
	}
	events, err := sys.SanityCheckVectors(series, actual, det)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "sanity: %v", err)
		return
	}
	resp := sanityResponse{Version: gen.Version, Events: []sanityEvent{}}
	for _, e := range events {
		ev := sanityEvent{
			Component:  e.Component,
			FromWindow: req.From + e.From,
			ToWindow:   req.From + e.To,
			PeakScore:  e.PeakScore,
			Deviations: make(map[string]string, len(e.Deviations)),
		}
		for _, d := range e.Deviations {
			dir := "higher"
			pct := d.Percent
			if pct < 0 {
				dir, pct = "lower", -pct
			}
			ev.Deviations[d.Pair.String()] = fmt.Sprintf("%.1f%% %s than expected", pct, dir)
		}
		resp.Events = append(resp.Events, ev)
	}
	writeJSON(w, resp)
}

func (s *Server) handleInfluence(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("pair")
	if key == "" {
		writeErr(w, http.StatusBadRequest, "missing ?pair=Component/resource")
		return
	}
	p, err := app.ParsePair(key)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	gen := s.pipe.Active()
	s.mu.RLock()
	store := s.store
	s.mu.RUnlock()
	if gen == nil || store == nil {
		writeErr(w, http.StatusPreconditionFailed, "not learned yet")
		return
	}
	windows, err := store.Traces(store.OldestWindow(), store.NumWindows())
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	infl, err := gen.Model().APIInfluence(p, windows)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "influence: %v", err)
		return
	}
	writeJSON(w, map[string]map[string]float64{"influence": infl})
}

func (s *Server) handleModel(w http.ResponseWriter, _ *http.Request) {
	gen := s.pipe.Active()
	if gen == nil {
		writeErr(w, http.StatusPreconditionFailed, "not learned yet")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-DeepRest-Model-Version", strconv.Itoa(gen.Version))
	if err := gen.System.Save(w); err != nil {
		// Headers are already out; nothing more we can do.
		return
	}
}

// --- continuous-learning endpoints ---

func (s *Server) handlePipelineStart(w http.ResponseWriter, _ *http.Request) {
	if s.ExternalScheduler {
		writeErr(w, http.StatusConflict, "retraining is driven by the fleet scheduler; per-tenant loops are disabled")
		return
	}
	if err := s.pipe.Start(); err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, s.pipe.Status())
}

// handlePipelineStop stops the loop; it waits for an in-flight generation
// to finish, so the response means "no further training will happen".
func (s *Server) handlePipelineStop(w http.ResponseWriter, _ *http.Request) {
	if s.ExternalScheduler {
		writeErr(w, http.StatusConflict, "retraining is driven by the fleet scheduler; per-tenant loops are disabled")
		return
	}
	s.pipe.Stop()
	writeJSON(w, s.pipe.Status())
}

func (s *Server) handlePipelineStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.pipe.Status())
}

// modelInfo describes one retained generation.
type modelInfo struct {
	Version    int       `json:"version"`
	Trigger    string    `json:"trigger"`
	FromWindow int       `json:"from_window"`
	ToWindow   int       `json:"to_window"`
	Experts    int       `json:"experts"`
	Warm       bool      `json:"warm_started"`
	TrainedAt  time.Time `json:"trained_at"`
	Active     bool      `json:"active"`
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	active := s.pipe.Active()
	gens := s.pipe.Registry().Generations()
	out := make([]modelInfo, 0, len(gens))
	for _, g := range gens {
		out = append(out, modelInfo{
			Version: g.Version, Trigger: g.Trigger,
			FromWindow: g.From, ToWindow: g.To,
			Experts: g.Experts(), Warm: g.Warm, TrainedAt: g.TrainedAt,
			Active: active != nil && g.Version == active.Version,
		})
	}
	writeJSON(w, map[string]interface{}{"models": out})
}

func (s *Server) handleActivate(w http.ResponseWriter, r *http.Request) {
	version, err := strconv.Atoi(r.PathValue("version"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad version %q", r.PathValue("version"))
		return
	}
	// Refuse to swap mid-learn: the in-flight generation will publish (and
	// activate) momentarily, and racing an explicit rollback against it
	// gives a serving model nobody asked for.
	if s.pipe.TrainingInFlight() {
		writeErr(w, http.StatusConflict, "a training generation is in flight; retry after it publishes")
		return
	}
	gen, err := s.pipe.Registry().Activate(version)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	// Rollback (or roll-forward) changes the serving feature space; point
	// Record-time extraction at it so the cache follows the active model.
	s.mu.RLock()
	store := s.store
	s.mu.RUnlock()
	if store != nil {
		store.SetExtractor(gen.Version, gen.System.Extractor())
	}
	writeJSON(w, map[string]int{"active": gen.Version})
}

// handleVersion reports the build identity of the serving binary.
func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]string{
		"version":    buildinfo.Version,
		"revision":   buildinfo.Revision(),
		"go_version": buildinfo.GoVersion(),
	})
}

// windowResult reassembles one window of an imported store for appending.
func windowResult(batches []trace.Batch, metrics map[app.Pair][]float64, i int) sim.WindowResult {
	wr := sim.WindowResult{Batches: batches, Usage: make(sim.Usage, len(metrics))}
	for p, series := range metrics {
		wr.Usage[p] = series[i]
	}
	return wr
}

// decodeBody decodes a JSON request body, tolerating an empty body as the
// zero value.
func decodeBody(r *http.Request, v interface{}) error {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil && err.Error() != "EOF" {
		return fmt.Errorf("decode request: %w", err)
	}
	return nil
}
