// Package service exposes DeepRest over HTTP — the deployment mode the
// paper envisions ("DeepRest can be deployed in on-premises clusters or a
// cloud as a service to serve any hosted application", §1). The API is
// deliberately small and JSON-only:
//
//	POST /v1/telemetry   ingest a telemetry stream (telemetry JSON format)
//	POST /v1/learn       run the application learning phase over ingested windows
//	GET  /v1/status      learning state, window counts, expert inventory
//	POST /v1/estimate    Mode 1: resources for hypothetical API traffic
//	POST /v1/sanity      Mode 2: sanity-check a served period
//	GET  /v1/influence   learned API→resource dependencies for one pair
//	GET  /v1/model       download the serialized model
//
// Privacy note: when the server is created with anonymisation enabled, all
// component, operation, and API names are hashed before entering the model,
// matching the paper's DeepRest-as-a-service threat model.
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"repro/internal/anomaly"
	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Server is the HTTP facade over one DeepRest instance.
type Server struct {
	opts core.Options

	mu     sync.RWMutex
	store  *telemetry.Server
	system *core.System
}

// New returns a service with the given learning options. The telemetry
// store is created on first ingest (its window duration comes from the
// stream header).
func New(opts core.Options) *Server {
	return &Server{opts: opts}
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/telemetry", s.handleTelemetry)
	mux.HandleFunc("POST /v1/learn", s.handleLearn)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	mux.HandleFunc("POST /v1/sanity", s.handleSanity)
	mux.HandleFunc("GET /v1/influence", s.handleInfluence)
	mux.HandleFunc("GET /v1/model", s.handleModel)
	return mux
}

// httpError is the uniform error body.
type httpError struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(httpError{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// handleTelemetry ingests a telemetry stream (the interchange format of
// internal/telemetry) and appends its windows to the store.
func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	in, err := telemetry.ImportJSON(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "ingest: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store == nil {
		s.store = in
	} else {
		if s.store.WindowSeconds() != in.WindowSeconds() {
			writeErr(w, http.StatusConflict, "window duration %vs does not match existing store (%vs)",
				in.WindowSeconds(), s.store.WindowSeconds())
			return
		}
		n := in.NumWindows()
		traces, _ := in.Traces(0, n)
		metrics, _ := in.Metrics(0, n)
		for i := 0; i < n; i++ {
			s.store.Record(windowResult(traces[i], metrics, i))
		}
	}
	writeJSON(w, map[string]int{"windows": s.store.NumWindows()})
}

// learnRequest controls the learning phase.
type learnRequest struct {
	// From and To bound the learning windows; To 0 means "all".
	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"`
	// Pairs optionally restricts the estimation targets
	// ("Component/resource" keys).
	Pairs []string `json:"pairs,omitempty"`
}

func (s *Server) handleLearn(w http.ResponseWriter, r *http.Request) {
	var req learnRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store == nil || s.store.NumWindows() == 0 {
		writeErr(w, http.StatusPreconditionFailed, "no telemetry ingested")
		return
	}
	to := req.To
	if to == 0 {
		to = s.store.NumWindows()
	}
	opts := s.opts
	for _, key := range req.Pairs {
		p, err := app.ParsePair(key)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		opts.Pairs = append(opts.Pairs, p)
	}
	sys, err := core.Learn(s.store, req.From, to, opts)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "learn: %v", err)
		return
	}
	s.system = sys
	writeJSON(w, map[string]interface{}{
		"experts":  len(sys.Pairs()),
		"windows":  to - req.From,
		"features": sys.Model().Space.Dim(),
	})
}

// statusResponse reports the service state.
type statusResponse struct {
	Windows int      `json:"windows"`
	Learned bool     `json:"learned"`
	Experts []string `json:"experts,omitempty"`
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	resp := statusResponse{}
	if s.store != nil {
		resp.Windows = s.store.NumWindows()
	}
	if s.system != nil {
		resp.Learned = true
		for _, p := range s.system.Pairs() {
			resp.Experts = append(resp.Experts, p.String())
		}
		sort.Strings(resp.Experts)
	}
	writeJSON(w, resp)
}

// estimateRequest is a Mode-1 query: hypothetical API traffic as per-window
// request counts per endpoint.
type estimateRequest struct {
	// Windows holds the traffic: one map per scrape window.
	Windows []map[string]int `json:"windows"`
	// WindowsPerDay defaults to the number of windows (single day).
	WindowsPerDay int `json:"windows_per_day,omitempty"`
}

// estimateResponse maps "Component/resource" to the estimate series.
type estimateResponse struct {
	Estimates map[string]estimateSeries `json:"estimates"`
}

type estimateSeries struct {
	Exp  []float64 `json:"exp"`
	Low  []float64 `json:"low"`
	Up   []float64 `json:"up"`
	Unit string    `json:"unit"`
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req estimateRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Windows) == 0 {
		writeErr(w, http.StatusBadRequest, "empty traffic")
		return
	}
	s.mu.RLock()
	sys := s.system
	var ws float64
	if s.store != nil {
		ws = s.store.WindowSeconds()
	}
	s.mu.RUnlock()
	if sys == nil {
		writeErr(w, http.StatusPreconditionFailed, "not learned yet")
		return
	}
	wpd := req.WindowsPerDay
	if wpd == 0 {
		wpd = len(req.Windows)
	}
	traffic := &workload.Traffic{Windows: req.Windows, WindowSeconds: ws, WindowsPerDay: wpd}
	est, err := sys.EstimateTraffic(traffic)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "estimate: %v", err)
		return
	}
	writeJSON(w, toEstimateResponse(est))
}

func toEstimateResponse(est map[app.Pair]estimator.Estimate) estimateResponse {
	resp := estimateResponse{Estimates: make(map[string]estimateSeries, len(est))}
	for p, e := range est {
		resp.Estimates[p.String()] = estimateSeries{
			Exp: e.Exp, Low: e.Low, Up: e.Up, Unit: p.Resource.Unit(),
		}
	}
	return resp
}

// sanityRequest is a Mode-2 query over a previously ingested window range.
type sanityRequest struct {
	// From and To bound the served period within the store.
	From int `json:"from"`
	To   int `json:"to"`
	// Threshold and MinLen tune the detector (0 = defaults).
	Threshold float64 `json:"threshold,omitempty"`
	MinLen    int     `json:"min_len,omitempty"`
}

// sanityResponse lists detected events.
type sanityResponse struct {
	Events []sanityEvent `json:"events"`
}

type sanityEvent struct {
	Component  string            `json:"component"`
	FromWindow int               `json:"from_window"`
	ToWindow   int               `json:"to_window"`
	PeakScore  float64           `json:"peak_score"`
	Deviations map[string]string `json:"deviations"`
}

func (s *Server) handleSanity(w http.ResponseWriter, r *http.Request) {
	var req sanityRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.RLock()
	sys := s.system
	store := s.store
	s.mu.RUnlock()
	if sys == nil || store == nil {
		writeErr(w, http.StatusPreconditionFailed, "not learned yet")
		return
	}
	windows, err := store.Traces(req.From, req.To)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	actual := make(map[app.Pair][]float64)
	for _, p := range sys.Pairs() {
		series, err := store.Metric(p, req.From, req.To)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		actual[p] = series
	}
	det := anomaly.NewDetector()
	if req.Threshold > 0 {
		det.Threshold = req.Threshold
	}
	if req.MinLen > 0 {
		det.MinLen = req.MinLen
	}
	events, err := sys.SanityCheck(windows, actual, det)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "sanity: %v", err)
		return
	}
	resp := sanityResponse{Events: []sanityEvent{}}
	for _, e := range events {
		ev := sanityEvent{
			Component:  e.Component,
			FromWindow: req.From + e.From,
			ToWindow:   req.From + e.To,
			PeakScore:  e.PeakScore,
			Deviations: make(map[string]string, len(e.Deviations)),
		}
		for _, d := range e.Deviations {
			dir := "higher"
			pct := d.Percent
			if pct < 0 {
				dir, pct = "lower", -pct
			}
			ev.Deviations[d.Pair.String()] = fmt.Sprintf("%.1f%% %s than expected", pct, dir)
		}
		resp.Events = append(resp.Events, ev)
	}
	writeJSON(w, resp)
}

func (s *Server) handleInfluence(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("pair")
	if key == "" {
		writeErr(w, http.StatusBadRequest, "missing ?pair=Component/resource")
		return
	}
	p, err := app.ParsePair(key)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.RLock()
	sys := s.system
	store := s.store
	s.mu.RUnlock()
	if sys == nil || store == nil {
		writeErr(w, http.StatusPreconditionFailed, "not learned yet")
		return
	}
	windows, err := store.Traces(0, store.NumWindows())
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	infl, err := sys.Model().APIInfluence(p, windows)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "influence: %v", err)
		return
	}
	writeJSON(w, map[string]map[string]float64{"influence": infl})
}

func (s *Server) handleModel(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	sys := s.system
	s.mu.RUnlock()
	if sys == nil {
		writeErr(w, http.StatusPreconditionFailed, "not learned yet")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := sys.Save(w); err != nil {
		// Headers are already out; nothing more we can do.
		return
	}
}

// windowResult reassembles one window of an imported store for appending.
func windowResult(batches []trace.Batch, metrics map[app.Pair][]float64, i int) sim.WindowResult {
	wr := sim.WindowResult{Batches: batches, Usage: make(sim.Usage, len(metrics))}
	for p, series := range metrics {
		wr.Usage[p] = series[i]
	}
	return wr
}

// decodeBody decodes a JSON request body, tolerating an empty body as the
// zero value.
func decodeBody(r *http.Request, v interface{}) error {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil && err.Error() != "EOF" {
		return fmt.Errorf("decode request: %w", err)
	}
	return nil
}
