package service

import (
	"net/http"
	"strconv"

	"repro/internal/autoscale"
)

// planAllocation is one reservation of the returned schedule; window
// indices are absolute (the store's indexing), so a caller can line the
// plan up against /v1/sanity ranges or its own scrape timeline.
type planAllocation struct {
	FromWindow int     `json:"from_window"`
	ToWindow   int     `json:"to_window"`
	Amount     float64 `json:"amount"`
}

type planResponse struct {
	Version         int                         `json:"version"`
	FromWindow      int                         `json:"from_window"`
	ToWindow        int                         `json:"to_window"`
	IntervalWindows int                         `json:"interval_windows"`
	Headroom        float64                     `json:"headroom"`
	Plans           map[string][]planAllocation `json:"plans"`
}

// handleAutoscalePlan serves a read-only scaling schedule built from the
// most recent telemetry: the active generation's expected utilization for
// the trailing window range, planned with the shared autoscale rules
// (interval peak of the upper confidence bound, plus headroom, with
// hysteresis). It is advisory — the server actuates nothing — and rides the
// per-window feature cache plus the tape-free engine like every other
// serving read.
//
// Query parameters: windows (trailing range length, default 96), interval
// (reservation granularity in windows, default 12), headroom (fractional
// margin, default 0.10).
func (s *Server) handleAutoscalePlan(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	windows, err := intParam(q.Get("windows"), 96)
	if err != nil || windows <= 0 {
		writeErr(w, http.StatusBadRequest, "bad windows parameter %q", q.Get("windows"))
		return
	}
	interval, err := intParam(q.Get("interval"), 12)
	if err != nil || interval <= 0 {
		writeErr(w, http.StatusBadRequest, "bad interval parameter %q", q.Get("interval"))
		return
	}
	cfg := autoscale.DefaultConfig()
	cfg.IntervalWindows = interval
	if h := q.Get("headroom"); h != "" {
		v, err := strconv.ParseFloat(h, 64)
		if err != nil || v < 0 {
			writeErr(w, http.StatusBadRequest, "bad headroom parameter %q", h)
			return
		}
		cfg.Headroom = v
	}

	gen := s.pipe.Active()
	s.mu.RLock()
	store := s.store
	s.mu.RUnlock()
	if gen == nil || store == nil {
		writeErr(w, http.StatusPreconditionFailed, "not learned yet")
		return
	}
	sys := gen.System

	to := store.NumWindows()
	from := to - windows
	if oldest := store.OldestWindow(); from < oldest {
		from = oldest
	}
	if from >= to {
		writeErr(w, http.StatusPreconditionFailed, "no telemetry windows to plan from")
		return
	}
	series, err := store.Features(gen.Version, sys.Extractor(), from, to)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	est, err := sys.ExpectedUtilizationVectors(series)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "estimate: %v", err)
		return
	}
	sched, err := autoscale.Plan(est, cfg)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}

	resp := planResponse{
		Version:         gen.Version,
		FromWindow:      from,
		ToWindow:        to,
		IntervalWindows: cfg.IntervalWindows,
		Headroom:        cfg.Headroom,
		Plans:           make(map[string][]planAllocation, len(sched)),
	}
	for p, allocs := range sched {
		out := make([]planAllocation, len(allocs))
		for i, a := range allocs {
			out[i] = planAllocation{FromWindow: from + a.From, ToWindow: from + a.To, Amount: a.Amount}
		}
		resp.Plans[p.String()] = out
	}
	writeJSON(w, resp)
}

// intParam parses an optional integer query parameter.
func intParam(raw string, def int) (int, error) {
	if raw == "" {
		return def, nil
	}
	return strconv.Atoi(raw)
}
