package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/faults"
	"repro/internal/pipeline"
)

// TestPredictRaceUnderGenerationSwaps is the race wall: many goroutines
// hammer /v1/predict and the active Model.Predict directly while the
// pipeline publishes fresh generations — some succeeding, some failing from
// an injected fault schedule — and rollbacks flip the active pointer. Run
// under -race (make check does), this proves the RCU read side: queries
// never block on training, never observe a half-swapped model, and keep
// succeeding through injected retrain failures.
func TestPredictRaceUnderGenerationSwaps(t *testing.T) {
	pcfg := pipeline.DefaultConfig()
	// Roughly every other training attempt fails, deterministically.
	pcfg.Faults = faults.NewSchedule(faults.MustParse("seed=17;retrainfail:prob=0.5,from=2"))
	s := newFaultService(t, pcfg)
	h := s.Handler()

	if rec := do(t, h, "POST", "/v1/telemetry", telemetryBody(t, 1, 30, 64)); rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "POST", "/v1/learn", bytes.NewBufferString(`{"pairs":["Service/cpu"]}`)); rec.Code != http.StatusOK {
		t.Fatalf("learn = %d: %s", rec.Code, rec.Body)
	}
	store := s.telemetrySource()
	windows, err := store.Traces(0, store.NumWindows())
	if err != nil {
		t.Fatal(err)
	}

	const (
		readers  = 8
		queries  = 40
		retrains = 12
	)
	var served atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: retrains (half of which fail by injection) and rollbacks.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < retrains; i++ {
			_, err := s.Pipeline().TrainOnce(0, 0, nil, "manual")
			if err != nil && !isInjected(err) {
				t.Errorf("retrain %d: %v", i, err)
				return
			}
			if gens := s.Pipeline().Registry().Generations(); len(gens) > 1 && i%3 == 2 {
				if _, err := s.Pipeline().Registry().Activate(gens[0].Version); err != nil {
					t.Errorf("rollback: %v", err)
					return
				}
			}
		}
	}()

	// Readers: HTTP predictions and direct model reads, concurrently with
	// the swaps above.
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					if i >= queries {
						return
					}
				default:
				}
				if g%2 == 0 {
					rec := do(t, h, "POST", "/v1/predict", bytes.NewBufferString(predictBody))
					if rec.Code != http.StatusOK {
						t.Errorf("predict = %d: %s", rec.Code, rec.Body)
						return
					}
					var resp estimateResponse
					if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
						t.Error(err)
						return
					}
					if resp.Version < 1 {
						t.Errorf("predict served version %d", resp.Version)
						return
					}
				} else {
					gen := s.Pipeline().Active()
					if gen == nil {
						t.Error("active generation vanished")
						return
					}
					if _, err := gen.Model().Predict(windows); err != nil {
						t.Errorf("Predict: %v", err)
						return
					}
				}
				served.Add(1)
			}
		}(g)
	}
	wg.Wait()

	if served.Load() < readers*queries {
		t.Fatalf("served %d queries, want at least %d", served.Load(), readers*queries)
	}
	// The injected schedule must have actually exercised the failure path.
	failed := false
	for a := 2; a < 2+retrains; a++ {
		if pcfg.Faults.FailTraining(a) {
			failed = true
		}
	}
	if !failed {
		t.Fatal("fault schedule never injected a failure; tighten the spec")
	}
}

func isInjected(err error) bool {
	return errors.Is(err, pipeline.ErrFaultInjected)
}
