package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/faults"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// TestPredictRaceUnderGenerationSwaps is the race wall: many goroutines
// hammer /v1/predict and the active Model.Predict directly while the
// pipeline publishes fresh generations — some succeeding, some failing from
// an injected fault schedule — and rollbacks flip the active pointer. Run
// under -race (make check does), this proves the RCU read side: queries
// never block on training, never observe a half-swapped model, and keep
// succeeding through injected retrain failures.
func TestPredictRaceUnderGenerationSwaps(t *testing.T) {
	pcfg := pipeline.DefaultConfig()
	// Roughly every other training attempt fails, deterministically.
	pcfg.Faults = faults.NewSchedule(faults.MustParse("seed=17;retrainfail:prob=0.5,from=2"))
	s := newFaultService(t, pcfg)
	h := s.Handler()

	if rec := do(t, h, "POST", "/v1/telemetry", telemetryBody(t, 1, 30, 64)); rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "POST", "/v1/learn", bytes.NewBufferString(`{"pairs":["Service/cpu"]}`)); rec.Code != http.StatusOK {
		t.Fatalf("learn = %d: %s", rec.Code, rec.Body)
	}
	store := s.telemetrySource()
	windows, err := store.Traces(0, store.NumWindows())
	if err != nil {
		t.Fatal(err)
	}

	const (
		readers  = 8
		queries  = 40
		retrains = 12
	)
	var served atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: retrains (half of which fail by injection) and rollbacks.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < retrains; i++ {
			_, err := s.Pipeline().TrainOnce(0, 0, nil, "manual")
			if err != nil && !isInjected(err) {
				t.Errorf("retrain %d: %v", i, err)
				return
			}
			if gens := s.Pipeline().Registry().Generations(); len(gens) > 1 && i%3 == 2 {
				if _, err := s.Pipeline().Registry().Activate(gens[0].Version); err != nil {
					t.Errorf("rollback: %v", err)
					return
				}
			}
		}
	}()

	// Readers: HTTP predictions (cache → batcher → compiled engine), direct
	// model reads, and direct engine-path estimates, concurrently with the
	// swaps above. The rotating request bodies defeat the response cache so
	// the batcher and engine stay on the hot path across generation flips,
	// and retiring generations release their engine snapshots mid-read.
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					if i >= queries {
						return
					}
				default:
				}
				switch g % 3 {
				case 0:
					body := fmt.Sprintf(`{"windows":[{"/read":%d,"/write":4},{"/read":%d,"/write":6}]}`,
						10+i%7, 20+i%7)
					rec := do(t, h, "POST", "/v1/predict", bytes.NewBufferString(body))
					if rec.Code != http.StatusOK {
						t.Errorf("predict = %d: %s", rec.Code, rec.Body)
						return
					}
					var resp estimateResponse
					if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
						t.Error(err)
						return
					}
					if resp.Version < 1 {
						t.Errorf("predict served version %d", resp.Version)
						return
					}
				case 1:
					gen := s.Pipeline().Active()
					if gen == nil {
						t.Error("active generation vanished")
						return
					}
					if _, err := gen.Model().Predict(windows); err != nil {
						t.Errorf("Predict: %v", err)
						return
					}
				default:
					// Engine path: EstimateTraffic prefers the generation's
					// compiled snapshot and must keep answering through
					// activates, retirements (engine released), and swaps.
					gen := s.Pipeline().Active()
					if gen == nil {
						t.Error("active generation vanished")
						return
					}
					traffic := &workload.Traffic{
						Windows:       []map[string]int{{"/read": 10 + i%5, "/write": 4}},
						WindowSeconds: 60,
						WindowsPerDay: 1,
					}
					if _, err := gen.System.EstimateTraffic(traffic); err != nil {
						t.Errorf("EstimateTraffic: %v", err)
						return
					}
				}
				served.Add(1)
			}
		}(g)
	}
	wg.Wait()

	if served.Load() < readers*queries {
		t.Fatalf("served %d queries, want at least %d", served.Load(), readers*queries)
	}
	// The injected schedule must have actually exercised the failure path.
	failed := false
	for a := 2; a < 2+retrains; a++ {
		if pcfg.Faults.FailTraining(a) {
			failed = true
		}
	}
	if !failed {
		t.Fatal("fault schedule never injected a failure; tighten the spec")
	}
}

func isInjected(err error) bool {
	return errors.Is(err, pipeline.ErrFaultInjected)
}
