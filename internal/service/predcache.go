package service

import (
	"hash/fnv"
	"strconv"
	"sync"
)

// predCache memoises marshaled /v1/estimate responses keyed by
// (model generation, canonical request). Estimates are deterministic given
// a generation — trace synthesis is seeded and inference is pure — so
// repeated identical queries (dashboards refreshing a capacity plan,
// autoscalers polling the same traffic hypothesis) can short-circuit the
// whole synthesize→extract→predict path. Keys embed the generation version,
// so a publish or rollback naturally invalidates: stale entries stop being
// referenced and age out of the FIFO.
type predCache struct {
	mu  sync.Mutex
	cap int
	// entries maps the request hash to the stored request (collision
	// guard) and the marshaled response body.
	entries map[uint64]predEntry
	order   []uint64 // insertion order for FIFO eviction
}

type predEntry struct {
	req  string
	body []byte
}

func newPredCache(capacity int) *predCache {
	return &predCache{cap: capacity, entries: make(map[uint64]predEntry, capacity)}
}

// predKey hashes a generation version and a canonical (re-marshaled)
// request body. It is shared by the response cache and the singleflight
// batcher so the two layers agree on request identity.
func predKey(version int, req []byte) uint64 {
	h := fnv.New64a()
	h.Write([]byte(strconv.Itoa(version)))
	h.Write([]byte{0})
	h.Write(req)
	return h.Sum64()
}

// key hashes the generation version and the canonical (re-marshaled)
// request body.
func (c *predCache) key(version int, req []byte) uint64 {
	return predKey(version, req)
}

// get returns the cached response body for the key, verifying the stored
// request bytes so a hash collision can never serve the wrong estimate.
func (c *predCache) get(key uint64, req []byte) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || e.req != string(req) {
		return nil, false
	}
	return e.body, true
}

// put stores a response body, evicting the oldest entry once capacity is
// reached.
func (c *predCache) put(key uint64, req, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		c.entries[key] = predEntry{req: string(req), body: body}
		return
	}
	for len(c.entries) >= c.cap && len(c.order) > 0 {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
	c.entries[key] = predEntry{req: string(req), body: body}
	c.order = append(c.order, key)
}

// len reports the number of cached responses.
func (c *predCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
