package service

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"repro/internal/app"
	"repro/internal/estimator"
	"repro/internal/features"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// estBatcher coalesces concurrent /v1/estimate cache misses into group
// commits. Two mechanisms stack:
//
//   - Singleflight dedup: an arriving request identical to one already in
//     flight (same generation, same canonical body) joins that call instead
//     of computing independently — under a thundering herd of identical
//     queries only the first one pays.
//   - Micro-batching: distinct requests arriving while a pass is executing
//     (plus, optionally, a bounded wait window) are dispatched as ONE
//     engine pass whose (request, expert) tasks fan across the shared
//     bounded worker pool — instead of every request spawning its own
//     per-expert goroutines.
//
// Each call pins its generation at submit time, so a batch that straddles a
// model swap simply splits into per-generation groups; a response can never
// mix experts from two generations.
type estBatcher struct {
	window   time.Duration // bounded extra wait to grow a batch (0: dispatch immediately)
	maxBatch int           // cap on requests per engine pass

	mu       sync.Mutex
	pending  []*estCall
	inflight bool
	calls    map[uint64]*estCall // in-flight singleflight index

	dedupHits   *obs.Counter
	batches     *obs.Counter
	batchedReqs *obs.Counter
}

// estCall is one coalesced computation; waiters block on done.
type estCall struct {
	key     uint64
	canon   string
	gen     *pipeline.Generation
	traffic *workload.Traffic
	done    chan struct{}
	body    []byte // marshaled response (with trailing newline) on success
	err     error
}

func newEstBatcher(window time.Duration, maxBatch int) *estBatcher {
	if maxBatch <= 0 {
		maxBatch = 64
	}
	return &estBatcher{window: window, maxBatch: maxBatch, calls: make(map[uint64]*estCall)}
}

// instrument attaches the batcher's counters (nil-safe no-ops otherwise).
func (b *estBatcher) instrument(dedup, batches, batched *obs.Counter) {
	b.dedupHits, b.batches, b.batchedReqs = dedup, batches, batched
}

// do computes (or joins) the estimate for one request and returns the
// marshaled response body. ctx bounds only this caller's wait: an abandoned
// call still completes so joiners and the response cache get their result.
func (b *estBatcher) do(ctx context.Context, gen *pipeline.Generation, traffic *workload.Traffic, key uint64, canon []byte) ([]byte, error) {
	b.mu.Lock()
	if c, ok := b.calls[key]; ok && c.canon == string(canon) && c.gen == gen {
		b.dedupHits.Inc()
		b.mu.Unlock()
		return c.wait(ctx)
	}
	c := &estCall{key: key, canon: string(canon), gen: gen, traffic: traffic, done: make(chan struct{})}
	b.calls[key] = c
	b.pending = append(b.pending, c)
	start := !b.inflight
	if start {
		b.inflight = true
	}
	b.mu.Unlock()
	if start {
		go b.loop()
	}
	return c.wait(ctx)
}

func (c *estCall) wait(ctx context.Context) ([]byte, error) {
	select {
	case <-c.done:
		return c.body, c.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// loop is the group-commit dispatcher: it drains pending in batches until
// none remain, then exits. With window == 0 the first request of a burst
// dispatches immediately and followers coalesce behind the executing pass.
func (b *estBatcher) loop() {
	for {
		if b.window > 0 {
			time.Sleep(b.window)
		}
		b.mu.Lock()
		n := len(b.pending)
		if n == 0 {
			b.inflight = false
			b.mu.Unlock()
			return
		}
		if n > b.maxBatch {
			n = b.maxBatch
		}
		batch := make([]*estCall, n)
		copy(batch, b.pending)
		rest := copy(b.pending, b.pending[n:])
		for i := rest; i < len(b.pending); i++ {
			b.pending[i] = nil
		}
		b.pending = b.pending[:rest]
		b.mu.Unlock()
		b.exec(batch)
	}
}

func (b *estBatcher) exec(batch []*estCall) {
	b.batches.Inc()
	b.batchedReqs.Add(uint64(len(batch)))
	// A swap mid-burst splits the batch per pinned generation.
	groups := make(map[*pipeline.Generation][]*estCall, 1)
	for _, c := range batch {
		groups[c.gen] = append(groups[c.gen], c)
	}
	for gen, group := range groups {
		b.execGroup(gen, group)
	}
}

func (b *estBatcher) execGroup(gen *pipeline.Generation, group []*estCall) {
	eng := gen.System.Engine()
	if eng == nil {
		// Tape-path generation (engine compile refused, or the snapshot was
		// released on retire): no batched pass, but dedup still applied.
		for _, c := range group {
			est, err := gen.System.EstimateTraffic(c.traffic)
			b.finish(c, est, err)
		}
		return
	}
	series := make([][]features.Vector, 0, len(group))
	ok := make([]*estCall, 0, len(group))
	for _, c := range group {
		sv, err := gen.System.SynthesizeFeatures(c.traffic)
		if err != nil {
			b.finish(c, nil, err)
			continue
		}
		series = append(series, sv)
		ok = append(ok, c)
	}
	if len(ok) == 0 {
		return
	}
	ests, err := eng.PredictBatch(series)
	if err != nil {
		for _, c := range ok {
			est, err := gen.System.EstimateTraffic(c.traffic)
			b.finish(c, est, err)
		}
		return
	}
	for i, c := range ok {
		b.finish(c, ests[i], nil)
	}
}

// finish marshals the result, retires the singleflight entry, and releases
// every waiter.
func (b *estBatcher) finish(c *estCall, est map[app.Pair]estimator.Estimate, err error) {
	if err != nil {
		c.err = err
	} else {
		body, merr := json.Marshal(toEstimateResponse(c.gen.Version, est))
		if merr != nil {
			c.err = merr
		} else {
			c.body = append(body, '\n')
		}
	}
	b.mu.Lock()
	if b.calls[c.key] == c {
		delete(b.calls, c.key)
	}
	b.mu.Unlock()
	close(c.done)
}
