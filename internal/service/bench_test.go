package service

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
	"repro/internal/testutil"
)

// nopRW discards the response; the benchmark measures the middleware, not
// httptest's recorder bookkeeping.
type nopRW struct{ h http.Header }

func (w nopRW) Header() http.Header         { return w.h }
func (w nopRW) Write(b []byte) (int, error) { return len(b), nil }
func (w nopRW) WriteHeader(int)             {}

// benchHandler wraps a no-op inner handler in the observability middleware,
// so the measured time is purely the per-request instrumentation cost. The
// budget is <1µs/request on top of routing (see ISSUE/DESIGN).
func benchHandler(b *testing.B, instrumented bool) http.Handler {
	b.Helper()
	opts := quickServiceOpts()
	if instrumented {
		opts.Metrics = obs.NewRegistry()
	}
	s, err := NewWithConfig(opts, pipeline.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	return s.withObservability(inner)
}

func benchMiddleware(b *testing.B, instrumented bool) {
	h := benchHandler(b, instrumented)
	req := httptest.NewRequest("GET", "/v1/status", nil)
	w := nopRW{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(w, req)
	}
}

// BenchmarkHandlerBaseline measures the bare inner handler: subtract it from
// the middleware numbers to read the per-request instrumentation overhead.
func BenchmarkHandlerBaseline(b *testing.B) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	req := httptest.NewRequest("GET", "/v1/status", nil)
	w := nopRW{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inner.ServeHTTP(w, req)
	}
}

func BenchmarkMiddlewareUninstrumented(b *testing.B) { benchMiddleware(b, false) }
func BenchmarkMiddlewareInstrumented(b *testing.B)   { benchMiddleware(b, true) }

// benchLearnedService trains one quick generation so estimate benchmarks
// run against a live model.
func benchLearnedService(b *testing.B) http.Handler {
	b.Helper()
	s, err := NewWithConfig(quickServiceOpts(), pipeline.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()
	_, _, run := testutil.ToyTelemetry(b, 1, 30, 91)
	store := telemetry.NewServer(run.WindowSeconds)
	store.RecordRun(run)
	var buf bytes.Buffer
	if err := store.ExportJSON(&buf); err != nil {
		b.Fatal(err)
	}
	post := func(path string, body *bytes.Buffer) {
		req := httptest.NewRequest("POST", path, body)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("%s = %d: %s", path, rec.Code, rec.Body)
		}
	}
	post("/v1/telemetry", &buf)
	post("/v1/learn", bytes.NewBufferString(`{}`))
	return h
}

// BenchmarkEstimateWarm repeats one identical /v1/estimate: after the first
// iteration every request is a prediction-cache hit, skipping trace
// synthesis, feature extraction, and inference entirely.
func BenchmarkEstimateWarm(b *testing.B) {
	h := benchLearnedService(b)
	body := []byte(`{"windows":[{"/read":10},{"/read":25},{"/read":40}]}`)
	w := nopRW{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/estimate", bytes.NewReader(body))
		h.ServeHTTP(w, req)
	}
}

// BenchmarkEstimateCold sends a distinct request every iteration, so each
// one pays the full synthesize→extract→predict path — the pre-cache cost
// of every estimate.
func BenchmarkEstimateCold(b *testing.B) {
	h := benchLearnedService(b)
	w := nopRW{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := []byte(`{"windows":[{"/read":` + itoa(10+i%1000000) + `},{"/read":25}]}`)
		req := httptest.NewRequest("POST", "/v1/estimate", bytes.NewReader(body))
		h.ServeHTTP(w, req)
	}
}
