package service

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
	"repro/internal/testutil"
)

// nopRW discards the response; the benchmark measures the middleware, not
// httptest's recorder bookkeeping.
type nopRW struct{ h http.Header }

func (w nopRW) Header() http.Header         { return w.h }
func (w nopRW) Write(b []byte) (int, error) { return len(b), nil }
func (w nopRW) WriteHeader(int)             {}

// benchHandler wraps a no-op inner handler in the observability middleware,
// so the measured time is purely the per-request instrumentation cost. The
// budget is <1µs/request on top of routing (see ISSUE/DESIGN).
func benchHandler(b *testing.B, instrumented bool) http.Handler {
	b.Helper()
	opts := quickServiceOpts()
	if instrumented {
		opts.Metrics = obs.NewRegistry()
	}
	s, err := NewWithConfig(opts, pipeline.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	return s.withObservability(inner)
}

func benchMiddleware(b *testing.B, instrumented bool) {
	h := benchHandler(b, instrumented)
	req := httptest.NewRequest("GET", "/v1/status", nil)
	w := nopRW{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(w, req)
	}
}

// BenchmarkHandlerBaseline measures the bare inner handler: subtract it from
// the middleware numbers to read the per-request instrumentation overhead.
func BenchmarkHandlerBaseline(b *testing.B) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	req := httptest.NewRequest("GET", "/v1/status", nil)
	w := nopRW{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inner.ServeHTTP(w, req)
	}
}

func BenchmarkMiddlewareUninstrumented(b *testing.B) { benchMiddleware(b, false) }
func BenchmarkMiddlewareInstrumented(b *testing.B)   { benchMiddleware(b, true) }

// benchLearnedService trains one quick generation so estimate benchmarks
// run against a live model.
func benchLearnedService(b *testing.B) http.Handler {
	b.Helper()
	s, err := NewWithConfig(quickServiceOpts(), pipeline.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()
	_, _, run := testutil.ToyTelemetry(b, 1, 30, 91)
	store := telemetry.NewServer(run.WindowSeconds)
	store.RecordRun(run)
	var buf bytes.Buffer
	if err := store.ExportJSON(&buf); err != nil {
		b.Fatal(err)
	}
	post := func(path string, body *bytes.Buffer) {
		req := httptest.NewRequest("POST", path, body)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("%s = %d: %s", path, rec.Code, rec.Body)
		}
	}
	post("/v1/telemetry", &buf)
	post("/v1/learn", bytes.NewBufferString(`{}`))
	return h
}

// BenchmarkEstimateWarm repeats one identical /v1/estimate: after the first
// iteration every request is a prediction-cache hit, skipping trace
// synthesis, feature extraction, and inference entirely.
func BenchmarkEstimateWarm(b *testing.B) {
	h := benchLearnedService(b)
	body := []byte(`{"windows":[{"/read":10},{"/read":25},{"/read":40}]}`)
	w := nopRW{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/estimate", bytes.NewReader(body))
		h.ServeHTTP(w, req)
	}
}

// BenchmarkEstimateConcurrent hammers /v1/estimate from 64 concurrent
// clients, every request a distinct body (never a cache hit), so the
// measured path is decode → batcher coalescing → engine pass over the
// shared worker pool. Besides ns/op it reports the client-observed p99
// latency, the number the batcher's group commit is supposed to protect.
func BenchmarkEstimateConcurrent(b *testing.B) {
	h := benchLearnedService(b)
	const clients = 64
	var seq atomic.Uint64
	lats := make([][]time.Duration, clients)
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	assigned := 0
	per := (b.N + clients - 1) / clients
	for c := 0; c < clients && assigned < b.N; c++ {
		n := per
		if assigned+n > b.N {
			n = b.N - assigned
		}
		assigned += n
		wg.Add(1)
		go func(c, n int) {
			defer wg.Done()
			w := nopRW{h: make(http.Header)}
			ls := make([]time.Duration, 0, n)
			for i := 0; i < n; i++ {
				id := seq.Add(1)
				body := []byte(`{"windows":[{"/read":` + itoa(int(id%1000000)) + `},{"/read":25}]}`)
				req := httptest.NewRequest("POST", "/v1/estimate", bytes.NewReader(body))
				start := time.Now()
				h.ServeHTTP(w, req)
				ls = append(ls, time.Since(start))
			}
			lats[c] = ls
		}(c, n)
	}
	wg.Wait()
	b.StopTimer()
	var all []time.Duration
	for _, ls := range lats {
		all = append(all, ls...)
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		idx := len(all) * 99 / 100
		if idx >= len(all) {
			idx = len(all) - 1
		}
		b.ReportMetric(float64(all[idx].Nanoseconds()), "p99-ns")
	}
}

// BenchmarkEstimateCold sends a distinct request every iteration, so each
// one pays the full synthesize→extract→predict path — the pre-cache cost
// of every estimate.
func BenchmarkEstimateCold(b *testing.B) {
	h := benchLearnedService(b)
	w := nopRW{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := []byte(`{"windows":[{"/read":` + itoa(10+i%1000000) + `},{"/read":25}]}`)
		req := httptest.NewRequest("POST", "/v1/estimate", bytes.NewReader(body))
		h.ServeHTTP(w, req)
	}
}
