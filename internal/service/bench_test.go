package service

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/obs"
	"repro/internal/pipeline"
)

// nopRW discards the response; the benchmark measures the middleware, not
// httptest's recorder bookkeeping.
type nopRW struct{ h http.Header }

func (w nopRW) Header() http.Header         { return w.h }
func (w nopRW) Write(b []byte) (int, error) { return len(b), nil }
func (w nopRW) WriteHeader(int)             {}

// benchHandler wraps a no-op inner handler in the observability middleware,
// so the measured time is purely the per-request instrumentation cost. The
// budget is <1µs/request on top of routing (see ISSUE/DESIGN).
func benchHandler(b *testing.B, instrumented bool) http.Handler {
	b.Helper()
	opts := quickServiceOpts()
	if instrumented {
		opts.Metrics = obs.NewRegistry()
	}
	s, err := NewWithConfig(opts, pipeline.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	return s.withObservability(inner)
}

func benchMiddleware(b *testing.B, instrumented bool) {
	h := benchHandler(b, instrumented)
	req := httptest.NewRequest("GET", "/v1/status", nil)
	w := nopRW{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(w, req)
	}
}

// BenchmarkHandlerBaseline measures the bare inner handler: subtract it from
// the middleware numbers to read the per-request instrumentation overhead.
func BenchmarkHandlerBaseline(b *testing.B) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	req := httptest.NewRequest("GET", "/v1/status", nil)
	w := nopRW{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inner.ServeHTTP(w, req)
	}
}

func BenchmarkMiddlewareUninstrumented(b *testing.B) { benchMiddleware(b, false) }
func BenchmarkMiddlewareInstrumented(b *testing.B)   { benchMiddleware(b, true) }
