package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/pipeline"
)

func newFaultService(t *testing.T, pcfg pipeline.Config) *Server {
	t.Helper()
	s, err := NewWithConfig(quickServiceOpts(), pcfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

const predictBody = `{"windows":[{"/read":10,"/write":4},{"/read":20,"/write":6}]}`

// TestDegradedServingDuringInjectedRetrainFailure is the acceptance e2e:
// while an injected retrain failure is in progress, /v1/predict keeps
// returning 200s from the last good generation, and /v1/status reports the
// degraded state until a later retrain succeeds.
func TestDegradedServingDuringInjectedRetrainFailure(t *testing.T) {
	hold := make(chan struct{})
	var once sync.Once
	pcfg := pipeline.DefaultConfig()
	// Attempts 2 and 3 fail; attempt 2 is additionally held in flight so
	// the test can query mid-failure deterministically.
	pcfg.Faults = faults.NewSchedule(faults.MustParse("retrainfail:from=2,to=4"))
	attempt := 0
	pcfg.BeforeTrain = func() {
		attempt++
		if attempt == 2 {
			once.Do(func() { <-hold })
		}
	}
	s := newFaultService(t, pcfg)
	h := s.Handler()

	if rec := do(t, h, "POST", "/v1/telemetry", telemetryBody(t, 1, 30, 61)); rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "POST", "/v1/learn", bytes.NewBufferString(`{"pairs":["Service/cpu"]}`)); rec.Code != http.StatusOK {
		t.Fatalf("learn = %d: %s", rec.Code, rec.Body)
	}

	// Kick off the failing retrain and hold it in flight.
	learnDone := make(chan *bytes.Buffer, 1)
	go func() {
		rec := do(t, h, "POST", "/v1/learn", nil)
		learnDone <- bytes.NewBufferString(fmt.Sprintf("%d %s", rec.Code, rec.Body))
	}()

	// While the retrain is in progress, predictions serve from generation 1.
	for i := 0; i < 5; i++ {
		rec := do(t, h, "POST", "/v1/predict", bytes.NewBufferString(predictBody))
		if rec.Code != http.StatusOK {
			t.Fatalf("predict during retrain = %d: %s", rec.Code, rec.Body)
		}
		var resp estimateResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Version != 1 {
			t.Fatalf("predict served version %d during retrain, want 1", resp.Version)
		}
	}
	close(hold)
	if out := <-learnDone; !strings.HasPrefix(out.String(), "422") || !strings.Contains(out.String(), "injected") {
		t.Fatalf("failing learn = %s", out)
	}

	// The failure left the service degraded but fully serving.
	var st statusResponse
	rec := do(t, h, "GET", "/v1/status", nil)
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Degraded || !st.Learned || st.Version != 1 {
		t.Fatalf("status after injected failure = %+v", st)
	}
	if rec := do(t, h, "POST", "/v1/predict", bytes.NewBufferString(predictBody)); rec.Code != http.StatusOK {
		t.Fatalf("predict while degraded = %d", rec.Code)
	}

	// Attempt 3 fails too; attempt 4 is past the fault window and recovers.
	if rec := do(t, h, "POST", "/v1/learn", nil); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("second failing learn = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "POST", "/v1/learn", nil); rec.Code != http.StatusOK {
		t.Fatalf("recovery learn = %d: %s", rec.Code, rec.Body)
	}
	rec = do(t, h, "GET", "/v1/status", nil)
	st = statusResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Degraded || st.Version != 2 {
		t.Fatalf("status after recovery = %+v", st)
	}
}

// TestAdmissionControlShedsAtCapacity: with MaxInflight=1 and a training
// request holding the only slot, a concurrent request is shed with 503 and
// Retry-After — while the operator /metrics endpoint stays reachable.
func TestAdmissionControlShedsAtCapacity(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	pcfg := pipeline.DefaultConfig()
	pcfg.BeforeTrain = func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	s := newFaultService(t, pcfg)
	s.MaxInflight = 1
	h := s.Handler()

	if rec := do(t, h, "POST", "/v1/telemetry", telemetryBody(t, 1, 30, 62)); rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", rec.Code, rec.Body)
	}

	learnDone := make(chan int, 1)
	go func() {
		rec := do(t, h, "POST", "/v1/learn", bytes.NewBufferString(`{"pairs":["Service/cpu"]}`))
		learnDone <- rec.Code
	}()
	<-entered // the learn holds the single admission slot

	rec := do(t, h, "GET", "/v1/status", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("request over capacity = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	close(release)
	if code := <-learnDone; code != http.StatusOK {
		t.Fatalf("held learn = %d", code)
	}
	// Capacity freed: requests are admitted again.
	if rec := do(t, h, "GET", "/v1/status", nil); rec.Code != http.StatusOK {
		t.Fatalf("status after release = %d", rec.Code)
	}
}

// TestRequestDeadlineAbortsTraining: a training request that outlives the
// per-request deadline is abandoned at the next phase boundary with 504 and
// never publishes, leaving the serving model untouched.
func TestRequestDeadlineAbortsTraining(t *testing.T) {
	var once sync.Once
	pcfg := pipeline.DefaultConfig()
	pcfg.BeforeTrain = func() {
		once.Do(func() { time.Sleep(600 * time.Millisecond) }) // outlive the deadline once
	}
	s := newFaultService(t, pcfg)
	s.RequestTimeout = 300 * time.Millisecond
	h := s.Handler()

	if rec := do(t, h, "POST", "/v1/telemetry", telemetryBody(t, 1, 30, 63)); rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "POST", "/v1/learn", bytes.NewBufferString(`{"pairs":["Service/cpu"]}`)); rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("over-deadline learn = %d: %s", rec.Code, rec.Body)
	}
	var st statusResponse
	rec := do(t, h, "GET", "/v1/status", nil)
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Learned {
		t.Fatal("timed-out training published a generation")
	}
	// The slot is free and fast requests fit the deadline fine.
	if rec := do(t, h, "POST", "/v1/learn", bytes.NewBufferString(`{"pairs":["Service/cpu"]}`)); rec.Code != http.StatusOK {
		t.Fatalf("learn after timeout = %d: %s", rec.Code, rec.Body)
	}
}
