package service

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/testutil"
)

// TestBootstrapSeedsStore checks Bootstrap adopts a simulated run as the
// telemetry store, that later runs append, and that mismatched window
// durations are rejected.
func TestBootstrapSeedsStore(t *testing.T) {
	svc := newTestService()
	_, _, run := testutil.ToyTelemetry(t, 1, 30, 1)
	if err := svc.Bootstrap(run); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	h := svc.Handler()

	rec := do(t, h, "GET", "/v1/status", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var st statusResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Windows != len(run.Windows) {
		t.Fatalf("status windows = %d, want %d", st.Windows, len(run.Windows))
	}

	// A second bootstrap with the same geometry appends.
	_, _, run2 := testutil.ToyTelemetry(t, 1, 30, 2)
	if err := svc.Bootstrap(run2); err != nil {
		t.Fatalf("second Bootstrap: %v", err)
	}
	rec = do(t, h, "GET", "/v1/status", nil)
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Windows != len(run.Windows)+len(run2.Windows) {
		t.Fatalf("after append windows = %d, want %d", st.Windows, len(run.Windows)+len(run2.Windows))
	}

	// A run with a different window duration must be rejected.
	bad := run2
	badCopy := *bad
	badCopy.WindowSeconds = run.WindowSeconds * 2
	if err := svc.Bootstrap(&badCopy); err == nil {
		t.Fatal("Bootstrap accepted a mismatched window duration")
	}

	if err := svc.Bootstrap(nil); err == nil {
		t.Fatal("Bootstrap accepted a nil run")
	}
}
