package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pipeline"
)

// quickServiceOpts mirrors newTestService but trains even faster, for tests
// that run many generations (possibly under -race).
func quickServiceOpts() core.Options {
	opts := core.DefaultOptions()
	opts.Estimator.Hidden = 3
	opts.Estimator.Epochs = 4
	opts.Estimator.AttentionEpochs = 0
	opts.Estimator.ChunkLen = 24
	return opts
}

// TestLearnConflictReturns409: a /v1/learn issued while another generation
// is training fails fast with 409 Conflict and a JSON error body.
func TestLearnConflictReturns409(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	enter, release := make(chan struct{}), make(chan struct{})
	var gate sync.Once
	cfg.BeforeTrain = func() {
		gate.Do(func() { // only the first generation blocks
			close(enter)
			<-release
		})
	}
	s, err := NewWithConfig(quickServiceOpts(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	if rec := do(t, h, "POST", "/v1/telemetry", telemetryBody(t, 1, 30, 71)); rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d", rec.Code)
	}

	firstDone := make(chan int, 1)
	go func() {
		rec := do(t, h, "POST", "/v1/learn", bytes.NewBufferString(`{"pairs":["Service/cpu"]}`))
		firstDone <- rec.Code
	}()
	<-enter

	rec := do(t, h, "POST", "/v1/learn", bytes.NewBufferString(`{"pairs":["Service/cpu"]}`))
	if rec.Code != http.StatusConflict {
		t.Fatalf("concurrent learn = %d, want %d", rec.Code, http.StatusConflict)
	}
	var body httpError
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("409 body is not JSON: %s", rec.Body)
	}
	if body.Error == "" {
		t.Fatal("409 body carries no error message")
	}

	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("first learn = %d", code)
	}
	// The slot is free again.
	if rec := do(t, h, "POST", "/v1/learn", bytes.NewBufferString(`{"pairs":["Service/cpu"]}`)); rec.Code != http.StatusOK {
		t.Fatalf("learn after release = %d: %s", rec.Code, rec.Body)
	}
}

// TestModelsListAndActivate exercises the registry endpoints: listing
// retained generations and rolling the serving model back and forward.
func TestModelsListAndActivate(t *testing.T) {
	s, err := NewWithConfig(quickServiceOpts(), pipeline.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	if rec := do(t, h, "POST", "/v1/telemetry", telemetryBody(t, 1, 30, 72)); rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d", rec.Code)
	}
	for i := 0; i < 2; i++ {
		if rec := do(t, h, "POST", "/v1/learn", bytes.NewBufferString(`{"pairs":["Service/cpu"]}`)); rec.Code != http.StatusOK {
			t.Fatalf("learn %d = %d: %s", i, rec.Code, rec.Body)
		}
	}

	rec := do(t, h, "GET", "/v1/models", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("models = %d", rec.Code)
	}
	var list struct {
		Models []modelInfo `json:"models"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Models) != 2 {
		t.Fatalf("models = %+v", list.Models)
	}
	if list.Models[0].Version != 1 || list.Models[0].Active || !list.Models[1].Active {
		t.Fatalf("active flags wrong: %+v", list.Models)
	}
	if !list.Models[1].Warm || list.Models[1].Trigger != "manual" {
		t.Fatalf("second generation metadata = %+v", list.Models[1])
	}

	// Roll back to v1; status and estimates now report version 1.
	if rec := do(t, h, "POST", "/v1/models/1/activate", nil); rec.Code != http.StatusOK {
		t.Fatalf("activate = %d: %s", rec.Code, rec.Body)
	}
	var st statusResponse
	rec = do(t, h, "GET", "/v1/status", nil)
	_ = json.Unmarshal(rec.Body.Bytes(), &st)
	if st.Version != 1 || st.Generations != 2 {
		t.Fatalf("status after rollback = %+v", st)
	}
	rec = do(t, h, "POST", "/v1/estimate", bytes.NewBufferString(`{"windows":[{"/read":10}]}`))
	if rec.Code != http.StatusOK {
		t.Fatalf("estimate = %d: %s", rec.Code, rec.Body)
	}
	var er estimateResponse
	_ = json.Unmarshal(rec.Body.Bytes(), &er)
	if er.Version != 1 {
		t.Fatalf("estimate version = %d, want 1", er.Version)
	}

	// Unknown and malformed versions.
	if rec := do(t, h, "POST", "/v1/models/99/activate", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("activate unknown = %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/v1/models/banana/activate", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("activate malformed = %d", rec.Code)
	}
}

// TestPipelineStartStopStatus drives the loop-control endpoints.
func TestPipelineStartStopStatus(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	cfg.Interval = time.Hour // control endpoints only; no actual retrain
	s, err := NewWithConfig(quickServiceOpts(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	rec := do(t, h, "GET", "/v1/pipeline/status", nil)
	var st pipeline.Status
	_ = json.Unmarshal(rec.Body.Bytes(), &st)
	if st.Running {
		t.Fatal("pipeline reported running before start")
	}
	if rec := do(t, h, "POST", "/v1/pipeline/start", nil); rec.Code != http.StatusOK {
		t.Fatalf("start = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "POST", "/v1/pipeline/start", nil); rec.Code != http.StatusConflict {
		t.Fatalf("double start = %d", rec.Code)
	}
	rec = do(t, h, "GET", "/v1/pipeline/status", nil)
	_ = json.Unmarshal(rec.Body.Bytes(), &st)
	if !st.Running {
		t.Fatal("pipeline not running after start")
	}
	// Stop is idempotent and reports a quiesced loop.
	for i := 0; i < 2; i++ {
		rec = do(t, h, "POST", "/v1/pipeline/stop", nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("stop %d = %d", i, rec.Code)
		}
	}
	_ = json.Unmarshal(rec.Body.Bytes(), &st)
	if st.Running {
		t.Fatal("pipeline still running after stop")
	}
}

// TestEstimateConsistentDuringRetrain is the acceptance test for the atomic
// serving swap: clients hammer /v1/estimate while generations retrain and
// publish in the background. Every response must be exactly the output of
// ONE published generation — the version tag must never pair with estimate
// series from a different generation (no half-swapped models).
func TestEstimateConsistentDuringRetrain(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	cfg.MaxHistory = 8 // retain every generation so all can be replayed
	s, err := NewWithConfig(quickServiceOpts(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	if rec := do(t, h, "POST", "/v1/telemetry", telemetryBody(t, 1, 30, 73)); rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d", rec.Code)
	}
	// Two experts per generation: a mixed snapshot would pair Service/cpu
	// from one generation with DB/cpu from another.
	learn := `{"pairs":["Service/cpu","DB/cpu"]}`
	if rec := do(t, h, "POST", "/v1/learn", bytes.NewBufferString(learn)); rec.Code != http.StatusOK {
		t.Fatalf("initial learn = %d: %s", rec.Code, rec.Body)
	}

	const generations = 4
	probe := `{"windows":[{"/read":12,"/write":3},{"/read":40,"/write":9}],"windows_per_day":48}`

	type observation struct {
		version int
		body    string
	}
	var (
		obsMu sync.Mutex
		obs   []observation
	)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := do(t, h, "POST", "/v1/estimate", bytes.NewBufferString(probe))
				if rec.Code != http.StatusOK {
					t.Errorf("estimate during retrain = %d: %s", rec.Code, rec.Body)
					return
				}
				var er estimateResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
					t.Errorf("estimate body: %v", err)
					return
				}
				obsMu.Lock()
				obs = append(obs, observation{er.Version, rec.Body.String()})
				obsMu.Unlock()
			}
		}()
	}

	// Warm-started retrains publish while the readers run; each generation
	// differs from the last, so a stale or mixed expert changes the body.
	// Between publishes, wait for fresh observations so that (on small
	// machines) every generation is actually exercised concurrently.
	waitObs := func(min int) {
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			obsMu.Lock()
			n := len(obs)
			obsMu.Unlock()
			if n >= min {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Error("timed out waiting for concurrent estimates")
	}
	for i := 0; i < generations; i++ {
		waitObs((i + 1) * 5)
		if rec := do(t, h, "POST", "/v1/learn", bytes.NewBufferString(learn)); rec.Code != http.StatusOK {
			t.Fatalf("retrain %d = %d: %s", i, rec.Code, rec.Body)
		}
	}
	waitObs((generations + 1) * 5)
	close(stop)
	readers.Wait()
	if t.Failed() {
		return
	}
	if len(obs) == 0 {
		t.Fatal("no estimates observed during retraining")
	}

	// Replay: activate each retained generation and capture its canonical
	// response to the probe. The handler output is a pure function of
	// (generation, probe), so every concurrent observation must byte-match
	// the canonical body for its advertised version.
	canonical := make(map[int]string)
	for _, g := range s.Pipeline().Registry().Generations() {
		rec := do(t, h, "POST", "/v1/models/"+itoa(g.Version)+"/activate", nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("activate v%d = %d", g.Version, rec.Code)
		}
		rec = do(t, h, "POST", "/v1/estimate", bytes.NewBufferString(probe))
		if rec.Code != http.StatusOK {
			t.Fatalf("canonical estimate v%d = %d", g.Version, rec.Code)
		}
		canonical[g.Version] = rec.Body.String()
	}
	if len(canonical) != generations+1 {
		t.Fatalf("retained %d generations, want %d", len(canonical), generations+1)
	}
	// Sanity: the generations genuinely differ, or the check is vacuous.
	if canonical[1] == canonical[generations+1] {
		t.Fatal("first and last generation estimate identically; cannot detect mixing")
	}
	versionsSeen := make(map[int]int)
	for _, o := range obs {
		want, ok := canonical[o.version]
		if !ok {
			t.Fatalf("observed unknown version %d", o.version)
		}
		if o.body != want {
			t.Fatalf("version %d response does not match its generation:\ngot  %s\nwant %s", o.version, o.body, want)
		}
		versionsSeen[o.version]++
	}
	t.Logf("%d estimates across versions %v", len(obs), versionsSeen)
}

func itoa(v int) string {
	b, _ := json.Marshal(v)
	return string(b)
}
