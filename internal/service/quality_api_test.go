package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/pipeline"
	"repro/internal/quality"
)

// TestQualityEndpointReportsScores: after ingest + learn, GET /v1/quality
// serves a scoreboard with per-pair sMAPE and quantile coverage for every
// complete chunk of ingested telemetry.
func TestQualityEndpointReportsScores(t *testing.T) {
	s, err := NewWithConfig(quickServiceOpts(), pipeline.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	// Before any model exists the endpoint answers (empty board), not 500s.
	rec := do(t, h, "GET", "/v1/quality", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("quality before learn = %d: %s", rec.Code, rec.Body)
	}
	var empty quality.Report
	_ = json.Unmarshal(rec.Body.Bytes(), &empty)
	if empty.WindowsScored != 0 || empty.Summary != "empty" {
		t.Fatalf("pre-learn report = %+v", empty)
	}

	if rec := do(t, h, "POST", "/v1/telemetry", telemetryBody(t, 2, 30, 81)); rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/v1/learn", bytes.NewBufferString(`{"pairs":["Service/cpu","DB/write_iops"]}`)); rec.Code != http.StatusOK {
		t.Fatalf("learn = %d: %s", rec.Code, rec.Body)
	}
	// Fresh telemetry arriving after the publish is what shadow scoring
	// exists for; the report must cover it too.
	if rec := do(t, h, "POST", "/v1/telemetry", telemetryBody(t, 1, 34, 82)); rec.Code != http.StatusOK {
		t.Fatalf("second ingest = %d", rec.Code)
	}

	rec = do(t, h, "GET", "/v1/quality", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("quality = %d: %s", rec.Code, rec.Body)
	}
	var rep quality.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Version != 1 || rep.WindowsScored == 0 {
		t.Fatalf("report head = %+v", rep)
	}
	if rep.Summary == "" || rep.Summary == "empty" {
		t.Fatalf("summary = %q", rep.Summary)
	}
	if len(rep.Horizons) == 0 {
		t.Fatal("no horizons in report")
	}
	long := rep.Horizons[len(rep.Horizons)-1]
	if len(long.Pairs) == 0 {
		t.Fatal("no per-pair scores")
	}
	cpu, ok := long.Pairs["Service/cpu"]
	if !ok || cpu.SMAPE <= 0 || cpu.Unit != "mcores" {
		t.Fatalf("Service/cpu score = %+v (present=%v)", cpu, ok)
	}
	if long.Coverage <= 0 || long.Coverage > 1 {
		t.Fatalf("coverage = %v", long.Coverage)
	}
	if len(long.APIs) == 0 {
		t.Fatal("no per-API attribution")
	}
}

// TestVersionEndpoint: /v1/version reports the build identity, and /v1/status
// carries the same version string.
func TestVersionEndpoint(t *testing.T) {
	h := newTestService().Handler()
	rec := do(t, h, "GET", "/v1/version", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("version = %d", rec.Code)
	}
	var v map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if v["version"] != buildinfo.Version || v["go_version"] == "" {
		t.Fatalf("version body = %v", v)
	}
	var st statusResponse
	rec = do(t, h, "GET", "/v1/status", nil)
	_ = json.Unmarshal(rec.Body.Bytes(), &st)
	if st.ServerVersion != buildinfo.Version {
		t.Fatalf("status server_version = %q, want %q", st.ServerVersion, buildinfo.Version)
	}
}

// TestActivateConflictDuringTraining: an explicit rollback racing an
// in-flight training generation is refused with 409, and succeeds once the
// generation publishes.
func TestActivateConflictDuringTraining(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	enter, release := make(chan struct{}), make(chan struct{})
	var gate sync.Once
	held := false
	cfg.BeforeTrain = func() {
		gate.Do(func() { held = true; close(enter); <-release })
	}
	s, err := NewWithConfig(quickServiceOpts(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	if rec := do(t, h, "POST", "/v1/telemetry", telemetryBody(t, 1, 30, 83)); rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d", rec.Code)
	}

	done := make(chan int, 1)
	go func() {
		rec := do(t, h, "POST", "/v1/learn", bytes.NewBufferString(`{"pairs":["Service/cpu"]}`))
		done <- rec.Code
	}()
	<-enter
	if !held {
		t.Fatal("BeforeTrain gate did not run")
	}

	rec := do(t, h, "POST", "/v1/models/1/activate", nil)
	if rec.Code != http.StatusConflict {
		t.Fatalf("activate during learn = %d, want %d: %s", rec.Code, http.StatusConflict, rec.Body)
	}
	var body httpError
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error == "" {
		t.Fatalf("409 body = %s (%v)", rec.Body, err)
	}

	close(release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("learn = %d", code)
	}
	if rec := do(t, h, "POST", "/v1/models/1/activate", nil); rec.Code != http.StatusOK {
		t.Fatalf("activate after publish = %d: %s", rec.Code, rec.Body)
	}
}

// TestActivateQuarantinedVersion404: a version whose checkpoint was
// quarantined as corrupt at recovery is simply absent from the registry —
// activating it is 404, and the pipeline status names the quarantined file.
func TestActivateQuarantinedVersion404(t *testing.T) {
	dir := t.TempDir()
	cfg := pipeline.DefaultConfig()
	cfg.CheckpointDir = dir
	s1, err := NewWithConfig(quickServiceOpts(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h1 := s1.Handler()
	if rec := do(t, h1, "POST", "/v1/telemetry", telemetryBody(t, 1, 30, 84)); rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d", rec.Code)
	}
	for i := 0; i < 2; i++ {
		if rec := do(t, h1, "POST", "/v1/learn", bytes.NewBufferString(`{"pairs":["Service/cpu"]}`)); rec.Code != http.StatusOK {
			t.Fatalf("learn %d = %d: %s", i, rec.Code, rec.Body)
		}
	}
	// Rot generation 2 on disk behind the registry's back.
	if err := os.WriteFile(filepath.Join(dir, "gen-000002.ckpt"), []byte("rotten"), 0o644); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh service recovering from the same directory
	// quarantines the rotten file and falls back to version 1.
	s2, err := NewWithConfig(quickServiceOpts(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Pipeline().Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	h2 := s2.Handler()

	if rec := do(t, h2, "POST", "/v1/models/2/activate", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("activate quarantined = %d, want 404: %s", rec.Code, rec.Body)
	}
	rec := do(t, h2, "GET", "/v1/pipeline/status", nil)
	var st pipeline.Status
	_ = json.Unmarshal(rec.Body.Bytes(), &st)
	if st.ActiveVersion != 1 || len(st.Quarantined) != 1 {
		t.Fatalf("status after quarantine = %+v", st)
	}
}

// TestQualityRegressionTriggersRetrain: with the regression gate armed at an
// absurdly low threshold, the pipeline's drift tick consults the shadow
// scoreboard and schedules an early retrain with trigger "quality".
func TestQualityRegressionTriggersRetrain(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	cfg.Interval = time.Hour // scheduled retrains out of the picture
	cfg.DriftEvery = 5 * time.Millisecond
	cfg.MinDriftWindows = 1 << 30 // drift never fires; only quality can
	s, err := NewWithConfig(quickServiceOpts(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Any nonzero error regresses immediately: threshold ~0, one bad window.
	s.QualityThreshold = 1e-9
	s.QualitySustain = 1
	h := s.Handler()

	if rec := do(t, h, "POST", "/v1/telemetry", telemetryBody(t, 1, 30, 85)); rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/v1/learn", bytes.NewBufferString(`{"pairs":["Service/cpu"]}`)); rec.Code != http.StatusOK {
		t.Fatalf("learn = %d: %s", rec.Code, rec.Body)
	}
	// Fresh windows to score (and to satisfy MinNewWindows for the retrain).
	if rec := do(t, h, "POST", "/v1/telemetry", telemetryBody(t, 1, 60, 86)); rec.Code != http.StatusOK {
		t.Fatalf("shifted ingest = %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/v1/pipeline/start", nil); rec.Code != http.StatusOK {
		t.Fatalf("start = %d: %s", rec.Code, rec.Body)
	}
	defer do(t, h, "POST", "/v1/pipeline/stop", nil)

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		rec := do(t, h, "GET", "/v1/models", nil)
		var list struct {
			Models []modelInfo `json:"models"`
		}
		_ = json.Unmarshal(rec.Body.Bytes(), &list)
		for _, m := range list.Models {
			if m.Trigger == "quality" {
				rec = do(t, h, "GET", "/v1/pipeline/status", nil)
				var st pipeline.Status
				_ = json.Unmarshal(rec.Body.Bytes(), &st)
				if st.LastQuality == "" {
					t.Fatalf("quality retrain published but status carries no reason: %+v", st)
				}
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no quality-triggered generation within deadline")
}
