package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// learnedBatcherFixture trains one generation and returns the server with an
// instrumented batcher, ready for direct do()/exec() calls.
func learnedBatcherFixture(t *testing.T, window time.Duration) (*Server, *pipeline.Generation, *estBatcher) {
	t.Helper()
	s := newTestService()
	h := s.Handler()
	if rec := do(t, h, "POST", "/v1/telemetry", telemetryBody(t, 1, 30, 7)); rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "POST", "/v1/learn", bytes.NewBufferString(`{"pairs":["Service/cpu"]}`)); rec.Code != http.StatusOK {
		t.Fatalf("learn = %d: %s", rec.Code, rec.Body)
	}
	gen := s.Pipeline().Active()
	if gen == nil {
		t.Fatal("no active generation after learn")
	}
	reg := obs.NewRegistry()
	b := newEstBatcher(window, 64)
	b.instrument(
		reg.Counter("dedup", "test"),
		reg.Counter("batches", "test"),
		reg.Counter("batched", "test"),
	)
	return s, gen, b
}

func testTraffic(readRPS int) *workload.Traffic {
	return &workload.Traffic{
		Windows:       []map[string]int{{"/read": readRPS, "/write": 4}, {"/read": 2 * readRPS, "/write": 6}},
		WindowSeconds: 60,
		WindowsPerDay: 2,
	}
}

// wantBody is what the handler would serve for the traffic: the generation's
// own estimate, marshaled the same way the batcher marshals.
func wantBody(t *testing.T, gen *pipeline.Generation, traffic *workload.Traffic) []byte {
	t.Helper()
	est, err := gen.System.EstimateTraffic(traffic)
	if err != nil {
		t.Fatalf("EstimateTraffic: %v", err)
	}
	body, err := json.Marshal(toEstimateResponse(gen.Version, est))
	if err != nil {
		t.Fatal(err)
	}
	return append(body, '\n')
}

// TestBatcherDedupJoinsInflightCall pins singleflight: a request identical
// to one already in flight joins it (counted as a dedup hit) instead of
// queueing a second computation.
func TestBatcherDedupJoinsInflightCall(t *testing.T) {
	_, gen, b := learnedBatcherFixture(t, 0)
	canon := []byte(`{"windows":[{"/read":10}]}`)
	key := predKey(gen.Version, canon)

	// Plant an in-flight call by hand so the join is deterministic, then
	// release it from another goroutine.
	c := &estCall{key: key, canon: string(canon), gen: gen, done: make(chan struct{})}
	b.mu.Lock()
	b.calls[key] = c
	b.mu.Unlock()
	go func() {
		time.Sleep(5 * time.Millisecond)
		c.body = []byte("joined")
		close(c.done)
	}()

	body, err := b.do(context.Background(), gen, testTraffic(10), key, canon)
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	if string(body) != "joined" {
		t.Fatalf("joined call returned %q, want the in-flight result", body)
	}
	if got := b.dedupHits.Value(); got != 1 {
		t.Fatalf("dedup hits = %d, want 1", got)
	}
	if got := b.batches.Value(); got != 0 {
		t.Fatalf("joining must not dispatch a pass, got %d batches", got)
	}
}

// TestBatcherCoalescesDistinctRequests checks that distinct concurrent
// requests land in ONE batched inference pass and each still gets exactly
// the body the sequential path would have produced.
func TestBatcherCoalescesDistinctRequests(t *testing.T) {
	_, gen, b := learnedBatcherFixture(t, 100*time.Millisecond)
	const n = 4
	bodies := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			traffic := testTraffic(10 + i)
			canon := []byte(fmt.Sprintf(`{"windows":[{"/read":%d}]}`, 10+i))
			bodies[i], errs[i] = b.do(context.Background(), gen, traffic, predKey(gen.Version, canon), canon)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if want := wantBody(t, gen, testTraffic(10+i)); !bytes.Equal(bodies[i], want) {
			t.Fatalf("request %d: coalesced body diverges from the sequential path", i)
		}
	}
	// All four submitted within the 100ms grow window of the first dispatch.
	if got := b.batches.Value(); got != 1 {
		t.Fatalf("dispatched %d passes for %d concurrent requests, want 1", got, n)
	}
	if got := b.batchedReqs.Value(); got != n {
		t.Fatalf("batched %d requests, want %d", got, n)
	}
	if got := b.dedupHits.Value(); got != 0 {
		t.Fatalf("distinct requests counted %d dedup hits", got)
	}
}

// TestBatcherSplitsGenerations checks a batch straddling a model swap never
// mixes generations: each call is answered by the generation it pinned.
func TestBatcherSplitsGenerations(t *testing.T) {
	s, gen1, b := learnedBatcherFixture(t, 0)
	gen2, err := s.Pipeline().TrainOnce(0, 0, nil, "manual")
	if err != nil {
		t.Fatalf("second generation: %v", err)
	}
	if gen1.Version == gen2.Version {
		t.Fatal("expected two distinct generations")
	}
	calls := make([]*estCall, 2)
	for i, gen := range []*pipeline.Generation{gen1, gen2} {
		canon := []byte(`{"windows":[{"/read":10}]}`)
		calls[i] = &estCall{
			key: predKey(gen.Version, canon), canon: string(canon), gen: gen,
			traffic: testTraffic(10), done: make(chan struct{}),
		}
	}
	b.exec(calls)
	for i, want := range []int{gen1.Version, gen2.Version} {
		<-calls[i].done
		if calls[i].err != nil {
			t.Fatalf("call %d: %v", i, calls[i].err)
		}
		var resp estimateResponse
		if err := json.Unmarshal(calls[i].body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Version != want {
			t.Fatalf("call %d answered by version %d, want %d", i, resp.Version, want)
		}
	}
}

// TestBatcherWaiterHonorsContext checks an abandoned caller unblocks on its
// deadline while the computation itself still completes for joiners.
func TestBatcherWaiterHonorsContext(t *testing.T) {
	_, gen, b := learnedBatcherFixture(t, 50*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	canon := []byte(`{"windows":[{"/read":10}]}`)
	key := predKey(gen.Version, canon)
	if _, err := b.do(ctx, gen, testTraffic(10), key, canon); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The abandoned call still finishes and retires its singleflight slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		b.mu.Lock()
		_, inflight := b.calls[key]
		b.mu.Unlock()
		if !inflight {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("abandoned call never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
