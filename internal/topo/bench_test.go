package topo

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

var benchSizes = []int{30, 100, 300}

// BenchmarkTopoGenerate measures topology synthesis throughput.
func BenchmarkTopoGenerate(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("c%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Generate(Config{Seed: 7, Components: n})
			}
		})
	}
}

// BenchmarkTopoParse measures DSL decode+validate throughput on generated
// documents of increasing size.
func BenchmarkTopoParse(b *testing.B) {
	for _, n := range benchSizes {
		data := Encode(Generate(Config{Seed: 7, Components: n}))
		b.Run(fmt.Sprintf("c%d", n), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Parse(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTopoEncode measures canonical encoding throughput.
func BenchmarkTopoEncode(b *testing.B) {
	for _, n := range benchSizes {
		doc := Generate(Config{Seed: 7, Components: n})
		b.Run(fmt.Sprintf("c%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Encode(doc)
			}
		})
	}
}

// BenchmarkTopoSimulate measures simulated windows/sec on generated
// topologies — the cost of scale in the simulation loop itself.
func BenchmarkTopoSimulate(b *testing.B) {
	for _, n := range benchSizes {
		doc := Generate(Config{Seed: 7, Components: n})
		prog := workload.Uniform(1, workload.DaySpec{Shape: workload.TwoPeak{}, Mix: doc.Mix(), PeakRPS: 60})
		prog.WindowsPerDay = 24
		tr := prog.Generate()
		spec := doc.Spec()
		b.Run(fmt.Sprintf("c%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := sim.NewCluster(spec, 1)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := c.Run(tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
