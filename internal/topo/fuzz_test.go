package topo

import (
	"testing"
)

// FuzzParseTopology asserts the parser's safety invariants on arbitrary
// input: it never panics, and any document it accepts passes full
// validation (so a fuzz-found input can never reach the simulator in an
// undeployable state) and round-trips through the canonical encoding.
func FuzzParseTopology(f *testing.F) {
	f.Add([]byte(minimal))
	for _, b := range builtins() {
		f.Add(Encode(FromSpec(b.spec, b.mix)))
	}
	f.Add(Encode(Generate(Config{Seed: 7, Components: 20})))
	f.Add([]byte(`{"name":"x","components":[],"apis":[]}`))
	f.Add([]byte(`{"name":1e999}`))
	f.Add([]byte(`[`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := Parse(data)
		if err != nil {
			return
		}
		if verr := doc.Validate(); verr != nil {
			t.Fatalf("Parse accepted a document that fails Validate: %v", verr)
		}
		// Accepted documents must survive the canonical encoding.
		enc := Encode(doc)
		if _, rerr := Parse(enc); rerr != nil {
			t.Fatalf("Encode produced an unparseable document: %v\n%s", rerr, enc)
		}
	})
}
