package topo

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/app"
	"repro/internal/workload"
)

// Resolve turns a CLI -app argument into an application spec and default
// traffic mix. Four forms are accepted:
//
//	social | hotel | media     — the bundled Go-coded applications
//	@FILE                      — a topology DSL document on disk
//	gen:seed=N,components=N    — a generated topology (see ParseGenArg)
func Resolve(arg string) (*app.Spec, workload.Mix, error) {
	switch {
	case arg == "social":
		return app.SocialNetwork(), workload.SocialDefaultMix(), nil
	case arg == "hotel":
		return app.HotelReservation(), workload.HotelDefaultMix(), nil
	case arg == "media":
		return app.MediaMicroservices(), workload.Mix(app.MediaDefaultMix()), nil
	case strings.HasPrefix(arg, "@"):
		path := arg[1:]
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, fmt.Errorf("topo: reading spec %s: %w", path, err)
		}
		doc, err := Parse(data)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		return doc.Spec(), doc.Mix(), nil
	case strings.HasPrefix(arg, "gen:"):
		cfg, err := ParseGenArg(arg[len("gen:"):])
		if err != nil {
			return nil, nil, err
		}
		doc := Generate(cfg)
		return doc.Spec(), doc.Mix(), nil
	default:
		return nil, nil, fmt.Errorf("unknown app %q (want social, hotel, media, @spec.json, or gen:seed=N,components=N)", arg)
	}
}
