package topo

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParseError locates a problem in a topology document: the 1-based line and
// column where it was detected plus the JSON path of the offending field
// (e.g. "apis[2].templates[0].root.calls[1].cost.cpu_ms").
type ParseError struct {
	Line, Col int
	Path      string
	Msg       string
}

// Error renders "topo: line L:C: path: message".
func (e *ParseError) Error() string {
	var b strings.Builder
	b.WriteString("topo: ")
	if e.Line > 0 {
		fmt.Fprintf(&b, "line %d:%d: ", e.Line, e.Col)
	}
	if e.Path != "" {
		b.WriteString(e.Path)
		b.WriteString(": ")
	}
	b.WriteString(e.Msg)
	return b.String()
}

// Parse decodes and fully validates a topology DSL document. It is strict:
// unknown fields, duplicated fields, type mismatches, and out-of-range
// values fail with a ParseError naming the line and field, and the decoded
// document must additionally pass Document.Validate (and therefore
// app.Spec.Validate) — a successful Parse always yields a spec the
// simulator will deploy.
func Parse(data []byte) (*Document, error) {
	p := &parser{dec: json.NewDecoder(bytes.NewReader(data)), data: data}
	p.dec.UseNumber()
	doc := &Document{}
	if err := p.parseDocument(doc); err != nil {
		return nil, err
	}
	if tok, err := p.dec.Token(); err != io.EOF {
		if err != nil {
			return nil, p.wrap(err)
		}
		return nil, p.errf("trailing %s after topology document", tokDesc(tok))
	}
	if err := doc.Validate(); err != nil {
		var pe *ParseError
		if errors.As(err, &pe) {
			return nil, err
		}
		return nil, fmt.Errorf("topo: %w", err)
	}
	return doc, nil
}

// parser walks the decoder's token stream, tracking the JSON path for
// error messages.
type parser struct {
	dec  *json.Decoder
	data []byte
	path []string
}

// errf builds a ParseError at the decoder's current position and path.
func (p *parser) errf(format string, args ...interface{}) error {
	line, col := p.lineCol(p.dec.InputOffset())
	return &ParseError{Line: line, Col: col, Path: strings.Join(p.path, "."), Msg: fmt.Sprintf(format, args...)}
}

// wrap converts a decoder error into a ParseError, recovering the offset of
// syntax errors so malformed JSON is still located by line.
func (p *parser) wrap(err error) error {
	var syn *json.SyntaxError
	if errors.As(err, &syn) {
		line, col := p.lineCol(syn.Offset)
		return &ParseError{Line: line, Col: col, Path: strings.Join(p.path, "."), Msg: syn.Error()}
	}
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return p.errf("unexpected end of input")
	}
	return p.errf("%v", err)
}

// lineCol converts a byte offset into a 1-based line and column.
func (p *parser) lineCol(offset int64) (line, col int) {
	if offset > int64(len(p.data)) {
		offset = int64(len(p.data))
	}
	prefix := p.data[:offset]
	line = 1 + bytes.Count(prefix, []byte{'\n'})
	col = int(offset) - bytes.LastIndexByte(prefix, '\n')
	return line, col
}

func (p *parser) token() (json.Token, error) {
	tok, err := p.dec.Token()
	if err != nil {
		return nil, p.wrap(err)
	}
	return tok, nil
}

// tokDesc describes a token for error messages.
func tokDesc(tok json.Token) string {
	switch v := tok.(type) {
	case nil:
		return "null"
	case json.Delim:
		return fmt.Sprintf("%q", v.String())
	case string:
		return fmt.Sprintf("string %q", v)
	case json.Number:
		return "number " + v.String()
	case bool:
		return fmt.Sprintf("%v", v)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// object parses a JSON object whose permitted fields are given by fields.
// Unknown and duplicated fields are errors; each present field's handler
// runs with the field name pushed onto the path.
func (p *parser) object(fields map[string]func() error) error {
	tok, err := p.token()
	if err != nil {
		return err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return p.errf("expected object, got %s", tokDesc(tok))
	}
	seen := make(map[string]bool, len(fields))
	for p.dec.More() {
		keyTok, err := p.token()
		if err != nil {
			return err
		}
		key, _ := keyTok.(string)
		fn, known := fields[key]
		if !known {
			return p.errf("unknown field %q (valid fields: %s)", key, fieldNames(fields))
		}
		if seen[key] {
			return p.errf("duplicate field %q", key)
		}
		seen[key] = true
		p.path = append(p.path, key)
		err = fn()
		p.path = p.path[:len(p.path)-1]
		if err != nil {
			return err
		}
	}
	_, err = p.token() // consume '}'
	return err
}

func fieldNames(fields map[string]func() error) string {
	names := make([]string, 0, len(fields))
	for k := range fields {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// array parses a JSON array, calling elem once per element with the path's
// last segment rewritten to include the element index.
func (p *parser) array(elem func(i int) error) error {
	tok, err := p.token()
	if err != nil {
		return err
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return p.errf("expected array, got %s", tokDesc(tok))
	}
	base := ""
	if len(p.path) > 0 {
		base = p.path[len(p.path)-1]
	}
	for i := 0; p.dec.More(); i++ {
		if len(p.path) > 0 {
			p.path[len(p.path)-1] = base + "[" + strconv.Itoa(i) + "]"
		}
		if err := elem(i); err != nil {
			return err
		}
	}
	if len(p.path) > 0 {
		p.path[len(p.path)-1] = base
	}
	_, err = p.token() // consume ']'
	return err
}

// str returns a handler storing a string field.
func (p *parser) str(dst *string) func() error {
	return func() error {
		tok, err := p.token()
		if err != nil {
			return err
		}
		s, ok := tok.(string)
		if !ok {
			return p.errf("expected string, got %s", tokDesc(tok))
		}
		*dst = s
		return nil
	}
}

// boolean returns a handler storing a bool field.
func (p *parser) boolean(dst *bool) func() error {
	return func() error {
		tok, err := p.token()
		if err != nil {
			return err
		}
		b, ok := tok.(bool)
		if !ok {
			return p.errf("expected true or false, got %s", tokDesc(tok))
		}
		*dst = b
		return nil
	}
}

// num returns a handler storing a float field restricted to [lo, hi].
func (p *parser) num(dst *float64, lo, hi float64) func() error {
	return func() error {
		tok, err := p.token()
		if err != nil {
			return err
		}
		n, ok := tok.(json.Number)
		if !ok {
			return p.errf("expected number, got %s", tokDesc(tok))
		}
		v, err := strconv.ParseFloat(n.String(), 64)
		if err != nil {
			return p.errf("bad number %q", n.String())
		}
		if v < lo || v > hi {
			return p.errf("value %v outside [%g, %g]", n.String(), lo, hi)
		}
		*dst = v
		return nil
	}
}

// nonneg is num with only a lower bound of zero.
func (p *parser) nonneg(dst *float64) func() error {
	return p.num(dst, 0, maxFinite)
}

// maxFinite bounds accepted numbers: large enough for any realistic cost or
// capacity, small enough that downstream arithmetic cannot overflow.
const maxFinite = 1e15

func (p *parser) parseDocument(doc *Document) error {
	return p.object(map[string]func() error{
		"name": p.str(&doc.Name),
		"components": func() error {
			return p.array(func(int) error {
				var c ComponentDef
				if err := p.parseComponent(&c); err != nil {
					return err
				}
				doc.Components = append(doc.Components, c)
				return nil
			})
		},
		"apis": func() error {
			return p.array(func(int) error {
				var a APIDef
				if err := p.parseAPI(&a); err != nil {
					return err
				}
				doc.APIs = append(doc.APIs, a)
				return nil
			})
		},
	})
}

func (p *parser) parseComponent(c *ComponentDef) error {
	return p.object(map[string]func() error{
		"name":         p.str(&c.Name),
		"stateful":     p.boolean(&c.Stateful),
		"base_cpu":     p.nonneg(&c.BaseCPU),
		"base_memory":  p.nonneg(&c.BaseMemory),
		"cpu_capacity": p.nonneg(&c.CPUCapacity),
		"cache_max":    p.nonneg(&c.CacheMax),
		"cache_decay":  p.num(&c.CacheDecay, 0, 1),
	})
}

func (p *parser) parseAPI(a *APIDef) error {
	return p.object(map[string]func() error{
		"name":       p.str(&a.Name),
		"weight":     p.nonneg(&a.Weight),
		"payload_cv": p.num(&a.PayloadCV, 0, 10),
		"templates": func() error {
			return p.array(func(int) error {
				var t TemplateDef
				if err := p.parseTemplate(&t); err != nil {
					return err
				}
				a.Templates = append(a.Templates, t)
				return nil
			})
		},
	})
}

func (p *parser) parseTemplate(t *TemplateDef) error {
	return p.object(map[string]func() error{
		"prob": p.num(&t.Prob, 0, 1),
		"root": func() error {
			n, err := p.parseNode()
			if err != nil {
				return err
			}
			t.Root = n
			return nil
		},
	})
}

func (p *parser) parseNode() (*NodeDef, error) {
	n := &NodeDef{}
	err := p.object(map[string]func() error{
		"component": p.str(&n.Component),
		"operation": p.str(&n.Operation),
		"cost":      func() error { return p.parseCost(n) },
		"calls": func() error {
			return p.array(func(int) error {
				child, err := p.parseNode()
				if err != nil {
					return err
				}
				n.Calls = append(n.Calls, child)
				return nil
			})
		},
	})
	if err != nil {
		return nil, err
	}
	return n, nil
}

func (p *parser) parseCost(n *NodeDef) error {
	return p.object(map[string]func() error{
		"cpu_ms":    p.nonneg(&n.Cost.CPUms),
		"mem_mib":   p.nonneg(&n.Cost.MemMiB),
		"cache_mib": p.nonneg(&n.Cost.CacheMiB),
		"write_ops": p.nonneg(&n.Cost.WriteOps),
		"write_kib": p.nonneg(&n.Cost.WriteKiB),
		"disk_mib":  p.nonneg(&n.Cost.DiskMiB),
	})
}
