package topo

import (
	"testing"

	"repro/internal/app"
	"repro/internal/sim"
	"repro/internal/workload"
)

// builtins enumerates the bundled Go-coded applications with their default
// traffic mixes — the corpus the DSL must represent losslessly.
func builtins() map[string]struct {
	spec *app.Spec
	mix  workload.Mix
} {
	return map[string]struct {
		spec *app.Spec
		mix  workload.Mix
	}{
		"social": {app.SocialNetwork(), workload.SocialDefaultMix()},
		"hotel":  {app.HotelReservation(), workload.HotelDefaultMix()},
		"media":  {app.MediaMicroservices(), workload.Mix(app.MediaDefaultMix())},
	}
}

// simFingerprint drives a short but full simulation (diurnal traffic, default
// measurement noise) and returns the run's bit-exact fingerprint.
func simFingerprint(t *testing.T, spec *app.Spec, mix workload.Mix) string {
	t.Helper()
	prog := workload.Uniform(1, workload.DaySpec{Shape: workload.TwoPeak{}, Mix: mix, PeakRPS: 40})
	prog.WindowsPerDay = 48
	c, err := sim.NewCluster(spec, 7)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	run, err := c.Run(prog.Generate())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return sim.Fingerprint(run)
}

// TestBuiltinsRoundTripBitIdentical is the DSL completeness proof: every
// bundled application, exported to the DSL and parsed back, must drive the
// simulator to the exact fingerprint of the original spec — every float
// survives the JSON trip bit for bit.
func TestBuiltinsRoundTripBitIdentical(t *testing.T) {
	for name, b := range builtins() {
		t.Run(name, func(t *testing.T) {
			want := simFingerprint(t, b.spec, b.mix)

			doc := FromSpec(b.spec, b.mix)
			data := Encode(doc)
			back, err := Parse(data)
			if err != nil {
				t.Fatalf("Parse(Encode(%s)): %v", name, err)
			}
			got := simFingerprint(t, back.Spec(), back.Mix())
			if got != want {
				t.Fatalf("%s: fingerprint drifted through DSL round-trip: %s != %s", name, got, want)
			}
		})
	}
}

// TestEncodeStable checks the canonical encoding is a fixed point:
// Encode(Parse(Encode(d))) == Encode(d).
func TestEncodeStable(t *testing.T) {
	for name, b := range builtins() {
		doc := FromSpec(b.spec, b.mix)
		data := Encode(doc)
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("Parse(%s): %v", name, err)
		}
		if again := Encode(back); string(again) != string(data) {
			t.Fatalf("%s: encoding is not a fixed point", name)
		}
	}
}

// TestMixRoundTrip checks traffic weights survive the trip bit-exactly.
func TestMixRoundTrip(t *testing.T) {
	b := builtins()["social"]
	doc := FromSpec(b.spec, b.mix)
	back, err := Parse(Encode(doc))
	if err != nil {
		t.Fatal(err)
	}
	got := back.Mix()
	for api, w := range b.mix {
		if got[api] != w {
			t.Fatalf("mix[%s] = %v, want %v", api, got[api], w)
		}
	}
}
