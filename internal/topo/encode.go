package topo

import (
	"bytes"
	"encoding/json"
	"strconv"

	"repro/internal/app"
)

// Encode renders the document as canonical topology-DSL JSON. The encoding
// is deterministic — fields in a fixed order, floats in shortest
// round-trip form (strconv 'g' with precision -1), zero-valued optional
// fields omitted — so the same document always produces the same bytes and
// Parse(Encode(d)) reconstructs d exactly, down to the float bit patterns
// the simulator consumes.
func Encode(d *Document) []byte {
	var w encoder
	w.line(0, "{")
	w.line(1, `"name": `+quote(d.Name)+",")
	w.line(1, `"components": [`)
	for i, c := range d.Components {
		w.component(2, c, i == len(d.Components)-1)
	}
	w.line(1, "],")
	w.line(1, `"apis": [`)
	for i, a := range d.APIs {
		w.api(2, a, i == len(d.APIs)-1)
	}
	w.line(1, "]")
	w.line(0, "}")
	return w.buf.Bytes()
}

type encoder struct {
	buf bytes.Buffer
}

const indentUnit = "  "

func (w *encoder) indent(depth int) {
	for i := 0; i < depth; i++ {
		w.buf.WriteString(indentUnit)
	}
}

func (w *encoder) line(depth int, s string) {
	w.indent(depth)
	w.buf.WriteString(s)
	w.buf.WriteByte('\n')
}

// component renders one component as a single compact line.
func (w *encoder) component(depth int, c ComponentDef, last bool) {
	w.indent(depth)
	w.buf.WriteString(`{"name": ` + quote(c.Name))
	if c.Stateful {
		w.buf.WriteString(`, "stateful": true`)
	}
	w.field("base_cpu", c.BaseCPU)
	w.field("base_memory", c.BaseMemory)
	w.field("cpu_capacity", c.CPUCapacity)
	w.field("cache_max", c.CacheMax)
	w.field("cache_decay", c.CacheDecay)
	w.buf.WriteByte('}')
	if !last {
		w.buf.WriteByte(',')
	}
	w.buf.WriteByte('\n')
}

func (w *encoder) api(depth int, a APIDef, last bool) {
	w.line(depth, "{")
	w.line(depth+1, `"name": `+quote(a.Name)+",")
	if a.Weight != 0 {
		w.line(depth+1, `"weight": `+num(a.Weight)+",")
	}
	if a.PayloadCV != 0 {
		w.line(depth+1, `"payload_cv": `+num(a.PayloadCV)+",")
	}
	w.line(depth+1, `"templates": [`)
	for i, t := range a.Templates {
		w.template(depth+2, t, i == len(a.Templates)-1)
	}
	w.line(depth+1, "]")
	w.closing(depth, last)
}

func (w *encoder) template(depth int, t TemplateDef, last bool) {
	w.line(depth, "{")
	w.line(depth+1, `"prob": `+num(t.Prob)+",")
	w.indent(depth + 1)
	w.buf.WriteString(`"root": `)
	w.node(depth+1, t.Root)
	w.buf.WriteByte('\n')
	w.closing(depth, last)
}

// node renders an invocation node; nested calls indent one level per hop so
// the JSON reads like the invocation tree it encodes. The opening brace is
// written at the current buffer position (no leading indent); the closing
// brace lands on its own line at depth.
func (w *encoder) node(depth int, n *NodeDef) {
	if n == nil {
		w.buf.WriteString("null")
		return
	}
	w.buf.WriteString(`{"component": ` + quote(n.Component) + `, "operation": ` + quote(n.Operation))
	if n.Cost != (app.Cost{}) {
		w.buf.WriteString(`, "cost": {`)
		first := true
		costField := func(name string, v float64) {
			if v == 0 {
				return
			}
			if !first {
				w.buf.WriteString(", ")
			}
			first = false
			w.buf.WriteString(quote(name) + ": " + num(v))
		}
		costField("cpu_ms", n.Cost.CPUms)
		costField("mem_mib", n.Cost.MemMiB)
		costField("cache_mib", n.Cost.CacheMiB)
		costField("write_ops", n.Cost.WriteOps)
		costField("write_kib", n.Cost.WriteKiB)
		costField("disk_mib", n.Cost.DiskMiB)
		w.buf.WriteByte('}')
	}
	if len(n.Calls) > 0 {
		w.buf.WriteString(`, "calls": [`)
		w.buf.WriteByte('\n')
		for i, c := range n.Calls {
			w.indent(depth + 1)
			w.node(depth+1, c)
			if i != len(n.Calls)-1 {
				w.buf.WriteByte(',')
			}
			w.buf.WriteByte('\n')
		}
		w.indent(depth)
		w.buf.WriteByte(']')
	}
	w.buf.WriteByte('}')
}

// field appends `, "name": v` unless v is zero (optional-field omission).
func (w *encoder) field(name string, v float64) {
	if v == 0 {
		return
	}
	w.buf.WriteString(`, ` + quote(name) + `: ` + num(v))
}

// closing writes "}" or "}," on its own line.
func (w *encoder) closing(depth int, last bool) {
	if last {
		w.line(depth, "}")
	} else {
		w.line(depth, "},")
	}
}

// num formats a float in the shortest form that parses back bit-identically.
func num(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// quote JSON-escapes a string.
func quote(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
