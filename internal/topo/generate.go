package topo

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/app"
)

// Config sizes a generated topology. The zero value of every field except
// Components is usable; Generate applies the documented defaults.
type Config struct {
	// Seed drives every random choice. The same (Seed, size knobs) yields
	// a byte-identical document on every platform.
	Seed int64
	// Components is the total component budget across all tiers
	// (clamped to a minimum of 5: one entry, one logic, one cache, two
	// stores is the smallest meaningful topology).
	Components int
	// APIs is the endpoint count; 0 derives max(3, Components/8).
	APIs int
	// MaxDepth bounds the logic-tier call depth below the entry node;
	// 0 means 4.
	MaxDepth int
	// MaxFanout bounds the children of one logic node; 0 means 3.
	MaxFanout int
}

// withDefaults clamps and fills the config.
func (c Config) withDefaults() Config {
	if c.Components < 5 {
		c.Components = 5
	}
	if c.APIs <= 0 {
		c.APIs = c.Components / 8
		if c.APIs < 3 {
			c.APIs = 3
		}
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 4
	}
	if c.MaxFanout <= 0 {
		c.MaxFanout = 3
	}
	return c
}

// ParseGenArg decodes the flag form "seed=7,components=200[,apis=N]
// [,depth=N][,fanout=N]" — the text after "gen:" in -app arguments.
func ParseGenArg(s string) (Config, error) {
	var cfg Config
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return cfg, fmt.Errorf("topo: gen parameter %q is not key=value", kv)
		}
		n, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
		if err != nil || n < 0 {
			return cfg, fmt.Errorf("topo: bad gen value %q for %q", val, key)
		}
		switch strings.TrimSpace(key) {
		case "seed":
			cfg.Seed = n
		case "components":
			cfg.Components = int(n)
		case "apis":
			cfg.APIs = int(n)
		case "depth":
			cfg.MaxDepth = int(n)
		case "fanout":
			cfg.MaxFanout = int(n)
		default:
			return cfg, fmt.Errorf("topo: unknown gen parameter %q (want seed, components, apis, depth, fanout)", key)
		}
	}
	if cfg.Components == 0 {
		return cfg, fmt.Errorf("topo: gen requires components=N")
	}
	return cfg, nil
}

// rng is a splitmix64 stream. All draws are integer arithmetic plus one
// IEEE-exact division, so sequences are bit-identical across platforms —
// the same determinism discipline as internal/faults, sequenced rather
// than coordinate-hashed because generation order is itself fixed.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float draws a uniform variate in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn draws a uniform integer in [0, n).
func (r *rng) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// in draws a uniform variate in [lo, hi).
func (r *rng) in(lo, hi float64) float64 { return lo + (hi-lo)*r.float() }

// round keeps p decimal digits — generated specs stay human-readable.
func round(v float64, p int) float64 {
	k := math.Pow(10, float64(p))
	return math.Round(v*k) / k
}

// tiers is the component layout of one generated topology.
type tiers struct {
	entries []string // API gateways / front-end webservers
	logic   []string // stateless business-logic services
	caches  []string // Redis/Memcached-style cache components
	stores  []string // stateful database components
}

// serviceStems name the business domains generated services belong to.
var serviceStems = []string{
	"Auth", "User", "Catalog", "Order", "Search", "Feed", "Media",
	"Billing", "Notify", "Session", "Profile", "Inventory", "Rating",
	"Geo", "Text", "Upload", "Index", "Graph", "Queue", "Stream",
	"Ledger", "Recommend", "Social", "Review", "Checkout", "Shipping",
}

var apiVerbs = []string{"get", "list", "compose", "update", "search", "submit", "sync", "browse"}

func stem(i int) string { return serviceStems[i%len(serviceStems)] }

// Generate emits a production-like topology for the config: components in
// tiered layers, one logic subtree per API with irregular fan-out, shared
// hub services, and power-law-shared backing stores. See the package
// comment for the model; the output always passes Document.Validate.
func Generate(cfg Config) *Document {
	cfg = cfg.withDefaults()
	r := &rng{s: uint64(cfg.Seed)}
	d := &Document{Name: fmt.Sprintf("gen-%d-c%d", cfg.Seed, cfg.Components)}

	t := layout(cfg)
	components(d, r, t)

	// Partition the logic tier into one disjoint subtree per API — the
	// service-ownership boundaries of a real organisation — after an
	// rng shuffle so the partition differs per seed.
	logicIdx := make([]int, len(t.logic))
	for i := range logicIdx {
		logicIdx[i] = i
	}
	for i := len(logicIdx) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		logicIdx[i], logicIdx[j] = logicIdx[j], logicIdx[i]
	}
	chunks := partition(r, logicIdx, cfg.APIs)

	// Hub services (auth/session-style) are called from many APIs on top
	// of whatever subtree owns them.
	nHubs := len(t.logic) / 12
	if nHubs < 1 {
		nHubs = 1
	}
	if nHubs > 5 {
		nHubs = 5
	}
	hubs := t.logic[:nHubs]

	leafSeq := 0 // global leaf counter driving store/cache coverage
	for i := 0; i < cfg.APIs; i++ {
		d.APIs = append(d.APIs, genAPI(r, cfg, t, chunks[i%len(chunks)], hubs, i, &leafSeq))
	}
	return d
}

// layout splits the component budget into tiers.
func layout(cfg Config) tiers {
	c := cfg.Components
	nEntry := 1 + c/40
	if nEntry > 8 {
		nEntry = 8
	}
	nStore := c * 22 / 100
	if nStore < 2 {
		nStore = 2
	}
	nCache := c * 18 / 100
	if nCache < 1 {
		nCache = 1
	}
	nLogic := c - nEntry - nStore - nCache
	for nLogic < 1 { // tiny budgets: shrink the data tiers first
		if nStore > 2 {
			nStore--
		} else if nCache > 1 {
			nCache--
		} else {
			nEntry--
		}
		nLogic = c - nEntry - nStore - nCache
	}
	var t tiers
	for i := 0; i < nEntry; i++ {
		t.entries = append(t.entries, fmt.Sprintf("Gateway%02d", i))
	}
	for i := 0; i < nLogic; i++ {
		t.logic = append(t.logic, fmt.Sprintf("%sService%03d", stem(i), i))
	}
	for i := 0; i < nCache; i++ {
		t.caches = append(t.caches, fmt.Sprintf("%sCache%03d", stem(i), i))
	}
	for i := 0; i < nStore; i++ {
		t.stores = append(t.stores, fmt.Sprintf("%sDB%03d", stem(i), i))
	}
	return t
}

// components draws per-tier resource parameters for every component.
func components(d *Document, r *rng, t tiers) {
	for _, name := range t.entries {
		base := round(r.in(10, 22), 1)
		d.Components = append(d.Components, ComponentDef{
			Name: name, BaseCPU: base,
			BaseMemory:  round(r.in(90, 140), 0),
			CPUCapacity: round(base*r.in(7, 10), 0),
		})
	}
	for _, name := range t.logic {
		base := round(r.in(4, 12), 1)
		d.Components = append(d.Components, ComponentDef{
			Name: name, BaseCPU: base,
			BaseMemory:  round(r.in(90, 220), 0),
			CPUCapacity: round(base*r.in(8, 14), 0),
		})
	}
	for _, name := range t.caches {
		base := round(r.in(4, 9), 1)
		d.Components = append(d.Components, ComponentDef{
			Name: name, BaseCPU: base,
			BaseMemory:  round(r.in(80, 130), 0),
			CPUCapacity: round(base*r.in(10, 16), 0),
			CacheMax:    round(r.in(250, 900), 0),
			CacheDecay:  round(r.in(0.98, 0.995), 4),
		})
	}
	for _, name := range t.stores {
		base := round(r.in(10, 20), 1)
		d.Components = append(d.Components, ComponentDef{
			Name: name, Stateful: true, BaseCPU: base,
			BaseMemory:  round(r.in(250, 400), 0),
			CPUCapacity: round(base*r.in(7, 10), 0),
			CacheMax:    round(r.in(300, 900), 0),
			CacheDecay:  0.995,
		})
	}
}

// partition splits the shuffled logic indices into n non-empty chunks of
// randomly varying size (when there are at least n indices).
func partition(r *rng, idx []int, n int) [][]int {
	chunks := make([][]int, n)
	if len(idx) <= n {
		for i, v := range idx {
			chunks[i%n] = append(chunks[i%n], v)
		}
	} else {
		// One guaranteed member each, remainder scattered.
		for i := 0; i < n; i++ {
			chunks[i] = append(chunks[i], idx[i])
		}
		for _, v := range idx[n:] {
			k := r.intn(n)
			chunks[k] = append(chunks[k], v)
		}
	}
	// Tiny topologies can leave chunks empty; backfill from the start so
	// every API owns at least one logic service.
	for i := range chunks {
		if len(chunks[i]) == 0 {
			chunks[i] = []int{idx[i%len(idx)]}
		}
	}
	return chunks
}

// genAPI builds one endpoint: a call tree over its logic chunk with
// hit/miss (or small/large write) template variants.
func genAPI(r *rng, cfg Config, t tiers, chunk []int, hubs []string, i int, leafSeq *int) APIDef {
	name := fmt.Sprintf("/%s%s%02d", apiVerbs[r.intn(len(apiVerbs))], stem(chunk[0]), i)
	isWrite := r.float() < 0.35

	// The logic subtree: chunk[0] is the root; later members attach to a
	// random earlier member whose depth and fan-out allow it, giving the
	// irregular shapes of production call graphs.
	nodes := make([]*NodeDef, len(chunk))
	depths := make([]int, len(chunk))
	for j, li := range chunk {
		nodes[j] = &NodeDef{
			Component: t.logic[li],
			Operation: opName(r, isWrite),
			Cost: app.Cost{
				CPUms:  round(r.in(150, 2200), 0),
				MemMiB: round(r.in(0.03, 0.5), 3),
			},
		}
		if j == 0 {
			continue
		}
		parent := 0
		for tries := 0; tries < 4; tries++ {
			k := r.intn(j)
			if depths[k] < cfg.MaxDepth && len(nodes[k].Calls) < cfg.MaxFanout {
				parent = k
				break
			}
		}
		nodes[parent].Calls = append(nodes[parent].Calls, nodes[j])
		depths[j] = depths[parent] + 1
	}

	// Cross-cutting hub call (auth/session verification) from the root.
	if h := hubs[r.intn(len(hubs))]; r.float() < 0.6 && h != nodes[0].Component {
		nodes[0].Calls = append([]*NodeDef{{
			Component: h,
			Operation: "verify",
			Cost:      app.Cost{CPUms: round(r.in(120, 500), 0), MemMiB: round(r.in(0.02, 0.12), 3)},
		}}, nodes[0].Calls...)
	}

	// Each leaf gets a data dependency: a cache in front of a backing
	// store. The first len(caches)/len(stores) assignments walk the tiers
	// in order so every data component is used at least once; after that,
	// a power-law pick concentrates load on a few hot shared stores.
	type dataRef struct{ cache, store int }
	leaves := leafNodes(nodes)
	refs := make([]dataRef, len(leaves))
	for j := range leaves {
		seq := *leafSeq
		*leafSeq++
		ref := dataRef{
			cache: seq % len(t.caches),
			store: seq % len(t.stores),
		}
		if seq >= len(t.caches) {
			ref.cache = int(math.Pow(r.float(), 2) * float64(len(t.caches)))
		}
		if seq >= len(t.stores) {
			ref.store = int(math.Pow(r.float(), 2) * float64(len(t.stores)))
		}
		refs[j] = ref
	}

	// Template variants over clones of the shared tree: a cache-hit path,
	// and either a cache-miss read path or a store write path.
	attach := func(root *NodeDef, variant string) *NodeDef {
		out := clone(root)
		for j, leaf := range leafNodes([]*NodeDef{out}) {
			ref := refs[j%len(refs)]
			cacheNode := &NodeDef{
				Component: t.caches[ref.cache],
				Operation: "get",
				Cost: app.Cost{
					CPUms:    round(r.in(120, 450), 0),
					MemMiB:   round(r.in(0.02, 0.1), 3),
					CacheMiB: round(r.in(0.004, 0.03), 4),
				},
			}
			switch variant {
			case "hit":
				leaf.Calls = append(leaf.Calls, cacheNode)
			case "miss":
				leaf.Calls = append(leaf.Calls, cacheNode, &NodeDef{
					Component: t.stores[ref.store],
					Operation: "find",
					Cost: app.Cost{
						CPUms:    round(r.in(500, 1800), 0),
						MemMiB:   round(r.in(0.1, 0.35), 3),
						CacheMiB: round(r.in(0.005, 0.025), 4),
					},
				})
			case "write":
				leaf.Calls = append(leaf.Calls, &NodeDef{
					Component: t.stores[ref.store],
					Operation: "insert",
					Cost: app.Cost{
						CPUms:    round(r.in(700, 2600), 0),
						MemMiB:   round(r.in(0.1, 0.4), 3),
						WriteOps: round(r.in(2, 12), 0),
						WriteKiB: round(r.in(2, 260), 0),
						DiskMiB:  round(r.in(0.0005, 0.03), 4),
					},
				}, &NodeDef{
					Component: t.caches[ref.cache],
					Operation: "update",
					Cost: app.Cost{
						CPUms:    round(r.in(150, 500), 0),
						MemMiB:   round(r.in(0.02, 0.1), 3),
						CacheMiB: round(r.in(0.004, 0.02), 4),
					},
				})
			}
		}
		return out
	}

	// Entry node in front of the whole tree.
	wrap := func(inner *NodeDef) *NodeDef {
		return &NodeDef{
			Component: t.entries[i%len(t.entries)],
			Operation: strings.TrimPrefix(name, "/"),
			Cost: app.Cost{
				CPUms:  round(r.in(250, 900), 0),
				MemMiB: round(r.in(0.05, 0.4), 3),
			},
			Calls: []*NodeDef{inner},
		}
	}

	p := round(r.in(0.45, 0.8), 2)
	var templates []TemplateDef
	if isWrite {
		templates = []TemplateDef{
			{Prob: p, Root: wrap(attach(nodes[0], "write"))},
			{Prob: 1 - p, Root: wrap(attach(nodes[0], "miss"))},
		}
	} else {
		templates = []TemplateDef{
			{Prob: p, Root: wrap(attach(nodes[0], "hit"))},
			{Prob: 1 - p, Root: wrap(attach(nodes[0], "miss"))},
		}
	}
	return APIDef{
		Name:      name,
		Weight:    round(0.02+r.float()*r.float(), 3),
		PayloadCV: round(r.in(0.05, 0.3), 2),
		Templates: templates,
	}
}

func opName(r *rng, isWrite bool) string {
	readOps := []string{"resolve", "hydrate", "assemble", "lookup", "rank", "filter"}
	writeOps := []string{"stage", "commit", "fanout", "enqueue", "apply", "index"}
	if isWrite {
		return writeOps[r.intn(len(writeOps))]
	}
	return readOps[r.intn(len(readOps))]
}

// leafNodes returns the leaves of the forest in deterministic DFS order.
func leafNodes(roots []*NodeDef) []*NodeDef {
	var out []*NodeDef
	var rec func(n *NodeDef)
	rec = func(n *NodeDef) {
		if len(n.Calls) == 0 {
			out = append(out, n)
			return
		}
		for _, c := range n.Calls {
			rec(c)
		}
	}
	for _, n := range roots {
		rec(n)
	}
	return out
}

// clone deep-copies an invocation tree.
func clone(n *NodeDef) *NodeDef {
	out := &NodeDef{Component: n.Component, Operation: n.Operation, Cost: n.Cost}
	for _, c := range n.Calls {
		out.Calls = append(out.Calls, clone(c))
	}
	return out
}
