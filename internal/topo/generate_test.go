package topo

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// TestGenerateDeterministic: the same seed must produce byte-identical
// documents; different seeds must not.
func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Components: 60}
	a := Encode(Generate(cfg))
	b := Encode(Generate(cfg))
	if string(a) != string(b) {
		t.Fatal("same seed produced different documents")
	}
	c := Encode(Generate(Config{Seed: 8, Components: 60}))
	if string(a) == string(c) {
		t.Fatal("different seeds produced identical documents")
	}
}

// TestGenerateValidatesAcrossSizes: every generated topology must pass full
// validation (and therefore deploy), from the minimum clamp up to
// production scale, across several seeds.
func TestGenerateValidatesAcrossSizes(t *testing.T) {
	for _, n := range []int{1, 5, 12, 30, 100, 200, 300} {
		for seed := int64(0); seed < 3; seed++ {
			doc := Generate(Config{Seed: seed, Components: n})
			if err := doc.Validate(); err != nil {
				t.Fatalf("seed=%d components=%d: %v", seed, n, err)
			}
			want := n
			if want < 5 {
				want = 5
			}
			if got := len(doc.Components); got != want {
				t.Fatalf("seed=%d components=%d: got %d components", seed, n, got)
			}
		}
	}
}

// TestGenerateRoundTrips: generated documents live in the same DSL as
// everything else — Encode → Parse must reproduce them.
func TestGenerateRoundTrips(t *testing.T) {
	doc := Generate(Config{Seed: 3, Components: 80})
	data := Encode(doc)
	back, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse(Encode(gen)): %v", err)
	}
	if again := Encode(back); string(again) != string(data) {
		t.Fatal("generated document is not an encoding fixed point")
	}
}

// TestGenerateSimulates: a generated topology must run end-to-end through
// the simulator.
func TestGenerateSimulates(t *testing.T) {
	doc := Generate(Config{Seed: 7, Components: 40})
	prog := workload.Uniform(1, workload.DaySpec{Shape: workload.TwoPeak{}, Mix: doc.Mix(), PeakRPS: 60})
	prog.WindowsPerDay = 24
	c, err := sim.NewCluster(doc.Spec(), 1)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	run, err := c.Run(prog.Generate())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if run.NumRequests() == 0 {
		t.Fatal("generated topology produced no traffic")
	}
}

// TestGenerateShape sanity-checks the tiered layout: stateful stores exist,
// caches exist, and every API has at least two templates.
func TestGenerateShape(t *testing.T) {
	doc := Generate(Config{Seed: 11, Components: 100, APIs: 12})
	var stores, caches, gateways int
	for _, c := range doc.Components {
		if c.Stateful {
			stores++
		}
		if strings.Contains(c.Name, "Cache") {
			caches++
		}
		if strings.HasPrefix(c.Name, "Gateway") {
			gateways++
		}
	}
	if stores < 2 || caches < 1 || gateways < 1 {
		t.Fatalf("layout missing tiers: stores=%d caches=%d gateways=%d", stores, caches, gateways)
	}
	if len(doc.APIs) != 12 {
		t.Fatalf("got %d APIs, want 12", len(doc.APIs))
	}
	for _, a := range doc.APIs {
		if len(a.Templates) < 2 {
			t.Fatalf("API %s has %d templates, want >=2", a.Name, len(a.Templates))
		}
		if a.Weight <= 0 {
			t.Fatalf("API %s has non-positive weight %v", a.Name, a.Weight)
		}
	}
}

// TestParseGenArg covers the -app gen:... flag syntax.
func TestParseGenArg(t *testing.T) {
	cfg, err := ParseGenArg("seed=7,components=200,apis=20,depth=5,fanout=4")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 7, Components: 200, APIs: 20, MaxDepth: 5, MaxFanout: 4}
	if cfg != want {
		t.Fatalf("got %+v, want %+v", cfg, want)
	}
	for _, bad := range []string{"", "components", "components=x", "seed=1", "bogus=3,components=5", "components=-2"} {
		if _, err := ParseGenArg(bad); err == nil {
			t.Fatalf("ParseGenArg(%q) accepted", bad)
		}
	}
}
