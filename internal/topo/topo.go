// Package topo makes application topologies data instead of code: a
// declarative JSON spec format (the topology DSL) for the microservice
// applications the simulator executes, plus a seeded generator that emits
// production-scale topologies on demand.
//
// The DSL half is a strict parser and a canonical encoder for Document, a
// faithful mirror of app.Spec extended with per-API traffic weights. Parsing
// is strict: unknown fields, type mismatches, and out-of-range values are
// rejected with line- and field-level errors, and every accepted document
// also passes app.Spec.Validate — Parse never returns a spec the simulator
// would refuse to deploy. Encoding is deterministic (fixed field order,
// shortest round-trip floats, zero-valued optionals omitted), so the same
// document always serialises to the same bytes and the three bundled
// applications round-trip through the format to bit-identical simulation
// fingerprints (see sim.Fingerprint).
//
// The generator half (Generate) turns a Config — seed plus size knobs —
// into a production-like topology: components in tiered layers (entry
// gateways → business-logic services → caches → stateful stores), each API
// owning a subtree of the logic tier with realistic irregular fan-out,
// shared hub services (auth/session-style) called across APIs, and shared
// backing stores picked with a power-law bias so a few hot stores serve
// many APIs, exactly the concentration production call graphs show. All
// randomness is a pure splitmix64 stream off Config.Seed — the same
// discipline as internal/faults — so a given (seed, size) reproduces the
// same document byte for byte on every platform.
package topo

import (
	"repro/internal/app"
	"repro/internal/workload"
)

// Document is a topology DSL document: an application spec plus the per-API
// traffic weights that give workload generators a default mix. It is the
// in-memory form of the JSON format handled by Parse and Encode.
type Document struct {
	// Name identifies the application.
	Name string
	// Components lists every component in declaration order.
	Components []ComponentDef
	// APIs lists every user-facing endpoint in declaration order.
	APIs []APIDef
}

// ComponentDef mirrors app.Component in the DSL.
type ComponentDef struct {
	Name     string
	Stateful bool
	// BaseCPU (millicores) and BaseMemory (MiB) are idle consumption;
	// CPUCapacity bounds queuing inflation; CacheMax and CacheDecay
	// configure cache-driven memory (see app.Component).
	BaseCPU, BaseMemory, CPUCapacity, CacheMax, CacheDecay float64
}

// APIDef mirrors app.API plus a traffic weight.
type APIDef struct {
	Name string
	// Weight is the API's relative share in the default traffic mix.
	// All-zero weights mean a uniform mix.
	Weight float64
	// PayloadCV is the per-request cost spread (see app.API).
	PayloadCV float64
	Templates []TemplateDef
}

// TemplateDef mirrors app.Template.
type TemplateDef struct {
	Prob float64
	Root *NodeDef
}

// NodeDef mirrors app.PathNode: one visit in an invocation-path template.
type NodeDef struct {
	Component string
	Operation string
	Cost      app.Cost
	Calls     []*NodeDef
}

// Spec converts the document to the simulator's application spec.
func (d *Document) Spec() *app.Spec {
	s := &app.Spec{Name: d.Name}
	for _, c := range d.Components {
		s.Components = append(s.Components, app.Component{
			Name:        c.Name,
			Stateful:    c.Stateful,
			BaseCPU:     c.BaseCPU,
			BaseMemory:  c.BaseMemory,
			CPUCapacity: c.CPUCapacity,
			CacheMax:    c.CacheMax,
			CacheDecay:  c.CacheDecay,
		})
	}
	for _, a := range d.APIs {
		api := app.API{Name: a.Name, PayloadCV: a.PayloadCV}
		for _, t := range a.Templates {
			api.Templates = append(api.Templates, app.Template{Prob: t.Prob, Root: t.Root.node()})
		}
		s.APIs = append(s.APIs, api)
	}
	return s
}

func (n *NodeDef) node() *app.PathNode {
	if n == nil {
		return nil
	}
	out := &app.PathNode{Component: n.Component, Operation: n.Operation, Cost: n.Cost}
	for _, c := range n.Calls {
		out.Children = append(out.Children, c.node())
	}
	return out
}

// Mix returns the document's default traffic mix. APIs carry relative
// weights; if no API declares one, the mix is uniform.
func (d *Document) Mix() workload.Mix {
	weighted := false
	for _, a := range d.APIs {
		if a.Weight > 0 {
			weighted = true
			break
		}
	}
	m := make(workload.Mix, len(d.APIs))
	for _, a := range d.APIs {
		if weighted {
			m[a.Name] = a.Weight
		} else {
			m[a.Name] = 1
		}
	}
	return m
}

// FromSpec lifts an application spec (and an optional traffic mix, stored
// as per-API weights) into a document, the inverse of Document.Spec. It is
// how the bundled Go-coded applications export to the DSL.
func FromSpec(spec *app.Spec, mix workload.Mix) *Document {
	d := &Document{Name: spec.Name}
	for _, c := range spec.Components {
		d.Components = append(d.Components, ComponentDef{
			Name:        c.Name,
			Stateful:    c.Stateful,
			BaseCPU:     c.BaseCPU,
			BaseMemory:  c.BaseMemory,
			CPUCapacity: c.CPUCapacity,
			CacheMax:    c.CacheMax,
			CacheDecay:  c.CacheDecay,
		})
	}
	for _, a := range spec.APIs {
		ad := APIDef{Name: a.Name, Weight: mix[a.Name], PayloadCV: a.PayloadCV}
		for _, t := range a.Templates {
			ad.Templates = append(ad.Templates, TemplateDef{Prob: t.Prob, Root: fromNode(t.Root)})
		}
		d.APIs = append(d.APIs, ad)
	}
	return d
}

func fromNode(n *app.PathNode) *NodeDef {
	if n == nil {
		return nil
	}
	out := &NodeDef{Component: n.Component, Operation: n.Operation, Cost: n.Cost}
	for _, c := range n.Children {
		out.Calls = append(out.Calls, fromNode(c))
	}
	return out
}

// Validate checks the document-level extras (traffic weights), then defers
// to app.Spec.Validate for the full application-consistency pass. Parse
// runs this automatically; it is exported for programmatically built
// documents.
func (d *Document) Validate() error {
	for _, a := range d.APIs {
		if a.Weight < 0 || a.Weight != a.Weight {
			return &ParseError{Path: "apis", Msg: "API " + a.Name + ": negative traffic weight"}
		}
	}
	return d.Spec().Validate()
}
