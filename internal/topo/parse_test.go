package topo

import (
	"errors"
	"strings"
	"testing"
)

// minimal is a small valid document used as the base for error-injection
// tests.
const minimal = `{
  "name": "mini",
  "components": [
    {"name": "Web", "base_cpu": 10, "base_memory": 100, "cpu_capacity": 100},
    {"name": "DB", "stateful": true, "base_cpu": 10, "base_memory": 200, "cpu_capacity": 100, "cache_max": 100, "cache_decay": 0.99}
  ],
  "apis": [
    {
      "name": "/get",
      "weight": 1,
      "payload_cv": 0.1,
      "templates": [
        {
          "prob": 1,
          "root": {"component": "Web", "operation": "get", "cost": {"cpu_ms": 500}, "calls": [
            {"component": "DB", "operation": "find", "cost": {"cpu_ms": 800, "cache_mib": 0.01}}
          ]}
        }
      ]
    }
  ]
}`

func TestParseMinimal(t *testing.T) {
	doc, err := Parse([]byte(minimal))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if doc.Name != "mini" || len(doc.Components) != 2 || len(doc.APIs) != 1 {
		t.Fatalf("bad decode: %+v", doc)
	}
	if doc.APIs[0].Templates[0].Root.Calls[0].Cost.CPUms != 800 {
		t.Fatal("nested call cost lost")
	}
}

// TestParseErrorsLocate checks that malformed documents fail with errors
// naming the line and JSON path of the offending field.
func TestParseErrorsLocate(t *testing.T) {
	cases := []struct {
		name  string
		mut   func(string) string
		wants []string // substrings required in the error text
	}{
		{
			"unknown field",
			func(s string) string { return strings.Replace(s, `"weight"`, `"wieght"`, 1) },
			[]string{"unknown field", "wieght", "valid fields"},
		},
		{
			"duplicate field",
			func(s string) string { return strings.Replace(s, `"weight": 1,`, `"weight": 1, "weight": 2,`, 1) },
			[]string{"duplicate field", "weight"},
		},
		{
			"type mismatch",
			func(s string) string { return strings.Replace(s, `"base_cpu": 10`, `"base_cpu": "ten"`, 1) },
			[]string{"expected number", `"ten"`, "base_cpu"},
		},
		{
			"out of range",
			func(s string) string { return strings.Replace(s, `"cache_decay": 0.99`, `"cache_decay": 1.5`, 1) },
			[]string{"outside", "cache_decay"},
		},
		{
			"negative cost",
			func(s string) string { return strings.Replace(s, `"cpu_ms": 800`, `"cpu_ms": -800`, 1) },
			[]string{"outside", "cpu_ms", "calls[0]"},
		},
		{
			"syntax error",
			func(s string) string { return strings.Replace(s, `"apis": [`, `"apis": [,`, 1) },
			[]string{"line"},
		},
		{
			"trailing garbage",
			func(s string) string { return s + " {}" },
			[]string{"trailing"},
		},
		{
			"truncated",
			func(s string) string { return s[:len(s)/2] },
			[]string{"unexpected end of input"},
		},
		{
			"undeclared component",
			func(s string) string { return strings.Replace(s, `"component": "DB"`, `"component": "NoSuch"`, 1) },
			[]string{"NoSuch", "undeclared"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.mut(minimal)))
			if err == nil {
				t.Fatal("Parse accepted a bad document")
			}
			for _, want := range tc.wants {
				if !strings.Contains(err.Error(), want) {
					t.Fatalf("error %q missing %q", err, want)
				}
			}
		})
	}
}

// TestParseErrorHasLine checks structural errors carry a usable position.
func TestParseErrorHasLine(t *testing.T) {
	bad := strings.Replace(minimal, `"base_cpu": 10, "base_memory": 100`, `"base_cpu": true, "base_memory": 100`, 1)
	_, err := Parse([]byte(bad))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %T: %v", err, err)
	}
	if pe.Line != 4 {
		t.Fatalf("error on line %d, want 4: %v", pe.Line, pe)
	}
	if !strings.Contains(pe.Path, "components[0].base_cpu") {
		t.Fatalf("path %q does not locate the field", pe.Path)
	}
}

// TestResolve covers every -app argument form.
func TestResolve(t *testing.T) {
	for _, name := range []string{"social", "hotel", "media"} {
		spec, mix, err := Resolve(name)
		if err != nil {
			t.Fatalf("Resolve(%s): %v", name, err)
		}
		if spec == nil || len(mix) == 0 {
			t.Fatalf("Resolve(%s): empty result", name)
		}
	}
	spec, mix, err := Resolve("gen:seed=7,components=30")
	if err != nil {
		t.Fatalf("Resolve(gen): %v", err)
	}
	if len(spec.Components) != 30 || len(mix) == 0 {
		t.Fatalf("Resolve(gen): %d components", len(spec.Components))
	}
	if _, _, err := Resolve("trainticket"); err == nil {
		t.Fatal("Resolve accepted an unknown app")
	}
	if _, _, err := Resolve("@/no/such/file.json"); err == nil {
		t.Fatal("Resolve accepted a missing file")
	}
}
