package layers

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/nn/ad"
)

// TestFusedStepMatchesReference drives Step and StepReference through an
// identical multi-step forward+backward round and compares outputs and
// parameter gradients. On amd64 (no FMA contraction by the Go compiler)
// the comparison is exact-bit; elsewhere a tight epsilon guards against
// architecture-specific expression contraction.
func TestFusedStepMatchesReference(t *testing.T) {
	const in, hid, steps = 5, 7, 6
	rng := rand.New(rand.NewSource(42))
	g := NewGRUCell("equiv", in, hid, rng)
	xs := make([][]float64, steps)
	for i := range xs {
		row := make([]float64, in)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		xs[i] = row
	}
	tgt := make([]float64, hid)
	for i := range tgt {
		tgt[i] = rng.NormFloat64()
	}

	run := func(step func(t *ad.Tape, x, h *ad.Value) *ad.Value) (out []float64, grads []float64) {
		for _, p := range g.Params() {
			p.ZeroGrad()
		}
		tape := ad.NewTape()
		h := tape.Const(make([]float64, hid))
		losses := make([]*ad.Value, 0, steps)
		for _, x := range xs {
			h = step(tape, tape.Const(x), h)
			losses = append(losses, tape.SquaredError(h, tgt))
		}
		tape.Backward(tape.ScaleConst(tape.SumScalars(losses...), 1.0/steps))
		out = append(out, h.Data...)
		for _, p := range g.Params() {
			grads = append(grads, p.Grad...)
		}
		return out, grads
	}

	refOut, refGrads := run(g.StepReference)
	fusedOut, fusedGrads := run(g.Step)

	compare := func(what string, ref, fused []float64) {
		t.Helper()
		if len(ref) != len(fused) {
			t.Fatalf("%s: length %d vs %d", what, len(ref), len(fused))
		}
		for i := range ref {
			if runtime.GOARCH == "amd64" {
				if math.Float64bits(ref[i]) != math.Float64bits(fused[i]) {
					t.Errorf("%s[%d]: reference %v (%#x) vs fused %v (%#x)",
						what, i, ref[i], math.Float64bits(ref[i]), fused[i], math.Float64bits(fused[i]))
				}
			} else if diff := math.Abs(ref[i] - fused[i]); diff > 1e-12*(1+math.Abs(ref[i])) {
				t.Errorf("%s[%d]: reference %v vs fused %v (diff %g)", what, i, ref[i], fused[i], diff)
			}
		}
	}
	compare("output", refOut, fusedOut)
	compare("grad", refGrads, fusedGrads)
}

// TestFusedStepNodeCount pins the node-count reduction of the fused kernel:
// one GRU step must record a single op beyond its two Const inputs, where
// the reference chain records dozens.
func TestFusedStepNodeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := NewGRUCell("count", 3, 4, rng)

	count := func(step func(t *ad.Tape, x, h *ad.Value) *ad.Value) int {
		tape := ad.NewTape()
		before := tape.NumNodes()
		x := tape.Const([]float64{0.1, 0.2, 0.3})
		h := tape.Const(make([]float64, 4))
		step(tape, x, h)
		return tape.NumNodes() - before - 2 // exclude the Const inputs
	}

	if n := count(g.Step); n != 1 {
		t.Errorf("fused Step records %d nodes, want 1", n)
	}
	if n := count(g.StepReference); n < 5*count(g.Step) {
		t.Errorf("reference chain records %d nodes; expected at least 5x the fused kernel", n)
	}
}
