package layers

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn/ad"
	"repro/internal/nn/opt"
)

func TestDenseShapesAndParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense("d", 4, 3, rng)
	if got := len(d.Params()); got != 2 {
		t.Fatalf("Params = %d, want 2", got)
	}
	tape := ad.NewTape()
	y := d.Apply(tape, tape.Const([]float64{1, 2, 3, 4}))
	if y.Len() != 3 {
		t.Fatalf("output len = %d, want 3", y.Len())
	}
}

func TestDenseZeroIsZero(t *testing.T) {
	d := NewDenseZero("d", 3, 2)
	tape := ad.NewTape()
	y := d.Apply(tape, tape.Const([]float64{1, 2, 3}))
	for _, v := range y.Data {
		if v != 0 {
			t.Fatal("zero-initialised dense layer must output zero")
		}
	}
}

func TestAPIMaskInitialGate(t *testing.T) {
	m := NewAPIMask("m", 4)
	tape := ad.NewTape()
	x := tape.Const([]float64{2, 4, 6, 8})
	y := m.Apply(tape, x)
	for i, v := range y.Data {
		if math.Abs(v-x.Data[i]*0.5) > 1e-12 {
			t.Fatalf("initial mask must gate at σ(0)=0.5: got %v", y.Data)
		}
	}
	ws := m.Weights()
	for _, w := range ws {
		if w != 0.5 {
			t.Fatalf("Weights = %v, want all 0.5", ws)
		}
	}
}

func TestGRUStepShapeAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := NewGRUCell("g", 3, 5, rng)
	if got := len(g.Params()); got != 9 {
		t.Fatalf("GRU params = %d, want 9", got)
	}
	tape := ad.NewTape()
	h := tape.Const(make([]float64, 5))
	for i := 0; i < 10; i++ {
		h = g.Step(tape, tape.Const([]float64{1, -0.5, 2}), h)
	}
	if h.Len() != 5 {
		t.Fatalf("hidden len = %d, want 5", h.Len())
	}
	for _, v := range h.Data {
		// h is a convex combination of tanh outputs, so |h| ≤ 1.
		if v < -1 || v > 1 {
			t.Fatalf("hidden state out of [-1, 1]: %v", v)
		}
	}
}

// TestGRUZeroInputFixedPoint: with zero weights, the candidate is tanh(0)=0
// and the gates are 0.5, so the hidden state halves each step.
func TestGRUZeroWeightsDecay(t *testing.T) {
	g := NewGRUCellZero("g", 2, 3)
	tape := ad.NewTape()
	h := tape.Const([]float64{1, 1, 1})
	h = g.Step(tape, tape.Const([]float64{5, 5}), h)
	for _, v := range h.Data {
		if math.Abs(v-0.5) > 1e-12 {
			t.Fatalf("expected h = 0.5 after one zero-weight step, got %v", h.Data)
		}
	}
}

// TestGRULearnsMovingAverage trains a 1-unit GRU + dense head to track an
// exponentially smoothed input, a sanity check that gradients flow through
// the recurrence.
func TestGRULearnsMovingAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewGRUCell("g", 1, 4, rng)
	head := NewDense("head", 4, 1, rng)
	params := append(g.Params(), head.Params()...)
	optimizer := opt.NewAdam(params, 0.02)
	optimizer.ClipNorm = 5

	// Data: x_t random walk in [0,1]; y_t = EMA(x, 0.7).
	const T = 120
	xs := make([]float64, T)
	ys := make([]float64, T)
	ema := 0.5
	for i := range xs {
		xs[i] = rng.Float64()
		ema = 0.7*ema + 0.3*xs[i]
		ys[i] = ema
	}
	var last float64
	for epoch := 0; epoch < 150; epoch++ {
		tape := ad.NewTape()
		h := tape.Const(make([]float64, 4))
		var losses []*ad.Value
		for i := 0; i < T; i++ {
			h = g.Step(tape, tape.Const([]float64{xs[i]}), h)
			y := head.Apply(tape, h)
			losses = append(losses, tape.SquaredError(y, []float64{ys[i]}))
		}
		total := tape.ScaleConst(tape.SumScalars(losses...), 1.0/T)
		tape.Backward(total)
		last = total.Scalar()
		optimizer.Step()
	}
	if last > 0.002 {
		t.Errorf("GRU failed to fit EMA: final MSE %v", last)
	}
}

func TestAttentionApplyAndTopPeers(t *testing.T) {
	a := NewAttention("a", []string{"p0", "p1", "p2"})
	a.Alpha.Data[0] = 0.1
	a.Alpha.Data[1] = -2
	a.Alpha.Data[2] = 0.5
	tape := ad.NewTape()
	v := a.Apply(tape, [][]float64{{1, 0}, {0, 1}, {1, 1}})
	want := []float64{0.1 + 0.5, -2 + 0.5}
	for i := range want {
		if math.Abs(v.Data[i]-want[i]) > 1e-12 {
			t.Fatalf("attention = %v, want %v", v.Data, want)
		}
	}
	top := a.TopPeers(2)
	if top[0] != 1 || top[1] != 2 {
		t.Fatalf("TopPeers = %v, want [1 2]", top)
	}
}

func TestFlatParamsLength(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := NewGRUCell("g", 3, 2, rng)
	// 3 gates × (2×3 W + 2×2 U + 2 b) = 3 × 12 = 36.
	if got := len(g.FlatParams()); got != 36 {
		t.Fatalf("FlatParams len = %d, want 36", got)
	}
}
