// Package layers provides the neural building blocks of the DeepRest
// estimator: the learnable API-aware input mask, the GRU recurrent cell
// (paper Equation 2), a fully connected layer, and the cross-component
// attention weights (paper Equation 3).
package layers

import (
	"math/rand"

	"repro/internal/nn/ad"
	"repro/internal/nn/tensor"
)

// Dense is a fully connected layer y = W·x + b.
type Dense struct {
	// In and Out are the layer dimensions.
	In, Out int
	// W and B are the trainable weight matrix and bias.
	W, B *ad.Param
}

// NewDense returns a Glorot-initialised dense layer.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	return &Dense{
		In: in, Out: out,
		W: ad.NewParamInit(name+".W", out, in, rng),
		B: ad.NewParam(name+".b", out, 1),
	}
}

// NewDenseZero returns a zero-initialised dense layer, used as a shell when
// deserialising trained weights.
func NewDenseZero(name string, in, out int) *Dense {
	return &Dense{
		In: in, Out: out,
		W: ad.NewParam(name+".W", out, in),
		B: ad.NewParam(name+".b", out, 1),
	}
}

// Params returns the trainable parameters.
func (d *Dense) Params() []*ad.Param { return []*ad.Param{d.W, d.B} }

// Apply computes W·x + b on the tape.
func (d *Dense) Apply(t *ad.Tape, x *ad.Value) *ad.Value {
	return t.Add(t.MatVec(t.Use(d.W), x), t.Use(d.B))
}

// APIMask is the paper's learnable API-aware mask m (Equation 1): the input
// feature vector is gated element-wise by σ(m), letting each expert discover
// which invocation paths are relevant to the resource it estimates. The
// learned σ(m) is also the interpretability artifact behind Figure 22.
type APIMask struct {
	// M is the raw (pre-sigmoid) mask parameter.
	M *ad.Param
}

// NewAPIMask returns a mask over dim features, initialised at zero so every
// feature starts half-open (σ(0) = 0.5).
func NewAPIMask(name string, dim int) *APIMask {
	return &APIMask{M: ad.NewParam(name+".mask", dim, 1)}
}

// Params returns the trainable parameters.
func (m *APIMask) Params() []*ad.Param { return []*ad.Param{m.M} }

// Apply computes x̃ = σ(m) ⊙ x on the tape.
func (m *APIMask) Apply(t *ad.Tape, x *ad.Value) *ad.Value {
	return t.Mul(t.Sigmoid(t.Use(m.M)), x)
}

// Weights returns the current σ(m) values — how strongly each feature is
// admitted. Values near 1 mark invocation paths the expert relies on.
func (m *APIMask) Weights() []float64 {
	out := make([]float64, len(m.M.Data))
	for i, x := range m.M.Data {
		out[i] = tensor.Sigmoid(x)
	}
	return out
}

// GRUCell is a gated recurrent unit cell with the paper's parameterisation
// (Equation 2): update gate z, reset gate k, candidate h̃, and the convex
// blend h_t = z ⊙ h_{t−1} + (1 − z) ⊙ h̃.
type GRUCell struct {
	// In and Hidden are the input and state dimensions.
	In, Hidden int
	// Gate parameters: W· act on the input, U· on the previous state,
	// B· are biases.
	Wz, Uz, Bz *ad.Param
	Wk, Uk, Bk *ad.Param
	Wh, Uh, Bh *ad.Param

	// fused bundles the parameters for the single-node ad.GRUStep kernel;
	// it is built once per cell so Step records no per-call garbage.
	fused ad.GRUParams
}

// NewGRUCell returns a Glorot-initialised GRU cell.
func NewGRUCell(name string, in, hidden int, rng *rand.Rand) *GRUCell {
	g := &GRUCell{
		In: in, Hidden: hidden,
		Wz: ad.NewParamInit(name+".Wz", hidden, in, rng),
		Uz: ad.NewParamInit(name+".Uz", hidden, hidden, rng),
		Bz: ad.NewParam(name+".bz", hidden, 1),
		Wk: ad.NewParamInit(name+".Wk", hidden, in, rng),
		Uk: ad.NewParamInit(name+".Uk", hidden, hidden, rng),
		Bk: ad.NewParam(name+".bk", hidden, 1),
		Wh: ad.NewParamInit(name+".Wh", hidden, in, rng),
		Uh: ad.NewParamInit(name+".Uh", hidden, hidden, rng),
		Bh: ad.NewParam(name+".bh", hidden, 1),
	}
	g.initFused()
	return g
}

// NewGRUCellZero returns a zero-initialised GRU cell, used as a shell when
// deserialising trained weights.
func NewGRUCellZero(name string, in, hidden int) *GRUCell {
	g := &GRUCell{
		In: in, Hidden: hidden,
		Wz: ad.NewParam(name+".Wz", hidden, in),
		Uz: ad.NewParam(name+".Uz", hidden, hidden),
		Bz: ad.NewParam(name+".bz", hidden, 1),
		Wk: ad.NewParam(name+".Wk", hidden, in),
		Uk: ad.NewParam(name+".Uk", hidden, hidden),
		Bk: ad.NewParam(name+".bk", hidden, 1),
		Wh: ad.NewParam(name+".Wh", hidden, in),
		Uh: ad.NewParam(name+".Uh", hidden, hidden),
		Bh: ad.NewParam(name+".bh", hidden, 1),
	}
	g.initFused()
	return g
}

func (g *GRUCell) initFused() {
	g.fused = ad.GRUParams{
		Wz: g.Wz, Uz: g.Uz, Bz: g.Bz,
		Wk: g.Wk, Uk: g.Uk, Bk: g.Bk,
		Wh: g.Wh, Uh: g.Uh, Bh: g.Bh,
	}
}

// Params returns the trainable parameters.
func (g *GRUCell) Params() []*ad.Param {
	return []*ad.Param{g.Wz, g.Uz, g.Bz, g.Wk, g.Uk, g.Bk, g.Wh, g.Uh, g.Bh}
}

// Step advances the cell one time step on the tape: given input x̃_t and the
// previous hidden state h_{t−1}, it returns h_t. It records a single fused
// tape op; StepReference is the equivalent primitive-op chain.
func (g *GRUCell) Step(t *ad.Tape, x, hPrev *ad.Value) *ad.Value {
	return t.GRUStep(&g.fused, x, hPrev)
}

// Kernel returns the cell's parameters as a tape-free ad.GRUKernel. The
// returned slices alias the live parameter Data — snapshotting callers
// (the inference engine) must copy them into their own slabs.
func (g *GRUCell) Kernel() ad.GRUKernel {
	return ad.GRUKernel{
		In: g.In, Hidden: g.Hidden,
		Wz: g.Wz.Data, Uz: g.Uz.Data, Bz: g.Bz.Data,
		Wk: g.Wk.Data, Uk: g.Uk.Data, Bk: g.Bk.Data,
		Wh: g.Wh.Data, Uh: g.Uh.Data, Bh: g.Bh.Data,
	}
}

// StepReference is the original composition of Step from primitive tape
// ops. It computes the same mathematics as Step node by node and exists as
// the readable specification the fused kernel is tested against
// (bit-identical values and gradients).
func (g *GRUCell) StepReference(t *ad.Tape, x, hPrev *ad.Value) *ad.Value {
	z := t.Sigmoid(t.Add(t.Add(t.MatVec(t.Use(g.Wz), x), t.MatVec(t.Use(g.Uz), hPrev)), t.Use(g.Bz)))
	k := t.Sigmoid(t.Add(t.Add(t.MatVec(t.Use(g.Wk), x), t.MatVec(t.Use(g.Uk), hPrev)), t.Use(g.Bk)))
	cand := t.Tanh(t.Add(t.Add(t.MatVec(t.Use(g.Wh), x), t.MatVec(t.Use(g.Uh), t.Mul(k, hPrev))), t.Use(g.Bh)))
	return t.Add(t.Mul(z, hPrev), t.Mul(t.OneMinus(z), cand))
}

// FlatParams concatenates all recurrent parameters into one vector — the
// representation projected by PCA in the paper's Figure 21 to show that
// experts for similar components (e.g. the MongoDBs) learn to
// remember/forget in similar ways.
func (g *GRUCell) FlatParams() []float64 {
	var out []float64
	for _, p := range g.Params() {
		out = append(out, p.Data...)
	}
	return out
}

// Attention holds the trainable cross-component attention weights α of the
// paper's Equation 3: one scalar per peer expert, controlling how much of
// that peer's hidden state is blended into this expert's context vector.
type Attention struct {
	// Alpha is the K-vector of peer weights.
	Alpha *ad.Param
	// Peers names the peer experts, aligned with Alpha.
	Peers []string
}

// NewAttention returns zero-initialised attention over the named peers
// (zero weights mean "listen to nobody", which training adjusts).
func NewAttention(name string, peers []string) *Attention {
	return &Attention{
		Alpha: ad.NewParam(name+".alpha", len(peers), 1),
		Peers: append([]string(nil), peers...),
	}
}

// Params returns the trainable parameters.
func (a *Attention) Params() []*ad.Param { return []*ad.Param{a.Alpha} }

// Apply computes the context vector a_t = Σ_k α_k · h_t^{(k)} over the
// peers' (detached) hidden states at one time step.
func (a *Attention) Apply(t *ad.Tape, peerHidden [][]float64) *ad.Value {
	return t.WeightedSumConst(t.Use(a.Alpha), peerHidden)
}

// TopPeers returns the indices of the n peers with the largest |α|.
func (a *Attention) TopPeers(n int) []int {
	type iw struct {
		i int
		w float64
	}
	ws := make([]iw, len(a.Alpha.Data))
	for i, w := range a.Alpha.Data {
		if w < 0 {
			w = -w
		}
		ws[i] = iw{i, w}
	}
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].w > ws[j-1].w; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
	if n > len(ws) {
		n = len(ws)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = ws[i].i
	}
	return out
}
