package loss

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPinball(t *testing.T) {
	if got := Pinball(2, 0.9); math.Abs(got-1.8) > 1e-12 {
		t.Errorf("Pinball(2, 0.9) = %v, want 1.8", got)
	}
	if got := Pinball(-2, 0.9); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Pinball(-2, 0.9) = %v, want 0.2", got)
	}
	if got := Pinball(0, 0.3); got != 0 {
		t.Errorf("Pinball(0, q) = %v, want 0", got)
	}
}

// Property: pinball loss is non-negative for q in (0,1) and any Δ.
func TestPinballNonNegativeProperty(t *testing.T) {
	f := func(delta float64, qraw float64) bool {
		if math.IsNaN(delta) || math.IsInf(delta, 0) {
			return true
		}
		q := math.Mod(math.Abs(qraw), 1)
		if q == 0 {
			q = 0.5
		}
		return Pinball(delta, q) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantiles(t *testing.T) {
	q := Quantiles(0.9)
	if q[0] != 0.5 {
		t.Errorf("median quantile = %v", q[0])
	}
	if math.Abs(q[1]-0.05) > 1e-12 || math.Abs(q[2]-0.95) > 1e-12 {
		t.Errorf("tails = %v, want [0.05 0.95]", q)
	}
	q = Quantiles(0.5)
	if math.Abs(q[1]-0.25) > 1e-12 || math.Abs(q[2]-0.75) > 1e-12 {
		t.Errorf("δ=0.5 tails = %v", q)
	}
}

func TestMSEMAEMAPE(t *testing.T) {
	pred := []float64{2, 4}
	act := []float64{1, 2}
	if got := MSE(pred, act); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("MSE = %v, want 2.5", got)
	}
	if got := MAE(pred, act); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("MAE = %v, want 1.5", got)
	}
	// |1|/1 + |2|/2 → (1+1)/2 = 1 → 100%.
	if got := MAPE(pred, act, 0.5); math.Abs(got-100) > 1e-9 {
		t.Errorf("MAPE = %v, want 100", got)
	}
	if MSE(nil, nil) != 0 || MAE(nil, nil) != 0 || MAPE(nil, nil, 1) != 0 {
		t.Error("empty series must yield 0")
	}
}

func TestMAPEFloor(t *testing.T) {
	// actual 0.001 with floor 1: error contribution is |pred-act|/1.
	got := MAPE([]float64{0.5}, []float64{0.001}, 1)
	if math.Abs(got-49.9) > 1e-9 {
		t.Errorf("floored MAPE = %v, want 49.9", got)
	}
}

func TestSMAPE(t *testing.T) {
	got := SMAPE([]float64{3}, []float64{1})
	if math.Abs(got-100) > 1e-9 {
		t.Errorf("SMAPE = %v, want 100", got)
	}
	if got := SMAPE([]float64{0}, []float64{0}); got != 0 {
		t.Errorf("SMAPE(0,0) = %v, want 0", got)
	}
}

func TestCoverage(t *testing.T) {
	low := []float64{0, 0, 0, 0}
	up := []float64{1, 1, 1, 1}
	act := []float64{0.5, 2, -1, 1}
	if got := Coverage(low, up, act); got != 0.5 {
		t.Errorf("Coverage = %v, want 0.5", got)
	}
	if got := Coverage(nil, nil, nil); got != 0 {
		t.Errorf("Coverage(empty) = %v, want 0", got)
	}
}

// Property: perfect predictions yield zero MSE, MAE, MAPE.
func TestZeroErrorProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		return MSE(vals, vals) == 0 && MAE(vals, vals) == 0 && MAPE(vals, vals, 1) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
