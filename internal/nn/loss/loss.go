// Package loss provides the scalar loss and error metrics used to train and
// evaluate resource estimators: the quantile (pinball) loss of the paper's
// Equation 5, plus the standard regression metrics.
package loss

import "math"

// Pinball returns Q(Δ|δ): δ·Δ for Δ ≥ 0 and (δ−1)·Δ otherwise (Equation 5).
func Pinball(delta, q float64) float64 {
	if delta >= 0 {
		return q * delta
	}
	return (q - 1) * delta
}

// Quantiles returns the three quantile levels of the paper's Equation 6 for
// a δ-confidence interval: the median plus the symmetric lower and upper
// tails ( (1−δ)/2 and δ+(1−δ)/2 ).
func Quantiles(delta float64) [3]float64 {
	return [3]float64{0.5, (1 - delta) / 2, delta + (1-delta)/2}
}

// MSE returns the mean squared error between two equal-length series.
func MSE(pred, actual []float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	s := 0.0
	for i, p := range pred {
		d := p - actual[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// MAE returns the mean absolute error between two equal-length series.
func MAE(pred, actual []float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	s := 0.0
	for i, p := range pred {
		s += math.Abs(p - actual[i])
	}
	return s / float64(len(pred))
}

// MAPE returns the mean absolute percentage error in percent, the paper's
// headline metric ("how many resources will be under/over-estimated on
// average at a time step"). Actual values below floor are clamped to floor
// to keep near-zero utilizations from exploding the metric.
func MAPE(pred, actual []float64, floor float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	if floor <= 0 {
		floor = 1e-9
	}
	s := 0.0
	for i, p := range pred {
		den := math.Abs(actual[i])
		if den < floor {
			den = floor
		}
		s += math.Abs(p-actual[i]) / den
	}
	return 100 * s / float64(len(pred))
}

// SMAPE returns the symmetric mean absolute percentage error in percent.
func SMAPE(pred, actual []float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	s := 0.0
	for i, p := range pred {
		den := (math.Abs(p) + math.Abs(actual[i])) / 2
		if den == 0 {
			continue
		}
		s += math.Abs(p-actual[i]) / den
	}
	return 100 * s / float64(len(pred))
}

// Coverage returns the fraction of actual values falling inside
// [lower, upper] — how well a δ-confidence interval is calibrated.
func Coverage(lower, upper, actual []float64) float64 {
	if len(actual) == 0 {
		return 0
	}
	n := 0
	for i, y := range actual {
		if y >= lower[i] && y <= upper[i] {
			n++
		}
	}
	return float64(n) / float64(len(actual))
}
