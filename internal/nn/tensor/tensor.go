// Package tensor provides the small dense vector/matrix kernels shared by
// the autodiff engine, the estimator, the baselines, and the evaluation
// tooling. Everything is float64 and row-major; no external BLAS.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Vector allocates a zero vector of length n.
func Vector(n int) []float64 { return make([]float64, n) }

// Clone returns a copy of v.
func Clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Fill sets every element of v to x.
func Fill(v []float64, x float64) {
	for i := range v {
		v[i] = x
	}
}

// Dot returns the inner product of a and b. The slices must have equal
// length.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// Axpy computes y += alpha * x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies v by alpha in place.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Add returns a + b as a new slice.
func Add(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Add length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns a - b as a new slice.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Sub length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Hadamard returns the element-wise product a ⊙ b as a new slice.
func Hadamard(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Hadamard length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] * b[i]
	}
	return out
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Mean returns the arithmetic mean of v (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Max returns the maximum of v (negative infinity for empty input).
func Max(v []float64) float64 {
	m := math.Inf(-1)
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of v (positive infinity for empty input).
func Min(v []float64) float64 {
	m := math.Inf(1)
	for _, x := range v {
		if x < m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of v.
func Sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Sigmoid returns 1/(1+e^-x), numerically stable for large |x|.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared backing array).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MatVec computes y = M·x, allocating y.
func (m *Matrix) MatVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("tensor: MatVec dim mismatch: matrix cols %d, vector %d", m.Cols, len(x)))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		y[i] = Dot(m.Row(i), x)
	}
	return y
}

// MatVecT computes y = Mᵀ·x, allocating y.
func (m *Matrix) MatVecT(x []float64) []float64 {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("tensor: MatVecT dim mismatch: matrix rows %d, vector %d", m.Rows, len(x)))
	}
	y := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		Axpy(x[i], m.Row(i), y)
	}
	return y
}

// RandInit fills m with uniform values in [-scale, scale], the Xavier-style
// initialisation used for all model parameters.
func (m *Matrix) RandInit(rng *rand.Rand, scale float64) {
	for i := range m.Data {
		m.Data[i] = (2*rng.Float64() - 1) * scale
	}
}

// XavierScale returns the standard Glorot uniform bound for a layer with the
// given fan-in and fan-out.
func XavierScale(fanIn, fanOut int) float64 {
	return math.Sqrt(6.0 / float64(fanIn+fanOut))
}
