package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Errorf("Dot(nil, nil) = %v, want 0", got)
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpyScale(t *testing.T) {
	y := []float64{1, 1, 1}
	Axpy(2, []float64{1, 2, 3}, y)
	want := []float64{3, 5, 7}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy = %v, want %v", y, want)
		}
	}
	Scale(0.5, y)
	want = []float64{1.5, 2.5, 3.5}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Scale = %v, want %v", y, want)
		}
	}
}

func TestAddSubHadamard(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Add(a, b); got[0] != 5 || got[2] != 9 {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(b, a); got[0] != 3 || got[2] != 3 {
		t.Errorf("Sub = %v", got)
	}
	if got := Hadamard(a, b); got[0] != 4 || got[2] != 18 {
		t.Errorf("Hadamard = %v", got)
	}
}

func TestStats(t *testing.T) {
	v := []float64{3, -1, 4, 1, 5}
	if got := Mean(v); math.Abs(got-2.4) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	if got := Max(v); got != 5 {
		t.Errorf("Max = %v", got)
	}
	if got := Min(v); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got := Sum(v); got != 12 {
		t.Errorf("Sum = %v", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %v", got)
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
}

func TestMatVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	y := m.MatVec([]float64{1, 0, -1})
	if y[0] != -2 || y[1] != -2 {
		t.Errorf("MatVec = %v", y)
	}
	yt := m.MatVecT([]float64{1, 1})
	want := []float64{5, 7, 9}
	for i := range yt {
		if yt[i] != want[i] {
			t.Fatalf("MatVecT = %v, want %v", yt, want)
		}
	}
}

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(1, 0, 7)
	if m.At(1, 0) != 7 {
		t.Error("Set/At mismatch")
	}
	row := m.Row(1)
	row[1] = 9
	if m.At(1, 1) != 9 {
		t.Error("Row must alias the backing array")
	}
	cp := m.Clone()
	cp.Set(0, 0, 42)
	if m.At(0, 0) == 42 {
		t.Error("Clone must not alias")
	}
}

func TestRandInitBounds(t *testing.T) {
	m := NewMatrix(10, 10)
	m.RandInit(rand.New(rand.NewSource(1)), 0.3)
	for _, v := range m.Data {
		if v < -0.3 || v > 0.3 {
			t.Fatalf("RandInit out of bounds: %v", v)
		}
	}
}

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); got != 0.5 {
		t.Errorf("Sigmoid(0) = %v", got)
	}
	if got := Sigmoid(1000); got != 1 {
		t.Errorf("Sigmoid(1000) = %v, want 1", got)
	}
	if got := Sigmoid(-1000); got != 0 {
		t.Errorf("Sigmoid(-1000) = %v, want 0", got)
	}
}

// Property: MatVec is linear — M(ax + y) == a·Mx + My.
func TestMatVecLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewMatrix(3, 4)
		m.RandInit(r, 1)
		x := make([]float64, 4)
		y := make([]float64, 4)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = r.NormFloat64()
		}
		a := r.NormFloat64()
		ax := Clone(x)
		Scale(a, ax)
		lhs := m.MatVec(Add(ax, y))
		mx := m.MatVec(x)
		Scale(a, mx)
		rhs := Add(mx, m.MatVec(y))
		for i := range lhs {
			if math.Abs(lhs[i]-rhs[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Dot(a, b) == Dot(b, a) and Norm2(a)^2 ≈ Dot(a, a).
func TestDotSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(seed%7+7)%7
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = r.NormFloat64()
			b[i] = r.NormFloat64()
		}
		if Dot(a, b) != Dot(b, a) {
			return false
		}
		n2 := Norm2(a)
		return math.Abs(n2*n2-Dot(a, a)) < 1e-9*(1+Dot(a, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestXavierScale(t *testing.T) {
	got := XavierScale(8, 4)
	want := math.Sqrt(0.5)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("XavierScale = %v, want %v", got, want)
	}
}

func TestFill(t *testing.T) {
	v := Vector(3)
	Fill(v, 2.5)
	for _, x := range v {
		if x != 2.5 {
			t.Fatal("Fill failed")
		}
	}
}
