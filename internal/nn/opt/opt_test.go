package opt

import (
	"math"
	"testing"

	"repro/internal/nn/ad"
)

// quadratic builds the gradient of f(x) = Σ (x_i - target)² into p.Grad.
func quadraticGrad(p *ad.Param, target float64) {
	for i, x := range p.Data {
		p.Grad[i] += 2 * (x - target)
	}
}

func TestSGDConverges(t *testing.T) {
	p := ad.NewParam("p", 3, 1)
	p.Data[0], p.Data[1], p.Data[2] = 5, -3, 0.5
	o := NewSGD([]*ad.Param{p}, 0.1)
	for i := 0; i < 200; i++ {
		quadraticGrad(p, 2)
		o.Step()
	}
	for _, x := range p.Data {
		if math.Abs(x-2) > 1e-6 {
			t.Fatalf("SGD did not converge: %v", p.Data)
		}
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	p := ad.NewParam("p", 2, 1)
	p.Data[0], p.Data[1] = 10, -10
	o := NewSGD([]*ad.Param{p}, 0.05)
	o.Momentum = 0.9
	for i := 0; i < 300; i++ {
		quadraticGrad(p, -1)
		o.Step()
	}
	for _, x := range p.Data {
		if math.Abs(x+1) > 1e-4 {
			t.Fatalf("momentum SGD did not converge: %v", p.Data)
		}
	}
}

func TestAdamConverges(t *testing.T) {
	p := ad.NewParam("p", 4, 1)
	for i := range p.Data {
		p.Data[i] = float64(i) * 3
	}
	o := NewAdam([]*ad.Param{p}, 0.1)
	for i := 0; i < 500; i++ {
		quadraticGrad(p, 1.5)
		o.Step()
	}
	for _, x := range p.Data {
		if math.Abs(x-1.5) > 1e-3 {
			t.Fatalf("Adam did not converge: %v", p.Data)
		}
	}
}

func TestStepZeroesGradients(t *testing.T) {
	p := ad.NewParam("p", 2, 1)
	p.Grad[0], p.Grad[1] = 1, 2
	NewSGD([]*ad.Param{p}, 0.1).Step()
	if p.Grad[0] != 0 || p.Grad[1] != 0 {
		t.Fatal("Step must clear gradients")
	}
	a := NewAdam([]*ad.Param{p}, 0.1)
	p.Grad[0] = 3
	a.Step()
	if p.Grad[0] != 0 {
		t.Fatal("Adam.Step must clear gradients")
	}
}

func TestClipGradNorm(t *testing.T) {
	p := ad.NewParam("p", 2, 1)
	p.Grad[0], p.Grad[1] = 3, 4 // norm 5
	pre := ClipGradNorm([]*ad.Param{p}, 1)
	if pre != 5 {
		t.Fatalf("pre-clip norm = %v, want 5", pre)
	}
	norm := math.Hypot(p.Grad[0], p.Grad[1])
	if math.Abs(norm-1) > 1e-12 {
		t.Fatalf("post-clip norm = %v, want 1", norm)
	}
	// No-op cases.
	p.Grad[0], p.Grad[1] = 0.3, 0.4
	ClipGradNorm([]*ad.Param{p}, 1)
	if p.Grad[0] != 0.3 {
		t.Fatal("clip must not modify gradients under the bound")
	}
	ClipGradNorm([]*ad.Param{p}, 0)
	if p.Grad[0] != 0.3 {
		t.Fatal("maxNorm 0 must disable clipping")
	}
}

func TestOptimizerParamsAccessor(t *testing.T) {
	p := ad.NewParam("p", 1, 1)
	if got := NewSGD([]*ad.Param{p}, 0.1).Params(); len(got) != 1 || got[0] != p {
		t.Fatal("SGD.Params mismatch")
	}
	if got := NewAdam([]*ad.Param{p}, 0.1).Params(); len(got) != 1 || got[0] != p {
		t.Fatal("Adam.Params mismatch")
	}
}

// TestAdamScaleInvariance: Adam's per-parameter normalisation makes early
// steps roughly equal to ±LR regardless of gradient magnitude.
func TestAdamFirstStepSize(t *testing.T) {
	p := ad.NewParam("p", 1, 1)
	p.Grad[0] = 1e6
	o := NewAdam([]*ad.Param{p}, 0.01)
	o.Step()
	if math.Abs(p.Data[0]+0.01) > 1e-6 {
		t.Fatalf("first Adam step = %v, want ≈ -0.01", p.Data[0])
	}
}
