package opt

import (
	"math"

	"repro/internal/nn/ad"
)

// Schedule maps an optimizer step index to a learning rate.
type Schedule interface {
	// LR returns the learning rate for step (0-based).
	LR(step int) float64
}

// Constant keeps a fixed learning rate.
type Constant float64

// LR implements Schedule.
func (c Constant) LR(int) float64 { return float64(c) }

// StepDecay multiplies the base rate by Factor every Every steps — the
// classic staircase schedule.
type StepDecay struct {
	// Base is the initial learning rate.
	Base float64
	// Factor is the per-stage multiplier (e.g. 0.5).
	Factor float64
	// Every is the stage length in steps.
	Every int
}

// LR implements Schedule.
func (s StepDecay) LR(step int) float64 {
	if s.Every <= 0 {
		return s.Base
	}
	return s.Base * math.Pow(s.Factor, float64(step/s.Every))
}

// Cosine anneals from Base to Min over Period steps and stays at Min.
type Cosine struct {
	// Base is the initial learning rate, Min the floor.
	Base, Min float64
	// Period is the annealing horizon in steps.
	Period int
}

// LR implements Schedule.
func (c Cosine) LR(step int) float64 {
	if c.Period <= 0 || step >= c.Period {
		return c.Min
	}
	t := float64(step) / float64(c.Period)
	return c.Min + (c.Base-c.Min)*(1+math.Cos(math.Pi*t))/2
}

// Warmup ramps linearly from 0 to the inner schedule's rate over Steps
// steps, then delegates — a standard stabiliser for recurrent training.
type Warmup struct {
	// Steps is the ramp length.
	Steps int
	// Inner provides the post-warmup schedule.
	Inner Schedule
}

// LR implements Schedule.
func (w Warmup) LR(step int) float64 {
	base := w.Inner.LR(step)
	if w.Steps <= 0 || step >= w.Steps {
		return base
	}
	return base * float64(step+1) / float64(w.Steps)
}

// rateSetter is implemented by optimizers whose learning rate can be
// adjusted between steps.
type rateSetter interface {
	SetLR(float64)
}

// SetLR implements rateSetter for SGD.
func (o *SGD) SetLR(lr float64) { o.LR = lr }

// SetLR implements rateSetter for Adam.
func (o *Adam) SetLR(lr float64) { o.LR = lr }

// Scheduled wraps an optimizer so each Step uses the schedule's rate.
type Scheduled struct {
	inner Optimizer
	sched Schedule
	step  int
}

// WithSchedule attaches a schedule to an optimizer. The optimizer must
// support rate adjustment (SGD and Adam do).
func WithSchedule(o Optimizer, s Schedule) *Scheduled {
	return &Scheduled{inner: o, sched: s}
}

// Step implements Optimizer: it sets the scheduled rate, then delegates.
func (s *Scheduled) Step() {
	if rs, ok := s.inner.(rateSetter); ok {
		rs.SetLR(s.sched.LR(s.step))
	}
	s.step++
	s.inner.Step()
}

// Params implements Optimizer.
func (s *Scheduled) Params() []*ad.Param { return s.inner.Params() }

// StepIndex returns the number of steps taken.
func (s *Scheduled) StepIndex() int { return s.step }
