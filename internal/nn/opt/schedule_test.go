package opt

import (
	"math"
	"testing"

	"repro/internal/nn/ad"
)

func TestConstant(t *testing.T) {
	if Constant(0.1).LR(999) != 0.1 {
		t.Fatal("constant schedule must be constant")
	}
}

func TestStepDecay(t *testing.T) {
	s := StepDecay{Base: 1, Factor: 0.5, Every: 10}
	if s.LR(0) != 1 || s.LR(9) != 1 {
		t.Error("first stage wrong")
	}
	if s.LR(10) != 0.5 || s.LR(25) != 0.25 {
		t.Errorf("decay wrong: %v %v", s.LR(10), s.LR(25))
	}
	if (StepDecay{Base: 2}).LR(100) != 2 {
		t.Error("Every=0 must hold the base rate")
	}
}

func TestCosine(t *testing.T) {
	c := Cosine{Base: 1, Min: 0.1, Period: 100}
	if c.LR(0) != 1 {
		t.Errorf("start = %v", c.LR(0))
	}
	mid := c.LR(50)
	if math.Abs(mid-0.55) > 1e-9 {
		t.Errorf("midpoint = %v, want 0.55", mid)
	}
	if c.LR(100) != 0.1 || c.LR(500) != 0.1 {
		t.Error("floor not held")
	}
	// Monotone decreasing over the period.
	prev := math.Inf(1)
	for i := 0; i <= 100; i += 10 {
		if c.LR(i) > prev {
			t.Fatalf("not monotone at %d", i)
		}
		prev = c.LR(i)
	}
}

func TestWarmup(t *testing.T) {
	w := Warmup{Steps: 10, Inner: Constant(1)}
	if got := w.LR(0); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("warmup start = %v", got)
	}
	if w.LR(9) != 1 || w.LR(50) != 1 {
		t.Error("post-warmup rate wrong")
	}
}

func TestScheduledOptimizer(t *testing.T) {
	p := ad.NewParam("p", 1, 1)
	p.Data[0] = 10
	inner := NewSGD([]*ad.Param{p}, 999) // overridden by the schedule
	s := WithSchedule(inner, StepDecay{Base: 0.1, Factor: 0.5, Every: 1})
	// Gradient 1 each step: moves by 0.1, then 0.05.
	p.Grad[0] = 1
	s.Step()
	if math.Abs(p.Data[0]-9.9) > 1e-12 {
		t.Fatalf("after step 1: %v", p.Data[0])
	}
	p.Grad[0] = 1
	s.Step()
	if math.Abs(p.Data[0]-9.85) > 1e-12 {
		t.Fatalf("after step 2: %v", p.Data[0])
	}
	if s.StepIndex() != 2 {
		t.Errorf("StepIndex = %d", s.StepIndex())
	}
	if len(s.Params()) != 1 {
		t.Error("Params not delegated")
	}
}

func TestScheduledAdam(t *testing.T) {
	p := ad.NewParam("p", 1, 1)
	s := WithSchedule(NewAdam([]*ad.Param{p}, 1), Constant(0.02))
	p.Grad[0] = 5
	s.Step()
	// Adam's first step is ≈ ±LR.
	if math.Abs(p.Data[0]+0.02) > 1e-6 {
		t.Fatalf("scheduled Adam first step = %v", p.Data[0])
	}
}
