// Package opt implements first-order optimizers over ad.Param sets: plain
// SGD (the paper's choice, §5.1), SGD with momentum, and Adam, plus global
// gradient-norm clipping for stable recurrent training.
package opt

import (
	"math"

	"repro/internal/nn/ad"
)

// Optimizer updates a fixed set of parameters from their accumulated
// gradients and zeroes the gradients afterwards.
type Optimizer interface {
	// Step applies one update and clears gradients.
	Step()
	// Params returns the parameter set being optimized.
	Params() []*ad.Param
}

// ClipGradNorm scales all gradients so their global L2 norm does not exceed
// maxNorm, and returns the pre-clip norm. A non-positive maxNorm is a no-op.
func ClipGradNorm(params []*ad.Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if maxNorm <= 0 || norm <= maxNorm || norm == 0 {
		return norm
	}
	scale := maxNorm / norm
	for _, p := range params {
		for i := range p.Grad {
			p.Grad[i] *= scale
		}
	}
	return norm
}

// SGD is stochastic gradient descent with optional momentum and gradient
// clipping.
type SGD struct {
	// LR is the learning rate.
	LR float64
	// Momentum in [0, 1); zero yields plain SGD.
	Momentum float64
	// ClipNorm bounds the global gradient norm per step; 0 disables.
	ClipNorm float64

	params   []*ad.Param
	velocity [][]float64
}

// NewSGD returns an SGD optimizer over params.
func NewSGD(params []*ad.Param, lr float64) *SGD {
	return &SGD{LR: lr, params: params}
}

// Params implements Optimizer.
func (o *SGD) Params() []*ad.Param { return o.params }

// Step implements Optimizer.
func (o *SGD) Step() {
	ClipGradNorm(o.params, o.ClipNorm)
	if o.Momentum > 0 && o.velocity == nil {
		o.velocity = make([][]float64, len(o.params))
		for i, p := range o.params {
			o.velocity[i] = make([]float64, p.Size())
		}
	}
	for i, p := range o.params {
		if o.Momentum > 0 {
			v := o.velocity[i]
			for j := range p.Data {
				v[j] = o.Momentum*v[j] + p.Grad[j]
				p.Data[j] -= o.LR * v[j]
			}
		} else {
			for j := range p.Data {
				p.Data[j] -= o.LR * p.Grad[j]
			}
		}
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	// LR is the learning rate.
	LR float64
	// Beta1, Beta2 are the moment decay rates (defaults 0.9, 0.999).
	Beta1, Beta2 float64
	// Eps is the numerical stabiliser (default 1e-8).
	Eps float64
	// ClipNorm bounds the global gradient norm per step; 0 disables.
	ClipNorm float64

	params []*ad.Param
	m, v   [][]float64
	step   int
}

// NewAdam returns an Adam optimizer over params with standard defaults.
func NewAdam(params []*ad.Param, lr float64) *Adam {
	a := &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		params: params,
		m:      make([][]float64, len(params)),
		v:      make([][]float64, len(params)),
	}
	for i, p := range params {
		a.m[i] = make([]float64, p.Size())
		a.v[i] = make([]float64, p.Size())
	}
	return a
}

// Params implements Optimizer.
func (o *Adam) Params() []*ad.Param { return o.params }

// Step implements Optimizer.
func (o *Adam) Step() {
	ClipGradNorm(o.params, o.ClipNorm)
	o.step++
	c1 := 1 - math.Pow(o.Beta1, float64(o.step))
	c2 := 1 - math.Pow(o.Beta2, float64(o.step))
	for i, p := range o.params {
		m, v := o.m[i], o.v[i]
		for j, g := range p.Grad {
			m[j] = o.Beta1*m[j] + (1-o.Beta1)*g
			v[j] = o.Beta2*v[j] + (1-o.Beta2)*g*g
			mh := m[j] / c1
			vh := v[j] / c2
			p.Data[j] -= o.LR * mh / (math.Sqrt(vh) + o.Eps)
		}
		p.ZeroGrad()
	}
}
