package ad

import (
	"math"
	"math/rand"
	"testing"
)

// TestGRUKernelMatchesTapeStep drives the tape-free kernel and the fused
// tape op through the same multi-step recurrence and requires bit-identical
// hidden states at every step — the contract the inference engine's
// snapshot path is built on.
func TestGRUKernelMatchesTapeStep(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in, hid := 9, 5
	p := &GRUParams{
		Wz: NewParamInit("Wz", hid, in, rng), Uz: NewParamInit("Uz", hid, hid, rng), Bz: NewParamInit("bz", hid, 1, rng),
		Wk: NewParamInit("Wk", hid, in, rng), Uk: NewParamInit("Uk", hid, hid, rng), Bk: NewParamInit("bk", hid, 1, rng),
		Wh: NewParamInit("Wh", hid, in, rng), Uh: NewParamInit("Uh", hid, hid, rng), Bh: NewParamInit("bh", hid, 1, rng),
	}
	k := GRUKernel{
		In: in, Hidden: hid,
		Wz: p.Wz.Data, Uz: p.Uz.Data, Bz: p.Bz.Data,
		Wk: p.Wk.Data, Uk: p.Uk.Data, Bk: p.Bk.Data,
		Wh: p.Wh.Data, Uh: p.Uh.Data, Bh: p.Bh.Data,
	}

	const steps = 12
	xs := make([][]float64, steps)
	for i := range xs {
		xs[i] = make([]float64, in)
		for j := range xs[i] {
			xs[i][j] = rng.NormFloat64()
		}
	}

	tape := NewEvalTape()
	tapeH := make([]float64, hid)
	kernH := make([]float64, hid)
	kernNext := make([]float64, hid)
	scratch := make([]float64, k.ScratchLen())
	for s, x := range xs {
		h := tape.Const(tapeH)
		xt := tape.Const(x)
		h = tape.GRUStep(p, xt, h)
		copy(tapeH, h.Data)
		tape.Reset()

		k.Step(x, kernH, kernNext, scratch)
		kernH, kernNext = kernNext, kernH

		for i := range tapeH {
			if math.Float64bits(tapeH[i]) != math.Float64bits(kernH[i]) {
				t.Fatalf("step %d: h[%d] diverged: tape %x kernel %x", s, i,
					math.Float64bits(tapeH[i]), math.Float64bits(kernH[i]))
			}
		}
	}
}
