// Package ad is a small reverse-mode automatic differentiation engine
// operating on dense float64 vectors and matrices. It is the substrate the
// DeepRest estimator's GRU experts are built on — the stdlib-only stand-in
// for the paper's PyTorch.
//
// Usage follows the define-by-run tape model: a Tape records operations as
// they execute; Backward replays them in reverse, accumulating gradients.
// Model parameters live in Param objects whose gradients persist across
// tape rebuilds until an optimizer consumes and zeroes them, which is what
// makes truncated backpropagation-through-time (and gradient accumulation)
// straightforward.
//
// # Memory model
//
// The tape owns all node memory: Value structs come from a recycled node
// pool and their Data/Grad vectors from a growable float64 slab arena.
// Reset rewinds both, so a tape reused across truncated-BPTT chunks and
// epochs reaches a steady state with zero heap allocations per operation.
// The flip side is a strict lifetime rule: every *Value obtained from a
// tape is invalidated by Reset — reading (or holding) one afterwards
// observes recycled memory. Copy anything that must outlive the pass.
//
// Tapes come in two modes. NewTape records for training: every node gets a
// gradient vector and a backward opcode. NewEvalTape is the gradient-free
// inference lane: no gradient memory is allocated and no backward
// bookkeeping is kept, making pure forward evaluation (serving, peer-state
// precompute, drift checks) substantially cheaper. Backward on an eval
// tape panics.
package ad

import (
	"fmt"
	"math"
	"math/rand"
)

// Param is a trainable tensor: data plus accumulated gradient. Vectors use
// Cols == 1.
type Param struct {
	// Name identifies the parameter in serialized models and debugging
	// output.
	Name string
	// Rows and Cols give the logical shape; len(Data) == Rows*Cols.
	Rows, Cols int
	// Data is the row-major parameter value.
	Data []float64
	// Grad is the accumulated gradient, same layout as Data.
	Grad []float64
}

// NewParam allocates a zero-initialised parameter.
func NewParam(name string, rows, cols int) *Param {
	return &Param{
		Name: name,
		Rows: rows, Cols: cols,
		Data: make([]float64, rows*cols),
		Grad: make([]float64, rows*cols),
	}
}

// NewParamInit allocates a parameter with Glorot-uniform initialisation.
func NewParamInit(name string, rows, cols int, rng *rand.Rand) *Param {
	p := NewParam(name, rows, cols)
	scale := math.Sqrt(6.0 / float64(rows+cols))
	for i := range p.Data {
		p.Data[i] = (2*rng.Float64() - 1) * scale
	}
	return p
}

// Size returns the number of scalar elements.
func (p *Param) Size() int { return len(p.Data) }

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// opcode selects a node's backward rule. Opcode dispatch (instead of a
// closure per node) keeps recording allocation-free and lets Reset recycle
// nodes wholesale.
type opcode uint8

const (
	opLeaf opcode = iota // Const / Use: nothing to do
	opMatVec
	opAdd
	opSub
	opMul
	opScaleConst
	opOneMinus
	opSigmoid
	opTanh
	opReLU
	opConcat
	opWeightedSumConst
	opPinball
	opSquaredError
	opSumScalars
	opGRUStep
)

// Value is a node in the computation graph: the result of one operation (or
// a leaf). Shapes: vectors are Rows×1; matrices Rows×Cols. Values are owned
// by their tape: Reset invalidates every Value the tape has handed out.
type Value struct {
	// Data holds the node's value, row-major.
	Data []float64
	// Grad holds ∂loss/∂node after Backward; nil on eval-mode tapes.
	Grad []float64
	// Rows and Cols give the logical shape.
	Rows, Cols int

	op   opcode
	a, b *Value    // operand nodes
	sc   float64   // ScaleConst factor
	aux  []float64 // arena-owned payload (loss targets∥quantiles, GRU gates)
	args []*Value  // SumScalars operands (caller slice; stable until Backward)
	rows [][]float64
	gru  *GRUParams
}

// Len returns the number of scalar elements.
func (v *Value) Len() int { return len(v.Data) }

// Scalar returns the single element of a 1×1 value.
func (v *Value) Scalar() float64 {
	if len(v.Data) != 1 {
		panic(fmt.Sprintf("ad: Scalar on value of length %d", len(v.Data)))
	}
	return v.Data[0]
}

// Arena growth quanta: float slabs hold Data/Grad vectors, node slabs hold
// Value structs. Both grow on demand and are recycled by Reset.
const (
	slabFloats = 8192
	slabNodes  = 512
)

// Tape records operations for reverse-mode differentiation. A Tape is not
// safe for concurrent use; build one tape per goroutine.
//
// The tape arena-allocates all node memory and Reset recycles it, so any
// *Value from before a Reset is dead. In particular, a recurrent state
// carried across Reset calls must be copied out first and re-introduced
// with Const.
type Tape struct {
	grad  bool
	nodes []*Value

	slabs    [][]float64
	slab     int // index of the slab currently being carved
	slabOff  int // next free float in slabs[slab]
	nodeSlab [][]Value
	nodeIdx  int
	nodeOff  int

	scratch []float64 // fused-op backward workspace
}

// NewTape returns an empty training tape: operations record gradients and
// backward rules for Backward.
func NewTape() *Tape { return &Tape{grad: true} }

// NewEvalTape returns an empty gradient-free tape for pure inference: no
// gradient vectors are allocated and no backward information is kept.
// Backward panics on it; everything else behaves identically.
func NewEvalTape() *Tape { return &Tape{} }

// Reset discards all recorded operations and recycles every node and data
// vector the tape owns, so the next forward pass reuses the same memory.
// All Values previously returned by this tape are invalidated.
func (t *Tape) Reset() {
	t.nodes = t.nodes[:0]
	t.slab, t.slabOff = 0, 0
	t.nodeIdx, t.nodeOff = 0, 0
}

// NumNodes returns the number of recorded graph nodes.
func (t *Tape) NumNodes() int { return len(t.nodes) }

func (t *Tape) record(v *Value) *Value {
	t.nodes = append(t.nodes, v)
	return v
}

// alloc carves a zeroed n-float vector out of the slab arena, growing it if
// every recycled slab is exhausted.
func (t *Tape) alloc(n int) []float64 {
	if n == 0 {
		return nil
	}
	for {
		if t.slab < len(t.slabs) {
			s := t.slabs[t.slab]
			if t.slabOff+n <= len(s) {
				out := s[t.slabOff : t.slabOff+n : t.slabOff+n]
				t.slabOff += n
				clear(out) // recycled memory: erase the previous pass
				return out
			}
			// Tail of this slab is too small for the request; leave it
			// and carve from the next one.
			t.slab++
			t.slabOff = 0
			continue
		}
		size := slabFloats
		if n > size {
			size = n
		}
		t.slabs = append(t.slabs, make([]float64, size))
	}
}

// newNode hands out a recycled (zeroed) Value struct from the node pool.
func (t *Tape) newNode() *Value {
	if t.nodeIdx >= len(t.nodeSlab) {
		t.nodeSlab = append(t.nodeSlab, make([]Value, slabNodes))
	}
	v := &t.nodeSlab[t.nodeIdx][t.nodeOff]
	t.nodeOff++
	if t.nodeOff == len(t.nodeSlab[t.nodeIdx]) {
		t.nodeIdx++
		t.nodeOff = 0
	}
	*v = Value{}
	return v
}

func (t *Tape) newValue(rows, cols int) *Value {
	v := t.newNode()
	n := rows * cols
	if t.grad {
		buf := t.alloc(2 * n)
		v.Data, v.Grad = buf[:n:n], buf[n:]
	} else {
		v.Data = t.alloc(n)
	}
	v.Rows, v.Cols = rows, cols
	return v
}

// Const introduces an input vector as a leaf. Gradients flowing into it are
// accumulated but never used; the caller's slice is not aliased.
func (t *Tape) Const(data []float64) *Value {
	v := t.newValue(len(data), 1)
	copy(v.Data, data)
	return t.record(v)
}

// Use introduces a parameter into the graph. The returned Value aliases the
// parameter's Data and Grad, so Backward accumulates directly into the
// parameter.
func (t *Tape) Use(p *Param) *Value {
	v := t.newNode()
	v.Data, v.Grad = p.Data, p.Grad
	v.Rows, v.Cols = p.Rows, p.Cols
	return t.record(v)
}

// MatVec computes y = W·x for a Rows×Cols matrix value and a Cols-vector.
func (t *Tape) MatVec(w, x *Value) *Value {
	if w.Cols != x.Rows || x.Cols != 1 {
		panic(fmt.Sprintf("ad: MatVec shape mismatch: %dx%d · %dx%d", w.Rows, w.Cols, x.Rows, x.Cols))
	}
	out := t.newValue(w.Rows, 1)
	for i := 0; i < w.Rows; i++ {
		out.Data[i] = dot(w.Data[i*w.Cols:(i+1)*w.Cols], x.Data)
	}
	out.op, out.a, out.b = opMatVec, w, x
	return t.record(out)
}

// dot is the row·vector kernel shared by MatVec and the fused GRU step; a
// single definition keeps their rounding behaviour identical.
func dot(row, x []float64) float64 {
	s := 0.0
	for j, r := range row {
		s += r * x[j]
	}
	return s
}

// Add computes a + b element-wise; shapes must match.
func (t *Tape) Add(a, b *Value) *Value {
	checkSameShape("Add", a, b)
	out := t.newValue(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	out.op, out.a, out.b = opAdd, a, b
	return t.record(out)
}

// Sub computes a - b element-wise; shapes must match.
func (t *Tape) Sub(a, b *Value) *Value {
	checkSameShape("Sub", a, b)
	out := t.newValue(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	out.op, out.a, out.b = opSub, a, b
	return t.record(out)
}

// Mul computes the Hadamard product a ⊙ b; shapes must match.
func (t *Tape) Mul(a, b *Value) *Value {
	checkSameShape("Mul", a, b)
	out := t.newValue(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	out.op, out.a, out.b = opMul, a, b
	return t.record(out)
}

// ScaleConst computes s·a for a compile-time constant s.
func (t *Tape) ScaleConst(a *Value, s float64) *Value {
	out := t.newValue(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = s * a.Data[i]
	}
	out.op, out.a, out.sc = opScaleConst, a, s
	return t.record(out)
}

// OneMinus computes 1 - a element-wise (the GRU's (1 - z) gate complement).
func (t *Tape) OneMinus(a *Value) *Value {
	out := t.newValue(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = 1 - a.Data[i]
	}
	out.op, out.a = opOneMinus, a
	return t.record(out)
}

// Sigmoid applies the logistic function element-wise.
func (t *Tape) Sigmoid(a *Value) *Value {
	out := t.newValue(a.Rows, a.Cols)
	for i, x := range a.Data {
		out.Data[i] = stableSigmoid(x)
	}
	out.op, out.a = opSigmoid, a
	return t.record(out)
}

// Tanh applies the hyperbolic tangent element-wise.
func (t *Tape) Tanh(a *Value) *Value {
	out := t.newValue(a.Rows, a.Cols)
	for i, x := range a.Data {
		out.Data[i] = math.Tanh(x)
	}
	out.op, out.a = opTanh, a
	return t.record(out)
}

// ReLU applies max(0, x) element-wise.
func (t *Tape) ReLU(a *Value) *Value {
	out := t.newValue(a.Rows, a.Cols)
	for i, x := range a.Data {
		if x > 0 {
			out.Data[i] = x
		}
	}
	out.op, out.a = opReLU, a
	return t.record(out)
}

// Concat stacks vectors a and b into one vector (the paper's a_t ∥ h_t).
func (t *Tape) Concat(a, b *Value) *Value {
	if a.Cols != 1 || b.Cols != 1 {
		panic("ad: Concat requires vectors")
	}
	out := t.newValue(a.Rows+b.Rows, 1)
	copy(out.Data, a.Data)
	copy(out.Data[a.Rows:], b.Data)
	out.op, out.a, out.b = opConcat, a, b
	return t.record(out)
}

// WeightedSumConst computes Σ_k alpha[k] · rows[k] for constant row vectors
// (the cross-component attention over detached peer hidden states). alpha is
// a K-vector; all rows must share one length. The rows slices are retained
// until the next Reset and must not be mutated before Backward.
func (t *Tape) WeightedSumConst(alpha *Value, rows [][]float64) *Value {
	if alpha.Cols != 1 || alpha.Rows != len(rows) {
		panic(fmt.Sprintf("ad: WeightedSumConst wants %d weights, got %d", len(rows), alpha.Rows))
	}
	if len(rows) == 0 {
		panic("ad: WeightedSumConst with no rows")
	}
	h := len(rows[0])
	out := t.newValue(h, 1)
	for k, row := range rows {
		a := alpha.Data[k]
		for i, x := range row {
			out.Data[i] += a * x
		}
	}
	out.op, out.a, out.rows = opWeightedSumConst, alpha, rows
	return t.record(out)
}

// Pinball computes the quantile-regression (pinball) loss of the paper's
// Equation 5/6: Σ_k Q(Δ_k | q_k) with Δ_k = target_k − pred_k, where
// Q(Δ|δ) = δΔ for Δ ≥ 0 and (δ−1)Δ otherwise. This is the standard
// orientation under which minimisation drives pred_k to the q_k-th quantile
// of the target distribution (with Δ = pred − target the heads would
// converge to the mirrored (1−q) quantiles). pred and target have length
// len(q); the result is a scalar. target and q are copied, so callers may
// reuse their buffers immediately.
func (t *Tape) Pinball(pred *Value, target []float64, q []float64) *Value {
	if pred.Len() != len(q) || len(target) != len(q) {
		panic(fmt.Sprintf("ad: Pinball wants %d predictions and targets, got %d/%d", len(q), pred.Len(), len(target)))
	}
	out := t.newValue(1, 1)
	for k, d := range q {
		delta := target[k] - pred.Data[k]
		if delta >= 0 {
			out.Data[0] += d * delta
		} else {
			out.Data[0] += (d - 1) * delta
		}
	}
	if t.grad {
		aux := t.alloc(2 * len(q))
		copy(aux, target)
		copy(aux[len(q):], q)
		out.op, out.a, out.aux = opPinball, pred, aux
	}
	return t.record(out)
}

// SquaredError computes Σ_k (pred_k − target_k)² as a scalar. target is
// copied, so callers may reuse the buffer immediately.
func (t *Tape) SquaredError(pred *Value, target []float64) *Value {
	if pred.Len() != len(target) {
		panic(fmt.Sprintf("ad: SquaredError length mismatch %d vs %d", pred.Len(), len(target)))
	}
	out := t.newValue(1, 1)
	for k, y := range target {
		d := pred.Data[k] - y
		out.Data[0] += d * d
	}
	if t.grad {
		aux := t.alloc(len(target))
		copy(aux, target)
		out.op, out.a, out.aux = opSquaredError, pred, aux
	}
	return t.record(out)
}

// SumScalars adds scalar values into one scalar. The operand slice is
// retained until the next Reset; callers must not mutate it before
// Backward.
func (t *Tape) SumScalars(vs ...*Value) *Value {
	out := t.newValue(1, 1)
	for _, v := range vs {
		if v.Len() != 1 {
			panic("ad: SumScalars requires scalar operands")
		}
		out.Data[0] += v.Data[0]
	}
	out.op, out.args = opSumScalars, vs
	return t.record(out)
}

// Backward runs reverse-mode accumulation from the scalar root, seeding its
// gradient with 1. It panics on an eval-mode tape.
func (t *Tape) Backward(root *Value) {
	if !t.grad {
		panic("ad: Backward on a gradient-free eval tape")
	}
	if root.Len() != 1 {
		panic("ad: Backward root must be scalar")
	}
	root.Grad[0] += 1
	for i := len(t.nodes) - 1; i >= 0; i-- {
		t.backstep(t.nodes[i])
	}
}

// backstep applies one node's backward rule. Each case reproduces, float
// operation for float operation, the gradient arithmetic of the original
// closure-based engine, so results are bit-identical.
func (t *Tape) backstep(v *Value) {
	switch v.op {
	case opLeaf:
	case opMatVec:
		w, x := v.a, v.b
		for i := 0; i < w.Rows; i++ {
			g := v.Grad[i]
			if g == 0 {
				continue
			}
			wrow := w.Data[i*w.Cols : (i+1)*w.Cols]
			grow := w.Grad[i*w.Cols : (i+1)*w.Cols]
			for j := range wrow {
				grow[j] += g * x.Data[j]
				x.Grad[j] += g * wrow[j]
			}
		}
	case opAdd:
		a, b := v.a, v.b
		for i, g := range v.Grad {
			a.Grad[i] += g
			b.Grad[i] += g
		}
	case opSub:
		a, b := v.a, v.b
		for i, g := range v.Grad {
			a.Grad[i] += g
			b.Grad[i] -= g
		}
	case opMul:
		a, b := v.a, v.b
		for i, g := range v.Grad {
			a.Grad[i] += g * b.Data[i]
			b.Grad[i] += g * a.Data[i]
		}
	case opScaleConst:
		a, s := v.a, v.sc
		for i, g := range v.Grad {
			a.Grad[i] += s * g
		}
	case opOneMinus:
		a := v.a
		for i, g := range v.Grad {
			a.Grad[i] -= g
		}
	case opSigmoid:
		a := v.a
		for i, g := range v.Grad {
			s := v.Data[i]
			a.Grad[i] += g * s * (1 - s)
		}
	case opTanh:
		a := v.a
		for i, g := range v.Grad {
			th := v.Data[i]
			a.Grad[i] += g * (1 - th*th)
		}
	case opReLU:
		a := v.a
		for i, g := range v.Grad {
			if a.Data[i] > 0 {
				a.Grad[i] += g
			}
		}
	case opConcat:
		a, b := v.a, v.b
		for i := 0; i < a.Rows; i++ {
			a.Grad[i] += v.Grad[i]
		}
		for i := 0; i < b.Rows; i++ {
			b.Grad[i] += v.Grad[a.Rows+i]
		}
	case opWeightedSumConst:
		alpha := v.a
		for k, row := range v.rows {
			s := 0.0
			for i, x := range row {
				s += v.Grad[i] * x
			}
			alpha.Grad[k] += s
		}
	case opPinball:
		pred := v.a
		n := len(v.aux) / 2
		target, q := v.aux[:n], v.aux[n:]
		g := v.Grad[0]
		for k, d := range q {
			delta := target[k] - pred.Data[k]
			if delta >= 0 {
				pred.Grad[k] -= g * d
			} else {
				pred.Grad[k] -= g * (d - 1)
			}
		}
	case opSquaredError:
		pred := v.a
		g := v.Grad[0]
		for k, y := range v.aux {
			pred.Grad[k] += g * 2 * (pred.Data[k] - y)
		}
	case opSumScalars:
		g := v.Grad[0]
		for _, o := range v.args {
			o.Grad[0] += g
		}
	case opGRUStep:
		t.gruBackward(v)
	default:
		panic(fmt.Sprintf("ad: unknown opcode %d", v.op))
	}
}

func checkSameShape(op string, a, b *Value) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("ad: %s shape mismatch: %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

func stableSigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// scratchBuf returns an n-float workspace owned by the tape. Contents are
// undefined; callers overwrite or clear what they use.
func (t *Tape) scratchBuf(n int) []float64 {
	if cap(t.scratch) < n {
		t.scratch = make([]float64, n)
	}
	return t.scratch[:n]
}
