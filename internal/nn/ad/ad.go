// Package ad is a small reverse-mode automatic differentiation engine
// operating on dense float64 vectors and matrices. It is the substrate the
// DeepRest estimator's GRU experts are built on — the stdlib-only stand-in
// for the paper's PyTorch.
//
// Usage follows the define-by-run tape model: a Tape records operations as
// they execute; Backward replays them in reverse, accumulating gradients.
// Model parameters live in Param objects whose gradients persist across
// tape rebuilds until an optimizer consumes and zeroes them, which is what
// makes truncated backpropagation-through-time (and gradient accumulation)
// straightforward.
package ad

import (
	"fmt"
	"math"
	"math/rand"
)

// Param is a trainable tensor: data plus accumulated gradient. Vectors use
// Cols == 1.
type Param struct {
	// Name identifies the parameter in serialized models and debugging
	// output.
	Name string
	// Rows and Cols give the logical shape; len(Data) == Rows*Cols.
	Rows, Cols int
	// Data is the row-major parameter value.
	Data []float64
	// Grad is the accumulated gradient, same layout as Data.
	Grad []float64
}

// NewParam allocates a zero-initialised parameter.
func NewParam(name string, rows, cols int) *Param {
	return &Param{
		Name: name,
		Rows: rows, Cols: cols,
		Data: make([]float64, rows*cols),
		Grad: make([]float64, rows*cols),
	}
}

// NewParamInit allocates a parameter with Glorot-uniform initialisation.
func NewParamInit(name string, rows, cols int, rng *rand.Rand) *Param {
	p := NewParam(name, rows, cols)
	scale := math.Sqrt(6.0 / float64(rows+cols))
	for i := range p.Data {
		p.Data[i] = (2*rng.Float64() - 1) * scale
	}
	return p
}

// Size returns the number of scalar elements.
func (p *Param) Size() int { return len(p.Data) }

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// Value is a node in the computation graph: the result of one operation (or
// a leaf). Shapes: vectors are Rows×1; matrices Rows×Cols.
type Value struct {
	// Data holds the node's value, row-major.
	Data []float64
	// Grad holds ∂loss/∂node after Backward.
	Grad []float64
	// Rows and Cols give the logical shape.
	Rows, Cols int

	back func()
}

// Len returns the number of scalar elements.
func (v *Value) Len() int { return len(v.Data) }

// Scalar returns the single element of a 1×1 value.
func (v *Value) Scalar() float64 {
	if len(v.Data) != 1 {
		panic(fmt.Sprintf("ad: Scalar on value of length %d", len(v.Data)))
	}
	return v.Data[0]
}

// Tape records operations for reverse-mode differentiation. A Tape is not
// safe for concurrent use; build one tape per goroutine.
type Tape struct {
	nodes []*Value
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Reset discards all recorded operations so the tape can be reused for the
// next forward pass without reallocating the tape itself.
func (t *Tape) Reset() { t.nodes = t.nodes[:0] }

// NumNodes returns the number of recorded graph nodes.
func (t *Tape) NumNodes() int { return len(t.nodes) }

func (t *Tape) record(v *Value) *Value {
	t.nodes = append(t.nodes, v)
	return v
}

func newValue(rows, cols int) *Value {
	n := rows * cols
	return &Value{
		Data: make([]float64, n),
		Grad: make([]float64, n),
		Rows: rows, Cols: cols,
	}
}

// Const introduces an input vector as a leaf. Gradients flowing into it are
// accumulated but never used; the caller's slice is not aliased.
func (t *Tape) Const(data []float64) *Value {
	v := newValue(len(data), 1)
	copy(v.Data, data)
	return t.record(v)
}

// Use introduces a parameter into the graph. The returned Value aliases the
// parameter's Data and Grad, so Backward accumulates directly into the
// parameter.
func (t *Tape) Use(p *Param) *Value {
	v := &Value{Data: p.Data, Grad: p.Grad, Rows: p.Rows, Cols: p.Cols}
	return t.record(v)
}

// MatVec computes y = W·x for a Rows×Cols matrix value and a Cols-vector.
func (t *Tape) MatVec(w, x *Value) *Value {
	if w.Cols != x.Rows || x.Cols != 1 {
		panic(fmt.Sprintf("ad: MatVec shape mismatch: %dx%d · %dx%d", w.Rows, w.Cols, x.Rows, x.Cols))
	}
	out := newValue(w.Rows, 1)
	for i := 0; i < w.Rows; i++ {
		row := w.Data[i*w.Cols : (i+1)*w.Cols]
		s := 0.0
		for j, r := range row {
			s += r * x.Data[j]
		}
		out.Data[i] = s
	}
	out.back = func() {
		for i := 0; i < w.Rows; i++ {
			g := out.Grad[i]
			if g == 0 {
				continue
			}
			wrow := w.Data[i*w.Cols : (i+1)*w.Cols]
			grow := w.Grad[i*w.Cols : (i+1)*w.Cols]
			for j := range wrow {
				grow[j] += g * x.Data[j]
				x.Grad[j] += g * wrow[j]
			}
		}
	}
	return t.record(out)
}

// Add computes a + b element-wise; shapes must match.
func (t *Tape) Add(a, b *Value) *Value {
	checkSameShape("Add", a, b)
	out := newValue(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	out.back = func() {
		for i, g := range out.Grad {
			a.Grad[i] += g
			b.Grad[i] += g
		}
	}
	return t.record(out)
}

// Sub computes a - b element-wise; shapes must match.
func (t *Tape) Sub(a, b *Value) *Value {
	checkSameShape("Sub", a, b)
	out := newValue(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	out.back = func() {
		for i, g := range out.Grad {
			a.Grad[i] += g
			b.Grad[i] -= g
		}
	}
	return t.record(out)
}

// Mul computes the Hadamard product a ⊙ b; shapes must match.
func (t *Tape) Mul(a, b *Value) *Value {
	checkSameShape("Mul", a, b)
	out := newValue(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	out.back = func() {
		for i, g := range out.Grad {
			a.Grad[i] += g * b.Data[i]
			b.Grad[i] += g * a.Data[i]
		}
	}
	return t.record(out)
}

// ScaleConst computes s·a for a compile-time constant s.
func (t *Tape) ScaleConst(a *Value, s float64) *Value {
	out := newValue(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = s * a.Data[i]
	}
	out.back = func() {
		for i, g := range out.Grad {
			a.Grad[i] += s * g
		}
	}
	return t.record(out)
}

// OneMinus computes 1 - a element-wise (the GRU's (1 - z) gate complement).
func (t *Tape) OneMinus(a *Value) *Value {
	out := newValue(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = 1 - a.Data[i]
	}
	out.back = func() {
		for i, g := range out.Grad {
			a.Grad[i] -= g
		}
	}
	return t.record(out)
}

// Sigmoid applies the logistic function element-wise.
func (t *Tape) Sigmoid(a *Value) *Value {
	out := newValue(a.Rows, a.Cols)
	for i, x := range a.Data {
		out.Data[i] = stableSigmoid(x)
	}
	out.back = func() {
		for i, g := range out.Grad {
			s := out.Data[i]
			a.Grad[i] += g * s * (1 - s)
		}
	}
	return t.record(out)
}

// Tanh applies the hyperbolic tangent element-wise.
func (t *Tape) Tanh(a *Value) *Value {
	out := newValue(a.Rows, a.Cols)
	for i, x := range a.Data {
		out.Data[i] = math.Tanh(x)
	}
	out.back = func() {
		for i, g := range out.Grad {
			th := out.Data[i]
			a.Grad[i] += g * (1 - th*th)
		}
	}
	return t.record(out)
}

// ReLU applies max(0, x) element-wise.
func (t *Tape) ReLU(a *Value) *Value {
	out := newValue(a.Rows, a.Cols)
	for i, x := range a.Data {
		if x > 0 {
			out.Data[i] = x
		}
	}
	out.back = func() {
		for i, g := range out.Grad {
			if a.Data[i] > 0 {
				a.Grad[i] += g
			}
		}
	}
	return t.record(out)
}

// Concat stacks vectors a and b into one vector (the paper's a_t ∥ h_t).
func (t *Tape) Concat(a, b *Value) *Value {
	if a.Cols != 1 || b.Cols != 1 {
		panic("ad: Concat requires vectors")
	}
	out := newValue(a.Rows+b.Rows, 1)
	copy(out.Data, a.Data)
	copy(out.Data[a.Rows:], b.Data)
	out.back = func() {
		for i := 0; i < a.Rows; i++ {
			a.Grad[i] += out.Grad[i]
		}
		for i := 0; i < b.Rows; i++ {
			b.Grad[i] += out.Grad[a.Rows+i]
		}
	}
	return t.record(out)
}

// WeightedSumConst computes Σ_k alpha[k] · rows[k] for constant row vectors
// (the cross-component attention over detached peer hidden states). alpha is
// a K-vector; all rows must share one length.
func (t *Tape) WeightedSumConst(alpha *Value, rows [][]float64) *Value {
	if alpha.Cols != 1 || alpha.Rows != len(rows) {
		panic(fmt.Sprintf("ad: WeightedSumConst wants %d weights, got %d", len(rows), alpha.Rows))
	}
	if len(rows) == 0 {
		panic("ad: WeightedSumConst with no rows")
	}
	h := len(rows[0])
	out := newValue(h, 1)
	for k, row := range rows {
		a := alpha.Data[k]
		for i, x := range row {
			out.Data[i] += a * x
		}
	}
	out.back = func() {
		for k, row := range rows {
			s := 0.0
			for i, x := range row {
				s += out.Grad[i] * x
			}
			alpha.Grad[k] += s
		}
	}
	return t.record(out)
}

// Pinball computes the quantile-regression (pinball) loss of the paper's
// Equation 5/6: Σ_k Q(Δ_k | q_k) with Δ_k = target_k − pred_k, where
// Q(Δ|δ) = δΔ for Δ ≥ 0 and (δ−1)Δ otherwise. This is the standard
// orientation under which minimisation drives pred_k to the q_k-th quantile
// of the target distribution (with Δ = pred − target the heads would
// converge to the mirrored (1−q) quantiles). pred and target have length
// len(q); the result is a scalar.
func (t *Tape) Pinball(pred *Value, target []float64, q []float64) *Value {
	if pred.Len() != len(q) || len(target) != len(q) {
		panic(fmt.Sprintf("ad: Pinball wants %d predictions and targets, got %d/%d", len(q), pred.Len(), len(target)))
	}
	out := newValue(1, 1)
	for k, d := range q {
		delta := target[k] - pred.Data[k]
		if delta >= 0 {
			out.Data[0] += d * delta
		} else {
			out.Data[0] += (d - 1) * delta
		}
	}
	out.back = func() {
		g := out.Grad[0]
		for k, d := range q {
			delta := target[k] - pred.Data[k]
			if delta >= 0 {
				pred.Grad[k] -= g * d
			} else {
				pred.Grad[k] -= g * (d - 1)
			}
		}
	}
	return t.record(out)
}

// SquaredError computes Σ_k (pred_k − target_k)² as a scalar.
func (t *Tape) SquaredError(pred *Value, target []float64) *Value {
	if pred.Len() != len(target) {
		panic(fmt.Sprintf("ad: SquaredError length mismatch %d vs %d", pred.Len(), len(target)))
	}
	out := newValue(1, 1)
	for k, y := range target {
		d := pred.Data[k] - y
		out.Data[0] += d * d
	}
	out.back = func() {
		g := out.Grad[0]
		for k, y := range target {
			pred.Grad[k] += g * 2 * (pred.Data[k] - y)
		}
	}
	return t.record(out)
}

// SumScalars adds scalar values into one scalar.
func (t *Tape) SumScalars(vs ...*Value) *Value {
	out := newValue(1, 1)
	for _, v := range vs {
		if v.Len() != 1 {
			panic("ad: SumScalars requires scalar operands")
		}
		out.Data[0] += v.Data[0]
	}
	out.back = func() {
		g := out.Grad[0]
		for _, v := range vs {
			v.Grad[0] += g
		}
	}
	return t.record(out)
}

// Backward runs reverse-mode accumulation from the scalar root, seeding its
// gradient with 1.
func (t *Tape) Backward(root *Value) {
	if root.Len() != 1 {
		panic("ad: Backward root must be scalar")
	}
	root.Grad[0] += 1
	for i := len(t.nodes) - 1; i >= 0; i-- {
		if t.nodes[i].back != nil {
			t.nodes[i].back()
		}
	}
}

func checkSameShape(op string, a, b *Value) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("ad: %s shape mismatch: %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

func stableSigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}
