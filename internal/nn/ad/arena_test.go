package ad

import (
	"math"
	"math/rand"
	"testing"
)

// newTestGRU builds a small randomly initialised GRU parameter bundle.
func newTestGRU(in, hid int, rng *rand.Rand) *GRUParams {
	return &GRUParams{
		Wz: NewParamInit("Wz", hid, in, rng),
		Uz: NewParamInit("Uz", hid, hid, rng),
		Bz: NewParamInit("bz", hid, 1, rng),
		Wk: NewParamInit("Wk", hid, in, rng),
		Uk: NewParamInit("Uk", hid, hid, rng),
		Bk: NewParamInit("bk", hid, 1, rng),
		Wh: NewParamInit("Wh", hid, in, rng),
		Uh: NewParamInit("Uh", hid, hid, rng),
		Bh: NewParamInit("bh", hid, 1, rng),
	}
}

func TestGRUStepGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in, hid := 3, 4
	g := newTestGRU(in, hid, rng)
	x := NewParamInit("x", in, 1, rng)
	h0 := NewParamInit("h0", hid, 1, rng)
	tgt := make([]float64, hid)
	for i := range tgt {
		tgt[i] = 0.1 * float64(i+1)
	}
	params := []*Param{g.Wz, g.Uz, g.Bz, g.Wk, g.Uk, g.Bk, g.Wh, g.Uh, g.Bh, x, h0}
	checkGrads(t, params, func(tp *Tape) *Value {
		// Two chained steps so the loss reaches hPrev both directly (via
		// the blend) and through the reset gate of the next step.
		h := tp.GRUStep(g, tp.Use(x), tp.Use(h0))
		h = tp.GRUStep(g, tp.Use(x), h)
		return tp.SquaredError(h, tgt)
	})
}

// TestPooledTapeMatchesFresh drives the same training-shaped computation
// through (a) a fresh tape per round and (b) one pooled tape recycled with
// Reset, and requires bitwise-identical outputs and parameter gradients.
// This is the contract that lets the estimator reuse one tape per expert.
func TestPooledTapeMatchesFresh(t *testing.T) {
	const rounds, in, hid, steps = 8, 5, 6, 7
	rng := rand.New(rand.NewSource(23))
	g := newTestGRU(in, hid, rng)
	xs := make([][]float64, rounds*steps)
	for i := range xs {
		row := make([]float64, in)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		xs[i] = row
	}
	tgt := make([]float64, hid)
	for i := range tgt {
		tgt[i] = rng.NormFloat64()
	}
	params := []*Param{g.Wz, g.Uz, g.Bz, g.Wk, g.Uk, g.Bk, g.Wh, g.Uh, g.Bh}

	// run executes `rounds` forward+backward rounds, returning the output
	// bits and accumulated gradient bits after every round. next() supplies
	// the tape for each round.
	run := func(next func() *Tape) (outs [][]uint64, grads [][]uint64) {
		for _, p := range params {
			p.ZeroGrad()
		}
		zeroH := make([]float64, hid)
		losses := make([]*Value, 0, steps)
		for r := 0; r < rounds; r++ {
			tape := next()
			h := tape.Const(zeroH)
			losses = losses[:0]
			for s := 0; s < steps; s++ {
				h = tape.GRUStep(g, tape.Const(xs[r*steps+s]), h)
				losses = append(losses, tape.SquaredError(h, tgt))
			}
			tape.Backward(tape.ScaleConst(tape.SumScalars(losses...), 1.0/steps))
			ob := make([]uint64, hid)
			for i, v := range h.Data {
				ob[i] = math.Float64bits(v)
			}
			outs = append(outs, ob)
			var gb []uint64
			for _, p := range params {
				for _, v := range p.Grad {
					gb = append(gb, math.Float64bits(v))
				}
			}
			grads = append(grads, gb)
		}
		return outs, grads
	}

	freshOuts, freshGrads := run(NewTape)
	pooled := NewTape()
	pooledOuts, pooledGrads := run(func() *Tape {
		pooled.Reset()
		return pooled
	})

	for r := 0; r < rounds; r++ {
		for i := range freshOuts[r] {
			if freshOuts[r][i] != pooledOuts[r][i] {
				t.Fatalf("round %d output[%d]: fresh %#x vs pooled %#x", r, i, freshOuts[r][i], pooledOuts[r][i])
			}
		}
		for i := range freshGrads[r] {
			if freshGrads[r][i] != pooledGrads[r][i] {
				t.Fatalf("round %d grad[%d]: fresh %#x vs pooled %#x", r, i, freshGrads[r][i], pooledGrads[r][i])
			}
		}
	}
}

// TestResetNoStaleState checks that recycled arena memory comes back zeroed:
// gradients and data left behind by a completed Backward must not leak into
// nodes allocated after Reset.
func TestResetNoStaleState(t *testing.T) {
	tape := NewTape()
	a := tape.Const([]float64{1, 2, 3})
	b := tape.Sigmoid(a)
	loss := tape.SquaredError(b, []float64{0, 0, 0})
	tape.Backward(loss)
	nonzero := false
	for _, gv := range b.Grad {
		if gv != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("sanity: expected nonzero grads before Reset")
	}

	tape.Reset()
	a2 := tape.Const([]float64{4, 5, 6})
	b2 := tape.Tanh(a2)
	for i, v := range a2.Data {
		if want := []float64{4, 5, 6}[i]; v != want {
			t.Errorf("recycled Data[%d] = %v, want %v", i, v, want)
		}
	}
	for i, gv := range a2.Grad {
		if gv != 0 {
			t.Errorf("recycled a2.Grad[%d] = %v, want 0", i, gv)
		}
	}
	for i, gv := range b2.Grad {
		if gv != 0 {
			t.Errorf("recycled b2.Grad[%d] = %v, want 0", i, gv)
		}
	}
	if tape.NumNodes() != 2 {
		t.Errorf("NumNodes after Reset+2 ops = %d, want 2", tape.NumNodes())
	}
}

// TestEvalTapeMatchesTrainForward checks that a gradient-free tape computes
// bitwise-identical forward values to a training tape.
func TestEvalTapeMatchesTrainForward(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	in, hid := 4, 5
	g := newTestGRU(in, hid, rng)
	x := make([]float64, in)
	for i := range x {
		x[i] = rng.NormFloat64()
	}

	forward := func(tape *Tape) []uint64 {
		h := tape.Const(make([]float64, hid))
		for s := 0; s < 3; s++ {
			h = tape.GRUStep(g, tape.Const(x), h)
		}
		y := tape.Concat(tape.Sigmoid(h), tape.Tanh(h))
		out := make([]uint64, len(y.Data))
		for i, v := range y.Data {
			out[i] = math.Float64bits(v)
		}
		return out
	}

	train := forward(NewTape())
	eval := forward(NewEvalTape())
	for i := range train {
		if train[i] != eval[i] {
			t.Errorf("forward[%d]: train %#x vs eval %#x", i, train[i], eval[i])
		}
	}
}

func TestEvalTapeHasNoGrad(t *testing.T) {
	tape := NewEvalTape()
	v := tape.Sigmoid(tape.Const([]float64{0.5}))
	if v.Grad != nil {
		t.Errorf("eval-tape value has Grad of len %d, want nil", len(v.Grad))
	}
}

func TestEvalTapeBackwardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Backward on an eval tape should panic")
		}
	}()
	tape := NewEvalTape()
	tape.Backward(tape.Const([]float64{1}))
}

// TestResetSteadyStateAllocs asserts the tentpole property: once the arena
// is warm, a full forward+backward round on a pooled tape performs zero
// heap allocations.
func TestResetSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	in, hid := 6, 8
	g := newTestGRU(in, hid, rng)
	x := make([]float64, in)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	h0 := make([]float64, hid)
	tgt := make([]float64, hid)
	tape := NewTape()
	losses := make([]*Value, 0, 4)
	round := func() {
		tape.Reset()
		h := tape.Const(h0)
		losses = losses[:0]
		for s := 0; s < 4; s++ {
			h = tape.GRUStep(g, tape.Const(x), h)
			losses = append(losses, tape.SquaredError(h, tgt))
		}
		tape.Backward(tape.ScaleConst(tape.SumScalars(losses...), 0.25))
	}
	round() // warm the arena and scratch buffers
	if n := testing.AllocsPerRun(50, round); n > 0 {
		t.Errorf("steady-state pooled round allocates %.1f times/op, want 0", n)
	}
}
