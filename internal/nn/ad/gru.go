package ad

import (
	"fmt"
	"math"
)

// GRUParams bundles the nine parameter tensors of one GRU cell (paper
// Equation 2) for the fused step kernel: W· act on the input, U· on the
// previous state, B· are biases, for the update gate z, reset gate k, and
// candidate h̃. Build one per cell and reuse it; the kernel reads Data and
// accumulates into Grad directly, so no Use nodes are recorded.
type GRUParams struct {
	Wz, Uz, Bz *Param
	Wk, Uk, Bk *Param
	Wh, Uh, Bh *Param
}

// GRUStep advances a GRU cell one time step as a single fused tape op:
//
//	z = σ(Wz·x + Uz·h + bz)
//	k = σ(Wk·x + Uk·h + bk)
//	h̃ = tanh(Wh·x + Uh·(k ⊙ h) + bh)
//	h' = z ⊙ h + (1 − z) ⊙ h̃
//
// It replaces the ~28-node chain of MatVec/Add/Mul/Sigmoid/Tanh primitives
// a composed implementation records, with one node and a hand-written
// backward. Forward and backward perform the same float64 operations in
// the same order as the composed chain (see gruBackward), so losses and
// gradients are bit-identical to it on targets without fused multiply-add
// contraction.
func (t *Tape) GRUStep(g *GRUParams, x, hPrev *Value) *Value {
	in, hid := g.Wz.Cols, g.Wz.Rows
	if x.Rows != in || x.Cols != 1 || hPrev.Rows != hid || hPrev.Cols != 1 {
		panic(fmt.Sprintf("ad: GRUStep shape mismatch: x %dx%d, h %dx%d for a %d→%d cell",
			x.Rows, x.Cols, hPrev.Rows, hPrev.Cols, in, hid))
	}
	out := t.newValue(hid, 1)
	// Gate activations are retained for the backward pass: z, k, candidate
	// c, and the reset-gated state kh = k ⊙ hPrev.
	aux := t.alloc(4 * hid)
	z, k, c, kh := aux[:hid], aux[hid:2*hid], aux[2*hid:3*hid], aux[3*hid:]
	xd, hd := x.Data, hPrev.Data
	for i := 0; i < hid; i++ {
		wzx := dot(g.Wz.Data[i*in:(i+1)*in], xd)
		uzh := dot(g.Uz.Data[i*hid:(i+1)*hid], hd)
		z[i] = stableSigmoid((wzx + uzh) + g.Bz.Data[i])
		wkx := dot(g.Wk.Data[i*in:(i+1)*in], xd)
		ukh := dot(g.Uk.Data[i*hid:(i+1)*hid], hd)
		k[i] = stableSigmoid((wkx + ukh) + g.Bk.Data[i])
	}
	for i := 0; i < hid; i++ {
		kh[i] = k[i] * hd[i]
	}
	for i := 0; i < hid; i++ {
		whx := dot(g.Wh.Data[i*in:(i+1)*in], xd)
		uhkh := dot(g.Uh.Data[i*hid:(i+1)*hid], kh)
		c[i] = math.Tanh((whx + uhkh) + g.Bh.Data[i])
	}
	for i := 0; i < hid; i++ {
		// h' = z⊙h + (1−z)⊙c with the same intermediate roundings as the
		// Mul/OneMinus/Mul/Add chain.
		zh := z[i] * hd[i]
		oc := (1 - z[i]) * c[i]
		out.Data[i] = zh + oc
	}
	if t.grad {
		out.op, out.a, out.b, out.aux, out.gru = opGRUStep, x, hPrev, aux, g
	}
	return t.record(out)
}

// gruBackward is the hand-written adjoint of GRUStep. The composed chain
// accumulates gradients per memory location in a fixed order as Backward
// walks its ~28 nodes in reverse; this function performs the identical
// per-location accumulation sequence — hPrev.Grad receives its four terms
// in the order blend, reset-gate product, Uk row sweep, Uz row sweep, and
// x.Grad its three in the order Wh, Wk, Wz — so every gradient matches the
// unfused engine bit for bit (absent FMA contraction).
func (t *Tape) gruBackward(v *Value) {
	g, x, hPrev := v.gru, v.a, v.b
	in, hid := g.Wz.Cols, g.Wz.Rows
	z, k, c, kh := v.aux[:hid], v.aux[hid:2*hid], v.aux[2*hid:3*hid], v.aux[3*hid:]
	gh := v.Grad
	xd, hd := x.Data, hPrev.Data

	buf := t.scratchBuf(4 * hid)
	s2g, s6g, khg, s4g := buf[:hid], buf[hid:2*hid], buf[2*hid:3*hid], buf[3*hid:]

	// Blend h' = z⊙h + (1−z)⊙c: update-gate grad (pre-sigmoid transform
	// deferred) and the first hPrev term.
	for i := 0; i < hid; i++ {
		zg := 0.0
		zg -= gh[i] * c[i]  // through OneMinus(z)
		zg += gh[i] * hd[i] // through Mul(z, hPrev)
		s2g[i] = zg
		hPrev.Grad[i] += gh[i] * z[i]
	}
	// Candidate tanh: pre-activation grad and bias.
	for i := 0; i < hid; i++ {
		cg := gh[i] * (1 - z[i])
		s6 := cg * (1 - c[i]*c[i])
		s6g[i] = s6
		g.Bh.Grad[i] += s6
	}
	// MatVec(Uh, kh): weight grad and reset-gated-state grad.
	clear(khg)
	for i := 0; i < hid; i++ {
		gg := s6g[i]
		if gg == 0 {
			continue
		}
		urow := g.Uh.Data[i*hid : (i+1)*hid]
		grow := g.Uh.Grad[i*hid : (i+1)*hid]
		for j := range urow {
			grow[j] += gg * kh[j]
			khg[j] += gg * urow[j]
		}
	}
	// Mul(k, hPrev): reset-gate grad (khg becomes kg in place) and the
	// second hPrev term.
	for i := 0; i < hid; i++ {
		gg := khg[i]
		hPrev.Grad[i] += gg * k[i]
		khg[i] = gg * hd[i]
	}
	// MatVec(Wh, x).
	for i := 0; i < hid; i++ {
		gg := s6g[i]
		if gg == 0 {
			continue
		}
		wrow := g.Wh.Data[i*in : (i+1)*in]
		grow := g.Wh.Grad[i*in : (i+1)*in]
		for j := range wrow {
			grow[j] += gg * xd[j]
			x.Grad[j] += gg * wrow[j]
		}
	}
	// Reset-gate sigmoid chain: σ′, bias, U sweep, W sweep.
	for i := 0; i < hid; i++ {
		s4 := khg[i] * k[i] * (1 - k[i])
		s4g[i] = s4
		g.Bk.Grad[i] += s4
	}
	for i := 0; i < hid; i++ {
		gg := s4g[i]
		if gg == 0 {
			continue
		}
		urow := g.Uk.Data[i*hid : (i+1)*hid]
		grow := g.Uk.Grad[i*hid : (i+1)*hid]
		for j := range urow {
			grow[j] += gg * hd[j]
			hPrev.Grad[j] += gg * urow[j]
		}
	}
	for i := 0; i < hid; i++ {
		gg := s4g[i]
		if gg == 0 {
			continue
		}
		wrow := g.Wk.Data[i*in : (i+1)*in]
		grow := g.Wk.Grad[i*in : (i+1)*in]
		for j := range wrow {
			grow[j] += gg * xd[j]
			x.Grad[j] += gg * wrow[j]
		}
	}
	// Update-gate sigmoid chain.
	for i := 0; i < hid; i++ {
		s2 := s2g[i] * z[i] * (1 - z[i])
		s2g[i] = s2
		g.Bz.Grad[i] += s2
	}
	for i := 0; i < hid; i++ {
		gg := s2g[i]
		if gg == 0 {
			continue
		}
		urow := g.Uz.Data[i*hid : (i+1)*hid]
		grow := g.Uz.Grad[i*hid : (i+1)*hid]
		for j := range urow {
			grow[j] += gg * hd[j]
			hPrev.Grad[j] += gg * urow[j]
		}
	}
	for i := 0; i < hid; i++ {
		gg := s2g[i]
		if gg == 0 {
			continue
		}
		wrow := g.Wz.Data[i*in : (i+1)*in]
		grow := g.Wz.Grad[i*in : (i+1)*in]
		for j := range wrow {
			grow[j] += gg * xd[j]
			x.Grad[j] += gg * wrow[j]
		}
	}
}
