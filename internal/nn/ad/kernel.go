package ad

import "math"

// This file exports the fused-kernel math for the tape-free inference
// engine (internal/estimator/infer). The engine snapshots trained
// parameters into flat slabs and replays the forward pass without
// recording tape nodes; sharing dot and stableSigmoid with the tape ops
// keeps the two paths' rounding behaviour identical, so engine output is
// bit-for-bit the eval-tape output (absent FMA contraction).

// Dot exposes the row·vector kernel shared by MatVec and GRUStep. Callers
// computing dense layers outside the tape must use it (rather than a local
// loop) so both paths accumulate in the same order.
func Dot(row, x []float64) float64 { return dot(row, x) }

// Logistic exposes the numerically-stable sigmoid the tape's Sigmoid op
// applies element-wise.
func Logistic(x float64) float64 { return stableSigmoid(x) }

// GRUKernel is the tape-free twin of GRUStep: the nine parameter tensors of
// one GRU cell as flat row-major slices. The slices may alias live Params
// (see layers.GRUCell.Kernel) or a snapshot slab; the kernel only reads
// them.
type GRUKernel struct {
	// In and Hidden are the input and state dimensions.
	In, Hidden int
	// W· act on the input (Hidden×In), U· on the previous state
	// (Hidden×Hidden), B· are biases (Hidden).
	Wz, Uz, Bz []float64
	Wk, Uk, Bk []float64
	Wh, Uh, Bh []float64
}

// ScratchLen returns the workspace length Step requires.
func (g *GRUKernel) ScratchLen() int { return 3 * g.Hidden }

// Step advances the cell one time step: hOut = GRU(x, hPrev). It performs
// the same float64 operations in the same order as the tape's GRUStep
// (which in turn matches the primitive MatVec/Add/Mul/Sigmoid/Tanh chain),
// so the hidden trajectory is bit-identical to the eval-tape recurrence.
// hOut must not alias hPrev; scratch needs ScratchLen floats and is
// clobbered.
func (g *GRUKernel) Step(x, hPrev, hOut, scratch []float64) {
	in, hid := g.In, g.Hidden
	z, k, kh := scratch[:hid], scratch[hid:2*hid], scratch[2*hid:3*hid]
	for i := 0; i < hid; i++ {
		wzx := dot(g.Wz[i*in:(i+1)*in], x)
		uzh := dot(g.Uz[i*hid:(i+1)*hid], hPrev)
		z[i] = stableSigmoid((wzx + uzh) + g.Bz[i])
		wkx := dot(g.Wk[i*in:(i+1)*in], x)
		ukh := dot(g.Uk[i*hid:(i+1)*hid], hPrev)
		k[i] = stableSigmoid((wkx + ukh) + g.Bk[i])
	}
	for i := 0; i < hid; i++ {
		kh[i] = k[i] * hPrev[i]
	}
	for i := 0; i < hid; i++ {
		whx := dot(g.Wh[i*in:(i+1)*in], x)
		uhkh := dot(g.Uh[i*hid:(i+1)*hid], kh)
		hOut[i] = math.Tanh((whx + uhkh) + g.Bh[i])
	}
	for i := 0; i < hid; i++ {
		// h' = z⊙h + (1−z)⊙c with the same intermediate roundings as the
		// fused tape op (and the Mul/OneMinus/Mul/Add chain it replaced).
		zh := z[i] * hPrev[i]
		oc := (1 - z[i]) * hOut[i]
		hOut[i] = zh + oc
	}
}
