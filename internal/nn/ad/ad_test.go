package ad

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// numericGrad estimates dLoss/dParam[i] by central differences.
func numericGrad(p *Param, i int, loss func() float64) float64 {
	const h = 1e-6
	orig := p.Data[i]
	p.Data[i] = orig + h
	up := loss()
	p.Data[i] = orig - h
	down := loss()
	p.Data[i] = orig
	return (up - down) / (2 * h)
}

// checkGrads compares analytic gradients against numeric ones for every
// element of every parameter.
func checkGrads(t *testing.T, params []*Param, build func(tp *Tape) *Value) {
	t.Helper()
	tape := NewTape()
	root := build(tape)
	tape.Backward(root)
	loss := func() float64 {
		tp := NewTape()
		return build(tp).Scalar()
	}
	for _, p := range params {
		for i := range p.Data {
			want := numericGrad(p, i, loss)
			got := p.Grad[i]
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Errorf("param %s[%d]: analytic %.8f vs numeric %.8f", p.Name, i, got, want)
			}
		}
		p.ZeroGrad()
	}
}

func TestMatVecGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := NewParamInit("W", 3, 4, rng)
	x := NewParamInit("x", 4, 1, rng)
	checkGrads(t, []*Param{w, x}, func(tp *Tape) *Value {
		y := tp.MatVec(tp.Use(w), tp.Use(x))
		return tp.SquaredError(y, []float64{0.1, -0.2, 0.3})
	})
}

func TestElementwiseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewParamInit("a", 5, 1, rng)
	b := NewParamInit("b", 5, 1, rng)
	checkGrads(t, []*Param{a, b}, func(tp *Tape) *Value {
		av, bv := tp.Use(a), tp.Use(b)
		sum := tp.Add(av, bv)
		prod := tp.Mul(sum, tp.OneMinus(bv))
		sub := tp.Sub(prod, av)
		scaled := tp.ScaleConst(sub, 0.7)
		return tp.SquaredError(scaled, []float64{0.1, 0.2, 0.3, -0.1, 0})
	})
}

func TestActivationGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewParamInit("a", 6, 1, rng)
	checkGrads(t, []*Param{a}, func(tp *Tape) *Value {
		v := tp.Use(a)
		s := tp.Sigmoid(v)
		th := tp.Tanh(v)
		r := tp.ReLU(v)
		mixed := tp.Add(tp.Mul(s, th), r)
		return tp.SquaredError(mixed, []float64{0.3, -0.1, 0.2, 0.5, -0.4, 0})
	})
}

func TestConcatGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewParamInit("a", 3, 1, rng)
	b := NewParamInit("b", 2, 1, rng)
	checkGrads(t, []*Param{a, b}, func(tp *Tape) *Value {
		c := tp.Concat(tp.Use(a), tp.Use(b))
		return tp.SquaredError(c, []float64{1, 2, 3, 4, 5})
	})
}

func TestWeightedSumConstGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	alpha := NewParamInit("alpha", 3, 1, rng)
	rows := [][]float64{{1, 2}, {0.5, -1}, {-0.3, 0.8}}
	checkGrads(t, []*Param{alpha}, func(tp *Tape) *Value {
		v := tp.WeightedSumConst(tp.Use(alpha), rows)
		return tp.SquaredError(v, []float64{0.2, -0.5})
	})
}

func TestPinballGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := NewParamInit("p", 3, 1, rng)
	// Targets chosen away from the predictions so the kink is not hit.
	checkGrads(t, []*Param{p}, func(tp *Tape) *Value {
		return tp.Pinball(tp.Use(p), []float64{5, 5, 5}, []float64{0.5, 0.05, 0.95})
	})
}

func TestPinballValue(t *testing.T) {
	tape := NewTape()
	pred := tape.Const([]float64{2})
	// target 5, q 0.9: Δ = 3 ≥ 0 → 0.9*3 = 2.7
	l := tape.Pinball(pred, []float64{5}, []float64{0.9})
	if math.Abs(l.Scalar()-2.7) > 1e-12 {
		t.Errorf("pinball(2; 5, 0.9) = %v, want 2.7", l.Scalar())
	}
	tape2 := NewTape()
	pred2 := tape2.Const([]float64{7})
	// Δ = -2 < 0 → (0.9-1)*(-2) = 0.2
	l2 := tape2.Pinball(pred2, []float64{5}, []float64{0.9})
	if math.Abs(l2.Scalar()-0.2) > 1e-12 {
		t.Errorf("pinball(7; 5, 0.9) = %v, want 0.2", l2.Scalar())
	}
}

// TestPinballQuantileConvergence asserts the fixed point of pinball descent
// is the q-th quantile: optimising a constant against uniform samples must
// land near the target quantile.
func TestPinballQuantileConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := make([]float64, 2000)
	for i := range samples {
		samples[i] = rng.Float64() // uniform(0,1): q-quantile = q
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		p := NewParam("c", 1, 1)
		p.Data[0] = 0.5
		lr := 0.01
		for epoch := 0; epoch < 60; epoch++ {
			for _, y := range samples {
				tape := NewTape()
				l := tape.Pinball(tape.Use(p), []float64{y}, []float64{q})
				tape.Backward(l)
				p.Data[0] -= lr * p.Grad[0]
				p.ZeroGrad()
			}
			lr *= 0.93
		}
		if math.Abs(p.Data[0]-q) > 0.05 {
			t.Errorf("q=%.1f: converged to %.3f, want ≈%.3f", q, p.Data[0], q)
		}
	}
}

func TestSumScalars(t *testing.T) {
	tape := NewTape()
	a := tape.Const([]float64{1.5})
	b := tape.Const([]float64{-0.5})
	c := tape.Const([]float64{2})
	s := tape.SumScalars(a, b, c)
	if s.Scalar() != 3 {
		t.Fatalf("SumScalars = %v, want 3", s.Scalar())
	}
	tape.Backward(s)
	for _, v := range []*Value{a, b, c} {
		if v.Grad[0] != 1 {
			t.Errorf("grad = %v, want 1", v.Grad[0])
		}
	}
}

func TestUseAliasesParam(t *testing.T) {
	p := NewParam("p", 2, 1)
	p.Data[0], p.Data[1] = 1, 2
	tape := NewTape()
	v := tape.Use(p)
	l := tape.SquaredError(v, []float64{0, 0})
	tape.Backward(l)
	if p.Grad[0] != 2 || p.Grad[1] != 4 {
		t.Fatalf("gradient not accumulated into param: %v", p.Grad)
	}
	// A second pass accumulates rather than overwrites.
	tape2 := NewTape()
	l2 := tape2.SquaredError(tape2.Use(p), []float64{0, 0})
	tape2.Backward(l2)
	if p.Grad[0] != 4 || p.Grad[1] != 8 {
		t.Fatalf("gradient should accumulate across passes: %v", p.Grad)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched shapes should panic")
		}
	}()
	tape := NewTape()
	tape.Add(tape.Const([]float64{1, 2}), tape.Const([]float64{1}))
}

func TestBackwardNonScalarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Backward on a non-scalar should panic")
		}
	}()
	tape := NewTape()
	tape.Backward(tape.Const([]float64{1, 2}))
}

func TestTapeReset(t *testing.T) {
	tape := NewTape()
	tape.Const([]float64{1})
	tape.Const([]float64{2})
	if tape.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", tape.NumNodes())
	}
	tape.Reset()
	if tape.NumNodes() != 0 {
		t.Fatalf("NumNodes after Reset = %d, want 0", tape.NumNodes())
	}
}

// Property: sigmoid output is always in (0,1) and tanh in (-1,1), for any
// finite input.
func TestActivationRangeProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		tape := NewTape()
		v := tape.Const([]float64{x})
		s := tape.Sigmoid(v).Scalar()
		th := tape.Tanh(v).Scalar()
		return s >= 0 && s <= 1 && th >= -1 && th <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for any vectors a and b of equal length, Add then Sub returns a.
func TestAddSubRoundTripProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		a := make([]float64, len(raw))
		b := make([]float64, len(raw))
		for i, v := range raw {
			// Clamp to a range where a+b cannot overflow — float
			// round-trip identity only holds in finite arithmetic.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				v = 1
			}
			a[i] = v
			b[i] = v / 2
		}
		tape := NewTape()
		av := tape.Const(a)
		bv := tape.Const(b)
		back := tape.Sub(tape.Add(av, bv), bv)
		for i := range a {
			if math.Abs(back.Data[i]-a[i]) > 1e-9*(1+math.Abs(a[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
