// Package trace models distributed traces for API-driven microservices.
//
// It mirrors the data model produced by off-the-shelf tracing systems such
// as Jaeger: every API request handled by an application is recorded as a
// Trace, a tree of Spans where each Span names the (component, operation)
// pair that performed one unit of work. DeepRest consumes only this
// execution topology — never payloads or logs — which is what makes it
// application-independent and privacy-preserving.
package trace

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Span is one operation performed by one component while serving an API
// request. Spans form a tree: the entry component creates the root span and
// every downstream invocation spawns a child.
type Span struct {
	// Component is the name of the microservice component that executed
	// the operation (e.g. "PostStorageService").
	Component string
	// Operation is the name of the operation within the component
	// (e.g. "findPosts").
	Operation string
	// Children are the spans spawned by this span, in invocation order.
	Children []*Span
}

// NewSpan returns a leaf span for the given component and operation.
func NewSpan(component, operation string) *Span {
	return &Span{Component: component, Operation: operation}
}

// Child appends a new child span and returns it, enabling fluent
// construction of span trees in tests and examples.
func (s *Span) Child(component, operation string) *Span {
	c := NewSpan(component, operation)
	s.Children = append(s.Children, c)
	return c
}

// ID returns the node identity used by DeepRest's execution topology graph:
// the (component, operation) pair rendered as a single token.
func (s *Span) ID() string {
	return s.Component + ":" + s.Operation
}

// NumSpans returns the total number of spans in the tree rooted at s.
func (s *Span) NumSpans() int {
	n := 1
	for _, c := range s.Children {
		n += c.NumSpans()
	}
	return n
}

// Clone returns a deep copy of the span tree rooted at s.
func (s *Span) Clone() *Span {
	cp := &Span{Component: s.Component, Operation: s.Operation}
	if len(s.Children) > 0 {
		cp.Children = make([]*Span, len(s.Children))
		for i, c := range s.Children {
			cp.Children[i] = c.Clone()
		}
	}
	return cp
}

// Walk visits every span in the tree rooted at s in depth-first preorder,
// calling fn with the span and the path of span IDs from the root up to and
// including the span itself. The path slice is reused between calls; copy it
// if it must be retained.
func (s *Span) Walk(fn func(span *Span, path []string)) {
	walk(s, nil, fn)
}

func walk(s *Span, prefix []string, fn func(*Span, []string)) {
	prefix = append(prefix, s.ID())
	fn(s, prefix)
	for _, c := range s.Children {
		walk(c, prefix, fn)
	}
}

// String renders the span tree in the compact arrow notation used throughout
// the DeepRest paper, e.g.
// "Root → MediaFrontend:uploadMedia → MediaMongoDB:store".
func (s *Span) String() string {
	var b strings.Builder
	var rec func(sp *Span, depth int)
	rec = func(sp *Span, depth int) {
		if depth > 0 {
			b.WriteString("\n")
			b.WriteString(strings.Repeat("  ", depth))
		}
		b.WriteString(sp.ID())
		for _, c := range sp.Children {
			rec(c, depth+1)
		}
	}
	rec(s, 0)
	return b.String()
}

// Trace is one recorded API request: the API endpoint that received it and
// the tree of spans the application executed to serve it.
type Trace struct {
	// API is the user-facing endpoint that originated the request,
	// e.g. "/composePost".
	API string
	// Root is the root span created by the entry component.
	Root *Span
}

// Batch is a run-length-encoded group of identical traces observed within
// one scrape window. Interactive applications serve thousands of requests
// per window, most of which share the exact same invocation path; batching
// keeps the telemetry volume proportional to the number of distinct paths
// rather than the number of requests.
type Batch struct {
	// Trace is the shared shape of every request in the batch.
	Trace Trace
	// Count is how many requests in the window followed this shape.
	Count int
}

// Expand materialises the batch into Count individual traces. Intended for
// tests and small examples; experiment drivers operate on batches directly.
func (b Batch) Expand() []Trace {
	out := make([]Trace, b.Count)
	for i := range out {
		out[i] = Trace{API: b.Trace.API, Root: b.Trace.Root.Clone()}
	}
	return out
}

// TotalRequests sums the request counts across a window's batches.
func TotalRequests(batches []Batch) int {
	n := 0
	for _, b := range batches {
		n += b.Count
	}
	return n
}

// PathKey renders a root-to-node path (a sequence of span IDs) as the
// canonical string key used by the feature extractor and the topology graph.
func PathKey(ids []string) string {
	return strings.Join(ids, "→")
}

// Hasher anonymises component and operation names before they are ingested
// by DeepRest, as required by the paper's privacy-preserving design: when
// DeepRest runs as a shared service, the application owner should not leak
// application semantics.
type Hasher struct {
	salt string
}

// NewHasher returns a Hasher with the given salt. An empty salt is valid and
// yields deterministic hashes, which is convenient for reproducible tests.
func NewHasher(salt string) *Hasher {
	return &Hasher{salt: salt}
}

// Hash returns a stable, opaque token for name.
func (h *Hasher) Hash(name string) string {
	f := fnv.New64a()
	f.Write([]byte(h.salt))
	f.Write([]byte(name))
	return fmt.Sprintf("h%016x", f.Sum64())
}

// Anonymize returns a deep copy of the span tree with every component and
// operation name replaced by its hash.
func (h *Hasher) Anonymize(s *Span) *Span {
	cp := &Span{Component: h.Hash(s.Component), Operation: h.Hash(s.Operation)}
	for _, c := range s.Children {
		cp.Children = append(cp.Children, h.Anonymize(c))
	}
	return cp
}

// AnonymizeTrace anonymises a trace, hashing both the span tree and the API
// endpoint name.
func (h *Hasher) AnonymizeTrace(t Trace) Trace {
	return Trace{API: h.Hash(t.API), Root: h.Anonymize(t.Root)}
}

// Topology is the execution topology graph of an application: the set of
// (component, operation) nodes observed in traces and the invocation edges
// between them. DeepRest builds it during the application learning phase
// (Figure 5 in the paper).
type Topology struct {
	nodes map[string]bool
	edges map[string]map[string]bool
	roots map[string]bool
}

// NewTopology returns an empty execution topology graph.
func NewTopology() *Topology {
	return &Topology{
		nodes: make(map[string]bool),
		edges: make(map[string]map[string]bool),
		roots: make(map[string]bool),
	}
}

// AddTrace records the nodes and edges of one trace into the graph.
func (g *Topology) AddTrace(t Trace) {
	if t.Root == nil {
		return
	}
	g.roots[t.Root.ID()] = true
	var rec func(s *Span)
	rec = func(s *Span) {
		g.nodes[s.ID()] = true
		for _, c := range s.Children {
			if g.edges[s.ID()] == nil {
				g.edges[s.ID()] = make(map[string]bool)
			}
			g.edges[s.ID()][c.ID()] = true
			rec(c)
		}
	}
	rec(t.Root)
}

// AddBatch records a batch; the count is irrelevant for topology purposes.
func (g *Topology) AddBatch(b Batch) { g.AddTrace(b.Trace) }

// NumNodes returns the number of distinct (component, operation) nodes.
func (g *Topology) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of distinct invocation edges.
func (g *Topology) NumEdges() int {
	n := 0
	for _, m := range g.edges {
		n += len(m)
	}
	return n
}

// Nodes returns the node IDs in sorted order.
func (g *Topology) Nodes() []string {
	out := make([]string, 0, len(g.nodes))
	for id := range g.nodes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Roots returns the entry-point node IDs in sorted order.
func (g *Topology) Roots() []string {
	out := make([]string, 0, len(g.roots))
	for id := range g.roots {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Successors returns the sorted successor node IDs of the given node.
func (g *Topology) Successors(id string) []string {
	m := g.edges[id]
	out := make([]string, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// HasEdge reports whether an invocation edge from → to has been observed.
func (g *Topology) HasEdge(from, to string) bool {
	return g.edges[from][to]
}

// DOT renders the execution topology graph in Graphviz DOT format — the
// visual of the paper's Figure 5. Entry-point nodes are drawn as boxes.
func (g *Topology) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=ellipse];\n", name)
	for _, r := range g.Roots() {
		fmt.Fprintf(&b, "  %q [shape=box];\n", r)
	}
	for _, from := range g.Nodes() {
		for _, to := range g.Successors(from) {
			fmt.Fprintf(&b, "  %q -> %q;\n", from, to)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
