package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

// sampleTrace builds the paper's Figure 3 /readTimeline trace.
func sampleTrace() Trace {
	root := NewSpan("FrontendNGINX", "readTimeline")
	utl := root.Child("UserTimelineService", "readTimeline")
	utl.Child("UserTimelineMongoDB", "find")
	ps := utl.Child("PostStorageService", "getPosts")
	ps.Child("PostStorageMongoDB", "find")
	return Trace{API: "/readTimeline", Root: root}
}

func TestSpanBasics(t *testing.T) {
	tr := sampleTrace()
	if got := tr.Root.NumSpans(); got != 5 {
		t.Errorf("NumSpans = %d, want 5", got)
	}
	if got := tr.Root.ID(); got != "FrontendNGINX:readTimeline" {
		t.Errorf("ID = %q", got)
	}
}

func TestSpanCloneIndependence(t *testing.T) {
	tr := sampleTrace()
	cp := tr.Root.Clone()
	cp.Children[0].Operation = "mutated"
	if tr.Root.Children[0].Operation == "mutated" {
		t.Fatal("Clone must deep-copy")
	}
	if cp.NumSpans() != tr.Root.NumSpans() {
		t.Fatal("Clone must preserve structure")
	}
}

func TestWalkVisitsAllWithPaths(t *testing.T) {
	tr := sampleTrace()
	var paths []string
	tr.Root.Walk(func(_ *Span, path []string) {
		paths = append(paths, PathKey(path))
	})
	if len(paths) != 5 {
		t.Fatalf("Walk visited %d nodes, want 5", len(paths))
	}
	if paths[0] != "FrontendNGINX:readTimeline" {
		t.Errorf("first path = %q", paths[0])
	}
	want := "FrontendNGINX:readTimeline→UserTimelineService:readTimeline→PostStorageService:getPosts→PostStorageMongoDB:find"
	if paths[4] != want {
		t.Errorf("deep path = %q, want %q", paths[4], want)
	}
}

func TestWalkPathReuseSafety(t *testing.T) {
	// The contract says the path slice is reused; verify keys derived
	// inside the callback stay correct even so.
	tr := sampleTrace()
	seen := map[string]bool{}
	tr.Root.Walk(func(_ *Span, path []string) {
		seen[PathKey(path)] = true
	})
	if len(seen) != 5 {
		t.Fatalf("expected 5 distinct path keys, got %d", len(seen))
	}
}

func TestStringRendering(t *testing.T) {
	s := sampleTrace().Root.String()
	if !strings.Contains(s, "FrontendNGINX:readTimeline") || !strings.Contains(s, "PostStorageMongoDB:find") {
		t.Errorf("String() = %q", s)
	}
}

func TestBatchExpand(t *testing.T) {
	b := Batch{Trace: sampleTrace(), Count: 3}
	traces := b.Expand()
	if len(traces) != 3 {
		t.Fatalf("Expand len = %d", len(traces))
	}
	traces[0].Root.Operation = "mutated"
	if traces[1].Root.Operation == "mutated" || b.Trace.Root.Operation == "mutated" {
		t.Fatal("Expand must deep-copy each trace")
	}
}

func TestTotalRequests(t *testing.T) {
	batches := []Batch{
		{Trace: sampleTrace(), Count: 3},
		{Trace: sampleTrace(), Count: 7},
	}
	if got := TotalRequests(batches); got != 10 {
		t.Errorf("TotalRequests = %d, want 10", got)
	}
}

func TestHasherDeterminismAndSalting(t *testing.T) {
	h1 := NewHasher("salt")
	h2 := NewHasher("salt")
	h3 := NewHasher("other")
	if h1.Hash("X") != h2.Hash("X") {
		t.Error("same salt must hash identically")
	}
	if h1.Hash("X") == h3.Hash("X") {
		t.Error("different salts must hash differently")
	}
	if h1.Hash("X") == h1.Hash("Y") {
		t.Error("different names must hash differently")
	}
}

func TestAnonymizePreservesStructure(t *testing.T) {
	h := NewHasher("s")
	tr := h.AnonymizeTrace(sampleTrace())
	if tr.Root.NumSpans() != 5 {
		t.Fatalf("anonymised NumSpans = %d", tr.Root.NumSpans())
	}
	if strings.Contains(tr.Root.Component, "NGINX") {
		t.Error("component name leaked through anonymisation")
	}
	if !strings.HasPrefix(tr.API, "h") {
		t.Errorf("API not hashed: %q", tr.API)
	}
	// Equal inputs map to equal tokens: the two MongoDB find operations
	// of different components must differ, but repeated anonymisation
	// must agree.
	tr2 := h.AnonymizeTrace(sampleTrace())
	if tr.Root.ID() != tr2.Root.ID() {
		t.Error("anonymisation must be deterministic")
	}
}

// Property: anonymisation is structure-preserving for arbitrary small trees.
func TestAnonymizeStructureProperty(t *testing.T) {
	h := NewHasher("p")
	f := func(names []string) bool {
		if len(names) == 0 {
			return true
		}
		root := NewSpan("root", "op")
		cur := root
		for i, n := range names {
			if len(n) > 20 {
				n = n[:20]
			}
			if i%2 == 0 {
				cur = cur.Child("C"+n, "op")
			} else {
				root.Child("D"+n, "op")
			}
		}
		anon := h.Anonymize(root)
		return anon.NumSpans() == root.NumSpans()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTopology(t *testing.T) {
	g := NewTopology()
	g.AddTrace(sampleTrace())
	g.AddBatch(Batch{Trace: sampleTrace(), Count: 5})
	if got := g.NumNodes(); got != 5 {
		t.Errorf("NumNodes = %d, want 5", got)
	}
	if got := g.NumEdges(); got != 4 {
		t.Errorf("NumEdges = %d, want 4", got)
	}
	if roots := g.Roots(); len(roots) != 1 || roots[0] != "FrontendNGINX:readTimeline" {
		t.Errorf("Roots = %v", roots)
	}
	if !g.HasEdge("UserTimelineService:readTimeline", "PostStorageMongoDB:find") == false {
		// Direct edge exists only via PostStorageService.
		t.Error("unexpected transitive edge")
	}
	if !g.HasEdge("PostStorageService:getPosts", "PostStorageMongoDB:find") {
		t.Error("missing direct edge")
	}
	succ := g.Successors("UserTimelineService:readTimeline")
	if len(succ) != 2 {
		t.Errorf("Successors = %v", succ)
	}
	// A second API adds nodes.
	up := NewSpan("MediaNGINX", "uploadMedia")
	up.Child("MediaMongoDB", "store")
	g.AddTrace(Trace{API: "/uploadMedia", Root: up})
	if got := g.NumNodes(); got != 7 {
		t.Errorf("NumNodes after second API = %d, want 7", got)
	}
	if got := len(g.Roots()); got != 2 {
		t.Errorf("Roots = %d, want 2", got)
	}
	if got := len(g.Nodes()); got != 7 {
		t.Errorf("Nodes = %d", got)
	}
}

func TestTopologyNilRoot(t *testing.T) {
	g := NewTopology()
	g.AddTrace(Trace{API: "/x"})
	if g.NumNodes() != 0 {
		t.Error("nil-root trace must be ignored")
	}
}

func TestTopologyDOT(t *testing.T) {
	g := NewTopology()
	g.AddTrace(sampleTrace())
	dot := g.DOT("social")
	if !strings.Contains(dot, `digraph "social"`) {
		t.Errorf("DOT header missing: %s", dot)
	}
	if !strings.Contains(dot, `"FrontendNGINX:readTimeline" [shape=box]`) {
		t.Error("root not boxed")
	}
	if !strings.Contains(dot, `"PostStorageService:getPosts" -> "PostStorageMongoDB:find";`) {
		t.Error("edge missing")
	}
	if !strings.HasSuffix(dot, "}\n") {
		t.Error("DOT not terminated")
	}
}
